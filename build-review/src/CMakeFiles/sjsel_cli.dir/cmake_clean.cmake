file(REMOVE_RECURSE
  "CMakeFiles/sjsel_cli.dir/cli/cli.cc.o"
  "CMakeFiles/sjsel_cli.dir/cli/cli.cc.o.d"
  "libsjsel_cli.a"
  "libsjsel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjsel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
