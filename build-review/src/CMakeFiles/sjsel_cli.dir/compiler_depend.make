# Empty compiler generated dependencies file for sjsel_cli.
# This may be replaced when dependencies are built.
