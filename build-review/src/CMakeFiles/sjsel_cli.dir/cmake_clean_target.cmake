file(REMOVE_RECURSE
  "libsjsel_cli.a"
)
