# Empty compiler generated dependencies file for sjsel_tool.
# This may be replaced when dependencies are built.
