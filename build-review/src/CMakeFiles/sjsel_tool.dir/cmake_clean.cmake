file(REMOVE_RECURSE
  "CMakeFiles/sjsel_tool.dir/cli/main.cc.o"
  "CMakeFiles/sjsel_tool.dir/cli/main.cc.o.d"
  "sjsel"
  "sjsel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjsel_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
