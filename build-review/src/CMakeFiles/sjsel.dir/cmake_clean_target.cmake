file(REMOVE_RECURSE
  "libsjsel.a"
)
