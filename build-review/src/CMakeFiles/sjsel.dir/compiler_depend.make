# Empty compiler generated dependencies file for sjsel.
# This may be replaced when dependencies are built.
