
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/sjsel.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/distance_estimate.cc" "src/CMakeFiles/sjsel.dir/core/distance_estimate.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/core/distance_estimate.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/CMakeFiles/sjsel.dir/core/estimator.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/core/estimator.cc.o.d"
  "/root/repo/src/core/gh_histogram.cc" "src/CMakeFiles/sjsel.dir/core/gh_histogram.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/core/gh_histogram.cc.o.d"
  "/root/repo/src/core/grid.cc" "src/CMakeFiles/sjsel.dir/core/grid.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/core/grid.cc.o.d"
  "/root/repo/src/core/guarded_estimator.cc" "src/CMakeFiles/sjsel.dir/core/guarded_estimator.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/core/guarded_estimator.cc.o.d"
  "/root/repo/src/core/kernels.cc" "src/CMakeFiles/sjsel.dir/core/kernels.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/core/kernels.cc.o.d"
  "/root/repo/src/core/minskew.cc" "src/CMakeFiles/sjsel.dir/core/minskew.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/core/minskew.cc.o.d"
  "/root/repo/src/core/parametric.cc" "src/CMakeFiles/sjsel.dir/core/parametric.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/core/parametric.cc.o.d"
  "/root/repo/src/core/ph_histogram.cc" "src/CMakeFiles/sjsel.dir/core/ph_histogram.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/core/ph_histogram.cc.o.d"
  "/root/repo/src/core/sampling.cc" "src/CMakeFiles/sjsel.dir/core/sampling.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/core/sampling.cc.o.d"
  "/root/repo/src/datagen/generators.cc" "src/CMakeFiles/sjsel.dir/datagen/generators.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/datagen/generators.cc.o.d"
  "/root/repo/src/datagen/geo_generators.cc" "src/CMakeFiles/sjsel.dir/datagen/geo_generators.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/datagen/geo_generators.cc.o.d"
  "/root/repo/src/datagen/workloads.cc" "src/CMakeFiles/sjsel.dir/datagen/workloads.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/datagen/workloads.cc.o.d"
  "/root/repo/src/engine/catalog.cc" "src/CMakeFiles/sjsel.dir/engine/catalog.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/engine/catalog.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/sjsel.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/planner.cc" "src/CMakeFiles/sjsel.dir/engine/planner.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/engine/planner.cc.o.d"
  "/root/repo/src/geom/dataset.cc" "src/CMakeFiles/sjsel.dir/geom/dataset.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/geom/dataset.cc.o.d"
  "/root/repo/src/geom/geometry.cc" "src/CMakeFiles/sjsel.dir/geom/geometry.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/geom/geometry.cc.o.d"
  "/root/repo/src/geom/rect.cc" "src/CMakeFiles/sjsel.dir/geom/rect.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/geom/rect.cc.o.d"
  "/root/repo/src/geom/soa_dataset.cc" "src/CMakeFiles/sjsel.dir/geom/soa_dataset.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/geom/soa_dataset.cc.o.d"
  "/root/repo/src/geom/validate.cc" "src/CMakeFiles/sjsel.dir/geom/validate.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/geom/validate.cc.o.d"
  "/root/repo/src/gh3/gh3_histogram.cc" "src/CMakeFiles/sjsel.dir/gh3/gh3_histogram.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/gh3/gh3_histogram.cc.o.d"
  "/root/repo/src/hilbert/hilbert.cc" "src/CMakeFiles/sjsel.dir/hilbert/hilbert.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/hilbert/hilbert.cc.o.d"
  "/root/repo/src/hilbert/morton.cc" "src/CMakeFiles/sjsel.dir/hilbert/morton.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/hilbert/morton.cc.o.d"
  "/root/repo/src/join/distance_join.cc" "src/CMakeFiles/sjsel.dir/join/distance_join.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/join/distance_join.cc.o.d"
  "/root/repo/src/join/index_nested_loop.cc" "src/CMakeFiles/sjsel.dir/join/index_nested_loop.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/join/index_nested_loop.cc.o.d"
  "/root/repo/src/join/nested_loop.cc" "src/CMakeFiles/sjsel.dir/join/nested_loop.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/join/nested_loop.cc.o.d"
  "/root/repo/src/join/pbsm.cc" "src/CMakeFiles/sjsel.dir/join/pbsm.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/join/pbsm.cc.o.d"
  "/root/repo/src/join/plane_sweep.cc" "src/CMakeFiles/sjsel.dir/join/plane_sweep.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/join/plane_sweep.cc.o.d"
  "/root/repo/src/join/refinement.cc" "src/CMakeFiles/sjsel.dir/join/refinement.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/join/refinement.cc.o.d"
  "/root/repo/src/join/rtree_join.cc" "src/CMakeFiles/sjsel.dir/join/rtree_join.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/join/rtree_join.cc.o.d"
  "/root/repo/src/obs/explain.cc" "src/CMakeFiles/sjsel.dir/obs/explain.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/obs/explain.cc.o.d"
  "/root/repo/src/obs/log.cc" "src/CMakeFiles/sjsel.dir/obs/log.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/obs/log.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/CMakeFiles/sjsel.dir/obs/metrics.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/obs/metrics.cc.o.d"
  "/root/repo/src/obs/slowlog.cc" "src/CMakeFiles/sjsel.dir/obs/slowlog.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/obs/slowlog.cc.o.d"
  "/root/repo/src/obs/trace.cc" "src/CMakeFiles/sjsel.dir/obs/trace.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/obs/trace.cc.o.d"
  "/root/repo/src/planner/join_planner.cc" "src/CMakeFiles/sjsel.dir/planner/join_planner.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/planner/join_planner.cc.o.d"
  "/root/repo/src/quadtree/quadtree.cc" "src/CMakeFiles/sjsel.dir/quadtree/quadtree.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/quadtree/quadtree.cc.o.d"
  "/root/repo/src/rtree/rtree.cc" "src/CMakeFiles/sjsel.dir/rtree/rtree.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/rtree/rtree.cc.o.d"
  "/root/repo/src/server/catalog.cc" "src/CMakeFiles/sjsel.dir/server/catalog.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/server/catalog.cc.o.d"
  "/root/repo/src/server/client.cc" "src/CMakeFiles/sjsel.dir/server/client.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/server/client.cc.o.d"
  "/root/repo/src/server/protocol.cc" "src/CMakeFiles/sjsel.dir/server/protocol.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/server/protocol.cc.o.d"
  "/root/repo/src/server/server.cc" "src/CMakeFiles/sjsel.dir/server/server.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/server/server.cc.o.d"
  "/root/repo/src/stats/dataset_stats.cc" "src/CMakeFiles/sjsel.dir/stats/dataset_stats.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/stats/dataset_stats.cc.o.d"
  "/root/repo/src/stats/spatial_skew.cc" "src/CMakeFiles/sjsel.dir/stats/spatial_skew.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/stats/spatial_skew.cc.o.d"
  "/root/repo/src/stream/ingest.cc" "src/CMakeFiles/sjsel.dir/stream/ingest.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/stream/ingest.cc.o.d"
  "/root/repo/src/stream/wal.cc" "src/CMakeFiles/sjsel.dir/stream/wal.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/stream/wal.cc.o.d"
  "/root/repo/src/util/fault_injection.cc" "src/CMakeFiles/sjsel.dir/util/fault_injection.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/util/fault_injection.cc.o.d"
  "/root/repo/src/util/json.cc" "src/CMakeFiles/sjsel.dir/util/json.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/util/json.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/sjsel.dir/util/random.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/util/random.cc.o.d"
  "/root/repo/src/util/serialize.cc" "src/CMakeFiles/sjsel.dir/util/serialize.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/util/serialize.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/sjsel.dir/util/status.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/util/status.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/sjsel.dir/util/table.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/util/table.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/sjsel.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/sjsel.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
