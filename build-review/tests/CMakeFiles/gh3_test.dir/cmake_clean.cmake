file(REMOVE_RECURSE
  "CMakeFiles/gh3_test.dir/gh3_test.cc.o"
  "CMakeFiles/gh3_test.dir/gh3_test.cc.o.d"
  "gh3_test"
  "gh3_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gh3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
