# Empty compiler generated dependencies file for gh3_test.
# This may be replaced when dependencies are built.
