# Empty compiler generated dependencies file for gh_sparse_test.
# This may be replaced when dependencies are built.
