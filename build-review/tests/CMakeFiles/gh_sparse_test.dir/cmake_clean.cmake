file(REMOVE_RECURSE
  "CMakeFiles/gh_sparse_test.dir/gh_sparse_test.cc.o"
  "CMakeFiles/gh_sparse_test.dir/gh_sparse_test.cc.o.d"
  "gh_sparse_test"
  "gh_sparse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gh_sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
