# Empty dependencies file for gh_incremental_test.
# This may be replaced when dependencies are built.
