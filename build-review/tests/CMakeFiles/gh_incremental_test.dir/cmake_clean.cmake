file(REMOVE_RECURSE
  "CMakeFiles/gh_incremental_test.dir/gh_incremental_test.cc.o"
  "CMakeFiles/gh_incremental_test.dir/gh_incremental_test.cc.o.d"
  "gh_incremental_test"
  "gh_incremental_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gh_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
