file(REMOVE_RECURSE
  "CMakeFiles/kernel_equivalence_test.dir/kernel_equivalence_test.cc.o"
  "CMakeFiles/kernel_equivalence_test.dir/kernel_equivalence_test.cc.o.d"
  "kernel_equivalence_test"
  "kernel_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
