file(REMOVE_RECURSE
  "CMakeFiles/skew_test.dir/skew_test.cc.o"
  "CMakeFiles/skew_test.dir/skew_test.cc.o.d"
  "skew_test"
  "skew_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
