# Empty compiler generated dependencies file for rtree_dynamic_test.
# This may be replaced when dependencies are built.
