file(REMOVE_RECURSE
  "CMakeFiles/rtree_dynamic_test.dir/rtree_dynamic_test.cc.o"
  "CMakeFiles/rtree_dynamic_test.dir/rtree_dynamic_test.cc.o.d"
  "rtree_dynamic_test"
  "rtree_dynamic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtree_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
