# Empty dependencies file for ph_incremental_test.
# This may be replaced when dependencies are built.
