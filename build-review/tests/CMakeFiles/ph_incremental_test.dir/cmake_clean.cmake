file(REMOVE_RECURSE
  "CMakeFiles/ph_incremental_test.dir/ph_incremental_test.cc.o"
  "CMakeFiles/ph_incremental_test.dir/ph_incremental_test.cc.o.d"
  "ph_incremental_test"
  "ph_incremental_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
