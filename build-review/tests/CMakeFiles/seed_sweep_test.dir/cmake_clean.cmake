file(REMOVE_RECURSE
  "CMakeFiles/seed_sweep_test.dir/seed_sweep_test.cc.o"
  "CMakeFiles/seed_sweep_test.dir/seed_sweep_test.cc.o.d"
  "seed_sweep_test"
  "seed_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seed_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
