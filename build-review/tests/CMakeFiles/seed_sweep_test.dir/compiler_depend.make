# Empty compiler generated dependencies file for seed_sweep_test.
# This may be replaced when dependencies are built.
