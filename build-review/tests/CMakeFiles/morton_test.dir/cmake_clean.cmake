file(REMOVE_RECURSE
  "CMakeFiles/morton_test.dir/morton_test.cc.o"
  "CMakeFiles/morton_test.dir/morton_test.cc.o.d"
  "morton_test"
  "morton_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
