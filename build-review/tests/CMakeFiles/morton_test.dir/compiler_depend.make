# Empty compiler generated dependencies file for morton_test.
# This may be replaced when dependencies are built.
