file(REMOVE_RECURSE
  "CMakeFiles/gh_test.dir/gh_test.cc.o"
  "CMakeFiles/gh_test.dir/gh_test.cc.o.d"
  "gh_test"
  "gh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
