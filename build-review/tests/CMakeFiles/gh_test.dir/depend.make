# Empty dependencies file for gh_test.
# This may be replaced when dependencies are built.
