# Empty compiler generated dependencies file for minskew_test.
# This may be replaced when dependencies are built.
