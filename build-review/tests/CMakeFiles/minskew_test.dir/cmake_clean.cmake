file(REMOVE_RECURSE
  "CMakeFiles/minskew_test.dir/minskew_test.cc.o"
  "CMakeFiles/minskew_test.dir/minskew_test.cc.o.d"
  "minskew_test"
  "minskew_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minskew_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
