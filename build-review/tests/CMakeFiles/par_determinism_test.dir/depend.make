# Empty dependencies file for par_determinism_test.
# This may be replaced when dependencies are built.
