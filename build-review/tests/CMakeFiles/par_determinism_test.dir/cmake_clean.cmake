file(REMOVE_RECURSE
  "CMakeFiles/par_determinism_test.dir/par_determinism_test.cc.o"
  "CMakeFiles/par_determinism_test.dir/par_determinism_test.cc.o.d"
  "par_determinism_test"
  "par_determinism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/par_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
