file(REMOVE_RECURSE
  "CMakeFiles/obs_concurrency_test.dir/obs_concurrency_test.cc.o"
  "CMakeFiles/obs_concurrency_test.dir/obs_concurrency_test.cc.o.d"
  "obs_concurrency_test"
  "obs_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
