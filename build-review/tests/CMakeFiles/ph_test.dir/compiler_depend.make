# Empty compiler generated dependencies file for ph_test.
# This may be replaced when dependencies are built.
