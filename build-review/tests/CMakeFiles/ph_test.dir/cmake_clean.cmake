file(REMOVE_RECURSE
  "CMakeFiles/ph_test.dir/ph_test.cc.o"
  "CMakeFiles/ph_test.dir/ph_test.cc.o.d"
  "ph_test"
  "ph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
