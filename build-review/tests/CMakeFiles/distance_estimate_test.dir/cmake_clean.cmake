file(REMOVE_RECURSE
  "CMakeFiles/distance_estimate_test.dir/distance_estimate_test.cc.o"
  "CMakeFiles/distance_estimate_test.dir/distance_estimate_test.cc.o.d"
  "distance_estimate_test"
  "distance_estimate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_estimate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
