# Empty dependencies file for distance_estimate_test.
# This may be replaced when dependencies are built.
