file(REMOVE_RECURSE
  "CMakeFiles/degradation_reason_test.dir/degradation_reason_test.cc.o"
  "CMakeFiles/degradation_reason_test.dir/degradation_reason_test.cc.o.d"
  "degradation_reason_test"
  "degradation_reason_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degradation_reason_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
