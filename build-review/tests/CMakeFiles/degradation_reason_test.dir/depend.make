# Empty dependencies file for degradation_reason_test.
# This may be replaced when dependencies are built.
