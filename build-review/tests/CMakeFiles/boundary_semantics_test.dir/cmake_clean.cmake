file(REMOVE_RECURSE
  "CMakeFiles/boundary_semantics_test.dir/boundary_semantics_test.cc.o"
  "CMakeFiles/boundary_semantics_test.dir/boundary_semantics_test.cc.o.d"
  "boundary_semantics_test"
  "boundary_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boundary_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
