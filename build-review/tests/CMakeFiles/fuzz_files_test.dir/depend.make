# Empty dependencies file for fuzz_files_test.
# This may be replaced when dependencies are built.
