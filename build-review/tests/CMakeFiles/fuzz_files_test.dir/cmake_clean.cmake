file(REMOVE_RECURSE
  "CMakeFiles/fuzz_files_test.dir/fuzz_files_test.cc.o"
  "CMakeFiles/fuzz_files_test.dir/fuzz_files_test.cc.o.d"
  "fuzz_files_test"
  "fuzz_files_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
