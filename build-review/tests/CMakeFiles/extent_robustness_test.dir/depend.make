# Empty dependencies file for extent_robustness_test.
# This may be replaced when dependencies are built.
