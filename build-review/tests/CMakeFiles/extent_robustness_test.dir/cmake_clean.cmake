file(REMOVE_RECURSE
  "CMakeFiles/extent_robustness_test.dir/extent_robustness_test.cc.o"
  "CMakeFiles/extent_robustness_test.dir/extent_robustness_test.cc.o.d"
  "extent_robustness_test"
  "extent_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extent_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
