file(REMOVE_RECURSE
  "CMakeFiles/distance_join_test.dir/distance_join_test.cc.o"
  "CMakeFiles/distance_join_test.dir/distance_join_test.cc.o.d"
  "distance_join_test"
  "distance_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
