# Empty dependencies file for tiger_workload.
# This may be replaced when dependencies are built.
