file(REMOVE_RECURSE
  "CMakeFiles/tiger_workload.dir/tiger_workload.cpp.o"
  "CMakeFiles/tiger_workload.dir/tiger_workload.cpp.o.d"
  "tiger_workload"
  "tiger_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiger_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
