file(REMOVE_RECURSE
  "CMakeFiles/approximate_count.dir/approximate_count.cpp.o"
  "CMakeFiles/approximate_count.dir/approximate_count.cpp.o.d"
  "approximate_count"
  "approximate_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
