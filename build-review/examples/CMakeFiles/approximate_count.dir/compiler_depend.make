# Empty compiler generated dependencies file for approximate_count.
# This may be replaced when dependencies are built.
