file(REMOVE_RECURSE
  "CMakeFiles/dynamic_maintenance.dir/dynamic_maintenance.cpp.o"
  "CMakeFiles/dynamic_maintenance.dir/dynamic_maintenance.cpp.o.d"
  "dynamic_maintenance"
  "dynamic_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
