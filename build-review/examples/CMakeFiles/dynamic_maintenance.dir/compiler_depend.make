# Empty compiler generated dependencies file for dynamic_maintenance.
# This may be replaced when dependencies are built.
