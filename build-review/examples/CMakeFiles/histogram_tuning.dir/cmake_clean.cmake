file(REMOVE_RECURSE
  "CMakeFiles/histogram_tuning.dir/histogram_tuning.cpp.o"
  "CMakeFiles/histogram_tuning.dir/histogram_tuning.cpp.o.d"
  "histogram_tuning"
  "histogram_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
