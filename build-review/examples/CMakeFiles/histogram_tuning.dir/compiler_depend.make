# Empty compiler generated dependencies file for histogram_tuning.
# This may be replaced when dependencies are built.
