file(REMOVE_RECURSE
  "CMakeFiles/two_step_join.dir/two_step_join.cpp.o"
  "CMakeFiles/two_step_join.dir/two_step_join.cpp.o.d"
  "two_step_join"
  "two_step_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_step_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
