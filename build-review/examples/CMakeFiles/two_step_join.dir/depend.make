# Empty dependencies file for two_step_join.
# This may be replaced when dependencies are built.
