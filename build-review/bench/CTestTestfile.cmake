# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke "/root/repo/build-review/bench/kernels" "--smoke")
set_tests_properties(bench_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(pipeline_smoke "/root/repo/build-review/bench/pipeline_breakdown" "--smoke")
set_tests_properties(pipeline_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(planner_quality_smoke "/root/repo/build-review/bench/planner_quality" "--smoke")
set_tests_properties(planner_quality_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(churn_smoke "/root/repo/build-review/bench/churn" "--smoke")
set_tests_properties(churn_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_drift "/root/repo/bench/../scripts/bench_drift.sh" "/root/repo/build-review/bench/drift" "/root/repo/build-review/bench/accuracy_grid" "/root/repo/build-review/bench/kernels --smoke" "/root/repo/build-review/bench/par_scaling --smoke" "/root/repo/build-review/bench/churn --smoke")
set_tests_properties(bench_drift PROPERTIES  RUN_SERIAL "TRUE" SKIP_RETURN_CODE "77" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;52;add_test;/root/repo/bench/CMakeLists.txt;0;")
