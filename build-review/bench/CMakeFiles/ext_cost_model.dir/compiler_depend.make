# Empty compiler generated dependencies file for ext_cost_model.
# This may be replaced when dependencies are built.
