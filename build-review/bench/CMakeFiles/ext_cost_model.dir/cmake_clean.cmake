file(REMOVE_RECURSE
  "CMakeFiles/ext_cost_model.dir/ext_cost_model.cc.o"
  "CMakeFiles/ext_cost_model.dir/ext_cost_model.cc.o.d"
  "ext_cost_model"
  "ext_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
