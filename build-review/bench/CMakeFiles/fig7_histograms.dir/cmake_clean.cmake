file(REMOVE_RECURSE
  "CMakeFiles/fig7_histograms.dir/fig7_histograms.cc.o"
  "CMakeFiles/fig7_histograms.dir/fig7_histograms.cc.o.d"
  "fig7_histograms"
  "fig7_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
