# Empty dependencies file for fig7_histograms.
# This may be replaced when dependencies are built.
