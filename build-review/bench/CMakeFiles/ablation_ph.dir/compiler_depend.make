# Empty compiler generated dependencies file for ablation_ph.
# This may be replaced when dependencies are built.
