file(REMOVE_RECURSE
  "CMakeFiles/ablation_ph.dir/ablation_ph.cc.o"
  "CMakeFiles/ablation_ph.dir/ablation_ph.cc.o.d"
  "ablation_ph"
  "ablation_ph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
