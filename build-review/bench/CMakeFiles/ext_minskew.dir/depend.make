# Empty dependencies file for ext_minskew.
# This may be replaced when dependencies are built.
