file(REMOVE_RECURSE
  "CMakeFiles/ext_minskew.dir/ext_minskew.cc.o"
  "CMakeFiles/ext_minskew.dir/ext_minskew.cc.o.d"
  "ext_minskew"
  "ext_minskew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_minskew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
