file(REMOVE_RECURSE
  "CMakeFiles/fig6_sampling.dir/fig6_sampling.cc.o"
  "CMakeFiles/fig6_sampling.dir/fig6_sampling.cc.o.d"
  "fig6_sampling"
  "fig6_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
