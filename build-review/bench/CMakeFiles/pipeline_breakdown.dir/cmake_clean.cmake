file(REMOVE_RECURSE
  "CMakeFiles/pipeline_breakdown.dir/pipeline_breakdown.cc.o"
  "CMakeFiles/pipeline_breakdown.dir/pipeline_breakdown.cc.o.d"
  "pipeline_breakdown"
  "pipeline_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
