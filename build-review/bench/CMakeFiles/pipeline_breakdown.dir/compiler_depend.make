# Empty compiler generated dependencies file for pipeline_breakdown.
# This may be replaced when dependencies are built.
