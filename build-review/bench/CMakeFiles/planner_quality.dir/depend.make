# Empty dependencies file for planner_quality.
# This may be replaced when dependencies are built.
