file(REMOVE_RECURSE
  "CMakeFiles/planner_quality.dir/planner_quality.cc.o"
  "CMakeFiles/planner_quality.dir/planner_quality.cc.o.d"
  "planner_quality"
  "planner_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
