file(REMOVE_RECURSE
  "CMakeFiles/tab_datasets.dir/tab_datasets.cc.o"
  "CMakeFiles/tab_datasets.dir/tab_datasets.cc.o.d"
  "tab_datasets"
  "tab_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
