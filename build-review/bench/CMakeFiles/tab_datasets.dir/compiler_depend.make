# Empty compiler generated dependencies file for tab_datasets.
# This may be replaced when dependencies are built.
