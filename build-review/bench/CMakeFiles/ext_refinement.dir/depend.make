# Empty dependencies file for ext_refinement.
# This may be replaced when dependencies are built.
