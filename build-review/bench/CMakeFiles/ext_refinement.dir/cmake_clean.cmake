file(REMOVE_RECURSE
  "CMakeFiles/ext_refinement.dir/ext_refinement.cc.o"
  "CMakeFiles/ext_refinement.dir/ext_refinement.cc.o.d"
  "ext_refinement"
  "ext_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
