# Empty dependencies file for robustness.
# This may be replaced when dependencies are built.
