file(REMOVE_RECURSE
  "CMakeFiles/robustness.dir/robustness.cc.o"
  "CMakeFiles/robustness.dir/robustness.cc.o.d"
  "robustness"
  "robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
