file(REMOVE_RECURSE
  "CMakeFiles/ablation_rtree.dir/ablation_rtree.cc.o"
  "CMakeFiles/ablation_rtree.dir/ablation_rtree.cc.o.d"
  "ablation_rtree"
  "ablation_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
