# Empty compiler generated dependencies file for ablation_rtree.
# This may be replaced when dependencies are built.
