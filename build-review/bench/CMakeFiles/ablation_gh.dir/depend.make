# Empty dependencies file for ablation_gh.
# This may be replaced when dependencies are built.
