file(REMOVE_RECURSE
  "CMakeFiles/ablation_gh.dir/ablation_gh.cc.o"
  "CMakeFiles/ablation_gh.dir/ablation_gh.cc.o.d"
  "ablation_gh"
  "ablation_gh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
