# Empty dependencies file for par_scaling.
# This may be replaced when dependencies are built.
