file(REMOVE_RECURSE
  "CMakeFiles/par_scaling.dir/par_scaling.cc.o"
  "CMakeFiles/par_scaling.dir/par_scaling.cc.o.d"
  "par_scaling"
  "par_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/par_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
