# Empty dependencies file for ext_gh3.
# This may be replaced when dependencies are built.
