file(REMOVE_RECURSE
  "CMakeFiles/ext_gh3.dir/ext_gh3.cc.o"
  "CMakeFiles/ext_gh3.dir/ext_gh3.cc.o.d"
  "ext_gh3"
  "ext_gh3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_gh3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
