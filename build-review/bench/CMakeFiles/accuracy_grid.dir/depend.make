# Empty dependencies file for accuracy_grid.
# This may be replaced when dependencies are built.
