file(REMOVE_RECURSE
  "CMakeFiles/accuracy_grid.dir/accuracy_grid.cc.o"
  "CMakeFiles/accuracy_grid.dir/accuracy_grid.cc.o.d"
  "accuracy_grid"
  "accuracy_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
