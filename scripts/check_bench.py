#!/usr/bin/env python3
"""Drift gate over BENCH_*.json files.

Compares every BENCH_*.json in a baseline directory against the file of
the same name in a fresh directory and fails (exit 1, each offending
metric named) when a value drifts out of its tolerance band:

  * accuracy keys (rel_error, estimated_pairs, actual_pairs, selectivity)
    are deterministic for a fixed dataset scale — the band is tight
    (1e-6 absolute + 1e-6 relative, just enough for cross-compiler FMA
    last-bit noise);
  * ns_per_op is wall-clock — only a slowdown beyond PERF_FACTOR x the
    baseline that also loses at least PERF_ABS_NS of absolute wall-clock
    fails, so machine jitter and scheduler noise on fast entries never
    trip the gate;
  * a baseline entry missing from the fresh file fails (a renamed or
    dropped measurement is drift too); extra fresh entries are fine.

File-level metadata guards: when the two files record a different
"run.scale" the accuracy comparison is skipped (different data, not
drift), and when "run.build_type" differs the perf comparison is skipped
(debug vs release is not a regression).

Usage:
  check_bench.py <baseline-dir-or-file> <fresh-dir-or-file>
  check_bench.py --self-test
"""

import glob
import json
import os
import sys
import tempfile

TIGHT_KEYS = ("rel_error", "estimated_pairs", "actual_pairs", "selectivity")
TIGHT_ABS = 1e-6
TIGHT_REL = 1e-6
PERF_KEYS = ("ns_per_op",)
PERF_FACTOR = 8.0
# Absolute floor for a perf failure: fast micro-entries (sub-ms prepare
# times) can blow past the factor on a loaded 1-core CI box without any
# real regression; require losing at least this much wall-clock too.
PERF_ABS_NS = 5e7


def load(path):
    with open(path) as f:
        return json.load(f)


def compare_entries(name, base, fresh, failures, skip_accuracy, skip_perf):
    fresh_by_name = {e.get("name"): e for e in fresh.get("entries", [])}
    for entry in base.get("entries", []):
        entry_name = entry.get("name")
        other = fresh_by_name.get(entry_name)
        checked_keys = [
            k for k in entry
            if (k in TIGHT_KEYS and not skip_accuracy)
            or (k in PERF_KEYS and not skip_perf)
        ]
        if not checked_keys:
            continue
        if other is None:
            failures.append(f"{name}: entry '{entry_name}' missing from fresh run")
            continue
        for key in checked_keys:
            b = float(entry[key])
            if key not in other:
                failures.append(
                    f"{name}: {entry_name}.{key} missing from fresh entry")
                continue
            f = float(other[key])
            if key in TIGHT_KEYS:
                tol = TIGHT_ABS + TIGHT_REL * abs(b)
                if abs(f - b) > tol:
                    failures.append(
                        f"{name}: {entry_name}.{key} drifted: "
                        f"baseline={b!r} fresh={f!r} (tolerance {tol:.3g})")
            else:  # perf
                if f > b * PERF_FACTOR and f - b > PERF_ABS_NS:
                    failures.append(
                        f"{name}: {entry_name}.{key} regressed: "
                        f"baseline={b:.0f}ns fresh={f:.0f}ns "
                        f"(limit {PERF_FACTOR:g}x)")


def compare_files(base_path, fresh_path, failures, notes):
    name = os.path.basename(base_path)
    base = load(base_path)
    fresh = load(fresh_path)
    base_run = base.get("run", {})
    fresh_run = fresh.get("run", {})
    skip_accuracy = False
    skip_perf = False
    if base_run.get("scale") != fresh_run.get("scale"):
        skip_accuracy = True
        notes.append(
            f"{name}: scale differs (baseline {base_run.get('scale')}, "
            f"fresh {fresh_run.get('scale')}) — accuracy comparison skipped")
    if base_run.get("build_type") != fresh_run.get("build_type"):
        skip_perf = True
        notes.append(
            f"{name}: build_type differs — perf comparison skipped")
    compare_entries(name, base, fresh, failures, skip_accuracy, skip_perf)


def run(baseline, fresh):
    failures = []
    notes = []
    if os.path.isdir(baseline):
        pairs = []
        for base_path in sorted(glob.glob(os.path.join(baseline, "BENCH_*.json"))):
            fresh_path = os.path.join(fresh, os.path.basename(base_path))
            if not os.path.exists(fresh_path):
                failures.append(
                    f"{os.path.basename(base_path)}: no fresh counterpart in {fresh}")
                continue
            pairs.append((base_path, fresh_path))
        if not pairs and not failures:
            print(f"check_bench: no BENCH_*.json baselines in {baseline}",
                  file=sys.stderr)
            return 2
    else:
        pairs = [(baseline, fresh)]
    for base_path, fresh_path in pairs:
        compare_files(base_path, fresh_path, failures, notes)
    for note in notes:
        print(f"note: {note}")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        print(f"check_bench: {len(failures)} metric(s) out of tolerance")
        return 1
    print(f"check_bench: OK ({len(pairs)} file(s) within tolerance)")
    return 0


def self_test():
    base = {
        "bench": "accuracy",
        "run": {"build_type": "release", "scale": "0.05"},
        "entries": [
            {"name": "TCB-TS/gh/L7", "rel_error": 0.0289,
             "estimated_pairs": 12345.678, "actual_pairs": 11999.0},
            {"name": "TCB-TS/gh/L7/prepare", "ns_per_op": 1e8},
        ],
    }

    def outcome(mutate, expect, base_run=None):
        fresh = json.loads(json.dumps(base))
        if base_run is not None:
            fresh["run"].update(base_run)
        mutate(fresh)
        with tempfile.TemporaryDirectory() as d:
            bp = os.path.join(d, "BENCH_accuracy.json")
            fp = os.path.join(d, "fresh.json")
            with open(bp, "w") as f:
                json.dump(base, f)
            with open(fp, "w") as f:
                json.dump(fresh, f)
            code = run(bp, fp)
        assert code == expect, f"expected exit {expect}, got {code}"

    # Identical files pass; last-bit FP noise passes.
    outcome(lambda fresh: None, 0)
    outcome(lambda fresh: fresh["entries"][0].__setitem__(
        "estimated_pairs", 12345.678 + 1e-9), 0)
    # An accuracy value perturbed beyond the band fails.
    outcome(lambda fresh: fresh["entries"][0].__setitem__(
        "rel_error", 0.04), 1)
    # A big slowdown fails; the same numbers under a different build_type
    # or scale are skipped, and a dropped entry fails.
    outcome(lambda fresh: fresh["entries"][1].__setitem__(
        "ns_per_op", 1e9), 1)
    outcome(lambda fresh: fresh["entries"][1].__setitem__(
        "ns_per_op", 1e9), 0, base_run={"build_type": "debug"})
    # A fast entry blowing past the factor but losing less than the
    # absolute floor is scheduler noise, not a regression.
    base["entries"][1]["ns_per_op"] = 1e6
    outcome(lambda fresh: fresh["entries"][1].__setitem__(
        "ns_per_op", 2e7), 0)
    base["entries"][1]["ns_per_op"] = 1e8
    outcome(lambda fresh: fresh["entries"][0].__setitem__(
        "rel_error", 0.5), 0, base_run={"scale": "1.0"})
    outcome(lambda fresh: fresh["entries"].pop(0), 1)
    print("check_bench: self-test OK")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    return run(argv[1], argv[2])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
