#!/usr/bin/env bash
# Documentation consistency check, run as a ctest (see tests/CMakeLists.txt).
#
# 1. Required docs exist: the manifest below names the documents other
#    docs, tests and CI point at — deleting or renaming one must fail
#    here, not at a reader's 404.
# 2. Every relative markdown link target in README.md, DESIGN.md,
#    EXPERIMENTS.md and docs/*.md must exist on disk.
# 3. Every source-tree path a docs/*.md file mentions in backticks
#    (src/..., tests/..., bench/..., examples/..., scripts/...) must
#    exist, so the docs cannot drift from the code they describe.
# 4. Every backticked `server.*` / `planner.*` / `estimator.*` /
#    `stream.*` / `log.*` / `accuracy.*` metric, span or log-event name
#    the docs mention must occur in src/ — the observability vocabulary
#    docs advertise is the one the code emits.
#
# Exits non-zero listing every stale reference.

set -u
cd "$(dirname "$0")/.."

fail=0

err() {
  echo "check_docs: $1" >&2
  fail=1
}

# --- 0. required-docs manifest --------------------------------------------
required_docs=(
  README.md
  DESIGN.md
  EXPERIMENTS.md
  ROADMAP.md
  docs/ARCHITECTURE.md
  docs/SERVER.md
  docs/PLANNER.md
  docs/DURABILITY.md
)
for doc in "${required_docs[@]}"; do
  [ -e "$doc" ] || err "required document '$doc' is missing"
done

doc_files=(README.md DESIGN.md EXPERIMENTS.md)
for f in docs/*.md; do
  [ -e "$f" ] && doc_files+=("$f")
done

# --- 1. markdown link targets ---------------------------------------------
for doc in "${doc_files[@]}"; do
  dir=$(dirname "$doc")
  # [text](target) — keep relative targets only, strip #fragments.
  while IFS= read -r target; do
    target=${target%%#*}
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    if [ ! -e "$dir/$target" ]; then
      err "$doc links to missing target '$target'"
    fi
  done < <(grep -o '\[[^][]*\]([^()]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
done

# --- 2. source paths referenced by the docs -------------------------------
for doc in "${doc_files[@]}"; do
  while IFS= read -r path; do
    case "$path" in
      *\**) continue ;;    # globs like src/core/*.h describe sets, not files
      *\<*) continue ;;    # placeholders like tests/<module>_test.cc
    esac
    # A path resolves if it exists as given (file or directory, trailing
    # slash tolerated) or is a build-target name whose source exists
    # (bench/fig6_sampling -> bench/fig6_sampling.cc).
    if [ ! -e "$path" ] && [ ! -e "${path%/}" ] \
        && [ ! -e "$path.cc" ] && [ ! -e "$path.cpp" ]; then
      err "$doc references nonexistent source path '$path'"
    fi
  done < <(grep -o '`\(src\|tests\|bench\|examples\|scripts\)/[^`]*`' "$doc" \
             | tr -d '\`' | sort -u)
done

# --- 4. metric / span names referenced by the docs ------------------------
# Backticked dotted names in the observability vocabulary (server.*,
# planner.*, estimator.*, stream.*, log.*, accuracy.*) must be greppable
# in src/ — either whole (most call sites) or as a "<prefix>." literal
# next to a runtime suffix (the server's per-code failure counters, the
# logger's per-level line counters).
for doc in "${doc_files[@]}"; do
  while IFS= read -r name; do
    case "$name" in
      *\<*) continue ;;    # placeholders like server.requests.failed.<code>
    esac
    if ! grep -rqF "$name" src/; then
      prefix="${name%.*}."
      grep -rqF "\"$prefix" src/ \
        || err "$doc references metric/span '$name' not found in src/"
    fi
  done < <(grep -ho '`\(server\|planner\|estimator\|stream\|log\|accuracy\)\.[a-z0-9_.]*`' "$doc" \
             | tr -d '\`' | sort -u)
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK (${#doc_files[@]} files checked)"
