#!/usr/bin/env bash
# End-to-end telemetry drill (docs/OBSERVABILITY.md, docs/SERVER.md), run
# as a ctest and as a CI step: start `sjsel serve` with structured
# logging, tracing, metrics and the accuracy auditor all armed, drive a
# mixed scripted session, and assert the full correlation story:
#
#   1. a client-supplied request_id is echoed in its response, recorded
#      in the slowlog, in the structured log and in the trace span,
#   2. requests without an id get a server-generated `srv-...` id,
#   3. the `metrics` op returns structurally valid OpenMetrics text
#      carrying request-latency quantiles and accuracy-audit series,
#   4. `health` and `slowlog` answer with the documented fields,
#   5. the structured log brackets the session (server.start/server.stop)
#      and the drain-time metrics snapshot survives on disk — also when
#      the daemon is stopped by SIGTERM instead of a shutdown request.
#
# Skips (exit 77) when python3 is unavailable (OpenMetrics and trace
# validation both need it).
#
# Usage: telemetry_smoke.sh <path-to-sjsel-binary> [workdir]

set -u

SJSEL=${1:?usage: telemetry_smoke.sh <sjsel-binary> [workdir]}
SJSEL=$(realpath "$SJSEL") || { echo "telemetry_smoke: no such binary" >&2; exit 1; }
SCRIPTS_DIR=$(cd "$(dirname "$0")" && pwd)
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"

command -v python3 > /dev/null 2>&1 || {
  echo "telemetry_smoke: SKIP: python3 not available" >&2
  exit 77
}

cd "$WORKDIR"

SOCK="$WORKDIR/telemetry.sock"
METRICS="$WORKDIR/serve_metrics.json"
TRACE="$WORKDIR/serve_trace.json"
LOG="$WORKDIR/serve_log.jsonl"
SERVE_LOG="$WORKDIR/serve.out"
SERVER_PID=""
REQ_ID="telemetry-smoke-42"

fail() {
  echo "telemetry_smoke: FAILED: $1" >&2
  echo "--- serve stdout/stderr ---" >&2
  cat "$SERVE_LOG" >&2 || true
  echo "--- structured log ---" >&2
  cat "$LOG" >&2 || true
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  exit 1
}

"$SJSEL" gen uniform:1200 a.ds --seed=7 > /dev/null || fail "gen a.ds"
"$SJSEL" gen clustered:900 b.ds --seed=8 > /dev/null || fail "gen b.ds"

# Everything armed: process-wide metrics + tracing, debug-level JSON
# logs, audit every estimate against an exact reference (both fixtures
# are far below the cap), keep the 16 slowest requests.
"$SJSEL" serve "$SOCK" --workers=2 \
  --metrics="$METRICS" --trace="$TRACE" \
  --log-level=debug --log-file="$LOG" \
  --audit-rate=1 --audit-exact-cap=10000000 --slowlog-k=16 \
  > "$SERVE_LOG" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 300); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
[ -S "$SOCK" ] || fail "socket never appeared"

RESPONSES=$("$SJSEL" client "$SOCK" <<EOF
{"id":1,"op":"ping"}
{"id":2,"op":"estimate","a":"a.ds","b":"b.ds","request_id":"$REQ_ID"}
{"id":3,"op":"estimate","a":"b.ds","b":"a.ds"}
{"id":4,"op":"frobnicate","request_id":"telemetry-smoke-err"}
{"id":5,"op":"health"}
{"id":6,"op":"metrics"}
{"id":7,"op":"slowlog","top":16}
EOF
) || fail "client session errored"
echo "$RESPONSES"
printf '%s\n' "$RESPONSES" > responses.ndjson

expect() {
  echo "$RESPONSES" | grep -q "$1" || fail "missing in responses: $1"
}
expect '"id":1,"ok":true,"result":{"pong":true}'
expect '"id":2,"ok":true'
expect '"estimated_pairs"'
expect '"id":4,"ok":false,"error":{"code":"unknown_op"'
# Correlation: the supplied id is echoed; requests without one get a
# generated srv- id; the failed request keeps its id too.
expect "\"request_id\":\"$REQ_ID\""
expect '"request_id":"srv-'
expect '"request_id":"telemetry-smoke-err"'
# health fields (status/ready/version/caches).
expect '"status":"ok"'
expect '"ready":true'
expect '"version":"'
expect '"datasets_cached":2'
# The live metrics op carries both renderings.
expect '"openmetrics":"'
expect 'sjsel_server_requests_received_total'
expect '"accuracy.audits"'
# The slowlog reply must name the correlated estimate a second time
# (echo in the id-2 response + the slowlog entry) with its rung note,
# and record the failed request with its error note.
N_CORR=$(echo "$RESPONSES" | grep -o "$REQ_ID" | wc -l)
[ "$N_CORR" -ge 2 ] || fail "request_id not in slowlog (saw $N_CORR occurrence(s))"
expect '"note":"rung='
expect '"note":"error:unknown_op"'

# Structural OpenMetrics validation of the live scrape (id 6).
python3 - <<'PYEOF' || fail "openmetrics structural check"
import json, re, sys

resp = None
with open("responses.ndjson", encoding="utf-8") as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        doc = json.loads(line)
        if doc.get("id") == 6:
            resp = doc
assert resp is not None and resp.get("ok"), "no ok metrics response"
om = resp["result"]["openmetrics"]
assert om.endswith("# EOF\n"), "missing # EOF trailer"
families = set()
for ln in om.splitlines():
    if not ln or ln.startswith("#"):
        continue
    m = re.match(
        r'^([a-zA-Z_][a-zA-Z0-9_]*)(\{[^{}]*\})? (-?[0-9.eE+-]+)$', ln)
    assert m, f"malformed exposition line: {ln!r}"
    families.add(m.group(1))
for need in ("sjsel_server_requests_received_total",
             "sjsel_server_request_us",
             "sjsel_accuracy_rel_error"):
    assert any(f.startswith(need) for f in families), f"missing {need}"
quantiles = [ln for ln in om.splitlines()
             if ln.startswith("sjsel_server_request_us{")
             and "quantile=" in ln]
assert quantiles, "no server.request_us quantile lines"
print(f"openmetrics: OK ({len(families)} families, "
      f"{len(quantiles)} request_us quantiles)")
PYEOF

# Graceful protocol shutdown; daemon must exit 0 and flush everything.
"$SJSEL" client "$SOCK" '{"id":99,"op":"shutdown"}' \
  | grep -q '"stopping":true' || fail "shutdown not acknowledged"
for _ in $(seq 1 300); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$SERVER_PID" 2>/dev/null && fail "daemon still running after shutdown"
wait "$SERVER_PID"
SERVE_EXIT=$?
SERVER_PID=""
[ "$SERVE_EXIT" -eq 0 ] || fail "daemon exited $SERVE_EXIT"

# The structured log brackets the session and carries the correlated id.
grep -q '"event":"server.start"' "$LOG" || fail "no server.start log line"
grep -q '"event":"server.stop"' "$LOG" || fail "no server.stop log line"
grep -q "$REQ_ID" "$LOG" || fail "request_id absent from structured log"
python3 -c '
import json, sys
for line in open(sys.argv[1], encoding="utf-8"):
    line = line.strip()
    if line:
        json.loads(line)
' "$LOG" || fail "structured log is not valid JSON lines"

# The drain-time metrics snapshot aggregates the whole session.
[ -f "$METRICS" ] || fail "metrics snapshot not written"
grep -q '"server.requests.answered"' "$METRICS" \
  || fail "server.requests.answered missing from snapshot"
grep -q '"accuracy.rel_error"' "$METRICS" \
  || fail "accuracy.rel_error missing from snapshot"
grep -q '"accuracy.audits"' "$METRICS" \
  || fail "accuracy.audits missing from snapshot"

# The trace nests, balances, and carries the correlated request span.
python3 "$SCRIPTS_DIR/check_trace.py" "$TRACE" \
  --require-span server.request \
  --require-span server.op.estimate \
  --require-span server.audit \
  --require-detail "request_id=$REQ_ID" \
  || fail "trace validation"

# --- SIGTERM variant: drain-time telemetry without a shutdown op -------
SOCK2="$WORKDIR/telemetry2.sock"
METRICS2="$WORKDIR/sigterm_metrics.json"
LOG2="$WORKDIR/sigterm_log.jsonl"
"$SJSEL" serve "$SOCK2" --workers=1 \
  --metrics="$METRICS2" --log-level=info --log-file="$LOG2" \
  > "$SERVE_LOG" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 300); do
  [ -S "$SOCK2" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "sigterm daemon died during startup"
  sleep 0.1
done
[ -S "$SOCK2" ] || fail "sigterm daemon socket never appeared"
"$SJSEL" client "$SOCK2" '{"id":1,"op":"ping"}' \
  | grep -q '"pong":true' || fail "sigterm daemon ping"
kill -TERM "$SERVER_PID"
for _ in $(seq 1 300); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$SERVER_PID" 2>/dev/null && fail "daemon survived SIGTERM"
wait "$SERVER_PID"
SERVE_EXIT=$?
SERVER_PID=""
[ "$SERVE_EXIT" -eq 0 ] || fail "SIGTERM'd daemon exited $SERVE_EXIT"
[ -f "$METRICS2" ] || fail "SIGTERM'd daemon wrote no metrics snapshot"
grep -q '"server.requests.answered"' "$METRICS2" \
  || fail "server counters missing from SIGTERM snapshot"
grep -q '"event":"server.stop"' "$LOG2" \
  || fail "no server.stop after SIGTERM"

echo "telemetry_smoke: OK"
