#!/usr/bin/env bash
# Crash-recovery drill for the streaming ingest (docs/DURABILITY.md),
# run as a ctest and as a CI step: feed a deterministic op stream into
# `sjsel ingest`, kill -9 the writer mid-stream, then assert the
# recovery invariant end to end:
#
#   1. the reopened stream replays cleanly and its seq covers every
#      acknowledged op (acks are printed only after the WAL record is
#      durable, so acked implies recovered),
#   2. the recovered state is BIT-IDENTICAL (StateDigest) to a reference
#      stream fed exactly the recovered prefix of the same op file,
#   3. a garbage tail appended to the WAL (a torn final write) is
#      dropped by recovery without changing the digest,
#   4. resuming the interrupted stream converges to the same digest as
#      an uninterrupted run of the full op file, and
#   5. a checkpoint re-bases durability without changing the digest.
#
# Usage: recovery_smoke.sh <path-to-sjsel-binary> [workdir]

set -u

SJSEL=${1:?usage: recovery_smoke.sh <sjsel-binary> [workdir]}
SJSEL=$(realpath "$SJSEL") || { echo "recovery_smoke: no such binary" >&2; exit 1; }
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"
cd "$WORKDIR"
rm -rf crash resume reference full
mkdir -p crash resume reference full

fail() {
  echo "recovery_smoke: FAILED: $1" >&2
  exit 1
}

INIT_FLAGS="--extent=0,0,1,1 --gh-level=5 --ph-level=4 --seal-every=4"

# Deterministic stream: same count/seed/remove-frac always prints the
# same lines, so any prefix can be replayed into a reference stream.
"$SJSEL" gen-ops 300 --seed=7 --remove-frac=0.25 > ops.txt || fail "gen-ops"
# `gen-ops <n>` emits n adds plus the interleaved removes.
TOTAL=$(wc -l < ops.txt)
[ "$TOTAL" -ge 300 ] || fail "gen-ops produced only $TOTAL lines"

# --- 1+2: kill -9 mid-stream, recover, compare against acked prefix. ---
# shellcheck disable=SC2086
"$SJSEL" ingest crash --init $INIT_FLAGS > /dev/null || fail "init crash"

# Trickle the ops so the kill lands mid-stream; the subshell feeding
# stdin dies with the pipe once the ingest process is gone.
( while IFS= read -r op; do printf '%s\n' "$op"; sleep 0.005; done < ops.txt ) \
  | "$SJSEL" ingest crash > acks.txt &
INGEST_PID=$!
sleep 0.4
kill -9 "$INGEST_PID" 2>/dev/null || fail "ingest finished before the kill"
wait "$INGEST_PID" 2>/dev/null

ACKED=$(grep -c '^ack ' acks.txt)
[ "$ACKED" -ge 1 ] || fail "no ops were acknowledged before the kill"
[ "$ACKED" -lt "$TOTAL" ] || fail "all $TOTAL ops acked; kill was not mid-stream"
echo "recovery_smoke: killed writer after $ACKED/$TOTAL acks"

STATUS=$("$SJSEL" ingest crash --status) || fail "reopen after kill -9"
echo "$STATUS"
SEQ=$(echo "$STATUS" | sed -n 's/.* seq=\([0-9]*\) .*/\1/p' | head -n 1)
[ -n "$SEQ" ] || fail "no seq in status output"
# Acked implies durable implies recovered; the converse may lag by the
# one record that was synced but whose ack never reached the pipe.
[ "$SEQ" -ge "$ACKED" ] || fail "recovered seq $SEQ lost acked ops ($ACKED)"
[ "$SEQ" -le "$TOTAL" ] || fail "recovered seq $SEQ exceeds the op stream"

# The recovered state must be bit-identical to a fresh stream fed
# exactly the recovered prefix — not merely close: same WAL schedule,
# same seal boundaries, same fold order, same bits.
# shellcheck disable=SC2086
"$SJSEL" ingest reference --init $INIT_FLAGS > /dev/null || fail "init reference"
head -n "$SEQ" ops.txt | "$SJSEL" ingest reference > /dev/null \
  || fail "replay prefix into reference"
DIGEST_CRASH=$("$SJSEL" ingest crash --digest) || fail "digest crash"
DIGEST_REF=$("$SJSEL" ingest reference --digest) || fail "digest reference"
echo "crash:     $DIGEST_CRASH"
echo "reference: $DIGEST_REF"
[ "$DIGEST_CRASH" = "$DIGEST_REF" ] \
  || fail "recovered state differs from the acked-prefix reference"

# --- 3: a torn tail (garbage after the last record) is dropped. --------
printf 'XX\x01' >> crash/wal.log
STATUS_TORN=$("$SJSEL" ingest crash --status) || fail "reopen with torn tail"
echo "$STATUS_TORN" | grep -q 'dropped_bytes=3' \
  || fail "torn tail not reported as dropped: $STATUS_TORN"
DIGEST_TORN=$("$SJSEL" ingest crash --digest) || fail "digest after torn tail"
[ "$DIGEST_TORN" = "$DIGEST_REF" ] || fail "torn tail changed the digest"

# --- 4: resuming the stream converges with an uninterrupted run. -------
tail -n +"$((SEQ + 1))" ops.txt | "$SJSEL" ingest crash > /dev/null \
  || fail "resume remaining ops"
# shellcheck disable=SC2086
"$SJSEL" ingest full --init $INIT_FLAGS > /dev/null || fail "init full"
"$SJSEL" ingest full < ops.txt > /dev/null || fail "uninterrupted run"
DIGEST_RESUMED=$("$SJSEL" ingest crash --digest) || fail "digest resumed"
DIGEST_FULL=$("$SJSEL" ingest full --digest) || fail "digest full"
echo "resumed:   $DIGEST_RESUMED"
echo "full:      $DIGEST_FULL"
[ "$DIGEST_RESUMED" = "$DIGEST_FULL" ] \
  || fail "crash+recover+resume diverged from the uninterrupted run"

# --- 5: checkpoint re-bases durability, never the values. --------------
"$SJSEL" ingest crash --checkpoint > /dev/null || fail "checkpoint"
DIGEST_CKPT=$("$SJSEL" ingest crash --digest) || fail "digest after checkpoint"
[ "$DIGEST_CKPT" = "$DIGEST_FULL" ] || fail "checkpoint changed the digest"
"$SJSEL" ingest crash --status | grep -q 'checkpoint_seq=0' \
  && fail "checkpoint_seq still zero after checkpoint"

echo "recovery_smoke: OK"
