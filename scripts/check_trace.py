#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by `sjsel --trace`.

Checks:
  * the file parses as JSON with a `traceEvents` list
  * `otherData.dropped_events`, when present, is a non-negative integer
    (the ring-overflow accounting the tracer promises)
  * every event has the required fields for its phase ("X" complete
    events need ts/dur, "i" instant events need ts, "M" metadata is
    ignored), and `args.depth` is a non-negative integer when present
  * per thread, complete spans nest properly: replaying the events
    sorted by (ts, -dur, depth) against a stack, every span must lie
    fully inside the span currently open below it (balanced, contained
    intervals — the invariant the self-contained-span design
    guarantees); when the file reports zero dropped events, no span's
    recorded `args.depth` may exceed the replayed stack depth (deeper
    would mean its parent went missing; shallower is legal because a
    ring — the file's tid — can be reused by more than one thread)
  * every span named by a --require-span flag occurs at least once
  * every --require-detail substring occurs in at least one event's
    `args.detail` (e.g. `request_id=abc` proves request correlation
    reached the trace)

Exit code 0 on success, 1 with a diagnostic on any violation.

Usage:
  check_trace.py trace.json --require-span gh.build \
      --require-detail request_id=abc-123
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace JSON file")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="span name that must appear at least once (repeatable)",
    )
    parser.add_argument(
        "--require-detail",
        action="append",
        default=[],
        metavar="SUBSTRING",
        help="substring that must appear in at least one event's "
        "args.detail (repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing or non-list traceEvents")

    # Drop accounting: must be a non-negative int when reported. A file
    # with drops still has to nest, but recorded depth hints can refer to
    # evicted parents, so the depth cross-check below is gated on zero.
    dropped = None
    other = doc.get("otherData")
    if isinstance(other, dict) and "dropped_events" in other:
        dropped = other["dropped_events"]
        if isinstance(dropped, bool) or not isinstance(dropped, int) or dropped < 0:
            fail(f"otherData.dropped_events is {dropped!r}, "
                 "expected a non-negative integer")

    spans_by_tid = defaultdict(list)
    seen_names = set()
    details = []
    n_complete = 0
    n_instant = 0

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event #{i} is not an object")
        ph = ev.get("ph")
        if ph == "M":
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(f"event #{i} has no name")
        if "ts" not in ev or not isinstance(ev["ts"], (int, float)):
            fail(f"event #{i} ({name}) has no numeric ts")
        ev_args = ev.get("args")
        depth = None
        if isinstance(ev_args, dict):
            if "depth" in ev_args:
                depth = ev_args["depth"]
                if (isinstance(depth, bool) or not isinstance(depth, int)
                        or depth < 0):
                    fail(f"event #{i} ({name}) has invalid depth {depth!r}")
            detail = ev_args.get("detail")
            if detail is not None:
                if not isinstance(detail, str):
                    fail(f"event #{i} ({name}) has non-string detail")
                details.append(detail)
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event #{i} ({name}) is 'X' but has no valid dur")
            spans_by_tid[ev.get("tid", 0)].append(
                (float(ev["ts"]), float(dur), depth, name)
            )
            seen_names.add(name)
            n_complete += 1
        elif ph == "i":
            seen_names.add(name)
            n_instant += 1
        else:
            fail(f"event #{i} ({name}) has unexpected phase {ph!r}")

    # Per-thread nesting: sorted by (start, -dur, depth) a parent precedes
    # its children. Replay against a stack; each span must fit inside the
    # innermost still-open span. The recorded depth hint disambiguates
    # zero-width spans sharing an endpoint: an event at the exact end of
    # the open span stays nested only if it is recorded deeper.
    check_depth = dropped == 0
    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda s: (s[0], -s[1], s[2] if s[2] is not None else 0))
        stack = []  # (end_ts, depth, name)
        for ts, dur, depth, name in spans:
            end = ts + dur
            while stack and (
                ts > stack[-1][0]
                or (
                    ts >= stack[-1][0]
                    and (depth is None or stack[-1][1] is None
                         or depth <= stack[-1][1])
                )
            ):
                stack.pop()
            if stack and end > stack[-1][0] + 1e-9:
                fail(
                    f"tid {tid}: span '{name}' [{ts}, {end}] overflows "
                    f"enclosing span '{stack[-1][2]}' ending at {stack[-1][0]}"
                )
            if check_depth and depth is not None and depth > len(stack):
                fail(
                    f"tid {tid}: span '{name}' at ts {ts} records depth "
                    f"{depth} but replays at stack depth {len(stack)} — "
                    "an enclosing span is missing despite zero dropped "
                    "events"
                )
            stack.append((end, depth, name))

    missing = [n for n in args.require_span if n not in seen_names]
    if missing:
        fail(
            f"required spans absent: {', '.join(missing)} "
            f"(present: {', '.join(sorted(seen_names))})"
        )

    missing_details = [
        d for d in args.require_detail
        if not any(d in detail for detail in details)
    ]
    if missing_details:
        sample = ", ".join(sorted(set(details))[:10])
        fail(
            f"required details absent: {', '.join(missing_details)} "
            f"(sample of present details: {sample})"
        )

    print(
        f"check_trace: OK: {n_complete} spans, {n_instant} instants, "
        f"{len(spans_by_tid)} thread(s), "
        f"{len(args.require_span)} required span(s) and "
        f"{len(args.require_detail)} required detail(s) present"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
