#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by `sjsel --trace`.

Checks:
  * the file parses as JSON with a `traceEvents` list
  * every event has the required fields for its phase ("X" complete
    events need ts/dur, "i" instant events need ts, "M" metadata is
    ignored)
  * per thread, complete spans nest properly: replaying the events
    sorted by (ts, -dur) against a stack, every span must lie fully
    inside the span currently open below it (balanced, contained
    intervals — the invariant the self-contained-span design guarantees)
  * every span named by a --require-span flag occurs at least once

Exit code 0 on success, 1 with a diagnostic on any violation.

Usage:
  check_trace.py trace.json --require-span gh.build --require-span cli.run
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace JSON file")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="span name that must appear at least once (repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing or non-list traceEvents")

    spans_by_tid = defaultdict(list)
    seen_names = set()
    n_complete = 0
    n_instant = 0

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event #{i} is not an object")
        ph = ev.get("ph")
        if ph == "M":
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(f"event #{i} has no name")
        if "ts" not in ev or not isinstance(ev["ts"], (int, float)):
            fail(f"event #{i} ({name}) has no numeric ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event #{i} ({name}) is 'X' but has no valid dur")
            spans_by_tid[ev.get("tid", 0)].append(
                (float(ev["ts"]), float(dur), name)
            )
            seen_names.add(name)
            n_complete += 1
        elif ph == "i":
            seen_names.add(name)
            n_instant += 1
        else:
            fail(f"event #{i} ({name}) has unexpected phase {ph!r}")

    # Per-thread nesting: sorted by (start, -dur) a parent precedes its
    # children. Replay against a stack; each span must fit inside the
    # innermost still-open span.
    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []  # (end_ts, name)
        for ts, dur, name in spans:
            end = ts + dur
            while stack and ts >= stack[-1][0]:
                stack.pop()
            if stack and end > stack[-1][0] + 1e-9:
                fail(
                    f"tid {tid}: span '{name}' [{ts}, {end}] overflows "
                    f"enclosing span '{stack[-1][1]}' ending at {stack[-1][0]}"
                )
            stack.append((end, name))

    missing = [n for n in args.require_span if n not in seen_names]
    if missing:
        fail(
            f"required spans absent: {', '.join(missing)} "
            f"(present: {', '.join(sorted(seen_names))})"
        )

    print(
        f"check_trace: OK: {n_complete} spans, {n_instant} instants, "
        f"{len(spans_by_tid)} thread(s), "
        f"{len(args.require_span)} required span(s) present"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
