#!/usr/bin/env bash
# End-to-end drill of the estimation server (docs/SERVER.md), run as a
# ctest and as a CI step: start `sjsel serve` with metrics armed, run a
# scripted client session covering the happy path and the structured
# error paths, then shut down gracefully and assert that
#
#   1. every response is the expected ok/error shape,
#   2. the final metrics snapshot counts server.requests.answered,
#   3. the daemon exits cleanly (exit 0, "served N requests", socket
#      file removed).
#
# Usage: server_smoke.sh <path-to-sjsel-binary> [workdir]

set -u

SJSEL=${1:?usage: server_smoke.sh <sjsel-binary> [workdir]}
SJSEL=$(realpath "$SJSEL") || { echo "server_smoke: no such binary" >&2; exit 1; }
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"
cd "$WORKDIR"

SOCK="$WORKDIR/smoke.sock"
METRICS="$WORKDIR/serve_metrics.json"
SERVE_LOG="$WORKDIR/serve.log"
SERVER_PID=""

fail() {
  echo "server_smoke: FAILED: $1" >&2
  echo "--- serve log ---" >&2
  cat "$SERVE_LOG" >&2 || true
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  exit 1
}

"$SJSEL" gen uniform:1500 a.ds --seed=1 > /dev/null || fail "gen a.ds"
"$SJSEL" gen clustered:1000 b.ds --seed=2 > /dev/null || fail "gen b.ds"
"$SJSEL" gen uniform:800 c.ds --seed=3 > /dev/null || fail "gen c.ds"

# The daemon also arms metrics process-wide (--metrics) so the snapshot
# written at shutdown aggregates every request in the session.
"$SJSEL" serve "$SOCK" --workers=2 --metrics="$METRICS" > "$SERVE_LOG" 2>&1 &
SERVER_PID=$!

# Wait for the socket to appear (the daemon prints "listening" first).
# Generous timeout: CI boxes running the suite in parallel can stall
# process startup for seconds.
for _ in $(seq 1 300); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
[ -S "$SOCK" ] || fail "socket never appeared"

# Scripted session: happy paths and every structured-error path that can
# be triggered deterministically.
RESPONSES=$("$SJSEL" client "$SOCK" <<'EOF'
{"id":1,"op":"ping"}
{"id":2,"op":"estimate","a":"a.ds","b":"b.ds"}
{"id":3,"op":"estimate","a":"a.ds","b":"b.ds","deadline_ms":0}
{"id":4,"op":"estimate","a":"missing.ds","b":"b.ds"}
{"id":5,"op":"frobnicate"}
{"id":6,"op":"plan","paths":["a.ds","b.ds","c.ds"]}
{"id":7,"op":"stats"}
EOF
) || fail "client session errored"
echo "$RESPONSES"

expect() {
  echo "$RESPONSES" | grep -q "$1" || fail "missing in responses: $1"
}
expect '"id":1,"ok":true,"result":{"pong":true}'
expect '"id":2,"ok":true'
expect '"estimated_pairs"'
expect '"id":3,"ok":false,"error":{"code":"deadline"'
expect '"id":4,"ok":false,"error":{"code":"not_found"'
expect '"id":5,"ok":false,"error":{"code":"unknown_op"'
expect '"id":6,"ok":true'
expect '"tree"'
expect '"server.requests.answered"'

# Estimates through the server match the standalone CLI bit-for-bit: the
# response's *_text fields reproduce the `estimate` rendering.
PAIRS_CLI=$("$SJSEL" estimate a.ds b.ds | sed -n 's/^estimated pairs *: //p')
echo "$RESPONSES" | grep -q "\"estimated_pairs_text\":\"$PAIRS_CLI\"" \
  || fail "server estimate '$PAIRS_CLI' differs from CLI"

# Graceful shutdown via the protocol; the daemon must exit 0 by itself.
"$SJSEL" client "$SOCK" '{"id":99,"op":"shutdown"}' \
  | grep -q '"stopping":true' || fail "shutdown not acknowledged"
for _ in $(seq 1 300); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  fail "daemon still running after shutdown request"
fi
wait "$SERVER_PID"
SERVE_EXIT=$?
SERVER_PID=""
[ "$SERVE_EXIT" -eq 0 ] || fail "daemon exited $SERVE_EXIT"
grep -q "served .* requests" "$SERVE_LOG" || fail "no served-requests line"
[ -S "$SOCK" ] && fail "socket file not removed on shutdown"

# The metrics snapshot written at exit must carry the per-request
# counters (armed per request, aggregated across the run).
[ -f "$METRICS" ] || fail "metrics snapshot not written"
grep -q '"server.requests.answered"' "$METRICS" \
  || fail "server.requests.answered missing from metrics snapshot"
grep -q '"server.requests.failed.deadline"' "$METRICS" \
  || fail "deadline failure counter missing from metrics snapshot"

echo "server_smoke: OK"
