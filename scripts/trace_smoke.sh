#!/usr/bin/env bash
# End-to-end smoke test for --trace / --metrics: generates two small
# datasets, runs estimate (healthy + fault-degraded) and join with tracing
# armed, and validates every emitted trace with scripts/check_trace.py
# (balanced per-thread nesting + required spans) and every metrics file
# with a JSON parse.
#
# Usage: trace_smoke.sh <path-to-sjsel-binary>
# Exit:  0 pass, 77 skipped (no python3), non-zero otherwise.

set -euo pipefail

SJSEL="${1:?usage: trace_smoke.sh <path-to-sjsel-binary>}"
HERE="$(cd "$(dirname "$0")" && pwd)"
CHECK="$HERE/check_trace.py"

if ! command -v python3 >/dev/null 2>&1; then
  echo "trace_smoke: python3 not found, skipping" >&2
  exit 77
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$SJSEL" gen uniform:3000 "$TMP/a.ds" --seed=1 >/dev/null
"$SJSEL" gen clustered:3000 "$TMP/b.ds" --seed=2 >/dev/null

# 1. Healthy estimate with verification: the trace must contain the
#    histogram build, the winning GH rung, and the exact-join check.
"$SJSEL" estimate "$TMP/a.ds" "$TMP/b.ds" --verify \
  --trace "$TMP/estimate.json" --metrics "$TMP/metrics.json" >/dev/null
python3 "$CHECK" "$TMP/estimate.json" \
  --require-span cli.run \
  --require-span estimate.guarded \
  --require-span gh.build \
  --require-span estimate.rung.gh \
  --require-span verify.exact_join
python3 -m json.tool "$TMP/metrics.json" >/dev/null
grep -q '"estimator.answered.gh"' "$TMP/metrics.json" || {
  echo "trace_smoke: metrics.json missing estimator.answered.gh" >&2
  exit 1
}

# 2. Degraded estimate: with the GH rung fault-injected the chain must
#    fall through to PH, and the trace must show the PH build + rung.
"$SJSEL" estimate "$TMP/a.ds" "$TMP/b.ds" \
  --inject-faults=estimator.gh=always \
  --trace "$TMP/degraded.json" >/dev/null
python3 "$CHECK" "$TMP/degraded.json" \
  --require-span estimate.rung.gh \
  --require-span ph.build \
  --require-span estimate.rung.ph

# 3. Traced exact join.
"$SJSEL" join "$TMP/a.ds" "$TMP/b.ds" --algo=sweep \
  --trace "$TMP/join.json" >/dev/null
python3 "$CHECK" "$TMP/join.json" \
  --require-span cli.run \
  --require-span join.plane_sweep

echo "trace_smoke: all traces validated"
