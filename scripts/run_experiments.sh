#!/usr/bin/env bash
# Regenerates every table/figure of EXPERIMENTS.md into results/.
#
# Usage:
#   scripts/run_experiments.sh [build_dir] [results_dir]
# Environment:
#   SJSEL_SCALE=<0..1> | SJSEL_FULL=1   dataset scale (default 0.1)
#
# Each bench writes three files into results/: <name>.txt (the stdout
# table), <name>.metrics.json (the run's metrics snapshot, captured via
# SJSEL_METRICS_JSON — see bench/bench_common.h) and, for benches that
# emit one, BENCH_<name>.json (machine-readable entries for
# scripts/check_bench.py). Benches run with results/ as their working
# directory so BENCH_*.json never clobber checked-in baselines.
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$RESULTS_DIR"
BUILD_DIR="$(cd "$BUILD_DIR" && pwd)"
RESULTS_DIR="$(cd "$RESULTS_DIR" && pwd)"

echo "dataset scale: SJSEL_SCALE=${SJSEL_SCALE:-<unset>}" \
     "SJSEL_FULL=${SJSEL_FULL:-<unset>} (unset = each bench's default)"

for bench in "$BUILD_DIR"/bench/*; do
  [[ -f "$bench" && -x "$bench" ]] || continue
  name="$(basename "$bench")"
  echo "== $name"
  (cd "$RESULTS_DIR" &&
   SJSEL_METRICS_JSON="$RESULTS_DIR/$name.metrics.json" "$bench" |
     tee "$RESULTS_DIR/$name.txt")
done

echo
echo "results written to $RESULTS_DIR/"
