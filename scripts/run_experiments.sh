#!/usr/bin/env bash
# Regenerates every table/figure of EXPERIMENTS.md into results/.
#
# Usage:
#   scripts/run_experiments.sh [build_dir] [results_dir]
# Environment:
#   SJSEL_SCALE=<0..1> | SJSEL_FULL=1   dataset scale (default 0.1)
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$RESULTS_DIR"

for bench in "$BUILD_DIR"/bench/*; do
  [[ -f "$bench" && -x "$bench" ]] || continue
  name="$(basename "$bench")"
  echo "== $name"
  "$bench" | tee "$RESULTS_DIR/$name.txt"
done

echo
echo "results written to $RESULTS_DIR/"
