#!/usr/bin/env bash
# Accuracy/perf drift gate, wired as a ctest (bench_drift) and a CI step:
# runs the accuracy_grid bench in a scratch directory and compares the
# BENCH_accuracy.json it writes against the checked-in baseline in
# bench/baselines/ via scripts/check_bench.py. Exits 77 (ctest SKIP) when
# python3 is unavailable.
#
# Usage: bench_drift.sh <accuracy_grid-binary> [workdir]
set -euo pipefail

if ! command -v python3 >/dev/null 2>&1; then
  echo "bench_drift: python3 not found, skipping" >&2
  exit 77
fi

BIN="${1:?usage: bench_drift.sh <accuracy_grid-binary> [workdir]}"
BIN="$(cd "$(dirname "$BIN")" && pwd)/$(basename "$BIN")"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="${2:-$(mktemp -d)}"

mkdir -p "$WORK"
cd "$WORK"
"$BIN"
python3 "$REPO_ROOT/scripts/check_bench.py" "$REPO_ROOT/bench/baselines" "$WORK"
