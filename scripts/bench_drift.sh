#!/usr/bin/env bash
# Accuracy/perf drift gate, wired as a ctest (bench_drift) and a CI step:
# runs each given bench command in a scratch directory and compares every
# BENCH_*.json they write against the checked-in baselines in
# bench/baselines/ via scripts/check_bench.py. Exits 77 (ctest SKIP) when
# python3 is unavailable.
#
# Usage: bench_drift.sh <workdir> "<bench-binary> [args]" ...
# Each command argument is a whole shell word; it is word-split so smoke
# flags ride along ("path/to/kernels --smoke").
set -euo pipefail

if ! command -v python3 >/dev/null 2>&1; then
  echo "bench_drift: python3 not found, skipping" >&2
  exit 77
fi

WORK="${1:?usage: bench_drift.sh <workdir> \"<bench-binary> [args]\" ...}"
shift
[ "$#" -ge 1 ] || { echo "bench_drift: no bench commands given" >&2; exit 2; }
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

mkdir -p "$WORK"
cd "$WORK"
for cmd in "$@"; do
  # shellcheck disable=SC2086  # intentional word split: binary + its flags
  set -- $cmd
  BIN="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
  shift
  "$BIN" "$@"
done
python3 "$REPO_ROOT/scripts/check_bench.py" "$REPO_ROOT/bench/baselines" "$WORK"
