#ifndef SJSEL_RTREE_RTREE_H_
#define SJSEL_RTREE_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geom/dataset.h"
#include "geom/rect.h"
#include "util/result.h"
#include "util/status.h"

namespace sjsel {

/// Node-splitting algorithm used on overflow.
enum class SplitStrategy {
  /// Guttman's quadratic split (the 1984 original).
  kQuadratic,
  /// The R*-tree split (Beckmann et al.): choose the split axis by minimum
  /// margin sum, then the distribution by minimum overlap. (The R*'s
  /// forced-reinsertion step is not implemented.)
  kRStar,
};

/// Tuning knobs for RTree. The defaults model a 4 KiB disk page holding
/// 50 entries, the classic configuration in the spatial-join literature.
struct RTreeOptions {
  /// Maximum entries per node (fanout). Must be >= 4.
  int max_entries = 50;
  /// Minimum fill after a split; 0 means max_entries * 40 %.
  int min_entries = 0;
  SplitStrategy split = SplitStrategy::kQuadratic;

  int EffectiveMin() const {
    if (min_entries > 0) return min_entries;
    const int m = (max_entries * 2) / 5;
    return m < 2 ? 2 : m;
  }
};

/// A classic Guttman R-tree over 2-D rectangles with quadratic node
/// splitting, plus STR and Hilbert bulk loading (Kamel & Faloutsos packing).
///
/// This is the index the paper assumes for (a) performing the actual join
/// whose cost the estimators are compared against, (b) joining the samples
/// drawn by the sampling estimators, and (c) the space/build-time baselines
/// of the evaluation's cost metrics.
class RTree {
 public:
  /// A leaf entry: the MBR of one data object plus its identifier.
  struct Entry {
    Rect rect;
    int64_t id = 0;
  };

  /// An internal tree node. Exposed (read-only) so the synchronized-
  /// traversal join can walk two trees in lock step.
  struct Node {
    bool is_leaf = true;
    int level = 0;  ///< 0 for leaves, parent level = child level + 1.
    std::vector<Rect> rects;
    std::vector<int64_t> ids;                     ///< leaf payloads
    std::vector<std::unique_ptr<Node>> children;  ///< internal children

    size_t size() const { return rects.size(); }
    Rect ComputeMbr() const;
  };

  explicit RTree(RTreeOptions options = RTreeOptions());

  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// One-at-a-time Guttman insertion.
  void Insert(const Rect& rect, int64_t id);

  /// Removes one entry matching (rect, id) exactly, condensing under-full
  /// nodes by reinsertion (Guttman's CondenseTree). Returns NotFound if no
  /// such entry exists.
  Status Delete(const Rect& rect, int64_t id);

  /// One k-nearest-neighbor result.
  struct Neighbor {
    int64_t id = 0;
    Rect rect;
    double distance = 0.0;  ///< Euclidean distance from the query point
  };

  /// The k entries nearest to `query` (Euclidean MINDIST, best-first
  /// search), ordered by ascending distance. Returns fewer than k when the
  /// tree is smaller than k.
  std::vector<Neighbor> NearestNeighbors(const Point& query, int k) const;

  /// Builds a tree by repeated insertion over a whole dataset
  /// (ids = positions).
  static RTree BuildByInsertion(const Dataset& dataset,
                                RTreeOptions options = RTreeOptions());

  /// Sort-Tile-Recursive bulk load (Leutenegger et al.).
  static RTree BulkLoadStr(std::vector<Entry> entries,
                           RTreeOptions options = RTreeOptions());

  /// Hilbert-sort packing (Kamel & Faloutsos, "On Packing R-trees").
  static RTree BulkLoadHilbert(std::vector<Entry> entries,
                               RTreeOptions options = RTreeOptions());

  /// Convenience: dataset -> entries with ids = positions.
  static std::vector<Entry> DatasetEntries(const Dataset& dataset);

  /// Invokes `fn(id, rect)` for every entry whose MBR intersects `query`.
  void RangeQuery(const Rect& query,
                  const std::function<void(int64_t, const Rect&)>& fn) const;

  /// Number of entries intersecting `query`.
  uint64_t CountRange(const Rect& query) const;

  /// Collects ids of entries intersecting `query`.
  std::vector<int64_t> SearchRange(const Rect& query) const;

  uint64_t size() const { return size_; }
  int height() const;
  uint64_t num_nodes() const { return num_nodes_; }
  const Node* root() const { return root_.get(); }
  const RTreeOptions& options() const { return options_; }

  /// Nominal storage footprint assuming fixed-size pages (each node stored
  /// as a page of max_entries slots of 40 bytes plus a 16-byte header).
  /// This is the denominator-compatible "space cost" measure the paper's
  /// evaluation uses.
  uint64_t NominalBytes() const;

  /// Verifies structural invariants (MBR containment, uniform leaf depth,
  /// entry/node accounting). `enforce_min_fill` additionally checks the
  /// Guttman minimum fill factor, which holds for insertion-built trees but
  /// not for packed ones (their last node per level may be under-filled).
  Status CheckInvariants(bool enforce_min_fill = false) const;

 private:
  Node* ChooseLeaf(const Rect& rect) const;
  void SplitNode(Node* node, std::unique_ptr<Node>* new_node_out);
  void QuadraticSplit(Node* node, std::unique_ptr<Node>* new_node_out);
  void RStarSplit(Node* node, std::unique_ptr<Node>* new_node_out);
  void AdjustPath(const std::vector<Node*>& path, const Rect& rect);
  static RTree PackSorted(std::vector<Entry> entries, RTreeOptions options,
                          bool str_tiles);

  RTreeOptions options_;
  std::unique_ptr<Node> root_;
  uint64_t size_ = 0;
  uint64_t num_nodes_ = 1;
};

}  // namespace sjsel

#endif  // SJSEL_RTREE_RTREE_H_
