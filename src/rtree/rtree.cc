#include "rtree/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <queue>

#include "hilbert/hilbert.h"

namespace sjsel {

Rect RTree::Node::ComputeMbr() const {
  Rect mbr = Rect::Empty();
  for (const Rect& r : rects) mbr.Extend(r);
  return mbr;
}

RTree::RTree(RTreeOptions options) : options_(options) {
  if (options_.max_entries < 4) options_.max_entries = 4;
  root_ = std::make_unique<Node>();
}

namespace {

// Index of the child whose MBR needs the least enlargement to cover `rect`
// (ties broken by smaller area) — Guttman's ChooseLeaf criterion.
int ChooseSubtree(const RTree::Node& node, const Rect& rect) {
  int best = 0;
  double best_enlargement = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.rects.size(); ++i) {
    const double enlargement = node.rects[i].Enlargement(rect);
    const double area = node.rects[i].area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best = static_cast<int>(i);
      best_enlargement = enlargement;
      best_area = area;
    }
  }
  return best;
}

}  // namespace

void RTree::SplitNode(Node* node, std::unique_ptr<Node>* new_node_out) {
  if (options_.split == SplitStrategy::kRStar) {
    RStarSplit(node, new_node_out);
  } else {
    QuadraticSplit(node, new_node_out);
  }
}

// The R* split: pick the axis whose sorted distributions have the smallest
// total margin, then the distribution on that axis with the least overlap
// between the two groups (ties by combined area).
void RTree::RStarSplit(Node* node, std::unique_ptr<Node>* new_node_out) {
  const int n = static_cast<int>(node->size());
  const int min_fill = options_.EffectiveMin();

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;

  // Evaluates one axis: returns the margin sum over all legal
  // distributions of both sorts and remembers the best (min-overlap)
  // distribution seen.
  struct BestSplit {
    std::vector<int> order;
    int split_at = 0;
    double overlap = std::numeric_limits<double>::infinity();
    double area = std::numeric_limits<double>::infinity();
  };

  auto evaluate_axis = [&](bool x_axis, BestSplit* best) {
    double margin_sum = 0.0;
    for (const bool by_max : {false, true}) {
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const Rect& ra = node->rects[a];
        const Rect& rb = node->rects[b];
        if (x_axis) {
          return by_max ? ra.max_x < rb.max_x : ra.min_x < rb.min_x;
        }
        return by_max ? ra.max_y < rb.max_y : ra.min_y < rb.min_y;
      });
      // Prefix/suffix MBRs for O(n) distribution evaluation.
      std::vector<Rect> prefix(n);
      std::vector<Rect> suffix(n);
      Rect acc = Rect::Empty();
      for (int i = 0; i < n; ++i) {
        acc.Extend(node->rects[order[i]]);
        prefix[i] = acc;
      }
      acc = Rect::Empty();
      for (int i = n - 1; i >= 0; --i) {
        acc.Extend(node->rects[order[i]]);
        suffix[i] = acc;
      }
      for (int k = min_fill; k <= n - min_fill; ++k) {
        const Rect& g1 = prefix[k - 1];
        const Rect& g2 = suffix[k];
        margin_sum += g1.margin() + g2.margin();
        const Rect inter = g1.Intersection(g2);
        const double overlap = inter.IsEmpty() ? 0.0 : inter.area();
        const double area = g1.area() + g2.area();
        if (overlap < best->overlap ||
            (overlap == best->overlap && area < best->area)) {
          best->overlap = overlap;
          best->area = area;
          best->order = order;
          best->split_at = k;
        }
      }
    }
    return margin_sum;
  };

  BestSplit best_x;
  BestSplit best_y;
  const double margin_x = evaluate_axis(true, &best_x);
  const double margin_y = evaluate_axis(false, &best_y);
  const BestSplit& best = margin_x <= margin_y ? best_x : best_y;

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  sibling->level = node->level;
  Node kept;
  kept.is_leaf = node->is_leaf;
  kept.level = node->level;
  for (int i = 0; i < n; ++i) {
    const int entry = best.order[i];
    Node* dst = i < best.split_at ? &kept : sibling.get();
    dst->rects.push_back(node->rects[entry]);
    if (node->is_leaf) {
      dst->ids.push_back(node->ids[entry]);
    } else {
      dst->children.push_back(std::move(node->children[entry]));
    }
  }
  *node = std::move(kept);
  ++num_nodes_;
  *new_node_out = std::move(sibling);
}

// Guttman's quadratic split: moves roughly half of `node`'s entries into a
// fresh sibling, choosing seed entries that waste the most area when paired
// and then assigning each remaining entry to the group it enlarges least.
void RTree::QuadraticSplit(Node* node, std::unique_ptr<Node>* new_node_out) {
  const int n = static_cast<int>(node->size());
  const int min_fill = options_.EffectiveMin();

  // Pick seeds: the pair with maximal dead area.
  int seed_a = 0;
  int seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      Rect u = node->rects[i];
      u.Extend(node->rects[j]);
      const double dead =
          u.area() - node->rects[i].area() - node->rects[j].area();
      if (dead > worst) {
        worst = dead;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  sibling->level = node->level;

  std::vector<char> assigned(n, 0);  // 0 = pending, 1 = group A, 2 = group B
  assigned[seed_a] = 1;
  assigned[seed_b] = 2;
  Rect mbr_a = node->rects[seed_a];
  Rect mbr_b = node->rects[seed_b];
  int count_a = 1;
  int count_b = 1;
  int pending = n - 2;

  while (pending > 0) {
    // If one group must take all remaining entries to reach min fill, do so.
    if (count_a + pending == min_fill) {
      for (int i = 0; i < n; ++i) {
        if (assigned[i] == 0) {
          assigned[i] = 1;
          mbr_a.Extend(node->rects[i]);
          ++count_a;
        }
      }
      pending = 0;
      break;
    }
    if (count_b + pending == min_fill) {
      for (int i = 0; i < n; ++i) {
        if (assigned[i] == 0) {
          assigned[i] = 2;
          mbr_b.Extend(node->rects[i]);
          ++count_b;
        }
      }
      pending = 0;
      break;
    }

    // PickNext: the pending entry with the largest preference difference.
    int pick = -1;
    double pick_diff = -1.0;
    double pick_da = 0.0;
    double pick_db = 0.0;
    for (int i = 0; i < n; ++i) {
      if (assigned[i] != 0) continue;
      const double da = mbr_a.Enlargement(node->rects[i]);
      const double db = mbr_b.Enlargement(node->rects[i]);
      const double diff = std::fabs(da - db);
      if (diff > pick_diff) {
        pick_diff = diff;
        pick = i;
        pick_da = da;
        pick_db = db;
      }
    }
    assert(pick >= 0);

    bool to_a;
    if (pick_da != pick_db) {
      to_a = pick_da < pick_db;
    } else if (mbr_a.area() != mbr_b.area()) {
      to_a = mbr_a.area() < mbr_b.area();
    } else {
      to_a = count_a <= count_b;
    }
    if (to_a) {
      assigned[pick] = 1;
      mbr_a.Extend(node->rects[pick]);
      ++count_a;
    } else {
      assigned[pick] = 2;
      mbr_b.Extend(node->rects[pick]);
      ++count_b;
    }
    --pending;
  }

  // Materialize the two groups.
  Node kept;
  kept.is_leaf = node->is_leaf;
  kept.level = node->level;
  for (int i = 0; i < n; ++i) {
    Node* dst = assigned[i] == 1 ? &kept : sibling.get();
    dst->rects.push_back(node->rects[i]);
    if (node->is_leaf) {
      dst->ids.push_back(node->ids[i]);
    } else {
      dst->children.push_back(std::move(node->children[i]));
    }
  }
  *node = std::move(kept);
  ++num_nodes_;
  *new_node_out = std::move(sibling);
}

namespace {

// Recursive insertion helper lives outside the class to keep the header
// small; it needs access to SplitNode, so we pass the tree.
}  // namespace

void RTree::Insert(const Rect& rect, int64_t id) {
  // Iterative descent recording the path so splits can propagate up.
  std::vector<Node*> path;
  std::vector<int> slot;  // child slot taken at each internal node
  Node* node = root_.get();
  while (!node->is_leaf) {
    const int best = ChooseSubtree(*node, rect);
    node->rects[best].Extend(rect);
    path.push_back(node);
    slot.push_back(best);
    node = node->children[best].get();
  }
  node->rects.push_back(rect);
  node->ids.push_back(id);
  ++size_;

  // Split overflowing nodes bottom-up.
  std::unique_ptr<Node> carried;  // new sibling produced at the level below
  Node* current = node;
  int depth = static_cast<int>(path.size()) - 1;
  for (;;) {
    if (carried != nullptr) {
      current->rects.push_back(carried->ComputeMbr());
      current->children.push_back(std::move(carried));
    }
    std::unique_ptr<Node> split;
    if (static_cast<int>(current->size()) > options_.max_entries) {
      SplitNode(current, &split);
    }
    if (depth < 0) {
      // `current` is the root.
      if (split != nullptr) {
        auto new_root = std::make_unique<Node>();
        new_root->is_leaf = false;
        new_root->level = current->level + 1;
        new_root->rects.push_back(root_->ComputeMbr());
        new_root->rects.push_back(split->ComputeMbr());
        new_root->children.push_back(std::move(root_));
        new_root->children.push_back(std::move(split));
        root_ = std::move(new_root);
        ++num_nodes_;
      }
      break;
    }
    Node* parent = path[depth];
    // Keep the parent's entry for `current` tight (it may have shrunk after
    // a split or grown by the insertion; Extend above already handled
    // growth, recompute only when a split rearranged entries).
    if (split != nullptr) {
      parent->rects[slot[depth]] = current->ComputeMbr();
    }
    carried = std::move(split);
    current = parent;
    --depth;
  }
}

RTree RTree::BuildByInsertion(const Dataset& dataset, RTreeOptions options) {
  RTree tree(options);
  const auto& rects = dataset.rects();
  for (size_t i = 0; i < rects.size(); ++i) {
    tree.Insert(rects[i], static_cast<int64_t>(i));
  }
  return tree;
}

std::vector<RTree::Entry> RTree::DatasetEntries(const Dataset& dataset) {
  std::vector<Entry> entries;
  entries.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    entries.push_back(Entry{dataset[i], static_cast<int64_t>(i)});
  }
  return entries;
}

namespace {

struct PackItem {
  Rect rect;
  int64_t id = 0;
  std::unique_ptr<RTree::Node> node;  // null at leaf level
};

// Sort-Tile-Recursive grouping of one tree level: orders `items` so that
// consecutive runs of `capacity` form spatially coherent groups.
void StrOrder(std::vector<PackItem>* items, int capacity) {
  const size_t n = items->size();
  const size_t num_groups = (n + capacity - 1) / capacity;
  const size_t num_slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_groups))));
  const size_t slab_size = num_slabs == 0
                               ? n
                               : (num_groups + num_slabs - 1) / num_slabs *
                                     static_cast<size_t>(capacity);
  std::sort(items->begin(), items->end(),
            [](const PackItem& a, const PackItem& b) {
              return a.rect.center().x < b.rect.center().x;
            });
  for (size_t start = 0; start < n; start += slab_size) {
    const size_t end = std::min(n, start + slab_size);
    std::sort(items->begin() + start, items->begin() + end,
              [](const PackItem& a, const PackItem& b) {
                return a.rect.center().y < b.rect.center().y;
              });
  }
}

}  // namespace

// Shared packing driver: `str_tiles` selects STR ordering per level;
// otherwise items keep their incoming (Hilbert) order at every level.
RTree RTree::PackSorted(std::vector<Entry> entries, RTreeOptions options,
                        bool str_tiles) {
  RTree tree(options);
  if (entries.empty()) return tree;
  const int cap = tree.options_.max_entries;

  std::vector<PackItem> items;
  items.reserve(entries.size());
  for (Entry& e : entries) {
    items.push_back(PackItem{e.rect, e.id, nullptr});
  }

  tree.size_ = entries.size();
  tree.num_nodes_ = 0;

  int level = 0;
  bool leaf_level = true;
  while (true) {
    if (str_tiles) StrOrder(&items, cap);
    std::vector<PackItem> parents;
    parents.reserve(items.size() / cap + 1);
    for (size_t start = 0; start < items.size();
         start += static_cast<size_t>(cap)) {
      const size_t end =
          std::min(items.size(), start + static_cast<size_t>(cap));
      auto node = std::make_unique<Node>();
      node->is_leaf = leaf_level;
      node->level = level;
      for (size_t i = start; i < end; ++i) {
        node->rects.push_back(items[i].rect);
        if (leaf_level) {
          node->ids.push_back(items[i].id);
        } else {
          node->children.push_back(std::move(items[i].node));
        }
      }
      ++tree.num_nodes_;
      PackItem parent;
      parent.rect = node->ComputeMbr();
      parent.node = std::move(node);
      parents.push_back(std::move(parent));
    }
    if (parents.size() == 1) {
      tree.root_ = std::move(parents[0].node);
      break;
    }
    items = std::move(parents);
    leaf_level = false;
    ++level;
  }
  return tree;
}

RTree RTree::BulkLoadStr(std::vector<Entry> entries, RTreeOptions options) {
  return PackSorted(std::move(entries), options, /*str_tiles=*/true);
}

RTree RTree::BulkLoadHilbert(std::vector<Entry> entries,
                             RTreeOptions options) {
  Rect extent = Rect::Empty();
  for (const Entry& e : entries) extent.Extend(e.rect);
  const HilbertCurve curve(16);
  std::vector<std::pair<uint64_t, size_t>> keys;
  keys.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    keys.emplace_back(curve.ValueForRect(entries[i].rect, extent), i);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<Entry> sorted;
  sorted.reserve(entries.size());
  for (const auto& [key, idx] : keys) {
    (void)key;
    sorted.push_back(entries[idx]);
  }
  return PackSorted(std::move(sorted), options, /*str_tiles=*/false);
}

namespace {

// Collects every leaf entry of a subtree (used when CondenseTree orphans a
// node: its entries are reinserted from the leaves up).
void CollectLeafEntries(const RTree::Node& node,
                        std::vector<RTree::Entry>* out) {
  if (node.is_leaf) {
    for (size_t i = 0; i < node.rects.size(); ++i) {
      out->push_back(RTree::Entry{node.rects[i], node.ids[i]});
    }
    return;
  }
  for (const auto& child : node.children) {
    CollectLeafEntries(*child, out);
  }
}

uint64_t CountNodes(const RTree::Node& node) {
  uint64_t n = 1;
  for (const auto& child : node.children) n += CountNodes(*child);
  return n;
}

}  // namespace

Status RTree::Delete(const Rect& rect, int64_t id) {
  std::vector<Entry> orphans;
  uint64_t removed_nodes = 0;

  // Recursive removal with condensation. Returns true if the entry was
  // found and removed somewhere under `node`.
  std::function<bool(Node*)> remove = [&](Node* node) -> bool {
    if (node->is_leaf) {
      for (size_t i = 0; i < node->rects.size(); ++i) {
        if (node->ids[i] == id && node->rects[i] == rect) {
          node->rects.erase(node->rects.begin() + i);
          node->ids.erase(node->ids.begin() + i);
          return true;
        }
      }
      return false;
    }
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (!node->rects[i].Contains(rect)) continue;
      Node* child = node->children[i].get();
      if (!remove(child)) continue;
      if (static_cast<int>(child->size()) < options_.EffectiveMin()) {
        // Orphan the under-full child; its entries are reinserted below.
        removed_nodes += CountNodes(*child);
        CollectLeafEntries(*child, &orphans);
        node->rects.erase(node->rects.begin() + i);
        node->children.erase(node->children.begin() + i);
      } else {
        node->rects[i] = child->ComputeMbr();
      }
      return true;
    }
    return false;
  };

  if (!remove(root_.get())) {
    return Status::NotFound("no entry with the given rect and id");
  }
  --size_;

  // Shrink the root while it is an internal node with a single child.
  while (!root_->is_leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children[0]);
    --num_nodes_;
  }
  num_nodes_ -= removed_nodes;

  // Reinsert orphaned entries (size_ bookkeeping: Insert re-adds them).
  size_ -= orphans.size();
  for (const Entry& e : orphans) {
    Insert(e.rect, e.id);
  }
  return Status::OK();
}

std::vector<RTree::Neighbor> RTree::NearestNeighbors(const Point& query,
                                                     int k) const {
  std::vector<Neighbor> result;
  if (k <= 0 || size_ == 0) return result;

  // Best-first search over a min-heap of (MINDIST, node-or-entry).
  struct HeapItem {
    double dist_sq;
    const Node* node;   // null for entry items
    int64_t id;
    Rect rect;
    bool operator>(const HeapItem& o) const { return dist_sq > o.dist_sq; }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  heap.push(HeapItem{0.0, root_.get(), 0, Rect()});

  while (!heap.empty() && static_cast<int>(result.size()) < k) {
    const HeapItem item = heap.top();
    heap.pop();
    if (item.node == nullptr) {
      result.push_back(
          Neighbor{item.id, item.rect, std::sqrt(item.dist_sq)});
      continue;
    }
    const Node& node = *item.node;
    for (size_t i = 0; i < node.rects.size(); ++i) {
      const double d = node.rects[i].DistanceSqToPoint(query);
      if (node.is_leaf) {
        heap.push(HeapItem{d, nullptr, node.ids[i], node.rects[i]});
      } else {
        heap.push(HeapItem{d, node.children[i].get(), 0, Rect()});
      }
    }
  }
  return result;
}

void RTree::RangeQuery(
    const Rect& query,
    const std::function<void(int64_t, const Rect&)>& fn) const {
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (size_t i = 0; i < node->rects.size(); ++i) {
      if (!node->rects[i].Intersects(query)) continue;
      if (node->is_leaf) {
        fn(node->ids[i], node->rects[i]);
      } else {
        stack.push_back(node->children[i].get());
      }
    }
  }
}

uint64_t RTree::CountRange(const Rect& query) const {
  uint64_t count = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (size_t i = 0; i < node->rects.size(); ++i) {
      if (!node->rects[i].Intersects(query)) continue;
      if (node->is_leaf) {
        ++count;
      } else {
        stack.push_back(node->children[i].get());
      }
    }
  }
  return count;
}

std::vector<int64_t> RTree::SearchRange(const Rect& query) const {
  std::vector<int64_t> out;
  RangeQuery(query, [&out](int64_t id, const Rect&) { out.push_back(id); });
  return out;
}

int RTree::height() const { return root_->level + 1; }

uint64_t RTree::NominalBytes() const {
  const uint64_t page = 16 + static_cast<uint64_t>(options_.max_entries) * 40;
  return num_nodes_ * page;
}

namespace {

Status CheckNode(const RTree::Node& node, const RTreeOptions& options,
                 bool is_root, bool enforce_min_fill, int expected_leaf_level,
                 uint64_t* entry_count, uint64_t* node_count) {
  ++*node_count;
  const int n = static_cast<int>(node.size());
  if (n > options.max_entries) {
    return Status::Internal("node overflow: " + std::to_string(n));
  }
  if (enforce_min_fill && !is_root && n < options.EffectiveMin()) {
    return Status::Internal("node underflow: " + std::to_string(n));
  }
  if (node.is_leaf) {
    if (node.level != expected_leaf_level) {
      return Status::Internal("leaf at wrong level");
    }
    if (node.ids.size() != node.rects.size()) {
      return Status::Internal("leaf id/rect count mismatch");
    }
    *entry_count += node.rects.size();
    return Status::OK();
  }
  if (node.children.size() != node.rects.size()) {
    return Status::Internal("internal child/rect count mismatch");
  }
  if (is_root && n < 2) {
    return Status::Internal("internal root with fewer than 2 children");
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    const RTree::Node& child = *node.children[i];
    if (child.level != node.level - 1) {
      return Status::Internal("child level mismatch");
    }
    const Rect tight = child.ComputeMbr();
    if (!node.rects[i].Contains(tight)) {
      return Status::Internal("parent entry does not cover child MBR");
    }
    SJSEL_RETURN_IF_ERROR(CheckNode(child, options, false, enforce_min_fill,
                                    expected_leaf_level, entry_count,
                                    node_count));
  }
  return Status::OK();
}

}  // namespace

Status RTree::CheckInvariants(bool enforce_min_fill) const {
  uint64_t entry_count = 0;
  uint64_t node_count = 0;
  SJSEL_RETURN_IF_ERROR(CheckNode(*root_, options_, /*is_root=*/true,
                                  enforce_min_fill,
                                  /*expected_leaf_level=*/0, &entry_count,
                                  &node_count));
  if (entry_count != size_) {
    return Status::Internal("size mismatch: counted " +
                            std::to_string(entry_count) + " tracked " +
                            std::to_string(size_));
  }
  if (node_count != num_nodes_) {
    return Status::Internal("node count mismatch: counted " +
                            std::to_string(node_count) + " tracked " +
                            std::to_string(num_nodes_));
  }
  return Status::OK();
}

}  // namespace sjsel
