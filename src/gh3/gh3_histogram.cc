#include "gh3/gh3_histogram.h"

#include <algorithm>
#include <cmath>

namespace sjsel {

uint64_t NestedLoopJoinCount3(const BoxDataset& a, const BoxDataset& b) {
  uint64_t count = 0;
  for (const Box3& ba : a) {
    for (const Box3& bb : b) {
      if (ba.Intersects(bb)) ++count;
    }
  }
  return count;
}

namespace {

double OverlapLen(double lo, double hi, double cell_lo, double cell_hi) {
  return std::max(0.0, std::min(hi, cell_hi) - std::max(lo, cell_lo));
}

}  // namespace

Result<Gh3Histogram> Gh3Histogram::Build(const BoxDataset& ds,
                                         const Box3& extent, int level) {
  if (level < 0 || level > 8) {
    return Status::InvalidArgument("gh3 level must be in [0, 8]");
  }
  if (extent.dx() <= 0.0 || extent.dy() <= 0.0 || extent.dz() <= 0.0) {
    return Status::InvalidArgument("gh3 extent must have positive volume");
  }

  Gh3Histogram hist;
  hist.extent_ = extent;
  hist.level_ = level;
  hist.n_ = ds.size();
  const int g = hist.per_axis();
  const int64_t cells = hist.num_cells();
  hist.c_.assign(cells, 0.0);
  hist.o_.assign(cells, 0.0);
  for (int d = 0; d < 3; ++d) {
    hist.e_[d].assign(cells, 0.0);
    hist.f_[d].assign(cells, 0.0);
  }

  const double cw[3] = {extent.dx() / g, extent.dy() / g, extent.dz() / g};
  const double lo[3] = {extent.min_x, extent.min_y, extent.min_z};
  auto cell_of = [&](double v, int axis) {
    int c = static_cast<int>(std::floor((v - lo[axis]) / cw[axis]));
    return std::clamp(c, 0, g - 1);
  };
  auto flat = [g](int cx, int cy, int cz) {
    return (static_cast<int64_t>(cz) * g + cy) * g + cx;
  };
  auto cell_lo = [&](int c, int axis) { return lo[axis] + c * cw[axis]; };

  for (const Box3& b : ds) {
    const int x0 = cell_of(b.min_x, 0);
    const int x1 = cell_of(b.max_x, 0);
    const int y0 = cell_of(b.min_y, 1);
    const int y1 = cell_of(b.max_y, 1);
    const int z0 = cell_of(b.min_z, 2);
    const int z1 = cell_of(b.max_z, 2);

    // 8 corner points.
    for (const double x : {b.min_x, b.max_x}) {
      for (const double y : {b.min_y, b.max_y}) {
        for (const double z : {b.min_z, b.max_z}) {
          hist.c_[flat(cell_of(x, 0), cell_of(y, 1), cell_of(z, 2))] += 1.0;
        }
      }
    }

    // Volume term.
    for (int cz = z0; cz <= z1; ++cz) {
      const double oz = OverlapLen(b.min_z, b.max_z, cell_lo(cz, 2),
                                   cell_lo(cz + 1, 2));
      for (int cy = y0; cy <= y1; ++cy) {
        const double oy = OverlapLen(b.min_y, b.max_y, cell_lo(cy, 1),
                                     cell_lo(cy + 1, 1));
        for (int cx = x0; cx <= x1; ++cx) {
          const double ox = OverlapLen(b.min_x, b.max_x, cell_lo(cx, 0),
                                       cell_lo(cx + 1, 0));
          hist.o_[flat(cx, cy, cz)] +=
              (ox / cw[0]) * (oy / cw[1]) * (oz / cw[2]);
        }
      }
    }

    // Edges along x: 4 per box, at the (y, z) corner combinations.
    for (const double y : {b.min_y, b.max_y}) {
      const int cy = cell_of(y, 1);
      for (const double z : {b.min_z, b.max_z}) {
        const int cz = cell_of(z, 2);
        for (int cx = x0; cx <= x1; ++cx) {
          hist.e_[0][flat(cx, cy, cz)] +=
              OverlapLen(b.min_x, b.max_x, cell_lo(cx, 0),
                         cell_lo(cx + 1, 0)) /
              cw[0];
        }
      }
    }
    // Edges along y.
    for (const double x : {b.min_x, b.max_x}) {
      const int cx = cell_of(x, 0);
      for (const double z : {b.min_z, b.max_z}) {
        const int cz = cell_of(z, 2);
        for (int cy = y0; cy <= y1; ++cy) {
          hist.e_[1][flat(cx, cy, cz)] +=
              OverlapLen(b.min_y, b.max_y, cell_lo(cy, 1),
                         cell_lo(cy + 1, 1)) /
              cw[1];
        }
      }
    }
    // Edges along z.
    for (const double x : {b.min_x, b.max_x}) {
      const int cx = cell_of(x, 0);
      for (const double y : {b.min_y, b.max_y}) {
        const int cy = cell_of(y, 1);
        for (int cz = z0; cz <= z1; ++cz) {
          hist.e_[2][flat(cx, cy, cz)] +=
              OverlapLen(b.min_z, b.max_z, cell_lo(cz, 2),
                         cell_lo(cz + 1, 2)) /
              cw[2];
        }
      }
    }

    // Faces normal to x: 2 per box at x ∈ {min_x, max_x}.
    for (const double x : {b.min_x, b.max_x}) {
      const int cx = cell_of(x, 0);
      for (int cz = z0; cz <= z1; ++cz) {
        const double oz = OverlapLen(b.min_z, b.max_z, cell_lo(cz, 2),
                                     cell_lo(cz + 1, 2));
        for (int cy = y0; cy <= y1; ++cy) {
          const double oy = OverlapLen(b.min_y, b.max_y, cell_lo(cy, 1),
                                       cell_lo(cy + 1, 1));
          hist.f_[0][flat(cx, cy, cz)] += (oy / cw[1]) * (oz / cw[2]);
        }
      }
    }
    // Faces normal to y.
    for (const double y : {b.min_y, b.max_y}) {
      const int cy = cell_of(y, 1);
      for (int cz = z0; cz <= z1; ++cz) {
        const double oz = OverlapLen(b.min_z, b.max_z, cell_lo(cz, 2),
                                     cell_lo(cz + 1, 2));
        for (int cx = x0; cx <= x1; ++cx) {
          const double ox = OverlapLen(b.min_x, b.max_x, cell_lo(cx, 0),
                                       cell_lo(cx + 1, 0));
          hist.f_[1][flat(cx, cy, cz)] += (ox / cw[0]) * (oz / cw[2]);
        }
      }
    }
    // Faces normal to z.
    for (const double z : {b.min_z, b.max_z}) {
      const int cz = cell_of(z, 2);
      for (int cy = y0; cy <= y1; ++cy) {
        const double oy = OverlapLen(b.min_y, b.max_y, cell_lo(cy, 1),
                                     cell_lo(cy + 1, 1));
        for (int cx = x0; cx <= x1; ++cx) {
          const double ox = OverlapLen(b.min_x, b.max_x, cell_lo(cx, 0),
                                       cell_lo(cx + 1, 0));
          hist.f_[2][flat(cx, cy, cz)] += (ox / cw[0]) * (oy / cw[1]);
        }
      }
    }
  }
  return hist;
}

Result<double> EstimateGh3IntersectionPoints(const Gh3Histogram& a,
                                             const Gh3Histogram& b) {
  if (a.level() != b.level() || !(a.extent() == b.extent())) {
    return Status::InvalidArgument(
        "gh3 histograms built on different grids cannot be combined");
  }
  double ip = 0.0;
  const size_t n = a.c().size();
  for (size_t i = 0; i < n; ++i) {
    ip += a.c()[i] * b.o()[i] + a.o()[i] * b.c()[i];
    for (int d = 0; d < 3; ++d) {
      ip += a.e(d)[i] * b.f(d)[i] + a.f(d)[i] * b.e(d)[i];
    }
  }
  return ip;
}

Result<double> EstimateGh3JoinPairs(const Gh3Histogram& a,
                                    const Gh3Histogram& b) {
  double ip = 0.0;
  SJSEL_ASSIGN_OR_RETURN(ip, EstimateGh3IntersectionPoints(a, b));
  return ip / 8.0;
}

}  // namespace sjsel
