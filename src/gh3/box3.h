#ifndef SJSEL_GH3_BOX3_H_
#define SJSEL_GH3_BOX3_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace sjsel {

/// A point in 3-space.
struct Point3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend bool operator==(const Point3&, const Point3&) = default;
};

/// An axis-parallel box (3-D MBR). The 3-D counterpart of Rect, supporting
/// the GH generalization of the paper's "future work" direction: every
/// intersection of two boxes is a box with exactly 8 corner points.
struct Box3 {
  double min_x = 0.0;
  double min_y = 0.0;
  double min_z = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;
  double max_z = 0.0;

  Box3() = default;
  Box3(double x0, double y0, double z0, double x1, double y1, double z1)
      : min_x(x0), min_y(y0), min_z(z0), max_x(x1), max_y(y1), max_z(z1) {}

  double dx() const { return max_x - min_x; }
  double dy() const { return max_y - min_y; }
  double dz() const { return max_z - min_z; }
  double volume() const { return dx() * dy() * dz(); }

  bool Intersects(const Box3& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y && min_z <= o.max_z && o.min_z <= max_z;
  }

  bool Contains(const Point3& p) const {
    return min_x <= p.x && p.x <= max_x && min_y <= p.y && p.y <= max_y &&
           min_z <= p.z && p.z <= max_z;
  }

  friend bool operator==(const Box3&, const Box3&) = default;
};

/// A bag of boxes — the 3-D dataset the gh3 estimator consumes.
using BoxDataset = std::vector<Box3>;

/// O(N1*N2) intersection-count oracle for tests and ground truth.
uint64_t NestedLoopJoinCount3(const BoxDataset& a, const BoxDataset& b);

}  // namespace sjsel

#endif  // SJSEL_GH3_BOX3_H_
