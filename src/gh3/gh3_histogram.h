#ifndef SJSEL_GH3_GH3_HISTOGRAM_H_
#define SJSEL_GH3_GH3_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "gh3/box3.h"
#include "util/result.h"

namespace sjsel {

/// The Geometric Histogram generalized to three dimensions — a realization
/// of the paper's future-work direction. The 2-D argument lifts cleanly:
/// the intersection of two boxes is a box with exactly **8** corner
/// points, and each corner takes its x, y, z coordinates from either box A
/// or box B, so it is one of
///
///   - a corner of one box inside the other       (3 coords from one box),
///   - an axis-d edge of one box crossing a d-normal face of the other
///                                                (2 + 1 coords).
///
/// Per grid cell and dataset we therefore keep:
///   c       corner points in the cell (8 per box, coincidences counted),
///   o       Σ volume(box ∩ cell) / cell volume,
///   e[d]    Σ length ratios of axis-d edges through the cell (4 per box),
///   f[d]    Σ area ratios of d-normal faces through the cell (2 per box),
///
/// and estimate intersection points as
///   IP = Σ_cells [ c1·o2 + o1·c2 + Σ_d (e1[d]·f2[d] + f1[d]·e2[d]) ],
/// with estimated pairs = IP / 8.
class Gh3Histogram {
 public:
  /// Builds the histogram over `extent` with 2^level cells per axis
  /// (8^level total). level in [0, 8].
  static Result<Gh3Histogram> Build(const BoxDataset& ds, const Box3& extent,
                                    int level);

  int level() const { return level_; }
  int per_axis() const { return 1 << level_; }
  int64_t num_cells() const {
    return int64_t{1} << (3 * level_);
  }
  const Box3& extent() const { return extent_; }
  uint64_t dataset_size() const { return n_; }

  const std::vector<double>& c() const { return c_; }
  const std::vector<double>& o() const { return o_; }
  const std::vector<double>& e(int axis) const { return e_[axis]; }
  const std::vector<double>& f(int axis) const { return f_[axis]; }

  /// 8 doubles per cell (c, o, 3 edge sums, 3 face sums).
  uint64_t NominalBytes() const { return num_cells() * 8 * 8; }

 private:
  Gh3Histogram() = default;

  Box3 extent_;
  int level_ = 0;
  uint64_t n_ = 0;
  std::vector<double> c_;
  std::vector<double> o_;
  std::vector<double> e_[3];
  std::vector<double> f_[3];
};

/// Estimated intersection points between the datasets behind `a` and `b`;
/// the histograms must share extent and level.
Result<double> EstimateGh3IntersectionPoints(const Gh3Histogram& a,
                                             const Gh3Histogram& b);

/// Estimated join result size: intersection points / 8.
Result<double> EstimateGh3JoinPairs(const Gh3Histogram& a,
                                    const Gh3Histogram& b);

}  // namespace sjsel

#endif  // SJSEL_GH3_GH3_HISTOGRAM_H_
