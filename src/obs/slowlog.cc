#include "obs/slowlog.h"

#include <algorithm>
#include <utility>

namespace sjsel {
namespace obs {

SlowRequestLog::SlowRequestLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SlowRequestLog::Record(SlowRequestEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t seq = recorded_++;
  if (slots_.size() < capacity_) {
    slots_.push_back(Slot{std::move(entry), seq});
    return;
  }
  // Evict the current minimum (oldest on ties, so a stream of equal
  // latencies keeps the most recent window).
  size_t min_i = 0;
  for (size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].entry.latency_us < slots_[min_i].entry.latency_us ||
        (slots_[i].entry.latency_us == slots_[min_i].entry.latency_us &&
         slots_[i].seq < slots_[min_i].seq)) {
      min_i = i;
    }
  }
  if (entry.latency_us >= slots_[min_i].entry.latency_us) {
    slots_[min_i] = Slot{std::move(entry), seq};
  }
}

std::vector<SlowRequestEntry> SlowRequestLog::Snapshot() const {
  std::vector<Slot> copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    copy = slots_;
  }
  std::sort(copy.begin(), copy.end(), [](const Slot& a, const Slot& b) {
    if (a.entry.latency_us != b.entry.latency_us) {
      return a.entry.latency_us > b.entry.latency_us;
    }
    return a.seq < b.seq;
  });
  std::vector<SlowRequestEntry> out;
  out.reserve(copy.size());
  for (Slot& slot : copy) out.push_back(std::move(slot.entry));
  return out;
}

uint64_t SlowRequestLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

}  // namespace obs
}  // namespace sjsel
