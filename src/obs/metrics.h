#ifndef SJSEL_OBS_METRICS_H_
#define SJSEL_OBS_METRICS_H_

// Process-wide metrics: named counters, gauges and log-scale latency
// histograms with deterministic JSON / text snapshots. See
// docs/OBSERVABILITY.md for the naming scheme and which seams publish
// what.
//
// Cost contract, mirroring src/util/fault_injection.h: every instrumented
// site first checks MetricsRegistry::Armed() — one relaxed atomic load —
// and does nothing else while disarmed (no lookup, no allocation, no
// atomic RMW). While armed, updating an instrument is a name lookup under
// a short mutex plus a relaxed atomic add; the instrumented seams are
// coarse (whole builds, joins, validation passes), not per-rectangle, so
// the lookup never sits on an inner loop.
//
// Instruments live for the process lifetime once registered — pointers
// returned by Get* never dangle — and Reset() only zeroes their values,
// so snapshots taken from concurrent threads are always safe.
//
// This header depends only on the standard library (it sits below
// src/util/ in the module map, like obs/trace.h).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace sjsel {
namespace obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-set / high-water value (e.g. pool queue depth).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if it is higher than the current value.
  void UpdateMax(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-scale (power-of-two bucket) histogram of non-negative integer
/// samples. Latency sites record microseconds. Bucket 0 counts samples
/// equal to 0; bucket i >= 1 counts samples v with 2^(i-1) <= v < 2^i.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    UpdateMin(v);
    UpdateMax(v);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded sample; 0 when empty.
  uint64_t min() const {
    const uint64_t m = min_.load(std::memory_order_relaxed);
    return m == kEmptyMin ? 0 : m;
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Quantile estimate from the log-scale buckets, q in [0, 1] (clamped).
  /// Walks the cumulative bucket counts to the one containing rank
  /// q * count, interpolates linearly within that bucket's value range
  /// [2^(i-1), 2^i) — bucket 0 is exactly 0 — and clamps the result into
  /// [min(), max()] so a sparse top bucket cannot report a value beyond
  /// anything observed. 0 when empty. The interpolation is pinned by
  /// tests/obs_test.cc.
  double Quantile(double q) const;

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(kEmptyMin, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  static int BucketOf(uint64_t v) {
    if (v == 0) return 0;
    const int b = 64 - static_cast<int>(__builtin_clzll(v));
    // Samples at or above 2^63 share the last bucket (index 63 would
    // otherwise be one past the array for top-bit values).
    return b >= kBuckets ? kBuckets - 1 : b;
  }

 private:
  static constexpr uint64_t kEmptyMin = ~uint64_t{0};

  void UpdateMin(uint64_t v) {
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void UpdateMax(uint64_t v) {
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{kEmptyMin};
  std::atomic<uint64_t> max_{0};
};

/// The process-wide registry of named instruments.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// The fast gate every instrumented site checks first.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  /// Zeroes every instrument and starts collection.
  static void Arm();

  /// Stops collection. Values stay readable/snapshotable.
  static void Disarm();

  /// Scoped (refcounted) arming, used by the server to collect metrics
  /// per request rather than per process: the registry is armed while
  /// process arming (Arm/Disarm) is active OR at least one scope is
  /// held. Unlike Arm(), acquiring the first scope does NOT reset
  /// accumulated values, so counters aggregate across requests and a
  /// `stats` request can snapshot the server's lifetime totals. Pairs
  /// must balance; use ScopedMetricsArm.
  static void ArmScopeAcquire();
  static void ArmScopeRelease();

  /// Finds or creates the named instrument. Returned pointers are stable
  /// for the process lifetime. A name used as one kind must not be reused
  /// as another (the snapshot namespaces them separately, so nothing
  /// breaks, but the metric becomes ambiguous to readers).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Zeroes every registered instrument (registrations persist).
  void Reset();

  /// Registered instruments of all three kinds (tests use this to assert
  /// the disarmed path registers nothing).
  size_t InstrumentCount() const;

  /// Deterministic snapshot: keys sorted, fixed field order, no
  /// timestamps. Two snapshots with no intervening updates are
  /// byte-identical.
  ///
  ///   {
  ///     "counters": {"join.pbsm.runs": 3, ...},
  ///     "gauges": {"pool.queue_depth.max": 14, ...},
  ///     "histograms": {
  ///       "hist.gh.build_us": {"count": 2, "sum": 1234, "min": 400,
  ///                            "max": 834, "p50": 617, "p95": 812.3,
  ///                            "p99": 829.7, "buckets": [[9, 1], [10, 1]]},
  ///       ...
  ///     }
  ///   }
  ///
  /// A histogram's "buckets" lists [bucket_index, count] for non-empty
  /// buckets only; bucket i >= 1 covers [2^(i-1), 2^i). p50/p95/p99 come
  /// from Histogram::Quantile (bucket interpolation, %.6g).
  std::string SnapshotJson() const;

  /// Human-readable block for the CLI: one "name : value" line per
  /// instrument, sorted.
  std::string SnapshotText() const;

  /// OpenMetrics / Prometheus text exposition of the registry, served by
  /// the server's `metrics` op (docs/SERVER.md). Deterministic like
  /// SnapshotJson: instruments sorted by name, fixed line order, ends
  /// with "# EOF". Dotted names are sanitized to `sjsel_<name with
  /// non-alphanumerics as _>`; the original dotted name rides along as a
  /// `name` label (escaped per the exposition format). Counters render
  /// as `<san>_total`, gauges as plain samples, histograms as summaries
  /// (p50/p90/p95/p99 quantile samples from Histogram::Quantile, %.6g,
  /// plus `_sum`/`_count`).
  std::string SnapshotOpenMetrics() const;

  /// Writes SnapshotJson() to `path`. Returns false on I/O failure.
  bool WriteJson(const std::string& path) const;

 private:
  static std::atomic<bool> armed_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

inline bool MetricsArmed() { return MetricsRegistry::Armed(); }

/// RAII pair for ArmScopeAcquire/ArmScopeRelease (one per served
/// request; see docs/SERVER.md "Observability").
class ScopedMetricsArm {
 public:
  ScopedMetricsArm() { MetricsRegistry::ArmScopeAcquire(); }
  ~ScopedMetricsArm() { MetricsRegistry::ArmScopeRelease(); }
  ScopedMetricsArm(const ScopedMetricsArm&) = delete;
  ScopedMetricsArm& operator=(const ScopedMetricsArm&) = delete;
};

/// Implementation of util/timer.h's ScopedTimer reporting hook: records
/// `micros` into `hist` when metrics are armed. Tolerates null.
void RecordLatencyMicros(Histogram* hist, uint64_t micros);

/// RAII latency sample: when metrics are armed at construction, records
/// the scope's elapsed microseconds into the named histogram on
/// destruction. One relaxed load when disarmed.
class ScopedLatency {
 public:
  explicit ScopedLatency(const char* name) {
    if (MetricsArmed()) {
      hist_ = MetricsRegistry::Global().GetHistogram(name);
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedLatency() {
    if (hist_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      hist_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
              .count()));
    }
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* hist_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// Counter bump, gated on the armed check. `name` is evaluated only when
/// armed.
#define SJSEL_METRIC_ADD(name, delta)                                     \
  do {                                                                    \
    if (::sjsel::obs::MetricsArmed()) {                                   \
      ::sjsel::obs::MetricsRegistry::Global().GetCounter(name)->Add(      \
          static_cast<uint64_t>(delta));                                  \
    }                                                                     \
  } while (0)

#define SJSEL_METRIC_INC(name) SJSEL_METRIC_ADD(name, 1)

/// High-water gauge update, gated on the armed check.
#define SJSEL_METRIC_GAUGE_MAX(name, v)                                   \
  do {                                                                    \
    if (::sjsel::obs::MetricsArmed()) {                                   \
      ::sjsel::obs::MetricsRegistry::Global().GetGauge(name)->UpdateMax(  \
          static_cast<int64_t>(v));                                       \
    }                                                                     \
  } while (0)

/// Scoped latency histogram sample (microseconds). At most one per line.
#define SJSEL_METRIC_SCOPED_LATENCY(name) \
  ::sjsel::obs::ScopedLatency SJSEL_OBS_CONCAT_M(sjsel_latency_, \
                                                 __LINE__)(name)
#define SJSEL_OBS_CONCAT_M_INNER(a, b) a##b
#define SJSEL_OBS_CONCAT_M(a, b) SJSEL_OBS_CONCAT_M_INNER(a, b)

}  // namespace obs
}  // namespace sjsel

#endif  // SJSEL_OBS_METRICS_H_
