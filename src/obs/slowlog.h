#ifndef SJSEL_OBS_SLOWLOG_H_
#define SJSEL_OBS_SLOWLOG_H_

// Bounded in-memory ring of the slowest requests seen so far, backing
// the server's `slowlog` op (docs/SERVER.md). Keeps the top-K entries
// by latency: recording is O(K) under a short mutex (K is small — the
// default ring holds 32 entries), snapshotting copies and sorts them.
//
// This is deliberately value-based bookkeeping, not an instrument: the
// ring is owned by whoever serves it (the server), not by a global
// registry, and it is always on — a request that took 2 seconds is
// worth remembering whether or not metrics were armed at the time.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sjsel {
namespace obs {

/// One remembered request. `note` carries the outcome detail the server
/// attributes the latency to: the answered estimator rung and
/// degradation_reason for estimates, `error:<code>` for failures.
struct SlowRequestEntry {
  std::string request_id;
  std::string op;
  uint64_t latency_us = 0;
  bool ok = true;
  std::string note;
};

class SlowRequestLog {
 public:
  explicit SlowRequestLog(size_t capacity = 32);

  /// Remembers `entry` if it ranks among the `capacity()` slowest seen
  /// so far (evicting the current minimum otherwise). Thread-safe.
  void Record(SlowRequestEntry entry);

  /// The retained entries, slowest first; ties keep arrival order.
  std::vector<SlowRequestEntry> Snapshot() const;

  /// Requests ever offered to Record() (retained or not).
  uint64_t recorded() const;

  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    SlowRequestEntry entry;
    uint64_t seq = 0;  ///< arrival order, the deterministic tiebreak
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t recorded_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace obs
}  // namespace sjsel

#endif  // SJSEL_OBS_SLOWLOG_H_
