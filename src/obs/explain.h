#ifndef SJSEL_OBS_EXPLAIN_H_
#define SJSEL_OBS_EXPLAIN_H_

// Estimator introspection: structured "explain" reports that break a join
// selectivity estimate down to the grid cells it came from, attribute
// per-cell error against an exact partitioned join count, and expose the
// guarded chain's per-rung decisions.
//
// Unlike obs/trace.h and obs/metrics.h — which sit below src/util in the
// module map and depend only on the standard library — this is the
// reporting layer *over* the estimators: it depends on core/, geom/ and
// join/. The shared contract is determinism: every rendering here is a
// pure function of the inputs (no timestamps, no pointers, no iteration
// over unordered containers), so explain output is byte-identical across
// runs and thread counts. Per-rung wall-clock is recorded in the chain
// trials but rendered only on request (ExplainRenderOptions::include_timing)
// because it breaks that guarantee.

#include <cstdint>
#include <string>
#include <vector>

#include "core/guarded_estimator.h"
#include "geom/dataset.h"
#include "geom/rect.h"
#include "geom/validate.h"
#include "util/result.h"

namespace sjsel {
namespace obs {

/// Which histogram scheme supplies the per-cell breakdown.
enum class ExplainScheme { kGh, kPh };

/// "gh" / "ph".
const char* ExplainSchemeName(ExplainScheme scheme);

struct ExplainOptions {
  ExplainScheme scheme = ExplainScheme::kGh;
  /// Gridding level of the per-cell breakdown (also overrides the matching
  /// rung level of the guarded chain run, so the chain's answer and the
  /// breakdown describe the same histogram).
  int level = 7;
  /// Rows kept in the ranked top-cell tables.
  int top_k = 10;
  /// Run the exact plane-sweep join and attribute actual pairs to cells.
  bool with_exact = false;
  /// Worker threads for the histogram builds. Never changes any value
  /// (builds are bit-identical for any thread count).
  int threads = 1;
  /// Validation policy applied to both inputs before any build.
  ValidationPolicy policy = ValidationPolicy::kQuarantine;
  /// Options of the guarded chain run recorded in the report.
  GuardedEstimatorOptions guarded;
};

/// One grid cell's row of the report. `terms` holds the scheme's four
/// per-cell quantities: GH C1·O2, O1·C2, H1·V2, V1·H2 — PH Sa, Sb, Sc and
/// the raw (pre-span-correction) Sd. ExplainTermLabels names them.
struct ExplainCell {
  int64_t index = 0;  ///< flat row-major cell index
  int cx = 0;
  int cy = 0;
  double terms[4] = {0.0, 0.0, 0.0, 0.0};
  /// Join pairs this cell contributes to the estimate.
  double estimated_pairs = 0.0;
  /// Exact pairs attributed to the cell: each joined pair's intersection
  /// rectangle drops one count on the cell owning each of its four
  /// corners, and the cell's share is count/4 — so degenerate overlaps
  /// partition exactly and the cells sum to the exact join count.
  /// Meaningful only when the report has_exact.
  double actual_pairs = 0.0;

  double error() const { return estimated_pairs - actual_pairs; }
};

/// The four `terms` labels of a scheme, e.g. "c1*o2" or "sa".
const char* const* ExplainTermLabels(ExplainScheme scheme);

/// How concentrated the estimate is over the grid (the Min-Skew-style
/// skew summary): cells ranked by estimated pairs descending, flat index
/// ascending on ties.
struct ContributionSkew {
  /// Cells with a non-zero estimated contribution.
  int64_t nonzero_cells = 0;
  /// Share of the total estimate carried by the top 1% / 10% of cells
  /// (at least one cell). 0 when the estimate is 0.
  double top1pct_share = 0.0;
  double top10pct_share = 0.0;
  /// Largest single-cell share.
  double max_cell_share = 0.0;
};

/// The full introspection report of one estimate.
struct EstimateExplain {
  std::string dataset_a;
  std::string dataset_b;
  /// Raw input sizes and the sizes after validation (what the estimate
  /// and the exact count actually consume).
  uint64_t raw_a = 0;
  uint64_t raw_b = 0;
  uint64_t n1 = 0;
  uint64_t n2 = 0;
  RobustnessCounters validation_a;
  RobustnessCounters validation_b;

  ExplainScheme scheme = ExplainScheme::kGh;
  int level = 0;
  Rect extent = Rect::Empty();
  int per_axis = 0;
  int64_t num_cells = 0;

  /// The scheme's scalar estimate — what the per-cell contributions sum
  /// to (bit-for-bit for GH; PH per-cell values differ from the scalar
  /// accumulation only in final-rounding order).
  double estimated_pairs = 0.0;
  double selectivity = 0.0;

  /// The guarded fallback chain run on the same inputs (rung trials,
  /// degradation trail, clamping, its own answer).
  EstimateResult chain;

  /// Dense per-cell view in flat row-major order (cells[i].index == i).
  std::vector<ExplainCell> cells;
  ContributionSkew skew;
  /// Flat indices of the top-K cells by estimated contribution (zeros
  /// excluded) and, when has_exact, by |error| (exact zeros excluded).
  std::vector<int64_t> top_contributors;
  std::vector<int64_t> top_errors;

  bool has_exact = false;
  uint64_t actual_pairs = 0;
  /// (estimated - actual) / actual; 0 when actual == 0.
  double relative_error = 0.0;
};

/// Builds the report: validates both inputs against their joint extent,
/// builds the scheme's histograms at options.level, computes the scalar
/// estimate and per-cell contributions, runs the guarded chain, and (with
/// options.with_exact) attributes the exact plane-sweep join per cell.
/// Fails only on kReject policy violations or an invalid level.
Result<EstimateExplain> BuildEstimateExplain(const Dataset& a,
                                             const Dataset& b,
                                             const ExplainOptions& options);

struct ExplainRenderOptions {
  /// Adds per-rung wall-clock to the chain section. Off by default: the
  /// renderings are byte-identical across runs only without it.
  bool include_timing = false;
};

/// The chain section alone ("chain:" plus one line per rung trial and the
/// degradation/clamp summary) — shared by the explain report and the CLI's
/// `estimate --explain`.
std::string RenderChainText(const EstimateResult& result,
                            const ExplainRenderOptions& options = {});

/// Deterministic human-readable report.
std::string RenderExplainText(const EstimateExplain& report,
                              const ExplainRenderOptions& options = {});

/// Deterministic JSON report (doubles as %.17g, so values round-trip).
std::string RenderExplainJson(const EstimateExplain& report,
                              const ExplainRenderOptions& options = {});

/// Writes the full cell grid as CSV for offline heatmaps: header
/// "cx,cy,estimated_pairs[,actual_pairs,error]" (exact columns only when
/// the report has_exact), one row per cell in flat row-major order.
Status WriteExplainHeatmapCsv(const EstimateExplain& report,
                              const std::string& path);

}  // namespace obs
}  // namespace sjsel

#endif  // SJSEL_OBS_EXPLAIN_H_
