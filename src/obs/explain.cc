#include "obs/explain.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/gh_histogram.h"
#include "core/grid.h"
#include "core/ph_histogram.h"
#include "join/plane_sweep.h"
#include "util/table.h"

namespace sjsel {
namespace obs {
namespace {

const char* const kGhTermLabels[4] = {"c1*o2", "o1*c2", "h1*v2", "v1*h2"};
const char* const kPhTermLabels[4] = {"sa", "sb", "sc", "sd_raw"};

// Cells ranked by estimated contribution, descending, flat index ascending
// on ties — the one deterministic order every ranked view derives from.
std::vector<int64_t> RankByContribution(const std::vector<ExplainCell>& cells) {
  std::vector<int64_t> order(cells.size());
  std::iota(order.begin(), order.end(), int64_t{0});
  std::sort(order.begin(), order.end(), [&](int64_t lhs, int64_t rhs) {
    const double le = cells[static_cast<size_t>(lhs)].estimated_pairs;
    const double re = cells[static_cast<size_t>(rhs)].estimated_pairs;
    if (le != re) return le > re;
    return lhs < rhs;
  });
  return order;
}

ContributionSkew ComputeSkew(const std::vector<ExplainCell>& cells,
                             const std::vector<int64_t>& ranked) {
  ContributionSkew skew;
  double total = 0.0;
  for (const ExplainCell& cell : cells) {
    if (cell.estimated_pairs != 0.0) ++skew.nonzero_cells;
    total += cell.estimated_pairs;
  }
  if (total <= 0.0 || ranked.empty()) return skew;
  const auto share_of_top = [&](int64_t k) {
    double sum = 0.0;
    for (int64_t i = 0; i < k && i < static_cast<int64_t>(ranked.size());
         ++i) {
      sum += cells[static_cast<size_t>(ranked[static_cast<size_t>(i)])]
                 .estimated_pairs;
    }
    return sum / total;
  };
  const int64_t n = static_cast<int64_t>(cells.size());
  skew.top1pct_share = share_of_top(std::max<int64_t>(1, n / 100));
  skew.top10pct_share = share_of_top(std::max<int64_t>(1, n / 10));
  skew.max_cell_share = share_of_top(1);
  return skew;
}

// Exact %.17g so every double survives a JSON round trip.
void AppendJsonDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendCellJson(std::string* out, const EstimateExplain& report,
                    int64_t index) {
  const ExplainCell& cell = report.cells[static_cast<size_t>(index)];
  *out += "{\"index\": " + std::to_string(cell.index) +
          ", \"cx\": " + std::to_string(cell.cx) +
          ", \"cy\": " + std::to_string(cell.cy) + ", \"terms\": [";
  for (int t = 0; t < 4; ++t) {
    if (t > 0) *out += ", ";
    AppendJsonDouble(out, cell.terms[t]);
  }
  *out += "], \"estimated_pairs\": ";
  AppendJsonDouble(out, cell.estimated_pairs);
  if (report.has_exact) {
    *out += ", \"actual_pairs\": ";
    AppendJsonDouble(out, cell.actual_pairs);
    *out += ", \"error\": ";
    AppendJsonDouble(out, cell.error());
  }
  *out += "}";
}

std::string TrialStatusLine(const RungTrial& trial,
                            const ExplainRenderOptions& options) {
  char head[64];
  std::snprintf(head, sizeof(head), "  %-10s %-8s", EstimatorRungName(trial.rung),
                trial.answered ? "answered" : "failed");
  std::string line = head;
  if (!trial.label.empty()) line += " " + trial.label;
  if (!trial.cause.empty()) line += " cause=" + trial.cause;
  if (trial.has_raw_pairs) {
    line += " raw_pairs=" + FormatDouble(trial.raw_pairs, 6);
  }
  if (options.include_timing) {
    line += " [" + std::to_string(trial.elapsed_us) + "us]";
  }
  return line;
}

}  // namespace

const char* ExplainSchemeName(ExplainScheme scheme) {
  return scheme == ExplainScheme::kGh ? "gh" : "ph";
}

const char* const* ExplainTermLabels(ExplainScheme scheme) {
  return scheme == ExplainScheme::kGh ? kGhTermLabels : kPhTermLabels;
}

Result<EstimateExplain> BuildEstimateExplain(const Dataset& a,
                                             const Dataset& b,
                                             const ExplainOptions& options) {
  EstimateExplain report;
  report.scheme = options.scheme;
  report.level = options.level;
  report.dataset_a = a.name();
  report.dataset_b = b.name();
  report.raw_a = a.size();
  report.raw_b = b.size();

  // The joint extent from finite coordinates only — the same frame the
  // guarded estimator validates against, so the chain run below and this
  // breakdown describe identical inputs.
  Rect extent = Rect::Empty();
  for (const Dataset* ds : {&a, &b}) {
    for (const Rect& r : ds->rects()) {
      if (ClassifyRect(r, Rect::Empty()) == RectDefect::kNone) extent.Extend(r);
    }
  }
  Dataset va;
  SJSEL_ASSIGN_OR_RETURN(
      va, ValidateDataset(a, extent, options.policy, &report.validation_a));
  Dataset vb;
  SJSEL_ASSIGN_OR_RETURN(
      vb, ValidateDataset(b, extent, options.policy, &report.validation_b));
  report.n1 = va.size();
  report.n2 = vb.size();
  report.extent = extent;

  // The guarded chain run recorded in the report, with the rung matching
  // the breakdown scheme pinned to the breakdown level.
  GuardedEstimatorOptions guarded = options.guarded;
  guarded.policy = options.policy;
  if (options.scheme == ExplainScheme::kGh) {
    guarded.gh_level = options.level;
  } else {
    guarded.ph_level = options.level;
  }
  SJSEL_ASSIGN_OR_RETURN(report.chain,
                         GuardedEstimator(guarded).Estimate(a, b));

  // Empty input after validation: the estimate is zero and there is no
  // grid to attribute anything to.
  if (va.empty() || vb.empty()) {
    if (options.with_exact) report.has_exact = true;
    return report;
  }

  Result<Grid> created = Grid::Create(extent, options.level);
  if (!created.ok()) return created.status();
  const Grid& grid = created.value();
  report.per_axis = grid.per_axis();
  report.num_cells = grid.num_cells();
  report.cells.resize(static_cast<size_t>(grid.num_cells()));
  for (int64_t i = 0; i < grid.num_cells(); ++i) {
    ExplainCell& cell = report.cells[static_cast<size_t>(i)];
    cell.index = i;
    cell.cx = static_cast<int>(i % grid.per_axis());
    cell.cy = static_cast<int>(i / grid.per_axis());
  }

  if (options.scheme == ExplainScheme::kGh) {
    Result<GhHistogram> ra = GhHistogram::Build(
        va, extent, options.level, GhVariant::kRevised, options.threads);
    if (!ra.ok()) return ra.status();
    Result<GhHistogram> rb = GhHistogram::Build(
        vb, extent, options.level, GhVariant::kRevised, options.threads);
    if (!rb.ok()) return rb.status();
    const GhHistogram& ha = ra.value();
    const GhHistogram& hb = rb.value();
    std::vector<GhCellContribution> terms;
    SJSEL_ASSIGN_OR_RETURN(terms, GhPerCellContributions(ha, hb));
    SJSEL_ASSIGN_OR_RETURN(report.estimated_pairs,
                           EstimateGhJoinPairs(ha, hb));
    for (size_t i = 0; i < terms.size(); ++i) {
      ExplainCell& cell = report.cells[i];
      cell.terms[0] = terms[i].c1_o2;
      cell.terms[1] = terms[i].o1_c2;
      cell.terms[2] = terms[i].h1_v2;
      cell.terms[3] = terms[i].v1_h2;
      cell.estimated_pairs = terms[i].pairs();
    }
  } else {
    Result<PhHistogram> ra = PhHistogram::Build(
        va, extent, options.level, PhVariant::kSplitCrossing, options.threads);
    if (!ra.ok()) return ra.status();
    Result<PhHistogram> rb = PhHistogram::Build(
        vb, extent, options.level, PhVariant::kSplitCrossing, options.threads);
    if (!rb.ok()) return rb.status();
    const PhHistogram& ha = ra.value();
    const PhHistogram& hb = rb.value();
    std::vector<PhCellContribution> terms;
    SJSEL_ASSIGN_OR_RETURN(terms, PhPerCellContributions(ha, hb));
    SJSEL_ASSIGN_OR_RETURN(report.estimated_pairs,
                           EstimatePhJoinPairs(ha, hb));
    const double mean_span = PhMeanSpan(ha, hb);
    for (size_t i = 0; i < terms.size(); ++i) {
      ExplainCell& cell = report.cells[i];
      cell.terms[0] = terms[i].sa;
      cell.terms[1] = terms[i].sb;
      cell.terms[2] = terms[i].sc;
      cell.terms[3] = terms[i].sd_raw;
      cell.estimated_pairs = terms[i].pairs(mean_span);
    }
  }
  report.selectivity = report.estimated_pairs / (static_cast<double>(report.n1) *
                                                 static_cast<double>(report.n2));

  if (options.with_exact) {
    // Partitioned exact count: every joined pair drops one integer count
    // on the cell owning each corner of its intersection rectangle, so a
    // cell's exact share is count/4 and the shares sum to the join count
    // whatever cells the intersection touches (integer sums, order
    // independent — deterministic for any join order).
    std::vector<uint64_t> corner_counts(
        static_cast<size_t>(grid.num_cells()), 0);
    uint64_t total = 0;
    PlaneSweepJoin(va, vb, [&](int64_t ia, int64_t ib) {
      const Rect isect = va[static_cast<size_t>(ia)].Intersection(
          vb[static_cast<size_t>(ib)]);
      ++corner_counts[static_cast<size_t>(
          grid.CellOf({isect.min_x, isect.min_y}))];
      ++corner_counts[static_cast<size_t>(
          grid.CellOf({isect.max_x, isect.min_y}))];
      ++corner_counts[static_cast<size_t>(
          grid.CellOf({isect.min_x, isect.max_y}))];
      ++corner_counts[static_cast<size_t>(
          grid.CellOf({isect.max_x, isect.max_y}))];
      ++total;
    });
    for (size_t i = 0; i < corner_counts.size(); ++i) {
      report.cells[i].actual_pairs =
          static_cast<double>(corner_counts[i]) / 4.0;
    }
    report.has_exact = true;
    report.actual_pairs = total;
    if (total > 0) {
      report.relative_error =
          (report.estimated_pairs - static_cast<double>(total)) /
          static_cast<double>(total);
    }
  }

  const std::vector<int64_t> ranked = RankByContribution(report.cells);
  report.skew = ComputeSkew(report.cells, ranked);
  const int64_t top_k = std::max(0, options.top_k);
  for (const int64_t index : ranked) {
    if (static_cast<int64_t>(report.top_contributors.size()) >= top_k) break;
    if (report.cells[static_cast<size_t>(index)].estimated_pairs == 0.0) break;
    report.top_contributors.push_back(index);
  }
  if (report.has_exact) {
    std::vector<int64_t> by_error(report.cells.size());
    std::iota(by_error.begin(), by_error.end(), int64_t{0});
    std::sort(by_error.begin(), by_error.end(),
              [&](int64_t lhs, int64_t rhs) {
                const double le =
                    std::fabs(report.cells[static_cast<size_t>(lhs)].error());
                const double re =
                    std::fabs(report.cells[static_cast<size_t>(rhs)].error());
                if (le != re) return le > re;
                return lhs < rhs;
              });
    for (const int64_t index : by_error) {
      if (static_cast<int64_t>(report.top_errors.size()) >= top_k) break;
      if (report.cells[static_cast<size_t>(index)].error() == 0.0) break;
      report.top_errors.push_back(index);
    }
  }
  return report;
}

std::string RenderChainText(const EstimateResult& result,
                            const ExplainRenderOptions& options) {
  std::string out = "chain:\n";
  for (const RungTrial& trial : result.trials) {
    out += TrialStatusLine(trial, options);
    out += "\n";
  }
  return out;
}

std::string RenderExplainText(const EstimateExplain& report,
                              const ExplainRenderOptions& options) {
  std::string out;
  char line[256];
  const auto kv = [&](const char* key, const std::string& value) {
    std::snprintf(line, sizeof(line), "%-21s: %s\n", key, value.c_str());
    out += line;
  };
  kv("explain", std::string(ExplainSchemeName(report.scheme)) + " level " +
                    std::to_string(report.level));
  kv("dataset a", report.dataset_a + " (" + std::to_string(report.raw_a) +
                      " rects, " + std::to_string(report.n1) + " validated)");
  kv("dataset b", report.dataset_b + " (" + std::to_string(report.raw_b) +
                      " rects, " + std::to_string(report.n2) + " validated)");
  kv("extent", report.extent.ToString());
  kv("grid", std::to_string(report.per_axis) + " x " +
                 std::to_string(report.per_axis) + " = " +
                 std::to_string(report.num_cells) + " cells");
  kv("estimated pairs", FormatDouble(report.estimated_pairs, 1));
  kv("estimated selectivity", FormatDouble(report.selectivity, 6));
  kv("validation (a)", report.validation_a.ToString());
  kv("validation (b)", report.validation_b.ToString());
  out += RenderChainText(report.chain, options);
  kv("rung", std::string(EstimatorRungName(report.chain.rung)) + " (" +
                 report.chain.rung_label + ")");
  kv("degradation_reason", report.chain.degraded()
                               ? report.chain.degradation_reason
                               : "none");
  kv("clamped", report.chain.clamped ? "yes" : "no");

  if (report.cells.empty()) {
    kv("per-cell breakdown", "unavailable (empty input after validation)");
    return out;
  }

  out += "contribution skew:\n";
  std::snprintf(line, sizeof(line), "  %-19s: %lld of %lld\n",
                "nonzero cells",
                static_cast<long long>(report.skew.nonzero_cells),
                static_cast<long long>(report.num_cells));
  out += line;
  const auto skew_kv = [&](const char* key, double share) {
    std::snprintf(line, sizeof(line), "  %-19s: %s of estimate\n", key,
                  FormatPercent(share).c_str());
    out += line;
  };
  skew_kv("top 1% of cells", report.skew.top1pct_share);
  skew_kv("top 10% of cells", report.skew.top10pct_share);
  skew_kv("max single cell", report.skew.max_cell_share);

  const char* const* labels = ExplainTermLabels(report.scheme);
  const auto cell_table = [&](const std::vector<int64_t>& indices) {
    TextTable table;
    std::vector<std::string> header = {"cell", "cx", "cy"};
    for (int t = 0; t < 4; ++t) header.push_back(labels[t]);
    header.push_back("est_pairs");
    if (report.has_exact) {
      header.push_back("actual_pairs");
      header.push_back("error");
    }
    table.SetHeader(std::move(header));
    for (const int64_t index : indices) {
      const ExplainCell& cell = report.cells[static_cast<size_t>(index)];
      std::vector<std::string> row = {std::to_string(cell.index),
                                      std::to_string(cell.cx),
                                      std::to_string(cell.cy)};
      for (int t = 0; t < 4; ++t) row.push_back(FormatDouble(cell.terms[t], 4));
      row.push_back(FormatDouble(cell.estimated_pairs, 6));
      if (report.has_exact) {
        row.push_back(FormatDouble(cell.actual_pairs, 6));
        row.push_back(FormatDouble(cell.error(), 4));
      }
      table.AddRow(std::move(row));
    }
    return table.ToString();
  };

  out += "top contributing cells:\n";
  out += cell_table(report.top_contributors);
  if (report.has_exact) {
    kv("actual pairs", std::to_string(report.actual_pairs));
    kv("relative error", FormatDouble(report.relative_error, 4));
    out += "top erring cells:\n";
    out += cell_table(report.top_errors);
  }
  return out;
}

std::string RenderExplainJson(const EstimateExplain& report,
                              const ExplainRenderOptions& options) {
  std::string out = "{\n  \"explain\": {\n";
  out += "    \"scheme\": ";
  AppendJsonString(&out, ExplainSchemeName(report.scheme));
  out += ",\n    \"level\": " + std::to_string(report.level);
  out += ",\n    \"dataset_a\": {\"name\": ";
  AppendJsonString(&out, report.dataset_a);
  out += ", \"rects\": " + std::to_string(report.raw_a) +
         ", \"validated\": " + std::to_string(report.n1) + "}";
  out += ",\n    \"dataset_b\": {\"name\": ";
  AppendJsonString(&out, report.dataset_b);
  out += ", \"rects\": " + std::to_string(report.raw_b) +
         ", \"validated\": " + std::to_string(report.n2) + "}";
  out += ",\n    \"extent\": [";
  AppendJsonDouble(&out, report.extent.min_x);
  out += ", ";
  AppendJsonDouble(&out, report.extent.min_y);
  out += ", ";
  AppendJsonDouble(&out, report.extent.max_x);
  out += ", ";
  AppendJsonDouble(&out, report.extent.max_y);
  out += "]";
  out += ",\n    \"grid\": {\"per_axis\": " + std::to_string(report.per_axis) +
         ", \"cells\": " + std::to_string(report.num_cells) + "}";
  out += ",\n    \"estimated_pairs\": ";
  AppendJsonDouble(&out, report.estimated_pairs);
  out += ",\n    \"selectivity\": ";
  AppendJsonDouble(&out, report.selectivity);

  out += ",\n    \"chain\": {\"rung\": ";
  AppendJsonString(&out, EstimatorRungName(report.chain.rung));
  out += ", \"label\": ";
  AppendJsonString(&out, report.chain.rung_label);
  out += ", \"degradation_reason\": ";
  AppendJsonString(&out, report.chain.degradation_reason);
  out += ", \"clamped\": ";
  out += report.chain.clamped ? "true" : "false";
  out += ", \"trials\": [";
  for (size_t i = 0; i < report.chain.trials.size(); ++i) {
    const RungTrial& trial = report.chain.trials[i];
    out += i == 0 ? "" : ", ";
    out += "{\"rung\": ";
    AppendJsonString(&out, EstimatorRungName(trial.rung));
    out += ", \"label\": ";
    AppendJsonString(&out, trial.label);
    out += ", \"answered\": ";
    out += trial.answered ? "true" : "false";
    out += ", \"cause\": ";
    AppendJsonString(&out, trial.cause);
    if (trial.has_raw_pairs) {
      out += ", \"raw_pairs\": ";
      AppendJsonDouble(&out, trial.raw_pairs);
    }
    if (options.include_timing) {
      out += ", \"elapsed_us\": " + std::to_string(trial.elapsed_us);
    }
    out += "}";
  }
  out += "]}";

  out += ",\n    \"term_labels\": [";
  const char* const* labels = ExplainTermLabels(report.scheme);
  for (int t = 0; t < 4; ++t) {
    if (t > 0) out += ", ";
    AppendJsonString(&out, labels[t]);
  }
  out += "]";
  out += ",\n    \"skew\": {\"nonzero_cells\": " +
         std::to_string(report.skew.nonzero_cells) + ", \"top1pct_share\": ";
  AppendJsonDouble(&out, report.skew.top1pct_share);
  out += ", \"top10pct_share\": ";
  AppendJsonDouble(&out, report.skew.top10pct_share);
  out += ", \"max_cell_share\": ";
  AppendJsonDouble(&out, report.skew.max_cell_share);
  out += "}";

  out += ",\n    \"top_contributors\": [";
  for (size_t i = 0; i < report.top_contributors.size(); ++i) {
    out += i == 0 ? "" : ", ";
    AppendCellJson(&out, report, report.top_contributors[i]);
  }
  out += "]";
  if (report.has_exact) {
    out += ",\n    \"exact\": {\"actual_pairs\": " +
           std::to_string(report.actual_pairs) + ", \"relative_error\": ";
    AppendJsonDouble(&out, report.relative_error);
    out += "}";
    out += ",\n    \"top_errors\": [";
    for (size_t i = 0; i < report.top_errors.size(); ++i) {
      out += i == 0 ? "" : ", ";
      AppendCellJson(&out, report, report.top_errors[i]);
    }
    out += "]";
  }
  out += "\n  }\n}\n";
  return out;
}

Status WriteExplainHeatmapCsv(const EstimateExplain& report,
                              const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  std::fprintf(f, "cx,cy,estimated_pairs%s\n",
               report.has_exact ? ",actual_pairs,error" : "");
  for (const ExplainCell& cell : report.cells) {
    if (report.has_exact) {
      std::fprintf(f, "%d,%d,%.17g,%.17g,%.17g\n", cell.cx, cell.cy,
                   cell.estimated_pairs, cell.actual_pairs, cell.error());
    } else {
      std::fprintf(f, "%d,%d,%.17g\n", cell.cx, cell.cy,
                   cell.estimated_pairs);
    }
  }
  if (std::fclose(f) != 0) {
    return Status::IoError("failed writing " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace sjsel
