#include "obs/log.h"

#include <chrono>
#include <cstring>

#include "obs/metrics.h"

namespace sjsel {
namespace obs {
namespace {

// JSON string escaping matching util/json.h's writer (", \, control
// bytes). Duplicated here because obs/ sits below util/ in the module
// map and must not depend on it.
void AppendJsonString(std::string* out, const char* s, size_t len) {
  out->push_back('"');
  for (size_t i = 0; i < len; ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

int64_t WallClockMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  if (name == "debug") {
    *out = LogLevel::kDebug;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warn" || name == "warning") {
    *out = LogLevel::kWarn;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogFields& LogFields::Str(const char* key, const std::string& value) {
  body_ += ",\"";
  body_ += key;
  body_ += "\":";
  AppendJsonString(&body_, value.data(), value.size());
  return *this;
}

LogFields& LogFields::Int(const char* key, long long value) {
  body_ += ",\"";
  body_ += key;
  body_ += "\":";
  body_ += std::to_string(value);
  return *this;
}

LogFields& LogFields::Uint(const char* key, unsigned long long value) {
  body_ += ",\"";
  body_ += key;
  body_ += "\":";
  body_ += std::to_string(value);
  return *this;
}

LogFields& LogFields::Num(const char* key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  body_ += ",\"";
  body_ += key;
  body_ += "\":";
  body_ += buf;
  return *this;
}

LogFields& LogFields::Bool(const char* key, bool value) {
  body_ += ",\"";
  body_ += key;
  body_ += "\":";
  body_ += value ? "true" : "false";
  return *this;
}

std::atomic<bool> Logger::armed_{false};
std::atomic<int> Logger::min_level_{static_cast<int>(LogLevel::kInfo)};

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // leaked, like the registries
  return *logger;
}

bool Logger::Arm(LogLevel min_level, const std::string& path,
                 uint64_t max_lines_per_sec) {
  Disarm();
  std::lock_guard<std::mutex> lock(mu_);
  if (path.empty() || path == "-") {
    sink_ = stderr;
    owns_sink_ = false;
  } else {
    sink_ = std::fopen(path.c_str(), "w");
    if (sink_ == nullptr) return false;
    owns_sink_ = true;
  }
  max_lines_per_sec_ = max_lines_per_sec == 0 ? 1 : max_lines_per_sec;
  buckets_.clear();
  lines_written_.store(0, std::memory_order_relaxed);
  lines_suppressed_.store(0, std::memory_order_relaxed);
  min_level_.store(static_cast<int>(min_level), std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
  return true;
}

void Logger::Disarm() {
  armed_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) {
    std::fflush(sink_);
    if (owns_sink_) std::fclose(sink_);
  }
  sink_ = nullptr;
  owns_sink_ = false;
}

void Logger::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) std::fflush(sink_);
}

void Logger::Log(LogLevel level, const char* event, const LogFields& fields) {
  if (!Enabled(level)) return;
  const int64_t ts_us = WallClockMicros();

  std::string line = "{\"ts_us\":";
  line += std::to_string(ts_us);
  line += ",\"level\":\"";
  line += LogLevelName(level);
  line += "\",\"event\":";
  AppendJsonString(&line, event, std::strlen(event));
  line += fields.body();
  line += "}\n";

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sink_ == nullptr) return;  // raced with Disarm
    TokenBucket& bucket = buckets_[event];
    const int64_t second = ts_us / 1000000;
    if (bucket.second != second) {
      bucket.second = second;
      bucket.count = 0;
    }
    if (bucket.count >= max_lines_per_sec_) {
      lines_suppressed_.fetch_add(1, std::memory_order_relaxed);
      SJSEL_METRIC_INC("log.suppressed");
      return;
    }
    ++bucket.count;
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fflush(sink_);
  }
  lines_written_.fetch_add(1, std::memory_order_relaxed);
  SJSEL_METRIC_INC(std::string("log.lines.") + LogLevelName(level));
}

}  // namespace obs
}  // namespace sjsel
