#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sjsel {
namespace obs {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

// Quantile values are derived doubles; %.6g keeps them readable and the
// snapshot deterministic (pure function of the bucket counts).
std::string FormatQuantile(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

double Histogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double cum = 0.0;
  double value = static_cast<double>(max());
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t in_bucket = bucket(i);
    if (in_bucket == 0) continue;
    const double next = cum + static_cast<double>(in_bucket);
    if (next >= target) {
      if (i == 0) {
        value = 0.0;
      } else {
        const double lo = std::ldexp(1.0, i - 1);  // 2^(i-1)
        const double hi = std::ldexp(1.0, i);      // 2^i
        const double frac = (target - cum) / static_cast<double>(in_bucket);
        value = lo + frac * (hi - lo);
      }
      break;
    }
    cum = next;
  }
  return std::clamp(value, static_cast<double>(min()),
                    static_cast<double>(max()));
}

std::atomic<bool> MetricsRegistry::armed_{false};

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

namespace {

// Arming state behind the fast armed_ flag: process-wide arming (CLI
// --metrics) and the scope refcount (server requests) combine under one
// mutex; armed_ caches `process || refs > 0`.
struct ArmState {
  std::mutex mu;
  bool process = false;
  int scope_refs = 0;
};

ArmState& MetricsArmState() {
  static ArmState* state = new ArmState();  // leaked, like the registry
  return *state;
}

}  // namespace

void MetricsRegistry::Arm() {
  ArmState& state = MetricsArmState();
  std::lock_guard<std::mutex> lock(state.mu);
  Global().Reset();
  state.process = true;
  armed_.store(true, std::memory_order_release);
}

void MetricsRegistry::Disarm() {
  ArmState& state = MetricsArmState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.process = false;
  armed_.store(state.scope_refs > 0, std::memory_order_release);
}

void MetricsRegistry::ArmScopeAcquire() {
  ArmState& state = MetricsArmState();
  std::lock_guard<std::mutex> lock(state.mu);
  ++state.scope_refs;
  armed_.store(true, std::memory_order_release);
}

void MetricsRegistry::ArmScopeRelease() {
  ArmState& state = MetricsArmState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.scope_refs > 0) --state.scope_refs;
  armed_.store(state.process || state.scope_refs > 0,
               std::memory_order_release);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

size_t MetricsRegistry::InstrumentCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(&out, name);
    out += "\": ";
    out += std::to_string(counter->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(&out, name);
    out += "\": ";
    out += std::to_string(gauge->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(&out, name);
    out += "\": {\"count\": ";
    out += std::to_string(hist->count());
    out += ", \"sum\": ";
    out += std::to_string(hist->sum());
    out += ", \"min\": ";
    out += std::to_string(hist->min());
    out += ", \"max\": ";
    out += std::to_string(hist->max());
    out += ", \"p50\": ";
    out += FormatQuantile(hist->Quantile(0.50));
    out += ", \"p95\": ";
    out += FormatQuantile(hist->Quantile(0.95));
    out += ", \"p99\": ";
    out += FormatQuantile(hist->Quantile(0.99));
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t n = hist->bucket(i);
      if (n == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "[";
      out += std::to_string(i);
      out += ", ";
      out += std::to_string(n);
      out += "]";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsRegistry::SnapshotText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "  %-44s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->value()));
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "  %-44s %lld\n", name.c_str(),
                  static_cast<long long>(gauge->value()));
    out += line;
  }
  for (const auto& [name, hist] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "  %-44s count=%llu mean=%.1fus p50=%.6gus p95=%.6gus "
                  "p99=%.6gus min=%lluus max=%lluus\n",
                  name.c_str(),
                  static_cast<unsigned long long>(hist->count()),
                  hist->mean(), hist->Quantile(0.50), hist->Quantile(0.95),
                  hist->Quantile(0.99),
                  static_cast<unsigned long long>(hist->min()),
                  static_cast<unsigned long long>(hist->max()));
    out += line;
  }
  return out;
}

namespace {

// OpenMetrics metric names: [a-zA-Z0-9_] survives, everything else
// (dots, colons in cause suffixes) becomes '_'. The "sjsel_" prefix
// guarantees a valid leading character.
std::string OpenMetricsName(const std::string& name) {
  std::string out = "sjsel_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// Label-value escaping per the exposition format: backslash, double
// quote and newline.
void AppendOpenMetricsLabel(std::string* out, const std::string& v) {
  for (const char c : v) {
    if (c == '\\') {
      *out += "\\\\";
    } else if (c == '"') {
      *out += "\\\"";
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      out->push_back(c);
    }
  }
}

void AppendNameLabel(std::string* out, const std::string& name) {
  *out += "{name=\"";
  AppendOpenMetricsLabel(out, name);
  *out += "\"}";
}

}  // namespace

std::string MetricsRegistry::SnapshotOpenMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string san = OpenMetricsName(name);
    out += "# TYPE " + san + " counter\n";
    out += san + "_total";
    AppendNameLabel(&out, name);
    out += " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string san = OpenMetricsName(name);
    out += "# TYPE " + san + " gauge\n";
    out += san;
    AppendNameLabel(&out, name);
    out += " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const std::string san = OpenMetricsName(name);
    out += "# TYPE " + san + " summary\n";
    static constexpr struct {
      const char* label;
      double q;
    } kQuantiles[] = {
        {"0.5", 0.50}, {"0.9", 0.90}, {"0.95", 0.95}, {"0.99", 0.99}};
    for (const auto& quantile : kQuantiles) {
      out += san + "{name=\"";
      AppendOpenMetricsLabel(&out, name);
      out += "\",quantile=\"";
      out += quantile.label;
      out += "\"} " + FormatQuantile(hist->Quantile(quantile.q)) + "\n";
    }
    out += san + "_sum";
    AppendNameLabel(&out, name);
    out += " " + std::to_string(hist->sum()) + "\n";
    out += san + "_count";
    AppendNameLabel(&out, name);
    out += " " + std::to_string(hist->count()) + "\n";
  }
  out += "# EOF\n";
  return out;
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  const std::string json = SnapshotJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 && written == json.size();
}

void RecordLatencyMicros(Histogram* hist, uint64_t micros) {
  if (hist != nullptr && MetricsRegistry::Armed()) hist->Record(micros);
}

}  // namespace obs
}  // namespace sjsel
