#ifndef SJSEL_OBS_TRACE_H_
#define SJSEL_OBS_TRACE_H_

// Scoped-span tracing into per-thread ring buffers, flushed on demand to
// Chrome trace-event JSON (load the file in chrome://tracing or
// https://ui.perfetto.dev). See docs/OBSERVABILITY.md for the span
// taxonomy and the cost contract.
//
// Usage at an instrumented seam:
//
//   SJSEL_TRACE_SPAN("gh.build", "level=%d rects=%zu", level, ds.size());
//
// The macro declares an inert RAII object and only consults the tracer —
// one relaxed atomic load — to decide whether to start recording. While
// the tracer is disarmed a span costs that single load and branch: no
// clock read, no allocation, no argument formatting. While armed, spans
// record a self-contained "complete" event (name, start, duration, depth,
// preformatted detail string) into the calling thread's ring buffer on
// destruction; recording one event is a clock read, an snprintf into a
// fixed slot, and two uncontended atomic exchanges (the ring's flush
// gate). Nothing ever blocks on another thread's progress.
//
// Rings are fixed-capacity and overwrite their oldest events when full
// (the drop count is reported in the flushed file). Because every slot is
// a complete span — begin/end are never split across entries — wraparound
// can only drop whole spans, so a flushed trace is always balanced.
//
// This header depends only on the standard library: it sits below
// src/util/ so even util/timer.h may build on it (see the module map in
// docs/ARCHITECTURE.md).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sjsel {
namespace obs {

/// One recorded event, as returned by Tracer::Collect for tests and the
/// JSON writer. dur_ns == -1 marks an instant event.
struct CollectedSpan {
  std::string name;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  int tid = 0;    ///< ring id — one per recording thread, reused after exit
  int depth = 0;  ///< span nesting depth on its thread at begin time
  std::string detail;  ///< the formatted args string, possibly empty
};

class TraceRing;

/// The process-wide tracer. Arm() resets all rings and starts the trace
/// clock; spans and instants recorded while armed are collected by
/// Collect()/WriteChromeTrace(). All methods are thread-safe.
class Tracer {
 public:
  /// Events a single thread can hold before the ring overwrites its
  /// oldest entry.
  static constexpr size_t kRingCapacity = 4096;
  /// Formatted detail strings are truncated to this many bytes (including
  /// the NUL).
  static constexpr size_t kMaxDetail = 96;

  static Tracer& Global();

  /// The fast gate every span checks first: one relaxed atomic load.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  /// Starts (or restarts) tracing: clears every ring, re-zeroes the trace
  /// clock, arms the gate.
  void Arm();

  /// Stops recording. Already-recorded events stay collectable.
  void Disarm();

  /// Scoped (refcounted) arming for per-request tracing (the server arms
  /// around each request, not for the process): recording is on while
  /// Arm()/Disarm() arming is active OR at least one scope is held. The
  /// first scope ever acquired resets the rings and the trace clock like
  /// Arm(); later scopes resume recording without clearing, so one flush
  /// at shutdown holds every request's spans. Pairs must balance; use
  /// ScopedTraceArm.
  void ArmScopeAcquire();
  void ArmScopeRelease();

  /// Records an instant event on the calling thread's ring. No-op when
  /// disarmed.
  void Instant(const char* name);

  /// Everything currently recorded, in per-ring record order, plus the
  /// number of events lost to ring wraparound. Safe to call while other
  /// threads are still recording (in-flight events may or may not be
  /// included).
  struct Snapshot {
    std::vector<CollectedSpan> spans;
    uint64_t dropped = 0;
    int rings = 0;
  };
  Snapshot Collect();

  /// The snapshot as a Chrome trace-event JSON object (traceEvents array
  /// of "X"/"i" events, ts/dur in microseconds).
  std::string ChromeTraceJson();

  /// Writes ChromeTraceJson() to `path`. Returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path);

  /// Rings ever created (== distinct concurrently-live recording threads
  /// high-water mark; exited threads donate their ring back for reuse).
  int ring_count();

  /// Internal: record one complete span from the calling thread.
  void RecordSpan(const char* name, int64_t start_ns, int64_t dur_ns,
                  int depth, const char* detail);

  /// Nanoseconds since Arm() on the trace clock (steady).
  int64_t NowNs() const;

 private:
  TraceRing* RingForThisThread();
  void ReleaseRing(TraceRing* ring);

  struct RingLease;  // thread_local handle that returns the ring on exit

  static std::atomic<bool> armed_;

  std::mutex arm_mu_;         ///< guards the three arming fields below
  bool process_armed_ = false;
  int scope_refs_ = 0;
  bool ever_armed_ = false;   ///< first scope resets rings + clock

  std::mutex mu_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::vector<TraceRing*> free_rings_;
  std::atomic<int64_t> epoch_ns_{0};  ///< steady-clock ns at Arm()
};

/// RAII span. Default-constructed it is inert; Begin() starts the clock
/// and the destructor records the completed span. Use via
/// SJSEL_TRACE_SPAN so the disarmed path never reaches Begin().
class TraceSpan {
 public:
  TraceSpan() = default;
  ~TraceSpan() {
    if (active_) End();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// `name` must have static storage duration (string literals only — the
  /// pointer is kept until flush). The printf-style overload formats a
  /// human-readable detail string into a fixed buffer, surfaced as
  /// args.detail in the trace file.
  void Begin(const char* name);
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 3, 4)))
#endif
  void Begin(const char* name, const char* fmt, ...);

 private:
  void End();

  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  int depth_ = 0;
  bool active_ = false;
  char detail_[Tracer::kMaxDetail] = {0};
};

/// RAII pair for Tracer::ArmScopeAcquire/ArmScopeRelease (one per served
/// request; see docs/SERVER.md "Observability").
class ScopedTraceArm {
 public:
  ScopedTraceArm() { Tracer::Global().ArmScopeAcquire(); }
  ~ScopedTraceArm() { Tracer::Global().ArmScopeRelease(); }
  ScopedTraceArm(const ScopedTraceArm&) = delete;
  ScopedTraceArm& operator=(const ScopedTraceArm&) = delete;
};

#define SJSEL_OBS_CONCAT_INNER(a, b) a##b
#define SJSEL_OBS_CONCAT(a, b) SJSEL_OBS_CONCAT_INNER(a, b)

/// Scoped span covering the rest of the enclosing block. At most one per
/// source line. Arguments beyond the name are a printf format + values,
/// only evaluated when the tracer is armed.
#define SJSEL_TRACE_SPAN(...)                                              \
  ::sjsel::obs::TraceSpan SJSEL_OBS_CONCAT(sjsel_trace_span_, __LINE__);   \
  if (::sjsel::obs::Tracer::Armed())                                       \
  SJSEL_OBS_CONCAT(sjsel_trace_span_, __LINE__).Begin(__VA_ARGS__)

/// Instant event (a point on the timeline), e.g. a degradation or a cache
/// rebuild. Costs one relaxed load when disarmed.
#define SJSEL_TRACE_INSTANT(name)                                          \
  do {                                                                     \
    if (::sjsel::obs::Tracer::Armed())                                     \
      ::sjsel::obs::Tracer::Global().Instant(name);                        \
  } while (0)

}  // namespace obs
}  // namespace sjsel

#endif  // SJSEL_OBS_TRACE_H_
