#ifndef SJSEL_OBS_LOG_H_
#define SJSEL_OBS_LOG_H_

// Structured logging: leveled, rate-limited JSON-lines (one object per
// line) for the long-running surfaces — server lifecycle, admission
// rejections, estimator degradations, WAL recovery, checkpoints. See
// docs/OBSERVABILITY.md ("Structured logging") for the event vocabulary
// and how log lines correlate with trace spans via request_id.
//
// Cost contract, mirroring obs/metrics.h and obs/trace.h: every log site
// first checks Logger::Armed() — one relaxed atomic load — and does
// nothing else while disarmed (no formatting, no allocation, no lock).
// The SJSEL_LOG_* macros evaluate their field-builder argument only when
// armed, so a disarmed site costs exactly that load and branch.
//
// While armed, a line below the configured minimum level costs one more
// relaxed load; an emitted line is formatted into one std::string and
// appended to the sink under a short mutex, flushed per line (a crash
// must not eat the events leading up to it). A per-event token bucket
// caps emission at `max_lines_per_sec` lines per event name per wall
// second; suppressed lines are counted (`lines_suppressed()`, plus the
// `log.suppressed` metric when metrics are armed) so floods are visible
// without filling the disk.
//
// This header depends only on the standard library: it sits below
// src/util/ in the module map, next to obs/trace.h and obs/metrics.h.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

namespace sjsel {
namespace obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// "debug" / "info" / "warn" / "error".
const char* LogLevelName(LogLevel level);

/// Parses a level name (as the CLI's --log-level flag spells it).
/// Returns false on an unknown name, leaving *out untouched.
bool ParseLogLevel(const std::string& name, LogLevel* out);

/// Ordered key/value fields of one log line, serialized as JSON object
/// members in insertion order. Values are escaped like util/json.h does
/// (the emitted line parses with JsonValue::Parse). Keys must be plain
/// identifiers (no escaping is applied to keys).
class LogFields {
 public:
  LogFields& Str(const char* key, const std::string& value);
  LogFields& Int(const char* key, long long value);
  LogFields& Uint(const char* key, unsigned long long value);
  LogFields& Num(const char* key, double value);
  LogFields& Bool(const char* key, bool value);

  /// The accumulated `,"key":value` fragments (possibly empty).
  const std::string& body() const { return body_; }

 private:
  std::string body_;
};

/// The process-wide logger. Disarmed by default; `sjsel serve` arms it
/// for --log-file/--log-level, tests arm it directly.
class Logger {
 public:
  /// Per-event emission cap (lines per event name per wall second)
  /// unless Arm() overrides it.
  static constexpr uint64_t kDefaultMaxLinesPerSec = 200;

  static Logger& Global();

  /// The fast gate every log site checks first: one relaxed atomic load.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  /// True when a line at `level` would be emitted: armed AND at or above
  /// the configured minimum. One extra relaxed load on the armed path.
  static bool Enabled(LogLevel level) {
    return Armed() &&
           static_cast<int>(level) >= min_level_.load(std::memory_order_relaxed);
  }

  /// Opens the sink and arms the gate. `path` empty or "-" logs to
  /// stderr; otherwise the file is created/truncated. Re-arming flushes
  /// and closes any previous sink first and zeroes the line counters.
  /// Returns false (disarmed) when the file cannot be opened.
  bool Arm(LogLevel min_level, const std::string& path,
           uint64_t max_lines_per_sec = kDefaultMaxLinesPerSec);

  /// Flushes, closes a file sink, disarms. Idempotent.
  void Disarm();

  /// Flushes the sink (lines are already flushed per write; this exists
  /// for symmetry and for the drain path to call explicitly).
  void Flush();

  /// Emits one line: {"ts_us":...,"level":"...","event":"..."<fields>}.
  /// `event` must be a dotted lowercase name (e.g. "server.start").
  /// No-op when disarmed or below the minimum level; rate-limited per
  /// event name. Call via the SJSEL_LOG_* macros so the disarmed path
  /// never builds the fields.
  void Log(LogLevel level, const char* event, const LogFields& fields);

  /// Lines emitted to the sink since the last Arm().
  uint64_t lines_written() const {
    return lines_written_.load(std::memory_order_relaxed);
  }
  /// Lines dropped by the per-event rate limiter since the last Arm().
  uint64_t lines_suppressed() const {
    return lines_suppressed_.load(std::memory_order_relaxed);
  }

 private:
  static std::atomic<bool> armed_;
  static std::atomic<int> min_level_;

  struct TokenBucket {
    int64_t second = -1;  ///< wall-clock second the count applies to
    uint64_t count = 0;
  };

  std::mutex mu_;  ///< guards the sink and the rate-limit table
  std::FILE* sink_ = nullptr;
  bool owns_sink_ = false;
  uint64_t max_lines_per_sec_ = kDefaultMaxLinesPerSec;
  std::map<std::string, TokenBucket> buckets_;
  std::atomic<uint64_t> lines_written_{0};
  std::atomic<uint64_t> lines_suppressed_{0};
};

/// Leveled log macros. The fields expression (a LogFields value, e.g.
/// `obs::LogFields().Str("socket", path)`) is evaluated only when the
/// logger is armed and the level passes the minimum — one relaxed load
/// when disarmed.
#define SJSEL_LOG(level, event, fields)                        \
  do {                                                         \
    if (::sjsel::obs::Logger::Enabled(level)) {                \
      ::sjsel::obs::Logger::Global().Log(level, event, fields); \
    }                                                          \
  } while (0)

#define SJSEL_LOG_DEBUG(event, fields) \
  SJSEL_LOG(::sjsel::obs::LogLevel::kDebug, event, fields)
#define SJSEL_LOG_INFO(event, fields) \
  SJSEL_LOG(::sjsel::obs::LogLevel::kInfo, event, fields)
#define SJSEL_LOG_WARN(event, fields) \
  SJSEL_LOG(::sjsel::obs::LogLevel::kWarn, event, fields)
#define SJSEL_LOG_ERROR(event, fields) \
  SJSEL_LOG(::sjsel::obs::LogLevel::kError, event, fields)

}  // namespace obs
}  // namespace sjsel

#endif  // SJSEL_OBS_LOG_H_
