#include "obs/trace.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace sjsel {
namespace obs {
namespace {

// Span nesting depth of the calling thread. Incremented by Begin,
// decremented by End; purely thread-local, so no synchronization.
thread_local int t_depth = 0;

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Minimal JSON string escaping for names and detail strings.
void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

// A fixed-capacity per-thread event ring. The owning thread is the only
// writer; Collect (any thread) reads under the same spin gate the writer
// takes, so readers never see a half-written slot and TSan sees a proper
// acquire/release pair. The gate is per-ring and uncontended except
// during a flush, so recording stays wait-free in the steady state.
class TraceRing {
 public:
  explicit TraceRing(int id) : id_(id) {}

  int id() const { return id_; }

  void Push(const char* name, int64_t start_ns, int64_t dur_ns, int depth,
            const char* detail) {
    Lock();
    Slot& slot = slots_[head_ % Tracer::kRingCapacity];
    slot.name = name;
    slot.start_ns = start_ns;
    slot.dur_ns = dur_ns;
    slot.depth = depth;
    if (detail != nullptr && detail[0] != '\0') {
      std::snprintf(slot.detail, sizeof(slot.detail), "%s", detail);
    } else {
      slot.detail[0] = '\0';
    }
    ++head_;
    Unlock();
  }

  void Reset() {
    Lock();
    head_ = 0;
    Unlock();
  }

  // Appends this ring's events (record order) to `out`; returns how many
  // events wraparound has overwritten.
  uint64_t CollectInto(std::vector<CollectedSpan>* out) {
    Lock();
    const uint64_t kept =
        head_ < Tracer::kRingCapacity ? head_ : Tracer::kRingCapacity;
    const uint64_t dropped = head_ - kept;
    for (uint64_t i = head_ - kept; i < head_; ++i) {
      const Slot& slot = slots_[i % Tracer::kRingCapacity];
      CollectedSpan span;
      span.name = slot.name;
      span.start_ns = slot.start_ns;
      span.dur_ns = slot.dur_ns;
      span.tid = id_;
      span.depth = slot.depth;
      span.detail = slot.detail;
      out->push_back(std::move(span));
    }
    Unlock();
    return dropped;
  }

 private:
  struct Slot {
    const char* name = "";
    int64_t start_ns = 0;
    int64_t dur_ns = 0;
    int32_t depth = 0;
    char detail[Tracer::kMaxDetail] = {0};
  };

  void Lock() {
    while (gate_.exchange(true, std::memory_order_acquire)) {
      // Contended only while a flush copies this ring; spin briefly.
    }
  }
  void Unlock() { gate_.store(false, std::memory_order_release); }

  std::atomic<bool> gate_{false};
  uint64_t head_ = 0;  ///< events ever pushed; slot index is head_ % cap
  int id_;
  Slot slots_[Tracer::kRingCapacity];
};

std::atomic<bool> Tracer::armed_{false};

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // intentionally leaked
  return *tracer;
}

// Thread exit returns the ring to the tracer's free list so short-lived
// pool workers recycle rings instead of growing the registry without
// bound. A reused ring keeps its recorded events (the dead thread's spans
// ended before the new thread's begin, so the shared tid track stays
// properly nested in time).
struct Tracer::RingLease {
  TraceRing* ring = nullptr;
  ~RingLease() {
    if (ring != nullptr) Tracer::Global().ReleaseRing(ring);
  }
};

TraceRing* Tracer::RingForThisThread() {
  thread_local RingLease lease;
  if (lease.ring == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_rings_.empty()) {
      lease.ring = free_rings_.back();
      free_rings_.pop_back();
    } else {
      rings_.push_back(
          std::make_unique<TraceRing>(static_cast<int>(rings_.size())));
      lease.ring = rings_.back().get();
    }
  }
  return lease.ring;
}

void Tracer::ReleaseRing(TraceRing* ring) {
  std::lock_guard<std::mutex> lock(mu_);
  free_rings_.push_back(ring);
}

void Tracer::Arm() {
  std::lock_guard<std::mutex> arm_lock(arm_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& ring : rings_) ring->Reset();
  }
  epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  process_armed_ = true;
  ever_armed_ = true;
  armed_.store(true, std::memory_order_release);
}

void Tracer::Disarm() {
  std::lock_guard<std::mutex> arm_lock(arm_mu_);
  process_armed_ = false;
  armed_.store(scope_refs_ > 0, std::memory_order_release);
}

void Tracer::ArmScopeAcquire() {
  std::lock_guard<std::mutex> arm_lock(arm_mu_);
  ++scope_refs_;
  if (!ever_armed_) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& ring : rings_) ring->Reset();
    }
    epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
    ever_armed_ = true;
  }
  armed_.store(true, std::memory_order_release);
}

void Tracer::ArmScopeRelease() {
  std::lock_guard<std::mutex> arm_lock(arm_mu_);
  if (scope_refs_ > 0) --scope_refs_;
  armed_.store(process_armed_ || scope_refs_ > 0, std::memory_order_release);
}

int64_t Tracer::NowNs() const {
  return SteadyNowNs() - epoch_ns_.load(std::memory_order_relaxed);
}

void Tracer::RecordSpan(const char* name, int64_t start_ns, int64_t dur_ns,
                        int depth, const char* detail) {
  if (!Armed()) return;
  RingForThisThread()->Push(name, start_ns, dur_ns, depth, detail);
}

void Tracer::Instant(const char* name) {
  if (!Armed()) return;
  RingForThisThread()->Push(name, NowNs(), -1, t_depth, "");
}

int Tracer::ring_count() {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(rings_.size());
}

Tracer::Snapshot Tracer::Collect() {
  Snapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.rings = static_cast<int>(rings_.size());
  for (auto& ring : rings_) {
    snapshot.dropped += ring->CollectInto(&snapshot.spans);
  }
  return snapshot;
}

std::string Tracer::ChromeTraceJson() {
  const Snapshot snapshot = Collect();
  std::string out;
  out.reserve(snapshot.spans.size() * 128 + 256);
  out += "{\n\"displayTimeUnit\": \"ms\",\n";
  out += "\"otherData\": {\"tool\": \"sjsel\", \"dropped_events\": ";
  out += std::to_string(snapshot.dropped);
  out += "},\n\"traceEvents\": [\n";
  out +=
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"sjsel\"}}";
  char num[64];
  for (const CollectedSpan& span : snapshot.spans) {
    out += ",\n{\"name\": \"";
    AppendJsonEscaped(&out, span.name);
    out += "\", \"cat\": \"sjsel\", \"ph\": \"";
    out += span.dur_ns < 0 ? "i" : "X";
    out += "\", \"pid\": 1, \"tid\": ";
    out += std::to_string(span.tid + 1);  // tid 0 is the metadata track
    std::snprintf(num, sizeof(num), ", \"ts\": %.3f",
                  static_cast<double>(span.start_ns) / 1000.0);
    out += num;
    if (span.dur_ns < 0) {
      out += ", \"s\": \"t\"";
    } else {
      std::snprintf(num, sizeof(num), ", \"dur\": %.3f",
                    static_cast<double>(span.dur_ns) / 1000.0);
      out += num;
    }
    out += ", \"args\": {\"depth\": ";
    out += std::to_string(span.depth);
    if (!span.detail.empty()) {
      out += ", \"detail\": \"";
      AppendJsonEscaped(&out, span.detail);
      out += "\"";
    }
    out += "}}";
  }
  out += "\n]\n}\n";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

void TraceSpan::Begin(const char* name) {
  name_ = name;
  start_ns_ = Tracer::Global().NowNs();
  depth_ = t_depth++;
  active_ = true;
  detail_[0] = '\0';
}

void TraceSpan::Begin(const char* name, const char* fmt, ...) {
  Begin(name);
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(detail_, sizeof(detail_), fmt, args);
  va_end(args);
}

void TraceSpan::End() {
  const int64_t end_ns = Tracer::Global().NowNs();
  --t_depth;
  active_ = false;
  // Disarmed mid-span: drop the event (RecordSpan re-checks) but the
  // depth bookkeeping above must still run.
  Tracer::Global().RecordSpan(name_, start_ns_, end_ns - start_ns_, depth_,
                              detail_);
}

}  // namespace obs
}  // namespace sjsel
