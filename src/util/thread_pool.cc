#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injection.h"

namespace sjsel {
namespace {

// Fault site pool.task: one consultation per ParallelFor block, at the
// task boundary, in both the inline and pooled paths. Propagation reuses
// ParallelFor's deterministic rethrow (lowest failing block), so an
// always- or every-armed worker failure surfaces identically for any
// thread count; nth/prob schedules count consultations, whose block
// assignment under a pool depends on scheduling.
inline void MaybeInjectTaskFault() {
  if (FaultInjector::GloballyArmed()) {
    FaultInjector::Global().ThrowIfTriggered(kFaultSitePoolTask);
  }
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t depth;
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++unfinished_;
    depth = queue_.size();
  }
  SJSEL_METRIC_INC("pool.tasks");
  SJSEL_METRIC_GAUGE_MAX("pool.queue_depth.max", depth);
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return unfinished_ == 0; });
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--unfinished_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int64_t n, int64_t grain,
                 const std::function<void(int64_t block, int64_t begin,
                                          int64_t end)>& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int64_t blocks = ParallelForNumBlocks(n, grain);
  SJSEL_TRACE_SPAN("pool.parallel_for",
                   "n=%lld grain=%lld blocks=%lld threads=%d",
                   static_cast<long long>(n), static_cast<long long>(grain),
                   static_cast<long long>(blocks),
                   pool == nullptr ? 1 : pool->num_threads());
  SJSEL_METRIC_INC("pool.parallel_for.calls");
  SJSEL_METRIC_ADD("pool.parallel_for.blocks", blocks);

  if (pool == nullptr || pool->num_threads() <= 1 || blocks == 1) {
    // Inline path, same contract as the pooled one: every block runs, the
    // lowest-indexed failure is rethrown afterwards.
    std::exception_ptr first_error;
    for (int64_t b = 0; b < blocks; ++b) {
      const int64_t begin = b * grain;
      const int64_t end = std::min(n, begin + grain);
      try {
        MaybeInjectTaskFault();
        body(b, begin, end);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  // One exception slot per block: the lowest-indexed failure is rethrown,
  // so error propagation is as deterministic as the results are.
  std::vector<std::exception_ptr> errors(static_cast<size_t>(blocks));
  for (int64_t b = 0; b < blocks; ++b) {
    const int64_t begin = b * grain;
    const int64_t end = std::min(n, begin + grain);
    pool->Submit([&body, &errors, b, begin, end] {
      try {
        MaybeInjectTaskFault();
        body(b, begin, end);
      } catch (...) {
        errors[static_cast<size_t>(b)] = std::current_exception();
      }
    });
  }
  pool->Wait();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace sjsel
