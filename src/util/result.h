#ifndef SJSEL_UTIL_RESULT_H_
#define SJSEL_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace sjsel {

/// Holds either a value of type `T` or an error `Status` (never both),
/// mirroring absl::StatusOr / arrow::Result. Access the value only after
/// checking `ok()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Pre-condition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ has a value.
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs`.
#define SJSEL_ASSIGN_OR_RETURN(lhs, expr)                 \
  do {                                                    \
    auto _sjsel_result = (expr);                          \
    if (!_sjsel_result.ok()) return _sjsel_result.status(); \
    lhs = std::move(_sjsel_result).value();               \
  } while (0)

}  // namespace sjsel

#endif  // SJSEL_UTIL_RESULT_H_
