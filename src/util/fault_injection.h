#ifndef SJSEL_UTIL_FAULT_INJECTION_H_
#define SJSEL_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace sjsel {

/// Well-known fault sites. A site is a stable string key naming one seam
/// where the library consults the injector; tests and the CLI
/// (`--inject-faults=<spec>`) arm rules against these names. Sites are
/// documented where they fire:
///   io.read          ReadFile() fails with IoError before touching disk.
///   io.corrupt       ReadFile() succeeds but one byte of the returned
///                    buffer is flipped (drives every CRC/magic check).
///   catalog.hist_load  Catalog::GetHistogram's cache-file load fails with
///                    Corruption; the catalog falls back to an in-memory
///                    rebuild.
///   pool.task        ParallelFor throws FaultInjectedError from one block
///                    (worker-failure path; rethrown deterministically).
///   estimator.gh / estimator.ph / estimator.sampling / estimator.parametric
///                    The corresponding GuardedEstimator rung fails with
///                    Corruption before running, exercising the fallback
///                    chain.
///   wal.torn_write   WalWriter::Append persists only a strict prefix of
///                    the framed record and returns IoError — simulates a
///                    crash mid-write; recovery must truncate the torn
///                    tail. The writer is poisoned afterwards.
///   wal.short_write  One write(2) inside Append is artificially capped;
///                    the retry loop must complete the record (success
///                    path — proves partial writes are handled).
///   wal.corrupt      Append flips one payload byte on disk and returns
///                    IoError (so the record is never acknowledged);
///                    replay must reject it via the record CRC.
inline constexpr char kFaultSiteIoRead[] = "io.read";
inline constexpr char kFaultSiteIoCorrupt[] = "io.corrupt";
inline constexpr char kFaultSiteCatalogHistLoad[] = "catalog.hist_load";
inline constexpr char kFaultSitePoolTask[] = "pool.task";
inline constexpr char kFaultSiteEstimatorGh[] = "estimator.gh";
inline constexpr char kFaultSiteEstimatorPh[] = "estimator.ph";
inline constexpr char kFaultSiteEstimatorSampling[] = "estimator.sampling";
inline constexpr char kFaultSiteEstimatorParametric[] = "estimator.parametric";
inline constexpr char kFaultSiteWalTornWrite[] = "wal.torn_write";
inline constexpr char kFaultSiteWalShortWrite[] = "wal.short_write";
inline constexpr char kFaultSiteWalCorrupt[] = "wal.corrupt";

/// Thrown at the pool.task site (thread-pool task boundaries cannot return
/// Status). ParallelFor's per-block exception handling rethrows it on the
/// calling thread; callers that must degrade gracefully (GuardedEstimator,
/// the CLI dispatcher) catch it there.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// A deterministic, seedable fault injector. Rules are keyed by site name
/// and trigger on a schedule that is a pure function of (rule, per-site
/// call counter) — never of wall clock, thread ids or global RNG state —
/// so any failing run replays exactly.
///
/// Cost when disarmed: sites guard every consultation with
/// `FaultInjector::GloballyArmed()`, a single relaxed atomic load, so the
/// disabled path adds one predictable branch and no locking.
///
/// Thread-safety: Arm/Disarm/ShouldFail may be called from any thread;
/// per-site state is mutex-protected (the lock is only ever taken while a
/// spec is armed, i.e. in tests and fault drills).
class FaultInjector {
 public:
  /// When a rule fires at a site.
  enum class Trigger {
    kNth,     ///< exactly the n-th consultation of the site (1-based)
    kEvery,   ///< every n-th consultation
    kProb,    ///< each consultation independently with probability p,
              ///< from a seeded per-site hash (deterministic)
    kAlways,  ///< every consultation
  };

  struct Rule {
    std::string site;
    Trigger trigger = Trigger::kAlways;
    uint64_t n = 1;            ///< for kNth / kEvery
    double probability = 0.0;  ///< for kProb
    uint64_t seed = 1;         ///< for kProb
  };

  /// The process-wide injector every fault site consults.
  static FaultInjector& Global();

  /// True iff the global injector currently has rules armed. This is the
  /// fast gate sites check first.
  static bool GloballyArmed() {
    return globally_armed_.load(std::memory_order_relaxed);
  }

  /// Parses a `--inject-faults` spec: comma-separated `site=trigger`
  /// clauses where trigger is one of
  ///   always | nth:<N> | every:<N> | prob:<P>[/<SEED>]
  /// e.g. "estimator.gh=always,io.read=nth:2,pool.task=prob:0.5/7".
  static Result<std::vector<Rule>> ParseSpec(const std::string& spec);

  /// Replaces all rules (resetting call counters) and arms the injector.
  /// Rejects empty rule lists, empty site names and invalid parameters.
  Status Arm(std::vector<Rule> rules);

  /// Convenience: ParseSpec + Arm.
  Status ArmSpec(const std::string& spec);

  /// Removes all rules; every site becomes a no-op again.
  void Disarm();

  /// Consults the site: increments its call counter and reports whether an
  /// armed rule fires for this call. Always false when disarmed.
  bool ShouldFail(const std::string& site);

  /// ShouldFail + throw FaultInjectedError — for seams that propagate
  /// failure by exception (thread-pool task boundaries).
  void ThrowIfTriggered(const std::string& site);

  /// Times the site was consulted / actually failed since the last Arm.
  uint64_t CallCount(const std::string& site) const;
  uint64_t TriggerCount(const std::string& site) const;

 private:
  struct SiteState {
    uint64_t calls = 0;
    uint64_t triggers = 0;
  };

  static std::atomic<bool> globally_armed_;

  mutable std::mutex mu_;
  std::vector<Rule> rules_;
  std::map<std::string, SiteState> sites_;
};

/// RAII arming for tests and the CLI: arms the global injector with `spec`
/// on construction (status() reports parse errors; the injector stays
/// disarmed on failure) and disarms it on destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const std::string& spec);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace sjsel

#endif  // SJSEL_UTIL_FAULT_INJECTION_H_
