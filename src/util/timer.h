#ifndef SJSEL_UTIL_TIMER_H_
#define SJSEL_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sjsel {

namespace obs {
// Defined in obs/metrics.h / obs/metrics.cc; forward-declared so this
// header stays include-light (ScopedTimer below only needs the pointer
// and the reporting hook).
class Histogram;
void RecordLatencyMicros(Histogram* hist, uint64_t micros);
}  // namespace obs

/// Monotonic wall-clock stopwatch used for the paper's relative-time metrics
/// (Est. Time 1 / Est. Time 2, histogram build time).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Whole microseconds elapsed since construction or the last Reset().
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A Timer that, on destruction, reports its elapsed microseconds into a
/// metrics histogram (obs/metrics.h) — the standard way for benches and
/// phase-structured code to both read a duration and publish it:
///
///   {
///     ScopedTimer t(registry.GetHistogram("pipeline.build_us"));
///     ... work ...
///     seconds = t.ElapsedSeconds();   // still readable inline
///   }                                 // histogram sample recorded here
///
/// A null histogram (or disarmed metrics) makes the report a no-op, so
/// the type is safe to use unconditionally.
class ScopedTimer {
 public:
  ScopedTimer() = default;
  explicit ScopedTimer(obs::Histogram* hist) : hist_(hist) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) obs::RecordLatencyMicros(hist_, ElapsedMicros());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  void Reset() { timer_.Reset(); }
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }
  double ElapsedMillis() const { return timer_.ElapsedMillis(); }
  uint64_t ElapsedMicros() const { return timer_.ElapsedMicros(); }

 private:
  Timer timer_;
  obs::Histogram* hist_ = nullptr;
};

}  // namespace sjsel

#endif  // SJSEL_UTIL_TIMER_H_
