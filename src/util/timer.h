#ifndef SJSEL_UTIL_TIMER_H_
#define SJSEL_UTIL_TIMER_H_

#include <chrono>

namespace sjsel {

/// Monotonic wall-clock stopwatch used for the paper's relative-time metrics
/// (Est. Time 1 / Est. Time 2, histogram build time).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sjsel

#endif  // SJSEL_UTIL_TIMER_H_
