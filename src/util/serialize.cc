#include "util/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>

#include "util/fault_injection.h"

namespace sjsel {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  const auto& table = CrcTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void BinaryWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buffer_.append(s);
}

void BinaryWriter::PutDoubleVector(const std::vector<double>& v) {
  PutU64(v.size());
  for (double d : v) PutDouble(d);
}

uint32_t BinaryWriter::Crc32() const {
  return ::sjsel::Crc32(buffer_.data(), buffer_.size());
}

void BinaryWriter::BeginEnvelope(uint32_t magic, uint8_t version) {
  PutU32(magic);
  PutU8(version);
}

std::string BinaryWriter::SealEnvelope() const {
  const uint32_t crc = Crc32();
  std::string out = buffer_;
  out.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return out;
}

Result<uint8_t> BinaryReader::OpenEnvelope(uint32_t expected_magic,
                                           const std::string& what) {
  // magic(4) + version(1) + crc trailer(4) is the smallest valid file.
  constexpr size_t kMinSize = 4 + 1 + 4;
  if (data_.size() < kMinSize) {
    return Status::Corruption(what + " file too short (" +
                              std::to_string(data_.size()) + " bytes)");
  }
  const size_t body = data_.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data_.data() + body, sizeof(stored_crc));
  if (stored_crc != ::sjsel::Crc32(data_.data(), body)) {
    return Status::Corruption(what + " CRC mismatch");
  }
  uint32_t magic = 0;
  SJSEL_RETURN_IF_ERROR(GetRaw(&magic, sizeof(magic)));
  if (magic != expected_magic) {
    return Status::Corruption("bad " + what + " magic");
  }
  uint8_t version = 0;
  SJSEL_RETURN_IF_ERROR(GetRaw(&version, sizeof(version)));
  limit_ = body;
  return version;
}

Status BinaryReader::ExpectBodyEnd(const std::string& what) const {
  if (pos_ != limit_) {
    return Status::Corruption("trailing garbage in " + what + " (" +
                              std::to_string(limit_ - pos_) + " bytes)");
  }
  return Status::OK();
}

Status BinaryReader::GetRaw(void* out, size_t n) {
  if (pos_ + n > limit_) {
    return Status::Corruption("truncated input: need " + std::to_string(n) +
                              " bytes at offset " + std::to_string(pos_));
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<uint8_t> BinaryReader::GetU8() {
  uint8_t v = 0;
  SJSEL_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
  return v;
}

Result<uint32_t> BinaryReader::GetU32() {
  uint32_t v = 0;
  SJSEL_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  uint64_t v = 0;
  SJSEL_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
  return v;
}

Result<int64_t> BinaryReader::GetI64() {
  int64_t v = 0;
  SJSEL_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
  return v;
}

Result<double> BinaryReader::GetDouble() {
  double v = 0;
  SJSEL_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::GetString() {
  uint32_t n = 0;
  SJSEL_RETURN_IF_ERROR(GetRaw(&n, sizeof(n)));
  // Cap the prefix against the remaining bytes BEFORE allocating anything:
  // an adversarial length must cost a Corruption status, not a multi-GB
  // allocation attempt. Written overflow-proof (n compared to the
  // remainder, never pos_ + n).
  if (static_cast<size_t>(n) > limit_ - pos_) {
    return Status::Corruption("string length " + std::to_string(n) +
                              " exceeds remaining " +
                              std::to_string(limit_ - pos_) + " bytes");
  }
  std::string s = data_.substr(pos_, n);
  pos_ += n;
  return s;
}

Result<std::vector<double>> BinaryReader::GetDoubleVector() {
  uint64_t n = 0;
  SJSEL_RETURN_IF_ERROR(GetRaw(&n, sizeof(n)));
  // Same pre-allocation cap as GetString: the element count must fit the
  // remaining bytes (divide the remainder rather than multiplying n, so a
  // length near 2^64 cannot overflow the comparison).
  if (n > (limit_ - pos_) / sizeof(double)) {
    return Status::Corruption("double vector length " + std::to_string(n) +
                              " exceeds remaining " +
                              std::to_string(limit_ - pos_) + " bytes");
  }
  std::vector<double> v(n);
  for (uint64_t i = 0; i < n; ++i) {
    SJSEL_RETURN_IF_ERROR(GetRaw(&v[i], sizeof(double)));
  }
  return v;
}

Result<uint32_t> BinaryReader::Crc32Prefix(size_t n) const {
  if (n > data_.size()) {
    return Status::Corruption("crc range exceeds data size");
  }
  return ::sjsel::Crc32(data_.data(), n);
}

Status WriteFile(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for write: " + path);
  }
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    return Status::IoError("short write: " + path);
  }
  return Status::OK();
}

Status WriteFileDurable(const std::string& path, const std::string& data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open for write: " + path);
  }
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError("write failed: " + path);
    }
    off += static_cast<size_t>(n);
  }
  int rc;
  do {
    rc = ::fdatasync(fd);
  } while (rc != 0 && errno == EINTR);
  const bool sync_ok = rc == 0;
  if (::close(fd) != 0 || !sync_ok) {
    return Status::IoError("fsync/close failed: " + path);
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  SJSEL_RETURN_IF_ERROR(WriteFileDurable(tmp, data));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  // Fault site io.read: simulated IO failure before touching the file.
  if (FaultInjector::GloballyArmed() &&
      FaultInjector::Global().ShouldFail(kFaultSiteIoRead)) {
    return Status::IoError("injected fault at io.read: " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for read: " + path);
  }
  std::string data;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  const bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) {
    return Status::IoError("read error: " + path);
  }
  // Fault site io.corrupt: deterministic single-byte flip in the middle of
  // the buffer — downstream CRC/magic validation must catch it.
  if (FaultInjector::GloballyArmed() && !data.empty() &&
      FaultInjector::Global().ShouldFail(kFaultSiteIoCorrupt)) {
    data[data.size() / 2] ^= 0x20;
  }
  return data;
}

}  // namespace sjsel
