#ifndef SJSEL_UTIL_SERIALIZE_H_
#define SJSEL_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace sjsel {

/// Appends fixed-width little-endian encodings of POD values to a byte
/// buffer. Used by the histogram-file and dataset-file formats.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// Length-prefixed (u32) byte string.
  void PutString(const std::string& s);

  /// Length-prefixed (u64) vector of doubles.
  void PutDoubleVector(const std::vector<double>& v);

  const std::string& buffer() const { return buffer_; }

  /// CRC-32 (IEEE 802.3 polynomial) of everything written so far.
  uint32_t Crc32() const;

 private:
  void PutRaw(const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    buffer_.append(c, n);
  }

  std::string buffer_;
};

/// Reads values written by BinaryWriter, with bounds checking; all getters
/// return Corruption on truncated input.
class BinaryReader {
 public:
  explicit BinaryReader(std::string data) : data_(std::move(data)) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<std::vector<double>> GetDoubleVector();

  size_t position() const { return pos_; }
  size_t size() const { return data_.size(); }
  bool AtEnd() const { return pos_ >= data_.size(); }

  /// CRC-32 of the first `n` bytes of the underlying data.
  Result<uint32_t> Crc32Prefix(size_t n) const;

 private:
  Status GetRaw(void* out, size_t n);

  std::string data_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE) of a byte range.
uint32_t Crc32(const void* data, size_t n);

/// Writes `data` to `path` atomically enough for our purposes (truncate +
/// write + close). Returns IoError on failure.
Status WriteFile(const std::string& path, const std::string& data);

/// Reads the whole file at `path`.
Result<std::string> ReadFile(const std::string& path);

}  // namespace sjsel

#endif  // SJSEL_UTIL_SERIALIZE_H_
