#ifndef SJSEL_UTIL_SERIALIZE_H_
#define SJSEL_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace sjsel {

/// Appends fixed-width little-endian encodings of POD values to a byte
/// buffer. Used by the histogram-file and dataset-file formats.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// Length-prefixed (u32) byte string.
  void PutString(const std::string& s);

  /// Length-prefixed (u64) vector of doubles.
  void PutDoubleVector(const std::vector<double>& v);

  /// Starts the shared checked-file envelope every binary format uses:
  /// magic (u32) followed by a format-version byte. Must be the first
  /// writes into this writer; finish the file with SealEnvelope().
  void BeginEnvelope(uint32_t magic, uint8_t version);

  /// Returns the file image: everything written so far plus a CRC-32
  /// trailer (u32) over it. The CRC is verified by
  /// BinaryReader::OpenEnvelope before any field is parsed.
  std::string SealEnvelope() const;

  const std::string& buffer() const { return buffer_; }

  /// CRC-32 (IEEE 802.3 polynomial) of everything written so far.
  uint32_t Crc32() const;

 private:
  void PutRaw(const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    buffer_.append(c, n);
  }

  std::string buffer_;
};

/// Reads values written by BinaryWriter, with bounds checking; all getters
/// return Corruption on truncated input.
class BinaryReader {
 public:
  explicit BinaryReader(std::string data)
      : data_(std::move(data)), limit_(data_.size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<std::vector<double>> GetDoubleVector();

  /// Opens a file image produced by BinaryWriter::BeginEnvelope +
  /// SealEnvelope: verifies the CRC-32 trailer over the whole body BEFORE
  /// parsing anything (so a flipped byte anywhere is rejected up front,
  /// never mis-parsed), checks the magic, and returns the format-version
  /// byte for the caller to validate. On success subsequent getters are
  /// bounded to the body (the trailer is no longer readable) and
  /// ExpectBodyEnd() checks for trailing garbage. `what` names the format
  /// in error messages (e.g. "dataset").
  Result<uint8_t> OpenEnvelope(uint32_t expected_magic, const std::string& what);

  /// After parsing all fields of an envelope: Corruption unless the read
  /// position is exactly the end of the body.
  Status ExpectBodyEnd(const std::string& what) const;

  size_t position() const { return pos_; }
  size_t size() const { return limit_; }
  bool AtEnd() const { return pos_ >= limit_; }

  /// CRC-32 of the first `n` bytes of the underlying data.
  Result<uint32_t> Crc32Prefix(size_t n) const;

 private:
  Status GetRaw(void* out, size_t n);

  std::string data_;
  size_t pos_ = 0;
  size_t limit_ = 0;  ///< readable end: data size, or body end in an envelope
};

/// CRC-32 (IEEE) of a byte range.
uint32_t Crc32(const void* data, size_t n);

/// Writes `data` to `path` atomically enough for our purposes (truncate +
/// write + close). Returns IoError on failure.
Status WriteFile(const std::string& path, const std::string& data);

/// WriteFile with durability: EINTR-safe write loop plus fdatasync before
/// close, so the bytes survive a crash of this process (and, fsync
/// semantics permitting, of the machine).
Status WriteFileDurable(const std::string& path, const std::string& data);

/// Crash-safe replace: writes `path`.tmp durably, then rename(2)s it over
/// `path`. A crash at any point leaves either the old complete file or the
/// new complete file, never a torn mix.
Status WriteFileAtomic(const std::string& path, const std::string& data);

/// Reads the whole file at `path`.
Result<std::string> ReadFile(const std::string& path);

}  // namespace sjsel

#endif  // SJSEL_UTIL_SERIALIZE_H_
