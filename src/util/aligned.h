#ifndef SJSEL_UTIL_ALIGNED_H_
#define SJSEL_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace sjsel {

/// Cache-line / SIMD-lane alignment used by every SoA geometry buffer.
/// 64 bytes covers one x86 cache line and the widest vector register the
/// batch kernels target (AVX2's 32-byte ymm, with headroom for AVX-512).
inline constexpr std::size_t kSoaAlignment = 64;

/// Minimal C++17 allocator handing out `Alignment`-byte-aligned storage via
/// the aligned operator new. Lets `std::vector<double>` buffers start on a
/// cache-line boundary so the batch kernels can use aligned vector loads
/// and never straddle lines on the first lane.
template <typename T, std::size_t Alignment = kSoaAlignment>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T),
                "Alignment must be at least the type's natural alignment");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// A vector whose buffer starts on a 64-byte boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kSoaAlignment>>;

}  // namespace sjsel

#endif  // SJSEL_UTIL_ALIGNED_H_
