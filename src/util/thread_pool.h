#ifndef SJSEL_UTIL_THREAD_POOL_H_
#define SJSEL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sjsel {

/// A fixed-size, work-stealing-free thread pool: one shared FIFO queue, N
/// worker threads created in the constructor and joined in the destructor.
/// This is the only place in the codebase that spawns threads; every
/// parallel operation (histogram build, PBSM / R-tree join, sample join,
/// chain-join probing) owns a call-scoped pool and drives it through
/// ParallelFor below — there is no global or lazily-initialized pool, so
/// library users pay nothing unless they pass threads > 1.
///
/// Thread-safety: Submit and Wait may be called from any thread, including
/// concurrently. Tasks must not call Submit/Wait on the pool that runs
/// them (no nesting) — with every worker blocked in an inner Wait the pool
/// would deadlock. Tasks must not throw; exception-safe fan-out belongs to
/// ParallelFor, which catches per-block exceptions and rethrows in the
/// caller.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then stops and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Tasks run in FIFO order across the worker set but
  /// complete in no particular order.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished running.
  void Wait();

  /// std::thread::hardware_concurrency() with a floor of 1 — the sensible
  /// default for a `--threads=0` style "use the machine" request.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int64_t unfinished_ = 0;  ///< queued + currently running tasks
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Deterministic parallel loop: splits [0, n) into consecutive blocks of
/// `grain` iterations (the last block may be short) and runs
/// `body(block_index, begin, end)` for each, on `pool`'s workers when
/// `pool` is non-null, inline on the calling thread otherwise.
///
/// The block decomposition depends only on (n, grain) — never on the number
/// of worker threads — which is the determinism contract every parallel
/// path in this codebase is built on: workers write to per-block outputs,
/// and the caller merges them in ascending block index order, making the
/// result a pure function of the inputs regardless of thread count or
/// scheduling. See docs/ARCHITECTURE.md ("Threading model").
///
/// Exceptions thrown by `body` are caught per block; after all blocks have
/// finished, the exception of the lowest-indexed failing block is rethrown
/// on the calling thread (so propagation is deterministic too).
///
/// `n <= 0` returns immediately without invoking `body`. `grain < 1` is
/// clamped to 1.
void ParallelFor(ThreadPool* pool, int64_t n, int64_t grain,
                 const std::function<void(int64_t block, int64_t begin,
                                          int64_t end)>& body);

/// Number of blocks ParallelFor(n, grain) produces — for presizing
/// per-block output buffers.
inline int64_t ParallelForNumBlocks(int64_t n, int64_t grain) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  return (n + grain - 1) / grain;
}

}  // namespace sjsel

#endif  // SJSEL_UTIL_THREAD_POOL_H_
