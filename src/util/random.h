#ifndef SJSEL_UTIL_RANDOM_H_
#define SJSEL_UTIL_RANDOM_H_

#include <cstdint>

namespace sjsel {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256**, public-domain algorithm by Blackman & Vigna).
///
/// The library uses this instead of std::mt19937 so that generated datasets
/// are bit-identical across standard-library implementations, which keeps
/// tests and experiment tables reproducible.
class Rng {
 public:
  /// Seeds the generator; two Rng instances with the same seed produce the
  /// same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, n). `n` must be > 0.
  uint64_t NextU64(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal variate (Box–Muller; consumes two uniforms every other
  /// call).
  double NextGaussian();

  /// Exponential variate with the given rate (mean 1/rate).
  double NextExponential(double rate);

  /// True with probability `p`.
  bool NextBernoulli(double p);

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace sjsel

#endif  // SJSEL_UTIL_RANDOM_H_
