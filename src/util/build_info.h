#ifndef SJSEL_UTIL_BUILD_INFO_H_
#define SJSEL_UTIL_BUILD_INFO_H_

// Version and build identification — the single source of truth the
// server's `stats` and `health` ops (and anything else that reports
// "what build is this") must share, so the two can never disagree.
// Deliberately excludes timestamps (__DATE__/__TIME__): build info must
// not make otherwise-identical binaries differ.

namespace sjsel {

/// The project version reported over the wire (docs/SERVER.md `health`).
inline constexpr char kSjselVersion[] = "0.10.0";

/// The compiler family this binary was built with.
inline const char* BuildCompiler() {
#if defined(__clang__)
  return "clang";
#elif defined(__GNUC__)
  return "gcc";
#elif defined(_MSC_VER)
  return "msvc";
#else
  return "unknown";
#endif
}

}  // namespace sjsel

#endif  // SJSEL_UTIL_BUILD_INFO_H_
