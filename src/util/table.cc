#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sjsel {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += " " + cell + std::string(width[i] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::string out;
  if (!header_.empty()) {
    out += render_row(header_);
    std::string rule = "|";
    for (size_t i = 0; i < cols; ++i) {
      rule += std::string(width[i] + 2, '-') + "|";
    }
    out += rule + "\n";
  }
  for (const auto& r : rows_) out += render_row(r);
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  const double mag = std::fabs(v);
  if (v != 0.0 && (mag < 1e-4 || mag >= 1e7)) {
    std::snprintf(buf, sizeof(buf), "%.*e", digits - 1, v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  }
  return buf;
}

std::string FormatPercent(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, ratio * 100.0);
  return buf;
}

}  // namespace sjsel
