#ifndef SJSEL_UTIL_JSON_H_
#define SJSEL_UTIL_JSON_H_

// A small JSON document model: parse, build, serialize. This exists for
// the server's newline-delimited JSON protocol (docs/SERVER.md) and the
// planner's machine-readable plan output — places that must both read
// and write JSON without external dependencies.
//
// Scope, deliberately narrow:
//  - UTF-8 text is passed through byte-for-byte; \uXXXX escapes are
//    decoded to UTF-8 on parse (surrogate pairs included).
//  - Numbers are doubles. Serialization uses %.17g, so any double
//    round-trips bit-for-bit; integers up to 2^53 print without
//    exponent noise.
//  - Object keys keep *insertion order* on serialization (deterministic
//    output that matches the order the writer chose), with O(log n)
//    lookup via a side index.
//  - Depth is capped (kMaxDepth) so adversarial input cannot blow the
//    stack; element/size caps are the caller's job (the server caps the
//    request line length before parsing).

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace sjsel {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Nesting levels Parse accepts before rejecting the document.
  static constexpr int kMaxDepth = 64;

  JsonValue() = default;  // null
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue Int(long long v) { return Number(static_cast<double>(v)); }
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  /// Parses one JSON document. The whole input must be consumed (trailing
  /// whitespace tolerated); anything else is an InvalidArgument naming the
  /// byte offset.
  static Result<JsonValue> Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Accessors assume the matching kind (assert in debug builds, return a
  /// zero value otherwise). Use the typed Get* helpers for fallible reads.
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }

  // --- arrays ---
  size_t size() const { return items_.size(); }
  const JsonValue& at(size_t i) const { return items_[i]; }
  const std::vector<JsonValue>& items() const { return items_; }
  JsonValue& Append(JsonValue v);

  // --- objects ---
  /// Sets `key` (replacing an existing value; insertion order of the first
  /// Set is kept). Returns *this so building nests readably.
  JsonValue& Set(const std::string& key, JsonValue v);
  /// Null when absent (use Has to distinguish an explicit null).
  const JsonValue* Find(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }
  /// Keys in insertion order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Typed object reads used by the protocol layer: value when present
  /// AND of the right kind, `fallback` when absent, error when present
  /// with the wrong kind (a misspelled type is a client bug worth naming).
  Result<std::string> GetString(const std::string& key,
                                const std::string& fallback) const;
  Result<double> GetNumber(const std::string& key, double fallback) const;
  Result<bool> GetBool(const std::string& key, bool fallback) const;

  /// Compact serialization: no whitespace, object keys in insertion
  /// order, numbers %.17g (integral values in [-2^53, 2^53] printed as
  /// integers). Deterministic: equal documents built in the same order
  /// serialize identically.
  std::string Dump() const;

 private:
  explicit JsonValue(Kind kind) : kind_(kind) {}
  void DumpTo(std::string* out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                            // array
  std::vector<std::pair<std::string, JsonValue>> members_;  // object
  std::map<std::string, size_t> member_index_;              // key -> members_
};

/// Appends `s` to `out` as a quoted JSON string (escaping ", \, control
/// bytes). Exposed for writers that build JSON by hand (bench harness).
void JsonAppendEscaped(std::string* out, const std::string& s);

}  // namespace sjsel

#endif  // SJSEL_UTIL_JSON_H_
