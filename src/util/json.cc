#include "util/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sjsel {
namespace {

// Recursive-descent parser over a raw byte range. Positions are byte
// offsets into the original text, quoted in every error.
class Parser {
 public:
  Parser(const char* begin, size_t size)
      : begin_(begin), p_(begin), end_(begin + size) {}

  Result<JsonValue> ParseDocument() {
    SkipWs();
    JsonValue v;
    SJSEL_ASSIGN_OR_RETURN(v, ParseValue(0));
    SkipWs();
    if (p_ != end_) return Error("trailing characters after document");
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(offset()));
  }
  size_t offset() const { return static_cast<size_t>(p_ - begin_); }

  void SkipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const char* q = p_;
    while (*lit != '\0') {
      if (q == end_ || *q != *lit) return false;
      ++q;
      ++lit;
    }
    p_ = q;
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > JsonValue::kMaxDepth) return Error("nesting too deep");
    if (p_ == end_) return Error("unexpected end of input");
    switch (*p_) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        std::string s;
        SJSEL_ASSIGN_OR_RETURN(s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::Bool(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::Bool(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::Null();
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++p_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      if (p_ == end_ || *p_ != '"') return Error("expected object key");
      std::string key;
      SJSEL_ASSIGN_OR_RETURN(key, ParseString());
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after key");
      SkipWs();
      JsonValue v;
      SJSEL_ASSIGN_OR_RETURN(v, ParseValue(depth + 1));
      obj.Set(key, std::move(v));
      SkipWs();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++p_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      SkipWs();
      JsonValue v;
      SJSEL_ASSIGN_OR_RETURN(v, ParseValue(depth + 1));
      arr.Append(std::move(v));
      SkipWs();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++p_;  // '"'
    std::string out;
    while (true) {
      if (p_ == end_) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return out;
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++p_;
        continue;
      }
      ++p_;  // '\'
      if (p_ == end_) return Error("unterminated escape");
      switch (*p_) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          ++p_;
          unsigned code = 0;
          if (!ReadHex4(&code)) return Error("bad \\u escape");
          // Surrogate pair: a high surrogate must be followed by \uDC00..
          if (code >= 0xD800 && code <= 0xDBFF) {
            unsigned lo = 0;
            if (p_ + 1 < end_ && p_[0] == '\\' && p_[1] == 'u') {
              p_ += 2;
              if (!ReadHex4(&lo)) return Error("bad \\u escape");
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return Error("lone high surrogate");
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(&out, code);
          continue;  // ReadHex4 already advanced p_
        }
        default:
          return Error("unknown escape");
      }
      ++p_;
    }
  }

  bool ReadHex4(unsigned* out) {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (p_ == end_) return false;
      const char c = *p_;
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
      ++p_;
    }
    *out = v;
    return true;
  }

  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    if (p_ == start) return Error("expected a value");
    const std::string text(start, static_cast<size_t>(p_ - start));
    char* parse_end = nullptr;
    const double v = std::strtod(text.c_str(), &parse_end);
    if (parse_end != text.c_str() + text.size() || !std::isfinite(v)) {
      return Error("bad number '" + text + "'");
    }
    return JsonValue::Number(v);
  }

  const char* begin_;
  const char* p_;
  const char* end_;
};

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v(Kind::kBool);
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v(Kind::kNumber);
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v(Kind::kString);
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() { return JsonValue(Kind::kArray); }
JsonValue JsonValue::Object() { return JsonValue(Kind::kObject); }

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser(text.data(), text.size());
  return parser.ParseDocument();
}

JsonValue& JsonValue::Append(JsonValue v) {
  assert(kind_ == Kind::kArray);
  items_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  assert(kind_ == Kind::kObject);
  const auto it = member_index_.find(key);
  if (it != member_index_.end()) {
    members_[it->second].second = std::move(v);
  } else {
    member_index_[key] = members_.size();
    members_.emplace_back(key, std::move(v));
  }
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = member_index_.find(key);
  return it == member_index_.end() ? nullptr : &members_[it->second].second;
}

Result<std::string> JsonValue::GetString(const std::string& key,
                                         const std::string& fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) {
    return Status::InvalidArgument("field '" + key + "' must be a string");
  }
  return v->string_value();
}

Result<double> JsonValue::GetNumber(const std::string& key,
                                    double fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument("field '" + key + "' must be a number");
  }
  return v->number_value();
}

Result<bool> JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    return Status::InvalidArgument("field '" + key + "' must be a boolean");
  }
  return v->bool_value();
}

void JsonAppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Kind::kNumber: {
      char buf[32];
      // Integral doubles inside the exactly-representable range print as
      // integers so counters and ids don't grow ".0"/exponent noise.
      if (number_ == std::floor(number_) && std::fabs(number_) <= 9e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", number_);
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
      }
      out->append(buf);
      return;
    }
    case Kind::kString:
      JsonAppendEscaped(out, string_);
      return;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : items_) {
        if (!first) out->push_back(',');
        first = false;
        v.DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, v] : members_) {
        if (!first) out->push_back(',');
        first = false;
        JsonAppendEscaped(out, key);
        out->push_back(':');
        v.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

}  // namespace sjsel
