#ifndef SJSEL_UTIL_TABLE_H_
#define SJSEL_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace sjsel {

/// Builds fixed-width ASCII tables for the benchmark harnesses so their
/// output reads like the paper's tables/figure series.
class TextTable {
 public:
  /// Sets the column headers; must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Renders with column separators and a header rule.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `digits` significant decimal digits (fixed notation for
/// mid-range magnitudes, scientific otherwise).
std::string FormatDouble(double v, int digits = 4);

/// Formats a ratio as a percentage string, e.g. 0.0734 -> "7.34%".
std::string FormatPercent(double ratio, int digits = 2);

}  // namespace sjsel

#endif  // SJSEL_UTIL_TABLE_H_
