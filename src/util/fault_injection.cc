#include "util/fault_injection.h"

#include <cmath>
#include <cstdlib>

namespace sjsel {
namespace {

// FNV-1a over the site name; mixed with the seed and call index so kProb
// schedules differ across sites but replay exactly for a fixed spec.
uint64_t HashSite(const std::string& site) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Parses "<trigger>[:<args>]" into the rule's trigger fields.
Status ParseTrigger(const std::string& text, FaultInjector::Rule* rule) {
  if (text == "always") {
    rule->trigger = FaultInjector::Trigger::kAlways;
    return Status::OK();
  }
  const size_t colon = text.find(':');
  const std::string kind = text.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : text.substr(colon + 1);
  if (kind == "nth" || kind == "every") {
    rule->trigger = kind == "nth" ? FaultInjector::Trigger::kNth
                                  : FaultInjector::Trigger::kEvery;
    char* end = nullptr;
    const unsigned long long n = std::strtoull(arg.c_str(), &end, 10);
    if (arg.empty() || end == nullptr || *end != '\0' || n == 0) {
      return Status::InvalidArgument("bad fault trigger count in '" + text +
                                     "' (want " + kind + ":<N>, N >= 1)");
    }
    rule->n = n;
    return Status::OK();
  }
  if (kind == "prob") {
    rule->trigger = FaultInjector::Trigger::kProb;
    const size_t slash = arg.find('/');
    const std::string p_text = arg.substr(0, slash);
    char* end = nullptr;
    const double p = std::strtod(p_text.c_str(), &end);
    if (p_text.empty() || end == nullptr || *end != '\0' || !std::isfinite(p) ||
        p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("bad fault probability in '" + text +
                                     "' (want prob:<P>[/<SEED>], 0 <= P <= 1)");
    }
    rule->probability = p;
    if (slash != std::string::npos) {
      const std::string seed_text = arg.substr(slash + 1);
      const unsigned long long seed =
          std::strtoull(seed_text.c_str(), &end, 10);
      if (seed_text.empty() || *end != '\0') {
        return Status::InvalidArgument("bad fault seed in '" + text + "'");
      }
      rule->seed = seed;
    }
    return Status::OK();
  }
  return Status::InvalidArgument(
      "unknown fault trigger '" + text +
      "' (want always | nth:<N> | every:<N> | prob:<P>[/<SEED>])");
}

}  // namespace

std::atomic<bool> FaultInjector::globally_armed_{false};

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

Result<std::vector<FaultInjector::Rule>> FaultInjector::ParseSpec(
    const std::string& spec) {
  std::vector<Rule> rules;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string clause = spec.substr(start, comma - start);
    start = comma + 1;
    if (clause.empty()) {
      // Only an entirely empty spec is reported as such below; an empty
      // clause inside a non-empty spec is a typo worth rejecting loudly.
      if (spec.empty()) continue;
      return Status::InvalidArgument("empty fault clause in spec '" + spec +
                                     "'");
    }
    const size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("bad fault clause '" + clause +
                                     "' (want <site>=<trigger>)");
    }
    Rule rule;
    rule.site = clause.substr(0, eq);
    SJSEL_RETURN_IF_ERROR(ParseTrigger(clause.substr(eq + 1), &rule));
    rules.push_back(std::move(rule));
  }
  if (rules.empty()) {
    return Status::InvalidArgument("empty fault-injection spec");
  }
  return rules;
}

Status FaultInjector::Arm(std::vector<Rule> rules) {
  if (rules.empty()) {
    return Status::InvalidArgument("cannot arm an empty fault rule list");
  }
  for (const Rule& rule : rules) {
    if (rule.site.empty()) {
      return Status::InvalidArgument("fault rule with empty site name");
    }
    if ((rule.trigger == Trigger::kNth || rule.trigger == Trigger::kEvery) &&
        rule.n == 0) {
      return Status::InvalidArgument("fault rule with n == 0 for site " +
                                     rule.site);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    rules_ = std::move(rules);
    sites_.clear();
  }
  globally_armed_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status FaultInjector::ArmSpec(const std::string& spec) {
  auto rules = ParseSpec(spec);
  if (!rules.ok()) return rules.status();
  return Arm(std::move(rules).value());
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  sites_.clear();
  globally_armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFail(const std::string& site) {
  if (!GloballyArmed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (rules_.empty()) return false;
  SiteState& state = sites_[site];
  const uint64_t call = ++state.calls;  // 1-based
  bool fired = false;
  for (const Rule& rule : rules_) {
    if (rule.site != site) continue;
    switch (rule.trigger) {
      case Trigger::kAlways:
        fired = true;
        break;
      case Trigger::kNth:
        fired = call == rule.n;
        break;
      case Trigger::kEvery:
        fired = call % rule.n == 0;
        break;
      case Trigger::kProb: {
        const uint64_t draw =
            SplitMix64(HashSite(site) ^ (rule.seed * 0x2545f4914f6cdd1dull) ^
                       call);
        fired = static_cast<double>(draw) <
                rule.probability * 18446744073709551616.0;  // 2^64
        break;
      }
    }
    if (fired) break;
  }
  if (fired) ++state.triggers;
  return fired;
}

void FaultInjector::ThrowIfTriggered(const std::string& site) {
  if (ShouldFail(site)) throw FaultInjectedError(site);
}

uint64_t FaultInjector::CallCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.calls;
}

uint64_t FaultInjector::TriggerCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.triggers;
}

ScopedFaultInjection::ScopedFaultInjection(const std::string& spec) {
  status_ = FaultInjector::Global().ArmSpec(spec);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::Global().Disarm();
}

}  // namespace sjsel
