#ifndef SJSEL_UTIL_STATUS_H_
#define SJSEL_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace sjsel {

/// Error codes used across the library. The library does not use C++
/// exceptions; fallible operations return `Status` or `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kCorruption,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success/error value, modeled after the RocksDB/Arrow Status
/// idiom. A default-constructed Status is OK. Error statuses carry a code
/// and a message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK Status from the evaluated expression to the caller.
#define SJSEL_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::sjsel::Status _sjsel_status = (expr);        \
    if (!_sjsel_status.ok()) return _sjsel_status; \
  } while (0)

}  // namespace sjsel

#endif  // SJSEL_UTIL_STATUS_H_
