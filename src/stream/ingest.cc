#include "stream/ingest.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/serialize.h"

namespace sjsel {
namespace stream {
namespace {

constexpr uint32_t kManifestMagic = 0x534a4d46;  // "SJMF"
constexpr uint8_t kManifestVersion = 1;
constexpr uint8_t kRecordTypeBatch = 1;
constexpr uint32_t kMaxBatchOps = 1u << 20;

bool FileExists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

/// fsync a file written through the stdio-based Save paths, so checkpoint
/// base images are durable before the MANIFEST starts referencing them.
Status SyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open for fsync: " + path);
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync failed: " + path);
  }
  return Status::OK();
}

Status ValidateOptions(const StreamOptions& o) {
  if (!(o.extent.min_x < o.extent.max_x && o.extent.min_y < o.extent.max_y)) {
    return Status::InvalidArgument("stream extent must be non-degenerate");
  }
  if (o.seal_every == 0) {
    return Status::InvalidArgument("seal_every must be >= 1");
  }
  if (o.checkpoint_every != 0 && o.checkpoint_every % o.seal_every != 0) {
    // A checkpoint persists the snapshot, which only advances at seal
    // boundaries; aligning the cadences keeps "checkpoint_every" honest.
    return Status::InvalidArgument(
        "checkpoint_every must be a multiple of seal_every");
  }
  // Grid creation validates the levels.
  SJSEL_RETURN_IF_ERROR(Grid::Create(o.extent, o.gh_level).status());
  SJSEL_RETURN_IF_ERROR(Grid::Create(o.extent, o.ph_level).status());
  return Status::OK();
}

Status ValidateBatch(const std::vector<StreamOp>& batch) {
  if (batch.empty()) {
    return Status::InvalidArgument("empty ingest batch");
  }
  if (batch.size() > kMaxBatchOps) {
    return Status::InvalidArgument("ingest batch too large: " +
                                   std::to_string(batch.size()) + " ops");
  }
  for (const StreamOp& op : batch) {
    if (op.kind != OpKind::kAdd && op.kind != OpKind::kRemove) {
      return Status::InvalidArgument("unknown ingest op kind");
    }
    const Rect& r = op.rect;
    if (!(std::isfinite(r.min_x) && std::isfinite(r.min_y) &&
          std::isfinite(r.max_x) && std::isfinite(r.max_y))) {
      return Status::InvalidArgument("non-finite rect in ingest batch");
    }
    if (r.min_x > r.max_x || r.min_y > r.max_y) {
      return Status::InvalidArgument("inverted rect in ingest batch");
    }
  }
  return Status::OK();
}

}  // namespace

std::string StreamIngest::EncodeBatch(uint64_t seq,
                                      const std::vector<StreamOp>& ops) {
  BinaryWriter w;
  w.PutU8(kRecordTypeBatch);
  w.PutU64(seq);
  w.PutU32(static_cast<uint32_t>(ops.size()));
  for (const StreamOp& op : ops) {
    w.PutU8(static_cast<uint8_t>(op.kind));
    w.PutDouble(op.rect.min_x);
    w.PutDouble(op.rect.min_y);
    w.PutDouble(op.rect.max_x);
    w.PutDouble(op.rect.max_y);
  }
  return w.buffer();
}

Result<std::pair<uint64_t, std::vector<StreamOp>>> StreamIngest::DecodeBatch(
    const std::string& payload) {
  BinaryReader r(payload);
  uint8_t type = 0;
  SJSEL_ASSIGN_OR_RETURN(type, r.GetU8());
  if (type != kRecordTypeBatch) {
    return Status::Corruption("unknown WAL record type " +
                              std::to_string(type));
  }
  uint64_t seq = 0;
  SJSEL_ASSIGN_OR_RETURN(seq, r.GetU64());
  uint32_t count = 0;
  SJSEL_ASSIGN_OR_RETURN(count, r.GetU32());
  // Each op is 33 bytes; reject counts beyond the remaining payload.
  if (count > (r.size() - r.position()) / 33) {
    return Status::Corruption("WAL batch op count exceeds payload");
  }
  std::vector<StreamOp> ops(count);
  for (StreamOp& op : ops) {
    uint8_t kind = 0;
    SJSEL_ASSIGN_OR_RETURN(kind, r.GetU8());
    op.kind = static_cast<OpKind>(kind);
    SJSEL_ASSIGN_OR_RETURN(op.rect.min_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(op.rect.min_y, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(op.rect.max_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(op.rect.max_y, r.GetDouble());
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing garbage in WAL batch record");
  }
  SJSEL_RETURN_IF_ERROR(ValidateBatch(ops));
  return std::make_pair(seq, std::move(ops));
}

StreamIngest::StreamIngest(std::string dir, StreamOptions options)
    : dir_(std::move(dir)), options_(options) {}

std::string StreamIngest::WalPath() const { return dir_ + "/wal.log"; }
std::string StreamIngest::ManifestPath() const { return dir_ + "/MANIFEST"; }
std::string StreamIngest::BasePath(uint64_t seq, const char* ext) const {
  return dir_ + "/base." + std::to_string(seq) + "." + ext;
}

Status StreamIngest::WriteManifest(uint64_t checkpoint_seq) const {
  BinaryWriter w;
  w.BeginEnvelope(kManifestMagic, kManifestVersion);
  w.PutDouble(options_.extent.min_x);
  w.PutDouble(options_.extent.min_y);
  w.PutDouble(options_.extent.max_x);
  w.PutDouble(options_.extent.max_y);
  w.PutU32(static_cast<uint32_t>(options_.gh_level));
  w.PutU32(static_cast<uint32_t>(options_.ph_level));
  w.PutU32(options_.seal_every);
  w.PutU32(options_.checkpoint_every);
  w.PutU8(options_.fsync_always ? 1 : 0);
  w.PutU64(checkpoint_seq);
  return WriteFileAtomic(ManifestPath(), w.SealEnvelope());
}

Result<std::pair<StreamOptions, uint64_t>> StreamIngest::ReadManifest(
    const std::string& dir) {
  std::string data;
  SJSEL_ASSIGN_OR_RETURN(data, ReadFile(dir + "/MANIFEST"));
  BinaryReader r(std::move(data));
  uint8_t version = 0;
  SJSEL_ASSIGN_OR_RETURN(version,
                         r.OpenEnvelope(kManifestMagic, "stream manifest"));
  if (version != kManifestVersion) {
    return Status::Corruption("unsupported stream manifest version " +
                              std::to_string(version));
  }
  StreamOptions o;
  SJSEL_ASSIGN_OR_RETURN(o.extent.min_x, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(o.extent.min_y, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(o.extent.max_x, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(o.extent.max_y, r.GetDouble());
  uint32_t gh_level = 0;
  uint32_t ph_level = 0;
  SJSEL_ASSIGN_OR_RETURN(gh_level, r.GetU32());
  SJSEL_ASSIGN_OR_RETURN(ph_level, r.GetU32());
  o.gh_level = static_cast<int>(gh_level);
  o.ph_level = static_cast<int>(ph_level);
  SJSEL_ASSIGN_OR_RETURN(o.seal_every, r.GetU32());
  SJSEL_ASSIGN_OR_RETURN(o.checkpoint_every, r.GetU32());
  uint8_t fsync_byte = 0;
  SJSEL_ASSIGN_OR_RETURN(fsync_byte, r.GetU8());
  o.fsync_always = fsync_byte != 0;
  uint64_t checkpoint_seq = 0;
  SJSEL_ASSIGN_OR_RETURN(checkpoint_seq, r.GetU64());
  SJSEL_RETURN_IF_ERROR(r.ExpectBodyEnd("stream manifest"));
  SJSEL_RETURN_IF_ERROR(ValidateOptions(o));
  return std::make_pair(o, checkpoint_seq);
}

Status StreamIngest::Init(const std::string& dir,
                          const StreamOptions& options) {
  SJSEL_RETURN_IF_ERROR(ValidateOptions(options));
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create stream directory: " + dir);
  }
  if (FileExists(dir + "/MANIFEST")) {
    return Status::FailedPrecondition("stream directory already initialized: " +
                                      dir);
  }
  StreamIngest stub(dir, options);
  SJSEL_RETURN_IF_ERROR(stub.WriteManifest(0));
  // Create the (empty) WAL so a crash before the first Apply still leaves
  // a well-formed directory.
  WalWriter wal;
  SJSEL_ASSIGN_OR_RETURN(wal, WalWriter::Open(stub.WalPath(),
                                              options.fsync_always));
  return Status::OK();
}

Status StreamIngest::ResetActiveLocked() {
  auto gh = GhHistogram::CreateEmpty(options_.extent, options_.gh_level);
  SJSEL_RETURN_IF_ERROR(gh.status());
  auto ph = PhHistogram::CreateEmpty(options_.extent, options_.ph_level);
  SJSEL_RETURN_IF_ERROR(ph.status());
  active_gh_ = std::make_unique<GhHistogram>(std::move(gh).value());
  active_ph_ = std::make_unique<PhHistogram>(std::move(ph).value());
  active_payloads_.clear();
  active_batches_ = 0;
  return Status::OK();
}

Result<std::unique_ptr<StreamIngest>> StreamIngest::Open(
    const std::string& dir) {
  SJSEL_TRACE_SPAN("stream.recover", "dir=%s", dir.c_str());
  std::pair<StreamOptions, uint64_t> manifest;
  SJSEL_ASSIGN_OR_RETURN(manifest, ReadManifest(dir));
  const StreamOptions& options = manifest.first;
  const uint64_t checkpoint_seq = manifest.second;

  std::unique_ptr<StreamIngest> ingest(new StreamIngest(dir, options));
  ingest->checkpoint_seq_ = checkpoint_seq;
  ingest->seq_ = checkpoint_seq;
  ingest->recovery_.checkpoint_seq = checkpoint_seq;

  // Base histograms: the persisted checkpoint image, or empty at seq 0.
  // (StreamSnapshot is not default-constructible — the histogram classes
  // only come from their factories — so the snapshot is built in place.)
  auto gh = checkpoint_seq > 0
                ? GhHistogram::Load(ingest->BasePath(checkpoint_seq, "gh"))
                : GhHistogram::CreateEmpty(options.extent, options.gh_level);
  SJSEL_RETURN_IF_ERROR(gh.status());
  auto ph = checkpoint_seq > 0
                ? PhHistogram::Load(ingest->BasePath(checkpoint_seq, "ph"))
                : PhHistogram::CreateEmpty(options.extent, options.ph_level);
  SJSEL_RETURN_IF_ERROR(ph.status());
  if (checkpoint_seq > 0) {
    const auto grid = Grid::Create(options.extent, options.gh_level);
    SJSEL_RETURN_IF_ERROR(grid.status());
    if (!gh.value().grid().CompatibleWith(grid.value())) {
      return Status::Corruption("checkpoint base grid does not match the "
                                "stream manifest in " + dir);
    }
  }
  ingest->snapshot_ = std::make_shared<StreamSnapshot>(StreamSnapshot{
      std::move(gh).value(), std::move(ph).value(), checkpoint_seq});
  SJSEL_RETURN_IF_ERROR(ingest->ResetActiveLocked());

  // Replay the WAL tail. Records the base already covers are skipped; the
  // rest must form a gap-free continuation of the acknowledged stream.
  if (FileExists(ingest->WalPath())) {
    auto replayed = ReplayWal(
        ingest->WalPath(), [&ingest](const std::string& payload) -> Status {
          std::pair<uint64_t, std::vector<StreamOp>> batch;
          SJSEL_ASSIGN_OR_RETURN(batch, DecodeBatch(payload));
          if (batch.first <= ingest->checkpoint_seq_) {
            ++ingest->recovery_.skipped_records;
            return Status::OK();
          }
          if (batch.first != ingest->seq_ + 1) {
            return Status::Corruption(
                "WAL sequence gap: expected " +
                std::to_string(ingest->seq_ + 1) + ", found " +
                std::to_string(batch.first));
          }
          SJSEL_RETURN_IF_ERROR(
              ingest->ApplyToActive(batch.first, batch.second, payload));
          ++ingest->recovery_.replayed_records;
          ingest->recovery_.replayed_ops += batch.second.size();
          return Status::OK();
        });
    SJSEL_RETURN_IF_ERROR(replayed.status());
    const WalReplayResult& rr = replayed.value();
    ingest->recovery_.dropped_bytes = rr.dropped_bytes;
    ingest->recovery_.tail_error = rr.tail_error;
    if (rr.dropped_bytes > 0) {
      // Unacknowledged torn tail: drop it so appends resume on a clean
      // frame boundary.
      SJSEL_RETURN_IF_ERROR(TruncateWal(ingest->WalPath(), rr.valid_bytes));
    }
    SJSEL_METRIC_ADD("stream.replay.records", rr.records);
    SJSEL_METRIC_ADD("stream.replay.dropped_bytes", rr.dropped_bytes);
  }

  // A torn tail is worth a warning (acknowledged data is intact, but the
  // client's unacknowledged writes are gone); a clean recovery logs info.
  SJSEL_LOG(ingest->recovery_.dropped_bytes > 0 ? obs::LogLevel::kWarn
                                                : obs::LogLevel::kInfo,
            "stream.recovered",
            obs::LogFields()
                .Str("dir", dir)
                .Uint("checkpoint_seq", ingest->recovery_.checkpoint_seq)
                .Uint("replayed_records", ingest->recovery_.replayed_records)
                .Uint("skipped_records", ingest->recovery_.skipped_records)
                .Uint("dropped_bytes", ingest->recovery_.dropped_bytes)
                .Str("tail_error", ingest->recovery_.tail_error));

  SJSEL_ASSIGN_OR_RETURN(
      ingest->wal_, WalWriter::Open(ingest->WalPath(), options.fsync_always));
  return ingest;
}

Status StreamIngest::ApplyToActive(uint64_t seq,
                                   const std::vector<StreamOp>& ops,
                                   const std::string& payload) {
  for (const StreamOp& op : ops) {
    if (op.kind == OpKind::kAdd) {
      active_gh_->AddRect(op.rect);
      active_ph_->AddRect(op.rect);
    } else {
      active_gh_->RemoveRect(op.rect);
      active_ph_->RemoveRect(op.rect);
    }
  }
  active_payloads_.push_back(payload);
  ++active_batches_;
  seq_ = seq;
  if (seq_ % options_.seal_every == 0) {
    SJSEL_RETURN_IF_ERROR(SealLocked());
  }
  return Status::OK();
}

Result<uint64_t> StreamIngest::Apply(const std::vector<StreamOp>& batch) {
  SJSEL_RETURN_IF_ERROR(ValidateBatch(batch));
  std::lock_guard<std::mutex> lock(mu_);
  SJSEL_TRACE_SPAN("stream.apply", "seq=%llu ops=%zu",
                   static_cast<unsigned long long>(seq_ + 1), batch.size());
  if (poisoned_) {
    return Status::FailedPrecondition(
        "ingest poisoned by an earlier WAL failure; reopen " + dir_ +
        " to recover");
  }
  const uint64_t seq = seq_ + 1;
  const std::string payload = EncodeBatch(seq, batch);
  const Status appended = wal_.Append(payload);
  if (!appended.ok()) {
    // The WAL may now hold a torn record; acknowledging anything past it
    // would violate "acknowledged implies replayable".
    poisoned_ = true;
    return appended;
  }
  SJSEL_RETURN_IF_ERROR(ApplyToActive(seq, batch, payload));
  SJSEL_METRIC_INC("stream.ingest.batches");
  SJSEL_METRIC_ADD("stream.ingest.ops", batch.size());
  SJSEL_METRIC_GAUGE_MAX("stream.delta.batches", active_batches_);
  if (options_.checkpoint_every != 0 &&
      seq % options_.checkpoint_every == 0) {
    SJSEL_RETURN_IF_ERROR(CheckpointLocked());
  }
  return seq;
}

Status StreamIngest::SealLocked() {
  SJSEL_TRACE_SPAN("stream.seal", "seq=%llu batches=%llu",
                   static_cast<unsigned long long>(seq_),
                   static_cast<unsigned long long>(active_batches_));
  std::shared_ptr<const StreamSnapshot> current;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    current = snapshot_;
  }
  // Left-fold merge: new = old + delta, in seq order. Appending each delta
  // to the end of the fold keeps every cell value bit-identical to an
  // in-order replay of the ops (see docs/DURABILITY.md).
  auto next = std::make_shared<StreamSnapshot>(*current);
  SJSEL_RETURN_IF_ERROR(next->gh.Merge(*active_gh_));
  SJSEL_RETURN_IF_ERROR(next->ph.Merge(*active_ph_));
  next->seq = seq_;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    snapshot_ = std::move(next);
  }
  SJSEL_METRIC_INC("stream.seals");
  return ResetActiveLocked();
}

Status StreamIngest::CheckpointLocked() {
  SJSEL_TRACE_SPAN("stream.checkpoint", "seq=%llu",
                   static_cast<unsigned long long>(seq_));
  SJSEL_METRIC_SCOPED_LATENCY("stream.compaction_us");
  std::shared_ptr<const StreamSnapshot> snap = snapshot();
  const uint64_t target = snap->seq;
  const uint64_t previous = checkpoint_seq_;
  if (target > previous) {
    // 1. Persist the snapshot under a seq-versioned name and make it
    //    durable before the MANIFEST can reference it.
    SJSEL_RETURN_IF_ERROR(snap->gh.Save(BasePath(target, "gh")));
    SJSEL_RETURN_IF_ERROR(SyncFile(BasePath(target, "gh")));
    SJSEL_RETURN_IF_ERROR(snap->ph.Save(BasePath(target, "ph")));
    SJSEL_RETURN_IF_ERROR(SyncFile(BasePath(target, "ph")));
    // 2. Atomically commit the new checkpoint seq. A crash before this
    //    rename keeps the old base + full WAL; after it, replay skips
    //    records the new base covers.
    SJSEL_RETURN_IF_ERROR(WriteManifest(target));
    checkpoint_seq_ = target;
  }
  // 3. Rewrite the WAL down to the unsealed tail. Atomic replace: a crash
  //    leaves either the old WAL (fully covered by skip-filtering) or the
  //    new one.
  BinaryWriter header;
  header.PutU32(kWalMagic);
  header.PutU8(kWalVersion);
  std::string log = header.buffer();
  for (const std::string& payload : active_payloads_) {
    BinaryWriter frame;
    frame.PutU32(static_cast<uint32_t>(payload.size()));
    frame.PutU32(Crc32(payload.data(), payload.size()));
    log += frame.buffer() + payload;
  }
  wal_.Close();
  SJSEL_RETURN_IF_ERROR(WriteFileAtomic(WalPath(), log));
  SJSEL_ASSIGN_OR_RETURN(wal_,
                         WalWriter::Open(WalPath(), options_.fsync_always));
  // 4. Old base images are now unreferenced.
  if (target > previous && previous > 0) {
    ::unlink(BasePath(previous, "gh").c_str());
    ::unlink(BasePath(previous, "ph").c_str());
  }
  SJSEL_METRIC_INC("stream.compactions");
  SJSEL_LOG_INFO("stream.checkpoint", obs::LogFields()
                                          .Str("dir", dir_)
                                          .Uint("checkpoint_seq", target)
                                          .Uint("wal_bytes", wal_.bytes()));
  return Status::OK();
}

Status StreamIngest::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) {
    return Status::FailedPrecondition(
        "ingest poisoned by an earlier WAL failure; reopen " + dir_ +
        " to recover");
  }
  return CheckpointLocked();
}

std::shared_ptr<const StreamSnapshot> StreamIngest::snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return snapshot_;
}

Result<StreamSnapshot> StreamIngest::MaterializeState() const {
  std::lock_guard<std::mutex> lock(mu_);
  StreamSnapshot state = *snapshot();
  if (active_batches_ > 0) {
    // Same left-fold a seal would perform, so the materialized state is
    // exactly the next snapshot.
    SJSEL_RETURN_IF_ERROR(state.gh.Merge(*active_gh_));
    SJSEL_RETURN_IF_ERROR(state.ph.Merge(*active_ph_));
    state.seq = seq_;
  }
  return state;
}

Result<std::string> StreamIngest::StateDigest() const {
  auto materialized = MaterializeState();
  SJSEL_RETURN_IF_ERROR(materialized.status());
  const StreamSnapshot& state = materialized.value();
  BinaryWriter w;
  w.PutU64(state.seq);
  w.PutU64(state.gh.dataset_size());
  w.PutDoubleVector(state.gh.c());
  w.PutDoubleVector(state.gh.o());
  w.PutDoubleVector(state.gh.h());
  w.PutDoubleVector(state.gh.v());
  w.PutU64(state.ph.dataset_size());
  w.PutDouble(state.ph.avg_span());
  w.PutDouble(state.ph.crossing_count());
  for (const PhHistogram::Cell& c : state.ph.cells()) {
    w.PutDouble(c.num);
    w.PutDouble(c.area_sum);
    w.PutDouble(c.w_sum);
    w.PutDouble(c.h_sum);
    w.PutDouble(c.num_x);
    w.PutDouble(c.area_sum_x);
    w.PutDouble(c.w_sum_x);
    w.PutDouble(c.h_sum_x);
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", w.Crc32());
  return std::string(buf);
}

uint64_t StreamIngest::seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

uint64_t StreamIngest::checkpoint_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_seq_;
}

uint64_t StreamIngest::wal_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.bytes();
}

uint64_t StreamIngest::active_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_batches_;
}

bool StreamIngest::poisoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_;
}

}  // namespace stream
}  // namespace sjsel
