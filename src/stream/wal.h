#ifndef SJSEL_STREAM_WAL_H_
#define SJSEL_STREAM_WAL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace sjsel {
namespace stream {

/// On-disk layout of the write-ahead log:
///
///   header:  magic "SJWL" (u32) | format-version byte (u8)
///   record:  payload length (u32) | CRC-32 of payload (u32) | payload
///
/// Records are opaque byte strings to this layer (StreamIngest encodes op
/// batches into them). A record is durable once Append returns OK with
/// fsync enabled; a crash mid-append leaves a torn tail that ReplayWal
/// detects (truncated frame or CRC mismatch) and reports so recovery can
/// truncate it. Nothing in a valid prefix is ever reinterpreted after a
/// torn tail: replay stops at the first bad frame.
inline constexpr uint32_t kWalMagic = 0x534a574c;  // "SJWL"
inline constexpr uint8_t kWalVersion = 1;
inline constexpr uint64_t kWalHeaderBytes = 5;
/// Framing overhead per record: length + CRC.
inline constexpr uint64_t kWalFrameBytes = 8;
/// Upper bound on a single record; larger lengths in a frame mean
/// corruption, not a huge record.
inline constexpr uint32_t kWalMaxRecordBytes = 1u << 24;

/// Outcome of scanning a log.
struct WalReplayResult {
  uint64_t records = 0;        ///< valid records delivered to the callback
  uint64_t valid_bytes = 0;    ///< length of the valid prefix (incl. header)
  uint64_t dropped_bytes = 0;  ///< torn/corrupt tail bytes after the prefix
  std::string tail_error;      ///< why the scan stopped; empty = clean end
};

/// Appends framed records to a log file. Not thread-safe; StreamIngest
/// serializes writers. All write paths retry EINTR and continue partial
/// writes; fault sites wal.torn_write / wal.short_write / wal.corrupt
/// fire here (see util/fault_injection.h).
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { Close(); }
  WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending, writing + syncing the header if the file
  /// is new or empty. An existing file must start with a valid header.
  static Result<WalWriter> Open(const std::string& path, bool fsync_always);

  /// Frames and appends one record; with fsync enabled the record is on
  /// disk when this returns OK. On any error the file may hold a torn
  /// tail — the caller must treat this writer as dead (StreamIngest
  /// poisons the ingest) because appending past a torn record would make
  /// replay drop everything after it.
  Status Append(const std::string& payload);

  /// fdatasync the log (no-op when Append already syncs every record).
  Status Sync();

  void Close();
  bool is_open() const { return fd_ >= 0; }
  uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  Status WriteAll(const char* data, size_t n);

  int fd_ = -1;
  std::string path_;
  bool fsync_always_ = true;
  uint64_t bytes_ = 0;  ///< current file length, including header
};

/// Scans the log at `path`, invoking `apply` for each valid record in
/// order. Stops at the first torn or corrupt frame and reports it in the
/// result (scan errors are not Status failures — a torn tail is the
/// expected crash signature). IoError only if the file cannot be read or
/// its header is invalid; a callback error aborts the scan and propagates.
Result<WalReplayResult> ReplayWal(
    const std::string& path,
    const std::function<Status(const std::string& payload)>& apply);

/// Truncates the log to `valid_bytes` (as reported by ReplayWal), dropping
/// a torn tail so future appends start from a clean frame boundary.
Status TruncateWal(const std::string& path, uint64_t valid_bytes);

}  // namespace stream
}  // namespace sjsel

#endif  // SJSEL_STREAM_WAL_H_
