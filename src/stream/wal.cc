#include "stream/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "util/fault_injection.h"
#include "util/serialize.h"

namespace sjsel {
namespace stream {
namespace {

std::string WalHeader() {
  BinaryWriter w;
  w.PutU32(kWalMagic);
  w.PutU8(kWalVersion);
  return w.buffer();
}

Status FdatasyncRetry(int fd, const std::string& path) {
  int rc;
  do {
    rc = ::fdatasync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::IoError("fdatasync failed: " + path);
  }
  return Status::OK();
}

}  // namespace

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    fsync_always_ = other.fsync_always_;
    bytes_ = other.bytes_;
    other.fd_ = -1;
    other.bytes_ = 0;
  }
  return *this;
}

Result<WalWriter> WalWriter::Open(const std::string& path, bool fsync_always) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open WAL for append: " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat WAL: " + path);
  }

  WalWriter w;
  w.fd_ = fd;
  w.path_ = path;
  w.fsync_always_ = fsync_always;
  w.bytes_ = static_cast<uint64_t>(st.st_size);

  if (w.bytes_ == 0) {
    const std::string header = WalHeader();
    SJSEL_RETURN_IF_ERROR(w.WriteAll(header.data(), header.size()));
    w.bytes_ = header.size();
    SJSEL_RETURN_IF_ERROR(FdatasyncRetry(fd, path));
  } else if (w.bytes_ < kWalHeaderBytes) {
    return Status::Corruption("WAL shorter than its header: " + path);
  }
  return w;
}

Status WalWriter::WriteAll(const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    size_t chunk = n - off;
    // Fault site wal.short_write: cap one write(2) so only part of the
    // frame lands in this call — the loop must finish the rest. This is
    // the success path; it proves partial writes cannot tear a record.
    if (FaultInjector::GloballyArmed() &&
        FaultInjector::Global().ShouldFail(kFaultSiteWalShortWrite)) {
      chunk = std::max<size_t>(1, chunk / 2);
    }
    const ssize_t written = ::write(fd_, data + off, chunk);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("WAL write failed: " + path_);
    }
    off += static_cast<size_t>(written);
  }
  return Status::OK();
}

Status WalWriter::Append(const std::string& payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("WAL writer is closed: " + path_);
  }
  if (payload.size() > kWalMaxRecordBytes) {
    return Status::InvalidArgument("WAL record too large: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  BinaryWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload.data(), payload.size()));
  std::string bytes = frame.buffer() + payload;

  // Fault site wal.corrupt: flip one payload byte after the CRC was
  // computed, then report failure so the record is never acknowledged —
  // replay must reject the frame by CRC.
  bool corrupt = false;
  if (!payload.empty() && FaultInjector::GloballyArmed() &&
      FaultInjector::Global().ShouldFail(kFaultSiteWalCorrupt)) {
    bytes[kWalFrameBytes + payload.size() / 2] ^= 0x01;
    corrupt = true;
  }
  // Fault site wal.torn_write: persist only a strict prefix of the frame
  // and fail, simulating a crash mid-append.
  if (FaultInjector::GloballyArmed() &&
      FaultInjector::Global().ShouldFail(kFaultSiteWalTornWrite)) {
    const size_t torn = std::max<size_t>(1, bytes.size() / 2);
    (void)WriteAll(bytes.data(), torn);
    bytes_ += torn;
    return Status::IoError("injected fault at wal.torn_write: " + path_);
  }

  SJSEL_RETURN_IF_ERROR(WriteAll(bytes.data(), bytes.size()));
  bytes_ += bytes.size();
  if (fsync_always_) {
    SJSEL_METRIC_SCOPED_LATENCY("stream.wal.fsync_us");
    SJSEL_RETURN_IF_ERROR(FdatasyncRetry(fd_, path_));
  }
  SJSEL_METRIC_INC("stream.wal.appends");
  SJSEL_METRIC_ADD("stream.wal.bytes", static_cast<int64_t>(bytes.size()));
  if (corrupt) {
    return Status::IoError("injected fault at wal.corrupt: " + path_);
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("WAL writer is closed: " + path_);
  }
  return FdatasyncRetry(fd_, path_);
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WalReplayResult> ReplayWal(
    const std::string& path,
    const std::function<Status(const std::string& payload)>& apply) {
  std::string data;
  SJSEL_ASSIGN_OR_RETURN(data, ReadFile(path));
  if (data.size() < kWalHeaderBytes) {
    return Status::Corruption("WAL shorter than its header: " + path);
  }
  BinaryReader header(data.substr(0, kWalHeaderBytes));
  uint32_t magic = 0;
  SJSEL_ASSIGN_OR_RETURN(magic, header.GetU32());
  if (magic != kWalMagic) {
    return Status::Corruption("bad WAL magic in " + path);
  }
  uint8_t version = 0;
  SJSEL_ASSIGN_OR_RETURN(version, header.GetU8());
  if (version != kWalVersion) {
    return Status::Corruption("unsupported WAL version " +
                              std::to_string(version) + " in " + path);
  }

  WalReplayResult result;
  result.valid_bytes = kWalHeaderBytes;
  size_t pos = kWalHeaderBytes;
  while (pos < data.size()) {
    if (data.size() - pos < kWalFrameBytes) {
      result.tail_error = "torn frame header at offset " + std::to_string(pos);
      break;
    }
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, data.data() + pos, sizeof(len));
    std::memcpy(&crc, data.data() + pos + sizeof(len), sizeof(crc));
    if (len > kWalMaxRecordBytes) {
      result.tail_error = "implausible record length " + std::to_string(len) +
                          " at offset " + std::to_string(pos);
      break;
    }
    if (data.size() - pos - kWalFrameBytes < len) {
      result.tail_error = "torn record payload at offset " +
                          std::to_string(pos);
      break;
    }
    const char* payload = data.data() + pos + kWalFrameBytes;
    if (Crc32(payload, len) != crc) {
      result.tail_error = "record CRC mismatch at offset " +
                          std::to_string(pos);
      break;
    }
    SJSEL_RETURN_IF_ERROR(apply(std::string(payload, len)));
    ++result.records;
    pos += kWalFrameBytes + len;
    result.valid_bytes = pos;
  }
  result.dropped_bytes = data.size() - result.valid_bytes;
  return result;
}

Status TruncateWal(const std::string& path, uint64_t valid_bytes) {
  if (valid_bytes < kWalHeaderBytes) {
    return Status::InvalidArgument("cannot truncate WAL below its header");
  }
  int rc;
  do {
    rc = ::truncate(path.c_str(), static_cast<off_t>(valid_bytes));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::IoError("truncate failed: " + path);
  }
  return Status::OK();
}

}  // namespace stream
}  // namespace sjsel
