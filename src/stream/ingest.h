#ifndef SJSEL_STREAM_INGEST_H_
#define SJSEL_STREAM_INGEST_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/gh_histogram.h"
#include "core/ph_histogram.h"
#include "geom/rect.h"
#include "stream/wal.h"
#include "util/result.h"
#include "util/status.h"

namespace sjsel {
namespace stream {

/// One update in an ingest batch.
enum class OpKind : uint8_t {
  kAdd = 1,
  kRemove = 2,
};

struct StreamOp {
  OpKind kind = OpKind::kAdd;
  Rect rect;
};

/// Fixed configuration of a stream directory, chosen at Init and persisted
/// in the MANIFEST. seal_every / checkpoint_every are batch counts keyed to
/// the acknowledged sequence number, which makes delta boundaries a pure
/// function of the op stream — the property the recovery bit-identity
/// invariant rests on (see docs/DURABILITY.md).
struct StreamOptions {
  Rect extent{0.0, 0.0, 1.0, 1.0};
  int gh_level = 7;
  int ph_level = 5;
  uint32_t seal_every = 8;        ///< seal the active delta every N batches
  uint32_t checkpoint_every = 0;  ///< auto-checkpoint every N batches (0 = manual)
  bool fsync_always = true;       ///< fdatasync the WAL on every append
};

/// An immutable (base + sealed deltas) view served to concurrent readers.
/// `seq` is the last acknowledged batch folded into it; ops newer than that
/// sit in the active delta and become visible at the next seal.
struct StreamSnapshot {
  GhHistogram gh;
  PhHistogram ph;
  uint64_t seq = 0;
};

/// What crash recovery found when the stream directory was opened.
struct RecoveryInfo {
  uint64_t checkpoint_seq = 0;    ///< seq covered by the loaded base
  uint64_t replayed_records = 0;  ///< WAL records re-applied (seq > base)
  uint64_t skipped_records = 0;   ///< WAL records already in the base
  uint64_t replayed_ops = 0;      ///< individual add/remove ops re-applied
  uint64_t dropped_bytes = 0;     ///< torn/corrupt tail bytes truncated
  std::string tail_error;         ///< replay stop reason; empty = clean log
};

/// Crash-safe streaming ingest over differential GH/PH histograms.
///
/// Layout of a stream directory:
///   MANIFEST        checked envelope: geometry + cadence + checkpoint seq
///   base.<S>.gh/.ph histogram images covering batches [1, S]
///   wal.log         framed op batches with seq > S (stream/wal.h)
///
/// Write path (Apply): the batch is framed and fdatasync'd into the WAL
/// *before* it touches the in-memory delta; only then is its seq
/// acknowledged. A batch is therefore either durable or unacknowledged —
/// never half-applied. Every seal_every batches the active delta is merged
/// into a fresh snapshot (left-fold via Merge, so cell values stay
/// bit-identical to replaying the ops in order); Checkpoint persists the
/// snapshot as the new base, rewrites the WAL to just the unsealed tail,
/// and never changes any cell value.
///
/// Read path: snapshot() hands out a shared immutable view; readers never
/// block writers and vice versa.
///
/// Thread-safety: Apply/Checkpoint serialize on an internal mutex;
/// snapshot()/MaterializeState()/stats are safe from any thread.
class StreamIngest {
 public:
  /// Creates and initializes a stream directory (the directory itself is
  /// created if missing). Fails if it already holds a MANIFEST.
  static Status Init(const std::string& dir, const StreamOptions& options);

  /// Opens an existing stream directory, running crash recovery: loads the
  /// checkpoint base, replays the WAL tail (skipping records the base
  /// already covers), truncates a torn/corrupt tail, and re-seals deltas at
  /// the same seq boundaries the original process used — recovered state is
  /// bit-identical to a never-crashed ingest fed the acknowledged prefix.
  static Result<std::unique_ptr<StreamIngest>> Open(const std::string& dir);

  /// Durably logs and applies one batch; returns its acknowledged seq.
  /// After any WAL failure the ingest is poisoned: the WAL tail can no
  /// longer be trusted to ack past it, so every later Apply fails and the
  /// caller must reopen (recovery truncates the bad tail).
  Result<uint64_t> Apply(const std::vector<StreamOp>& batch);

  /// Persists the current snapshot as the new base and shrinks the WAL to
  /// the unsealed tail. Values are unchanged; only durability is re-based.
  Status Checkpoint();

  /// The current consistent read view (never null).
  std::shared_ptr<const StreamSnapshot> snapshot() const;

  /// Full state including the not-yet-sealed active delta, merged the same
  /// way a seal would. This is what --digest hashes: two ingests fed the
  /// same acknowledged op stream produce bit-identical MaterializeState.
  Result<StreamSnapshot> MaterializeState() const;

  /// CRC-32 hex digest of MaterializeState (cells, counts, seq) — the
  /// recovery drill's equality check.
  Result<std::string> StateDigest() const;

  const StreamOptions& options() const { return options_; }
  const std::string& dir() const { return dir_; }
  const RecoveryInfo& recovery() const { return recovery_; }
  uint64_t seq() const;
  uint64_t checkpoint_seq() const;
  uint64_t wal_bytes() const;
  uint64_t active_batches() const;
  /// True after a WAL write failure: mutating ops fail until the stream is
  /// reopened. Surfaced by the server's `health` op (poisoned stream count).
  bool poisoned() const;

  /// Serializes `ops` into a WAL record payload / decodes one. Exposed for
  /// tests and the WAL tooling.
  static std::string EncodeBatch(uint64_t seq,
                                 const std::vector<StreamOp>& ops);
  static Result<std::pair<uint64_t, std::vector<StreamOp>>> DecodeBatch(
      const std::string& payload);

 private:
  StreamIngest(std::string dir, StreamOptions options);

  std::string WalPath() const;
  std::string ManifestPath() const;
  std::string BasePath(uint64_t seq, const char* ext) const;

  Status WriteManifest(uint64_t checkpoint_seq) const;
  static Result<std::pair<StreamOptions, uint64_t>> ReadManifest(
      const std::string& dir);

  /// Applies ops to the active delta and advances seq_, sealing at
  /// seal_every boundaries. Shared by Apply and WAL replay so the live and
  /// recovered paths are the same code.
  Status ApplyToActive(uint64_t seq, const std::vector<StreamOp>& ops,
                       const std::string& payload);
  Status SealLocked();
  Status CheckpointLocked();
  Status ResetActiveLocked();

  const std::string dir_;
  const StreamOptions options_;

  mutable std::mutex mu_;  ///< serializes writers + active-delta access
  WalWriter wal_;
  uint64_t seq_ = 0;
  uint64_t checkpoint_seq_ = 0;
  bool poisoned_ = false;
  std::unique_ptr<GhHistogram> active_gh_;
  std::unique_ptr<PhHistogram> active_ph_;
  /// Encoded payloads of unsealed batches, in seq order — exactly the
  /// records a checkpoint must carry over into the rewritten WAL.
  std::vector<std::string> active_payloads_;
  uint64_t active_batches_ = 0;

  mutable std::mutex snap_mu_;  ///< guards the snapshot pointer swap
  std::shared_ptr<const StreamSnapshot> snapshot_;

  RecoveryInfo recovery_;
};

}  // namespace stream
}  // namespace sjsel

#endif  // SJSEL_STREAM_INGEST_H_
