#ifndef SJSEL_STATS_DATASET_STATS_H_
#define SJSEL_STATS_DATASET_STATS_H_

#include <cstddef>
#include <string>

#include "geom/dataset.h"
#include "geom/rect.h"

namespace sjsel {

/// Whole-dataset summary statistics — exactly the parameters the prior
/// parametric model of Aref & Samet consumes (N, coverage C, average width
/// W and height H over the extent of area A), plus descriptive extras.
struct DatasetStats {
  std::string name;
  size_t n = 0;
  Rect extent = Rect::Empty();  ///< the reference extent used for ratios
  double extent_area = 0.0;     ///< A
  double coverage = 0.0;        ///< C: sum of item areas / A
  double avg_width = 0.0;       ///< W
  double avg_height = 0.0;      ///< H
  double total_area = 0.0;      ///< sum of item areas
  double max_width = 0.0;
  double max_height = 0.0;

  /// Computes statistics of `ds` relative to `extent` (pass the joint
  /// extent of a join's two inputs so both sides use the same A).
  static DatasetStats Compute(const Dataset& ds, const Rect& extent);
};

/// Relative estimation error as a fraction: |est - actual| / actual.
/// Returns |est| when actual == 0 (so a correct zero estimate scores 0).
double RelativeError(double estimate, double actual);

}  // namespace sjsel

#endif  // SJSEL_STATS_DATASET_STATS_H_
