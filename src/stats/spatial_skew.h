#ifndef SJSEL_STATS_SPATIAL_SKEW_H_
#define SJSEL_STATS_SPATIAL_SKEW_H_

#include "geom/dataset.h"

namespace sjsel {

/// How unevenly a dataset's mass is spread over a uniform grid — the
/// property that decides whether the uniformity assumption of the
/// parametric model (and of PH/GH within a cell) holds. Computed by
/// bucketing MBR centers into a 2^level x 2^level grid.
struct SkewStats {
  /// Shannon entropy of the cell-occupancy distribution divided by the
  /// maximum (log of the cell count): 1.0 = perfectly uniform,
  /// 0.0 = everything in one cell.
  double entropy_ratio = 0.0;
  /// Gini coefficient of per-cell counts: 0.0 = uniform, -> 1.0 = extreme
  /// concentration.
  double gini = 0.0;
  /// Fraction of cells containing at least one center.
  double occupied_fraction = 0.0;
};

/// Computes skew statistics of `ds` over its own extent at the given grid
/// level (default 6 = 64x64 cells). Returns zeros for an empty dataset.
SkewStats ComputeSkew(const Dataset& ds, int level = 6);

}  // namespace sjsel

#endif  // SJSEL_STATS_SPATIAL_SKEW_H_
