#include "stats/spatial_skew.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/grid.h"

namespace sjsel {

SkewStats ComputeSkew(const Dataset& ds, int level) {
  SkewStats stats;
  if (ds.empty()) return stats;
  const Rect extent = ds.ComputeExtent();
  auto grid_result = Grid::Create(extent, level);
  if (!grid_result.ok()) {
    // Degenerate extent (all centers collinear/coincident): maximal skew.
    stats.gini = 1.0;
    return stats;
  }
  const Grid grid = std::move(grid_result).value();

  std::vector<uint64_t> counts(grid.num_cells(), 0);
  for (const Rect& r : ds.rects()) {
    ++counts[grid.CellOf(r.center())];
  }
  const double n = static_cast<double>(ds.size());
  const double cells = static_cast<double>(counts.size());

  double entropy = 0.0;
  uint64_t occupied = 0;
  for (uint64_t count : counts) {
    if (count == 0) continue;
    ++occupied;
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log(p);
  }
  const double max_entropy = std::log(cells);
  stats.entropy_ratio = max_entropy > 0.0 ? entropy / max_entropy : 0.0;
  stats.occupied_fraction = static_cast<double>(occupied) / cells;

  // Gini over the per-cell counts (including empty cells).
  std::vector<uint64_t> sorted = counts;
  std::sort(sorted.begin(), sorted.end());
  double weighted = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
  }
  stats.gini = (2.0 * weighted) / (cells * n) - (cells + 1.0) / cells;
  stats.gini = std::clamp(stats.gini, 0.0, 1.0);
  return stats;
}

}  // namespace sjsel
