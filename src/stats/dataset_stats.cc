#include "stats/dataset_stats.h"

#include <algorithm>
#include <cmath>

namespace sjsel {

DatasetStats DatasetStats::Compute(const Dataset& ds, const Rect& extent) {
  DatasetStats s;
  s.name = ds.name();
  s.n = ds.size();
  s.extent = extent;
  s.extent_area = extent.IsEmpty() ? 0.0 : extent.area();
  if (ds.empty()) return s;

  double sum_w = 0.0;
  double sum_h = 0.0;
  for (const Rect& r : ds.rects()) {
    sum_w += r.width();
    sum_h += r.height();
    s.total_area += r.area();
    s.max_width = std::max(s.max_width, r.width());
    s.max_height = std::max(s.max_height, r.height());
  }
  const double n = static_cast<double>(ds.size());
  s.avg_width = sum_w / n;
  s.avg_height = sum_h / n;
  s.coverage = s.extent_area > 0.0 ? s.total_area / s.extent_area : 0.0;
  return s;
}

double RelativeError(double estimate, double actual) {
  if (actual == 0.0) return std::fabs(estimate);
  return std::fabs(estimate - actual) / std::fabs(actual);
}

}  // namespace sjsel
