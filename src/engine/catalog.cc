#include "engine/catalog.h"

namespace sjsel {

Status Catalog::AddDataset(Dataset dataset) {
  if (dataset.name().empty()) {
    return Status::InvalidArgument("dataset must be named");
  }
  if (entries_.count(dataset.name()) > 0) {
    return Status::AlreadyExists("dataset already registered: " +
                                 dataset.name());
  }
  Entry entry;
  const std::string name = dataset.name();
  entry.dataset = std::move(dataset);
  entries_.emplace(name, std::move(entry));
  return Status::OK();
}

bool Catalog::Has(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> Catalog::DatasetNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

Result<Catalog::Entry*> Catalog::Find(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no such dataset: " + name);
  }
  return &it->second;
}

Result<const Dataset*> Catalog::GetDataset(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no such dataset: " + name);
  }
  return &it->second.dataset;
}

Result<const GhHistogram*> Catalog::GetHistogram(const std::string& name) {
  Entry* entry = nullptr;
  SJSEL_ASSIGN_OR_RETURN(entry, Find(name));
  if (entry->histogram == nullptr) {
    auto built = GhHistogram::Build(entry->dataset, extent_, gh_level_);
    if (!built.ok()) return built.status();
    entry->histogram =
        std::make_unique<GhHistogram>(std::move(built).value());
  }
  return entry->histogram.get();
}

Result<const RTree*> Catalog::GetRTree(const std::string& name) {
  Entry* entry = nullptr;
  SJSEL_ASSIGN_OR_RETURN(entry, Find(name));
  if (entry->rtree == nullptr) {
    entry->rtree = std::make_unique<RTree>(
        RTree::BulkLoadStr(RTree::DatasetEntries(entry->dataset)));
  }
  return entry->rtree.get();
}

Result<double> Catalog::EstimateJoinPairs(const std::string& a,
                                          const std::string& b) {
  const GhHistogram* ha = nullptr;
  SJSEL_ASSIGN_OR_RETURN(ha, GetHistogram(a));
  const GhHistogram* hb = nullptr;
  SJSEL_ASSIGN_OR_RETURN(hb, GetHistogram(b));
  return EstimateGhJoinPairs(*ha, *hb);
}

Result<double> Catalog::EstimateJoinSelectivity(const std::string& a,
                                                const std::string& b) {
  const GhHistogram* ha = nullptr;
  SJSEL_ASSIGN_OR_RETURN(ha, GetHistogram(a));
  const GhHistogram* hb = nullptr;
  SJSEL_ASSIGN_OR_RETURN(hb, GetHistogram(b));
  return EstimateGhJoinSelectivity(*ha, *hb);
}

}  // namespace sjsel
