#include "engine/catalog.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injection.h"

namespace sjsel {

Status Catalog::AddDataset(Dataset dataset) {
  if (dataset.name().empty()) {
    return Status::InvalidArgument("dataset must be named");
  }
  if (entries_.count(dataset.name()) > 0) {
    return Status::AlreadyExists("dataset already registered: " +
                                 dataset.name());
  }
  Entry entry;
  const std::string name = dataset.name();
  // Structural validation only (empty extent): NaN/Inf and inverted MBRs
  // would silently corrupt every histogram cell they touch, so quarantine
  // them here. Out-of-extent rects are fine — the GH build clips them.
  auto validated = ValidateDataset(dataset, Rect::Empty(),
                                   ValidationPolicy::kQuarantine,
                                   &entry.validation);
  if (!validated.ok()) return validated.status();
  entry.dataset = std::move(validated).value();
  entries_.emplace(name, std::move(entry));
  return Status::OK();
}

bool Catalog::Has(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> Catalog::DatasetNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

Result<Catalog::Entry*> Catalog::Find(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no such dataset: " + name);
  }
  return &it->second;
}

Result<const Dataset*> Catalog::GetDataset(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no such dataset: " + name);
  }
  return &it->second.dataset;
}

Result<RobustnessCounters> Catalog::ValidationCounters(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no such dataset: " + name);
  }
  return it->second.validation;
}

Result<const GhHistogram*> Catalog::GetHistogram(const std::string& name) {
  SJSEL_TRACE_SPAN("catalog.get_histogram", "dataset=%s", name.c_str());
  Entry* entry = nullptr;
  SJSEL_ASSIGN_OR_RETURN(entry, Find(name));
  if (entry->histogram != nullptr) {
    SJSEL_METRIC_INC("catalog.hist.memory_hits");
    return entry->histogram.get();
  }

  const std::string cache_path =
      histogram_cache_dir_.empty() ? ""
                                   : histogram_cache_dir_ + "/" + name + ".gh";
  if (!cache_path.empty()) {
    // Cache-file load, with the catalog.hist_load fault site in front of
    // it. Any failure here — injected, missing file, corruption, version
    // skew — degrades to the rebuild below rather than failing the query.
    Status load_status = Status::OK();
    if (FaultInjector::GloballyArmed() &&
        FaultInjector::Global().ShouldFail(kFaultSiteCatalogHistLoad)) {
      load_status =
          Status::Corruption("injected fault at catalog.hist_load: " + name);
    }
    if (load_status.ok()) {
      auto loaded = GhHistogram::Load(cache_path);
      if (loaded.ok()) {
        // The file must describe this catalog's grid and this dataset;
        // anything else is a stale or foreign cache entry.
        const bool compatible =
            loaded->grid().level() == gh_level_ &&
            loaded->grid().extent() == extent_ &&
            loaded->dataset_size() == entry->dataset.size();
        if (compatible) {
          SJSEL_METRIC_INC("catalog.hist.cache_hits");
          entry->histogram =
              std::make_unique<GhHistogram>(std::move(loaded).value());
          return entry->histogram.get();
        }
        load_status = Status::FailedPrecondition(
            "histogram cache mismatch for " + name);
      } else {
        load_status = loaded.status();
      }
    }
    // Fall through to the in-memory rebuild; count the degradation.
    (void)load_status;
    ++histogram_rebuilds_;
    SJSEL_METRIC_INC("catalog.hist.cache_misses");
    SJSEL_METRIC_INC("catalog.hist.rebuilds");
  }

  auto built = GhHistogram::Build(entry->dataset, extent_, gh_level_);
  if (!built.ok()) return built.status();
  entry->histogram = std::make_unique<GhHistogram>(std::move(built).value());
  if (!cache_path.empty()) {
    // Refresh the cache entry; a failed save only costs the next process
    // a rebuild.
    (void)entry->histogram->Save(cache_path);
  }
  return entry->histogram.get();
}

Result<const RTree*> Catalog::GetRTree(const std::string& name) {
  Entry* entry = nullptr;
  SJSEL_ASSIGN_OR_RETURN(entry, Find(name));
  if (entry->rtree == nullptr) {
    entry->rtree = std::make_unique<RTree>(
        RTree::BulkLoadStr(RTree::DatasetEntries(entry->dataset)));
  }
  return entry->rtree.get();
}

Result<double> Catalog::EstimateJoinPairs(const std::string& a,
                                          const std::string& b) {
  const GhHistogram* ha = nullptr;
  SJSEL_ASSIGN_OR_RETURN(ha, GetHistogram(a));
  const GhHistogram* hb = nullptr;
  SJSEL_ASSIGN_OR_RETURN(hb, GetHistogram(b));
  return EstimateGhJoinPairs(*ha, *hb);
}

Result<double> Catalog::EstimateJoinSelectivity(const std::string& a,
                                                const std::string& b) {
  const GhHistogram* ha = nullptr;
  SJSEL_ASSIGN_OR_RETURN(ha, GetHistogram(a));
  const GhHistogram* hb = nullptr;
  SJSEL_ASSIGN_OR_RETURN(hb, GetHistogram(b));
  return EstimateGhJoinSelectivity(*ha, *hb);
}

}  // namespace sjsel
