#ifndef SJSEL_ENGINE_EXECUTOR_H_
#define SJSEL_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/planner.h"
#include "util/result.h"

namespace sjsel {

/// Result of executing a chain join order.
struct ChainJoinResult {
  uint64_t result_tuples = 0;
  /// Actual cardinality after each join step (size k-1) — comparable
  /// one-to-one with JoinPlan::step_cardinalities.
  std::vector<uint64_t> step_cardinalities;
  /// Total tuples examined across steps; the executor's work measure.
  uint64_t work = 0;
  double seconds = 0.0;
};

/// Execution knobs shared by the chain-join entry points.
struct ExecuteOptions {
  /// Worker threads for the R-tree probe steps; <= 1 runs serially. Each
  /// probe step partitions the partial-tuple id range into fixed blocks,
  /// accumulates per-block match-count vectors, and sums them in block
  /// order — integer sums, so results are identical for every thread
  /// count. The pool lives for the duration of one Execute call.
  int threads = 1;
};

/// Executes the chain spatial join R1 ⋈ R2 ⋈ ... ⋈ Rk in the given order:
/// the first step is an R-tree join of the first two datasets, and each
/// later step extends tuples by probing the next dataset's R-tree with the
/// tuple's last rectangle. Tuple counts are tracked per distinct last
/// element, so memory stays O(max dataset size).
Result<ChainJoinResult> ExecuteChainJoin(Catalog* catalog,
                                         const std::vector<std::string>& order,
                                         const ExecuteOptions& options = {});

/// Executes a predicate-annotated chain query in the given order. Each
/// within-distance edge probes the next R-tree with the tuple's last
/// rectangle expanded by eps (the exact reduction for Chebyshev distance).
Result<ChainJoinResult> ExecuteChainSteps(Catalog* catalog,
                                          const std::vector<ChainStep>& steps,
                                          const ExecuteOptions& options = {});

}  // namespace sjsel

#endif  // SJSEL_ENGINE_EXECUTOR_H_
