#ifndef SJSEL_ENGINE_CATALOG_H_
#define SJSEL_ENGINE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/gh_histogram.h"
#include "geom/dataset.h"
#include "geom/validate.h"
#include "rtree/rtree.h"
#include "util/result.h"

namespace sjsel {

/// A tiny SDBMS-style catalog: named datasets with lazily built, cached
/// per-dataset structures — a GH histogram (for the optimizer) and an
/// R-tree (for the executor). All histograms are built over one workspace
/// extent at one gridding level so any pair is directly combinable.
///
/// This realizes the paper's motivating use-case (and its "future work"):
/// a query optimizer that consults spatial-join selectivity estimates.
///
/// Robustness: registration runs a structural validation pass (non-finite
/// and inverted MBRs are quarantined; out-of-extent geometry is legal —
/// the GH build clamps it by cell ownership). With a histogram cache
/// directory set, GetHistogram persists built histograms and reloads them
/// on later calls; ANY load failure — missing file, CRC mismatch, version
/// skew, grid mismatch, injected fault (site catalog.hist_load) — falls
/// back to an in-memory rebuild instead of erroring the query, and the
/// fallback is counted in histogram_rebuilds().
class Catalog {
 public:
  /// `extent` is the workspace every registered dataset lives in;
  /// `gh_level` is the gridding level of the optimizer histograms.
  Catalog(const Rect& extent, int gh_level)
      : extent_(extent), gh_level_(gh_level) {}

  /// Registers a dataset under its name(). Fails on duplicates or empty
  /// names. Structurally defective rects (NaN/Inf coordinates, inverted
  /// MBRs) are quarantined and counted — see ValidationCounters().
  Status AddDataset(Dataset dataset);

  bool Has(const std::string& name) const;
  std::vector<std::string> DatasetNames() const;

  /// Borrowed pointer valid while the catalog lives.
  Result<const Dataset*> GetDataset(const std::string& name) const;

  /// What registration quarantined from the named dataset.
  Result<RobustnessCounters> ValidationCounters(const std::string& name) const;

  /// Enables the on-disk histogram cache under `dir` (files named
  /// <dir>/<dataset>.gh). The directory must already exist; save failures
  /// are tolerated silently (the cache is an optimization, not a
  /// correctness dependency).
  void SetHistogramCacheDir(std::string dir) {
    histogram_cache_dir_ = std::move(dir);
  }

  /// Times a cache-file load failed and GetHistogram fell back to an
  /// in-memory rebuild.
  uint64_t histogram_rebuilds() const { return histogram_rebuilds_; }

  /// The dataset's GH histogram: from the in-memory cache, else the file
  /// cache (when configured), else built from the dataset.
  Result<const GhHistogram*> GetHistogram(const std::string& name);

  /// The dataset's R-tree (STR bulk load), built on first use.
  Result<const RTree*> GetRTree(const std::string& name);

  /// GH-estimated join cardinality between two registered datasets.
  Result<double> EstimateJoinPairs(const std::string& a,
                                   const std::string& b);

  /// GH-estimated join selectivity between two registered datasets.
  Result<double> EstimateJoinSelectivity(const std::string& a,
                                         const std::string& b);

  const Rect& extent() const { return extent_; }
  int gh_level() const { return gh_level_; }

 private:
  struct Entry {
    Dataset dataset;
    RobustnessCounters validation;
    std::unique_ptr<GhHistogram> histogram;
    std::unique_ptr<RTree> rtree;
  };

  Result<Entry*> Find(const std::string& name);

  Rect extent_;
  int gh_level_;
  std::string histogram_cache_dir_;
  uint64_t histogram_rebuilds_ = 0;
  std::map<std::string, Entry> entries_;
};

}  // namespace sjsel

#endif  // SJSEL_ENGINE_CATALOG_H_
