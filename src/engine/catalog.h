#ifndef SJSEL_ENGINE_CATALOG_H_
#define SJSEL_ENGINE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/gh_histogram.h"
#include "geom/dataset.h"
#include "rtree/rtree.h"
#include "util/result.h"

namespace sjsel {

/// A tiny SDBMS-style catalog: named datasets with lazily built, cached
/// per-dataset structures — a GH histogram (for the optimizer) and an
/// R-tree (for the executor). All histograms are built over one workspace
/// extent at one gridding level so any pair is directly combinable.
///
/// This realizes the paper's motivating use-case (and its "future work"):
/// a query optimizer that consults spatial-join selectivity estimates.
class Catalog {
 public:
  /// `extent` is the workspace every registered dataset lives in;
  /// `gh_level` is the gridding level of the optimizer histograms.
  Catalog(const Rect& extent, int gh_level)
      : extent_(extent), gh_level_(gh_level) {}

  /// Registers a dataset under its name(). Fails on duplicates or empty
  /// names.
  Status AddDataset(Dataset dataset);

  bool Has(const std::string& name) const;
  std::vector<std::string> DatasetNames() const;

  /// Borrowed pointer valid while the catalog lives.
  Result<const Dataset*> GetDataset(const std::string& name) const;

  /// The dataset's GH histogram, built on first use.
  Result<const GhHistogram*> GetHistogram(const std::string& name);

  /// The dataset's R-tree (STR bulk load), built on first use.
  Result<const RTree*> GetRTree(const std::string& name);

  /// GH-estimated join cardinality between two registered datasets.
  Result<double> EstimateJoinPairs(const std::string& a,
                                   const std::string& b);

  /// GH-estimated join selectivity between two registered datasets.
  Result<double> EstimateJoinSelectivity(const std::string& a,
                                         const std::string& b);

  const Rect& extent() const { return extent_; }
  int gh_level() const { return gh_level_; }

 private:
  struct Entry {
    Dataset dataset;
    std::unique_ptr<GhHistogram> histogram;
    std::unique_ptr<RTree> rtree;
  };

  Result<Entry*> Find(const std::string& name);

  Rect extent_;
  int gh_level_;
  std::map<std::string, Entry> entries_;
};

}  // namespace sjsel

#endif  // SJSEL_ENGINE_CATALOG_H_
