#include "engine/executor.h"

#include <memory>

#include "join/rtree_join.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sjsel {
namespace {

// Ids probed per ParallelFor block in a threaded probe step. Fixed (not
// derived from the thread count) so the block decomposition — and the
// block-order merge below — gives the same sums for every thread count.
constexpr int64_t kProbeChunk = 1024;

// One chain-join probe step: extends every partial tuple (counts[id] > 0)
// by the matches of `probe_rect(id)` in `next_tree`, producing the match
// counts of the next dataset. Serial when pool is null; otherwise each
// block accumulates into its own vector and the vectors are summed in
// block order (integer sums — thread-count independent).
template <typename ProbeRect>
void ProbeStep(const std::vector<uint64_t>& counts, const RTree& next_tree,
               size_t next_size, ThreadPool* pool, ProbeRect&& probe_rect,
               std::vector<uint64_t>* next_counts, uint64_t* next_rows,
               uint64_t* probes) {
  next_counts->assign(next_size, 0);
  *next_rows = 0;

  if (pool == nullptr) {
    for (size_t id = 0; id < counts.size(); ++id) {
      if (counts[id] == 0) continue;
      const uint64_t multiplicity = counts[id];
      next_tree.RangeQuery(probe_rect(id), [&](int64_t match, const Rect&) {
        (*next_counts)[static_cast<size_t>(match)] += multiplicity;
        *next_rows += multiplicity;
      });
      ++*probes;
    }
    return;
  }

  const int64_t n = static_cast<int64_t>(counts.size());
  const int64_t blocks = ParallelForNumBlocks(n, kProbeChunk);
  std::vector<std::vector<uint64_t>> partials(static_cast<size_t>(blocks));
  std::vector<uint64_t> block_rows(static_cast<size_t>(blocks), 0);
  std::vector<uint64_t> block_probes(static_cast<size_t>(blocks), 0);
  ParallelFor(pool, n, kProbeChunk,
              [&](int64_t block, int64_t begin, int64_t end) {
                auto& local = partials[static_cast<size_t>(block)];
                local.assign(next_size, 0);
                uint64_t rows = 0;
                uint64_t done = 0;
                for (int64_t id = begin; id < end; ++id) {
                  if (counts[static_cast<size_t>(id)] == 0) continue;
                  const uint64_t multiplicity =
                      counts[static_cast<size_t>(id)];
                  next_tree.RangeQuery(
                      probe_rect(static_cast<size_t>(id)),
                      [&](int64_t match, const Rect&) {
                        local[static_cast<size_t>(match)] += multiplicity;
                        rows += multiplicity;
                      });
                  ++done;
                }
                block_rows[static_cast<size_t>(block)] = rows;
                block_probes[static_cast<size_t>(block)] = done;
              });
  for (int64_t block = 0; block < blocks; ++block) {
    const auto& local = partials[static_cast<size_t>(block)];
    for (size_t i = 0; i < next_size; ++i) (*next_counts)[i] += local[i];
    *next_rows += block_rows[static_cast<size_t>(block)];
    *probes += block_probes[static_cast<size_t>(block)];
  }
}

}  // namespace

Result<ChainJoinResult> ExecuteChainJoin(Catalog* catalog,
                                         const std::vector<std::string>& order,
                                         const ExecuteOptions& options) {
  if (order.size() < 2) {
    return Status::InvalidArgument("a join needs at least 2 datasets");
  }

  Timer timer;
  ChainJoinResult result;
  std::unique_ptr<ThreadPool> pool;
  if (options.threads > 1) pool = std::make_unique<ThreadPool>(options.threads);

  const RTree* first = nullptr;
  SJSEL_ASSIGN_OR_RETURN(first, catalog->GetRTree(order[0]));
  const RTree* second = nullptr;
  SJSEL_ASSIGN_OR_RETURN(second, catalog->GetRTree(order[1]));
  const Dataset* second_ds = nullptr;
  SJSEL_ASSIGN_OR_RETURN(second_ds, catalog->GetDataset(order[1]));

  // counts[id] = number of partial tuples whose last element is `id` of the
  // most recently joined dataset.
  std::vector<uint64_t> counts(second_ds->size(), 0);
  uint64_t rows = 0;
  RTreeJoin(*first, *second, [&](int64_t, int64_t b) {
    ++counts[static_cast<size_t>(b)];
    ++rows;
  });
  result.step_cardinalities.push_back(rows);
  result.work += rows;
  const Dataset* last_ds = second_ds;

  for (size_t step = 2; step < order.size(); ++step) {
    const RTree* next_tree = nullptr;
    SJSEL_ASSIGN_OR_RETURN(next_tree, catalog->GetRTree(order[step]));
    const Dataset* next_ds = nullptr;
    SJSEL_ASSIGN_OR_RETURN(next_ds, catalog->GetDataset(order[step]));

    std::vector<uint64_t> next_counts;
    uint64_t next_rows = 0;
    ProbeStep(
        counts, *next_tree, next_ds->size(), pool.get(),
        [&](size_t id) { return (*last_ds)[id]; }, &next_counts, &next_rows,
        &result.work);
    counts = std::move(next_counts);
    last_ds = next_ds;
    result.step_cardinalities.push_back(next_rows);
    result.work += next_rows;
  }

  result.result_tuples = result.step_cardinalities.back();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

Result<ChainJoinResult> ExecuteChainSteps(Catalog* catalog,
                                          const std::vector<ChainStep>& steps,
                                          const ExecuteOptions& options) {
  if (steps.size() < 2) {
    return Status::InvalidArgument("a join needs at least 2 datasets");
  }

  Timer timer;
  ChainJoinResult result;
  std::unique_ptr<ThreadPool> pool;
  if (options.threads > 1) pool = std::make_unique<ThreadPool>(options.threads);

  const Dataset* last_ds = nullptr;
  SJSEL_ASSIGN_OR_RETURN(last_ds, catalog->GetDataset(steps[0].dataset));

  // Seed: every element of the first dataset is a partial tuple.
  std::vector<uint64_t> counts(last_ds->size(), 1);

  for (size_t step_index = 1; step_index < steps.size(); ++step_index) {
    const ChainStep& step = steps[step_index];
    const RTree* next_tree = nullptr;
    SJSEL_ASSIGN_OR_RETURN(next_tree, catalog->GetRTree(step.dataset));
    const Dataset* next_ds = nullptr;
    SJSEL_ASSIGN_OR_RETURN(next_ds, catalog->GetDataset(step.dataset));
    if (step.predicate == ChainPredicate::kWithinDistance &&
        step.eps < 0.0) {
      return Status::InvalidArgument("within-distance eps must be >= 0");
    }
    const double margin =
        step.predicate == ChainPredicate::kWithinDistance ? step.eps : 0.0;

    std::vector<uint64_t> next_counts;
    uint64_t next_rows = 0;
    ProbeStep(
        counts, *next_tree, next_ds->size(), pool.get(),
        [&](size_t id) { return (*last_ds)[id].Expanded(margin); },
        &next_counts, &next_rows, &result.work);
    counts = std::move(next_counts);
    last_ds = next_ds;
    result.step_cardinalities.push_back(next_rows);
    result.work += next_rows;
  }

  result.result_tuples = result.step_cardinalities.back();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sjsel
