#include "engine/executor.h"

#include "join/rtree_join.h"
#include "util/timer.h"

namespace sjsel {

Result<ChainJoinResult> ExecuteChainJoin(
    Catalog* catalog, const std::vector<std::string>& order) {
  if (order.size() < 2) {
    return Status::InvalidArgument("a join needs at least 2 datasets");
  }

  Timer timer;
  ChainJoinResult result;

  const RTree* first = nullptr;
  SJSEL_ASSIGN_OR_RETURN(first, catalog->GetRTree(order[0]));
  const RTree* second = nullptr;
  SJSEL_ASSIGN_OR_RETURN(second, catalog->GetRTree(order[1]));
  const Dataset* second_ds = nullptr;
  SJSEL_ASSIGN_OR_RETURN(second_ds, catalog->GetDataset(order[1]));

  // counts[id] = number of partial tuples whose last element is `id` of the
  // most recently joined dataset.
  std::vector<uint64_t> counts(second_ds->size(), 0);
  uint64_t rows = 0;
  RTreeJoin(*first, *second, [&](int64_t, int64_t b) {
    ++counts[static_cast<size_t>(b)];
    ++rows;
  });
  result.step_cardinalities.push_back(rows);
  result.work += rows;
  const Dataset* last_ds = second_ds;

  for (size_t step = 2; step < order.size(); ++step) {
    const RTree* next_tree = nullptr;
    SJSEL_ASSIGN_OR_RETURN(next_tree, catalog->GetRTree(order[step]));
    const Dataset* next_ds = nullptr;
    SJSEL_ASSIGN_OR_RETURN(next_ds, catalog->GetDataset(order[step]));

    std::vector<uint64_t> next_counts(next_ds->size(), 0);
    uint64_t next_rows = 0;
    for (size_t id = 0; id < counts.size(); ++id) {
      if (counts[id] == 0) continue;
      const uint64_t multiplicity = counts[id];
      next_tree->RangeQuery((*last_ds)[id],
                            [&](int64_t match, const Rect&) {
                              next_counts[static_cast<size_t>(match)] +=
                                  multiplicity;
                              next_rows += multiplicity;
                            });
      ++result.work;
    }
    counts = std::move(next_counts);
    last_ds = next_ds;
    result.step_cardinalities.push_back(next_rows);
    result.work += next_rows;
  }

  result.result_tuples = result.step_cardinalities.back();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

Result<ChainJoinResult> ExecuteChainSteps(
    Catalog* catalog, const std::vector<ChainStep>& steps) {
  if (steps.size() < 2) {
    return Status::InvalidArgument("a join needs at least 2 datasets");
  }

  Timer timer;
  ChainJoinResult result;

  const Dataset* last_ds = nullptr;
  SJSEL_ASSIGN_OR_RETURN(last_ds, catalog->GetDataset(steps[0].dataset));

  // Seed: every element of the first dataset is a partial tuple.
  std::vector<uint64_t> counts(last_ds->size(), 1);

  for (size_t step_index = 1; step_index < steps.size(); ++step_index) {
    const ChainStep& step = steps[step_index];
    const RTree* next_tree = nullptr;
    SJSEL_ASSIGN_OR_RETURN(next_tree, catalog->GetRTree(step.dataset));
    const Dataset* next_ds = nullptr;
    SJSEL_ASSIGN_OR_RETURN(next_ds, catalog->GetDataset(step.dataset));
    if (step.predicate == ChainPredicate::kWithinDistance &&
        step.eps < 0.0) {
      return Status::InvalidArgument("within-distance eps must be >= 0");
    }
    const double margin =
        step.predicate == ChainPredicate::kWithinDistance ? step.eps : 0.0;

    std::vector<uint64_t> next_counts(next_ds->size(), 0);
    uint64_t next_rows = 0;
    for (size_t id = 0; id < counts.size(); ++id) {
      if (counts[id] == 0) continue;
      const uint64_t multiplicity = counts[id];
      const Rect probe = (*last_ds)[id].Expanded(margin);
      next_tree->RangeQuery(probe, [&](int64_t match, const Rect&) {
        next_counts[static_cast<size_t>(match)] += multiplicity;
        next_rows += multiplicity;
      });
      ++result.work;
    }
    counts = std::move(next_counts);
    last_ds = next_ds;
    result.step_cardinalities.push_back(next_rows);
    result.work += next_rows;
  }

  result.result_tuples = result.step_cardinalities.back();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sjsel
