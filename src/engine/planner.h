#ifndef SJSEL_ENGINE_PLANNER_H_
#define SJSEL_ENGINE_PLANNER_H_

#include <string>
#include <vector>

#include "engine/catalog.h"
#include "util/result.h"

namespace sjsel {

/// A left-deep execution order for a chain spatial join
/// R1 ⋈ R2 ⋈ ... ⋈ Rk, where a result tuple (t1, ..., tk) requires
/// t_i ∩ t_{i+1} ≠ ∅ for consecutive elements of the chosen order.
struct JoinPlan {
  std::vector<std::string> order;
  /// Estimated cardinality after each join step (size k-1).
  std::vector<double> step_cardinalities;
  /// Optimizer cost: the sum of estimated intermediate cardinalities.
  double estimated_cost = 0.0;
};

/// Cost-based planner: searches join orders for the given datasets and
/// returns the order minimizing the sum of estimated intermediate
/// cardinalities, with per-step cardinalities composed from pairwise GH
/// selectivities:
///
///   |R1 ⋈ R2|       = sel(R1, R2) * N1 * N2
///   |... ⋈ R_next|  = |prev| * sel(R_last, R_next) * N_next
///
/// Exhaustive over all orders for k <= 7 datasets, greedy beyond.
Result<JoinPlan> PlanChainJoin(Catalog* catalog,
                               const std::vector<std::string>& datasets);

/// Costs one explicit order with the same model (used to compare the
/// optimizer's pick against naive orders).
Result<JoinPlan> CostChainOrder(Catalog* catalog,
                                const std::vector<std::string>& order);

/// Predicate on one edge of a chain query.
enum class ChainPredicate {
  kIntersects,
  /// Chebyshev distance <= eps between consecutive elements.
  kWithinDistance,
};

/// One element of a predicate-annotated chain query. The predicate applies
/// between this dataset and the previous one (ignored on the first step).
struct ChainStep {
  std::string dataset;
  ChainPredicate predicate = ChainPredicate::kIntersects;
  double eps = 0.0;
};

/// Costs a fixed, predicate-annotated chain query: intersect edges use the
/// catalog's GH histograms; within-distance edges estimate via the
/// expand-and-intersect reduction at the catalog's gridding level. (No
/// reordering — per-edge predicates pin the chain's semantics to its
/// order.)
Result<JoinPlan> CostChainSteps(Catalog* catalog,
                                const std::vector<ChainStep>& steps);

}  // namespace sjsel

#endif  // SJSEL_ENGINE_PLANNER_H_
