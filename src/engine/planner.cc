#include "engine/planner.h"

#include <algorithm>
#include <limits>

#include "core/distance_estimate.h"

namespace sjsel {
namespace {

// Pairwise inputs the cost model needs, gathered once per planning call.
struct PlanningInputs {
  std::vector<std::string> names;
  std::vector<double> sizes;
  // sel[i][j]: GH-estimated selectivity between datasets i and j.
  std::vector<std::vector<double>> sel;
};

Result<PlanningInputs> Gather(Catalog* catalog,
                              const std::vector<std::string>& datasets) {
  PlanningInputs in;
  in.names = datasets;
  const size_t k = datasets.size();
  in.sizes.resize(k);
  in.sel.assign(k, std::vector<double>(k, 0.0));
  for (size_t i = 0; i < k; ++i) {
    const Dataset* ds = nullptr;
    SJSEL_ASSIGN_OR_RETURN(ds, catalog->GetDataset(datasets[i]));
    in.sizes[i] = static_cast<double>(ds->size());
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      double s = 0.0;
      SJSEL_ASSIGN_OR_RETURN(
          s, catalog->EstimateJoinSelectivity(datasets[i], datasets[j]));
      s = std::max(s, 0.0);
      in.sel[i][j] = s;
      in.sel[j][i] = s;
    }
  }
  return in;
}

JoinPlan CostPermutation(const PlanningInputs& in,
                         const std::vector<size_t>& perm) {
  JoinPlan plan;
  for (size_t idx : perm) plan.order.push_back(in.names[idx]);
  double rows = in.sizes[perm[0]];
  for (size_t step = 1; step < perm.size(); ++step) {
    const size_t prev = perm[step - 1];
    const size_t next = perm[step];
    rows = rows * in.sel[prev][next] * in.sizes[next];
    plan.step_cardinalities.push_back(rows);
    plan.estimated_cost += rows;
  }
  return plan;
}

JoinPlan GreedyPlan(const PlanningInputs& in) {
  const size_t k = in.names.size();
  // Start with the cheapest pair, then repeatedly append the dataset whose
  // join with the current tail is cheapest.
  size_t best_i = 0;
  size_t best_j = 1;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      const double rows = in.sizes[i] * in.sizes[j] * in.sel[i][j];
      if (rows < best) {
        best = rows;
        best_i = i;
        best_j = j;
      }
    }
  }
  std::vector<size_t> perm = {best_i, best_j};
  std::vector<bool> used(k, false);
  used[best_i] = used[best_j] = true;
  while (perm.size() < k) {
    const size_t tail = perm.back();
    size_t pick = 0;
    double pick_cost = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      if (used[c]) continue;
      const double cost = in.sel[tail][c] * in.sizes[c];
      if (cost < pick_cost) {
        pick_cost = cost;
        pick = c;
      }
    }
    used[pick] = true;
    perm.push_back(pick);
  }
  return CostPermutation(in, perm);
}

}  // namespace

Result<JoinPlan> PlanChainJoin(Catalog* catalog,
                               const std::vector<std::string>& datasets) {
  if (datasets.size() < 2) {
    return Status::InvalidArgument("a join needs at least 2 datasets");
  }
  PlanningInputs in;
  SJSEL_ASSIGN_OR_RETURN(in, Gather(catalog, datasets));

  const size_t k = datasets.size();
  if (k > 7) return GreedyPlan(in);

  std::vector<size_t> perm(k);
  for (size_t i = 0; i < k; ++i) perm[i] = i;
  JoinPlan best;
  best.estimated_cost = std::numeric_limits<double>::infinity();
  do {
    JoinPlan candidate = CostPermutation(in, perm);
    if (candidate.estimated_cost < best.estimated_cost) {
      best = std::move(candidate);
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

Result<JoinPlan> CostChainOrder(Catalog* catalog,
                                const std::vector<std::string>& order) {
  if (order.size() < 2) {
    return Status::InvalidArgument("a join needs at least 2 datasets");
  }
  PlanningInputs in;
  SJSEL_ASSIGN_OR_RETURN(in, Gather(catalog, order));
  std::vector<size_t> perm(order.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  return CostPermutation(in, perm);
}

Result<JoinPlan> CostChainSteps(Catalog* catalog,
                                const std::vector<ChainStep>& steps) {
  if (steps.size() < 2) {
    return Status::InvalidArgument("a join needs at least 2 datasets");
  }
  JoinPlan plan;
  const Dataset* prev = nullptr;
  SJSEL_ASSIGN_OR_RETURN(prev, catalog->GetDataset(steps[0].dataset));
  plan.order.push_back(steps[0].dataset);
  double rows = static_cast<double>(prev->size());

  for (size_t i = 1; i < steps.size(); ++i) {
    const ChainStep& step = steps[i];
    const Dataset* next = nullptr;
    SJSEL_ASSIGN_OR_RETURN(next, catalog->GetDataset(step.dataset));
    plan.order.push_back(step.dataset);

    double pairwise = 0.0;
    if (step.predicate == ChainPredicate::kIntersects) {
      SJSEL_ASSIGN_OR_RETURN(pairwise, catalog->EstimateJoinPairs(
                                           steps[i - 1].dataset,
                                           step.dataset));
    } else {
      SJSEL_ASSIGN_OR_RETURN(
          pairwise, EstimateWithinDistancePairs(*prev, *next, step.eps,
                                                catalog->gh_level()));
    }
    const double selectivity =
        pairwise / (static_cast<double>(prev->size()) *
                    static_cast<double>(next->size()));
    rows = rows * selectivity * static_cast<double>(next->size());
    plan.step_cardinalities.push_back(rows);
    plan.estimated_cost += rows;
    prev = next;
  }
  return plan;
}

}  // namespace sjsel
