#ifndef SJSEL_JOIN_NESTED_LOOP_H_
#define SJSEL_JOIN_NESTED_LOOP_H_

#include <cstdint>

#include "geom/dataset.h"
#include "join/join.h"

namespace sjsel {

/// O(N1*N2) reference join. Too slow for the benchmark datasets; it exists
/// as the correctness oracle the other join algorithms and all estimators
/// are tested against.
uint64_t NestedLoopJoinCount(const Dataset& a, const Dataset& b);

/// Emitting variant of NestedLoopJoinCount.
void NestedLoopJoin(const Dataset& a, const Dataset& b,
                    const PairCallback& emit);

}  // namespace sjsel

#endif  // SJSEL_JOIN_NESTED_LOOP_H_
