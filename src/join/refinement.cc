#include "join/refinement.h"

#include <utility>
#include <vector>

#include "join/plane_sweep.h"
#include "util/timer.h"

namespace sjsel {

RefinementJoinResult RefinementJoin(const GeoDataset& a, const GeoDataset& b,
                                    const PairCallback& emit) {
  RefinementJoinResult result;

  Timer filter_timer;
  const Dataset mbr_a = a.ToMbrDataset();
  const Dataset mbr_b = b.ToMbrDataset();
  std::vector<std::pair<int64_t, int64_t>> candidates;
  PlaneSweepJoin(mbr_a, mbr_b, [&candidates](int64_t x, int64_t y) {
    candidates.emplace_back(x, y);
  });
  result.filter_seconds = filter_timer.ElapsedSeconds();
  result.candidates = candidates.size();

  Timer refine_timer;
  for (const auto& [i, j] : candidates) {
    if (GeometriesIntersect(a[static_cast<size_t>(i)],
                            b[static_cast<size_t>(j)])) {
      ++result.results;
      if (emit) emit(i, j);
    }
  }
  result.refine_seconds = refine_timer.ElapsedSeconds();
  return result;
}

RefinementJoinResult RefinementJoin(const GeoDataset& a,
                                    const GeoDataset& b) {
  return RefinementJoin(a, b, PairCallback());
}

}  // namespace sjsel
