#ifndef SJSEL_JOIN_REFINEMENT_H_
#define SJSEL_JOIN_REFINEMENT_H_

#include <cstdint>

#include "geom/geometry.h"
#include "join/join.h"

namespace sjsel {

/// Outcome of a two-step spatial join (paper Section 1): the filter step
/// finds MBR-intersecting candidate pairs; the refinement step tests the
/// exact geometry and discards false hits.
struct RefinementJoinResult {
  uint64_t candidates = 0;  ///< filter-step output (MBR pairs)
  uint64_t results = 0;     ///< refined output (exact intersections)
  double filter_seconds = 0.0;
  double refine_seconds = 0.0;

  /// Fraction of filter-step candidates the refinement discards.
  double FalseHitRatio() const {
    return candidates == 0
               ? 0.0
               : 1.0 - static_cast<double>(results) /
                           static_cast<double>(candidates);
  }
};

/// Runs the full two-step join: plane-sweep MBR filter, then exact
/// geometry refinement per candidate pair.
RefinementJoinResult RefinementJoin(const GeoDataset& a, const GeoDataset& b);

/// Emitting variant: `emit` receives only pairs that survive refinement.
RefinementJoinResult RefinementJoin(const GeoDataset& a, const GeoDataset& b,
                                    const PairCallback& emit);

}  // namespace sjsel

#endif  // SJSEL_JOIN_REFINEMENT_H_
