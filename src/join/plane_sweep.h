#ifndef SJSEL_JOIN_PLANE_SWEEP_H_
#define SJSEL_JOIN_PLANE_SWEEP_H_

#include <cstdint>

#include "geom/dataset.h"
#include "join/join.h"

namespace sjsel {

/// Forward-scan plane-sweep rectangle-intersection join
/// (Preparata & Shamos; the in-memory workhorse used inside PBSM and for
/// the "actual join" ground truth of the evaluation).
///
/// Sorts both inputs by min_x and, advancing the sweep over the merged
/// order, scans forward in the opposite set while x-intervals overlap,
/// testing y-overlap per candidate. O((N1+N2) log(N1+N2) + candidates).
uint64_t PlaneSweepJoinCount(const Dataset& a, const Dataset& b);

/// Emitting variant of PlaneSweepJoinCount. Pair indices refer to the
/// original (unsorted) dataset positions.
void PlaneSweepJoin(const Dataset& a, const Dataset& b,
                    const PairCallback& emit);

}  // namespace sjsel

#endif  // SJSEL_JOIN_PLANE_SWEEP_H_
