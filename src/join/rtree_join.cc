#include "join/rtree_join.h"

#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace sjsel {
namespace {

using Node = RTree::Node;

template <typename Emit>
void JoinNodes(const Node& na, const Node& nb, const Rect& window,
               Emit&& emit) {
  // Leaf x leaf: test entry pairs inside the intersection window.
  if (na.is_leaf && nb.is_leaf) {
    for (size_t i = 0; i < na.rects.size(); ++i) {
      const Rect& ra = na.rects[i];
      if (!ra.Intersects(window)) continue;
      for (size_t j = 0; j < nb.rects.size(); ++j) {
        if (ra.Intersects(nb.rects[j])) emit(na.ids[i], nb.ids[j]);
      }
    }
    return;
  }
  // Descend the deeper (or the only internal) side.
  const bool descend_a =
      !na.is_leaf && (nb.is_leaf || na.level >= nb.level);
  if (descend_a) {
    for (size_t i = 0; i < na.rects.size(); ++i) {
      if (!na.rects[i].Intersects(window)) continue;
      const Rect child_window = na.rects[i].Intersection(window);
      JoinNodes(*na.children[i], nb, child_window, emit);
    }
  } else {
    for (size_t j = 0; j < nb.rects.size(); ++j) {
      if (!nb.rects[j].Intersects(window)) continue;
      const Rect child_window = nb.rects[j].Intersection(window);
      JoinNodes(na, *nb.children[j], child_window, emit);
    }
  }
}

template <typename Emit>
void JoinImpl(const RTree& a, const RTree& b, Emit&& emit) {
  if (a.size() == 0 || b.size() == 0) return;
  const Node* ra = a.root();
  const Node* rb = b.root();
  const Rect window = ra->ComputeMbr().Intersection(rb->ComputeMbr());
  if (window.IsEmpty()) return;
  JoinNodes(*ra, *rb, window, emit);
}

}  // namespace

uint64_t RTreeJoinCount(const RTree& a, const RTree& b) {
  SJSEL_TRACE_SPAN("join.rtree", "n_a=%zu n_b=%zu threads=1",
                   static_cast<size_t>(a.size()),
                   static_cast<size_t>(b.size()));
  SJSEL_METRIC_INC("join.rtree.runs");
  uint64_t count = 0;
  JoinImpl(a, b, [&count](int64_t, int64_t) { ++count; });
  SJSEL_METRIC_ADD("join.rtree.pairs", count);
  return count;
}

namespace {

// A unit of parallel join work: one pair of subtrees plus the window their
// comparisons are restricted to.
struct SubtreeTask {
  const Node* na;
  const Node* nb;
  Rect window;
};

// Splits the root-level node pair into the cross product of intersecting
// child pairs, descending only the deeper side when heights differ (the
// same rule JoinNodes applies).
std::vector<SubtreeTask> TopLevelTasks(const Node& ra, const Node& rb,
                                       const Rect& window) {
  std::vector<SubtreeTask> tasks;
  const bool descend_a = !ra.is_leaf && (rb.is_leaf || ra.level >= rb.level);
  const bool descend_b = !rb.is_leaf && (ra.is_leaf || rb.level >= ra.level);
  if (descend_a && descend_b) {
    for (size_t i = 0; i < ra.rects.size(); ++i) {
      if (!ra.rects[i].Intersects(window)) continue;
      const Rect wa = ra.rects[i].Intersection(window);
      for (size_t j = 0; j < rb.rects.size(); ++j) {
        if (!rb.rects[j].Intersects(wa)) continue;
        tasks.push_back({ra.children[i].get(), rb.children[j].get(),
                         rb.rects[j].Intersection(wa)});
      }
    }
  } else if (descend_a) {
    for (size_t i = 0; i < ra.rects.size(); ++i) {
      if (!ra.rects[i].Intersects(window)) continue;
      tasks.push_back({ra.children[i].get(), &rb,
                       ra.rects[i].Intersection(window)});
    }
  } else if (descend_b) {
    for (size_t j = 0; j < rb.rects.size(); ++j) {
      if (!rb.rects[j].Intersects(window)) continue;
      tasks.push_back({&ra, rb.children[j].get(),
                       rb.rects[j].Intersection(window)});
    }
  }
  return tasks;
}

}  // namespace

uint64_t RTreeJoinCount(const RTree& a, const RTree& b, int threads) {
  if (threads <= 1) return RTreeJoinCount(a, b);
  if (a.size() == 0 || b.size() == 0) return 0;
  const Node* ra = a.root();
  const Node* rb = b.root();
  const Rect window = ra->ComputeMbr().Intersection(rb->ComputeMbr());
  if (window.IsEmpty()) return 0;
  if (ra->is_leaf && rb->is_leaf) {
    // Two leaf roots: nothing to fan out over.
    return RTreeJoinCount(a, b);
  }

  // The delegating early-exits above are counted by the serial overload;
  // only the genuine fan-out path is instrumented here, so one logical
  // join never books join.rtree.runs twice.
  SJSEL_TRACE_SPAN("join.rtree", "n_a=%zu n_b=%zu threads=%d",
                   static_cast<size_t>(a.size()),
                   static_cast<size_t>(b.size()), threads);
  SJSEL_METRIC_INC("join.rtree.runs");
  const std::vector<SubtreeTask> tasks = TopLevelTasks(*ra, *rb, window);
  std::vector<uint64_t> counts(tasks.size(), 0);
  ThreadPool pool(threads);
  ParallelFor(&pool, static_cast<int64_t>(tasks.size()), 1,
              [&](int64_t, int64_t begin, int64_t) {
                const SubtreeTask& task = tasks[static_cast<size_t>(begin)];
                uint64_t local = 0;
                JoinNodes(*task.na, *task.nb, task.window,
                          [&local](int64_t, int64_t) { ++local; });
                counts[static_cast<size_t>(begin)] = local;
              });
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  SJSEL_METRIC_ADD("join.rtree.pairs", total);
  return total;
}

namespace {

void JoinNodesWithStats(const Node& na, const Node& nb, const Rect& window,
                        RTreeJoinStats* stats) {
  if (na.is_leaf && nb.is_leaf) {
    ++stats->leaf_pairs_visited;
    for (size_t i = 0; i < na.rects.size(); ++i) {
      const Rect& ra = na.rects[i];
      if (!ra.Intersects(window)) continue;
      for (size_t j = 0; j < nb.rects.size(); ++j) {
        ++stats->entry_comparisons;
        if (ra.Intersects(nb.rects[j])) ++stats->pairs;
      }
    }
    return;
  }
  ++stats->node_pairs_visited;
  const bool descend_a = !na.is_leaf && (nb.is_leaf || na.level >= nb.level);
  if (descend_a) {
    for (size_t i = 0; i < na.rects.size(); ++i) {
      ++stats->entry_comparisons;
      if (!na.rects[i].Intersects(window)) continue;
      JoinNodesWithStats(*na.children[i], nb, na.rects[i].Intersection(window),
                         stats);
    }
  } else {
    for (size_t j = 0; j < nb.rects.size(); ++j) {
      ++stats->entry_comparisons;
      if (!nb.rects[j].Intersects(window)) continue;
      JoinNodesWithStats(na, *nb.children[j], nb.rects[j].Intersection(window),
                         stats);
    }
  }
}

}  // namespace

RTreeJoinStats RTreeJoinCountWithStats(const RTree& a, const RTree& b) {
  RTreeJoinStats stats;
  if (a.size() == 0 || b.size() == 0) return stats;
  const Rect window =
      a.root()->ComputeMbr().Intersection(b.root()->ComputeMbr());
  if (window.IsEmpty()) return stats;
  JoinNodesWithStats(*a.root(), *b.root(), window, &stats);
  return stats;
}

void RTreeJoin(const RTree& a, const RTree& b, const PairCallback& emit) {
  JoinImpl(a, b, [&emit](int64_t x, int64_t y) { emit(x, y); });
}

}  // namespace sjsel
