#include "join/plane_sweep.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "join/sweep_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sjsel {
namespace {

// Sorts dataset positions by min_x and gathers the geometry into SoA
// layout for the vectorized sweep.
sweep::SweepSoa SortedByMinX(const Dataset& ds) {
  std::vector<int64_t> order(ds.size());
  std::iota(order.begin(), order.end(), int64_t{0});
  std::sort(order.begin(), order.end(), [&ds](int64_t a, int64_t b) {
    const double ax = ds[static_cast<size_t>(a)].min_x;
    const double bx = ds[static_cast<size_t>(b)].min_x;
    if (ax != bx) return ax < bx;
    return a < b;  // tie-break on position: emission order is reproducible
  });
  sweep::SweepSoa soa;
  soa.Reserve(ds.size());
  for (int64_t pos : order) soa.Append(ds[static_cast<size_t>(pos)], pos);
  return soa;
}

}  // namespace

uint64_t PlaneSweepJoinCount(const Dataset& a, const Dataset& b) {
  SJSEL_TRACE_SPAN("join.plane_sweep", "n_a=%zu n_b=%zu", a.size(), b.size());
  SJSEL_METRIC_INC("join.plane_sweep.runs");
  const sweep::SweepSoa sa = SortedByMinX(a);
  const sweep::SweepSoa sb = SortedByMinX(b);
  uint64_t count = 0;
  sweep::SoaSweep(sa, sb, [&count](size_t, size_t) { ++count; });
  SJSEL_METRIC_ADD("join.plane_sweep.pairs", count);
  return count;
}

void PlaneSweepJoin(const Dataset& a, const Dataset& b,
                    const PairCallback& emit) {
  SJSEL_TRACE_SPAN("join.plane_sweep", "n_a=%zu n_b=%zu", a.size(), b.size());
  SJSEL_METRIC_INC("join.plane_sweep.runs");
  const sweep::SweepSoa sa = SortedByMinX(a);
  const sweep::SweepSoa sb = SortedByMinX(b);
  sweep::SoaSweep(sa, sb, [&](size_t i, size_t j) {
    emit(sa.id[i], sb.id[j]);
  });
}

}  // namespace sjsel
