#include "join/plane_sweep.h"

#include <algorithm>
#include <vector>

namespace sjsel {
namespace {

struct SweepItem {
  Rect rect;
  int64_t id = 0;
};

std::vector<SweepItem> SortedByMinX(const Dataset& ds) {
  std::vector<SweepItem> items;
  items.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    items.push_back(SweepItem{ds[i], static_cast<int64_t>(i)});
  }
  std::sort(items.begin(), items.end(),
            [](const SweepItem& a, const SweepItem& b) {
              return a.rect.min_x < b.rect.min_x;
            });
  return items;
}

// Core forward-scan sweep. `emit(left_id, right_id)` receives ids in
// (a, b) order regardless of which side triggered the scan.
template <typename Emit>
void Sweep(const std::vector<SweepItem>& a, const std::vector<SweepItem>& b,
           Emit&& emit) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].rect.min_x <= b[j].rect.min_x) {
      const Rect& r = a[i].rect;
      for (size_t k = j; k < b.size() && b[k].rect.min_x <= r.max_x; ++k) {
        const Rect& s = b[k].rect;
        if (r.min_y <= s.max_y && s.min_y <= r.max_y) {
          emit(a[i].id, b[k].id);
        }
      }
      ++i;
    } else {
      const Rect& s = b[j].rect;
      for (size_t k = i; k < a.size() && a[k].rect.min_x <= s.max_x; ++k) {
        const Rect& r = a[k].rect;
        if (r.min_y <= s.max_y && s.min_y <= r.max_y) {
          emit(a[k].id, b[j].id);
        }
      }
      ++j;
    }
  }
}

}  // namespace

uint64_t PlaneSweepJoinCount(const Dataset& a, const Dataset& b) {
  const std::vector<SweepItem> sa = SortedByMinX(a);
  const std::vector<SweepItem> sb = SortedByMinX(b);
  uint64_t count = 0;
  Sweep(sa, sb, [&count](int64_t, int64_t) { ++count; });
  return count;
}

void PlaneSweepJoin(const Dataset& a, const Dataset& b,
                    const PairCallback& emit) {
  const std::vector<SweepItem> sa = SortedByMinX(a);
  const std::vector<SweepItem> sb = SortedByMinX(b);
  Sweep(sa, sb, [&emit](int64_t x, int64_t y) { emit(x, y); });
}

}  // namespace sjsel
