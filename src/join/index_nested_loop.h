#ifndef SJSEL_JOIN_INDEX_NESTED_LOOP_H_
#define SJSEL_JOIN_INDEX_NESTED_LOOP_H_

#include <cstdint>

#include "geom/dataset.h"
#include "join/join.h"
#include "rtree/rtree.h"

namespace sjsel {

/// Index nested loop join: probes the R-tree of the second input once per
/// rectangle of the first. The method of choice when only one side is
/// indexed or the unindexed side is small — the regime where sampling one
/// side and probing with it (the paper's 100/x combos) makes sense.
uint64_t IndexNestedLoopJoinCount(const Dataset& outer, const RTree& inner);

/// Emitting variant; emits (outer position, inner entry id).
void IndexNestedLoopJoin(const Dataset& outer, const RTree& inner,
                         const PairCallback& emit);

}  // namespace sjsel

#endif  // SJSEL_JOIN_INDEX_NESTED_LOOP_H_
