#include "join/distance_join.h"

#include "join/plane_sweep.h"

namespace sjsel {

Dataset ExpandMbrs(const Dataset& ds, double margin) {
  Dataset out(ds.name() + "_expanded");
  out.Reserve(ds.size());
  for (const Rect& r : ds.rects()) {
    out.Add(r.Expanded(margin));
  }
  return out;
}

uint64_t WithinDistanceJoinCount(const Dataset& a, const Dataset& b,
                                 double eps) {
  if (eps < 0.0) return 0;
  return PlaneSweepJoinCount(ExpandMbrs(a, eps), b);
}

void WithinDistanceJoin(const Dataset& a, const Dataset& b, double eps,
                        const PairCallback& emit) {
  if (eps < 0.0) return;
  PlaneSweepJoin(ExpandMbrs(a, eps), b, emit);
}

}  // namespace sjsel
