#ifndef SJSEL_JOIN_SWEEP_COMMON_H_
#define SJSEL_JOIN_SWEEP_COMMON_H_

// The vectorized forward-scan sweep shared by the plane-sweep join and the
// PBSM per-partition join: geometry in SoA layout, candidate runs found
// with the sorted-prefix kernel, intersection tests batched into 64-rect
// bitmasks (src/core/kernels.h). Emission order is exactly the scalar
// forward scan's: ascending scan index within each run.

#include <bit>
#include <cstdint>

#include "core/kernels.h"
#include "geom/rect.h"
#include "geom/soa_dataset.h"
#include "util/aligned.h"

namespace sjsel {
namespace sweep {

/// One sweep input: coordinates in SoA layout sorted by min_x, plus the
/// original dataset position of each row. Reused as scratch across PBSM
/// partitions — Assign overwrites, capacity is kept.
struct SweepSoa {
  AlignedVector<double> min_x, min_y, max_x, max_y;
  std::vector<int64_t> id;

  size_t size() const { return min_x.size(); }

  void Clear() {
    min_x.clear();
    min_y.clear();
    max_x.clear();
    max_y.clear();
    id.clear();
  }

  void Reserve(size_t n) {
    min_x.reserve(n);
    min_y.reserve(n);
    max_x.reserve(n);
    max_y.reserve(n);
    id.reserve(n);
  }

  void Append(const Rect& r, int64_t rect_id) {
    min_x.push_back(r.min_x);
    min_y.push_back(r.min_y);
    max_x.push_back(r.max_x);
    max_y.push_back(r.max_y);
    id.push_back(rect_id);
  }

  SoaSlice Slice() const {
    return SoaSlice{min_x.data(), min_y.data(), max_x.data(), max_y.data(),
                    size()};
  }
};

/// Forward-scan sweep over two min_x-sorted SoA views. Calls
/// emit(i, j) — row indices into `sa` and `sb` — for every intersecting
/// pair (closed-interval convention), in the order the scalar forward scan
/// visits them. The x-axis low bound of every scanned candidate holds by
/// sortedness, so the batched multi-lane Rect::Intersects mask decides
/// exactly the pairs the scalar y-overlap test would. Slice form so PBSM
/// can sweep pre-partitioned runs in place, without per-partition copies.
template <typename Emit>
void SoaSweep(const SoaSlice& sa, const SoaSlice& sb, Emit&& emit) {
  size_t i = 0;
  size_t j = 0;
  while (i < sa.size && j < sb.size) {
    if (sa.min_x[i] <= sb.min_x[j]) {
      const Rect probe = sa.RectAt(i);
      const size_t run = SortedPrefixLeq(sb.min_x, j, sb.size, probe.max_x);
      for (size_t k = j; k < j + run; k += 64) {
        const size_t n = std::min<size_t>(64, j + run - k);
        uint64_t mask = IntersectMask64(sb, k, n, probe);
        while (mask != 0) {
          const unsigned bit = static_cast<unsigned>(std::countr_zero(mask));
          mask &= mask - 1;
          emit(i, k + bit);
        }
      }
      ++i;
    } else {
      const Rect probe = sb.RectAt(j);
      const size_t run = SortedPrefixLeq(sa.min_x, i, sa.size, probe.max_x);
      for (size_t k = i; k < i + run; k += 64) {
        const size_t n = std::min<size_t>(64, i + run - k);
        uint64_t mask = IntersectMask64(sa, k, n, probe);
        while (mask != 0) {
          const unsigned bit = static_cast<unsigned>(std::countr_zero(mask));
          mask &= mask - 1;
          emit(k + bit, j);
        }
      }
      ++j;
    }
  }
}

/// Owning-buffer convenience overload.
template <typename Emit>
void SoaSweep(const SweepSoa& a, const SweepSoa& b, Emit&& emit) {
  SoaSweep(a.Slice(), b.Slice(), emit);
}

}  // namespace sweep
}  // namespace sjsel

#endif  // SJSEL_JOIN_SWEEP_COMMON_H_
