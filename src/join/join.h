#ifndef SJSEL_JOIN_JOIN_H_
#define SJSEL_JOIN_JOIN_H_

#include <cstdint>
#include <functional>

namespace sjsel {

/// Receives one result pair of a spatial join: the indices of the
/// intersecting rectangles in the first and second input dataset.
using PairCallback = std::function<void(int64_t, int64_t)>;

}  // namespace sjsel

#endif  // SJSEL_JOIN_JOIN_H_
