#ifndef SJSEL_JOIN_DISTANCE_JOIN_H_
#define SJSEL_JOIN_DISTANCE_JOIN_H_

#include <cstdint>

#include "geom/dataset.h"
#include "join/join.h"

namespace sjsel {

/// A copy of `ds` with every MBR grown by `margin` on each side. The
/// standard reduction for distance predicates: two MBRs are within
/// Chebyshev distance eps iff one of them expanded by eps intersects the
/// other.
Dataset ExpandMbrs(const Dataset& ds, double margin);

/// Exact within-distance join on MBRs: pairs with Chebyshev (L-infinity)
/// distance <= eps. This is the filter step of an epsilon-distance spatial
/// join; for Euclidean predicates it is the usual superset filter that the
/// refinement step then prunes. Implemented by expanding the first input
/// and running the plane-sweep intersection join.
uint64_t WithinDistanceJoinCount(const Dataset& a, const Dataset& b,
                                 double eps);

/// Emitting variant of WithinDistanceJoinCount.
void WithinDistanceJoin(const Dataset& a, const Dataset& b, double eps,
                        const PairCallback& emit);

}  // namespace sjsel

#endif  // SJSEL_JOIN_DISTANCE_JOIN_H_
