#include "join/nested_loop.h"

namespace sjsel {

uint64_t NestedLoopJoinCount(const Dataset& a, const Dataset& b) {
  uint64_t count = 0;
  for (const Rect& ra : a.rects()) {
    for (const Rect& rb : b.rects()) {
      if (ra.Intersects(rb)) ++count;
    }
  }
  return count;
}

void NestedLoopJoin(const Dataset& a, const Dataset& b,
                    const PairCallback& emit) {
  const auto& ra = a.rects();
  const auto& rb = b.rects();
  for (size_t i = 0; i < ra.size(); ++i) {
    for (size_t j = 0; j < rb.size(); ++j) {
      if (ra[i].Intersects(rb[j])) {
        emit(static_cast<int64_t>(i), static_cast<int64_t>(j));
      }
    }
  }
}

}  // namespace sjsel
