#include "join/pbsm.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "join/sweep_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace sjsel {
namespace {

struct PartitionGrid {
  Rect extent;
  int p = 1;  // partitions per axis
  double cell_w = 0.0;
  double cell_h = 0.0;

  int CellX(double x) const { return Clamp((x - extent.min_x) / cell_w); }
  int CellY(double y) const { return Clamp((y - extent.min_y) / cell_h); }

  int Clamp(double t) const {
    int c = static_cast<int>(std::floor(t));
    if (c < 0) c = 0;
    if (c >= p) c = p - 1;
    return c;
  }

  // True if cell (cx, cy) owns point `pt` under the half-open convention
  // (the last row/column is closed so boundary-max points have an owner).
  bool Owns(int cx, int cy, const Point& pt) const {
    return CellX(pt.x) == cx && CellY(pt.y) == cy;
  }
};

struct IndexedRect {
  Rect rect;
  int64_t id = 0;
};

// Buckets every rectangle of `ds` into each partition it overlaps. A
// first pass counts per-partition occupancy so each bucket is reserved
// exactly once — no push_back growth reallocations on large inputs.
std::vector<std::vector<IndexedRect>> Distribute(const Dataset& ds,
                                                 const PartitionGrid& grid) {
  const size_t num_cells = static_cast<size_t>(grid.p) * grid.p;
  std::vector<uint32_t> counts(num_cells, 0);
  for (size_t i = 0; i < ds.size(); ++i) {
    const Rect& r = ds[i];
    const int x0 = grid.CellX(r.min_x);
    const int x1 = grid.CellX(r.max_x);
    const int y0 = grid.CellY(r.min_y);
    const int y1 = grid.CellY(r.max_y);
    for (int cy = y0; cy <= y1; ++cy) {
      for (int cx = x0; cx <= x1; ++cx) {
        ++counts[static_cast<size_t>(cy) * grid.p + cx];
      }
    }
  }

  std::vector<std::vector<IndexedRect>> cells(num_cells);
  for (size_t c = 0; c < num_cells; ++c) {
    if (counts[c] > 0) cells[c].reserve(counts[c]);
  }
  for (size_t i = 0; i < ds.size(); ++i) {
    const Rect& r = ds[i];
    const int x0 = grid.CellX(r.min_x);
    const int x1 = grid.CellX(r.max_x);
    const int y0 = grid.CellY(r.min_y);
    const int y1 = grid.CellY(r.max_y);
    for (int cy = y0; cy <= y1; ++cy) {
      for (int cx = x0; cx <= x1; ++cx) {
        cells[static_cast<size_t>(cy) * grid.p + cx].push_back(
            IndexedRect{r, static_cast<int64_t>(i)});
      }
    }
  }
  return cells;
}

// Per-worker scratch: the two SoA sweep inputs, reused across every
// partition a worker block processes (capacity survives Assign).
struct PartitionScratch {
  sweep::SweepSoa a;
  sweep::SweepSoa b;
};

// Sorts a partition's rects by min_x (ties broken by dataset position, so
// the order is implementation-independent) into the scratch SoA buffers.
void AssignSorted(std::vector<IndexedRect>& items, sweep::SweepSoa* out) {
  std::sort(items.begin(), items.end(),
            [](const IndexedRect& a, const IndexedRect& b) {
              if (a.rect.min_x != b.rect.min_x) {
                return a.rect.min_x < b.rect.min_x;
              }
              return a.id < b.id;
            });
  out->Clear();
  out->Reserve(items.size());
  for (const IndexedRect& item : items) out->Append(item.rect, item.id);
}

// Sweeps one partition pair with the vectorized SoA sweep and applies the
// reference-point de-duplication: only the partition containing the
// lower-left corner of the intersection reports a pair.
template <typename Emit>
void JoinPartition(std::vector<IndexedRect>& pa, std::vector<IndexedRect>& pb,
                   const PartitionGrid& grid, int cx, int cy,
                   PartitionScratch* scratch, Emit&& emit) {
  AssignSorted(pa, &scratch->a);
  AssignSorted(pb, &scratch->b);
  const sweep::SweepSoa& sa = scratch->a;
  const sweep::SweepSoa& sb = scratch->b;
  sweep::SoaSweep(sa, sb, [&](size_t i, size_t j) {
    const Point ref{std::max(sa.min_x[i], sb.min_x[j]),
                    std::max(sa.min_y[i], sb.min_y[j])};
    if (!grid.Owns(cx, cy, ref)) return;
    emit(sa.id[i], sb.id[j]);
  });
}

// Joins every non-empty partition pair, serially in partition order or —
// with options.threads > 1 — concurrently with one result `Slot` per
// partition (default-constructed), folded in partition order by `fold`.
// PartitionEmit is called as emit(slot, a_id, b_id); Fold as fold(slot).
template <typename Slot, typename PartitionEmit, typename Fold>
void PbsmJoinImpl(const Dataset& a, const Dataset& b, PbsmOptions options,
                  PartitionEmit&& emit, Fold&& fold) {
  if (a.empty() || b.empty()) return;
  PartitionGrid grid;
  grid.extent = a.ComputeExtent();
  grid.extent.Extend(b.ComputeExtent());
  grid.p = PbsmPickPartitions(a.size(), b.size(), options.partitions_per_axis);
  grid.cell_w = grid.extent.width() / grid.p;
  grid.cell_h = grid.extent.height() / grid.p;
  if (grid.cell_w <= 0.0 || grid.cell_h <= 0.0) grid.p = 1;

  auto cells_a = Distribute(a, grid);
  auto cells_b = Distribute(b, grid);

  // The work list: non-empty partitions only, in partition order.
  std::vector<size_t> active;
  for (size_t idx = 0; idx < cells_a.size(); ++idx) {
    if (!cells_a[idx].empty() && !cells_b[idx].empty()) active.push_back(idx);
  }

  std::vector<Slot> slots(active.size());
  const auto join_one = [&](size_t task, PartitionScratch* scratch) {
    const size_t idx = active[task];
    const int cx = static_cast<int>(idx) % grid.p;
    const int cy = static_cast<int>(idx) / grid.p;
    Slot& slot = slots[task];
    JoinPartition(cells_a[idx], cells_b[idx], grid, cx, cy, scratch,
                  [&slot, &emit](int64_t x, int64_t y) { emit(slot, x, y); });
  };

  if (options.threads > 1 && active.size() > 1) {
    // Chunk several partitions per block so each worker invocation reuses
    // one scratch across its partitions; slots stay per task, so results
    // and emit order are unchanged by the chunking.
    const int64_t grain = std::max<int64_t>(
        1, static_cast<int64_t>(active.size()) / (4 * options.threads));
    ThreadPool pool(options.threads);
    ParallelFor(&pool, static_cast<int64_t>(active.size()), grain,
                [&](int64_t, int64_t begin, int64_t end) {
                  PartitionScratch scratch;
                  for (int64_t task = begin; task < end; ++task) {
                    join_one(static_cast<size_t>(task), &scratch);
                  }
                });
  } else {
    PartitionScratch scratch;
    for (size_t task = 0; task < active.size(); ++task) {
      join_one(task, &scratch);
    }
  }

  // Deterministic combine: partition order, regardless of which worker
  // finished first.
  for (size_t task = 0; task < active.size(); ++task) fold(slots[task]);
}

}  // namespace

int PbsmPickPartitions(size_t n1, size_t n2, int requested) {
  if (requested > 0) return std::min(requested, kPbsmMaxPartitionsPerAxis);
  const double total = static_cast<double>(n1 + n2);
  const int p = static_cast<int>(
      std::ceil(std::sqrt(total / kPbsmTargetRectsPerPartition)));
  return std::clamp(p, 1, kPbsmMaxPartitionsPerAxis);
}

uint64_t PbsmJoinCount(const Dataset& a, const Dataset& b,
                       PbsmOptions options) {
  SJSEL_TRACE_SPAN("join.pbsm", "n_a=%zu n_b=%zu threads=%d", a.size(),
                   b.size(), options.threads);
  SJSEL_METRIC_INC("join.pbsm.runs");
  uint64_t count = 0;
  PbsmJoinImpl<uint64_t>(
      a, b, options, [](uint64_t& slot, int64_t, int64_t) { ++slot; },
      [&count](const uint64_t& slot) { count += slot; });
  SJSEL_METRIC_ADD("join.pbsm.pairs", count);
  return count;
}

void PbsmJoin(const Dataset& a, const Dataset& b, const PairCallback& emit,
              PbsmOptions options) {
  SJSEL_TRACE_SPAN("join.pbsm", "n_a=%zu n_b=%zu threads=%d", a.size(),
                   b.size(), options.threads);
  SJSEL_METRIC_INC("join.pbsm.runs");
  using Pairs = std::vector<std::pair<int64_t, int64_t>>;
  PbsmJoinImpl<Pairs>(
      a, b, options,
      [](Pairs& slot, int64_t x, int64_t y) { slot.emplace_back(x, y); },
      [&emit](const Pairs& slot) {
        for (const auto& [x, y] : slot) emit(x, y);
      });
}

}  // namespace sjsel
