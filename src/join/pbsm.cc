#include "join/pbsm.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace sjsel {
namespace {

struct PartitionGrid {
  Rect extent;
  int p = 1;  // partitions per axis
  double cell_w = 0.0;
  double cell_h = 0.0;

  int CellX(double x) const { return Clamp((x - extent.min_x) / cell_w); }
  int CellY(double y) const { return Clamp((y - extent.min_y) / cell_h); }

  int Clamp(double t) const {
    int c = static_cast<int>(std::floor(t));
    if (c < 0) c = 0;
    if (c >= p) c = p - 1;
    return c;
  }

  // True if cell (cx, cy) owns point `pt` under the half-open convention
  // (the last row/column is closed so boundary-max points have an owner).
  bool Owns(int cx, int cy, const Point& pt) const {
    return CellX(pt.x) == cx && CellY(pt.y) == cy;
  }
};

struct IndexedRect {
  Rect rect;
  int64_t id = 0;
};

int PickPartitions(size_t n1, size_t n2, int requested) {
  if (requested > 0) return std::min(requested, 256);
  const double total = static_cast<double>(n1 + n2);
  int p = static_cast<int>(std::ceil(std::sqrt(total / 1024.0)));
  return std::clamp(p, 1, 256);
}

// Buckets every rectangle of `ds` into each partition it overlaps.
std::vector<std::vector<IndexedRect>> Distribute(const Dataset& ds,
                                                 const PartitionGrid& grid) {
  std::vector<std::vector<IndexedRect>> cells(
      static_cast<size_t>(grid.p) * grid.p);
  for (size_t i = 0; i < ds.size(); ++i) {
    const Rect& r = ds[i];
    const int x0 = grid.CellX(r.min_x);
    const int x1 = grid.CellX(r.max_x);
    const int y0 = grid.CellY(r.min_y);
    const int y1 = grid.CellY(r.max_y);
    for (int cy = y0; cy <= y1; ++cy) {
      for (int cx = x0; cx <= x1; ++cx) {
        cells[static_cast<size_t>(cy) * grid.p + cx].push_back(
            IndexedRect{r, static_cast<int64_t>(i)});
      }
    }
  }
  return cells;
}

template <typename Emit>
void JoinPartition(std::vector<IndexedRect>& pa, std::vector<IndexedRect>& pb,
                   const PartitionGrid& grid, int cx, int cy, Emit&& emit) {
  auto by_min_x = [](const IndexedRect& a, const IndexedRect& b) {
    return a.rect.min_x < b.rect.min_x;
  };
  std::sort(pa.begin(), pa.end(), by_min_x);
  std::sort(pb.begin(), pb.end(), by_min_x);

  // `r` is always from the first input's partition, `s` from the second's.
  auto handle = [&](const IndexedRect& r, const IndexedRect& s) {
    if (!r.rect.Intersects(s.rect)) return;
    // Reference-point de-duplication: only the partition containing the
    // lower-left corner of the intersection reports the pair.
    const Point ref{std::max(r.rect.min_x, s.rect.min_x),
                    std::max(r.rect.min_y, s.rect.min_y)};
    if (!grid.Owns(cx, cy, ref)) return;
    emit(r.id, s.id);
  };

  size_t i = 0;
  size_t j = 0;
  while (i < pa.size() && j < pb.size()) {
    if (pa[i].rect.min_x <= pb[j].rect.min_x) {
      for (size_t k = j; k < pb.size() && pb[k].rect.min_x <= pa[i].rect.max_x;
           ++k) {
        handle(pa[i], pb[k]);
      }
      ++i;
    } else {
      for (size_t k = i; k < pa.size() && pa[k].rect.min_x <= pb[j].rect.max_x;
           ++k) {
        handle(pa[k], pb[j]);
      }
      ++j;
    }
  }
}

// Joins every non-empty partition pair, serially in partition order or —
// with options.threads > 1 — concurrently with one result `Slot` per
// partition (default-constructed), folded in partition order by `fold`.
// PartitionEmit is called as emit(slot, a_id, b_id); Fold as fold(slot).
template <typename Slot, typename PartitionEmit, typename Fold>
void PbsmJoinImpl(const Dataset& a, const Dataset& b, PbsmOptions options,
                  PartitionEmit&& emit, Fold&& fold) {
  if (a.empty() || b.empty()) return;
  PartitionGrid grid;
  grid.extent = a.ComputeExtent();
  grid.extent.Extend(b.ComputeExtent());
  grid.p = PickPartitions(a.size(), b.size(), options.partitions_per_axis);
  grid.cell_w = grid.extent.width() / grid.p;
  grid.cell_h = grid.extent.height() / grid.p;
  if (grid.cell_w <= 0.0 || grid.cell_h <= 0.0) grid.p = 1;

  auto cells_a = Distribute(a, grid);
  auto cells_b = Distribute(b, grid);

  // The work list: non-empty partitions only, in partition order.
  std::vector<size_t> active;
  for (size_t idx = 0; idx < cells_a.size(); ++idx) {
    if (!cells_a[idx].empty() && !cells_b[idx].empty()) active.push_back(idx);
  }

  std::vector<Slot> slots(active.size());
  const auto join_one = [&](size_t task) {
    const size_t idx = active[task];
    const int cx = static_cast<int>(idx) % grid.p;
    const int cy = static_cast<int>(idx) / grid.p;
    Slot& slot = slots[task];
    JoinPartition(cells_a[idx], cells_b[idx], grid, cx, cy,
                  [&slot, &emit](int64_t x, int64_t y) { emit(slot, x, y); });
  };

  if (options.threads > 1 && active.size() > 1) {
    ThreadPool pool(options.threads);
    ParallelFor(&pool, static_cast<int64_t>(active.size()), 1,
                [&](int64_t, int64_t begin, int64_t) {
                  join_one(static_cast<size_t>(begin));
                });
  } else {
    for (size_t task = 0; task < active.size(); ++task) join_one(task);
  }

  // Deterministic combine: partition order, regardless of which worker
  // finished first.
  for (size_t task = 0; task < active.size(); ++task) fold(slots[task]);
}

}  // namespace

uint64_t PbsmJoinCount(const Dataset& a, const Dataset& b,
                       PbsmOptions options) {
  uint64_t count = 0;
  PbsmJoinImpl<uint64_t>(
      a, b, options, [](uint64_t& slot, int64_t, int64_t) { ++slot; },
      [&count](const uint64_t& slot) { count += slot; });
  return count;
}

void PbsmJoin(const Dataset& a, const Dataset& b, const PairCallback& emit,
              PbsmOptions options) {
  using Pairs = std::vector<std::pair<int64_t, int64_t>>;
  PbsmJoinImpl<Pairs>(
      a, b, options,
      [](Pairs& slot, int64_t x, int64_t y) { slot.emplace_back(x, y); },
      [&emit](const Pairs& slot) {
        for (const auto& [x, y] : slot) emit(x, y);
      });
}

}  // namespace sjsel
