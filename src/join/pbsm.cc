#include "join/pbsm.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/kernels.h"
#include "geom/soa_dataset.h"
#include "join/sweep_common.h"
#include "obs/metrics.h"
#include "util/aligned.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace sjsel {
namespace {

struct PartitionGrid {
  Rect extent;
  int p = 1;  // partitions per axis
  double cell_w = 0.0;
  double cell_h = 0.0;

  int CellX(double x) const { return Clamp((x - extent.min_x) / cell_w); }
  int CellY(double y) const { return Clamp((y - extent.min_y) / cell_h); }

  int Clamp(double t) const {
    int c = static_cast<int>(std::floor(t));
    if (c < 0) c = 0;
    if (c >= p) c = p - 1;
    return c;
  }

  // True if cell (cx, cy) owns point `pt` under the half-open convention
  // (the last row/column is closed so boundary-max points have an owner).
  // With one partition ownership is trivial — and cell_w may be zero for a
  // degenerate extent, so the division must not run.
  bool Owns(int cx, int cy, const Point& pt) const {
    if (p == 1) return true;
    return CellX(pt.x) == cx && CellY(pt.y) == cy;
  }
};

// All partitions of one dataset in a single CSR-style SoA block:
// offsets[c] .. offsets[c+1] index the rects overlapping partition c,
// already sorted by (min_x, dataset position). Rects spanning several
// partitions are replicated into each. Built once per dataset, then every
// partition sweep reads its slice in place — no per-partition copies, no
// per-partition sorts.
struct PartitionedSoa {
  std::vector<uint64_t> offsets;  ///< p*p + 1 entries
  AlignedVector<double> min_x, min_y, max_x, max_y;
  std::vector<int64_t> id;  ///< original dataset position per row

  SoaSlice Slice(uint64_t lo, uint64_t hi) const {
    return SoaSlice{min_x.data() + lo, min_y.data() + lo, max_x.data() + lo,
                    max_y.data() + lo, static_cast<size_t>(hi - lo)};
  }
};

// Buckets every rectangle of `ds` into each partition it overlaps, with
// the per-partition runs coming out min_x-sorted: partition cell ranges
// are computed for the whole dataset with the vectorized CellRangeBatch
// kernel (bit-identical to the scalar CellX/CellY arithmetic), one global
// argsort orders rect indices by (min_x, dataset position) — the exact
// comparator the old per-partition sort used — and a stable counting-sort
// fill walks that order, so each partition's slice inherits it.
PartitionedSoa DistributeSorted(const Dataset& ds, const PartitionGrid& grid) {
  const size_t n = ds.size();
  const size_t num_cells = static_cast<size_t>(grid.p) * grid.p;
  const SoaDataset soa = SoaDataset::FromDataset(ds);
  const SoaSlice all = soa.Slice();

  AlignedVector<int32_t> x0(n), y0(n), x1(n), y1(n);
  if (grid.p == 1) {
    // Degenerate extents make cell_w/cell_h zero; every rect lands in the
    // single partition without touching the division.
    std::fill(x0.begin(), x0.end(), 0);
    std::fill(y0.begin(), y0.end(), 0);
    std::fill(x1.begin(), x1.end(), 0);
    std::fill(y1.begin(), y1.end(), 0);
  } else {
    const GridGeom geom{grid.extent.min_x, grid.extent.min_y, grid.cell_w,
                        grid.cell_h, grid.p};
    CellRangeBatch(geom, all, x0.data(), y0.data(), x1.data(), y1.data());
  }

  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (all.min_x[a] != all.min_x[b]) return all.min_x[a] < all.min_x[b];
    return a < b;
  });

  PartitionedSoa out;
  out.offsets.assign(num_cells + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    for (int cy = y0[i]; cy <= y1[i]; ++cy) {
      for (int cx = x0[i]; cx <= x1[i]; ++cx) {
        ++out.offsets[static_cast<size_t>(cy) * grid.p + cx + 1];
      }
    }
  }
  for (size_t c = 0; c < num_cells; ++c) out.offsets[c + 1] += out.offsets[c];
  const size_t total = static_cast<size_t>(out.offsets[num_cells]);
  out.min_x.resize(total);
  out.min_y.resize(total);
  out.max_x.resize(total);
  out.max_y.resize(total);
  out.id.resize(total);
  std::vector<uint64_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (const uint32_t i : order) {
    for (int cy = y0[i]; cy <= y1[i]; ++cy) {
      for (int cx = x0[i]; cx <= x1[i]; ++cx) {
        const size_t c = static_cast<size_t>(cy) * grid.p + cx;
        const size_t pos = static_cast<size_t>(cursor[c]++);
        out.min_x[pos] = all.min_x[i];
        out.min_y[pos] = all.min_y[i];
        out.max_x[pos] = all.max_x[i];
        out.max_y[pos] = all.max_y[i];
        out.id[pos] = static_cast<int64_t>(i);
      }
    }
  }
  return out;
}

// Sweeps one partition pair in place over the CSR slices and applies the
// reference-point de-duplication: only the partition containing the
// lower-left corner of the intersection reports a pair. Read-only on the
// partitioned inputs, so partitions can run concurrently with no scratch.
template <typename Emit>
void JoinPartition(const PartitionedSoa& a, const PartitionedSoa& b,
                   size_t idx, const PartitionGrid& grid, int cx, int cy,
                   Emit&& emit) {
  const SoaSlice sa = a.Slice(a.offsets[idx], a.offsets[idx + 1]);
  const SoaSlice sb = b.Slice(b.offsets[idx], b.offsets[idx + 1]);
  const int64_t* ida = a.id.data() + a.offsets[idx];
  const int64_t* idb = b.id.data() + b.offsets[idx];
  sweep::SoaSweep(sa, sb, [&](size_t i, size_t j) {
    const Point ref{std::max(sa.min_x[i], sb.min_x[j]),
                    std::max(sa.min_y[i], sb.min_y[j])};
    if (!grid.Owns(cx, cy, ref)) return;
    emit(ida[i], idb[j]);
  });
}

// Joins every non-empty partition pair, serially in partition order or —
// with options.threads > 1 — concurrently with one result `Slot` per
// partition (default-constructed), folded in partition order by `fold`.
// PartitionEmit is called as emit(slot, a_id, b_id); Fold as fold(slot).
template <typename Slot, typename PartitionEmit, typename Fold>
void PbsmJoinImpl(const Dataset& a, const Dataset& b, PbsmOptions options,
                  PartitionEmit&& emit, Fold&& fold) {
  if (a.empty() || b.empty()) return;
  PartitionGrid grid;
  grid.extent = a.ComputeExtent();
  grid.extent.Extend(b.ComputeExtent());
  grid.p = PbsmPickPartitions(a.size(), b.size(), options.partitions_per_axis);
  grid.cell_w = grid.extent.width() / grid.p;
  grid.cell_h = grid.extent.height() / grid.p;
  if (grid.cell_w <= 0.0 || grid.cell_h <= 0.0) grid.p = 1;

  const PartitionedSoa pa = DistributeSorted(a, grid);
  const PartitionedSoa pb = DistributeSorted(b, grid);

  // The work list: non-empty partitions only, in partition order.
  const size_t num_cells = static_cast<size_t>(grid.p) * grid.p;
  std::vector<size_t> active;
  for (size_t idx = 0; idx < num_cells; ++idx) {
    if (pa.offsets[idx + 1] > pa.offsets[idx] &&
        pb.offsets[idx + 1] > pb.offsets[idx]) {
      active.push_back(idx);
    }
  }

  std::vector<Slot> slots(active.size());
  const auto join_one = [&](size_t task) {
    const size_t idx = active[task];
    const int cx = static_cast<int>(idx) % grid.p;
    const int cy = static_cast<int>(idx) / grid.p;
    Slot& slot = slots[task];
    JoinPartition(pa, pb, idx, grid, cx, cy,
                  [&slot, &emit](int64_t x, int64_t y) { emit(slot, x, y); });
  };

  if (options.threads > 1 && active.size() > 1) {
    // Workers only read the partitioned inputs and write their own slots,
    // so the block decomposition cannot affect results or emit order.
    const int64_t grain = std::max<int64_t>(
        1, static_cast<int64_t>(active.size()) / (4 * options.threads));
    ThreadPool pool(options.threads);
    ParallelFor(&pool, static_cast<int64_t>(active.size()), grain,
                [&](int64_t, int64_t begin, int64_t end) {
                  for (int64_t task = begin; task < end; ++task) {
                    join_one(static_cast<size_t>(task));
                  }
                });
  } else {
    for (size_t task = 0; task < active.size(); ++task) {
      join_one(task);
    }
  }

  // Deterministic combine: partition order, regardless of which worker
  // finished first.
  for (size_t task = 0; task < active.size(); ++task) fold(slots[task]);
}

}  // namespace

int PbsmPickPartitions(size_t n1, size_t n2, int requested) {
  if (requested > 0) return std::min(requested, kPbsmMaxPartitionsPerAxis);
  const double total = static_cast<double>(n1 + n2);
  const int p = static_cast<int>(
      std::ceil(std::sqrt(total / kPbsmTargetRectsPerPartition)));
  return std::clamp(p, 1, kPbsmMaxPartitionsPerAxis);
}

uint64_t PbsmJoinCount(const Dataset& a, const Dataset& b,
                       PbsmOptions options) {
  SJSEL_TRACE_SPAN("join.pbsm", "n_a=%zu n_b=%zu threads=%d", a.size(),
                   b.size(), options.threads);
  SJSEL_METRIC_INC("join.pbsm.runs");
  uint64_t count = 0;
  PbsmJoinImpl<uint64_t>(
      a, b, options, [](uint64_t& slot, int64_t, int64_t) { ++slot; },
      [&count](const uint64_t& slot) { count += slot; });
  SJSEL_METRIC_ADD("join.pbsm.pairs", count);
  return count;
}

void PbsmJoin(const Dataset& a, const Dataset& b, const PairCallback& emit,
              PbsmOptions options) {
  SJSEL_TRACE_SPAN("join.pbsm", "n_a=%zu n_b=%zu threads=%d", a.size(),
                   b.size(), options.threads);
  SJSEL_METRIC_INC("join.pbsm.runs");
  using Pairs = std::vector<std::pair<int64_t, int64_t>>;
  PbsmJoinImpl<Pairs>(
      a, b, options,
      [](Pairs& slot, int64_t x, int64_t y) { slot.emplace_back(x, y); },
      [&emit](const Pairs& slot) {
        for (const auto& [x, y] : slot) emit(x, y);
      });
}

}  // namespace sjsel
