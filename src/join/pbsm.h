#ifndef SJSEL_JOIN_PBSM_H_
#define SJSEL_JOIN_PBSM_H_

#include <cstdint>

#include "geom/dataset.h"
#include "join/join.h"

namespace sjsel {

/// Hard cap on partitions per axis (so the partition table tops out at
/// 256 x 256 = 65536 cells regardless of input size or caller request).
inline constexpr int kPbsmMaxPartitionsPerAxis = 256;

/// Average number of rectangles (both inputs combined) the automatic
/// partition picker aims to land in each partition: p = ceil(sqrt((N1 +
/// N2) / target)), so partition-local sweeps stay cache-resident without
/// drowning in per-partition overhead.
inline constexpr double kPbsmTargetRectsPerPartition = 1024.0;

/// Partitions-per-axis heuristic: a positive `requested` is honored up to
/// kPbsmMaxPartitionsPerAxis; otherwise the occupancy target above picks,
/// clamped to [1, kPbsmMaxPartitionsPerAxis]. Exposed for testing.
int PbsmPickPartitions(size_t n1, size_t n2, int requested);

/// Options for the partition-based join.
struct PbsmOptions {
  /// Grid partitions per axis; 0 engages PbsmPickPartitions' occupancy
  /// heuristic.
  int partitions_per_axis = 0;
  /// Worker threads joining partitions concurrently; <= 1 runs serially.
  /// Partitions are independent after distribution and per-partition
  /// results are combined in partition order, so the count — and the emit
  /// order of PbsmJoin — is identical for every thread count.
  int threads = 1;
};

/// Partition Based Spatial Merge join (Patel & DeWitt, SIGMOD'96 — one of
/// the filter-step algorithms the paper's related work builds on).
///
/// Replicates every rectangle into each grid partition it overlaps, joins
/// each partition independently, and avoids duplicate results with the
/// reference-point method: a pair is reported only by the partition that
/// contains the lower-left corner of the pair's intersection rectangle.
uint64_t PbsmJoinCount(const Dataset& a, const Dataset& b,
                       PbsmOptions options = PbsmOptions());

/// Emitting variant of PbsmJoinCount.
void PbsmJoin(const Dataset& a, const Dataset& b, const PairCallback& emit,
              PbsmOptions options = PbsmOptions());

}  // namespace sjsel

#endif  // SJSEL_JOIN_PBSM_H_
