#include "join/index_nested_loop.h"

namespace sjsel {

uint64_t IndexNestedLoopJoinCount(const Dataset& outer, const RTree& inner) {
  uint64_t count = 0;
  for (const Rect& r : outer.rects()) {
    count += inner.CountRange(r);
  }
  return count;
}

void IndexNestedLoopJoin(const Dataset& outer, const RTree& inner,
                         const PairCallback& emit) {
  for (size_t i = 0; i < outer.size(); ++i) {
    inner.RangeQuery(outer[i], [&emit, i](int64_t id, const Rect&) {
      emit(static_cast<int64_t>(i), id);
    });
  }
}

}  // namespace sjsel
