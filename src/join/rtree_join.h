#ifndef SJSEL_JOIN_RTREE_JOIN_H_
#define SJSEL_JOIN_RTREE_JOIN_H_

#include <cstdint>

#include "join/join.h"
#include "rtree/rtree.h"

namespace sjsel {

/// Synchronized-traversal R-tree spatial join (Brinkhoff, Kriegel & Seeger,
/// SIGMOD'93) — the join the paper performs both on the full datasets (the
/// "actual join" baseline) and on the samples inside the sampling
/// estimators.
///
/// Walks both trees in lock step, pruning node pairs whose MBRs are
/// disjoint and restricting entry tests to the intersection window of the
/// current node pair. Trees of different heights are handled by descending
/// the taller tree against a fixed node of the shorter one.
///
/// Thread-safety: joins only read the trees, so any number of joins may
/// run concurrently over the same (immutable) trees.
uint64_t RTreeJoinCount(const RTree& a, const RTree& b);

/// Multi-threaded count: expands the roots into their cross product of
/// intersecting child-subtree pairs and joins those pairs on `threads`
/// workers, each into its own counter; counters are summed in task order.
/// Counts are integers, so the result equals the serial count exactly for
/// every thread count. `threads` <= 1, a leaf root, or a tiny task list
/// falls back to the serial join.
uint64_t RTreeJoinCount(const RTree& a, const RTree& b, int threads);

/// Emitting variant; ids are the entry ids stored in the trees.
void RTreeJoin(const RTree& a, const RTree& b, const PairCallback& emit);

/// Work counters of one R-tree join execution — the quantities the join
/// cost models of Huang et al. [12] and Theodoridis et al. [25] predict.
struct RTreeJoinStats {
  uint64_t pairs = 0;                 ///< result cardinality
  uint64_t node_pairs_visited = 0;    ///< internal node pairs expanded
  uint64_t leaf_pairs_visited = 0;    ///< leaf/leaf pairs compared
  uint64_t entry_comparisons = 0;     ///< rect-rect tests performed
};

/// Instrumented join: same result as RTreeJoinCount plus work counters.
RTreeJoinStats RTreeJoinCountWithStats(const RTree& a, const RTree& b);

}  // namespace sjsel

#endif  // SJSEL_JOIN_RTREE_JOIN_H_
