#ifndef SJSEL_GEOM_DATASET_H_
#define SJSEL_GEOM_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/rect.h"
#include "util/result.h"
#include "util/status.h"

namespace sjsel {

/// A spatial dataset: a bag of MBRs over a common extent. This is the only
/// data representation the paper's filter-step techniques consume — real
/// point/polyline/polygon geometry is abstracted by its bounding box before
/// any estimator or join sees it.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::string name) : name_(std::move(name)) {}
  Dataset(std::string name, std::vector<Rect> rects)
      : name_(std::move(name)), rects_(std::move(rects)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Rect>& rects() const { return rects_; }
  std::vector<Rect>& mutable_rects() { return rects_; }

  size_t size() const { return rects_.size(); }
  bool empty() const { return rects_.empty(); }
  const Rect& operator[](size_t i) const { return rects_[i]; }

  void Add(const Rect& r) { rects_.push_back(r); }
  void Reserve(size_t n) { rects_.reserve(n); }

  /// The tight bounding box of all member rectangles (Rect::Empty() for an
  /// empty dataset).
  Rect ComputeExtent() const;

  /// Serializes to the sjsel binary dataset format (magic, name, count,
  /// rects, CRC trailer).
  Status Save(const std::string& path) const;

  /// Loads a dataset written by Save(), validating magic and CRC.
  static Result<Dataset> Load(const std::string& path);

  /// Writes "min_x,min_y,max_x,max_y" CSV rows (with a header line).
  Status SaveCsv(const std::string& path) const;

  /// Parses the CSV format written by SaveCsv().
  static Result<Dataset> LoadCsv(const std::string& path,
                                 const std::string& name);

 private:
  std::string name_;
  std::vector<Rect> rects_;
};

}  // namespace sjsel

#endif  // SJSEL_GEOM_DATASET_H_
