#include "geom/rect.h"

#include <array>
#include <cstdio>
#include <limits>

namespace sjsel {

Rect Rect::Empty() {
  const double inf = std::numeric_limits<double>::infinity();
  return Rect(inf, inf, -inf, -inf);
}

std::string Rect::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%g,%g]x[%g,%g]", min_x, max_x, min_y,
                max_y);
  return buf;
}

namespace {

std::array<Point, 4> Corners(const Rect& r) {
  return {Point{r.min_x, r.min_y}, Point{r.max_x, r.min_y},
          Point{r.min_x, r.max_y}, Point{r.max_x, r.max_y}};
}

// Corners of `a` lying inside `b`.
int CornersInside(const Rect& a, const Rect& b) {
  int n = 0;
  for (const Point& p : Corners(a)) {
    if (b.Contains(p)) ++n;
  }
  return n;
}

}  // namespace

int CountCornerContainments(const Rect& a, const Rect& b) {
  return CornersInside(a, b) + CornersInside(b, a);
}

int CountEdgeCrossings(const Rect& a, const Rect& b) {
  // Horizontal edges of `h` against vertical edges of `v`.
  auto crossings = [](const Rect& h, const Rect& v) {
    int n = 0;
    for (double y : {h.min_y, h.max_y}) {
      for (double x : {v.min_x, v.max_x}) {
        const bool x_on_h = h.min_x <= x && x <= h.max_x;
        const bool y_on_v = v.min_y <= y && y <= v.max_y;
        if (x_on_h && y_on_v) ++n;
      }
    }
    return n;
  };
  return crossings(a, b) + crossings(b, a);
}

IntersectionKind ClassifyIntersection(const Rect& a, const Rect& b) {
  if (!a.Intersects(b)) return IntersectionKind::kDisjoint;
  if (a.Contains(b) || b.Contains(a)) return IntersectionKind::kContainment;
  const int a_in_b = CornersInside(a, b);
  const int b_in_a = CornersInside(b, a);
  if (a_in_b == 0 && b_in_a == 0) return IntersectionKind::kEdgeThrough;
  if (a_in_b > 0 && b_in_a > 0) return IntersectionKind::kCornerOverlap;
  return IntersectionKind::kPartialContain;
}

}  // namespace sjsel
