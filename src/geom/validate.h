#ifndef SJSEL_GEOM_VALIDATE_H_
#define SJSEL_GEOM_VALIDATE_H_

#include <cstdint>
#include <string>

#include "geom/dataset.h"
#include "geom/rect.h"
#include "util/result.h"

namespace sjsel {

/// What to do with defective geometry found during validation.
enum class ValidationPolicy {
  /// Fail the whole operation on the first defect (strict ingestion).
  kReject,
  /// Repair what is repairable: inverted rects get min/max swapped,
  /// out-of-extent rects are clamped into the extent. Non-finite
  /// coordinates cannot be repaired and are quarantined even here.
  kClampToExtent,
  /// Drop every defective rect and count it (serve-what-we-can default).
  kQuarantine,
};

/// "reject" / "clamp" / "quarantine".
const char* ValidationPolicyName(ValidationPolicy policy);

/// Parses a policy name as spelled by ValidationPolicyName.
Result<ValidationPolicy> ParseValidationPolicy(const std::string& name);

/// Defect classes, in severity order. A rect has the most severe defect
/// that applies (NaN anywhere trumps inversion trumps placement).
enum class RectDefect : uint8_t {
  kNone = 0,
  kNonFinite,    ///< any coordinate NaN or +-Inf
  kInverted,     ///< min > max on either axis (includes Rect::Empty())
  kOutOfExtent,  ///< finite, well-formed, but not contained in the extent
};

/// Classifies one rect. An empty `extent` (Rect::Empty()) skips the
/// containment check — structural validation only.
RectDefect ClassifyRect(const Rect& r, const Rect& extent);

/// Tallies of what a validation pass saw and did. Surfaced through
/// EstimateResult so callers of the guarded estimator can see how much of
/// the input was repaired or dropped before the estimate they are trusting.
struct RobustnessCounters {
  uint64_t checked = 0;        ///< rects examined
  uint64_t non_finite = 0;     ///< defects by class
  uint64_t inverted = 0;
  uint64_t out_of_extent = 0;
  uint64_t clamped = 0;        ///< repaired in place (kClampToExtent)
  uint64_t quarantined = 0;    ///< dropped from the output

  uint64_t Defects() const { return non_finite + inverted + out_of_extent; }
  void Merge(const RobustnessCounters& other);
  /// Machine-readable "checked=N non_finite=N inverted=N out_of_extent=N
  /// clamped=N quarantined=N".
  std::string ToString() const;
};

/// Validates `ds` against `extent` under `policy` and returns the dataset
/// the estimators should actually consume.
///
/// - A clean dataset passes through unchanged (same rects, same order), so
///   validation never perturbs results on well-formed input.
/// - kReject returns InvalidArgument naming the first defective rect's
///   index and defect class.
/// - kClampToExtent repairs inverted/out-of-extent rects (counted in
///   `clamped`) and quarantines non-finite ones.
/// - kQuarantine drops every defective rect (counted in `quarantined`).
/// - An out-of-extent rect that does not even intersect the extent cannot
///   be meaningfully clamped and is quarantined under both lenient
///   policies.
///
/// `extent` may be Rect::Empty() to skip containment checks (structural
/// validation only, e.g. at dataset load before any extent is known).
/// `counters`, when non-null, receives the tallies (always written).
Result<Dataset> ValidateDataset(const Dataset& ds, const Rect& extent,
                                ValidationPolicy policy,
                                RobustnessCounters* counters);

}  // namespace sjsel

#endif  // SJSEL_GEOM_VALIDATE_H_
