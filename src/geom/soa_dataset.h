#ifndef SJSEL_GEOM_SOA_DATASET_H_
#define SJSEL_GEOM_SOA_DATASET_H_

#include <cstddef>

#include "geom/dataset.h"
#include "geom/rect.h"
#include "util/aligned.h"

namespace sjsel {

/// A non-owning view over four parallel coordinate arrays — the unit every
/// batch kernel consumes. Produced by SoaDataset::Slice (or hand-assembled
/// over scratch buffers, as the join sweeps do).
struct SoaSlice {
  const double* min_x = nullptr;
  const double* min_y = nullptr;
  const double* max_x = nullptr;
  const double* max_y = nullptr;
  std::size_t size = 0;

  Rect RectAt(std::size_t i) const {
    return Rect(min_x[i], min_y[i], max_x[i], max_y[i]);
  }

  /// The sub-view [begin, begin + count).
  SoaSlice Sub(std::size_t begin, std::size_t count) const {
    return SoaSlice{min_x + begin, min_y + begin, max_x + begin,
                    max_y + begin, count};
  }
};

/// Structure-of-arrays geometry layout: the same bag of MBRs a Dataset
/// holds, stored as four cache-aligned coordinate arrays instead of an
/// array of Rect structs.
///
/// Why it exists: the hot loops (histogram build clipping, join filters)
/// read one coordinate of many rectangles per step. In AoS layout that is
/// a strided gather — every Rect load drags the three unused doubles
/// through the cache — and the per-rect branches defeat vectorization. In
/// SoA layout the same loops are contiguous streams the batch kernels in
/// src/core/kernels.h process 4 lanes per instruction (see
/// docs/ARCHITECTURE.md, "Data-level parallelism").
///
/// SoaDataset is a derived, read-mostly representation: build it once from
/// a Dataset (FromDataset) or append rows; it never replaces Dataset as the
/// canonical owner of geometry (names, serialization, mutation stay there).
class SoaDataset {
 public:
  SoaDataset() = default;

  /// Copies every MBR of `ds` into the four coordinate arrays.
  static SoaDataset FromDataset(const Dataset& ds);

  std::size_t size() const { return min_x_.size(); }
  bool empty() const { return min_x_.empty(); }

  void Reserve(std::size_t n);
  void Append(const Rect& r);
  void Clear();

  Rect RectAt(std::size_t i) const {
    return Rect(min_x_[i], min_y_[i], max_x_[i], max_y_[i]);
  }

  /// View over all rows.
  SoaSlice Slice() const {
    return SoaSlice{min_x_.data(), min_y_.data(), max_x_.data(),
                    max_y_.data(), size()};
  }

  /// View over rows [begin, end).
  SoaSlice Slice(std::size_t begin, std::size_t end) const {
    return SoaSlice{min_x_.data() + begin, min_y_.data() + begin,
                    max_x_.data() + begin, max_y_.data() + begin,
                    end - begin};
  }

  /// Tight bounding box of all rows (Rect::Empty() when empty) — matches
  /// Dataset::ComputeExtent on the same geometry.
  Rect ComputeExtent() const;

  const AlignedVector<double>& min_x() const { return min_x_; }
  const AlignedVector<double>& min_y() const { return min_y_; }
  const AlignedVector<double>& max_x() const { return max_x_; }
  const AlignedVector<double>& max_y() const { return max_y_; }

 private:
  AlignedVector<double> min_x_;
  AlignedVector<double> min_y_;
  AlignedVector<double> max_x_;
  AlignedVector<double> max_y_;
};

}  // namespace sjsel

#endif  // SJSEL_GEOM_SOA_DATASET_H_
