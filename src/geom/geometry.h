#ifndef SJSEL_GEOM_GEOMETRY_H_
#define SJSEL_GEOM_GEOMETRY_H_

#include <variant>
#include <vector>

#include "geom/dataset.h"
#include "geom/rect.h"

namespace sjsel {

/// A polyline: two or more vertices joined by segments. The exact geometry
/// behind a "streams"/"roads" MBR.
struct Polyline {
  std::vector<Point> pts;

  Rect Mbr() const;
};

/// A simple polygon given as a closed vertex loop (last edge wraps to the
/// first vertex; no self-intersections). The exact geometry behind a
/// "census block" MBR.
struct Polygon {
  std::vector<Point> pts;

  Rect Mbr() const;
};

/// One spatial object with exact geometry: point, polyline or polygon.
using Geometry = std::variant<Point, Polyline, Polygon>;

/// The MBR of any geometry.
Rect GeometryMbr(const Geometry& g);

/// A dataset that keeps exact geometry. `ToMbrDataset()` derives the MBR
/// abstraction every filter-step structure in this library consumes; the
/// refinement step goes back to the exact shapes.
class GeoDataset {
 public:
  GeoDataset() = default;
  explicit GeoDataset(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return objects_.size(); }
  bool empty() const { return objects_.empty(); }
  const Geometry& operator[](size_t i) const { return objects_[i]; }
  const std::vector<Geometry>& objects() const { return objects_; }

  void Add(Geometry g) { objects_.push_back(std::move(g)); }
  void Reserve(size_t n) { objects_.reserve(n); }

  /// The filter-step abstraction: one MBR per object, same order.
  Dataset ToMbrDataset() const;

  /// Serializes to the sjsel geo format (magic, per-object type tag +
  /// vertices, CRC trailer).
  Status Save(const std::string& path) const;

  /// Loads a file written by Save(), validating magic and CRC.
  static Result<GeoDataset> Load(const std::string& path);

 private:
  std::string name_;
  std::vector<Geometry> objects_;
};

// --- Exact intersection predicates (the refinement step) ------------------

/// True if segments [p1, p2] and [q1, q2] share at least one point
/// (touching endpoints and collinear overlap count).
bool SegmentsIntersect(const Point& p1, const Point& p2, const Point& q1,
                       const Point& q2);

/// Point-in-simple-polygon test (ray casting; boundary points count as
/// inside).
bool PolygonContains(const Polygon& poly, const Point& p);

/// True if the exact geometries intersect. Dispatches over the variant:
/// point/point uses equality, anything touching a polygon accounts for
/// full containment, and curve pairs test segment crossings.
bool GeometriesIntersect(const Geometry& a, const Geometry& b);

}  // namespace sjsel

#endif  // SJSEL_GEOM_GEOMETRY_H_
