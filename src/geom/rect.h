#ifndef SJSEL_GEOM_RECT_H_
#define SJSEL_GEOM_RECT_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace sjsel {

/// A point in the 2-D spatial extent.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// An axis-parallel rectangle (Minimum Bounding Rectangle). Degenerate
/// rectangles (zero width and/or height) represent point and axis-parallel
/// segment data and are fully supported.
///
/// Intersection follows the closed-interval convention used by the paper's
/// filter step: rectangles that merely touch count as intersecting.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  Rect() = default;
  Rect(double min_x_in, double min_y_in, double max_x_in, double max_y_in)
      : min_x(min_x_in), min_y(min_y_in), max_x(max_x_in), max_y(max_y_in) {}

  /// A rectangle that is empty for union-building: Extend() of any rect into
  /// it yields that rect.
  static Rect Empty();

  /// The MBR of a single point.
  static Rect FromPoint(const Point& p) { return Rect(p.x, p.y, p.x, p.y); }

  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }
  double area() const { return width() * height(); }
  /// Half-perimeter; the classic R-tree "margin" measure.
  double margin() const { return width() + height(); }
  Point center() const {
    return Point{(min_x + max_x) * 0.5, (min_y + max_y) * 0.5};
  }

  /// True if min > max on either axis (an Empty() sentinel).
  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  /// True if the closed intervals overlap on both axes.
  bool Intersects(const Rect& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }

  /// True if `o` lies fully inside this rectangle (boundary counts).
  bool Contains(const Rect& o) const {
    return min_x <= o.min_x && o.max_x <= max_x && min_y <= o.min_y &&
           o.max_y <= max_y;
  }

  /// True if `p` lies inside this rectangle (boundary counts).
  bool Contains(const Point& p) const {
    return min_x <= p.x && p.x <= max_x && min_y <= p.y && p.y <= max_y;
  }

  /// The intersection rectangle; IsEmpty() if the inputs do not intersect.
  Rect Intersection(const Rect& o) const {
    return Rect(std::max(min_x, o.min_x), std::max(min_y, o.min_y),
                std::min(max_x, o.max_x), std::min(max_y, o.max_y));
  }

  /// This rectangle grown by `margin` on every side (Minkowski sum with a
  /// square of half-width `margin`). Negative margins shrink; callers must
  /// keep min <= max themselves if they shrink past degeneracy.
  Rect Expanded(double margin) const {
    return Rect(min_x - margin, min_y - margin, max_x + margin,
                max_y + margin);
  }

  /// Squared Euclidean distance from `p` to the nearest point of this
  /// rectangle; 0 when `p` is inside. The R-tree k-NN search's MINDIST.
  double DistanceSqToPoint(const Point& p) const {
    const double dx = std::max({0.0, min_x - p.x, p.x - max_x});
    const double dy = std::max({0.0, min_y - p.y, p.y - max_y});
    return dx * dx + dy * dy;
  }

  /// Minimum Chebyshev (L-infinity) distance to `o`; 0 when intersecting.
  double DistanceLInf(const Rect& o) const {
    const double dx =
        std::max({0.0, o.min_x - max_x, min_x - o.max_x});
    const double dy =
        std::max({0.0, o.min_y - max_y, min_y - o.max_y});
    return std::max(dx, dy);
  }

  /// Grows this rectangle to cover `o` (no-op for empty `o`).
  void Extend(const Rect& o) {
    if (o.IsEmpty()) return;
    if (IsEmpty()) {
      *this = o;
      return;
    }
    min_x = std::min(min_x, o.min_x);
    min_y = std::min(min_y, o.min_y);
    max_x = std::max(max_x, o.max_x);
    max_y = std::max(max_y, o.max_y);
  }

  /// Area growth needed to cover `o`; the Guttman insertion heuristic.
  double Enlargement(const Rect& o) const {
    Rect u = *this;
    u.Extend(o);
    return u.area() - area();
  }

  std::string ToString() const;

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// How two intersecting rectangles intersect, expressed in the vocabulary of
/// the paper's Figure 2. The estimator correctness argument rests on every
/// intersection contributing exactly 4 "intersection points"; these
/// categories say where those points come from.
enum class IntersectionKind {
  kDisjoint,        ///< no intersection at all
  kCornerOverlap,   ///< 2 corner points inside + 2 edge crossings (cases 1-4)
  kEdgeThrough,     ///< one rect's slab crosses the other: 4 edge crossings
                    ///< (cases 5-6)
  kPartialContain,  ///< one side poking in: 2 corners + 2 crossings
                    ///< (cases 7-10)
  kContainment,     ///< one rect fully inside the other: 4 corners
                    ///< (cases 11-12)
};

/// Classifies the geometric relation of `a` and `b` (symmetric).
IntersectionKind ClassifyIntersection(const Rect& a, const Rect& b);

/// Number of corners of `a` strictly-or-boundary inside `b` plus corners of
/// `b` inside `a`.
int CountCornerContainments(const Rect& a, const Rect& b);

/// Number of crossings between a horizontal edge of one rect and a vertical
/// edge of the other (both directions). For rectangles in general position
/// this plus CountCornerContainments() is 4 whenever they intersect.
int CountEdgeCrossings(const Rect& a, const Rect& b);

}  // namespace sjsel

#endif  // SJSEL_GEOM_RECT_H_
