#include "geom/soa_dataset.h"

namespace sjsel {

SoaDataset SoaDataset::FromDataset(const Dataset& ds) {
  SoaDataset out;
  out.Reserve(ds.size());
  for (const Rect& r : ds.rects()) out.Append(r);
  return out;
}

void SoaDataset::Reserve(std::size_t n) {
  min_x_.reserve(n);
  min_y_.reserve(n);
  max_x_.reserve(n);
  max_y_.reserve(n);
}

void SoaDataset::Append(const Rect& r) {
  min_x_.push_back(r.min_x);
  min_y_.push_back(r.min_y);
  max_x_.push_back(r.max_x);
  max_y_.push_back(r.max_y);
}

void SoaDataset::Clear() {
  min_x_.clear();
  min_y_.clear();
  max_x_.clear();
  max_y_.clear();
}

Rect SoaDataset::ComputeExtent() const {
  Rect extent = Rect::Empty();
  for (std::size_t i = 0; i < size(); ++i) extent.Extend(RectAt(i));
  return extent;
}

}  // namespace sjsel
