#include "geom/validate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sjsel {
namespace {

const char* RectDefectName(RectDefect defect) {
  switch (defect) {
    case RectDefect::kNone:
      return "none";
    case RectDefect::kNonFinite:
      return "non-finite";
    case RectDefect::kInverted:
      return "inverted";
    case RectDefect::kOutOfExtent:
      return "out-of-extent";
  }
  return "unknown";
}

void Count(RectDefect defect, RobustnessCounters* counters) {
  switch (defect) {
    case RectDefect::kNone:
      break;
    case RectDefect::kNonFinite:
      ++counters->non_finite;
      break;
    case RectDefect::kInverted:
      ++counters->inverted;
      break;
    case RectDefect::kOutOfExtent:
      ++counters->out_of_extent;
      break;
  }
}

// Publishes a validation pass's tally to the validate.* counters. Called
// on every exit path of ValidateDataset — including kReject errors, where
// the partial tally is still the honest record of what was inspected.
void PublishValidationMetrics(const RobustnessCounters& tally) {
  SJSEL_METRIC_ADD("validate.checked", tally.checked);
  SJSEL_METRIC_ADD("validate.non_finite", tally.non_finite);
  SJSEL_METRIC_ADD("validate.inverted", tally.inverted);
  SJSEL_METRIC_ADD("validate.out_of_extent", tally.out_of_extent);
  SJSEL_METRIC_ADD("validate.clamped", tally.clamped);
  SJSEL_METRIC_ADD("validate.quarantined", tally.quarantined);
}

}  // namespace

const char* ValidationPolicyName(ValidationPolicy policy) {
  switch (policy) {
    case ValidationPolicy::kReject:
      return "reject";
    case ValidationPolicy::kClampToExtent:
      return "clamp";
    case ValidationPolicy::kQuarantine:
      return "quarantine";
  }
  return "unknown";
}

Result<ValidationPolicy> ParseValidationPolicy(const std::string& name) {
  if (name == "reject") return ValidationPolicy::kReject;
  if (name == "clamp") return ValidationPolicy::kClampToExtent;
  if (name == "quarantine") return ValidationPolicy::kQuarantine;
  return Status::InvalidArgument(
      "unknown validation policy '" + name +
      "' (want reject | clamp | quarantine)");
}

RectDefect ClassifyRect(const Rect& r, const Rect& extent) {
  if (!std::isfinite(r.min_x) || !std::isfinite(r.min_y) ||
      !std::isfinite(r.max_x) || !std::isfinite(r.max_y)) {
    return RectDefect::kNonFinite;
  }
  if (r.min_x > r.max_x || r.min_y > r.max_y) {
    return RectDefect::kInverted;
  }
  if (!extent.IsEmpty() && !extent.Contains(r)) {
    return RectDefect::kOutOfExtent;
  }
  return RectDefect::kNone;
}

void RobustnessCounters::Merge(const RobustnessCounters& other) {
  checked += other.checked;
  non_finite += other.non_finite;
  inverted += other.inverted;
  out_of_extent += other.out_of_extent;
  clamped += other.clamped;
  quarantined += other.quarantined;
}

std::string RobustnessCounters::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "checked=%llu non_finite=%llu inverted=%llu "
                "out_of_extent=%llu clamped=%llu quarantined=%llu",
                static_cast<unsigned long long>(checked),
                static_cast<unsigned long long>(non_finite),
                static_cast<unsigned long long>(inverted),
                static_cast<unsigned long long>(out_of_extent),
                static_cast<unsigned long long>(clamped),
                static_cast<unsigned long long>(quarantined));
  return buf;
}

Result<Dataset> ValidateDataset(const Dataset& ds, const Rect& extent,
                                ValidationPolicy policy,
                                RobustnessCounters* counters) {
  SJSEL_TRACE_SPAN("validate.dataset", "dataset=%s rects=%zu policy=%s",
                   ds.name().c_str(), ds.size(), ValidationPolicyName(policy));
  RobustnessCounters local;
  RobustnessCounters* tally = counters != nullptr ? counters : &local;
  *tally = RobustnessCounters{};

  Dataset out(ds.name());
  out.Reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    const Rect& r = ds[i];
    ++tally->checked;
    const RectDefect defect = ClassifyRect(r, extent);
    if (defect == RectDefect::kNone) {
      out.Add(r);
      continue;
    }
    Count(defect, tally);
    if (policy == ValidationPolicy::kReject) {
      PublishValidationMetrics(*tally);
      return Status::InvalidArgument(
          "rect " + std::to_string(i) + " of dataset '" + ds.name() +
          "' is " + RectDefectName(defect) + ": " + r.ToString());
    }
    if (policy == ValidationPolicy::kClampToExtent) {
      if (defect == RectDefect::kInverted) {
        Rect fixed(std::min(r.min_x, r.max_x), std::min(r.min_y, r.max_y),
                   std::max(r.min_x, r.max_x), std::max(r.min_y, r.max_y));
        // The normalized rect may still poke out of the extent.
        if (!extent.IsEmpty() && !extent.Contains(fixed)) {
          fixed = fixed.Intersection(extent);
          if (fixed.IsEmpty()) {
            ++tally->quarantined;
            continue;
          }
        }
        ++tally->clamped;
        out.Add(fixed);
        continue;
      }
      if (defect == RectDefect::kOutOfExtent) {
        const Rect fixed = r.Intersection(extent);
        if (fixed.IsEmpty()) {  // disjoint from the extent: nothing to keep
          ++tally->quarantined;
          continue;
        }
        ++tally->clamped;
        out.Add(fixed);
        continue;
      }
      // Non-finite coordinates have no meaningful repair.
      ++tally->quarantined;
      continue;
    }
    // kQuarantine: drop and count.
    ++tally->quarantined;
  }
  PublishValidationMetrics(*tally);
  return out;
}

}  // namespace sjsel
