#include "geom/dataset.h"

#include <cstdio>
#include <sstream>

#include "util/serialize.h"

namespace sjsel {
namespace {

constexpr uint32_t kDatasetMagic = 0x534a4453;  // "SJDS"
constexpr uint32_t kDatasetVersion = 1;

}  // namespace

Rect Dataset::ComputeExtent() const {
  Rect extent = Rect::Empty();
  for (const Rect& r : rects_) extent.Extend(r);
  return extent;
}

Status Dataset::Save(const std::string& path) const {
  BinaryWriter w;
  w.PutU32(kDatasetMagic);
  w.PutU32(kDatasetVersion);
  w.PutString(name_);
  w.PutU64(rects_.size());
  for (const Rect& r : rects_) {
    w.PutDouble(r.min_x);
    w.PutDouble(r.min_y);
    w.PutDouble(r.max_x);
    w.PutDouble(r.max_y);
  }
  const uint32_t crc = w.Crc32();
  BinaryWriter trailer;
  trailer.PutU32(crc);
  return WriteFile(path, w.buffer() + trailer.buffer());
}

Result<Dataset> Dataset::Load(const std::string& path) {
  std::string data;
  SJSEL_ASSIGN_OR_RETURN(data, ReadFile(path));
  if (data.size() < sizeof(uint32_t)) {
    return Status::Corruption("dataset file too short: " + path);
  }
  const size_t body_size = data.size() - sizeof(uint32_t);
  BinaryReader r(std::move(data));

  uint32_t expected_crc_body = 0;
  {
    uint32_t actual = 0;
    SJSEL_ASSIGN_OR_RETURN(actual, r.Crc32Prefix(body_size));
    expected_crc_body = actual;
  }

  uint32_t magic = 0;
  SJSEL_ASSIGN_OR_RETURN(magic, r.GetU32());
  if (magic != kDatasetMagic) {
    return Status::Corruption("bad dataset magic in " + path);
  }
  uint32_t version = 0;
  SJSEL_ASSIGN_OR_RETURN(version, r.GetU32());
  if (version != kDatasetVersion) {
    return Status::Corruption("unsupported dataset version " +
                              std::to_string(version));
  }
  Dataset ds;
  std::string name;
  SJSEL_ASSIGN_OR_RETURN(name, r.GetString());
  ds.set_name(name);
  uint64_t n = 0;
  SJSEL_ASSIGN_OR_RETURN(n, r.GetU64());
  // Each rect needs 32 bytes; a count beyond the remaining payload means a
  // corrupt header (and would otherwise drive Reserve into bad_alloc).
  if (n > (r.size() - r.position()) / 32) {
    return Status::Corruption("dataset count exceeds payload in " + path);
  }
  ds.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Rect rect;
    SJSEL_ASSIGN_OR_RETURN(rect.min_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(rect.min_y, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(rect.max_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(rect.max_y, r.GetDouble());
    ds.Add(rect);
  }
  if (r.position() != body_size) {
    return Status::Corruption("trailing garbage in dataset file " + path);
  }
  uint32_t stored_crc = 0;
  SJSEL_ASSIGN_OR_RETURN(stored_crc, r.GetU32());
  if (stored_crc != expected_crc_body) {
    return Status::Corruption("dataset CRC mismatch in " + path);
  }
  return ds;
}

Status Dataset::SaveCsv(const std::string& path) const {
  std::string out = "min_x,min_y,max_x,max_y\n";
  char line[160];
  for (const Rect& r : rects_) {
    std::snprintf(line, sizeof(line), "%.17g,%.17g,%.17g,%.17g\n", r.min_x,
                  r.min_y, r.max_x, r.max_y);
    out += line;
  }
  return WriteFile(path, out);
}

Result<Dataset> Dataset::LoadCsv(const std::string& path,
                                 const std::string& name) {
  std::string data;
  SJSEL_ASSIGN_OR_RETURN(data, ReadFile(path));
  Dataset ds(name);
  std::istringstream in(data);
  std::string line;
  bool first = true;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (first) {
      first = false;
      // Skip a header line if present.
      if (line.find("min_x") != std::string::npos) continue;
    }
    Rect r;
    if (std::sscanf(line.c_str(), "%lf,%lf,%lf,%lf", &r.min_x, &r.min_y,
                    &r.max_x, &r.max_y) != 4) {
      return Status::Corruption("bad CSV row at line " +
                                std::to_string(line_no) + " of " + path);
    }
    ds.Add(r);
  }
  return ds;
}

}  // namespace sjsel
