#include "geom/dataset.h"

#include <cstdio>
#include <sstream>

#include "util/serialize.h"

namespace sjsel {
namespace {

constexpr uint32_t kDatasetMagic = 0x534a4453;  // "SJDS"
// v2: shared checked envelope (format-version byte + CRC verified before
// any field parse); v1 carried a u32 version and a trailing CRC check.
constexpr uint8_t kDatasetVersion = 2;

}  // namespace

Rect Dataset::ComputeExtent() const {
  Rect extent = Rect::Empty();
  for (const Rect& r : rects_) extent.Extend(r);
  return extent;
}

Status Dataset::Save(const std::string& path) const {
  BinaryWriter w;
  w.BeginEnvelope(kDatasetMagic, kDatasetVersion);
  w.PutString(name_);
  w.PutU64(rects_.size());
  for (const Rect& r : rects_) {
    w.PutDouble(r.min_x);
    w.PutDouble(r.min_y);
    w.PutDouble(r.max_x);
    w.PutDouble(r.max_y);
  }
  return WriteFile(path, w.SealEnvelope());
}

Result<Dataset> Dataset::Load(const std::string& path) {
  std::string data;
  SJSEL_ASSIGN_OR_RETURN(data, ReadFile(path));
  BinaryReader r(std::move(data));
  uint8_t version = 0;
  SJSEL_ASSIGN_OR_RETURN(version, r.OpenEnvelope(kDatasetMagic, "dataset"));
  if (version != kDatasetVersion) {
    return Status::Corruption("unsupported dataset version " +
                              std::to_string(version));
  }
  Dataset ds;
  std::string name;
  SJSEL_ASSIGN_OR_RETURN(name, r.GetString());
  ds.set_name(name);
  uint64_t n = 0;
  SJSEL_ASSIGN_OR_RETURN(n, r.GetU64());
  // Each rect needs 32 bytes; a count beyond the remaining payload means a
  // corrupt header (and would otherwise drive Reserve into bad_alloc).
  if (n > (r.size() - r.position()) / 32) {
    return Status::Corruption("dataset count exceeds payload in " + path);
  }
  ds.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Rect rect;
    SJSEL_ASSIGN_OR_RETURN(rect.min_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(rect.min_y, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(rect.max_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(rect.max_y, r.GetDouble());
    ds.Add(rect);
  }
  SJSEL_RETURN_IF_ERROR(r.ExpectBodyEnd("dataset file " + path));
  return ds;
}

Status Dataset::SaveCsv(const std::string& path) const {
  std::string out = "min_x,min_y,max_x,max_y\n";
  char line[160];
  for (const Rect& r : rects_) {
    std::snprintf(line, sizeof(line), "%.17g,%.17g,%.17g,%.17g\n", r.min_x,
                  r.min_y, r.max_x, r.max_y);
    out += line;
  }
  return WriteFile(path, out);
}

Result<Dataset> Dataset::LoadCsv(const std::string& path,
                                 const std::string& name) {
  std::string data;
  SJSEL_ASSIGN_OR_RETURN(data, ReadFile(path));
  Dataset ds(name);
  std::istringstream in(data);
  std::string line;
  bool first = true;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (first) {
      first = false;
      // Skip a header line if present.
      if (line.find("min_x") != std::string::npos) continue;
    }
    Rect r;
    if (std::sscanf(line.c_str(), "%lf,%lf,%lf,%lf", &r.min_x, &r.min_y,
                    &r.max_x, &r.max_y) != 4) {
      return Status::Corruption("bad CSV row at line " +
                                std::to_string(line_no) + " of " + path);
    }
    ds.Add(r);
  }
  return ds;
}

}  // namespace sjsel
