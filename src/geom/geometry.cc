#include "geom/geometry.h"

#include <algorithm>
#include <cmath>

#include "util/serialize.h"

namespace sjsel {
namespace {

constexpr uint32_t kGeoMagic = 0x534a4745;  // "SJGE"
// v2: shared checked envelope (format-version byte + CRC verified before
// any field parse); v1 carried a u32 version and a trailing CRC check.
constexpr uint8_t kGeoVersion = 2;
constexpr uint8_t kTagPoint = 0;
constexpr uint8_t kTagPolyline = 1;
constexpr uint8_t kTagPolygon = 2;

}  // namespace

Rect Polyline::Mbr() const {
  Rect mbr = Rect::Empty();
  for (const Point& p : pts) mbr.Extend(Rect::FromPoint(p));
  return mbr;
}

Rect Polygon::Mbr() const {
  Rect mbr = Rect::Empty();
  for (const Point& p : pts) mbr.Extend(Rect::FromPoint(p));
  return mbr;
}

Rect GeometryMbr(const Geometry& g) {
  return std::visit(
      [](const auto& shape) -> Rect {
        using T = std::decay_t<decltype(shape)>;
        if constexpr (std::is_same_v<T, Point>) {
          return Rect::FromPoint(shape);
        } else {
          return shape.Mbr();
        }
      },
      g);
}

Dataset GeoDataset::ToMbrDataset() const {
  Dataset ds(name_);
  ds.Reserve(objects_.size());
  for (const Geometry& g : objects_) ds.Add(GeometryMbr(g));
  return ds;
}

namespace {

// Sign of the cross product (q - p) x (r - p): orientation of the triple.
int Orientation(const Point& p, const Point& q, const Point& r) {
  const double cross =
      (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x);
  if (cross > 0) return 1;
  if (cross < 0) return -1;
  return 0;
}

// For collinear p, q, r: is q within the bounding box of [p, r]?
bool OnSegment(const Point& p, const Point& q, const Point& r) {
  return std::min(p.x, r.x) <= q.x && q.x <= std::max(p.x, r.x) &&
         std::min(p.y, r.y) <= q.y && q.y <= std::max(p.y, r.y);
}

}  // namespace

bool SegmentsIntersect(const Point& p1, const Point& p2, const Point& q1,
                       const Point& q2) {
  const int o1 = Orientation(p1, p2, q1);
  const int o2 = Orientation(p1, p2, q2);
  const int o3 = Orientation(q1, q2, p1);
  const int o4 = Orientation(q1, q2, p2);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && OnSegment(p1, q1, p2)) return true;
  if (o2 == 0 && OnSegment(p1, q2, p2)) return true;
  if (o3 == 0 && OnSegment(q1, p1, q2)) return true;
  if (o4 == 0 && OnSegment(q1, p2, q2)) return true;
  return false;
}

bool PolygonContains(const Polygon& poly, const Point& p) {
  const size_t n = poly.pts.size();
  if (n < 3) return false;
  // Boundary counts as inside.
  for (size_t i = 0; i < n; ++i) {
    const Point& a = poly.pts[i];
    const Point& b = poly.pts[(i + 1) % n];
    if (Orientation(a, b, p) == 0 && OnSegment(a, p, b)) return true;
  }
  // Ray casting toward +x.
  bool inside = false;
  for (size_t i = 0; i < n; ++i) {
    const Point& a = poly.pts[i];
    const Point& b = poly.pts[(i + 1) % n];
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (!crosses) continue;
    const double x_at_y = a.x + (b.x - a.x) * (p.y - a.y) / (b.y - a.y);
    if (x_at_y > p.x) inside = !inside;
  }
  return inside;
}

namespace {

// Iterates the segments of a polyline (open chain) or polygon (closed
// loop).
template <typename Fn>
bool AnySegment(const Polyline& line, Fn&& fn) {
  for (size_t i = 0; i + 1 < line.pts.size(); ++i) {
    if (fn(line.pts[i], line.pts[i + 1])) return true;
  }
  return false;
}

template <typename Fn>
bool AnySegment(const Polygon& poly, Fn&& fn) {
  const size_t n = poly.pts.size();
  for (size_t i = 0; i < n; ++i) {
    if (fn(poly.pts[i], poly.pts[(i + 1) % n])) return true;
  }
  return false;
}

template <typename CurveA, typename CurveB>
bool CurvesCross(const CurveA& a, const CurveB& b) {
  return AnySegment(a, [&b](const Point& p1, const Point& p2) {
    return AnySegment(b, [&p1, &p2](const Point& q1, const Point& q2) {
      return SegmentsIntersect(p1, p2, q1, q2);
    });
  });
}

bool PointOnPolyline(const Polyline& line, const Point& p) {
  return AnySegment(line, [&p](const Point& a, const Point& b) {
    return Orientation(a, b, p) == 0 && OnSegment(a, p, b);
  });
}

bool Intersects(const Point& a, const Point& b) { return a == b; }

bool Intersects(const Point& a, const Polyline& b) {
  return PointOnPolyline(b, a);
}

bool Intersects(const Point& a, const Polygon& b) {
  return PolygonContains(b, a);
}

bool Intersects(const Polyline& a, const Polyline& b) {
  return CurvesCross(a, b);
}

bool Intersects(const Polyline& a, const Polygon& b) {
  // Either a boundary crossing, or the (non-empty) polyline lies fully
  // inside the polygon.
  if (CurvesCross(a, b)) return true;
  return !a.pts.empty() && PolygonContains(b, a.pts.front());
}

bool Intersects(const Polygon& a, const Polygon& b) {
  if (CurvesCross(a, b)) return true;
  // One fully inside the other.
  if (!a.pts.empty() && PolygonContains(b, a.pts.front())) return true;
  if (!b.pts.empty() && PolygonContains(a, b.pts.front())) return true;
  return false;
}

// Symmetric dispatch helpers.
bool Intersects(const Polyline& a, const Point& b) { return Intersects(b, a); }
bool Intersects(const Polygon& a, const Point& b) { return Intersects(b, a); }
bool Intersects(const Polygon& a, const Polyline& b) {
  return Intersects(b, a);
}

}  // namespace

bool GeometriesIntersect(const Geometry& a, const Geometry& b) {
  return std::visit(
      [](const auto& ga, const auto& gb) { return Intersects(ga, gb); }, a,
      b);
}

Status GeoDataset::Save(const std::string& path) const {
  BinaryWriter w;
  w.BeginEnvelope(kGeoMagic, kGeoVersion);
  w.PutString(name_);
  w.PutU64(objects_.size());
  auto put_points = [&w](const std::vector<Point>& pts) {
    w.PutU32(static_cast<uint32_t>(pts.size()));
    for (const Point& p : pts) {
      w.PutDouble(p.x);
      w.PutDouble(p.y);
    }
  };
  for (const Geometry& g : objects_) {
    if (const auto* p = std::get_if<Point>(&g)) {
      w.PutU8(kTagPoint);
      w.PutDouble(p->x);
      w.PutDouble(p->y);
    } else if (const auto* line = std::get_if<Polyline>(&g)) {
      w.PutU8(kTagPolyline);
      put_points(line->pts);
    } else {
      w.PutU8(kTagPolygon);
      put_points(std::get<Polygon>(g).pts);
    }
  }
  return WriteFile(path, w.SealEnvelope());
}

Result<GeoDataset> GeoDataset::Load(const std::string& path) {
  std::string data;
  SJSEL_ASSIGN_OR_RETURN(data, ReadFile(path));
  BinaryReader r(std::move(data));
  uint8_t version = 0;
  SJSEL_ASSIGN_OR_RETURN(version, r.OpenEnvelope(kGeoMagic, "geo dataset"));
  if (version != kGeoVersion) {
    return Status::Corruption("unsupported geo version " +
                              std::to_string(version));
  }
  GeoDataset ds;
  SJSEL_ASSIGN_OR_RETURN(ds.name_, r.GetString());
  uint64_t count = 0;
  SJSEL_ASSIGN_OR_RETURN(count, r.GetU64());
  // Every object needs at least a tag byte.
  if (count > r.size() - r.position()) {
    return Status::Corruption("geo object count exceeds payload in " + path);
  }
  ds.Reserve(count);

  auto get_points = [&r](std::vector<Point>* pts) -> Status {
    uint32_t n = 0;
    SJSEL_ASSIGN_OR_RETURN(n, r.GetU32());
    if (n > (r.size() - r.position()) / 16) {
      return Status::Corruption("geo vertex count exceeds payload");
    }
    pts->resize(n);
    for (Point& p : *pts) {
      SJSEL_ASSIGN_OR_RETURN(p.x, r.GetDouble());
      SJSEL_ASSIGN_OR_RETURN(p.y, r.GetDouble());
    }
    return Status::OK();
  };

  for (uint64_t i = 0; i < count; ++i) {
    uint8_t tag = 0;
    SJSEL_ASSIGN_OR_RETURN(tag, r.GetU8());
    if (tag == kTagPoint) {
      Point p;
      SJSEL_ASSIGN_OR_RETURN(p.x, r.GetDouble());
      SJSEL_ASSIGN_OR_RETURN(p.y, r.GetDouble());
      ds.Add(p);
    } else if (tag == kTagPolyline) {
      Polyline line;
      SJSEL_RETURN_IF_ERROR(get_points(&line.pts));
      ds.Add(std::move(line));
    } else if (tag == kTagPolygon) {
      Polygon poly;
      SJSEL_RETURN_IF_ERROR(get_points(&poly.pts));
      ds.Add(std::move(poly));
    } else {
      return Status::Corruption("unknown geometry tag in " + path);
    }
  }
  SJSEL_RETURN_IF_ERROR(r.ExpectBodyEnd("geo file " + path));
  return ds;
}

}  // namespace sjsel
