#include "core/ph_histogram.h"

#include <algorithm>

#include "core/kernels.h"
#include "core/tile_build.h"
#include "geom/soa_dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/aligned.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace sjsel {
namespace {

constexpr uint32_t kPhMagic = 0x53504847;  // "SPHG"
// v3: shared checked envelope (format-version byte + CRC verified before
// any field parse); v2 carried a u32 version and a trailing CRC check.
constexpr uint8_t kPhVersion = 3;

// Emits one MBR's PH contributions given its precomputed cell range, in a
// fixed order (the order Apply has always used): Contained per overlapped
// cell for contained/naive bookings, else CrossingGlobal once followed by
// Crossing per cell.
template <typename Sink>
void EmitPhContribution(const Grid& grid, PhVariant variant, const Rect& r,
                        int x0, int y0, int x1, int y1, Sink&& sink) {
  const bool contained = x0 == x1 && y0 == y1;

  if (contained || variant == PhVariant::kNaive) {
    // Naive gridding books the full MBR into every overlapped cell; the
    // real PH books contained MBRs into exactly one.
    for (int cy = y0; cy <= y1; ++cy) {
      for (int cx = x0; cx <= x1; ++cx) {
        sink.Contained(grid.Flat(cx, cy), r.area(), r.width(), r.height());
      }
    }
    return;
  }

  sink.CrossingGlobal(static_cast<double>(x1 - x0 + 1) *
                      static_cast<double>(y1 - y0 + 1));
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      const Rect cell_rect = grid.CellRect(cx, cy);
      const double w =
          OverlapLen(r.min_x, r.max_x, cell_rect.min_x, cell_rect.max_x);
      const double h =
          OverlapLen(r.min_y, r.max_y, cell_rect.min_y, cell_rect.max_y);
      sink.Crossing(grid.Flat(cx, cy), w * h, w, h);
    }
  }
}

// Scalar entry point: cell range, then emit. Used by the incremental
// AddRect/RemoveRect path (Apply); the blocked build reuses
// EmitPhContribution directly with precomputed ranges.
template <typename Sink>
void ForEachPhContribution(const Grid& grid, PhVariant variant, const Rect& r,
                           Sink&& sink) {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
  grid.CellRange(r, &x0, &y0, &x1, &y1);
  EmitPhContribution(grid, variant, r, x0, y0, x1, y1, sink);
}

// Tile side of the blocked build, in cells: a PH Cell is 8 doubles (one
// cache line), so 16×16 cells × 64 B = 16 KiB per tile — L1-resident.
constexpr int kPhTileCells = 16;

// Accumulation-array budget (one 64 B Cell per grid cell) under which a
// serial build skips the binning pass: the scattered per-cell writes stay
// cache-resident anyway, so one dataset-order sweep of the expansion
// engine is both faster and trivially order-preserving.
constexpr int64_t kPhCacheResidentBytes = 2 << 20;

}  // namespace

Result<PhHistogram> PhHistogram::CreateEmpty(const Rect& extent, int level,
                                             PhVariant variant) {
  auto grid_result = Grid::Create(extent, level);
  if (!grid_result.ok()) return grid_result.status();
  PhHistogram hist(std::move(grid_result).value(), variant);
  hist.cells_.assign(hist.grid_.num_cells(), Cell());
  return hist;
}

namespace {

// Sink that mutates a histogram's sums directly with a +/-1 weight.
struct PhDirectSink {
  std::vector<PhHistogram::Cell>* cells;
  double* span_sum;
  double* crossing_count;
  double weight;

  void Contained(int64_t idx, double area, double w, double h) {
    PhHistogram::Cell& cell = (*cells)[idx];
    cell.num += weight;
    cell.area_sum += weight * area;
    cell.w_sum += weight * w;
    cell.h_sum += weight * h;
  }
  void Crossing(int64_t idx, double area, double w, double h) {
    PhHistogram::Cell& cell = (*cells)[idx];
    cell.num_x += weight;
    cell.area_sum_x += weight * area;
    cell.w_sum_x += weight * w;
    cell.h_sum_x += weight * h;
  }
  void CrossingGlobal(double span) {
    *crossing_count += weight;
    *span_sum += weight * span;
  }
};

// Accumulates rows [lo, hi) of a rect run (cell ranges + coordinates,
// dataset order or binned order) into the per-cell sums, with each rect's
// cell loops clamped to `tile`. PH books four adds into ONE 64-byte Cell
// per (rect, cell) and its clip amounts are pure min/max arithmetic — no
// divisions — so unlike GH there is nothing to gain from routing entries
// through a batch kernel; the vectorized CellRangeBatch pass plus this
// cache-blocked direct loop IS the fast path. The global span/crossing
// sums are NOT booked here — Build books them once per rect in dataset
// order during pass 1 (a rect spanning several tiles would otherwise book
// them once per tile). Cell bounds use the Grid::CellRect arithmetic and
// the row overlap is hoisted (it varies only by row), both bitwise equal
// to the streaming Apply path; see core/tile_build.h for why within-rect
// reordering is free.
void PhAccumulateRun(const Grid& grid, PhVariant variant, const int32_t* x0,
                     const int32_t* y0, const int32_t* x1, const int32_t* y1,
                     const SoaSlice& coords, size_t lo, size_t hi,
                     const tile_build::TileBounds& tile,
                     std::vector<PhHistogram::Cell>* cells) {
  const GridGeom geom{grid.extent().min_x, grid.extent().min_y,
                      grid.cell_width(), grid.cell_height(),
                      grid.per_axis()};
  const int per_axis = geom.per_axis;
  for (size_t k = lo; k < hi; ++k) {
    const int rx0 = x0[k];
    const int ry0 = y0[k];
    const int rx1 = x1[k];
    const int ry1 = y1[k];
    const int ex0 = std::max(rx0, tile.cx0);
    const int ex1 = std::min(rx1, tile.cx1);
    const int ey0 = std::max(ry0, tile.cy0);
    const int ey1 = std::min(ry1, tile.cy1);
    const double rmin_x = coords.min_x[k];
    const double rmin_y = coords.min_y[k];
    const double rmax_x = coords.max_x[k];
    const double rmax_y = coords.max_y[k];
    const bool single = rx0 == rx1 && ry0 == ry1;
    if (single || variant == PhVariant::kNaive) {
      // Same scalar arithmetic as Rect::width()/height()/area(), which is
      // what the streaming Apply path books for these entries.
      const double rw = rmax_x - rmin_x;
      const double rh = rmax_y - rmin_y;
      const double ra = rw * rh;
      for (int cy = ey0; cy <= ey1; ++cy) {
        const int32_t rowbase = static_cast<int32_t>(cy) * per_axis;
        for (int cx = ex0; cx <= ex1; ++cx) {
          PhHistogram::Cell& cell = (*cells)[rowbase + cx];
          cell.num += 1.0;
          cell.area_sum += ra;
          cell.w_sum += rw;
          cell.h_sum += rh;
        }
      }
    } else {
      for (int cy = ey0; cy <= ey1; ++cy) {
        const double cell_lo_y = geom.min_y + cy * geom.cell_h;
        const double cell_hi_y = geom.min_y + (cy + 1) * geom.cell_h;
        const double h = OverlapLen(rmin_y, rmax_y, cell_lo_y, cell_hi_y);
        const int32_t rowbase = static_cast<int32_t>(cy) * per_axis;
        for (int cx = ex0; cx <= ex1; ++cx) {
          const double cell_lo_x = geom.min_x + cx * geom.cell_w;
          const double cell_hi_x = geom.min_x + (cx + 1) * geom.cell_w;
          const double w = OverlapLen(rmin_x, rmax_x, cell_lo_x, cell_hi_x);
          PhHistogram::Cell& cell = (*cells)[rowbase + cx];
          cell.num_x += 1.0;
          cell.area_sum_x += w * h;
          cell.w_sum_x += w;
          cell.h_sum_x += h;
        }
      }
    }
  }
}

// Sink for the serial fast path's wide-rect fallback: books per-cell sums
// only. The global crossing sums are already booked (in dataset order) by
// the chunk loop before the fallback fires.
struct PhCellsOnlySink {
  std::vector<PhHistogram::Cell>* cells;

  void Contained(int64_t idx, double area, double w, double h) {
    PhHistogram::Cell& cell = (*cells)[idx];
    cell.num += 1.0;
    cell.area_sum += area;
    cell.w_sum += w;
    cell.h_sum += h;
  }
  void Crossing(int64_t idx, double area, double w, double h) {
    PhHistogram::Cell& cell = (*cells)[idx];
    cell.num_x += 1.0;
    cell.area_sum_x += area;
    cell.w_sum_x += w;
    cell.h_sum_x += h;
  }
  void CrossingGlobal(double) {}
};

// Rect chunk of the serial fast path: 8 arrays x 2048 x <= 8 B = 96 KiB of
// kernel output that stays cache-hot for the scatter pass.
constexpr size_t kPhRectChunk = 2048;

// Serial fast path for the scalar (and stub-NEON) backends: PH books raw
// overlaps — no divisions — so the fused kernel's store-then-reload round
// trip only pays for itself when the clip pass is vectorized. The scalar
// dispatch instead books rects straight from the AoS input, ranges inline
// (Grid::CellRange, the streaming path's own arithmetic) and the row
// overlap hoisted per row.
void PhSerialBuildScalarDirect(const Grid& grid, const Dataset& ds,
                               PhVariant variant,
                               std::vector<PhHistogram::Cell>* cells,
                               double* span_sum, double* crossing_count) {
  const GridGeom geom{grid.extent().min_x, grid.extent().min_y,
                      grid.cell_width(), grid.cell_height(),
                      grid.per_axis()};
  const int32_t per_axis = geom.per_axis;
  const size_t n = ds.size();
  const Rect* rects = ds.rects().data();
  PhHistogram::Cell* C = cells->data();
  // Run the global sums in registers (same serial add chain, stored back
  // once): through the out-pointers every add would be a memory RMW the
  // compiler must order against the cell writes.
  double cc = *crossing_count;
  double ss = *span_sum;
  for (size_t i = 0; i < n; ++i) {
    const Rect& r = rects[i];
    int x0 = 0;
    int y0 = 0;
    int x1 = 0;
    int y1 = 0;
    grid.CellRange(r, &x0, &y0, &x1, &y1);
    if ((x0 == x1 && y0 == y1) || variant == PhVariant::kNaive) {
      const double rw = r.max_x - r.min_x;
      const double rh = r.max_y - r.min_y;
      const double ra = rw * rh;
      for (int cy = y0; cy <= y1; ++cy) {
        const int32_t rowbase = cy * per_axis;
        for (int cx = x0; cx <= x1; ++cx) {
          PhHistogram::Cell& cell = C[rowbase + cx];
          cell.num += 1.0;
          cell.area_sum += ra;
          cell.w_sum += rw;
          cell.h_sum += rh;
        }
      }
      continue;
    }
    cc += 1.0;
    ss += static_cast<double>(x1 - x0 + 1) * static_cast<double>(y1 - y0 + 1);
    for (int cy = y0; cy <= y1; ++cy) {
      const double cell_lo_y = geom.min_y + cy * geom.cell_h;
      const double cell_hi_y = geom.min_y + (cy + 1) * geom.cell_h;
      const double h = OverlapLen(r.min_y, r.max_y, cell_lo_y, cell_hi_y);
      const int32_t rowbase = cy * per_axis;
      for (int cx = x0; cx <= x1; ++cx) {
        const double cell_lo_x = geom.min_x + cx * geom.cell_w;
        const double cell_hi_x = geom.min_x + (cx + 1) * geom.cell_w;
        const double w = OverlapLen(r.min_x, r.max_x, cell_lo_x, cell_hi_x);
        PhHistogram::Cell& cell = C[rowbase + cx];
        cell.num_x += 1.0;
        cell.area_sum_x += w * h;
        cell.w_sum_x += w;
        cell.h_sum_x += h;
      }
    }
  }
  *crossing_count = cc;
  *span_sum = ss;
}

// Serial cache-resident fast path: the fused PhRectClipBatch kernel
// computes cell ranges plus the first two column/row overlaps per rect,
// then a scatter pass books contained rects with their full dimensions and
// crossing rects of span <= 2x2 with the precomputed overlaps (products
// formed scalar, the same w * h expression the streaming path evaluates).
// Wider crossing rects fall back to per-cell emission with the global sums
// suppressed — the chunk loop books those in dataset order itself. No SoA
// copy, no entry buffer; see core/tile_build.h for why within-rect
// reordering is bitwise free.
void PhSerialBuild(const Grid& grid, const Dataset& ds, PhVariant variant,
                   std::vector<PhHistogram::Cell>* cells, double* span_sum,
                   double* crossing_count) {
  const GridGeom geom{grid.extent().min_x, grid.extent().min_y,
                      grid.cell_width(), grid.cell_height(),
                      grid.per_axis()};
  const int32_t per_axis = geom.per_axis;
  const size_t n = ds.size();
  const Rect* rects = ds.rects().data();
  PhHistogram::Cell* C = cells->data();

  const KernelBackend backend = ActiveKernelBackend();
  if (backend == KernelBackend::kScalar ||
      backend == KernelBackend::kNeon) {
    PhSerialBuildScalarDirect(grid, ds, variant, cells, span_sum,
                              crossing_count);
    return;
  }

  AlignedVector<int32_t> x0(kPhRectChunk), y0(kPhRectChunk),
      x1(kPhRectChunk), y1(kPhRectChunk);
  AlignedVector<double> w0(kPhRectChunk), w1(kPhRectChunk),
      h0(kPhRectChunk), h1(kPhRectChunk);
  const PhRectClipOut out{x0.data(), y0.data(), x1.data(), y1.data(),
                          w0.data(), w1.data(), h0.data(), h1.data()};

  const auto book_crossing = [C](int32_t idx, double w, double h) {
    PhHistogram::Cell& cell = C[idx];
    cell.num_x += 1.0;
    cell.area_sum_x += w * h;
    cell.w_sum_x += w;
    cell.h_sum_x += h;
  };

  // Same register-resident global sums as the scalar-direct path.
  double cc = *crossing_count;
  double ss = *span_sum;
  for (size_t lo = 0; lo < n; lo += kPhRectChunk) {
    const size_t m = std::min(kPhRectChunk, n - lo);
    PhRectClipBatch(geom, rects + lo, m, out);
    for (size_t k = 0; k < m; ++k) {
      const int cspan = x1[k] - x0[k];
      const int rspan = y1[k] - y0[k];
      if ((cspan | rspan) == 0 || variant == PhVariant::kNaive) {
        // Contained (or naive) booking: the full MBR dimensions into every
        // overlapped cell — the same Rect::width()/height()/area()
        // arithmetic the streaming path books.
        const Rect& r = rects[lo + k];
        const double rw = r.max_x - r.min_x;
        const double rh = r.max_y - r.min_y;
        const double ra = rw * rh;
        for (int32_t cy = y0[k]; cy <= y1[k]; ++cy) {
          const int32_t rowbase = cy * per_axis;
          for (int32_t cx = x0[k]; cx <= x1[k]; ++cx) {
            PhHistogram::Cell& cell = C[rowbase + cx];
            cell.num += 1.0;
            cell.area_sum += ra;
            cell.w_sum += rw;
            cell.h_sum += rh;
          }
        }
        continue;
      }
      cc += 1.0;
      ss += static_cast<double>(cspan + 1) *
            static_cast<double>(rspan + 1);
      if ((cspan | rspan) <= 1) {
        const int32_t i00 = y0[k] * per_axis + x0[k];
        book_crossing(i00, w0[k], h0[k]);
        if (cspan != 0) book_crossing(i00 + 1, w1[k], h0[k]);
        if (rspan != 0) {
          book_crossing(i00 + per_axis, w0[k], h1[k]);
          if (cspan != 0) book_crossing(i00 + per_axis + 1, w1[k], h1[k]);
        }
      } else {
        PhCellsOnlySink sink{cells};
        EmitPhContribution(grid, variant, rects[lo + k], x0[k], y0[k],
                           x1[k], y1[k], sink);
      }
    }
  }
  *crossing_count = cc;
  *span_sum = ss;
}

}  // namespace

// Folds one MBR into the per-cell sums with the given weight (+1 add,
// -1 remove).
void PhHistogram::Apply(const Rect& r, double weight) {
  PhDirectSink sink{&cells_, &span_sum_, &crossing_count_, weight};
  ForEachPhContribution(grid_, variant_, r, sink);
}

void PhHistogram::AddRect(const Rect& r) {
  Apply(r, +1.0);
  ++n_;
}

void PhHistogram::RemoveRect(const Rect& r) {
  Apply(r, -1.0);
  if (n_ > 0) --n_;
}

Status PhHistogram::Merge(const PhHistogram& other) {
  if (!grid_.CompatibleWith(other.grid_)) {
    return Status::InvalidArgument(
        "cannot merge PH histograms built on different grids");
  }
  if (variant_ != other.variant_) {
    return Status::InvalidArgument(
        "cannot merge PH histograms of different variants");
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    Cell& dst = cells_[i];
    const Cell& src = other.cells_[i];
    dst.num += src.num;
    dst.area_sum += src.area_sum;
    dst.w_sum += src.w_sum;
    dst.h_sum += src.h_sum;
    dst.num_x += src.num_x;
    dst.area_sum_x += src.area_sum_x;
    dst.w_sum_x += src.w_sum_x;
    dst.h_sum_x += src.h_sum_x;
  }
  span_sum_ += other.span_sum_;
  crossing_count_ += other.crossing_count_;
  n_ += other.n_;
  return Status::OK();
}

Result<PhHistogram> PhHistogram::Build(const Dataset& ds, const Rect& extent,
                                       int level, PhVariant variant,
                                       int threads) {
  SJSEL_TRACE_SPAN("ph.build", "dataset=%s rects=%zu level=%d threads=%d",
                   ds.name().c_str(), ds.size(), level, threads);
  SJSEL_METRIC_INC("hist.ph.builds");
  SJSEL_METRIC_SCOPED_LATENCY("hist.ph.build_us");
  auto hist_result = CreateEmpty(extent, level, variant);
  if (!hist_result.ok()) return hist_result.status();
  PhHistogram hist = std::move(hist_result).value();
  hist.name_ = ds.name();
  const size_t n = ds.size();
  hist.n_ = static_cast<uint64_t>(n);
  if (n == 0) return hist;

  const Grid& grid = hist.grid_;
  const int per_axis = grid.per_axis();
  const int tiles_per_axis = (per_axis + kPhTileCells - 1) / kPhTileCells;
  const int64_t num_tiles =
      static_cast<int64_t>(tiles_per_axis) * tiles_per_axis;
  const bool blocked =
      (threads > 1 && num_tiles > 1) ||
      grid.num_cells() * static_cast<int64_t>(sizeof(Cell)) >
          kPhCacheResidentBytes;
  if (!blocked) {
    // Serial cache-resident regime: the fused AoS kernel + scatter pass
    // (books the global crossing sums inline, in dataset order).
    PhSerialBuild(grid, ds, variant, &hist.cells_, &hist.span_sum_,
                  &hist.crossing_count_);
    return hist;
  }

  // Pass 1 (bin): vectorized cell ranges for the whole dataset, the
  // global crossing sums in dataset order, and the counting sort of rect
  // payloads into tiles of cells (see core/tile_build.h for the
  // bit-identity argument).
  const SoaDataset soa = SoaDataset::FromDataset(ds);
  const SoaSlice all = soa.Slice();
  AlignedVector<int32_t> x0(n), y0(n), x1(n), y1(n);
  const GridGeom geom{grid.extent().min_x, grid.extent().min_y,
                      grid.cell_width(), grid.cell_height(), per_axis};
  CellRangeBatch(geom, all, x0.data(), y0.data(), x1.data(), y1.data());
  if (variant == PhVariant::kSplitCrossing) {
    // The same additions CrossingGlobal books per crossing rect, in the
    // same dataset order; the accumulation engine never books them.
    for (size_t i = 0; i < n; ++i) {
      if (x0[i] == x1[i] && y0[i] == y1[i]) continue;
      hist.crossing_count_ += 1.0;
      hist.span_sum_ += static_cast<double>(x1[i] - x0[i] + 1) *
                        static_cast<double>(y1[i] - y0[i] + 1);
    }
  }

  // Pass 2 (accumulate): the expand-clip-accumulate engine per tile of
  // cells over the binned payload.
  const tile_build::TileBins bins = tile_build::BinRectsByTile(
      all, per_axis, kPhTileCells, x0.data(), y0.data(), x1.data(),
      y1.data());
  const SoaSlice binned = bins.CoordSlice(0, bins.offsets.back());
  tile_build::ForEachTile(bins.num_tiles(), threads, [&](int64_t t) {
    const tile_build::TileBounds tile = tile_build::BoundsOfTile(
        t, bins.tiles_per_axis, kPhTileCells, per_axis);
    PhAccumulateRun(grid, variant, bins.x0.data(), bins.y0.data(),
                    bins.x1.data(), bins.y1.data(), binned, bins.offsets[t],
                    bins.offsets[t + 1], tile, &hist.cells_);
  });
  return hist;
}

namespace {

// One Aref–Samet term (Equation 1 restricted to a cell): population 1 of
// (n1, cov1, w1, h1) against population 2, where cov is an area *ratio* to
// the cell area and w/h are per-item averages.
double ArefSametTerm(double n1, double cov1, double w1, double h1, double n2,
                     double cov2, double w2, double h2, double cell_area) {
  return n1 * cov2 + cov1 * n2 + n1 * n2 * (w1 * h2 + h1 * w2) / cell_area;
}

struct CellAverages {
  double n = 0.0;
  double cov = 0.0;
  double w = 0.0;
  double h = 0.0;
};

CellAverages ContAverages(const PhHistogram::Cell& c, double cell_area) {
  CellAverages a;
  a.n = c.num;
  a.cov = c.area_sum / cell_area;
  if (c.num > 0.0) {
    a.w = c.w_sum / c.num;
    a.h = c.h_sum / c.num;
  }
  return a;
}

CellAverages IsectAverages(const PhHistogram::Cell& c, double cell_area) {
  CellAverages a;
  a.n = c.num_x;
  a.cov = c.area_sum_x / cell_area;
  if (c.num_x > 0.0) {
    a.w = c.w_sum_x / c.num_x;
    a.h = c.h_sum_x / c.num_x;
  }
  return a;
}

// The four Equation 3 terms of one cell. Both the scalar estimate and
// PhPerCellContributions go through this helper, so the per-cell
// breakdown accumulates to the scalar sum bit for bit.
PhCellContribution PhCellTerms(const PhHistogram::Cell& ca,
                               const PhHistogram::Cell& cb,
                               double cell_area) {
  const CellAverages cont1 = ContAverages(ca, cell_area);
  const CellAverages isect1 = IsectAverages(ca, cell_area);
  const CellAverages cont2 = ContAverages(cb, cell_area);
  const CellAverages isect2 = IsectAverages(cb, cell_area);
  PhCellContribution t;
  t.sa = ArefSametTerm(cont1.n, cont1.cov, cont1.w, cont1.h, cont2.n,
                       cont2.cov, cont2.w, cont2.h, cell_area);
  t.sb = ArefSametTerm(cont1.n, cont1.cov, cont1.w, cont1.h, isect2.n,
                       isect2.cov, isect2.w, isect2.h, cell_area);
  t.sc = ArefSametTerm(isect1.n, isect1.cov, isect1.w, isect1.h, cont2.n,
                       cont2.cov, cont2.w, cont2.h, cell_area);
  t.sd_raw = ArefSametTerm(isect1.n, isect1.cov, isect1.w, isect1.h,
                           isect2.n, isect2.cov, isect2.w, isect2.h,
                           cell_area);
  return t;
}

Status CheckPhCombinable(const PhHistogram& a, const PhHistogram& b) {
  if (!a.grid().CompatibleWith(b.grid())) {
    return Status::InvalidArgument(
        "PH histograms built on different grids cannot be combined");
  }
  if (a.variant() != b.variant()) {
    return Status::InvalidArgument(
        "PH histograms of different variants cannot be combined");
  }
  return Status::OK();
}

}  // namespace

Result<double> EstimatePhJoinPairs(const PhHistogram& a, const PhHistogram& b,
                                   PhEstimateOptions options) {
  if (const Status st = CheckPhCombinable(a, b); !st.ok()) return st;
  const double cell_area = a.grid().cell_area();
  const auto& cells_a = a.cells();
  const auto& cells_b = b.cells();

  double sum_abc = 0.0;  // Sa + Sb + Sc
  double sum_d = 0.0;    // Sd, corrected for multiple counting below
  for (size_t i = 0; i < cells_a.size(); ++i) {
    const PhCellContribution t = PhCellTerms(cells_a[i], cells_b[i],
                                             cell_area);
    sum_abc += t.sa;
    sum_abc += t.sb;
    sum_abc += t.sc;
    sum_d += t.sd_raw;
  }

  sum_d /= PhMeanSpan(a, b, options);
  return sum_abc + sum_d;
}

Result<std::vector<PhCellContribution>> PhPerCellContributions(
    const PhHistogram& a, const PhHistogram& b) {
  if (const Status st = CheckPhCombinable(a, b); !st.ok()) return st;
  const double cell_area = a.grid().cell_area();
  const auto& cells_a = a.cells();
  const auto& cells_b = b.cells();
  std::vector<PhCellContribution> out;
  out.reserve(cells_a.size());
  for (size_t i = 0; i < cells_a.size(); ++i) {
    out.push_back(PhCellTerms(cells_a[i], cells_b[i], cell_area));
  }
  return out;
}

double PhMeanSpan(const PhHistogram& a, const PhHistogram& b,
                  PhEstimateOptions options) {
  if (!options.apply_span_correction) return 1.0;
  const double mean_span = (a.avg_span() + b.avg_span()) / 2.0;
  return mean_span > 0.0 ? mean_span : 1.0;
}

Result<double> EstimatePhJoinSelectivity(const PhHistogram& a,
                                         const PhHistogram& b,
                                         PhEstimateOptions options) {
  if (a.dataset_size() == 0 || b.dataset_size() == 0) {
    return Status::FailedPrecondition(
        "selectivity undefined for empty datasets");
  }
  double pairs = 0.0;
  SJSEL_ASSIGN_OR_RETURN(pairs, EstimatePhJoinPairs(a, b, options));
  return pairs / (static_cast<double>(a.dataset_size()) *
                  static_cast<double>(b.dataset_size()));
}

Status PhHistogram::Save(const std::string& path) const {
  BinaryWriter w;
  w.BeginEnvelope(kPhMagic, kPhVersion);
  w.PutU8(variant_ == PhVariant::kNaive ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(grid_.level()));
  w.PutDouble(grid_.extent().min_x);
  w.PutDouble(grid_.extent().min_y);
  w.PutDouble(grid_.extent().max_x);
  w.PutDouble(grid_.extent().max_y);
  w.PutU64(n_);
  w.PutDouble(span_sum_);
  w.PutDouble(crossing_count_);
  w.PutString(name_);
  w.PutU64(cells_.size());
  for (const Cell& c : cells_) {
    w.PutDouble(c.num);
    w.PutDouble(c.area_sum);
    w.PutDouble(c.w_sum);
    w.PutDouble(c.h_sum);
    w.PutDouble(c.num_x);
    w.PutDouble(c.area_sum_x);
    w.PutDouble(c.w_sum_x);
    w.PutDouble(c.h_sum_x);
  }
  return WriteFile(path, w.SealEnvelope());
}

Result<PhHistogram> PhHistogram::Load(const std::string& path) {
  std::string data;
  SJSEL_ASSIGN_OR_RETURN(data, ReadFile(path));
  BinaryReader r(std::move(data));
  uint8_t version = 0;
  SJSEL_ASSIGN_OR_RETURN(version, r.OpenEnvelope(kPhMagic, "PH histogram"));
  if (version != kPhVersion) {
    return Status::Corruption("unsupported PH version " +
                              std::to_string(version));
  }
  uint8_t variant_byte = 0;
  SJSEL_ASSIGN_OR_RETURN(variant_byte, r.GetU8());
  uint32_t level = 0;
  SJSEL_ASSIGN_OR_RETURN(level, r.GetU32());
  Rect extent;
  SJSEL_ASSIGN_OR_RETURN(extent.min_x, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(extent.min_y, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(extent.max_x, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(extent.max_y, r.GetDouble());

  auto grid_result = Grid::Create(extent, static_cast<int>(level));
  if (!grid_result.ok()) return grid_result.status();
  PhHistogram hist(std::move(grid_result).value(),
                   variant_byte == 1 ? PhVariant::kNaive
                                     : PhVariant::kSplitCrossing);

  SJSEL_ASSIGN_OR_RETURN(hist.n_, r.GetU64());
  SJSEL_ASSIGN_OR_RETURN(hist.span_sum_, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(hist.crossing_count_, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(hist.name_, r.GetString());
  uint64_t cell_count = 0;
  SJSEL_ASSIGN_OR_RETURN(cell_count, r.GetU64());
  if (cell_count != static_cast<uint64_t>(hist.grid_.num_cells())) {
    return Status::Corruption("PH cell count mismatch in " + path);
  }
  hist.cells_.resize(cell_count);
  for (Cell& c : hist.cells_) {
    SJSEL_ASSIGN_OR_RETURN(c.num, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.area_sum, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.w_sum, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.h_sum, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.num_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.area_sum_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.w_sum_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.h_sum_x, r.GetDouble());
  }
  SJSEL_RETURN_IF_ERROR(r.ExpectBodyEnd("PH file " + path));
  return hist;
}

}  // namespace sjsel
