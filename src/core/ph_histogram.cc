#include "core/ph_histogram.h"

#include <algorithm>

#include "core/kernels.h"
#include "geom/soa_dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/aligned.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace sjsel {
namespace {

constexpr uint32_t kPhMagic = 0x53504847;  // "SPHG"
constexpr uint32_t kPhVersion = 2;

// Emits one MBR's PH contributions given its precomputed cell range, in a
// fixed order (the order Apply has always used): Contained per overlapped
// cell for contained/naive bookings, else CrossingGlobal once followed by
// Crossing per cell.
template <typename Sink>
void EmitPhContribution(const Grid& grid, PhVariant variant, const Rect& r,
                        int x0, int y0, int x1, int y1, Sink&& sink) {
  const bool contained = x0 == x1 && y0 == y1;

  if (contained || variant == PhVariant::kNaive) {
    // Naive gridding books the full MBR into every overlapped cell; the
    // real PH books contained MBRs into exactly one.
    for (int cy = y0; cy <= y1; ++cy) {
      for (int cx = x0; cx <= x1; ++cx) {
        sink.Contained(grid.Flat(cx, cy), r.area(), r.width(), r.height());
      }
    }
    return;
  }

  sink.CrossingGlobal(static_cast<double>(x1 - x0 + 1) *
                      static_cast<double>(y1 - y0 + 1));
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      const Rect cell_rect = grid.CellRect(cx, cy);
      const double w =
          OverlapLen(r.min_x, r.max_x, cell_rect.min_x, cell_rect.max_x);
      const double h =
          OverlapLen(r.min_y, r.max_y, cell_rect.min_y, cell_rect.max_y);
      sink.Crossing(grid.Flat(cx, cy), w * h, w, h);
    }
  }
}

// Scalar entry point: cell range, then emit. Shared by the direct
// mutation path (Apply) and the recording path of the parallel build.
template <typename Sink>
void ForEachPhContribution(const Grid& grid, PhVariant variant, const Rect& r,
                           Sink&& sink) {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
  grid.CellRange(r, &x0, &y0, &x1, &y1);
  EmitPhContribution(grid, variant, r, x0, y0, x1, y1, sink);
}

// Reusable per-chunk buffers of the batch build path.
struct PhBatchScratch {
  AlignedVector<int32_t> x0, y0, x1, y1;
  AlignedVector<double> area, w, h;

  void Resize(size_t n) {
    x0.resize(n);
    y0.resize(n);
    x1.resize(n);
    y1.resize(n);
    area.resize(n);
    w.resize(n);
    h.resize(n);
  }
};

// Batch-kernel contribution pass over a SoA chunk: vectorized cell ranges
// and contained-population terms (width/height/area) for the whole chunk,
// then per-rect emission in the exact scalar order. The contained terms
// are plain subtractions/products, so they are bitwise identical to
// Rect::width()/height()/area(); crossing rects fall back to the scalar
// clipping loop with their precomputed range.
template <typename Sink>
void PhContributionBatch(const Grid& grid, PhVariant variant,
                         const SoaSlice& slice, PhBatchScratch* scratch,
                         Sink&& sink) {
  const size_t n = slice.size;
  scratch->Resize(n);
  const GridGeom geom{grid.extent().min_x, grid.extent().min_y,
                      grid.cell_width(), grid.cell_height(),
                      grid.per_axis()};
  CellRangeBatch(geom, slice, scratch->x0.data(), scratch->y0.data(),
                 scratch->x1.data(), scratch->y1.data());
  PhContainedTermsBatch(slice, scratch->area.data(), scratch->w.data(),
                        scratch->h.data());
  for (size_t i = 0; i < n; ++i) {
    const int x0 = scratch->x0[i];
    const int y0 = scratch->y0[i];
    const int x1 = scratch->x1[i];
    const int y1 = scratch->y1[i];
    const bool contained = x0 == x1 && y0 == y1;
    if (contained) {
      sink.Contained(grid.Flat(x0, y0), scratch->area[i], scratch->w[i],
                     scratch->h[i]);
    } else if (variant == PhVariant::kNaive) {
      for (int cy = y0; cy <= y1; ++cy) {
        for (int cx = x0; cx <= x1; ++cx) {
          sink.Contained(grid.Flat(cx, cy), scratch->area[i], scratch->w[i],
                         scratch->h[i]);
        }
      }
    } else {
      EmitPhContribution(grid, variant, slice.RectAt(i), x0, y0, x1, y1,
                         sink);
    }
  }
}

// One recorded cell update of the parallel build; replayed in dataset
// order on the calling thread so parallel results are bit-identical to
// serial (same trick as the GH builder).
struct PhContribution {
  int64_t idx;   ///< cell index; unused for kind 2
  uint8_t kind;  ///< 0 = contained, 1 = crossing, 2 = crossing-global
  double area;   ///< clipped area, or the span for kind 2
  double w;
  double h;
};

struct PhRecordingSink {
  std::vector<PhContribution>* out;

  void Contained(int64_t idx, double area, double w, double h) {
    out->push_back({idx, 0, area, w, h});
  }
  void Crossing(int64_t idx, double area, double w, double h) {
    out->push_back({idx, 1, area, w, h});
  }
  void CrossingGlobal(double span) { out->push_back({0, 2, span, 0.0, 0.0}); }
};

// Chunk size of the parallel build; fixed so the decomposition (and the
// replay order) never depends on the thread count.
constexpr int64_t kBuildChunk = 2048;

}  // namespace

Result<PhHistogram> PhHistogram::CreateEmpty(const Rect& extent, int level,
                                             PhVariant variant) {
  auto grid_result = Grid::Create(extent, level);
  if (!grid_result.ok()) return grid_result.status();
  PhHistogram hist(std::move(grid_result).value(), variant);
  hist.cells_.assign(hist.grid_.num_cells(), Cell());
  return hist;
}

namespace {

// Sink that mutates a histogram's sums directly with a +/-1 weight.
struct PhDirectSink {
  std::vector<PhHistogram::Cell>* cells;
  double* span_sum;
  double* crossing_count;
  double weight;

  void Contained(int64_t idx, double area, double w, double h) {
    PhHistogram::Cell& cell = (*cells)[idx];
    cell.num += weight;
    cell.area_sum += weight * area;
    cell.w_sum += weight * w;
    cell.h_sum += weight * h;
  }
  void Crossing(int64_t idx, double area, double w, double h) {
    PhHistogram::Cell& cell = (*cells)[idx];
    cell.num_x += weight;
    cell.area_sum_x += weight * area;
    cell.w_sum_x += weight * w;
    cell.h_sum_x += weight * h;
  }
  void CrossingGlobal(double span) {
    *crossing_count += weight;
    *span_sum += weight * span;
  }
};

}  // namespace

// Folds one MBR into the per-cell sums with the given weight (+1 add,
// -1 remove).
void PhHistogram::Apply(const Rect& r, double weight) {
  PhDirectSink sink{&cells_, &span_sum_, &crossing_count_, weight};
  ForEachPhContribution(grid_, variant_, r, sink);
}

void PhHistogram::AddRect(const Rect& r) {
  Apply(r, +1.0);
  ++n_;
}

void PhHistogram::RemoveRect(const Rect& r) {
  Apply(r, -1.0);
  if (n_ > 0) --n_;
}

Status PhHistogram::Merge(const PhHistogram& other) {
  if (!grid_.CompatibleWith(other.grid_)) {
    return Status::InvalidArgument(
        "cannot merge PH histograms built on different grids");
  }
  if (variant_ != other.variant_) {
    return Status::InvalidArgument(
        "cannot merge PH histograms of different variants");
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    Cell& dst = cells_[i];
    const Cell& src = other.cells_[i];
    dst.num += src.num;
    dst.area_sum += src.area_sum;
    dst.w_sum += src.w_sum;
    dst.h_sum += src.h_sum;
    dst.num_x += src.num_x;
    dst.area_sum_x += src.area_sum_x;
    dst.w_sum_x += src.w_sum_x;
    dst.h_sum_x += src.h_sum_x;
  }
  span_sum_ += other.span_sum_;
  crossing_count_ += other.crossing_count_;
  n_ += other.n_;
  return Status::OK();
}

Result<PhHistogram> PhHistogram::Build(const Dataset& ds, const Rect& extent,
                                       int level, PhVariant variant,
                                       int threads) {
  SJSEL_TRACE_SPAN("ph.build", "dataset=%s rects=%zu level=%d threads=%d",
                   ds.name().c_str(), ds.size(), level, threads);
  SJSEL_METRIC_INC("hist.ph.builds");
  SJSEL_METRIC_SCOPED_LATENCY("hist.ph.build_us");
  auto hist_result = CreateEmpty(extent, level, variant);
  if (!hist_result.ok()) return hist_result.status();
  PhHistogram hist = std::move(hist_result).value();
  hist.name_ = ds.name();
  const int64_t n = static_cast<int64_t>(ds.size());

  // Both build paths run over the SoA layout so the per-chunk geometry
  // goes through the batch kernels; accumulation stays scalar and in
  // dataset order (bit-identical to an AddRect loop).
  const SoaDataset soa = SoaDataset::FromDataset(ds);

  if (threads <= 1 || n <= kBuildChunk) {
    PhBatchScratch scratch;
    PhDirectSink sink{&hist.cells_, &hist.span_sum_, &hist.crossing_count_,
                      +1.0};
    for (int64_t begin = 0; begin < n; begin += kBuildChunk) {
      const int64_t end = std::min(n, begin + kBuildChunk);
      PhContributionBatch(hist.grid_, variant,
                          soa.Slice(static_cast<size_t>(begin),
                                    static_cast<size_t>(end)),
                          &scratch, sink);
    }
    hist.n_ = static_cast<uint64_t>(n);
    return hist;
  }

  // Parallel phase: workers record each chunk's contributions (cell
  // ranges, clipping, batched through the kernels) without touching
  // shared state.
  const int64_t blocks = ParallelForNumBlocks(n, kBuildChunk);
  std::vector<std::vector<PhContribution>> recorded(
      static_cast<size_t>(blocks));
  ThreadPool pool(threads);
  ParallelFor(&pool, n, kBuildChunk,
              [&](int64_t block, int64_t begin, int64_t end) {
                auto& out = recorded[static_cast<size_t>(block)];
                out.reserve(static_cast<size_t>(end - begin) * 4);
                PhRecordingSink sink{&out};
                PhBatchScratch scratch;
                PhContributionBatch(hist.grid_, variant,
                                    soa.Slice(static_cast<size_t>(begin),
                                              static_cast<size_t>(end)),
                                    &scratch, sink);
              });

  // Serial replay in chunk order = dataset order; every sum sees its
  // additions in the serial order, so the result is bit-identical for any
  // thread count.
  PhDirectSink sink{&hist.cells_, &hist.span_sum_, &hist.crossing_count_,
                    +1.0};
  for (const auto& chunk : recorded) {
    for (const PhContribution& rec : chunk) {
      switch (rec.kind) {
        case 0: sink.Contained(rec.idx, rec.area, rec.w, rec.h); break;
        case 1: sink.Crossing(rec.idx, rec.area, rec.w, rec.h); break;
        default: sink.CrossingGlobal(rec.area); break;
      }
    }
  }
  hist.n_ = static_cast<uint64_t>(n);
  return hist;
}

namespace {

// One Aref–Samet term (Equation 1 restricted to a cell): population 1 of
// (n1, cov1, w1, h1) against population 2, where cov is an area *ratio* to
// the cell area and w/h are per-item averages.
double ArefSametTerm(double n1, double cov1, double w1, double h1, double n2,
                     double cov2, double w2, double h2, double cell_area) {
  return n1 * cov2 + cov1 * n2 + n1 * n2 * (w1 * h2 + h1 * w2) / cell_area;
}

struct CellAverages {
  double n = 0.0;
  double cov = 0.0;
  double w = 0.0;
  double h = 0.0;
};

CellAverages ContAverages(const PhHistogram::Cell& c, double cell_area) {
  CellAverages a;
  a.n = c.num;
  a.cov = c.area_sum / cell_area;
  if (c.num > 0.0) {
    a.w = c.w_sum / c.num;
    a.h = c.h_sum / c.num;
  }
  return a;
}

CellAverages IsectAverages(const PhHistogram::Cell& c, double cell_area) {
  CellAverages a;
  a.n = c.num_x;
  a.cov = c.area_sum_x / cell_area;
  if (c.num_x > 0.0) {
    a.w = c.w_sum_x / c.num_x;
    a.h = c.h_sum_x / c.num_x;
  }
  return a;
}

// The four Equation 3 terms of one cell. Both the scalar estimate and
// PhPerCellContributions go through this helper, so the per-cell
// breakdown accumulates to the scalar sum bit for bit.
PhCellContribution PhCellTerms(const PhHistogram::Cell& ca,
                               const PhHistogram::Cell& cb,
                               double cell_area) {
  const CellAverages cont1 = ContAverages(ca, cell_area);
  const CellAverages isect1 = IsectAverages(ca, cell_area);
  const CellAverages cont2 = ContAverages(cb, cell_area);
  const CellAverages isect2 = IsectAverages(cb, cell_area);
  PhCellContribution t;
  t.sa = ArefSametTerm(cont1.n, cont1.cov, cont1.w, cont1.h, cont2.n,
                       cont2.cov, cont2.w, cont2.h, cell_area);
  t.sb = ArefSametTerm(cont1.n, cont1.cov, cont1.w, cont1.h, isect2.n,
                       isect2.cov, isect2.w, isect2.h, cell_area);
  t.sc = ArefSametTerm(isect1.n, isect1.cov, isect1.w, isect1.h, cont2.n,
                       cont2.cov, cont2.w, cont2.h, cell_area);
  t.sd_raw = ArefSametTerm(isect1.n, isect1.cov, isect1.w, isect1.h,
                           isect2.n, isect2.cov, isect2.w, isect2.h,
                           cell_area);
  return t;
}

Status CheckPhCombinable(const PhHistogram& a, const PhHistogram& b) {
  if (!a.grid().CompatibleWith(b.grid())) {
    return Status::InvalidArgument(
        "PH histograms built on different grids cannot be combined");
  }
  if (a.variant() != b.variant()) {
    return Status::InvalidArgument(
        "PH histograms of different variants cannot be combined");
  }
  return Status::OK();
}

}  // namespace

Result<double> EstimatePhJoinPairs(const PhHistogram& a, const PhHistogram& b,
                                   PhEstimateOptions options) {
  if (const Status st = CheckPhCombinable(a, b); !st.ok()) return st;
  const double cell_area = a.grid().cell_area();
  const auto& cells_a = a.cells();
  const auto& cells_b = b.cells();

  double sum_abc = 0.0;  // Sa + Sb + Sc
  double sum_d = 0.0;    // Sd, corrected for multiple counting below
  for (size_t i = 0; i < cells_a.size(); ++i) {
    const PhCellContribution t = PhCellTerms(cells_a[i], cells_b[i],
                                             cell_area);
    sum_abc += t.sa;
    sum_abc += t.sb;
    sum_abc += t.sc;
    sum_d += t.sd_raw;
  }

  sum_d /= PhMeanSpan(a, b, options);
  return sum_abc + sum_d;
}

Result<std::vector<PhCellContribution>> PhPerCellContributions(
    const PhHistogram& a, const PhHistogram& b) {
  if (const Status st = CheckPhCombinable(a, b); !st.ok()) return st;
  const double cell_area = a.grid().cell_area();
  const auto& cells_a = a.cells();
  const auto& cells_b = b.cells();
  std::vector<PhCellContribution> out;
  out.reserve(cells_a.size());
  for (size_t i = 0; i < cells_a.size(); ++i) {
    out.push_back(PhCellTerms(cells_a[i], cells_b[i], cell_area));
  }
  return out;
}

double PhMeanSpan(const PhHistogram& a, const PhHistogram& b,
                  PhEstimateOptions options) {
  if (!options.apply_span_correction) return 1.0;
  const double mean_span = (a.avg_span() + b.avg_span()) / 2.0;
  return mean_span > 0.0 ? mean_span : 1.0;
}

Result<double> EstimatePhJoinSelectivity(const PhHistogram& a,
                                         const PhHistogram& b,
                                         PhEstimateOptions options) {
  if (a.dataset_size() == 0 || b.dataset_size() == 0) {
    return Status::FailedPrecondition(
        "selectivity undefined for empty datasets");
  }
  double pairs = 0.0;
  SJSEL_ASSIGN_OR_RETURN(pairs, EstimatePhJoinPairs(a, b, options));
  return pairs / (static_cast<double>(a.dataset_size()) *
                  static_cast<double>(b.dataset_size()));
}

Status PhHistogram::Save(const std::string& path) const {
  BinaryWriter w;
  w.PutU32(kPhMagic);
  w.PutU32(kPhVersion);
  w.PutU8(variant_ == PhVariant::kNaive ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(grid_.level()));
  w.PutDouble(grid_.extent().min_x);
  w.PutDouble(grid_.extent().min_y);
  w.PutDouble(grid_.extent().max_x);
  w.PutDouble(grid_.extent().max_y);
  w.PutU64(n_);
  w.PutDouble(span_sum_);
  w.PutDouble(crossing_count_);
  w.PutString(name_);
  w.PutU64(cells_.size());
  for (const Cell& c : cells_) {
    w.PutDouble(c.num);
    w.PutDouble(c.area_sum);
    w.PutDouble(c.w_sum);
    w.PutDouble(c.h_sum);
    w.PutDouble(c.num_x);
    w.PutDouble(c.area_sum_x);
    w.PutDouble(c.w_sum_x);
    w.PutDouble(c.h_sum_x);
  }
  const uint32_t crc = w.Crc32();
  BinaryWriter trailer;
  trailer.PutU32(crc);
  return WriteFile(path, w.buffer() + trailer.buffer());
}

Result<PhHistogram> PhHistogram::Load(const std::string& path) {
  std::string data;
  SJSEL_ASSIGN_OR_RETURN(data, ReadFile(path));
  if (data.size() < sizeof(uint32_t)) {
    return Status::Corruption("PH file too short: " + path);
  }
  const size_t body_size = data.size() - sizeof(uint32_t);
  BinaryReader r(std::move(data));
  uint32_t body_crc = 0;
  SJSEL_ASSIGN_OR_RETURN(body_crc, r.Crc32Prefix(body_size));

  uint32_t magic = 0;
  SJSEL_ASSIGN_OR_RETURN(magic, r.GetU32());
  if (magic != kPhMagic) return Status::Corruption("bad PH magic in " + path);
  uint32_t version = 0;
  SJSEL_ASSIGN_OR_RETURN(version, r.GetU32());
  if (version != kPhVersion) {
    return Status::Corruption("unsupported PH version");
  }
  uint8_t variant_byte = 0;
  SJSEL_ASSIGN_OR_RETURN(variant_byte, r.GetU8());
  uint32_t level = 0;
  SJSEL_ASSIGN_OR_RETURN(level, r.GetU32());
  Rect extent;
  SJSEL_ASSIGN_OR_RETURN(extent.min_x, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(extent.min_y, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(extent.max_x, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(extent.max_y, r.GetDouble());

  auto grid_result = Grid::Create(extent, static_cast<int>(level));
  if (!grid_result.ok()) return grid_result.status();
  PhHistogram hist(std::move(grid_result).value(),
                   variant_byte == 1 ? PhVariant::kNaive
                                     : PhVariant::kSplitCrossing);

  SJSEL_ASSIGN_OR_RETURN(hist.n_, r.GetU64());
  SJSEL_ASSIGN_OR_RETURN(hist.span_sum_, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(hist.crossing_count_, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(hist.name_, r.GetString());
  uint64_t cell_count = 0;
  SJSEL_ASSIGN_OR_RETURN(cell_count, r.GetU64());
  if (cell_count != static_cast<uint64_t>(hist.grid_.num_cells())) {
    return Status::Corruption("PH cell count mismatch in " + path);
  }
  hist.cells_.resize(cell_count);
  for (Cell& c : hist.cells_) {
    SJSEL_ASSIGN_OR_RETURN(c.num, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.area_sum, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.w_sum, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.h_sum, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.num_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.area_sum_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.w_sum_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(c.h_sum_x, r.GetDouble());
  }
  if (r.position() != body_size) {
    return Status::Corruption("trailing garbage in PH file " + path);
  }
  uint32_t stored_crc = 0;
  SJSEL_ASSIGN_OR_RETURN(stored_crc, r.GetU32());
  if (stored_crc != body_crc) {
    return Status::Corruption("PH CRC mismatch in " + path);
  }
  return hist;
}

}  // namespace sjsel
