#include "core/kernels.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SJSEL_KERNELS_X86 1
#include <immintrin.h>
#else
#define SJSEL_KERNELS_X86 0
#endif

#if defined(__aarch64__)
#define SJSEL_KERNELS_AARCH64 1
#else
#define SJSEL_KERNELS_AARCH64 0
#endif

namespace sjsel {
namespace {

// -1 = no override; otherwise the int value of the forced KernelBackend.
std::atomic<int> g_backend_override{-1};

KernelBackend ProbeBackend() {
#if SJSEL_KERNELS_X86
  if (__builtin_cpu_supports("avx512f")) return KernelBackend::kAvx512;
  if (__builtin_cpu_supports("avx2")) return KernelBackend::kAvx2;
#endif
#if SJSEL_KERNELS_AARCH64
  return KernelBackend::kNeon;
#endif
  return KernelBackend::kScalar;
}

// SJSEL_KERNEL_BACKEND, parsed and validated once. -1 = unset or invalid
// (invalid values warn to stderr and fall back to detection rather than
// aborting a long-running daemon over a typo; the CLI flag is strict).
int EnvBackendOverride() {
  static const int cached = [] {
    const char* env = std::getenv("SJSEL_KERNEL_BACKEND");
    if (env == nullptr || env[0] == '\0') return -1;
    KernelBackend backend;
    if (!ParseKernelBackend(env, &backend)) {
      std::fprintf(stderr,
                   "sjsel: ignoring unknown SJSEL_KERNEL_BACKEND '%s' "
                   "(want scalar|avx2|avx512|neon)\n",
                   env);
      return -1;
    }
    if (!KernelBackendAvailable(backend)) {
      std::fprintf(stderr,
                   "sjsel: SJSEL_KERNEL_BACKEND=%s not available on this "
                   "CPU, using %s\n",
                   env, KernelBackendName(DetectKernelBackend()));
      return -1;
    }
    return static_cast<int>(backend);
  }();
  return cached;
}

// One grid-cell coordinate, identical to Grid::CellX / Grid::CellY: floor
// of the scaled offset, clamped into [0, per_axis).
inline int32_t CellCoordScalar(double v, double origin, double cell_size,
                               int per_axis) {
  int c = static_cast<int>(std::floor((v - origin) / cell_size));
  if (c < 0) c = 0;
  if (c >= per_axis) c = per_axis - 1;
  return c;
}

// ---------------------------------------------------------------------------
// Scalar backends. These are the semantic reference: every SIMD kernel must
// reproduce them bit-for-bit, lane by lane. The kNeon backend currently
// dispatches here too (stub slot for aarch64 ports).
// ---------------------------------------------------------------------------

void CellRangeBatchScalar(const GridGeom& g, const SoaSlice& rects,
                          int32_t* x0, int32_t* y0, int32_t* x1,
                          int32_t* y1) {
  for (std::size_t i = 0; i < rects.size; ++i) {
    x0[i] = CellCoordScalar(rects.min_x[i], g.min_x, g.cell_w, g.per_axis);
    y0[i] = CellCoordScalar(rects.min_y[i], g.min_y, g.cell_h, g.per_axis);
    x1[i] = CellCoordScalar(rects.max_x[i], g.min_x, g.cell_w, g.per_axis);
    y1[i] = CellCoordScalar(rects.max_y[i], g.min_y, g.cell_h, g.per_axis);
  }
}

void GhSingleCellTermsBatchScalar(const GridGeom& gg, const SoaSlice& rects,
                                  const int32_t* x0, const int32_t* y0,
                                  double* out_area, double* out_h,
                                  double* out_v) {
  const GridGeom g = gg;  // see GhRectTermsBatchScalar: defeat aliasing reloads
  const double cell_area = g.cell_w * g.cell_h;
  for (std::size_t i = 0; i < rects.size; ++i) {
    const double cell_lo_x = g.min_x + x0[i] * g.cell_w;
    const double cell_hi_x = g.min_x + (x0[i] + 1) * g.cell_w;
    const double cell_lo_y = g.min_y + y0[i] * g.cell_h;
    const double cell_hi_y = g.min_y + (y0[i] + 1) * g.cell_h;
    const double w =
        OverlapLen(rects.min_x[i], rects.max_x[i], cell_lo_x, cell_hi_x);
    const double h =
        OverlapLen(rects.min_y[i], rects.max_y[i], cell_lo_y, cell_hi_y);
    out_area[i] = (w * h) / cell_area;
    out_h[i] = w / g.cell_w;
    out_v[i] = h / g.cell_h;
  }
}

void PhContainedTermsBatchScalar(const SoaSlice& rects, double* out_area,
                                 double* out_w, double* out_h) {
  for (std::size_t i = 0; i < rects.size; ++i) {
    const double w = rects.max_x[i] - rects.min_x[i];
    const double h = rects.max_y[i] - rects.min_y[i];
    out_w[i] = w;
    out_h[i] = h;
    out_area[i] = w * h;
  }
}

void GhEntryTermsBatchScalar(const GridGeom& g, std::size_t n,
                             const double* w, const double* h,
                             double* out_area, double* out_hf,
                             double* out_vf) {
  const double cell_area = g.cell_w * g.cell_h;
  for (std::size_t i = 0; i < n; ++i) {
    out_area[i] = (w[i] * h[i]) / cell_area;
    out_hf[i] = w[i] / g.cell_w;
    out_vf[i] = h[i] / g.cell_h;
  }
}

// Offsets every pointer of a fused-kernel output struct by `i` — the SIMD
// loops hand their remainders to the scalar reference through this.
inline GhRectTermsOut Advance(const GhRectTermsOut& o, std::size_t i) {
  return {o.x0 + i,  o.y0 + i,  o.x1 + i,  o.y1 + i,
          o.a00 + i, o.a01 + i, o.a10 + i, o.a11 + i,
          o.hf0 + i, o.hf1 + i, o.vf0 + i, o.vf1 + i};
}

inline PhRectClipOut Advance(const PhRectClipOut& o, std::size_t i) {
  return {o.x0 + i, o.y0 + i, o.x1 + i, o.y1 + i,
          o.w0 + i, o.w1 + i, o.h0 + i, o.h1 + i};
}

void GhRectTermsBatchScalar(const GridGeom& gg, const Rect* rects,
                            std::size_t n, const GhRectTermsOut& o) {
  // By-value copy: through the reference, every double store below could
  // alias a GridGeom field and force the compiler to reload it — a local
  // whose address never escapes provably cannot.
  const GridGeom g = gg;
  // The struct members are opaque pointers: without restrict the compiler
  // must assume a store through o.a00 can hit rects[i + 1] and serialize
  // the next iteration's loads behind this one's 8 stores. The no-overlap
  // precondition (kernels.h) makes the hoisted restrict copies legal.
  const Rect* __restrict__ in = rects;
  int32_t* __restrict__ ox0 = o.x0;
  int32_t* __restrict__ oy0 = o.y0;
  int32_t* __restrict__ ox1 = o.x1;
  int32_t* __restrict__ oy1 = o.y1;
  double* __restrict__ oa00 = o.a00;
  double* __restrict__ oa01 = o.a01;
  double* __restrict__ oa10 = o.a10;
  double* __restrict__ oa11 = o.a11;
  double* __restrict__ ohf0 = o.hf0;
  double* __restrict__ ohf1 = o.hf1;
  double* __restrict__ ovf0 = o.vf0;
  double* __restrict__ ovf1 = o.vf1;
  const double cell_area = g.cell_w * g.cell_h;
  for (std::size_t i = 0; i < n; ++i) {
    const Rect& r = in[i];
    const int32_t cx0 = CellCoordScalar(r.min_x, g.min_x, g.cell_w,
                                        g.per_axis);
    const int32_t cy0 = CellCoordScalar(r.min_y, g.min_y, g.cell_h,
                                        g.per_axis);
    ox0[i] = cx0;
    oy0[i] = cy0;
    ox1[i] = CellCoordScalar(r.max_x, g.min_x, g.cell_w, g.per_axis);
    oy1[i] = CellCoordScalar(r.max_y, g.min_y, g.cell_h, g.per_axis);
    // The same cell-bound arithmetic as Grid::CellRect for columns cx0 and
    // cx0+1 (rows cy0, cy0+1): the shared bound is one expression, so
    // adjacent cells partition the rect exactly as the per-cell path sees
    // them.
    const double col_lo = g.min_x + cx0 * g.cell_w;
    const double col_mid = g.min_x + (cx0 + 1) * g.cell_w;
    const double col_hi = g.min_x + (cx0 + 2) * g.cell_w;
    const double row_lo = g.min_y + cy0 * g.cell_h;
    const double row_mid = g.min_y + (cy0 + 1) * g.cell_h;
    const double row_hi = g.min_y + (cy0 + 2) * g.cell_h;
    const double w0 = OverlapLen(r.min_x, r.max_x, col_lo, col_mid);
    const double w1 = OverlapLen(r.min_x, r.max_x, col_mid, col_hi);
    const double h0 = OverlapLen(r.min_y, r.max_y, row_lo, row_mid);
    const double h1 = OverlapLen(r.min_y, r.max_y, row_mid, row_hi);
    oa00[i] = (w0 * h0) / cell_area;
    oa01[i] = (w0 * h1) / cell_area;
    oa10[i] = (w1 * h0) / cell_area;
    oa11[i] = (w1 * h1) / cell_area;
    ohf0[i] = w0 / g.cell_w;
    ohf1[i] = w1 / g.cell_w;
    ovf0[i] = h0 / g.cell_h;
    ovf1[i] = h1 / g.cell_h;
  }
}

void PhRectClipBatchScalar(const GridGeom& gg, const Rect* rects,
                           std::size_t n, const PhRectClipOut& o) {
  // By-value copy + hoisted restrict pointers, for the same reasons as
  // GhRectTermsBatchScalar: keep the geometry in registers and let the
  // stores of iteration i overlap the loads of iteration i + 1.
  const GridGeom g = gg;
  const Rect* __restrict__ in = rects;
  int32_t* __restrict__ ox0 = o.x0;
  int32_t* __restrict__ oy0 = o.y0;
  int32_t* __restrict__ ox1 = o.x1;
  int32_t* __restrict__ oy1 = o.y1;
  double* __restrict__ ow0 = o.w0;
  double* __restrict__ ow1 = o.w1;
  double* __restrict__ oh0 = o.h0;
  double* __restrict__ oh1 = o.h1;
  for (std::size_t i = 0; i < n; ++i) {
    const Rect& r = in[i];
    const int32_t cx0 = CellCoordScalar(r.min_x, g.min_x, g.cell_w,
                                        g.per_axis);
    const int32_t cy0 = CellCoordScalar(r.min_y, g.min_y, g.cell_h,
                                        g.per_axis);
    ox0[i] = cx0;
    oy0[i] = cy0;
    ox1[i] = CellCoordScalar(r.max_x, g.min_x, g.cell_w, g.per_axis);
    oy1[i] = CellCoordScalar(r.max_y, g.min_y, g.cell_h, g.per_axis);
    const double col_lo = g.min_x + cx0 * g.cell_w;
    const double col_mid = g.min_x + (cx0 + 1) * g.cell_w;
    const double col_hi = g.min_x + (cx0 + 2) * g.cell_w;
    const double row_lo = g.min_y + cy0 * g.cell_h;
    const double row_mid = g.min_y + (cy0 + 1) * g.cell_h;
    const double row_hi = g.min_y + (cy0 + 2) * g.cell_h;
    ow0[i] = OverlapLen(r.min_x, r.max_x, col_lo, col_mid);
    ow1[i] = OverlapLen(r.min_x, r.max_x, col_mid, col_hi);
    oh0[i] = OverlapLen(r.min_y, r.max_y, row_lo, row_mid);
    oh1[i] = OverlapLen(r.min_y, r.max_y, row_mid, row_hi);
  }
}

uint64_t IntersectMask64Scalar(const SoaSlice& rects, std::size_t begin,
                               std::size_t n, const Rect& probe) {
  uint64_t mask = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = begin + k;
    const bool hit = probe.min_x <= rects.max_x[i] &&
                     rects.min_x[i] <= probe.max_x &&
                     probe.min_y <= rects.max_y[i] &&
                     rects.min_y[i] <= probe.max_y;
    mask |= static_cast<uint64_t>(hit) << k;
  }
  return mask;
}

std::size_t SortedPrefixLeqScalar(const double* keys, std::size_t begin,
                                  std::size_t end, double bound) {
  std::size_t k = begin;
  while (k < end && keys[k] <= bound) ++k;
  return k - begin;
}

// ---------------------------------------------------------------------------
// AVX2 backends, 4 double lanes per iteration. Bit-identity notes:
//  - vminpd/vmaxpd return the SECOND operand on ties (and on ±0.0, which
//    compare equal), so arguments are swapped relative to std::min(a, b) /
//    std::max(a, b), which return the FIRST.
//  - No FMA: the avx2 target does not enable contraction, keeping the
//    mul-then-div sequences identical to scalar.
//  - Clamps run in the double domain before the int conversion; for every
//    value whose scalar int cast is defined this matches CellCoordScalar.
// ---------------------------------------------------------------------------

#if SJSEL_KERNELS_X86

__attribute__((target("avx2"))) inline __m128i CellCoordAvx2(
    const double* v, __m256d origin, __m256d cell, __m256d hi_clamp) {
  const __m256d t =
      _mm256_div_pd(_mm256_sub_pd(_mm256_loadu_pd(v), origin), cell);
  __m256d f = _mm256_floor_pd(t);
  f = _mm256_max_pd(f, _mm256_setzero_pd());
  f = _mm256_min_pd(f, hi_clamp);
  return _mm256_cvttpd_epi32(f);
}

__attribute__((target("avx2"))) void CellRangeBatchAvx2(
    const GridGeom& g, const SoaSlice& rects, int32_t* x0, int32_t* y0,
    int32_t* x1, int32_t* y1) {
  const __m256d ox = _mm256_set1_pd(g.min_x);
  const __m256d oy = _mm256_set1_pd(g.min_y);
  const __m256d cw = _mm256_set1_pd(g.cell_w);
  const __m256d ch = _mm256_set1_pd(g.cell_h);
  const __m256d hi = _mm256_set1_pd(static_cast<double>(g.per_axis - 1));
  std::size_t i = 0;
  for (; i + 4 <= rects.size; i += 4) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(x0 + i),
                     CellCoordAvx2(rects.min_x + i, ox, cw, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y0 + i),
                     CellCoordAvx2(rects.min_y + i, oy, ch, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(x1 + i),
                     CellCoordAvx2(rects.max_x + i, ox, cw, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y1 + i),
                     CellCoordAvx2(rects.max_y + i, oy, ch, hi));
  }
  for (; i < rects.size; ++i) {
    x0[i] = CellCoordScalar(rects.min_x[i], g.min_x, g.cell_w, g.per_axis);
    y0[i] = CellCoordScalar(rects.min_y[i], g.min_y, g.cell_h, g.per_axis);
    x1[i] = CellCoordScalar(rects.max_x[i], g.min_x, g.cell_w, g.per_axis);
    y1[i] = CellCoordScalar(rects.max_y[i], g.min_y, g.cell_h, g.per_axis);
  }
}

// std::min(a, b) == vminpd(b, a); std::max(a, b) == vmaxpd(b, a).
__attribute__((target("avx2"))) inline __m256d OverlapLenAvx2(__m256d lo,
                                                              __m256d hi,
                                                              __m256d cell_lo,
                                                              __m256d cell_hi) {
  const __m256d top = _mm256_min_pd(cell_hi, hi);     // std::min(hi, cell_hi)
  const __m256d bot = _mm256_max_pd(cell_lo, lo);     // std::max(lo, cell_lo)
  const __m256d d = _mm256_sub_pd(top, bot);
  return _mm256_max_pd(d, _mm256_setzero_pd());       // std::max(0.0, d)
}

__attribute__((target("avx2"))) void GhSingleCellTermsBatchAvx2(
    const GridGeom& g, const SoaSlice& rects, const int32_t* x0,
    const int32_t* y0, double* out_area, double* out_h, double* out_v) {
  const __m256d ox = _mm256_set1_pd(g.min_x);
  const __m256d oy = _mm256_set1_pd(g.min_y);
  const __m256d cw = _mm256_set1_pd(g.cell_w);
  const __m256d ch = _mm256_set1_pd(g.cell_h);
  const __m256d cell_area = _mm256_set1_pd(g.cell_w * g.cell_h);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= rects.size; i += 4) {
    const __m256d x0d = _mm256_cvtepi32_pd(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x0 + i)));
    const __m256d y0d = _mm256_cvtepi32_pd(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(y0 + i)));
    const __m256d cell_lo_x = _mm256_add_pd(ox, _mm256_mul_pd(x0d, cw));
    const __m256d cell_hi_x =
        _mm256_add_pd(ox, _mm256_mul_pd(_mm256_add_pd(x0d, one), cw));
    const __m256d cell_lo_y = _mm256_add_pd(oy, _mm256_mul_pd(y0d, ch));
    const __m256d cell_hi_y =
        _mm256_add_pd(oy, _mm256_mul_pd(_mm256_add_pd(y0d, one), ch));
    const __m256d w =
        OverlapLenAvx2(_mm256_loadu_pd(rects.min_x + i),
                       _mm256_loadu_pd(rects.max_x + i), cell_lo_x, cell_hi_x);
    const __m256d h =
        OverlapLenAvx2(_mm256_loadu_pd(rects.min_y + i),
                       _mm256_loadu_pd(rects.max_y + i), cell_lo_y, cell_hi_y);
    _mm256_storeu_pd(out_area + i,
                     _mm256_div_pd(_mm256_mul_pd(w, h), cell_area));
    _mm256_storeu_pd(out_h + i, _mm256_div_pd(w, cw));
    _mm256_storeu_pd(out_v + i, _mm256_div_pd(h, ch));
  }
  if (i < rects.size) {
    const SoaSlice tail = rects.Sub(i, rects.size - i);
    GhSingleCellTermsBatchScalar(g, tail, x0 + i, y0 + i, out_area + i,
                                 out_h + i, out_v + i);
  }
}

__attribute__((target("avx2"))) void PhContainedTermsBatchAvx2(
    const SoaSlice& rects, double* out_area, double* out_w, double* out_h) {
  std::size_t i = 0;
  for (; i + 4 <= rects.size; i += 4) {
    const __m256d w = _mm256_sub_pd(_mm256_loadu_pd(rects.max_x + i),
                                    _mm256_loadu_pd(rects.min_x + i));
    const __m256d h = _mm256_sub_pd(_mm256_loadu_pd(rects.max_y + i),
                                    _mm256_loadu_pd(rects.min_y + i));
    _mm256_storeu_pd(out_w + i, w);
    _mm256_storeu_pd(out_h + i, h);
    _mm256_storeu_pd(out_area + i, _mm256_mul_pd(w, h));
  }
  if (i < rects.size) {
    const SoaSlice tail = rects.Sub(i, rects.size - i);
    PhContainedTermsBatchScalar(tail, out_area + i, out_w + i, out_h + i);
  }
}

__attribute__((target("avx2"))) void GhEntryTermsBatchAvx2(
    const GridGeom& g, std::size_t n, const double* w, const double* h,
    double* out_area, double* out_hf, double* out_vf) {
  const double cell_area = g.cell_w * g.cell_h;
  const __m256d vca = _mm256_set1_pd(cell_area);
  const __m256d vcw = _mm256_set1_pd(g.cell_w);
  const __m256d vch = _mm256_set1_pd(g.cell_h);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vw = _mm256_loadu_pd(w + i);
    const __m256d vh = _mm256_loadu_pd(h + i);
    _mm256_storeu_pd(out_area + i,
                     _mm256_div_pd(_mm256_mul_pd(vw, vh), vca));
    _mm256_storeu_pd(out_hf + i, _mm256_div_pd(vw, vcw));
    _mm256_storeu_pd(out_vf + i, _mm256_div_pd(vh, vch));
  }
  if (i < n) {
    GhEntryTermsBatchScalar(g, n - i, w + i, h + i, out_area + i, out_hf + i,
                            out_vf + i);
  }
}

// Loads 4 consecutive Rects (16 contiguous doubles) and transposes them
// in-register into SoA lanes: one 32-byte load per rect, then the
// standard unpack + 128-bit-permute 4x4 transpose.
__attribute__((target("avx2"))) inline void LoadRects4Avx2(
    const Rect* rects, __m256d* minx, __m256d* miny, __m256d* maxx,
    __m256d* maxy) {
  const double* p = reinterpret_cast<const double*>(rects);
  const __m256d r0 = _mm256_loadu_pd(p);       // mnx0 mny0 mxx0 mxy0
  const __m256d r1 = _mm256_loadu_pd(p + 4);
  const __m256d r2 = _mm256_loadu_pd(p + 8);
  const __m256d r3 = _mm256_loadu_pd(p + 12);
  const __m256d t0 = _mm256_unpacklo_pd(r0, r1);  // mnx0 mnx1 mxx0 mxx1
  const __m256d t1 = _mm256_unpackhi_pd(r0, r1);  // mny0 mny1 mxy0 mxy1
  const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
  const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
  *minx = _mm256_permute2f128_pd(t0, t2, 0x20);
  *maxx = _mm256_permute2f128_pd(t0, t2, 0x31);
  *miny = _mm256_permute2f128_pd(t1, t3, 0x20);
  *maxy = _mm256_permute2f128_pd(t1, t3, 0x31);
}

// CellCoordAvx2 on a register input, returning the clamped floor still in
// the double domain (it is exactly the stored int32 value, so the cell
// bounds below can reuse it without a separate int-to-double conversion).
__attribute__((target("avx2"))) inline __m256d CellCoordKeepAvx2(
    __m256d v, __m256d origin, __m256d cell, __m256d hi_clamp,
    int32_t* out) {
  const __m256d t = _mm256_div_pd(_mm256_sub_pd(v, origin), cell);
  __m256d f = _mm256_floor_pd(t);
  f = _mm256_max_pd(f, _mm256_setzero_pd());
  f = _mm256_min_pd(f, hi_clamp);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), _mm256_cvttpd_epi32(f));
  return f;
}

__attribute__((target("avx2"))) void GhRectTermsBatchAvx2(
    const GridGeom& g, const Rect* rects, std::size_t n,
    const GhRectTermsOut& o) {
  const __m256d ox = _mm256_set1_pd(g.min_x);
  const __m256d oy = _mm256_set1_pd(g.min_y);
  const __m256d cw = _mm256_set1_pd(g.cell_w);
  const __m256d ch = _mm256_set1_pd(g.cell_h);
  const __m256d hi = _mm256_set1_pd(static_cast<double>(g.per_axis - 1));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d cell_area = _mm256_set1_pd(g.cell_w * g.cell_h);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d minx, miny, maxx, maxy;
    LoadRects4Avx2(rects + i, &minx, &miny, &maxx, &maxy);
    const __m256d x0d = CellCoordKeepAvx2(minx, ox, cw, hi, o.x0 + i);
    const __m256d y0d = CellCoordKeepAvx2(miny, oy, ch, hi, o.y0 + i);
    CellCoordKeepAvx2(maxx, ox, cw, hi, o.x1 + i);
    CellCoordKeepAvx2(maxy, oy, ch, hi, o.y1 + i);
    const __m256d x0p1 = _mm256_add_pd(x0d, one);
    const __m256d y0p1 = _mm256_add_pd(y0d, one);
    const __m256d col_lo = _mm256_add_pd(ox, _mm256_mul_pd(x0d, cw));
    const __m256d col_mid = _mm256_add_pd(ox, _mm256_mul_pd(x0p1, cw));
    const __m256d col_hi =
        _mm256_add_pd(ox, _mm256_mul_pd(_mm256_add_pd(x0p1, one), cw));
    const __m256d row_lo = _mm256_add_pd(oy, _mm256_mul_pd(y0d, ch));
    const __m256d row_mid = _mm256_add_pd(oy, _mm256_mul_pd(y0p1, ch));
    const __m256d row_hi =
        _mm256_add_pd(oy, _mm256_mul_pd(_mm256_add_pd(y0p1, one), ch));
    const __m256d w0 = OverlapLenAvx2(minx, maxx, col_lo, col_mid);
    const __m256d w1 = OverlapLenAvx2(minx, maxx, col_mid, col_hi);
    const __m256d h0 = OverlapLenAvx2(miny, maxy, row_lo, row_mid);
    const __m256d h1 = OverlapLenAvx2(miny, maxy, row_mid, row_hi);
    _mm256_storeu_pd(o.a00 + i,
                     _mm256_div_pd(_mm256_mul_pd(w0, h0), cell_area));
    _mm256_storeu_pd(o.a01 + i,
                     _mm256_div_pd(_mm256_mul_pd(w0, h1), cell_area));
    _mm256_storeu_pd(o.a10 + i,
                     _mm256_div_pd(_mm256_mul_pd(w1, h0), cell_area));
    _mm256_storeu_pd(o.a11 + i,
                     _mm256_div_pd(_mm256_mul_pd(w1, h1), cell_area));
    _mm256_storeu_pd(o.hf0 + i, _mm256_div_pd(w0, cw));
    _mm256_storeu_pd(o.hf1 + i, _mm256_div_pd(w1, cw));
    _mm256_storeu_pd(o.vf0 + i, _mm256_div_pd(h0, ch));
    _mm256_storeu_pd(o.vf1 + i, _mm256_div_pd(h1, ch));
  }
  if (i < n) GhRectTermsBatchScalar(g, rects + i, n - i, Advance(o, i));
}

__attribute__((target("avx2"))) void PhRectClipBatchAvx2(
    const GridGeom& g, const Rect* rects, std::size_t n,
    const PhRectClipOut& o) {
  const __m256d ox = _mm256_set1_pd(g.min_x);
  const __m256d oy = _mm256_set1_pd(g.min_y);
  const __m256d cw = _mm256_set1_pd(g.cell_w);
  const __m256d ch = _mm256_set1_pd(g.cell_h);
  const __m256d hi = _mm256_set1_pd(static_cast<double>(g.per_axis - 1));
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d minx, miny, maxx, maxy;
    LoadRects4Avx2(rects + i, &minx, &miny, &maxx, &maxy);
    const __m256d x0d = CellCoordKeepAvx2(minx, ox, cw, hi, o.x0 + i);
    const __m256d y0d = CellCoordKeepAvx2(miny, oy, ch, hi, o.y0 + i);
    CellCoordKeepAvx2(maxx, ox, cw, hi, o.x1 + i);
    CellCoordKeepAvx2(maxy, oy, ch, hi, o.y1 + i);
    const __m256d x0p1 = _mm256_add_pd(x0d, one);
    const __m256d y0p1 = _mm256_add_pd(y0d, one);
    const __m256d col_lo = _mm256_add_pd(ox, _mm256_mul_pd(x0d, cw));
    const __m256d col_mid = _mm256_add_pd(ox, _mm256_mul_pd(x0p1, cw));
    const __m256d col_hi =
        _mm256_add_pd(ox, _mm256_mul_pd(_mm256_add_pd(x0p1, one), cw));
    const __m256d row_lo = _mm256_add_pd(oy, _mm256_mul_pd(y0d, ch));
    const __m256d row_mid = _mm256_add_pd(oy, _mm256_mul_pd(y0p1, ch));
    const __m256d row_hi =
        _mm256_add_pd(oy, _mm256_mul_pd(_mm256_add_pd(y0p1, one), ch));
    _mm256_storeu_pd(o.w0 + i, OverlapLenAvx2(minx, maxx, col_lo, col_mid));
    _mm256_storeu_pd(o.w1 + i, OverlapLenAvx2(minx, maxx, col_mid, col_hi));
    _mm256_storeu_pd(o.h0 + i, OverlapLenAvx2(miny, maxy, row_lo, row_mid));
    _mm256_storeu_pd(o.h1 + i, OverlapLenAvx2(miny, maxy, row_mid, row_hi));
  }
  if (i < n) PhRectClipBatchScalar(g, rects + i, n - i, Advance(o, i));
}

__attribute__((target("avx2"))) uint64_t IntersectMask64Avx2(
    const SoaSlice& rects, std::size_t begin, std::size_t n,
    const Rect& probe) {
  const __m256d p_min_x = _mm256_set1_pd(probe.min_x);
  const __m256d p_min_y = _mm256_set1_pd(probe.min_y);
  const __m256d p_max_x = _mm256_set1_pd(probe.max_x);
  const __m256d p_max_y = _mm256_set1_pd(probe.max_y);
  uint64_t mask = 0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const std::size_t i = begin + k;
    const __m256d c0 =
        _mm256_cmp_pd(p_min_x, _mm256_loadu_pd(rects.max_x + i), _CMP_LE_OQ);
    const __m256d c1 =
        _mm256_cmp_pd(_mm256_loadu_pd(rects.min_x + i), p_max_x, _CMP_LE_OQ);
    const __m256d c2 =
        _mm256_cmp_pd(p_min_y, _mm256_loadu_pd(rects.max_y + i), _CMP_LE_OQ);
    const __m256d c3 =
        _mm256_cmp_pd(_mm256_loadu_pd(rects.min_y + i), p_max_y, _CMP_LE_OQ);
    const __m256d hit = _mm256_and_pd(_mm256_and_pd(c0, c1),
                                      _mm256_and_pd(c2, c3));
    mask |= static_cast<uint64_t>(_mm256_movemask_pd(hit)) << k;
  }
  if (k < n) {
    mask |= IntersectMask64Scalar(rects, begin + k, n - k, probe) << k;
  }
  return mask;
}

__attribute__((target("avx2"))) std::size_t SortedPrefixLeqAvx2(
    const double* keys, std::size_t begin, std::size_t end, double bound) {
  const __m256d b = _mm256_set1_pd(bound);
  std::size_t k = begin;
  for (; k + 4 <= end; k += 4) {
    const int m = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(keys + k), b, _CMP_LE_OQ));
    if (m != 0xF) {
      return k - begin +
             static_cast<std::size_t>(std::countr_zero(~static_cast<unsigned>(m)));
    }
  }
  return k - begin + SortedPrefixLeqScalar(keys, k, end, bound);
}

// ---------------------------------------------------------------------------
// AVX-512F backends, 8 double lanes per iteration. Same bit-identity
// discipline as AVX2: swapped min/max operand order (the 512-bit vminpd /
// vmaxpd keep the "return the SECOND operand on ties" semantics), floor
// via roundscale-to-neg-inf (exact), no FMA contraction, compare results
// consumed as mask registers so lane order is explicit.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f"))) inline __m256i CellCoordAvx512(
    const double* v, __m512d origin, __m512d cell, __m512d hi_clamp) {
  const __m512d t =
      _mm512_div_pd(_mm512_sub_pd(_mm512_loadu_pd(v), origin), cell);
  __m512d f = _mm512_roundscale_pd(
      t, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);  // floor, exact
  f = _mm512_max_pd(f, _mm512_setzero_pd());
  f = _mm512_min_pd(f, hi_clamp);
  return _mm512_cvttpd_epi32(f);
}

__attribute__((target("avx512f"))) void CellRangeBatchAvx512(
    const GridGeom& g, const SoaSlice& rects, int32_t* x0, int32_t* y0,
    int32_t* x1, int32_t* y1) {
  const __m512d ox = _mm512_set1_pd(g.min_x);
  const __m512d oy = _mm512_set1_pd(g.min_y);
  const __m512d cw = _mm512_set1_pd(g.cell_w);
  const __m512d ch = _mm512_set1_pd(g.cell_h);
  const __m512d hi = _mm512_set1_pd(static_cast<double>(g.per_axis - 1));
  std::size_t i = 0;
  for (; i + 8 <= rects.size; i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x0 + i),
                        CellCoordAvx512(rects.min_x + i, ox, cw, hi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y0 + i),
                        CellCoordAvx512(rects.min_y + i, oy, ch, hi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x1 + i),
                        CellCoordAvx512(rects.max_x + i, ox, cw, hi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y1 + i),
                        CellCoordAvx512(rects.max_y + i, oy, ch, hi));
  }
  for (; i < rects.size; ++i) {
    x0[i] = CellCoordScalar(rects.min_x[i], g.min_x, g.cell_w, g.per_axis);
    y0[i] = CellCoordScalar(rects.min_y[i], g.min_y, g.cell_h, g.per_axis);
    x1[i] = CellCoordScalar(rects.max_x[i], g.min_x, g.cell_w, g.per_axis);
    y1[i] = CellCoordScalar(rects.max_y[i], g.min_y, g.cell_h, g.per_axis);
  }
}

__attribute__((target("avx512f"))) inline __m512d OverlapLenAvx512(
    __m512d lo, __m512d hi, __m512d cell_lo, __m512d cell_hi) {
  const __m512d top = _mm512_min_pd(cell_hi, hi);     // std::min(hi, cell_hi)
  const __m512d bot = _mm512_max_pd(cell_lo, lo);     // std::max(lo, cell_lo)
  const __m512d d = _mm512_sub_pd(top, bot);
  return _mm512_max_pd(d, _mm512_setzero_pd());       // std::max(0.0, d)
}

__attribute__((target("avx512f"))) void GhSingleCellTermsBatchAvx512(
    const GridGeom& g, const SoaSlice& rects, const int32_t* x0,
    const int32_t* y0, double* out_area, double* out_h, double* out_v) {
  const __m512d ox = _mm512_set1_pd(g.min_x);
  const __m512d oy = _mm512_set1_pd(g.min_y);
  const __m512d cw = _mm512_set1_pd(g.cell_w);
  const __m512d ch = _mm512_set1_pd(g.cell_h);
  const __m512d cell_area = _mm512_set1_pd(g.cell_w * g.cell_h);
  const __m512d one = _mm512_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 8 <= rects.size; i += 8) {
    const __m512d x0d = _mm512_cvtepi32_pd(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + i)));
    const __m512d y0d = _mm512_cvtepi32_pd(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y0 + i)));
    const __m512d cell_lo_x = _mm512_add_pd(ox, _mm512_mul_pd(x0d, cw));
    const __m512d cell_hi_x =
        _mm512_add_pd(ox, _mm512_mul_pd(_mm512_add_pd(x0d, one), cw));
    const __m512d cell_lo_y = _mm512_add_pd(oy, _mm512_mul_pd(y0d, ch));
    const __m512d cell_hi_y =
        _mm512_add_pd(oy, _mm512_mul_pd(_mm512_add_pd(y0d, one), ch));
    const __m512d w = OverlapLenAvx512(_mm512_loadu_pd(rects.min_x + i),
                                       _mm512_loadu_pd(rects.max_x + i),
                                       cell_lo_x, cell_hi_x);
    const __m512d h = OverlapLenAvx512(_mm512_loadu_pd(rects.min_y + i),
                                       _mm512_loadu_pd(rects.max_y + i),
                                       cell_lo_y, cell_hi_y);
    _mm512_storeu_pd(out_area + i,
                     _mm512_div_pd(_mm512_mul_pd(w, h), cell_area));
    _mm512_storeu_pd(out_h + i, _mm512_div_pd(w, cw));
    _mm512_storeu_pd(out_v + i, _mm512_div_pd(h, ch));
  }
  if (i < rects.size) {
    const SoaSlice tail = rects.Sub(i, rects.size - i);
    GhSingleCellTermsBatchScalar(g, tail, x0 + i, y0 + i, out_area + i,
                                 out_h + i, out_v + i);
  }
}

__attribute__((target("avx512f"))) void PhContainedTermsBatchAvx512(
    const SoaSlice& rects, double* out_area, double* out_w, double* out_h) {
  std::size_t i = 0;
  for (; i + 8 <= rects.size; i += 8) {
    const __m512d w = _mm512_sub_pd(_mm512_loadu_pd(rects.max_x + i),
                                    _mm512_loadu_pd(rects.min_x + i));
    const __m512d h = _mm512_sub_pd(_mm512_loadu_pd(rects.max_y + i),
                                    _mm512_loadu_pd(rects.min_y + i));
    _mm512_storeu_pd(out_w + i, w);
    _mm512_storeu_pd(out_h + i, h);
    _mm512_storeu_pd(out_area + i, _mm512_mul_pd(w, h));
  }
  if (i < rects.size) {
    const SoaSlice tail = rects.Sub(i, rects.size - i);
    PhContainedTermsBatchScalar(tail, out_area + i, out_w + i, out_h + i);
  }
}

__attribute__((target("avx512f"))) void GhEntryTermsBatchAvx512(
    const GridGeom& g, std::size_t n, const double* w, const double* h,
    double* out_area, double* out_hf, double* out_vf) {
  const double cell_area = g.cell_w * g.cell_h;
  const __m512d vca = _mm512_set1_pd(cell_area);
  const __m512d vcw = _mm512_set1_pd(g.cell_w);
  const __m512d vch = _mm512_set1_pd(g.cell_h);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d vw = _mm512_loadu_pd(w + i);
    const __m512d vh = _mm512_loadu_pd(h + i);
    _mm512_storeu_pd(out_area + i,
                     _mm512_div_pd(_mm512_mul_pd(vw, vh), vca));
    _mm512_storeu_pd(out_hf + i, _mm512_div_pd(vw, vcw));
    _mm512_storeu_pd(out_vf + i, _mm512_div_pd(vh, vch));
  }
  if (i < n) {
    GhEntryTermsBatchScalar(g, n - i, w + i, h + i, out_area + i, out_hf + i,
                            out_vf + i);
  }
}

// Loads 8 consecutive Rects (32 contiguous doubles) and transposes them
// into SoA lanes: 4 full-width loads, then a two-level permute — first
// vpermt2pd gathers the min (max) pairs of each 2-rect load, then a
// 128-bit-lane shuffle splits coordinates apart.
__attribute__((target("avx512f"))) inline void LoadRects8Avx512(
    const Rect* rects, __m512d* minx, __m512d* miny, __m512d* maxx,
    __m512d* maxy) {
  const double* p = reinterpret_cast<const double*>(rects);
  const __m512d z0 = _mm512_loadu_pd(p);       // rects 0-1
  const __m512d z1 = _mm512_loadu_pd(p + 8);   // rects 2-3
  const __m512d z2 = _mm512_loadu_pd(p + 16);  // rects 4-5
  const __m512d z3 = _mm512_loadu_pd(p + 24);  // rects 6-7
  const __m512i mins_idx = _mm512_setr_epi64(0, 4, 8, 12, 1, 5, 9, 13);
  const __m512i maxs_idx = _mm512_setr_epi64(2, 6, 10, 14, 3, 7, 11, 15);
  const __m512d mins01 = _mm512_permutex2var_pd(z0, mins_idx, z1);
  const __m512d mins23 = _mm512_permutex2var_pd(z2, mins_idx, z3);
  const __m512d maxs01 = _mm512_permutex2var_pd(z0, maxs_idx, z1);
  const __m512d maxs23 = _mm512_permutex2var_pd(z2, maxs_idx, z3);
  *minx = _mm512_shuffle_f64x2(mins01, mins23, 0x44);
  *miny = _mm512_shuffle_f64x2(mins01, mins23, 0xEE);
  *maxx = _mm512_shuffle_f64x2(maxs01, maxs23, 0x44);
  *maxy = _mm512_shuffle_f64x2(maxs01, maxs23, 0xEE);
}

// CellCoordAvx512 on a register input, keeping the clamped floor in the
// double domain for the cell-bound arithmetic.
__attribute__((target("avx512f"))) inline __m512d CellCoordKeepAvx512(
    __m512d v, __m512d origin, __m512d cell, __m512d hi_clamp,
    int32_t* out) {
  const __m512d t = _mm512_div_pd(_mm512_sub_pd(v, origin), cell);
  __m512d f = _mm512_roundscale_pd(
      t, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);  // floor, exact
  f = _mm512_max_pd(f, _mm512_setzero_pd());
  f = _mm512_min_pd(f, hi_clamp);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm512_cvttpd_epi32(f));
  return f;
}

__attribute__((target("avx512f"))) void GhRectTermsBatchAvx512(
    const GridGeom& g, const Rect* rects, std::size_t n,
    const GhRectTermsOut& o) {
  const __m512d ox = _mm512_set1_pd(g.min_x);
  const __m512d oy = _mm512_set1_pd(g.min_y);
  const __m512d cw = _mm512_set1_pd(g.cell_w);
  const __m512d ch = _mm512_set1_pd(g.cell_h);
  const __m512d hi = _mm512_set1_pd(static_cast<double>(g.per_axis - 1));
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d cell_area = _mm512_set1_pd(g.cell_w * g.cell_h);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d minx, miny, maxx, maxy;
    LoadRects8Avx512(rects + i, &minx, &miny, &maxx, &maxy);
    const __m512d x0d = CellCoordKeepAvx512(minx, ox, cw, hi, o.x0 + i);
    const __m512d y0d = CellCoordKeepAvx512(miny, oy, ch, hi, o.y0 + i);
    CellCoordKeepAvx512(maxx, ox, cw, hi, o.x1 + i);
    CellCoordKeepAvx512(maxy, oy, ch, hi, o.y1 + i);
    const __m512d x0p1 = _mm512_add_pd(x0d, one);
    const __m512d y0p1 = _mm512_add_pd(y0d, one);
    const __m512d col_lo = _mm512_add_pd(ox, _mm512_mul_pd(x0d, cw));
    const __m512d col_mid = _mm512_add_pd(ox, _mm512_mul_pd(x0p1, cw));
    const __m512d col_hi =
        _mm512_add_pd(ox, _mm512_mul_pd(_mm512_add_pd(x0p1, one), cw));
    const __m512d row_lo = _mm512_add_pd(oy, _mm512_mul_pd(y0d, ch));
    const __m512d row_mid = _mm512_add_pd(oy, _mm512_mul_pd(y0p1, ch));
    const __m512d row_hi =
        _mm512_add_pd(oy, _mm512_mul_pd(_mm512_add_pd(y0p1, one), ch));
    const __m512d w0 = OverlapLenAvx512(minx, maxx, col_lo, col_mid);
    const __m512d w1 = OverlapLenAvx512(minx, maxx, col_mid, col_hi);
    const __m512d h0 = OverlapLenAvx512(miny, maxy, row_lo, row_mid);
    const __m512d h1 = OverlapLenAvx512(miny, maxy, row_mid, row_hi);
    _mm512_storeu_pd(o.a00 + i,
                     _mm512_div_pd(_mm512_mul_pd(w0, h0), cell_area));
    _mm512_storeu_pd(o.a01 + i,
                     _mm512_div_pd(_mm512_mul_pd(w0, h1), cell_area));
    _mm512_storeu_pd(o.a10 + i,
                     _mm512_div_pd(_mm512_mul_pd(w1, h0), cell_area));
    _mm512_storeu_pd(o.a11 + i,
                     _mm512_div_pd(_mm512_mul_pd(w1, h1), cell_area));
    _mm512_storeu_pd(o.hf0 + i, _mm512_div_pd(w0, cw));
    _mm512_storeu_pd(o.hf1 + i, _mm512_div_pd(w1, cw));
    _mm512_storeu_pd(o.vf0 + i, _mm512_div_pd(h0, ch));
    _mm512_storeu_pd(o.vf1 + i, _mm512_div_pd(h1, ch));
  }
  if (i < n) GhRectTermsBatchScalar(g, rects + i, n - i, Advance(o, i));
}

__attribute__((target("avx512f"))) void PhRectClipBatchAvx512(
    const GridGeom& g, const Rect* rects, std::size_t n,
    const PhRectClipOut& o) {
  const __m512d ox = _mm512_set1_pd(g.min_x);
  const __m512d oy = _mm512_set1_pd(g.min_y);
  const __m512d cw = _mm512_set1_pd(g.cell_w);
  const __m512d ch = _mm512_set1_pd(g.cell_h);
  const __m512d hi = _mm512_set1_pd(static_cast<double>(g.per_axis - 1));
  const __m512d one = _mm512_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d minx, miny, maxx, maxy;
    LoadRects8Avx512(rects + i, &minx, &miny, &maxx, &maxy);
    const __m512d x0d = CellCoordKeepAvx512(minx, ox, cw, hi, o.x0 + i);
    const __m512d y0d = CellCoordKeepAvx512(miny, oy, ch, hi, o.y0 + i);
    CellCoordKeepAvx512(maxx, ox, cw, hi, o.x1 + i);
    CellCoordKeepAvx512(maxy, oy, ch, hi, o.y1 + i);
    const __m512d x0p1 = _mm512_add_pd(x0d, one);
    const __m512d y0p1 = _mm512_add_pd(y0d, one);
    const __m512d col_lo = _mm512_add_pd(ox, _mm512_mul_pd(x0d, cw));
    const __m512d col_mid = _mm512_add_pd(ox, _mm512_mul_pd(x0p1, cw));
    const __m512d col_hi =
        _mm512_add_pd(ox, _mm512_mul_pd(_mm512_add_pd(x0p1, one), cw));
    const __m512d row_lo = _mm512_add_pd(oy, _mm512_mul_pd(y0d, ch));
    const __m512d row_mid = _mm512_add_pd(oy, _mm512_mul_pd(y0p1, ch));
    const __m512d row_hi =
        _mm512_add_pd(oy, _mm512_mul_pd(_mm512_add_pd(y0p1, one), ch));
    _mm512_storeu_pd(o.w0 + i,
                     OverlapLenAvx512(minx, maxx, col_lo, col_mid));
    _mm512_storeu_pd(o.w1 + i,
                     OverlapLenAvx512(minx, maxx, col_mid, col_hi));
    _mm512_storeu_pd(o.h0 + i,
                     OverlapLenAvx512(miny, maxy, row_lo, row_mid));
    _mm512_storeu_pd(o.h1 + i,
                     OverlapLenAvx512(miny, maxy, row_mid, row_hi));
  }
  if (i < n) PhRectClipBatchScalar(g, rects + i, n - i, Advance(o, i));
}

__attribute__((target("avx512f"))) uint64_t IntersectMask64Avx512(
    const SoaSlice& rects, std::size_t begin, std::size_t n,
    const Rect& probe) {
  const __m512d p_min_x = _mm512_set1_pd(probe.min_x);
  const __m512d p_min_y = _mm512_set1_pd(probe.min_y);
  const __m512d p_max_x = _mm512_set1_pd(probe.max_x);
  const __m512d p_max_y = _mm512_set1_pd(probe.max_y);
  uint64_t mask = 0;
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const std::size_t i = begin + k;
    const __mmask8 c0 = _mm512_cmp_pd_mask(
        p_min_x, _mm512_loadu_pd(rects.max_x + i), _CMP_LE_OQ);
    const __mmask8 c1 = _mm512_cmp_pd_mask(
        _mm512_loadu_pd(rects.min_x + i), p_max_x, _CMP_LE_OQ);
    const __mmask8 c2 = _mm512_cmp_pd_mask(
        p_min_y, _mm512_loadu_pd(rects.max_y + i), _CMP_LE_OQ);
    const __mmask8 c3 = _mm512_cmp_pd_mask(
        _mm512_loadu_pd(rects.min_y + i), p_max_y, _CMP_LE_OQ);
    const unsigned hit = static_cast<unsigned>(c0) & c1 & c2 & c3;
    mask |= static_cast<uint64_t>(hit) << k;
  }
  if (k < n) {
    mask |= IntersectMask64Scalar(rects, begin + k, n - k, probe) << k;
  }
  return mask;
}

__attribute__((target("avx512f"))) std::size_t SortedPrefixLeqAvx512(
    const double* keys, std::size_t begin, std::size_t end, double bound) {
  const __m512d b = _mm512_set1_pd(bound);
  std::size_t k = begin;
  for (; k + 8 <= end; k += 8) {
    const unsigned m = static_cast<unsigned>(
        _mm512_cmp_pd_mask(_mm512_loadu_pd(keys + k), b, _CMP_LE_OQ));
    if (m != 0xFFu) {
      return k - begin + static_cast<std::size_t>(std::countr_zero(m ^ 0xFFu));
    }
  }
  return k - begin + SortedPrefixLeqScalar(keys, k, end, bound);
}

#endif  // SJSEL_KERNELS_X86

}  // namespace

KernelBackend DetectKernelBackend() {
  static const KernelBackend detected = ProbeBackend();
  return detected;
}

bool KernelBackendAvailable(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return true;
    case KernelBackend::kAvx2:
#if SJSEL_KERNELS_X86
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case KernelBackend::kAvx512:
#if SJSEL_KERNELS_X86
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
    case KernelBackend::kNeon:
      return SJSEL_KERNELS_AARCH64 != 0;
  }
  return false;
}

KernelBackend ActiveKernelBackend() {
  const int forced = g_backend_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<KernelBackend>(forced);
  const int env = EnvBackendOverride();
  if (env >= 0) return static_cast<KernelBackend>(env);
  return DetectKernelBackend();
}

void SetKernelBackendOverride(KernelBackend backend) {
  g_backend_override.store(static_cast<int>(backend),
                           std::memory_order_relaxed);
}

void ClearKernelBackendOverride() {
  g_backend_override.store(-1, std::memory_order_relaxed);
}

void SetKernelBackendForTesting(KernelBackend backend) {
  SetKernelBackendOverride(backend);
}

void ClearKernelBackendOverrideForTesting() { ClearKernelBackendOverride(); }

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kAvx512:
      return "avx512";
    case KernelBackend::kNeon:
      return "neon";
  }
  return "?";
}

bool ParseKernelBackend(const std::string& name, KernelBackend* out) {
  if (name == "scalar") {
    *out = KernelBackend::kScalar;
  } else if (name == "avx2") {
    *out = KernelBackend::kAvx2;
  } else if (name == "avx512") {
    *out = KernelBackend::kAvx512;
  } else if (name == "neon") {
    *out = KernelBackend::kNeon;
  } else {
    return false;
  }
  return true;
}

KernelDispatchInfo GetKernelDispatchInfo() {
  KernelDispatchInfo info;
  info.detected = DetectKernelBackend();
  info.active = ActiveKernelBackend();
  if (g_backend_override.load(std::memory_order_relaxed) >= 0) {
    info.source = "override";
  } else if (EnvBackendOverride() >= 0) {
    info.source = "env";
  } else {
    info.source = "detected";
  }
  return info;
}

// The kNeon slot is a stub: dispatch treats it as scalar until real NEON
// kernels land, so an aarch64 build is functional (and bit-identical) out
// of the box.

void CellRangeBatch(const GridGeom& g, const SoaSlice& rects, int32_t* x0,
                    int32_t* y0, int32_t* x1, int32_t* y1) {
  switch (ActiveKernelBackend()) {
#if SJSEL_KERNELS_X86
    case KernelBackend::kAvx512:
      CellRangeBatchAvx512(g, rects, x0, y0, x1, y1);
      return;
    case KernelBackend::kAvx2:
      CellRangeBatchAvx2(g, rects, x0, y0, x1, y1);
      return;
#endif
    default:
      CellRangeBatchScalar(g, rects, x0, y0, x1, y1);
  }
}

void GhSingleCellTermsBatch(const GridGeom& g, const SoaSlice& rects,
                            const int32_t* x0, const int32_t* y0,
                            double* out_area, double* out_h, double* out_v) {
  switch (ActiveKernelBackend()) {
#if SJSEL_KERNELS_X86
    case KernelBackend::kAvx512:
      GhSingleCellTermsBatchAvx512(g, rects, x0, y0, out_area, out_h, out_v);
      return;
    case KernelBackend::kAvx2:
      GhSingleCellTermsBatchAvx2(g, rects, x0, y0, out_area, out_h, out_v);
      return;
#endif
    default:
      GhSingleCellTermsBatchScalar(g, rects, x0, y0, out_area, out_h, out_v);
  }
}

void PhContainedTermsBatch(const SoaSlice& rects, double* out_area,
                           double* out_w, double* out_h) {
  switch (ActiveKernelBackend()) {
#if SJSEL_KERNELS_X86
    case KernelBackend::kAvx512:
      PhContainedTermsBatchAvx512(rects, out_area, out_w, out_h);
      return;
    case KernelBackend::kAvx2:
      PhContainedTermsBatchAvx2(rects, out_area, out_w, out_h);
      return;
#endif
    default:
      PhContainedTermsBatchScalar(rects, out_area, out_w, out_h);
  }
}

void GhEntryTermsBatch(const GridGeom& g, std::size_t n, const double* w,
                       const double* h, double* out_area, double* out_hf,
                       double* out_vf) {
  switch (ActiveKernelBackend()) {
#if SJSEL_KERNELS_X86
    case KernelBackend::kAvx512:
      GhEntryTermsBatchAvx512(g, n, w, h, out_area, out_hf, out_vf);
      return;
    case KernelBackend::kAvx2:
      GhEntryTermsBatchAvx2(g, n, w, h, out_area, out_hf, out_vf);
      return;
#endif
    default:
      GhEntryTermsBatchScalar(g, n, w, h, out_area, out_hf, out_vf);
  }
}

void GhRectTermsBatch(const GridGeom& g, const Rect* rects, std::size_t n,
                      const GhRectTermsOut& out) {
  switch (ActiveKernelBackend()) {
#if SJSEL_KERNELS_X86
    case KernelBackend::kAvx512:
      GhRectTermsBatchAvx512(g, rects, n, out);
      return;
    case KernelBackend::kAvx2:
      GhRectTermsBatchAvx2(g, rects, n, out);
      return;
#endif
    default:
      GhRectTermsBatchScalar(g, rects, n, out);
  }
}

void PhRectClipBatch(const GridGeom& g, const Rect* rects, std::size_t n,
                     const PhRectClipOut& out) {
  switch (ActiveKernelBackend()) {
#if SJSEL_KERNELS_X86
    case KernelBackend::kAvx512:
      PhRectClipBatchAvx512(g, rects, n, out);
      return;
    case KernelBackend::kAvx2:
      PhRectClipBatchAvx2(g, rects, n, out);
      return;
#endif
    default:
      PhRectClipBatchScalar(g, rects, n, out);
  }
}

uint64_t IntersectMask64(const SoaSlice& rects, std::size_t begin,
                         std::size_t n, const Rect& probe) {
  switch (ActiveKernelBackend()) {
#if SJSEL_KERNELS_X86
    case KernelBackend::kAvx512:
      return IntersectMask64Avx512(rects, begin, n, probe);
    case KernelBackend::kAvx2:
      return IntersectMask64Avx2(rects, begin, n, probe);
#endif
    default:
      return IntersectMask64Scalar(rects, begin, n, probe);
  }
}

std::size_t SortedPrefixLeq(const double* keys, std::size_t begin,
                            std::size_t end, double bound) {
  switch (ActiveKernelBackend()) {
#if SJSEL_KERNELS_X86
    case KernelBackend::kAvx512:
      return SortedPrefixLeqAvx512(keys, begin, end, bound);
    case KernelBackend::kAvx2:
      return SortedPrefixLeqAvx2(keys, begin, end, bound);
#endif
    default:
      return SortedPrefixLeqScalar(keys, begin, end, bound);
  }
}

}  // namespace sjsel
