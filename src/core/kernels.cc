#include "core/kernels.h"

#include <atomic>
#include <bit>
#include <cmath>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SJSEL_KERNELS_X86 1
#include <immintrin.h>
#else
#define SJSEL_KERNELS_X86 0
#endif

namespace sjsel {
namespace {

// -1 = no override; otherwise the int value of the forced KernelBackend.
std::atomic<int> g_backend_override{-1};

KernelBackend ProbeBackend() {
#if SJSEL_KERNELS_X86
  if (__builtin_cpu_supports("avx2")) return KernelBackend::kAvx2;
#endif
  return KernelBackend::kScalar;
}

// One grid-cell coordinate, identical to Grid::CellX / Grid::CellY: floor
// of the scaled offset, clamped into [0, per_axis).
inline int32_t CellCoordScalar(double v, double origin, double cell_size,
                               int per_axis) {
  int c = static_cast<int>(std::floor((v - origin) / cell_size));
  if (c < 0) c = 0;
  if (c >= per_axis) c = per_axis - 1;
  return c;
}

// ---------------------------------------------------------------------------
// Scalar backends. These are the semantic reference: every AVX2 kernel must
// reproduce them bit-for-bit, lane by lane.
// ---------------------------------------------------------------------------

void CellRangeBatchScalar(const GridGeom& g, const SoaSlice& rects,
                          int32_t* x0, int32_t* y0, int32_t* x1,
                          int32_t* y1) {
  for (std::size_t i = 0; i < rects.size; ++i) {
    x0[i] = CellCoordScalar(rects.min_x[i], g.min_x, g.cell_w, g.per_axis);
    y0[i] = CellCoordScalar(rects.min_y[i], g.min_y, g.cell_h, g.per_axis);
    x1[i] = CellCoordScalar(rects.max_x[i], g.min_x, g.cell_w, g.per_axis);
    y1[i] = CellCoordScalar(rects.max_y[i], g.min_y, g.cell_h, g.per_axis);
  }
}

void GhSingleCellTermsBatchScalar(const GridGeom& g, const SoaSlice& rects,
                                  const int32_t* x0, const int32_t* y0,
                                  double* out_area, double* out_h,
                                  double* out_v) {
  const double cell_area = g.cell_w * g.cell_h;
  for (std::size_t i = 0; i < rects.size; ++i) {
    const double cell_lo_x = g.min_x + x0[i] * g.cell_w;
    const double cell_hi_x = g.min_x + (x0[i] + 1) * g.cell_w;
    const double cell_lo_y = g.min_y + y0[i] * g.cell_h;
    const double cell_hi_y = g.min_y + (y0[i] + 1) * g.cell_h;
    const double w =
        OverlapLen(rects.min_x[i], rects.max_x[i], cell_lo_x, cell_hi_x);
    const double h =
        OverlapLen(rects.min_y[i], rects.max_y[i], cell_lo_y, cell_hi_y);
    out_area[i] = (w * h) / cell_area;
    out_h[i] = w / g.cell_w;
    out_v[i] = h / g.cell_h;
  }
}

void PhContainedTermsBatchScalar(const SoaSlice& rects, double* out_area,
                                 double* out_w, double* out_h) {
  for (std::size_t i = 0; i < rects.size; ++i) {
    const double w = rects.max_x[i] - rects.min_x[i];
    const double h = rects.max_y[i] - rects.min_y[i];
    out_w[i] = w;
    out_h[i] = h;
    out_area[i] = w * h;
  }
}

uint64_t IntersectMask64Scalar(const SoaSlice& rects, std::size_t begin,
                               std::size_t n, const Rect& probe) {
  uint64_t mask = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = begin + k;
    const bool hit = probe.min_x <= rects.max_x[i] &&
                     rects.min_x[i] <= probe.max_x &&
                     probe.min_y <= rects.max_y[i] &&
                     rects.min_y[i] <= probe.max_y;
    mask |= static_cast<uint64_t>(hit) << k;
  }
  return mask;
}

std::size_t SortedPrefixLeqScalar(const double* keys, std::size_t begin,
                                  std::size_t end, double bound) {
  std::size_t k = begin;
  while (k < end && keys[k] <= bound) ++k;
  return k - begin;
}

// ---------------------------------------------------------------------------
// AVX2 backends, 4 double lanes per iteration. Bit-identity notes:
//  - vminpd/vmaxpd return the SECOND operand on ties (and on ±0.0, which
//    compare equal), so arguments are swapped relative to std::min(a, b) /
//    std::max(a, b), which return the FIRST.
//  - No FMA: the avx2 target does not enable contraction, keeping the
//    mul-then-div sequences identical to scalar.
//  - Clamps run in the double domain before the int conversion; for every
//    value whose scalar int cast is defined this matches CellCoordScalar.
// ---------------------------------------------------------------------------

#if SJSEL_KERNELS_X86

__attribute__((target("avx2"))) inline __m128i CellCoordAvx2(
    const double* v, __m256d origin, __m256d cell, __m256d hi_clamp) {
  const __m256d t =
      _mm256_div_pd(_mm256_sub_pd(_mm256_loadu_pd(v), origin), cell);
  __m256d f = _mm256_floor_pd(t);
  f = _mm256_max_pd(f, _mm256_setzero_pd());
  f = _mm256_min_pd(f, hi_clamp);
  return _mm256_cvttpd_epi32(f);
}

__attribute__((target("avx2"))) void CellRangeBatchAvx2(
    const GridGeom& g, const SoaSlice& rects, int32_t* x0, int32_t* y0,
    int32_t* x1, int32_t* y1) {
  const __m256d ox = _mm256_set1_pd(g.min_x);
  const __m256d oy = _mm256_set1_pd(g.min_y);
  const __m256d cw = _mm256_set1_pd(g.cell_w);
  const __m256d ch = _mm256_set1_pd(g.cell_h);
  const __m256d hi = _mm256_set1_pd(static_cast<double>(g.per_axis - 1));
  std::size_t i = 0;
  for (; i + 4 <= rects.size; i += 4) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(x0 + i),
                     CellCoordAvx2(rects.min_x + i, ox, cw, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y0 + i),
                     CellCoordAvx2(rects.min_y + i, oy, ch, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(x1 + i),
                     CellCoordAvx2(rects.max_x + i, ox, cw, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y1 + i),
                     CellCoordAvx2(rects.max_y + i, oy, ch, hi));
  }
  for (; i < rects.size; ++i) {
    x0[i] = CellCoordScalar(rects.min_x[i], g.min_x, g.cell_w, g.per_axis);
    y0[i] = CellCoordScalar(rects.min_y[i], g.min_y, g.cell_h, g.per_axis);
    x1[i] = CellCoordScalar(rects.max_x[i], g.min_x, g.cell_w, g.per_axis);
    y1[i] = CellCoordScalar(rects.max_y[i], g.min_y, g.cell_h, g.per_axis);
  }
}

// std::min(a, b) == vminpd(b, a); std::max(a, b) == vmaxpd(b, a).
__attribute__((target("avx2"))) inline __m256d OverlapLenAvx2(__m256d lo,
                                                              __m256d hi,
                                                              __m256d cell_lo,
                                                              __m256d cell_hi) {
  const __m256d top = _mm256_min_pd(cell_hi, hi);     // std::min(hi, cell_hi)
  const __m256d bot = _mm256_max_pd(cell_lo, lo);     // std::max(lo, cell_lo)
  const __m256d d = _mm256_sub_pd(top, bot);
  return _mm256_max_pd(d, _mm256_setzero_pd());       // std::max(0.0, d)
}

__attribute__((target("avx2"))) void GhSingleCellTermsBatchAvx2(
    const GridGeom& g, const SoaSlice& rects, const int32_t* x0,
    const int32_t* y0, double* out_area, double* out_h, double* out_v) {
  const __m256d ox = _mm256_set1_pd(g.min_x);
  const __m256d oy = _mm256_set1_pd(g.min_y);
  const __m256d cw = _mm256_set1_pd(g.cell_w);
  const __m256d ch = _mm256_set1_pd(g.cell_h);
  const __m256d cell_area = _mm256_set1_pd(g.cell_w * g.cell_h);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= rects.size; i += 4) {
    const __m256d x0d = _mm256_cvtepi32_pd(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x0 + i)));
    const __m256d y0d = _mm256_cvtepi32_pd(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(y0 + i)));
    const __m256d cell_lo_x = _mm256_add_pd(ox, _mm256_mul_pd(x0d, cw));
    const __m256d cell_hi_x =
        _mm256_add_pd(ox, _mm256_mul_pd(_mm256_add_pd(x0d, one), cw));
    const __m256d cell_lo_y = _mm256_add_pd(oy, _mm256_mul_pd(y0d, ch));
    const __m256d cell_hi_y =
        _mm256_add_pd(oy, _mm256_mul_pd(_mm256_add_pd(y0d, one), ch));
    const __m256d w =
        OverlapLenAvx2(_mm256_loadu_pd(rects.min_x + i),
                       _mm256_loadu_pd(rects.max_x + i), cell_lo_x, cell_hi_x);
    const __m256d h =
        OverlapLenAvx2(_mm256_loadu_pd(rects.min_y + i),
                       _mm256_loadu_pd(rects.max_y + i), cell_lo_y, cell_hi_y);
    _mm256_storeu_pd(out_area + i,
                     _mm256_div_pd(_mm256_mul_pd(w, h), cell_area));
    _mm256_storeu_pd(out_h + i, _mm256_div_pd(w, cw));
    _mm256_storeu_pd(out_v + i, _mm256_div_pd(h, ch));
  }
  if (i < rects.size) {
    const SoaSlice tail = rects.Sub(i, rects.size - i);
    GhSingleCellTermsBatchScalar(g, tail, x0 + i, y0 + i, out_area + i,
                                 out_h + i, out_v + i);
  }
}

__attribute__((target("avx2"))) void PhContainedTermsBatchAvx2(
    const SoaSlice& rects, double* out_area, double* out_w, double* out_h) {
  std::size_t i = 0;
  for (; i + 4 <= rects.size; i += 4) {
    const __m256d w = _mm256_sub_pd(_mm256_loadu_pd(rects.max_x + i),
                                    _mm256_loadu_pd(rects.min_x + i));
    const __m256d h = _mm256_sub_pd(_mm256_loadu_pd(rects.max_y + i),
                                    _mm256_loadu_pd(rects.min_y + i));
    _mm256_storeu_pd(out_w + i, w);
    _mm256_storeu_pd(out_h + i, h);
    _mm256_storeu_pd(out_area + i, _mm256_mul_pd(w, h));
  }
  if (i < rects.size) {
    const SoaSlice tail = rects.Sub(i, rects.size - i);
    PhContainedTermsBatchScalar(tail, out_area + i, out_w + i, out_h + i);
  }
}

__attribute__((target("avx2"))) uint64_t IntersectMask64Avx2(
    const SoaSlice& rects, std::size_t begin, std::size_t n,
    const Rect& probe) {
  const __m256d p_min_x = _mm256_set1_pd(probe.min_x);
  const __m256d p_min_y = _mm256_set1_pd(probe.min_y);
  const __m256d p_max_x = _mm256_set1_pd(probe.max_x);
  const __m256d p_max_y = _mm256_set1_pd(probe.max_y);
  uint64_t mask = 0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const std::size_t i = begin + k;
    const __m256d c0 =
        _mm256_cmp_pd(p_min_x, _mm256_loadu_pd(rects.max_x + i), _CMP_LE_OQ);
    const __m256d c1 =
        _mm256_cmp_pd(_mm256_loadu_pd(rects.min_x + i), p_max_x, _CMP_LE_OQ);
    const __m256d c2 =
        _mm256_cmp_pd(p_min_y, _mm256_loadu_pd(rects.max_y + i), _CMP_LE_OQ);
    const __m256d c3 =
        _mm256_cmp_pd(_mm256_loadu_pd(rects.min_y + i), p_max_y, _CMP_LE_OQ);
    const __m256d hit = _mm256_and_pd(_mm256_and_pd(c0, c1),
                                      _mm256_and_pd(c2, c3));
    mask |= static_cast<uint64_t>(_mm256_movemask_pd(hit)) << k;
  }
  if (k < n) {
    mask |= IntersectMask64Scalar(rects, begin + k, n - k, probe) << k;
  }
  return mask;
}

__attribute__((target("avx2"))) std::size_t SortedPrefixLeqAvx2(
    const double* keys, std::size_t begin, std::size_t end, double bound) {
  const __m256d b = _mm256_set1_pd(bound);
  std::size_t k = begin;
  for (; k + 4 <= end; k += 4) {
    const int m = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(keys + k), b, _CMP_LE_OQ));
    if (m != 0xF) {
      return k - begin +
             static_cast<std::size_t>(std::countr_zero(~static_cast<unsigned>(m)));
    }
  }
  return k - begin + SortedPrefixLeqScalar(keys, k, end, bound);
}

#endif  // SJSEL_KERNELS_X86

bool UseAvx2() { return ActiveKernelBackend() == KernelBackend::kAvx2; }

}  // namespace

KernelBackend DetectKernelBackend() {
  static const KernelBackend detected = ProbeBackend();
  return detected;
}

KernelBackend ActiveKernelBackend() {
  const int forced = g_backend_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<KernelBackend>(forced);
  return DetectKernelBackend();
}

void SetKernelBackendForTesting(KernelBackend backend) {
  g_backend_override.store(static_cast<int>(backend),
                           std::memory_order_relaxed);
}

void ClearKernelBackendOverrideForTesting() {
  g_backend_override.store(-1, std::memory_order_relaxed);
}

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
  }
  return "?";
}

void CellRangeBatch(const GridGeom& g, const SoaSlice& rects, int32_t* x0,
                    int32_t* y0, int32_t* x1, int32_t* y1) {
#if SJSEL_KERNELS_X86
  if (UseAvx2()) {
    CellRangeBatchAvx2(g, rects, x0, y0, x1, y1);
    return;
  }
#endif
  CellRangeBatchScalar(g, rects, x0, y0, x1, y1);
}

void GhSingleCellTermsBatch(const GridGeom& g, const SoaSlice& rects,
                            const int32_t* x0, const int32_t* y0,
                            double* out_area, double* out_h, double* out_v) {
#if SJSEL_KERNELS_X86
  if (UseAvx2()) {
    GhSingleCellTermsBatchAvx2(g, rects, x0, y0, out_area, out_h, out_v);
    return;
  }
#endif
  GhSingleCellTermsBatchScalar(g, rects, x0, y0, out_area, out_h, out_v);
}

void PhContainedTermsBatch(const SoaSlice& rects, double* out_area,
                           double* out_w, double* out_h) {
#if SJSEL_KERNELS_X86
  if (UseAvx2()) {
    PhContainedTermsBatchAvx2(rects, out_area, out_w, out_h);
    return;
  }
#endif
  PhContainedTermsBatchScalar(rects, out_area, out_w, out_h);
}

uint64_t IntersectMask64(const SoaSlice& rects, std::size_t begin,
                         std::size_t n, const Rect& probe) {
#if SJSEL_KERNELS_X86
  if (UseAvx2()) return IntersectMask64Avx2(rects, begin, n, probe);
#endif
  return IntersectMask64Scalar(rects, begin, n, probe);
}

std::size_t SortedPrefixLeq(const double* keys, std::size_t begin,
                            std::size_t end, double bound) {
#if SJSEL_KERNELS_X86
  if (UseAvx2()) return SortedPrefixLeqAvx2(keys, begin, end, bound);
#endif
  return SortedPrefixLeqScalar(keys, begin, end, bound);
}

}  // namespace sjsel
