#ifndef SJSEL_CORE_TILE_BUILD_H_
#define SJSEL_CORE_TILE_BUILD_H_

// Shared plumbing of the cache-blocked bin-then-accumulate histogram
// builds (GH and PH, docs/ARCHITECTURE.md "Data-level parallelism"):
//
//   pass 1 (bin):        vectorized cell ranges for the whole dataset,
//                        then a stable counting sort that materializes
//                        each rect's coordinates and cell range once per
//                        overlapped tile of grid cells (BinRectsByTile) —
//                        pass 2 streams sequentially instead of gathering.
//   pass 2 (accumulate): per tile, walk that tile's rects — in ascending
//                        dataset order, by stability of the sort — expand
//                        them into (rect, cell) entries clamped to the
//                        tile, run the vectorized per-cell clip kernels
//                        over the entry run, and book the amounts with a
//                        scalar in-order loop (ForEachTile + per-scheme
//                        accumulation in gh_histogram.cc/ph_histogram.cc).
//
// Why this is bit-identical to the streaming AddRect loop: every
// histogram statistic is an independent per-cell accumulator, so only the
// per-cell, per-statistic addition order matters. Within one rect, all
// additions a single cell receives into one statistic carry the SAME
// amount (e.g. each corner books 1.0; both edge rows book the same
// clipped fraction), so reordering within a rect cannot change bits.
// Across rects, the stable sort keeps each tile's rect list in dataset
// order and every cell is owned by exactly one tile, so each cell sees
// its rects in the serial AddRect order. The amounts come from the batch
// kernels, which are bit-identical to the scalar clipping by the
// kernel-equivalence contract. Tiles own disjoint cells, which makes
// pass 2 safely tile-parallel with no replay step — the same property
// that keeps the accumulation working set one tile wide (L1-resident)
// instead of scattering read-modify-writes over the whole grid.
//
// Small grids need no blocking at all: when the histogram arrays are
// cache-resident and the build is serial, the schemes skip the binning
// pass and run the same expand-clip-accumulate engine once over the whole
// dataset in place (identical per-cell order, so identical bits).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/soa_dataset.h"
#include "util/aligned.h"
#include "util/thread_pool.h"

namespace sjsel {
namespace tile_build {

/// Counting-sort output with the per-rect build inputs materialized in
/// binned order: rows offsets[t] .. offsets[t+1] describe the rects
/// touching tile t, in ascending dataset order. Rects spanning several
/// tiles appear in each of them.
struct TileBins {
  int tiles_per_axis = 1;
  std::vector<uint64_t> offsets;          ///< num_tiles + 1 entries
  AlignedVector<int32_t> x0, y0, x1, y1;  ///< cell ranges, binned order
  AlignedVector<double> min_x, min_y, max_x, max_y;  ///< coords, binned

  int64_t num_tiles() const {
    return static_cast<int64_t>(tiles_per_axis) * tiles_per_axis;
  }

  /// Coordinate view over one tile's rows [lo, hi).
  SoaSlice CoordSlice(uint64_t lo, uint64_t hi) const {
    return SoaSlice{min_x.data() + lo, min_y.data() + lo, max_x.data() + lo,
                    max_y.data() + lo, static_cast<size_t>(hi - lo)};
  }
};

/// Stable counting sort of rects by overlapped tile, from the precomputed
/// cell ranges (CellRangeBatch output, dataset order). Both passes stream
/// the inputs sequentially; the fill writes one ascending cursor per tile,
/// so pass 2 never has to gather rect data by index.
inline TileBins BinRectsByTile(const SoaSlice& rects, int per_axis,
                               int tile_cells, const int32_t* x0,
                               const int32_t* y0, const int32_t* x1,
                               const int32_t* y1) {
  const std::size_t n = rects.size;
  TileBins bins;
  bins.tiles_per_axis = (per_axis + tile_cells - 1) / tile_cells;
  const std::size_t num_tiles = static_cast<std::size_t>(
      bins.tiles_per_axis) * static_cast<std::size_t>(bins.tiles_per_axis);
  bins.offsets.assign(num_tiles + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int tx0 = x0[i] / tile_cells;
    const int tx1 = x1[i] / tile_cells;
    const int ty0 = y0[i] / tile_cells;
    const int ty1 = y1[i] / tile_cells;
    for (int ty = ty0; ty <= ty1; ++ty) {
      for (int tx = tx0; tx <= tx1; ++tx) {
        ++bins.offsets[static_cast<std::size_t>(ty) * bins.tiles_per_axis +
                       tx + 1];
      }
    }
  }
  for (std::size_t t = 0; t < num_tiles; ++t) {
    bins.offsets[t + 1] += bins.offsets[t];
  }
  const std::size_t total = static_cast<std::size_t>(bins.offsets[num_tiles]);
  bins.x0.resize(total);
  bins.y0.resize(total);
  bins.x1.resize(total);
  bins.y1.resize(total);
  bins.min_x.resize(total);
  bins.min_y.resize(total);
  bins.max_x.resize(total);
  bins.max_y.resize(total);
  std::vector<uint64_t> cursor(bins.offsets.begin(), bins.offsets.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const int tx0 = x0[i] / tile_cells;
    const int tx1 = x1[i] / tile_cells;
    const int ty0 = y0[i] / tile_cells;
    const int ty1 = y1[i] / tile_cells;
    for (int ty = ty0; ty <= ty1; ++ty) {
      for (int tx = tx0; tx <= tx1; ++tx) {
        const std::size_t t =
            static_cast<std::size_t>(ty) * bins.tiles_per_axis + tx;
        const std::size_t pos = static_cast<std::size_t>(cursor[t]++);
        bins.x0[pos] = x0[i];
        bins.y0[pos] = y0[i];
        bins.x1[pos] = x1[i];
        bins.y1[pos] = y1[i];
        bins.min_x[pos] = rects.min_x[i];
        bins.min_y[pos] = rects.min_y[i];
        bins.max_x[pos] = rects.max_x[i];
        bins.max_y[pos] = rects.max_y[i];
      }
    }
  }
  return bins;
}

/// One tile's cell bounds in grid-cell coordinates. Pass 2 clamps each
/// rect's cell loops to these, so tile-spanning rects expand exactly the
/// entries this tile owns — no per-contribution filtering.
struct TileBounds {
  int cx0 = 0, cy0 = 0, cx1 = 0, cy1 = 0;
};

/// Bounds of tile t of a `tiles_per_axis`-wide tiling over a
/// `per_axis`-wide grid (the last tile row/column may be narrower).
inline TileBounds BoundsOfTile(int64_t t, int tiles_per_axis, int tile_cells,
                               int per_axis) {
  TileBounds b;
  const int tx = static_cast<int>(t % tiles_per_axis);
  const int ty = static_cast<int>(t / tiles_per_axis);
  b.cx0 = tx * tile_cells;
  b.cy0 = ty * tile_cells;
  b.cx1 = std::min(b.cx0 + tile_cells, per_axis) - 1;
  b.cy1 = std::min(b.cy0 + tile_cells, per_axis) - 1;
  return b;
}

/// Bounds covering the whole grid — the unblocked (serial, cache-resident)
/// build runs the expansion engine once with these.
inline TileBounds FullBounds(int per_axis) {
  return TileBounds{0, 0, per_axis - 1, per_axis - 1};
}

/// Runs run_tile(t) for every tile, serially or across a pool. The block
/// decomposition never affects results — tiles write disjoint cells — so
/// the grain may depend on the thread count without breaking the
/// bit-identity contract.
template <typename TileFn>
void ForEachTile(int64_t num_tiles, int threads, TileFn&& run_tile) {
  if (threads <= 1 || num_tiles <= 1) {
    for (int64_t t = 0; t < num_tiles; ++t) run_tile(t);
    return;
  }
  const int64_t grain =
      std::max<int64_t>(1, num_tiles / (4 * static_cast<int64_t>(threads)));
  ThreadPool pool(threads);
  ParallelFor(&pool, num_tiles, grain,
              [&](int64_t, int64_t begin, int64_t end) {
                for (int64_t t = begin; t < end; ++t) run_tile(t);
              });
}

}  // namespace tile_build
}  // namespace sjsel

#endif  // SJSEL_CORE_TILE_BUILD_H_
