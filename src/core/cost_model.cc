#include "core/cost_model.h"

#include <algorithm>
#include <vector>

#include "core/parametric.h"
#include "stats/dataset_stats.h"

namespace sjsel {
namespace {

// Aggregate MBR statistics of one tree level (counted from leaves = 0).
struct LevelStats {
  size_t n = 0;
  double sum_w = 0.0;
  double sum_h = 0.0;
  double sum_area = 0.0;
};

void CollectLevelStats(const RTree::Node& node,
                       std::vector<LevelStats>* levels) {
  LevelStats& level = (*levels)[node.level];
  const Rect mbr = node.ComputeMbr();
  ++level.n;
  if (!mbr.IsEmpty()) {
    level.sum_w += mbr.width();
    level.sum_h += mbr.height();
    level.sum_area += mbr.area();
  }
  for (const auto& child : node.children) {
    CollectLevelStats(*child, levels);
  }
}

DatasetStats ToDatasetStats(const LevelStats& level, const Rect& extent) {
  DatasetStats stats;
  stats.n = level.n;
  stats.extent = extent;
  stats.extent_area = extent.area();
  if (level.n > 0) {
    stats.avg_width = level.sum_w / static_cast<double>(level.n);
    stats.avg_height = level.sum_h / static_cast<double>(level.n);
    stats.total_area = level.sum_area;
    stats.coverage =
        stats.extent_area > 0 ? level.sum_area / stats.extent_area : 0.0;
  }
  return stats;
}

}  // namespace

JoinCostPrediction PredictRTreeJoinCost(const RTree& a, const RTree& b) {
  JoinCostPrediction prediction;
  if (a.size() == 0 || b.size() == 0) return prediction;

  const Rect mbr_a = a.root()->ComputeMbr();
  const Rect mbr_b = b.root()->ComputeMbr();
  if (!mbr_a.Intersects(mbr_b)) return prediction;
  Rect extent = mbr_a;
  extent.Extend(mbr_b);
  if (extent.area() <= 0.0) return prediction;

  std::vector<LevelStats> levels_a(a.height());
  std::vector<LevelStats> levels_b(b.height());
  CollectLevelStats(*a.root(), &levels_a);
  CollectLevelStats(*b.root(), &levels_b);

  // The synchronized traversal aligns the two trees at the leaves; above
  // the shorter tree's root, its root population stands in.
  const int max_height = std::max(a.height(), b.height());
  for (int level = 0; level < max_height; ++level) {
    const LevelStats& la =
        levels_a[std::min(level, a.height() - 1)];
    const LevelStats& lb =
        levels_b[std::min(level, b.height() - 1)];
    const double expected_pairs = ParametricJoinPairs(
        ToDatasetStats(la, extent), ToDatasetStats(lb, extent));
    // The pair count cannot exceed the cross product of the populations.
    const double capped = std::min(
        expected_pairs, static_cast<double>(la.n) * static_cast<double>(lb.n));
    if (level == 0) {
      prediction.leaf_pairs = capped;
    } else {
      prediction.internal_pairs += capped;
    }
  }
  prediction.node_accesses =
      2.0 * (prediction.leaf_pairs + prediction.internal_pairs);
  return prediction;
}

}  // namespace sjsel
