#ifndef SJSEL_CORE_GUARDED_ESTIMATOR_H_
#define SJSEL_CORE_GUARDED_ESTIMATOR_H_

#include <string>

#include "core/estimator.h"
#include "core/sampling.h"
#include "geom/dataset.h"
#include "geom/validate.h"
#include "util/result.h"

namespace sjsel {

/// The rungs of the guarded fallback chain, in descending preference:
/// GH (the paper's headline estimator) → PH → sampling → the Aref–Samet
/// parametric model (Eq. 1), which needs only aggregate statistics and
/// cannot fail on finite input.
enum class EstimatorRung {
  kGh = 0,
  kPh,
  kSampling,
  kParametric,
};

/// Short stable name used in degradation reasons: "gh", "ph", "sampling",
/// "parametric".
const char* EstimatorRungName(EstimatorRung rung);

/// A sanity-checked estimate plus the provenance a production caller needs:
/// which rung answered, why better rungs were skipped, and how much of the
/// input was repaired or quarantined before estimation.
struct EstimateResult {
  EstimateOutcome outcome;
  /// The rung whose estimate was accepted.
  EstimatorRung rung = EstimatorRung::kGh;
  /// Human-readable technique name of that rung, e.g. "GH(level=7)".
  std::string rung_label;
  /// True if the raw estimate was pulled back into [0, N1*N2].
  bool clamped = false;
  /// Machine-readable, ';'-joined trail of "<rung>:<cause>" entries, one
  /// per skipped rung, oldest first. Causes:
  ///   injected              an armed fault rule fired for the rung
  ///   error:<StatusCode>    the rung returned a non-OK Status
  ///   exception             the rung threw (injected worker fault, ...)
  ///   guard:non_finite      the rung produced NaN or +-Inf
  ///   guard:negative        the rung produced a negative pair count
  /// Empty when the primary (GH) rung answered.
  std::string degradation_reason;
  /// Validation tallies for the two inputs under the configured policy.
  RobustnessCounters validation_a;
  RobustnessCounters validation_b;

  bool degraded() const { return !degradation_reason.empty(); }
};

/// Configuration of the chain. The defaults mirror the paper's headline
/// settings (GH level 7, PH level 5, 10%/10% RSWR sampling).
struct GuardedEstimatorOptions {
  int gh_level = 7;
  int ph_level = 5;
  SamplingOptions sampling;
  /// Applied to both inputs before any histogram build. kReject makes
  /// Estimate fail on the first defective rect; the lenient policies
  /// repair or drop and keep going.
  ValidationPolicy policy = ValidationPolicy::kQuarantine;
};

/// Guardrailed facade over the whole estimator family. Every estimate is
/// validated before use: non-finite, negative and out-of-range values trip
/// a guard, and any guard trip, error Status, injected fault or exception
/// degrades to the next rung instead of surfacing garbage. The final
/// parametric rung is computed from aggregate statistics of the validated
/// inputs and is clamped rather than failed, so Estimate only returns a
/// non-OK Status for kReject policy violations or inputs that are empty
/// after validation... and even the latter yields a well-defined zero
/// estimate, not an error (an empty side joins with nothing).
class GuardedEstimator {
 public:
  explicit GuardedEstimator(GuardedEstimatorOptions options = {})
      : options_(options) {}

  Result<EstimateResult> Estimate(const Dataset& a, const Dataset& b) const;

  const GuardedEstimatorOptions& options() const { return options_; }

 private:
  GuardedEstimatorOptions options_;
};

}  // namespace sjsel

#endif  // SJSEL_CORE_GUARDED_ESTIMATOR_H_
