#ifndef SJSEL_CORE_GUARDED_ESTIMATOR_H_
#define SJSEL_CORE_GUARDED_ESTIMATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/sampling.h"
#include "geom/dataset.h"
#include "geom/validate.h"
#include "util/result.h"

namespace sjsel {

/// The rungs of the guarded fallback chain, in descending preference:
/// GH (the paper's headline estimator) → PH → sampling → the Aref–Samet
/// parametric model (Eq. 1), which needs only aggregate statistics and
/// cannot fail on finite input.
enum class EstimatorRung {
  kGh = 0,
  kPh,
  kSampling,
  kParametric,
};

/// Short stable name used in degradation reasons: "gh", "ph", "sampling",
/// "parametric".
const char* EstimatorRungName(EstimatorRung rung);

/// The machine-readable cause vocabulary of degradation_reason entries and
/// of the estimator.failed.<rung>.<cause> metric names. These strings are
/// a stable contract for downstream parsers and the explain report;
/// tests/degradation_reason_test.cc pins every one of them literally.
inline constexpr char kDegradeCauseInjected[] = "injected";
inline constexpr char kDegradeCauseException[] = "exception";
inline constexpr char kDegradeCauseNonFinite[] = "guard:non_finite";
inline constexpr char kDegradeCauseNegative[] = "guard:negative";
inline constexpr char kDegradeCauseEmptyInput[] = "empty_input";
inline constexpr char kDegradeCauseFloorZero[] = "floor:zero";
/// error causes are kDegradeCauseErrorPrefix + StatusCodeName(code),
/// e.g. "error:INVALID_ARGUMENT".
inline constexpr char kDegradeCauseErrorPrefix[] = "error:";

/// One attempted rung of the fallback chain, recorded in order for
/// introspection (the explain report renders these verbatim).
struct RungTrial {
  EstimatorRung rung = EstimatorRung::kGh;
  /// Technique label once the rung was constructed ("GH(level=7)"); empty
  /// for rungs skipped before construction (injected faults). The
  /// empty-input and zero-floor pseudo-rungs use "Empty" / "Zero".
  std::string label;
  /// True when this rung's estimate was accepted as the answer.
  bool answered = false;
  /// Failure (or pseudo-rung) cause from the vocabulary above; empty for
  /// an ordinarily answered rung.
  std::string cause;
  /// The rung's raw pre-clamp estimate, when it produced a finite value
  /// (also filled for guard-tripped values, so reports can show what was
  /// rejected). Valid only when has_raw_pairs.
  double raw_pairs = 0.0;
  bool has_raw_pairs = false;
  /// Wall-clock of the attempt. Not deterministic — renderers that
  /// promise byte-identical output must omit it.
  uint64_t elapsed_us = 0;
};

/// A sanity-checked estimate plus the provenance a production caller needs:
/// which rung answered, why better rungs were skipped, and how much of the
/// input was repaired or quarantined before estimation.
struct EstimateResult {
  EstimateOutcome outcome;
  /// The rung whose estimate was accepted.
  EstimatorRung rung = EstimatorRung::kGh;
  /// Human-readable technique name of that rung, e.g. "GH(level=7)".
  std::string rung_label;
  /// True if the raw estimate was pulled back into [0, N1*N2].
  bool clamped = false;
  /// Machine-readable, ';'-joined trail of "<rung>:<cause>" entries, one
  /// per skipped rung, oldest first. Causes:
  ///   injected              an armed fault rule fired for the rung
  ///   error:<StatusCode>    the rung returned a non-OK Status
  ///   exception             the rung threw (injected worker fault, ...)
  ///   guard:non_finite      the rung produced NaN or +-Inf
  ///   guard:negative        the rung produced a negative pair count
  /// Empty when the primary (GH) rung answered.
  std::string degradation_reason;
  /// Validation tallies for the two inputs under the configured policy.
  RobustnessCounters validation_a;
  RobustnessCounters validation_b;
  /// Every rung attempt in chain order, answering one last. Joining the
  /// trials with a non-empty cause as ';'-separated "<rung>:<cause>"
  /// entries reproduces degradation_reason exactly.
  std::vector<RungTrial> trials;

  bool degraded() const { return !degradation_reason.empty(); }
};

/// Configuration of the chain. The defaults mirror the paper's headline
/// settings (GH level 7, PH level 5, 10%/10% RSWR sampling).
struct GuardedEstimatorOptions {
  int gh_level = 7;
  int ph_level = 5;
  SamplingOptions sampling;
  /// Applied to both inputs before any histogram build. kReject makes
  /// Estimate fail on the first defective rect; the lenient policies
  /// repair or drop and keep going.
  ValidationPolicy policy = ValidationPolicy::kQuarantine;
};

/// Guardrailed facade over the whole estimator family. Every estimate is
/// validated before use: non-finite, negative and out-of-range values trip
/// a guard, and any guard trip, error Status, injected fault or exception
/// degrades to the next rung instead of surfacing garbage. The final
/// parametric rung is computed from aggregate statistics of the validated
/// inputs and is clamped rather than failed, so Estimate only returns a
/// non-OK Status for kReject policy violations or inputs that are empty
/// after validation... and even the latter yields a well-defined zero
/// estimate, not an error (an empty side joins with nothing).
class GuardedEstimator {
 public:
  explicit GuardedEstimator(GuardedEstimatorOptions options = {})
      : options_(options) {}

  Result<EstimateResult> Estimate(const Dataset& a, const Dataset& b) const;

  const GuardedEstimatorOptions& options() const { return options_; }

 private:
  GuardedEstimatorOptions options_;
};

}  // namespace sjsel

#endif  // SJSEL_CORE_GUARDED_ESTIMATOR_H_
