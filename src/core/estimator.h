#ifndef SJSEL_CORE_ESTIMATOR_H_
#define SJSEL_CORE_ESTIMATOR_H_

#include <memory>
#include <string>

#include "core/sampling.h"
#include "geom/dataset.h"
#include "util/result.h"

namespace sjsel {

/// One selectivity estimate with its cost breakdown.
struct EstimateOutcome {
  double estimated_pairs = 0.0;
  double selectivity = 0.0;
  /// Building auxiliary structures (histograms / samples / sample trees).
  double prepare_seconds = 0.0;
  /// Evaluating the estimate from the prepared structures.
  double estimate_seconds = 0.0;
};

/// Uniform facade over every estimation technique in the library, used by
/// the mini query engine and the examples. Implementations are one-shot
/// and stateless across calls.
class SelectivityEstimator {
 public:
  virtual ~SelectivityEstimator() = default;

  /// Human-readable technique name, e.g. "GH(level=7)" or "RSWR(10%/10%)".
  virtual std::string Name() const = 0;

  /// Estimates the join selectivity of `a` with `b` (intersection
  /// predicate on MBRs).
  virtual Result<EstimateOutcome> Estimate(const Dataset& a,
                                           const Dataset& b) = 0;
};

/// Geometric Histogram estimator at the given gridding level.
std::unique_ptr<SelectivityEstimator> MakeGhEstimator(int level);

/// Parametric Histogram estimator at the given gridding level.
std::unique_ptr<SelectivityEstimator> MakePhEstimator(int level);

/// The prior parametric model [2] (equivalent to PH at level 0).
std::unique_ptr<SelectivityEstimator> MakeParametricEstimator();

/// Sampling estimator with the given method and fractions.
std::unique_ptr<SelectivityEstimator> MakeSamplingEstimator(
    const SamplingOptions& options);

/// MinSkew-histogram estimator with the given bucket budget (extension).
std::unique_ptr<SelectivityEstimator> MakeMinSkewEstimator(int num_buckets);

/// Picks a GH gridding level for a dataset of `n` objects with average
/// extents (avg_w, avg_h) over `extent`, subject to an optional histogram
/// space budget in bytes (0 = unlimited).
///
/// Heuristic distilled from the Figure 7 sweeps: since GH error only
/// improves with level, choose the finest level whose cells still hold
/// enough objects for the within-cell uniformity assumption (~4 per
/// occupied cell) and do not drop far below the object size (finer cells
/// stop helping once objects span many cells), then clamp to the budget.
int RecommendGhLevel(size_t n, const Rect& extent, double avg_w, double avg_h,
                     uint64_t space_budget_bytes = 0);

}  // namespace sjsel

#endif  // SJSEL_CORE_ESTIMATOR_H_
