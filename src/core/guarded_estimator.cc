#include "core/guarded_estimator.h"

#include <cmath>
#include <exception>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace sjsel {
namespace {

// Span names must be string literals (the tracer keeps the pointer), so
// each rung gets its own.
const char* RungSpanName(EstimatorRung rung) {
  switch (rung) {
    case EstimatorRung::kGh:
      return "estimate.rung.gh";
    case EstimatorRung::kPh:
      return "estimate.rung.ph";
    case EstimatorRung::kSampling:
      return "estimate.rung.sampling";
    case EstimatorRung::kParametric:
      return "estimate.rung.parametric";
  }
  return "estimate.rung.unknown";
}

// Books one rung failure as a labeled counter, e.g.
// estimator.failed.gh.error:INTERNAL.
void CountRungFailure(EstimatorRung rung, const std::string& cause) {
  SJSEL_METRIC_INC(std::string("estimator.failed.") +
                   EstimatorRungName(rung) + "." + cause);
}

const char* RungFaultSite(EstimatorRung rung) {
  switch (rung) {
    case EstimatorRung::kGh:
      return kFaultSiteEstimatorGh;
    case EstimatorRung::kPh:
      return kFaultSiteEstimatorPh;
    case EstimatorRung::kSampling:
      return kFaultSiteEstimatorSampling;
    case EstimatorRung::kParametric:
      return kFaultSiteEstimatorParametric;
  }
  return "estimator.unknown";
}

void AppendReason(std::string* reason, EstimatorRung rung,
                  const std::string& cause) {
  if (!reason->empty()) reason->push_back(';');
  reason->append(EstimatorRungName(rung));
  reason->push_back(':');
  reason->append(cause);
}

std::unique_ptr<SelectivityEstimator> MakeRung(
    EstimatorRung rung, const GuardedEstimatorOptions& options) {
  switch (rung) {
    case EstimatorRung::kGh:
      return MakeGhEstimator(options.gh_level);
    case EstimatorRung::kPh:
      return MakePhEstimator(options.ph_level);
    case EstimatorRung::kSampling:
      return MakeSamplingEstimator(options.sampling);
    case EstimatorRung::kParametric:
      return MakeParametricEstimator();
  }
  return nullptr;
}

}  // namespace

const char* EstimatorRungName(EstimatorRung rung) {
  switch (rung) {
    case EstimatorRung::kGh:
      return "gh";
    case EstimatorRung::kPh:
      return "ph";
    case EstimatorRung::kSampling:
      return "sampling";
    case EstimatorRung::kParametric:
      return "parametric";
  }
  return "unknown";
}

Result<EstimateResult> GuardedEstimator::Estimate(const Dataset& a,
                                                  const Dataset& b) const {
  SJSEL_TRACE_SPAN("estimate.guarded", "n_a=%zu n_b=%zu policy=%s", a.size(),
                   b.size(), ValidationPolicyName(options_.policy));
  SJSEL_METRIC_INC("estimator.estimates");
  EstimateResult result;

  // Validation pass: both inputs, against their joint extent. The extent is
  // computed from finite coordinates only, so a handful of NaN/Inf rects
  // cannot poison the frame every clean rect is judged against.
  Rect extent = Rect::Empty();
  for (const Dataset* ds : {&a, &b}) {
    for (const Rect& r : ds->rects()) {
      if (ClassifyRect(r, Rect::Empty()) == RectDefect::kNone) extent.Extend(r);
    }
  }
  Dataset va;
  SJSEL_ASSIGN_OR_RETURN(
      va, ValidateDataset(a, extent, options_.policy, &result.validation_a));
  Dataset vb;
  SJSEL_ASSIGN_OR_RETURN(
      vb, ValidateDataset(b, extent, options_.policy, &result.validation_b));

  // An input that is empty (or empty after quarantine) joins with nothing;
  // a zero estimate is the correct, finite, in-range answer.
  if (va.empty() || vb.empty()) {
    result.rung = EstimatorRung::kParametric;
    result.rung_label = "Empty";
    AppendReason(&result.degradation_reason, EstimatorRung::kParametric,
                 kDegradeCauseEmptyInput);
    RungTrial trial;
    trial.rung = EstimatorRung::kParametric;
    trial.label = result.rung_label;
    trial.answered = true;
    trial.cause = kDegradeCauseEmptyInput;
    trial.raw_pairs = 0.0;
    trial.has_raw_pairs = true;
    result.trials.push_back(std::move(trial));
    return result;
  }

  // Every rung's estimate must land in [0, N1*N2] — there are at most
  // N1*N2 joined pairs, whatever the data looks like.
  const double n1 = static_cast<double>(va.size());
  const double n2 = static_cast<double>(vb.size());
  const double bound = n1 * n2;

  constexpr EstimatorRung kChain[] = {
      EstimatorRung::kGh, EstimatorRung::kPh, EstimatorRung::kSampling,
      EstimatorRung::kParametric};
  for (const EstimatorRung rung : kChain) {
    SJSEL_TRACE_SPAN(RungSpanName(rung));
    SJSEL_METRIC_INC(std::string("estimator.attempts.") +
                     EstimatorRungName(rung));
    RungTrial trial;
    trial.rung = rung;
    const Timer rung_timer;
    // Books a failed attempt: degradation trail, metrics and the recorded
    // trial all see the same cause string.
    const auto fail = [&](const std::string& cause) {
      AppendReason(&result.degradation_reason, rung, cause);
      CountRungFailure(rung, cause);
      trial.cause = cause;
      trial.elapsed_us = static_cast<uint64_t>(rung_timer.ElapsedMicros());
      result.trials.push_back(std::move(trial));
    };
    if (FaultInjector::GloballyArmed() &&
        FaultInjector::Global().ShouldFail(RungFaultSite(rung))) {
      fail(kDegradeCauseInjected);
      continue;
    }
    const std::unique_ptr<SelectivityEstimator> estimator =
        MakeRung(rung, options_);
    trial.label = estimator->Name();
    Result<EstimateOutcome> outcome = Status::Internal("rung not run");
    try {
      outcome = estimator->Estimate(va, vb);
    } catch (const std::exception&) {
      // Injected worker faults surface here as FaultInjectedError rethrown
      // by ParallelFor; treat any rung exception as that rung failing.
      fail(kDegradeCauseException);
      continue;
    }
    if (!outcome.ok()) {
      fail(std::string(kDegradeCauseErrorPrefix) +
           StatusCodeName(outcome.status().code()));
      continue;
    }
    const double pairs = outcome->estimated_pairs;
    if (std::isfinite(pairs)) {
      trial.raw_pairs = pairs;
      trial.has_raw_pairs = true;
    }
    if (!std::isfinite(pairs)) {
      fail(kDegradeCauseNonFinite);
      continue;
    }
    if (pairs < 0.0) {
      fail(kDegradeCauseNegative);
      continue;
    }
    result.outcome = std::move(outcome).value();
    if (result.outcome.estimated_pairs > bound) {
      result.outcome.estimated_pairs = bound;
      result.clamped = true;
      SJSEL_METRIC_INC("estimator.clamped");
    }
    result.outcome.selectivity = result.outcome.estimated_pairs / bound;
    result.rung = rung;
    result.rung_label = estimator->Name();
    trial.answered = true;
    trial.elapsed_us = static_cast<uint64_t>(rung_timer.ElapsedMicros());
    result.trials.push_back(std::move(trial));
    SJSEL_METRIC_INC(std::string("estimator.answered.") +
                     EstimatorRungName(rung));
    if (!result.degradation_reason.empty()) {
      SJSEL_METRIC_INC("estimator.degraded");
      SJSEL_TRACE_INSTANT("estimator.degraded");
    }
    return result;
  }

  // Even the parametric floor tripped (it can only do so on pathological
  // extents). Degrade to the one estimate that is always safe: zero.
  AppendReason(&result.degradation_reason, EstimatorRung::kParametric,
               kDegradeCauseFloorZero);
  SJSEL_METRIC_INC("estimator.degraded");
  SJSEL_TRACE_INSTANT("estimator.degraded");
  result.rung = EstimatorRung::kParametric;
  result.rung_label = "Zero";
  result.outcome = EstimateOutcome{};
  RungTrial floor_trial;
  floor_trial.rung = EstimatorRung::kParametric;
  floor_trial.label = result.rung_label;
  floor_trial.answered = true;
  floor_trial.cause = kDegradeCauseFloorZero;
  floor_trial.raw_pairs = 0.0;
  floor_trial.has_raw_pairs = true;
  result.trials.push_back(std::move(floor_trial));
  return result;
}

}  // namespace sjsel
