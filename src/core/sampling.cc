#include "core/sampling.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "hilbert/hilbert.h"
#include "join/plane_sweep.h"
#include "join/rtree_join.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sjsel {

std::string SamplingMethodName(SamplingMethod method) {
  switch (method) {
    case SamplingMethod::kRegular:
      return "RS";
    case SamplingMethod::kRandomWithReplacement:
      return "RSWR";
    case SamplingMethod::kSorted:
      return "SS";
  }
  return "?";
}

namespace {

// Evenly spaced systematic positions: floor(i * n / count). This realizes
// "every k-th item" while hitting the requested sample size exactly.
std::vector<size_t> SystematicPositions(size_t n, size_t count) {
  std::vector<size_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(i * n / count);
  }
  return out;
}

}  // namespace

std::vector<size_t> DrawSampleIndices(size_t n, double frac,
                                      SamplingMethod method, uint64_t seed,
                                      const Dataset* ds) {
  if (n == 0) return {};
  frac = std::clamp(frac, 0.0, 1.0);
  size_t count = static_cast<size_t>(std::llround(frac * n));
  count = std::clamp<size_t>(count, 1, n);
  if (count == n && method != SamplingMethod::kRandomWithReplacement) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  switch (method) {
    case SamplingMethod::kRegular:
      return SystematicPositions(n, count);
    case SamplingMethod::kRandomWithReplacement: {
      Rng rng(seed);
      std::vector<size_t> out;
      out.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        out.push_back(rng.NextU64(n));
      }
      return out;
    }
    case SamplingMethod::kSorted: {
      // Sort data by the Hilbert value of the MBR center, then take a
      // systematic sample of the sorted order.
      std::vector<std::pair<uint64_t, size_t>> keyed(n);
      const Rect extent =
          ds != nullptr ? ds->ComputeExtent() : Rect(0, 0, 1, 1);
      const HilbertCurve curve(16);
      for (size_t i = 0; i < n; ++i) {
        const Rect r = ds != nullptr ? (*ds)[i] : Rect();
        keyed[i] = {curve.ValueForRect(r, extent), i};
      }
      std::sort(keyed.begin(), keyed.end());
      std::vector<size_t> out;
      out.reserve(count);
      for (size_t pos : SystematicPositions(n, count)) {
        out.push_back(keyed[pos].second);
      }
      return out;
    }
  }
  return {};
}

Dataset DrawSample(const Dataset& ds, double frac, SamplingMethod method,
                   uint64_t seed) {
  const std::vector<size_t> idx =
      DrawSampleIndices(ds.size(), frac, method, seed, &ds);
  Dataset sample(ds.name() + "_sample");
  sample.Reserve(idx.size());
  for (size_t i : idx) sample.Add(ds[i]);
  return sample;
}

Result<SamplingEstimate> EstimateBySampling(const Dataset& a,
                                            const Dataset& b,
                                            const SamplingOptions& options) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("cannot sample from an empty dataset");
  }
  if (options.frac_a <= 0.0 || options.frac_a > 1.0 ||
      options.frac_b <= 0.0 || options.frac_b > 1.0) {
    return Status::InvalidArgument("sampling fractions must be in (0, 1]");
  }

  SamplingEstimate est;
  SJSEL_TRACE_SPAN("sampling.estimate", "method=%s frac_a=%.3f frac_b=%.3f",
                   SamplingMethodName(options.method).c_str(),
                   options.frac_a, options.frac_b);
  SJSEL_METRIC_INC("sampling.runs");

  Timer timer;
  Dataset sample_a("");
  Dataset sample_b("");
  {
    SJSEL_TRACE_SPAN("sampling.select", "n_a=%zu n_b=%zu", a.size(),
                     b.size());
    SJSEL_METRIC_SCOPED_LATENCY("sampling.select_us");
    sample_a = DrawSample(a, options.frac_a, options.method, options.seed);
    sample_b =
        DrawSample(b, options.frac_b, options.method, options.seed * 7 + 3);
  }
  est.select_seconds = timer.ElapsedSeconds();
  est.sample_a_size = sample_a.size();
  est.sample_b_size = sample_b.size();
  SJSEL_METRIC_ADD("sampling.selected", sample_a.size() + sample_b.size());

  if (options.join_algo == SampleJoinAlgo::kPlaneSweep) {
    // No index to build: filter the sample pairs with the vectorized
    // plane-sweep join. Exact, so sample_pairs matches the R-tree path.
    timer.Reset();
    {
      SJSEL_TRACE_SPAN("sampling.exact_join", "algo=plane_sweep");
      SJSEL_METRIC_SCOPED_LATENCY("sampling.join_us");
      est.sample_pairs = PlaneSweepJoinCount(sample_a, sample_b);
    }
    est.join_seconds = timer.ElapsedSeconds();
  } else {
    timer.Reset();
    std::optional<RTree> trees[2];
    {
      SJSEL_TRACE_SPAN("sampling.index_build", "samples=%zu threads=%d",
                       sample_a.size() + sample_b.size(), options.threads);
      SJSEL_METRIC_SCOPED_LATENCY("sampling.index_build_us");
      if (options.threads >= 2) {
        // The two builds are independent; run them on two workers.
        // Insertion order within each tree is unchanged, so the trees are
        // identical to a serial build.
        ThreadPool pool(2);
        ParallelFor(&pool, 2, 1, [&](int64_t, int64_t begin, int64_t) {
          const Dataset& sample = begin == 0 ? sample_a : sample_b;
          trees[begin].emplace(
              RTree::BuildByInsertion(sample, options.rtree_options));
        });
      } else {
        trees[0].emplace(
            RTree::BuildByInsertion(sample_a, options.rtree_options));
        trees[1].emplace(
            RTree::BuildByInsertion(sample_b, options.rtree_options));
      }
    }
    est.build_seconds = timer.ElapsedSeconds();

    timer.Reset();
    {
      SJSEL_TRACE_SPAN("sampling.exact_join", "algo=rtree");
      SJSEL_METRIC_SCOPED_LATENCY("sampling.join_us");
      est.sample_pairs =
          RTreeJoinCount(*trees[0], *trees[1], options.threads);
    }
    est.join_seconds = timer.ElapsedSeconds();
  }

  // Scale the sample-join cardinality back up: R / (a% * b%). Use the
  // realized fractions so rounding in the sample sizes does not bias the
  // estimate.
  const double realized_frac_a =
      static_cast<double>(sample_a.size()) / static_cast<double>(a.size());
  const double realized_frac_b =
      static_cast<double>(sample_b.size()) / static_cast<double>(b.size());
  est.estimated_pairs = static_cast<double>(est.sample_pairs) /
                        (realized_frac_a * realized_frac_b);
  est.selectivity = est.estimated_pairs / (static_cast<double>(a.size()) *
                                           static_cast<double>(b.size()));
  return est;
}

}  // namespace sjsel
