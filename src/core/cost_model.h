#ifndef SJSEL_CORE_COST_MODEL_H_
#define SJSEL_CORE_COST_MODEL_H_

#include "rtree/rtree.h"

namespace sjsel {

/// Analytic prediction of the work a synchronized-traversal R-tree join
/// will do — the I/O-cost line of work (Huang et al. [12], Theodoridis et
/// al. [25]) the paper positions itself against. Complements selectivity
/// estimation: selectivity predicts the *output*, this predicts the
/// *effort*.
///
/// The model applies the Aref–Samet expected-intersections formula
/// (Equation 1) to the node-MBR populations of each tree level: the
/// expected number of level-ℓ node pairs with intersecting MBRs
/// approximates the node-pair visits the traversal performs at that depth.
/// Like its ancestors it assumes per-level uniformity, so it is accurate
/// on uniform data and degrades gracefully with skew.
struct JoinCostPrediction {
  /// Expected leaf/leaf node pairs compared (the dominant CPU term).
  double leaf_pairs = 0.0;
  /// Expected internal node pairs expanded.
  double internal_pairs = 0.0;
  /// Expected node accesses: 2 reads per visited pair (both trees).
  double node_accesses = 0.0;
};

/// Predicts the traversal work of RTreeJoinCount(a, b). Empty trees or
/// disjoint root MBRs predict zero cost.
JoinCostPrediction PredictRTreeJoinCost(const RTree& a, const RTree& b);

}  // namespace sjsel

#endif  // SJSEL_CORE_COST_MODEL_H_
