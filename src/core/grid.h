#ifndef SJSEL_CORE_GRID_H_
#define SJSEL_CORE_GRID_H_

#include <cstdint>

#include "geom/rect.h"
#include "util/result.h"

namespace sjsel {

/// The regular grid both histogram schemes are built on: the spatial extent
/// divided by 2^level vertical and 2^level horizontal lines into 4^level
/// equi-sized cells (paper, Section 3).
///
/// Cell ownership follows the half-open convention — cell (i, j) owns
/// [x_i, x_{i+1}) x [y_j, y_{j+1}) — with the last row/column closed so
/// every point of the extent has exactly one owning cell. This is what
/// makes per-cell corner counts partition the corner population (a GH
/// invariant tests rely on).
class Grid {
 public:
  /// `level` must be in [0, 15] (4^15 cells is far beyond practical use;
  /// the paper evaluates levels 0..9).
  static Result<Grid> Create(const Rect& extent, int level);

  int level() const { return level_; }
  /// Cells per axis (2^level).
  int per_axis() const { return per_axis_; }
  /// Total cell count (4^level).
  int64_t num_cells() const {
    return static_cast<int64_t>(per_axis_) * per_axis_;
  }
  const Rect& extent() const { return extent_; }
  double cell_width() const { return cell_w_; }
  double cell_height() const { return cell_h_; }
  double cell_area() const { return cell_w_ * cell_h_; }

  /// Column owning coordinate x (clamped into the extent).
  int CellX(double x) const;
  /// Row owning coordinate y (clamped into the extent).
  int CellY(double y) const;
  /// Flat index of the cell owning point `p`.
  int64_t CellOf(const Point& p) const {
    return Flat(CellX(p.x), CellY(p.y));
  }

  int64_t Flat(int cx, int cy) const {
    return static_cast<int64_t>(cy) * per_axis_ + cx;
  }

  /// Geometry of cell (cx, cy).
  Rect CellRect(int cx, int cy) const;

  /// Column/row span [x0, x1] x [y0, y1] of cells a rectangle overlaps
  /// (by half-open ownership of its min corner through the cell owning its
  /// max corner).
  void CellRange(const Rect& r, int* x0, int* y0, int* x1, int* y1) const;

  /// True iff both grids have identical extent and level, i.e. their
  /// per-cell statistics are directly combinable in a join estimate.
  bool CompatibleWith(const Grid& other) const;

 private:
  Grid(const Rect& extent, int level);

  Rect extent_;
  int level_ = 0;
  int per_axis_ = 1;
  double cell_w_ = 0.0;
  double cell_h_ = 0.0;
};

}  // namespace sjsel

#endif  // SJSEL_CORE_GRID_H_
