#include "core/parametric.h"

namespace sjsel {

double ParametricJoinPairs(const DatasetStats& s1, const DatasetStats& s2) {
  const double n1 = static_cast<double>(s1.n);
  const double n2 = static_cast<double>(s2.n);
  if (s1.extent_area <= 0.0) return 0.0;
  return n1 * s2.coverage + s1.coverage * n2 +
         n1 * n2 *
             (s1.avg_width * s2.avg_height + s2.avg_width * s1.avg_height) /
             s1.extent_area;
}

double ParametricJoinSelectivity(const DatasetStats& s1,
                                 const DatasetStats& s2) {
  if (s1.n == 0 || s2.n == 0) return 0.0;
  return ParametricJoinPairs(s1, s2) /
         (static_cast<double>(s1.n) * static_cast<double>(s2.n));
}

}  // namespace sjsel
