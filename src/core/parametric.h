#ifndef SJSEL_CORE_PARAMETRIC_H_
#define SJSEL_CORE_PARAMETRIC_H_

#include "stats/dataset_stats.h"

namespace sjsel {

/// The prior parametric model of Aref & Samet [2] (Equation 1 of the
/// paper): under a uniformity assumption, the expected join result size of
/// two rectangle sets over a common extent of area A is
///
///   Size = N1*C2 + C1*N2 + N1*N2*(W1*H2 + W2*H1)/A.
///
/// Both stats must have been computed against the same extent. This is
/// exactly what PH degenerates to at gridding level 0.
double ParametricJoinPairs(const DatasetStats& s1, const DatasetStats& s2);

/// Equation 2: Size / (N1 * N2). Returns 0 for empty inputs.
double ParametricJoinSelectivity(const DatasetStats& s1,
                                 const DatasetStats& s2);

}  // namespace sjsel

#endif  // SJSEL_CORE_PARAMETRIC_H_
