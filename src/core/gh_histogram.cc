#include "core/gh_histogram.h"

#include <algorithm>

#include "core/kernels.h"
#include "core/tile_build.h"
#include "geom/soa_dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/aligned.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace sjsel {
namespace {

constexpr uint32_t kGhMagic = 0x53474847;  // "SGHG"
// v3: shared checked envelope (format-version byte + CRC verified before
// any field parse); v2 carried a u32 version and a trailing CRC check.
constexpr uint8_t kGhVersion = 3;

}  // namespace

namespace {

// Emits one MBR's GH contributions given its precomputed cell range
// [x0, x1] x [y0, y1]. The corner cells and edge rows/columns are the
// range corners — CellOf(min corner) == (x0, y0) and so on — so a single
// range computation (scalar here, batched in GhContributionBatch) covers
// every cell lookup the scheme needs.
template <typename Sink>
void EmitGhContribution(const Grid& grid, GhVariant variant, const Rect& r,
                        int x0, int y0, int x1, int y1, Sink&& sink) {
  const bool basic = variant == GhVariant::kBasic;
  const double cell_w = grid.cell_width();
  const double cell_h = grid.cell_height();
  const double cell_area = grid.cell_area();

  // Corner points — every MBR has 4 (coincident for degenerate MBRs),
  // each owned by exactly one cell.
  sink.Corner(grid.Flat(x0, y0), 1.0);
  sink.Corner(grid.Flat(x1, y0), 1.0);
  sink.Corner(grid.Flat(x0, y1), 1.0);
  sink.Corner(grid.Flat(x1, y1), 1.0);

  // Area term (revised: clipped-area ratio; basic: intersects-cell count).
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      const int64_t idx = grid.Flat(cx, cy);
      if (basic) {
        sink.Area(idx, 1.0);
      } else {
        const Rect cell = grid.CellRect(cx, cy);
        const double w = OverlapLen(r.min_x, r.max_x, cell.min_x, cell.max_x);
        const double h = OverlapLen(r.min_y, r.max_y, cell.min_y, cell.max_y);
        sink.Area(idx, (w * h) / cell_area);
      }
    }
  }

  // Horizontal edges (bottom and top; both contribute even when they
  // coincide — see the degenerate-MBR note in the header). The bottom edge
  // lies in row y0, the top edge in row y1.
  for (const int cy : {y0, y1}) {
    for (int cx = x0; cx <= x1; ++cx) {
      const int64_t idx = grid.Flat(cx, cy);
      if (basic) {
        sink.Horizontal(idx, 1.0);
      } else {
        const Rect cell = grid.CellRect(cx, cy);
        sink.Horizontal(idx, OverlapLen(r.min_x, r.max_x, cell.min_x,
                                        cell.max_x) /
                                 cell_w);
      }
    }
  }

  // Vertical edges (left and right; columns x0 and x1).
  for (const int cx : {x0, x1}) {
    for (int cy = y0; cy <= y1; ++cy) {
      const int64_t idx = grid.Flat(cx, cy);
      if (basic) {
        sink.Vertical(idx, 1.0);
      } else {
        const Rect cell = grid.CellRect(cx, cy);
        sink.Vertical(idx, OverlapLen(r.min_y, r.max_y, cell.min_y,
                                      cell.max_y) /
                               cell_h);
      }
    }
  }
}

// Scalar entry point: computes the cell range, then emits. Shared by
// AddRect, RemoveRect and the on-the-fly query-parameter path of
// EstimateGhRangeCount.
template <typename Sink>
void ForEachGhContribution(const Grid& grid, GhVariant variant, const Rect& r,
                           Sink&& sink) {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
  grid.CellRange(r, &x0, &y0, &x1, &y1);
  EmitGhContribution(grid, variant, r, x0, y0, x1, y1, sink);
}

// Sink that accumulates into a histogram's arrays with a +/-1 weight.
struct ArraySink {
  std::vector<double>* c;
  std::vector<double>* o;
  std::vector<double>* h;
  std::vector<double>* v;
  double weight;

  void Corner(int64_t idx, double amount) { (*c)[idx] += weight * amount; }
  void Area(int64_t idx, double amount) { (*o)[idx] += weight * amount; }
  void Horizontal(int64_t idx, double amount) {
    (*h)[idx] += weight * amount;
  }
  void Vertical(int64_t idx, double amount) { (*v)[idx] += weight * amount; }
};

// Tile side of the blocked build, in cells: 32×32 cells × 4 stat arrays ×
// 8 B = 32 KiB — one tile's accumulation working set stays L1-resident.
constexpr int kGhTileCells = 32;

// Accumulation-array budget (4 stat arrays × 8 B per cell) under which a
// serial build skips the binning pass: the scattered per-cell writes stay
// cache-resident anyway, so one dataset-order sweep of the expansion
// engine is both faster and trivially order-preserving.
constexpr int64_t kGhCacheResidentBytes = 2 << 20;

// (rect, cell) entry buffer of the expand-clip-accumulate engine, in SoA
// layout. The expansion loop resolves each entry to its flat cell index
// and computes the clip overlaps w/h scalar (min/max arithmetic — cheap;
// w varies only by column and h only by row, so they are hoisted);
// `counts` packs how many corner / horizontal-edge / vertical-edge
// bookings the entry's cell receives from its rect. The batched
// GhEntryTermsBatch kernel then turns (w, h) runs into the clipped
// fractions — the per-cell divisions that dominate the scalar build.
struct GhEntryScratch {
  AlignedVector<int32_t> idx;          // flat cell index (Grid::Flat)
  AlignedVector<uint8_t> counts;       // corner(0..4) | h(0..2)<<3 | v<<5
  AlignedVector<double> w, h;          // clip overlaps (revised variant)
  AlignedVector<double> area, hf, vf;  // GhEntryTermsBatch outputs
  AlignedVector<double> wcol;          // per-rect column overlap buffer
  size_t used = 0;

  size_t capacity() const { return idx.size(); }

  void Ensure(size_t cap) {
    if (capacity() >= cap) return;
    idx.resize(cap);
    counts.resize(cap);
    w.resize(cap);
    h.resize(cap);
    area.resize(cap);
    hf.resize(cap);
    vf.resize(cap);
  }
};

constexpr size_t kGhEntryChunk = 4096;

// Expands rows [lo, hi) of a rect run (cell ranges + coordinates, dataset
// order or binned order) into (rect, cell) entries clamped to `tile`,
// batches the per-cell clipped fractions through GhEntryTermsBatch, and
// books the amounts with a scalar loop in entry order. Entry order is
// rect order, cells row-major — so per cell and per statistic the
// additions happen in the serial AddRect sequence with the same amounts
// (see core/tile_build.h for why within-rect order is free). The count
// statistics are booked as one add of the count value: they only ever
// accumulate +1.0s, so the running sums are exact small integers and
// a + k is bitwise equal to k repetitions of a + 1.0.
void GhAccumulateRun(const Grid& grid, bool basic, const int32_t* x0,
                     const int32_t* y0, const int32_t* x1, const int32_t* y1,
                     const SoaSlice& coords, size_t lo, size_t hi,
                     const tile_build::TileBounds& tile, GhEntryScratch* es,
                     std::vector<double>* c, std::vector<double>* o,
                     std::vector<double>* h, std::vector<double>* v) {
  const GridGeom geom{grid.extent().min_x, grid.extent().min_y,
                      grid.cell_width(), grid.cell_height(),
                      grid.per_axis()};
  const int per_axis = geom.per_axis;
  es->Ensure(kGhEntryChunk);
  es->used = 0;

  const auto flush = [&] {
    if (es->used == 0) return;
    if (!basic) {
      GhEntryTermsBatch(geom, es->used, es->w.data(), es->h.data(),
                        es->area.data(), es->hf.data(), es->vf.data());
    }
    for (size_t k = 0; k < es->used; ++k) {
      const int32_t idx = es->idx[k];
      const uint32_t f = es->counts[k];
      if (basic) {
        (*o)[idx] += 1.0;
        if (f != 0) {
          (*c)[idx] += static_cast<double>(f & 7);
          (*h)[idx] += static_cast<double>((f >> 3) & 3);
          (*v)[idx] += static_cast<double>(f >> 5);
        }
      } else {
        (*o)[idx] += es->area[k];
        if (f != 0) {
          (*c)[idx] += static_cast<double>(f & 7);
          const uint32_t hc = (f >> 3) & 3;
          if (hc != 0) {
            (*h)[idx] += es->hf[k];
            if (hc == 2) (*h)[idx] += es->hf[k];
          }
          const uint32_t vc = f >> 5;
          if (vc != 0) {
            (*v)[idx] += es->vf[k];
            if (vc == 2) (*v)[idx] += es->vf[k];
          }
        }
      }
    }
    es->used = 0;
  };

  for (size_t k = lo; k < hi; ++k) {
    const int rx0 = x0[k];
    const int ry0 = y0[k];
    const int rx1 = x1[k];
    const int ry1 = y1[k];
    const int ex0 = std::max(rx0, tile.cx0);
    const int ex1 = std::min(rx1, tile.cx1);
    const int ey0 = std::max(ry0, tile.cy0);
    const int ey1 = std::min(ry1, tile.cy1);
    const size_t ncols = static_cast<size_t>(ex1 - ex0 + 1);
    const size_t cells = ncols * static_cast<size_t>(ey1 - ey0 + 1);
    if (es->used + cells > es->capacity()) {
      flush();
      es->Ensure(cells);
    }
    const double rmin_x = coords.min_x[k];
    const double rmin_y = coords.min_y[k];
    const double rmax_x = coords.max_x[k];
    const double rmax_y = coords.max_y[k];
    if (!basic) {
      // Same cell-bound and overlap arithmetic as Grid::CellRect +
      // OverlapLen in the streaming path, hoisted per column.
      if (es->wcol.size() < ncols) es->wcol.resize(ncols);
      for (int cx = ex0; cx <= ex1; ++cx) {
        const double cell_lo = geom.min_x + cx * geom.cell_w;
        const double cell_hi = geom.min_x + (cx + 1) * geom.cell_w;
        es->wcol[cx - ex0] = OverlapLen(rmin_x, rmax_x, cell_lo, cell_hi);
      }
    }
    size_t used = es->used;
    for (int cy = ey0; cy <= ey1; ++cy) {
      const uint32_t row_hits =
          static_cast<uint32_t>(cy == ry0) + static_cast<uint32_t>(cy == ry1);
      double hrow = 0.0;
      if (!basic) {
        const double cell_lo = geom.min_y + cy * geom.cell_h;
        const double cell_hi = geom.min_y + (cy + 1) * geom.cell_h;
        hrow = OverlapLen(rmin_y, rmax_y, cell_lo, cell_hi);
      }
      const int32_t rowbase = static_cast<int32_t>(cy) * per_axis;
      for (int cx = ex0; cx <= ex1; ++cx) {
        const uint32_t col_hits = static_cast<uint32_t>(cx == rx0) +
                                  static_cast<uint32_t>(cx == rx1);
        es->idx[used] = rowbase + cx;
        es->counts[used] = static_cast<uint8_t>(
            (col_hits * row_hits) | (row_hits << 3) | (col_hits << 5));
        if (!basic) {
          es->w[used] = es->wcol[cx - ex0];
          es->h[used] = hrow;
        }
        ++used;
      }
    }
    es->used = used;
  }
  flush();
}

// Rect chunk of the serial fast path below: 12 term arrays x 2048 x <= 8 B
// = 160 KiB of kernel output that stays cache-hot for the scatter pass.
constexpr size_t kGhRectChunk = 2048;

// Serial cache-resident fast path: the fused GhRectTermsBatch kernel
// computes cell ranges plus every clipped fraction a rect spanning at most
// 2x2 cells can book (the overwhelming majority once MBRs are at or below
// cell size), and a straight-line scatter books the precomputed amounts —
// no SoA copy, no (rect, cell) entry buffer. Wider rects fall back to the
// streaming per-cell emission. Bit-identity with AddRect: rects are
// processed in dataset order, every amount is the same IEEE-754 expression
// the streaming path evaluates, and within one rect each per-cell
// accumulator receives the same adds in the same sequence (count sums are
// exact small integers, so booking a count as one add of its value equals
// repeated +1.0 adds).
template <bool kBasic>
void GhSerialBuild(const Grid& grid, const Dataset& ds,
                   std::vector<double>* c_arr, std::vector<double>* o_arr,
                   std::vector<double>* h_arr, std::vector<double>* v_arr) {
  const GridGeom geom{grid.extent().min_x, grid.extent().min_y,
                      grid.cell_width(), grid.cell_height(),
                      grid.per_axis()};
  const int32_t per_axis = geom.per_axis;
  const size_t n = ds.size();
  const Rect* rects = ds.rects().data();
  double* C = c_arr->data();
  double* O = o_arr->data();
  double* H = h_arr->data();
  double* V = v_arr->data();

  AlignedVector<int32_t> x0(kGhRectChunk), y0(kGhRectChunk),
      x1(kGhRectChunk), y1(kGhRectChunk);
  AlignedVector<double> a00(kGhRectChunk), a01(kGhRectChunk),
      a10(kGhRectChunk), a11(kGhRectChunk), hf0(kGhRectChunk),
      hf1(kGhRectChunk), vf0(kGhRectChunk), vf1(kGhRectChunk);
  const GhRectTermsOut out{x0.data(),  y0.data(),  x1.data(),  y1.data(),
                           a00.data(), a01.data(), a10.data(), a11.data(),
                           hf0.data(), hf1.data(), vf0.data(), vf1.data()};

  for (size_t lo = 0; lo < n; lo += kGhRectChunk) {
    const size_t m = std::min(kGhRectChunk, n - lo);
    GhRectTermsBatch(geom, rects + lo, m, out);
    for (size_t k = 0; k < m; ++k) {
      const int cspan = x1[k] - x0[k];
      const int rspan = y1[k] - y0[k];
      if ((cspan | rspan) > 1) {
        ArraySink sink{c_arr, o_arr, h_arr, v_arr, +1.0};
        EmitGhContribution(grid,
                           kBasic ? GhVariant::kBasic : GhVariant::kRevised,
                           rects[lo + k], x0[k], y0[k], x1[k], y1[k], sink);
        continue;
      }
      const int32_t i00 = y0[k] * per_axis + x0[k];
      const int32_t i10 = i00 + 1;
      const int32_t i01 = i00 + per_axis;
      const int32_t i11 = i01 + 1;
      // Cases keyed by span: a coincident edge pair (span 0 on an axis)
      // doubles that axis's corner and edge bookings, exactly as the
      // streaming path's two passes over {x0, x1} / {y0, y1} do.
      switch ((cspan << 1) | rspan) {
        case 0:  // one cell; all four corners and both edge pairs land on it
          if constexpr (kBasic) {
            C[i00] += 4.0;
            O[i00] += 1.0;
            H[i00] += 2.0;
            V[i00] += 2.0;
          } else {
            C[i00] += 4.0;
            O[i00] += a00[k];
            H[i00] += hf0[k];
            H[i00] += hf0[k];
            V[i00] += vf0[k];
            V[i00] += vf0[k];
          }
          break;
        case 1:  // one column, two rows
          if constexpr (kBasic) {
            C[i00] += 2.0;
            C[i01] += 2.0;
            O[i00] += 1.0;
            O[i01] += 1.0;
            H[i00] += 1.0;
            H[i01] += 1.0;
            V[i00] += 2.0;
            V[i01] += 2.0;
          } else {
            C[i00] += 2.0;
            C[i01] += 2.0;
            O[i00] += a00[k];
            O[i01] += a01[k];
            H[i00] += hf0[k];
            H[i01] += hf0[k];
            V[i00] += vf0[k];
            V[i00] += vf0[k];
            V[i01] += vf1[k];
            V[i01] += vf1[k];
          }
          break;
        case 2:  // two columns, one row
          if constexpr (kBasic) {
            C[i00] += 2.0;
            C[i10] += 2.0;
            O[i00] += 1.0;
            O[i10] += 1.0;
            H[i00] += 2.0;
            H[i10] += 2.0;
            V[i00] += 1.0;
            V[i10] += 1.0;
          } else {
            C[i00] += 2.0;
            C[i10] += 2.0;
            O[i00] += a00[k];
            O[i10] += a10[k];
            H[i00] += hf0[k];
            H[i00] += hf0[k];
            H[i10] += hf1[k];
            H[i10] += hf1[k];
            V[i00] += vf0[k];
            V[i10] += vf0[k];
          }
          break;
        default:  // 2x2
          if constexpr (kBasic) {
            C[i00] += 1.0;
            C[i10] += 1.0;
            C[i01] += 1.0;
            C[i11] += 1.0;
            O[i00] += 1.0;
            O[i10] += 1.0;
            O[i01] += 1.0;
            O[i11] += 1.0;
            H[i00] += 1.0;
            H[i10] += 1.0;
            H[i01] += 1.0;
            H[i11] += 1.0;
            V[i00] += 1.0;
            V[i01] += 1.0;
            V[i10] += 1.0;
            V[i11] += 1.0;
          } else {
            C[i00] += 1.0;
            C[i10] += 1.0;
            C[i01] += 1.0;
            C[i11] += 1.0;
            O[i00] += a00[k];
            O[i10] += a10[k];
            O[i01] += a01[k];
            O[i11] += a11[k];
            H[i00] += hf0[k];
            H[i10] += hf1[k];
            H[i01] += hf0[k];
            H[i11] += hf1[k];
            V[i00] += vf0[k];
            V[i01] += vf1[k];
            V[i10] += vf0[k];
            V[i11] += vf1[k];
          }
          break;
      }
    }
  }
}

}  // namespace

Result<GhHistogram> GhHistogram::CreateEmpty(const Rect& extent, int level,
                                             GhVariant variant) {
  auto grid_result = Grid::Create(extent, level);
  if (!grid_result.ok()) return grid_result.status();
  GhHistogram hist(std::move(grid_result).value(), variant);
  const int64_t cells = hist.grid_.num_cells();
  hist.c_.assign(cells, 0.0);
  hist.o_.assign(cells, 0.0);
  hist.h_.assign(cells, 0.0);
  hist.v_.assign(cells, 0.0);
  return hist;
}

void GhHistogram::AddRect(const Rect& r) {
  ArraySink sink{&c_, &o_, &h_, &v_, +1.0};
  ForEachGhContribution(grid_, variant_, r, sink);
  ++n_;
}

void GhHistogram::RemoveRect(const Rect& r) {
  ArraySink sink{&c_, &o_, &h_, &v_, -1.0};
  ForEachGhContribution(grid_, variant_, r, sink);
  if (n_ > 0) --n_;
}

Status GhHistogram::Merge(const GhHistogram& other) {
  if (!grid_.CompatibleWith(other.grid_)) {
    return Status::InvalidArgument(
        "cannot merge GH histograms built on different grids");
  }
  if (variant_ != other.variant_) {
    return Status::InvalidArgument(
        "cannot merge GH histograms of different variants");
  }
  for (size_t i = 0; i < c_.size(); ++i) {
    c_[i] += other.c_[i];
    o_[i] += other.o_[i];
    h_[i] += other.h_[i];
    v_[i] += other.v_[i];
  }
  n_ += other.n_;
  return Status::OK();
}

Result<GhHistogram> GhHistogram::Build(const Dataset& ds, const Rect& extent,
                                       int level, GhVariant variant,
                                       int threads) {
  SJSEL_TRACE_SPAN("gh.build", "dataset=%s rects=%zu level=%d threads=%d",
                   ds.name().c_str(), ds.size(), level, threads);
  SJSEL_METRIC_INC("hist.gh.builds");
  SJSEL_METRIC_SCOPED_LATENCY("hist.gh.build_us");
  auto hist_result = CreateEmpty(extent, level, variant);
  if (!hist_result.ok()) return hist_result.status();
  GhHistogram hist = std::move(hist_result).value();
  hist.name_ = ds.name();
  const size_t n = ds.size();
  hist.n_ = static_cast<uint64_t>(n);
  if (n == 0) return hist;

  const Grid& grid = hist.grid_;
  const int per_axis = grid.per_axis();
  const bool basic = variant == GhVariant::kBasic;
  const int tiles_per_axis = (per_axis + kGhTileCells - 1) / kGhTileCells;
  const int64_t num_tiles =
      static_cast<int64_t>(tiles_per_axis) * tiles_per_axis;
  const bool blocked = (threads > 1 && num_tiles > 1) ||
                       grid.num_cells() * 4 * 8 > kGhCacheResidentBytes;
  if (!blocked) {
    // Serial cache-resident regime: the fused AoS kernel + scatter pass.
    if (basic) {
      GhSerialBuild<true>(grid, ds, &hist.c_, &hist.o_, &hist.h_, &hist.v_);
    } else {
      GhSerialBuild<false>(grid, ds, &hist.c_, &hist.o_, &hist.h_,
                           &hist.v_);
    }
    return hist;
  }

  // Cache-blocked bin-then-accumulate (see core/tile_build.h for the
  // scheme and the bit-identity argument). Pass 1 computes cell ranges
  // for the whole dataset with the vectorized CellRangeBatch kernel and
  // counting-sorts rect payloads by tile; pass 2 runs the
  // expand-clip-accumulate engine (GhAccumulateRun) per tile.
  const SoaDataset soa = SoaDataset::FromDataset(ds);
  const SoaSlice all = soa.Slice();
  AlignedVector<int32_t> x0(n), y0(n), x1(n), y1(n);
  const GridGeom geom{grid.extent().min_x, grid.extent().min_y,
                      grid.cell_width(), grid.cell_height(), per_axis};
  CellRangeBatch(geom, all, x0.data(), y0.data(), x1.data(), y1.data());

  const tile_build::TileBins bins = tile_build::BinRectsByTile(
      all, per_axis, kGhTileCells, x0.data(), y0.data(), x1.data(),
      y1.data());
  const SoaSlice binned = bins.CoordSlice(0, bins.offsets.back());
  tile_build::ForEachTile(bins.num_tiles(), threads, [&](int64_t t) {
    const tile_build::TileBounds tile = tile_build::BoundsOfTile(
        t, bins.tiles_per_axis, kGhTileCells, per_axis);
    GhEntryScratch es;
    GhAccumulateRun(grid, basic, bins.x0.data(), bins.y0.data(),
                    bins.x1.data(), bins.y1.data(), binned, bins.offsets[t],
                    bins.offsets[t + 1], tile, &es, &hist.c_, &hist.o_,
                    &hist.h_, &hist.v_);
  });
  return hist;
}

namespace {

Status CheckGhCombinable(const GhHistogram& a, const GhHistogram& b) {
  if (!a.grid().CompatibleWith(b.grid())) {
    return Status::InvalidArgument(
        "GH histograms built on different grids cannot be combined");
  }
  if (a.variant() != b.variant()) {
    return Status::InvalidArgument(
        "GH histograms of different variants cannot be combined");
  }
  return Status::OK();
}

// The four Equation 5 cross terms of one cell. Both the scalar estimate
// and GhPerCellContributions go through this helper, so the per-cell
// breakdown reproduces the scalar sum bit for bit regardless of how the
// compiler contracts the multiplies.
inline GhCellContribution GhCellTerms(const GhHistogram& a,
                                      const GhHistogram& b, size_t i) {
  GhCellContribution t;
  t.c1_o2 = a.c()[i] * b.o()[i];
  t.o1_c2 = a.o()[i] * b.c()[i];
  t.h1_v2 = a.h()[i] * b.v()[i];
  t.v1_h2 = a.v()[i] * b.h()[i];
  return t;
}

}  // namespace

Result<double> EstimateGhIntersectionPoints(const GhHistogram& a,
                                            const GhHistogram& b) {
  if (const Status st = CheckGhCombinable(a, b); !st.ok()) return st;
  double ip = 0.0;
  const size_t n = a.c().size();
  for (size_t i = 0; i < n; ++i) {
    ip += GhCellTerms(a, b, i).intersection_points();
  }
  return ip;
}

Result<std::vector<GhCellContribution>> GhPerCellContributions(
    const GhHistogram& a, const GhHistogram& b) {
  if (const Status st = CheckGhCombinable(a, b); !st.ok()) return st;
  const size_t n = a.c().size();
  std::vector<GhCellContribution> cells;
  cells.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    cells.push_back(GhCellTerms(a, b, i));
  }
  return cells;
}

Result<double> EstimateGhJoinPairs(const GhHistogram& a,
                                   const GhHistogram& b) {
  double ip = 0.0;
  SJSEL_ASSIGN_OR_RETURN(ip, EstimateGhIntersectionPoints(a, b));
  return ip / 4.0;
}

Result<double> EstimateGhJoinSelectivity(const GhHistogram& a,
                                         const GhHistogram& b) {
  if (a.dataset_size() == 0 || b.dataset_size() == 0) {
    return Status::FailedPrecondition(
        "selectivity undefined for empty datasets");
  }
  double pairs = 0.0;
  SJSEL_ASSIGN_OR_RETURN(pairs, EstimateGhJoinPairs(a, b));
  return pairs / (static_cast<double>(a.dataset_size()) *
                  static_cast<double>(b.dataset_size()));
}

namespace {

// Recovers the Equation 1 aggregates (coverage, average width/height) of a
// dataset from its revised GH histogram alone: Σo cells sum to the
// coverage ratio of the whole extent, and the edge-ratio sums give back
// twice the total widths/heights.
struct Eq1Aggregates {
  double n = 0.0;
  double coverage = 0.0;
  double avg_w = 0.0;
  double avg_h = 0.0;
};

Eq1Aggregates AggregatesFrom(const GhHistogram& hist) {
  Eq1Aggregates agg;
  agg.n = static_cast<double>(hist.dataset_size());
  double sum_o = 0.0;
  double sum_h = 0.0;
  double sum_v = 0.0;
  for (size_t i = 0; i < hist.o().size(); ++i) {
    sum_o += hist.o()[i];
    sum_h += hist.h()[i];
    sum_v += hist.v()[i];
  }
  const Grid& grid = hist.grid();
  const double cells = static_cast<double>(grid.num_cells());
  agg.coverage = sum_o / cells;
  if (agg.n > 0.0) {
    agg.avg_w = sum_h * grid.cell_width() / (2.0 * agg.n);
    agg.avg_h = sum_v * grid.cell_height() / (2.0 * agg.n);
  }
  return agg;
}

}  // namespace

Result<double> EstimateGhSpatialCorrelation(const GhHistogram& a,
                                            const GhHistogram& b) {
  if (a.variant() != GhVariant::kRevised ||
      b.variant() != GhVariant::kRevised) {
    return Status::InvalidArgument(
        "spatial correlation needs revised-variant GH histograms");
  }
  if (a.dataset_size() == 0 || b.dataset_size() == 0) {
    return Status::FailedPrecondition(
        "correlation undefined for empty datasets");
  }
  double observed_sel = 0.0;
  SJSEL_ASSIGN_OR_RETURN(observed_sel, EstimateGhJoinSelectivity(a, b));

  const Eq1Aggregates sa = AggregatesFrom(a);
  const Eq1Aggregates sb = AggregatesFrom(b);
  const double area = a.grid().extent().area();
  if (area <= 0.0) return Status::Internal("degenerate extent");
  const double independent_pairs =
      sa.n * sb.coverage + sa.coverage * sb.n +
      sa.n * sb.n * (sa.avg_w * sb.avg_h + sb.avg_w * sa.avg_h) / area;
  const double independent_sel = independent_pairs / (sa.n * sb.n);
  if (independent_sel <= 0.0) {
    return Status::FailedPrecondition(
        "independence baseline is zero (degenerate data)");
  }
  return observed_sel / independent_sel;
}

Result<double> EstimateGhSelfJoinPairs(const GhHistogram& hist) {
  double ordered = 0.0;
  SJSEL_ASSIGN_OR_RETURN(ordered, EstimateGhJoinPairs(hist, hist));
  const double distinct =
      (ordered - static_cast<double>(hist.dataset_size())) / 2.0;
  return distinct < 0.0 ? 0.0 : distinct;
}

Result<double> EstimateGhJoinPairsInWindow(const GhHistogram& a,
                                           const GhHistogram& b,
                                           const Rect& window) {
  if (!a.grid().CompatibleWith(b.grid())) {
    return Status::InvalidArgument(
        "GH histograms built on different grids cannot be combined");
  }
  if (a.variant() != b.variant()) {
    return Status::InvalidArgument(
        "GH histograms of different variants cannot be combined");
  }
  const Grid& grid = a.grid();
  const Rect clipped = window.Intersection(grid.extent());
  if (clipped.IsEmpty()) return 0.0;

  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
  grid.CellRange(clipped, &x0, &y0, &x1, &y1);
  const double cell_area = grid.cell_area();
  double ip = 0.0;
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      const Rect cell = grid.CellRect(cx, cy);
      const Rect overlap = cell.Intersection(clipped);
      if (overlap.IsEmpty()) continue;
      // Boundary cells contribute in proportion to the overlapped area —
      // the same within-cell uniformity assumption GH already makes.
      const double weight = overlap.area() / cell_area;
      if (weight <= 0.0) continue;
      const int64_t i = grid.Flat(cx, cy);
      ip += weight * (a.c()[i] * b.o()[i] + a.o()[i] * b.c()[i] +
                      a.h()[i] * b.v()[i] + a.v()[i] * b.h()[i]);
    }
  }
  return ip / 4.0;
}

namespace {

// Sink that combines one query rectangle's on-the-fly GH parameters with a
// prebuilt histogram's cell statistics — evaluating Equation 5 for the
// join of `hist` with the singleton dataset {query} without materializing
// a second histogram.
struct QueryCombineSink {
  const GhHistogram* hist;
  double ip = 0.0;

  void Corner(int64_t idx, double amount) {
    ip += amount * hist->o()[idx];
  }
  void Area(int64_t idx, double amount) {
    ip += amount * hist->c()[idx];
  }
  void Horizontal(int64_t idx, double amount) {
    ip += amount * hist->v()[idx];
  }
  void Vertical(int64_t idx, double amount) {
    ip += amount * hist->h()[idx];
  }
};

}  // namespace

double EstimateGhRangeCount(const GhHistogram& hist, const Rect& query) {
  QueryCombineSink sink{&hist, 0.0};
  ForEachGhContribution(hist.grid(), hist.variant(), query, sink);
  return sink.ip / 4.0;
}

uint64_t GhHistogram::NonEmptyCells() const {
  uint64_t count = 0;
  for (size_t i = 0; i < c_.size(); ++i) {
    if (c_[i] != 0.0 || o_[i] != 0.0 || h_[i] != 0.0 || v_[i] != 0.0) {
      ++count;
    }
  }
  return count;
}

uint64_t GhHistogram::FileBytes(FileFormat format) const {
  // Header: magic, version byte, variant, format, level, 4 extent doubles,
  // n, name; trailer: CRC.
  const uint64_t header = 4 + 1 + 1 + 1 + 4 + 32 + 8 + 4 + name_.size();
  const uint64_t trailer = 4;
  if (format == FileFormat::kDense) {
    return header + 4 * (8 + c_.size() * 8) + trailer;
  }
  return header + 8 + NonEmptyCells() * (8 + 4 * 8) + trailer;
}

Status GhHistogram::Save(const std::string& path, FileFormat format) const {
  BinaryWriter w;
  w.BeginEnvelope(kGhMagic, kGhVersion);
  w.PutU8(variant_ == GhVariant::kBasic ? 1 : 0);
  w.PutU8(format == FileFormat::kSparse ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(grid_.level()));
  w.PutDouble(grid_.extent().min_x);
  w.PutDouble(grid_.extent().min_y);
  w.PutDouble(grid_.extent().max_x);
  w.PutDouble(grid_.extent().max_y);
  w.PutU64(n_);
  w.PutString(name_);
  if (format == FileFormat::kDense) {
    w.PutDoubleVector(c_);
    w.PutDoubleVector(o_);
    w.PutDoubleVector(h_);
    w.PutDoubleVector(v_);
  } else {
    w.PutU64(NonEmptyCells());
    for (size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] == 0.0 && o_[i] == 0.0 && h_[i] == 0.0 && v_[i] == 0.0) {
        continue;
      }
      w.PutU64(i);
      w.PutDouble(c_[i]);
      w.PutDouble(o_[i]);
      w.PutDouble(h_[i]);
      w.PutDouble(v_[i]);
    }
  }
  return WriteFile(path, w.SealEnvelope());
}

Result<GhHistogram> GhHistogram::Load(const std::string& path) {
  std::string data;
  SJSEL_ASSIGN_OR_RETURN(data, ReadFile(path));
  BinaryReader r(std::move(data));
  uint8_t version = 0;
  SJSEL_ASSIGN_OR_RETURN(version, r.OpenEnvelope(kGhMagic, "GH histogram"));
  if (version != kGhVersion) {
    return Status::Corruption("unsupported GH version " +
                              std::to_string(version));
  }
  uint8_t variant_byte = 0;
  SJSEL_ASSIGN_OR_RETURN(variant_byte, r.GetU8());
  uint8_t format_byte = 0;
  SJSEL_ASSIGN_OR_RETURN(format_byte, r.GetU8());
  uint32_t level = 0;
  SJSEL_ASSIGN_OR_RETURN(level, r.GetU32());
  Rect extent;
  SJSEL_ASSIGN_OR_RETURN(extent.min_x, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(extent.min_y, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(extent.max_x, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(extent.max_y, r.GetDouble());

  auto grid_result = Grid::Create(extent, static_cast<int>(level));
  if (!grid_result.ok()) return grid_result.status();
  GhHistogram hist(std::move(grid_result).value(),
                   variant_byte == 1 ? GhVariant::kBasic
                                     : GhVariant::kRevised);

  SJSEL_ASSIGN_OR_RETURN(hist.n_, r.GetU64());
  SJSEL_ASSIGN_OR_RETURN(hist.name_, r.GetString());
  const size_t cells = static_cast<size_t>(hist.grid_.num_cells());
  if (format_byte == 0) {
    SJSEL_ASSIGN_OR_RETURN(hist.c_, r.GetDoubleVector());
    SJSEL_ASSIGN_OR_RETURN(hist.o_, r.GetDoubleVector());
    SJSEL_ASSIGN_OR_RETURN(hist.h_, r.GetDoubleVector());
    SJSEL_ASSIGN_OR_RETURN(hist.v_, r.GetDoubleVector());
    if (hist.c_.size() != cells || hist.o_.size() != cells ||
        hist.h_.size() != cells || hist.v_.size() != cells) {
      return Status::Corruption("GH cell payload size mismatch in " + path);
    }
  } else {
    hist.c_.assign(cells, 0.0);
    hist.o_.assign(cells, 0.0);
    hist.h_.assign(cells, 0.0);
    hist.v_.assign(cells, 0.0);
    uint64_t records = 0;
    SJSEL_ASSIGN_OR_RETURN(records, r.GetU64());
    for (uint64_t rec = 0; rec < records; ++rec) {
      uint64_t idx = 0;
      SJSEL_ASSIGN_OR_RETURN(idx, r.GetU64());
      if (idx >= cells) {
        return Status::Corruption("GH sparse record index out of range in " +
                                  path);
      }
      SJSEL_ASSIGN_OR_RETURN(hist.c_[idx], r.GetDouble());
      SJSEL_ASSIGN_OR_RETURN(hist.o_[idx], r.GetDouble());
      SJSEL_ASSIGN_OR_RETURN(hist.h_[idx], r.GetDouble());
      SJSEL_ASSIGN_OR_RETURN(hist.v_[idx], r.GetDouble());
    }
  }
  SJSEL_RETURN_IF_ERROR(r.ExpectBodyEnd("GH file " + path));
  return hist;
}

}  // namespace sjsel
