#include "core/gh_histogram.h"

#include <algorithm>

#include "core/kernels.h"
#include "geom/soa_dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/aligned.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace sjsel {
namespace {

constexpr uint32_t kGhMagic = 0x53474847;  // "SGHG"
constexpr uint32_t kGhVersion = 2;

}  // namespace

namespace {

// Emits one MBR's GH contributions given its precomputed cell range
// [x0, x1] x [y0, y1]. The corner cells and edge rows/columns are the
// range corners — CellOf(min corner) == (x0, y0) and so on — so a single
// range computation (scalar here, batched in GhContributionBatch) covers
// every cell lookup the scheme needs.
template <typename Sink>
void EmitGhContribution(const Grid& grid, GhVariant variant, const Rect& r,
                        int x0, int y0, int x1, int y1, Sink&& sink) {
  const bool basic = variant == GhVariant::kBasic;
  const double cell_w = grid.cell_width();
  const double cell_h = grid.cell_height();
  const double cell_area = grid.cell_area();

  // Corner points — every MBR has 4 (coincident for degenerate MBRs),
  // each owned by exactly one cell.
  sink.Corner(grid.Flat(x0, y0), 1.0);
  sink.Corner(grid.Flat(x1, y0), 1.0);
  sink.Corner(grid.Flat(x0, y1), 1.0);
  sink.Corner(grid.Flat(x1, y1), 1.0);

  // Area term (revised: clipped-area ratio; basic: intersects-cell count).
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      const int64_t idx = grid.Flat(cx, cy);
      if (basic) {
        sink.Area(idx, 1.0);
      } else {
        const Rect cell = grid.CellRect(cx, cy);
        const double w = OverlapLen(r.min_x, r.max_x, cell.min_x, cell.max_x);
        const double h = OverlapLen(r.min_y, r.max_y, cell.min_y, cell.max_y);
        sink.Area(idx, (w * h) / cell_area);
      }
    }
  }

  // Horizontal edges (bottom and top; both contribute even when they
  // coincide — see the degenerate-MBR note in the header). The bottom edge
  // lies in row y0, the top edge in row y1.
  for (const int cy : {y0, y1}) {
    for (int cx = x0; cx <= x1; ++cx) {
      const int64_t idx = grid.Flat(cx, cy);
      if (basic) {
        sink.Horizontal(idx, 1.0);
      } else {
        const Rect cell = grid.CellRect(cx, cy);
        sink.Horizontal(idx, OverlapLen(r.min_x, r.max_x, cell.min_x,
                                        cell.max_x) /
                                 cell_w);
      }
    }
  }

  // Vertical edges (left and right; columns x0 and x1).
  for (const int cx : {x0, x1}) {
    for (int cy = y0; cy <= y1; ++cy) {
      const int64_t idx = grid.Flat(cx, cy);
      if (basic) {
        sink.Vertical(idx, 1.0);
      } else {
        const Rect cell = grid.CellRect(cx, cy);
        sink.Vertical(idx, OverlapLen(r.min_y, r.max_y, cell.min_y,
                                      cell.max_y) /
                               cell_h);
      }
    }
  }
}

// Scalar entry point: computes the cell range, then emits. Shared by
// AddRect, RemoveRect and the on-the-fly query-parameter path of
// EstimateGhRangeCount.
template <typename Sink>
void ForEachGhContribution(const Grid& grid, GhVariant variant, const Rect& r,
                           Sink&& sink) {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
  grid.CellRange(r, &x0, &y0, &x1, &y1);
  EmitGhContribution(grid, variant, r, x0, y0, x1, y1, sink);
}

// Reusable per-chunk buffers of the batch build path.
struct GhBatchScratch {
  AlignedVector<int32_t> x0, y0, x1, y1;
  AlignedVector<double> area, h_frac, v_frac;

  void Resize(size_t n) {
    x0.resize(n);
    y0.resize(n);
    x1.resize(n);
    y1.resize(n);
    area.resize(n);
    h_frac.resize(n);
    v_frac.resize(n);
  }
};

// Batch-kernel contribution pass over a SoA chunk: cell ranges for the
// whole chunk in one vectorized sweep (src/core/kernels.h), clipped
// single-cell terms likewise, then a per-rect emission loop that books the
// amounts in exactly the order — and from exactly the same floating-point
// operations — the scalar ForEachGhContribution produces. Rects spanning
// several cells fall back to the scalar per-cell loops with their
// precomputed range.
template <typename Sink>
void GhContributionBatch(const Grid& grid, GhVariant variant,
                         const SoaSlice& slice, GhBatchScratch* scratch,
                         Sink&& sink) {
  const size_t n = slice.size;
  scratch->Resize(n);
  const GridGeom geom{grid.extent().min_x, grid.extent().min_y,
                      grid.cell_width(), grid.cell_height(),
                      grid.per_axis()};
  CellRangeBatch(geom, slice, scratch->x0.data(), scratch->y0.data(),
                 scratch->x1.data(), scratch->y1.data());
  const bool basic = variant == GhVariant::kBasic;
  if (!basic) {
    GhSingleCellTermsBatch(geom, slice, scratch->x0.data(),
                           scratch->y0.data(), scratch->area.data(),
                           scratch->h_frac.data(), scratch->v_frac.data());
  }
  for (size_t i = 0; i < n; ++i) {
    const int x0 = scratch->x0[i];
    const int y0 = scratch->y0[i];
    const int x1 = scratch->x1[i];
    const int y1 = scratch->y1[i];
    if (x0 == x1 && y0 == y1) {
      // Single-cell rect (the common case at practical grid levels): all
      // 4 corners, the area term and both edge pairs land in one cell,
      // with the clipped fractions already computed by the batch kernel.
      const int64_t idx = grid.Flat(x0, y0);
      sink.Corner(idx, 1.0);
      sink.Corner(idx, 1.0);
      sink.Corner(idx, 1.0);
      sink.Corner(idx, 1.0);
      if (basic) {
        sink.Area(idx, 1.0);
        sink.Horizontal(idx, 1.0);
        sink.Horizontal(idx, 1.0);
        sink.Vertical(idx, 1.0);
        sink.Vertical(idx, 1.0);
      } else {
        sink.Area(idx, scratch->area[i]);
        sink.Horizontal(idx, scratch->h_frac[i]);
        sink.Horizontal(idx, scratch->h_frac[i]);
        sink.Vertical(idx, scratch->v_frac[i]);
        sink.Vertical(idx, scratch->v_frac[i]);
      }
    } else {
      EmitGhContribution(grid, variant, slice.RectAt(i), x0, y0, x1, y1,
                         sink);
    }
  }
}

// Sink that accumulates into a histogram's arrays with a +/-1 weight.
struct ArraySink {
  std::vector<double>* c;
  std::vector<double>* o;
  std::vector<double>* h;
  std::vector<double>* v;
  double weight;

  void Corner(int64_t idx, double amount) { (*c)[idx] += weight * amount; }
  void Area(int64_t idx, double amount) { (*o)[idx] += weight * amount; }
  void Horizontal(int64_t idx, double amount) {
    (*h)[idx] += weight * amount;
  }
  void Vertical(int64_t idx, double amount) { (*v)[idx] += weight * amount; }
};

// One recorded cell update of the parallel build: which statistic array,
// which cell, how much. Workers emit these in rect order; the calling
// thread replays them in chunk order, so every cell sees its additions in
// exactly the order the serial build would produce — parallel results are
// bit-identical to serial, not merely close.
struct GhContribution {
  int64_t idx;
  uint8_t stat;  // 0 = c, 1 = o, 2 = h, 3 = v
  double amount;
};

struct RecordingSink {
  std::vector<GhContribution>* out;

  void Corner(int64_t idx, double amount) {
    out->push_back({idx, 0, amount});
  }
  void Area(int64_t idx, double amount) { out->push_back({idx, 1, amount}); }
  void Horizontal(int64_t idx, double amount) {
    out->push_back({idx, 2, amount});
  }
  void Vertical(int64_t idx, double amount) {
    out->push_back({idx, 3, amount});
  }
};

// Chunk size of the parallel build. Fixed (independent of the thread
// count) so the chunk decomposition — and with it the replay order — is a
// pure function of the dataset.
constexpr int64_t kBuildChunk = 2048;

}  // namespace

Result<GhHistogram> GhHistogram::CreateEmpty(const Rect& extent, int level,
                                             GhVariant variant) {
  auto grid_result = Grid::Create(extent, level);
  if (!grid_result.ok()) return grid_result.status();
  GhHistogram hist(std::move(grid_result).value(), variant);
  const int64_t cells = hist.grid_.num_cells();
  hist.c_.assign(cells, 0.0);
  hist.o_.assign(cells, 0.0);
  hist.h_.assign(cells, 0.0);
  hist.v_.assign(cells, 0.0);
  return hist;
}

void GhHistogram::AddRect(const Rect& r) {
  ArraySink sink{&c_, &o_, &h_, &v_, +1.0};
  ForEachGhContribution(grid_, variant_, r, sink);
  ++n_;
}

void GhHistogram::RemoveRect(const Rect& r) {
  ArraySink sink{&c_, &o_, &h_, &v_, -1.0};
  ForEachGhContribution(grid_, variant_, r, sink);
  if (n_ > 0) --n_;
}

Status GhHistogram::Merge(const GhHistogram& other) {
  if (!grid_.CompatibleWith(other.grid_)) {
    return Status::InvalidArgument(
        "cannot merge GH histograms built on different grids");
  }
  if (variant_ != other.variant_) {
    return Status::InvalidArgument(
        "cannot merge GH histograms of different variants");
  }
  for (size_t i = 0; i < c_.size(); ++i) {
    c_[i] += other.c_[i];
    o_[i] += other.o_[i];
    h_[i] += other.h_[i];
    v_[i] += other.v_[i];
  }
  n_ += other.n_;
  return Status::OK();
}

Result<GhHistogram> GhHistogram::Build(const Dataset& ds, const Rect& extent,
                                       int level, GhVariant variant,
                                       int threads) {
  SJSEL_TRACE_SPAN("gh.build", "dataset=%s rects=%zu level=%d threads=%d",
                   ds.name().c_str(), ds.size(), level, threads);
  SJSEL_METRIC_INC("hist.gh.builds");
  SJSEL_METRIC_SCOPED_LATENCY("hist.gh.build_us");
  auto hist_result = CreateEmpty(extent, level, variant);
  if (!hist_result.ok()) return hist_result.status();
  GhHistogram hist = std::move(hist_result).value();
  hist.name_ = ds.name();
  const int64_t n = static_cast<int64_t>(ds.size());

  // Both build paths run over the SoA layout so the per-chunk geometry
  // (cell ranges, single-cell clipping) goes through the batch kernels;
  // the accumulation stays scalar and in dataset order, which is what
  // keeps Build bit-identical to an AddRect loop.
  const SoaDataset soa = SoaDataset::FromDataset(ds);

  if (threads <= 1 || n <= kBuildChunk) {
    GhBatchScratch scratch;
    ArraySink sink{&hist.c_, &hist.o_, &hist.h_, &hist.v_, +1.0};
    for (int64_t begin = 0; begin < n; begin += kBuildChunk) {
      const int64_t end = std::min(n, begin + kBuildChunk);
      GhContributionBatch(hist.grid_, variant,
                          soa.Slice(static_cast<size_t>(begin),
                                    static_cast<size_t>(end)),
                          &scratch, sink);
    }
    hist.n_ = static_cast<uint64_t>(n);
    return hist;
  }

  // Parallel phase: workers record each chunk's contributions (all the
  // clipping / cell-range geometry, batched through the kernels) without
  // touching shared state.
  const int64_t blocks = ParallelForNumBlocks(n, kBuildChunk);
  std::vector<std::vector<GhContribution>> recorded(
      static_cast<size_t>(blocks));
  ThreadPool pool(threads);
  ParallelFor(&pool, n, kBuildChunk,
              [&](int64_t block, int64_t begin, int64_t end) {
                auto& out = recorded[static_cast<size_t>(block)];
                // 4 corners + typically a handful of area/edge cells.
                out.reserve(static_cast<size_t>(end - begin) * 12);
                RecordingSink sink{&out};
                GhBatchScratch scratch;
                GhContributionBatch(hist.grid_, variant,
                                    soa.Slice(static_cast<size_t>(begin),
                                              static_cast<size_t>(end)),
                                    &scratch, sink);
              });

  // Serial replay in chunk order = dataset order: the per-cell addition
  // sequence matches the serial build exactly, so the histogram is
  // bit-identical for any thread count.
  for (const auto& chunk : recorded) {
    for (const GhContribution& rec : chunk) {
      switch (rec.stat) {
        case 0: hist.c_[rec.idx] += rec.amount; break;
        case 1: hist.o_[rec.idx] += rec.amount; break;
        case 2: hist.h_[rec.idx] += rec.amount; break;
        default: hist.v_[rec.idx] += rec.amount; break;
      }
    }
  }
  hist.n_ = static_cast<uint64_t>(n);
  return hist;
}

namespace {

Status CheckGhCombinable(const GhHistogram& a, const GhHistogram& b) {
  if (!a.grid().CompatibleWith(b.grid())) {
    return Status::InvalidArgument(
        "GH histograms built on different grids cannot be combined");
  }
  if (a.variant() != b.variant()) {
    return Status::InvalidArgument(
        "GH histograms of different variants cannot be combined");
  }
  return Status::OK();
}

// The four Equation 5 cross terms of one cell. Both the scalar estimate
// and GhPerCellContributions go through this helper, so the per-cell
// breakdown reproduces the scalar sum bit for bit regardless of how the
// compiler contracts the multiplies.
inline GhCellContribution GhCellTerms(const GhHistogram& a,
                                      const GhHistogram& b, size_t i) {
  GhCellContribution t;
  t.c1_o2 = a.c()[i] * b.o()[i];
  t.o1_c2 = a.o()[i] * b.c()[i];
  t.h1_v2 = a.h()[i] * b.v()[i];
  t.v1_h2 = a.v()[i] * b.h()[i];
  return t;
}

}  // namespace

Result<double> EstimateGhIntersectionPoints(const GhHistogram& a,
                                            const GhHistogram& b) {
  if (const Status st = CheckGhCombinable(a, b); !st.ok()) return st;
  double ip = 0.0;
  const size_t n = a.c().size();
  for (size_t i = 0; i < n; ++i) {
    ip += GhCellTerms(a, b, i).intersection_points();
  }
  return ip;
}

Result<std::vector<GhCellContribution>> GhPerCellContributions(
    const GhHistogram& a, const GhHistogram& b) {
  if (const Status st = CheckGhCombinable(a, b); !st.ok()) return st;
  const size_t n = a.c().size();
  std::vector<GhCellContribution> cells;
  cells.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    cells.push_back(GhCellTerms(a, b, i));
  }
  return cells;
}

Result<double> EstimateGhJoinPairs(const GhHistogram& a,
                                   const GhHistogram& b) {
  double ip = 0.0;
  SJSEL_ASSIGN_OR_RETURN(ip, EstimateGhIntersectionPoints(a, b));
  return ip / 4.0;
}

Result<double> EstimateGhJoinSelectivity(const GhHistogram& a,
                                         const GhHistogram& b) {
  if (a.dataset_size() == 0 || b.dataset_size() == 0) {
    return Status::FailedPrecondition(
        "selectivity undefined for empty datasets");
  }
  double pairs = 0.0;
  SJSEL_ASSIGN_OR_RETURN(pairs, EstimateGhJoinPairs(a, b));
  return pairs / (static_cast<double>(a.dataset_size()) *
                  static_cast<double>(b.dataset_size()));
}

namespace {

// Recovers the Equation 1 aggregates (coverage, average width/height) of a
// dataset from its revised GH histogram alone: Σo cells sum to the
// coverage ratio of the whole extent, and the edge-ratio sums give back
// twice the total widths/heights.
struct Eq1Aggregates {
  double n = 0.0;
  double coverage = 0.0;
  double avg_w = 0.0;
  double avg_h = 0.0;
};

Eq1Aggregates AggregatesFrom(const GhHistogram& hist) {
  Eq1Aggregates agg;
  agg.n = static_cast<double>(hist.dataset_size());
  double sum_o = 0.0;
  double sum_h = 0.0;
  double sum_v = 0.0;
  for (size_t i = 0; i < hist.o().size(); ++i) {
    sum_o += hist.o()[i];
    sum_h += hist.h()[i];
    sum_v += hist.v()[i];
  }
  const Grid& grid = hist.grid();
  const double cells = static_cast<double>(grid.num_cells());
  agg.coverage = sum_o / cells;
  if (agg.n > 0.0) {
    agg.avg_w = sum_h * grid.cell_width() / (2.0 * agg.n);
    agg.avg_h = sum_v * grid.cell_height() / (2.0 * agg.n);
  }
  return agg;
}

}  // namespace

Result<double> EstimateGhSpatialCorrelation(const GhHistogram& a,
                                            const GhHistogram& b) {
  if (a.variant() != GhVariant::kRevised ||
      b.variant() != GhVariant::kRevised) {
    return Status::InvalidArgument(
        "spatial correlation needs revised-variant GH histograms");
  }
  if (a.dataset_size() == 0 || b.dataset_size() == 0) {
    return Status::FailedPrecondition(
        "correlation undefined for empty datasets");
  }
  double observed_sel = 0.0;
  SJSEL_ASSIGN_OR_RETURN(observed_sel, EstimateGhJoinSelectivity(a, b));

  const Eq1Aggregates sa = AggregatesFrom(a);
  const Eq1Aggregates sb = AggregatesFrom(b);
  const double area = a.grid().extent().area();
  if (area <= 0.0) return Status::Internal("degenerate extent");
  const double independent_pairs =
      sa.n * sb.coverage + sa.coverage * sb.n +
      sa.n * sb.n * (sa.avg_w * sb.avg_h + sb.avg_w * sa.avg_h) / area;
  const double independent_sel = independent_pairs / (sa.n * sb.n);
  if (independent_sel <= 0.0) {
    return Status::FailedPrecondition(
        "independence baseline is zero (degenerate data)");
  }
  return observed_sel / independent_sel;
}

Result<double> EstimateGhSelfJoinPairs(const GhHistogram& hist) {
  double ordered = 0.0;
  SJSEL_ASSIGN_OR_RETURN(ordered, EstimateGhJoinPairs(hist, hist));
  const double distinct =
      (ordered - static_cast<double>(hist.dataset_size())) / 2.0;
  return distinct < 0.0 ? 0.0 : distinct;
}

Result<double> EstimateGhJoinPairsInWindow(const GhHistogram& a,
                                           const GhHistogram& b,
                                           const Rect& window) {
  if (!a.grid().CompatibleWith(b.grid())) {
    return Status::InvalidArgument(
        "GH histograms built on different grids cannot be combined");
  }
  if (a.variant() != b.variant()) {
    return Status::InvalidArgument(
        "GH histograms of different variants cannot be combined");
  }
  const Grid& grid = a.grid();
  const Rect clipped = window.Intersection(grid.extent());
  if (clipped.IsEmpty()) return 0.0;

  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
  grid.CellRange(clipped, &x0, &y0, &x1, &y1);
  const double cell_area = grid.cell_area();
  double ip = 0.0;
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      const Rect cell = grid.CellRect(cx, cy);
      const Rect overlap = cell.Intersection(clipped);
      if (overlap.IsEmpty()) continue;
      // Boundary cells contribute in proportion to the overlapped area —
      // the same within-cell uniformity assumption GH already makes.
      const double weight = overlap.area() / cell_area;
      if (weight <= 0.0) continue;
      const int64_t i = grid.Flat(cx, cy);
      ip += weight * (a.c()[i] * b.o()[i] + a.o()[i] * b.c()[i] +
                      a.h()[i] * b.v()[i] + a.v()[i] * b.h()[i]);
    }
  }
  return ip / 4.0;
}

namespace {

// Sink that combines one query rectangle's on-the-fly GH parameters with a
// prebuilt histogram's cell statistics — evaluating Equation 5 for the
// join of `hist` with the singleton dataset {query} without materializing
// a second histogram.
struct QueryCombineSink {
  const GhHistogram* hist;
  double ip = 0.0;

  void Corner(int64_t idx, double amount) {
    ip += amount * hist->o()[idx];
  }
  void Area(int64_t idx, double amount) {
    ip += amount * hist->c()[idx];
  }
  void Horizontal(int64_t idx, double amount) {
    ip += amount * hist->v()[idx];
  }
  void Vertical(int64_t idx, double amount) {
    ip += amount * hist->h()[idx];
  }
};

}  // namespace

double EstimateGhRangeCount(const GhHistogram& hist, const Rect& query) {
  QueryCombineSink sink{&hist, 0.0};
  ForEachGhContribution(hist.grid(), hist.variant(), query, sink);
  return sink.ip / 4.0;
}

uint64_t GhHistogram::NonEmptyCells() const {
  uint64_t count = 0;
  for (size_t i = 0; i < c_.size(); ++i) {
    if (c_[i] != 0.0 || o_[i] != 0.0 || h_[i] != 0.0 || v_[i] != 0.0) {
      ++count;
    }
  }
  return count;
}

uint64_t GhHistogram::FileBytes(FileFormat format) const {
  // Header: magic, version, variant, format, level, 4 extent doubles, n,
  // name; trailer: CRC.
  const uint64_t header = 4 + 4 + 1 + 1 + 4 + 32 + 8 + 4 + name_.size();
  const uint64_t trailer = 4;
  if (format == FileFormat::kDense) {
    return header + 4 * (8 + c_.size() * 8) + trailer;
  }
  return header + 8 + NonEmptyCells() * (8 + 4 * 8) + trailer;
}

Status GhHistogram::Save(const std::string& path, FileFormat format) const {
  BinaryWriter w;
  w.PutU32(kGhMagic);
  w.PutU32(kGhVersion);
  w.PutU8(variant_ == GhVariant::kBasic ? 1 : 0);
  w.PutU8(format == FileFormat::kSparse ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(grid_.level()));
  w.PutDouble(grid_.extent().min_x);
  w.PutDouble(grid_.extent().min_y);
  w.PutDouble(grid_.extent().max_x);
  w.PutDouble(grid_.extent().max_y);
  w.PutU64(n_);
  w.PutString(name_);
  if (format == FileFormat::kDense) {
    w.PutDoubleVector(c_);
    w.PutDoubleVector(o_);
    w.PutDoubleVector(h_);
    w.PutDoubleVector(v_);
  } else {
    w.PutU64(NonEmptyCells());
    for (size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] == 0.0 && o_[i] == 0.0 && h_[i] == 0.0 && v_[i] == 0.0) {
        continue;
      }
      w.PutU64(i);
      w.PutDouble(c_[i]);
      w.PutDouble(o_[i]);
      w.PutDouble(h_[i]);
      w.PutDouble(v_[i]);
    }
  }
  const uint32_t crc = w.Crc32();
  BinaryWriter trailer;
  trailer.PutU32(crc);
  return WriteFile(path, w.buffer() + trailer.buffer());
}

Result<GhHistogram> GhHistogram::Load(const std::string& path) {
  std::string data;
  SJSEL_ASSIGN_OR_RETURN(data, ReadFile(path));
  if (data.size() < sizeof(uint32_t)) {
    return Status::Corruption("GH file too short: " + path);
  }
  const size_t body_size = data.size() - sizeof(uint32_t);
  BinaryReader r(std::move(data));
  uint32_t body_crc = 0;
  SJSEL_ASSIGN_OR_RETURN(body_crc, r.Crc32Prefix(body_size));

  uint32_t magic = 0;
  SJSEL_ASSIGN_OR_RETURN(magic, r.GetU32());
  if (magic != kGhMagic) return Status::Corruption("bad GH magic in " + path);
  uint32_t version = 0;
  SJSEL_ASSIGN_OR_RETURN(version, r.GetU32());
  if (version != kGhVersion) {
    return Status::Corruption("unsupported GH version");
  }
  uint8_t variant_byte = 0;
  SJSEL_ASSIGN_OR_RETURN(variant_byte, r.GetU8());
  uint8_t format_byte = 0;
  SJSEL_ASSIGN_OR_RETURN(format_byte, r.GetU8());
  uint32_t level = 0;
  SJSEL_ASSIGN_OR_RETURN(level, r.GetU32());
  Rect extent;
  SJSEL_ASSIGN_OR_RETURN(extent.min_x, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(extent.min_y, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(extent.max_x, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(extent.max_y, r.GetDouble());

  auto grid_result = Grid::Create(extent, static_cast<int>(level));
  if (!grid_result.ok()) return grid_result.status();
  GhHistogram hist(std::move(grid_result).value(),
                   variant_byte == 1 ? GhVariant::kBasic
                                     : GhVariant::kRevised);

  SJSEL_ASSIGN_OR_RETURN(hist.n_, r.GetU64());
  SJSEL_ASSIGN_OR_RETURN(hist.name_, r.GetString());
  const size_t cells = static_cast<size_t>(hist.grid_.num_cells());
  if (format_byte == 0) {
    SJSEL_ASSIGN_OR_RETURN(hist.c_, r.GetDoubleVector());
    SJSEL_ASSIGN_OR_RETURN(hist.o_, r.GetDoubleVector());
    SJSEL_ASSIGN_OR_RETURN(hist.h_, r.GetDoubleVector());
    SJSEL_ASSIGN_OR_RETURN(hist.v_, r.GetDoubleVector());
    if (hist.c_.size() != cells || hist.o_.size() != cells ||
        hist.h_.size() != cells || hist.v_.size() != cells) {
      return Status::Corruption("GH cell payload size mismatch in " + path);
    }
  } else {
    hist.c_.assign(cells, 0.0);
    hist.o_.assign(cells, 0.0);
    hist.h_.assign(cells, 0.0);
    hist.v_.assign(cells, 0.0);
    uint64_t records = 0;
    SJSEL_ASSIGN_OR_RETURN(records, r.GetU64());
    for (uint64_t rec = 0; rec < records; ++rec) {
      uint64_t idx = 0;
      SJSEL_ASSIGN_OR_RETURN(idx, r.GetU64());
      if (idx >= cells) {
        return Status::Corruption("GH sparse record index out of range in " +
                                  path);
      }
      SJSEL_ASSIGN_OR_RETURN(hist.c_[idx], r.GetDouble());
      SJSEL_ASSIGN_OR_RETURN(hist.o_[idx], r.GetDouble());
      SJSEL_ASSIGN_OR_RETURN(hist.h_[idx], r.GetDouble());
      SJSEL_ASSIGN_OR_RETURN(hist.v_[idx], r.GetDouble());
    }
  }
  if (r.position() != body_size) {
    return Status::Corruption("trailing garbage in GH file " + path);
  }
  uint32_t stored_crc = 0;
  SJSEL_ASSIGN_OR_RETURN(stored_crc, r.GetU32());
  if (stored_crc != body_crc) {
    return Status::Corruption("GH CRC mismatch in " + path);
  }
  return hist;
}

}  // namespace sjsel
