#ifndef SJSEL_CORE_GH_HISTOGRAM_H_
#define SJSEL_CORE_GH_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/grid.h"
#include "geom/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace sjsel {

/// Which GH formulation a histogram stores (paper Section 3.2).
enum class GhVariant {
  /// Section 3.2.2 — fractional per-cell statistics (C, O, H, V as counts /
  /// area ratios / length ratios). This is the paper's headline scheme.
  kRevised,
  /// Section 3.2.1 — plain integer counts (C, I, H, V). Suffers the false /
  /// multiple counting of Figure 4; kept for the ablation benchmark.
  kBasic,
};

/// The Geometric Histogram: per grid cell, enough information to estimate
/// the number of *intersection points* contributed by this dataset when
/// joined with another GH histogram over the same grid.
///
/// Revised variant, for cell (i, j) of area CW x CH:
///  - c: number of MBR corner points falling in the cell,
///  - o: sum over MBRs intersecting the cell of area(MBR ∩ cell) / (CW*CH),
///  - h: sum over horizontal MBR edges of len(edge ∩ cell) / CW,
///  - v: sum over vertical MBR edges of len(edge ∩ cell) / CH.
///
/// Basic variant: o holds the MBR-intersects-cell count I, and h / v hold
/// plain edge-through-cell counts.
///
/// Degenerate MBRs are handled naturally: a point contributes 4 coincident
/// corners and nothing else; a horizontal segment contributes 2 coincident
/// horizontal edges — exactly what keeps "intersection points per pair = 4"
/// true for degenerate intersections.
///
/// Thread-safety: GhHistogram is a value type with no hidden shared state.
/// Concurrent const access (estimates, accessors, Save) is safe; AddRect /
/// RemoveRect / Merge are mutations and need external synchronization. The
/// multi-threaded Build path never shares a histogram between workers — it
/// records per-chunk contribution lists and replays them on the calling
/// thread (see docs/ARCHITECTURE.md, "Threading model").
class GhHistogram {
 public:
  /// Builds the histogram of `ds` on a `level`-deep grid over `extent`.
  /// Every MBR should lie within `extent` (out-of-extent geometry is
  /// clamped by cell ownership and clipped contributions).
  ///
  /// `threads` > 1 parallelizes the per-MBR geometry (cell ranges, area /
  /// edge clipping) over fixed-size chunks of the input while the final
  /// cell accumulation replays every contribution in dataset order on the
  /// calling thread — the result is bit-identical to the serial build for
  /// any thread count (asserted by tests/par_determinism_test.cc).
  /// `threads` <= 1 is the serial path; 0 and negative values mean serial
  /// too, never "auto".
  static Result<GhHistogram> Build(const Dataset& ds, const Rect& extent,
                                   int level,
                                   GhVariant variant = GhVariant::kRevised,
                                   int threads = 1);

  /// Creates an empty histogram (no data) for incremental population with
  /// AddRect.
  static Result<GhHistogram> CreateEmpty(
      const Rect& extent, int level,
      GhVariant variant = GhVariant::kRevised);

  /// Incremental maintenance: folds one MBR into the histogram. All GH
  /// cell statistics are plain sums, so insertions commute with Build —
  /// CreateEmpty + AddRect over a dataset is bit-identical to Build.
  void AddRect(const Rect& r);

  /// Incremental maintenance: removes one previously added MBR. The caller
  /// must pass an MBR that is actually in the underlying dataset;
  /// removing a never-added rect silently corrupts the statistics (the
  /// histogram keeps no per-object record, exactly like the paper's file
  /// format).
  void RemoveRect(const Rect& r);

  /// Merges another histogram of the same grid/variant into this one —
  /// the histogram of the union (bag semantics) of the two datasets.
  /// GH statistics are additive, so this is exact, enabling per-partition
  /// builds that are folded together afterwards.
  Status Merge(const GhHistogram& other);

  const Grid& grid() const { return grid_; }
  GhVariant variant() const { return variant_; }
  uint64_t dataset_size() const { return n_; }
  const std::string& dataset_name() const { return name_; }

  const std::vector<double>& c() const { return c_; }
  const std::vector<double>& o() const { return o_; }
  const std::vector<double>& h() const { return h_; }
  const std::vector<double>& v() const { return v_; }

  /// Histogram-file footprint: 4 doubles per cell (the paper's space-cost
  /// numerator).
  uint64_t NominalBytes() const { return grid_.num_cells() * 4 * 8; }

  /// On-disk layout of the cell payload. At fine gridding levels most
  /// cells of a skewed dataset are empty (the paper notes the histogram
  /// file outgrowing memory at high levels); the sparse layout stores only
  /// non-empty cells as (index, c, o, h, v) records.
  enum class FileFormat { kDense, kSparse };

  /// Writes the histogram file (magic + header + cell payload + CRC).
  Status Save(const std::string& path,
              FileFormat format = FileFormat::kDense) const;

  /// Number of cells with any non-zero statistic (the sparse-file record
  /// count).
  uint64_t NonEmptyCells() const;

  /// Bytes a Save() in the given format produces for this histogram.
  uint64_t FileBytes(FileFormat format) const;

  /// Loads and validates a histogram file written by Save().
  static Result<GhHistogram> Load(const std::string& path);

 private:
  GhHistogram(Grid grid, GhVariant variant)
      : grid_(grid), variant_(variant) {}

  Grid grid_;
  GhVariant variant_;
  uint64_t n_ = 0;
  std::string name_;
  std::vector<double> c_;
  std::vector<double> o_;
  std::vector<double> h_;
  std::vector<double> v_;
};

/// Estimated number of intersection points between the datasets behind `a`
/// and `b` (Equation 5 / Equation 4 of the paper). The histograms must have
/// compatible grids and the same variant.
Result<double> EstimateGhIntersectionPoints(const GhHistogram& a,
                                            const GhHistogram& b);

/// One cell's share of the Equation 5 estimate: the four cross terms
/// C1·O2, O1·C2, H1·V2, V1·H2 evaluated on that cell. The explain report
/// (src/obs/explain.h) renders these per cell.
struct GhCellContribution {
  double c1_o2 = 0.0;
  double o1_c2 = 0.0;
  double h1_v2 = 0.0;
  double v1_h2 = 0.0;

  /// Intersection points this cell contributes. The association mirrors
  /// the accumulation in EstimateGhIntersectionPoints exactly (both call
  /// the same per-cell helper), so summing these in flat-index order
  /// reproduces the scalar estimate bit for bit.
  double intersection_points() const {
    return c1_o2 + o1_c2 + h1_v2 + v1_h2;
  }
  /// Join pairs attributed to the cell (points / 4 — exact in binary FP).
  double pairs() const { return intersection_points() / 4.0; }
};

/// Per-cell breakdown of EstimateGhIntersectionPoints: element i is cell
/// i's share (flat row-major index). Same compatibility requirements as
/// the scalar estimate.
Result<std::vector<GhCellContribution>> GhPerCellContributions(
    const GhHistogram& a, const GhHistogram& b);

/// Window-restricted estimate: join pairs whose intersection falls inside
/// `window` — the paper's "approximate number of bridges in a given spatial
/// extent" query. Sums per-cell contributions only over cells overlapping
/// the window, weighting boundary cells by their overlapped area fraction.
Result<double> EstimateGhJoinPairsInWindow(const GhHistogram& a,
                                           const GhHistogram& b,
                                           const Rect& window);

/// Spatial correlation of the two datasets (the paper's Section 1 third
/// use-case, after Faloutsos et al. [8]): the ratio of the GH-estimated
/// join selectivity to the selectivity the uniformity model (Equation 1,
/// evaluated from the same histograms' aggregate statistics) would predict
/// for independently placed data.
///   > 1  the datasets co-locate (joins are denser than independence),
///   ~ 1  spatially independent,
///   < 1  the datasets avoid each other.
Result<double> EstimateGhSpatialCorrelation(const GhHistogram& a,
                                            const GhHistogram& b);

/// Estimated self-join size of the histogram's own dataset: distinct
/// unordered intersecting pairs, excluding each rectangle's trivial
/// intersection with itself — the quantity of the fractal self-join work
/// the paper cites [6]. Computed as (ordered estimate - N) / 2, clamped at
/// 0.
Result<double> EstimateGhSelfJoinPairs(const GhHistogram& hist);

/// Estimated number of MBRs of the histogram's dataset that intersect
/// `query` — range-query selectivity from the same histogram file. The
/// query window is treated as a singleton GH dataset; only the cells it
/// overlaps are visited, so this is O(cells under the query).
double EstimateGhRangeCount(const GhHistogram& hist, const Rect& query);

/// Estimated join result size: intersection points / 4.
Result<double> EstimateGhJoinPairs(const GhHistogram& a, const GhHistogram& b);

/// Estimated join selectivity: pairs / (N1 * N2).
Result<double> EstimateGhJoinSelectivity(const GhHistogram& a,
                                         const GhHistogram& b);

}  // namespace sjsel

#endif  // SJSEL_CORE_GH_HISTOGRAM_H_
