#ifndef SJSEL_CORE_MINSKEW_H_
#define SJSEL_CORE_MINSKEW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace sjsel {

/// A MinSkew spatial histogram (Acharya, Poosala & Ramaswamy, SIGMOD'99) —
/// the era's main alternative to grid histograms, included as an extension
/// so GH/PH can be compared against a non-uniform-bucket competitor at
/// equal space budget.
///
/// The spatial extent is recursively partitioned into B axis-aligned
/// buckets by greedily choosing, at each step, the bucket/axis/position
/// split that most reduces *spatial skew* (the variance of a fine density
/// grid within the bucket). Each bucket then stores the count and average
/// extents of the objects whose centers fall inside it; estimation treats
/// each bucket as a uniform mini-dataset over its region.
class MinSkewHistogram {
 public:
  /// One bucket of the partition.
  struct Bucket {
    Rect rect;           ///< spatial region (grid-aligned)
    double n = 0.0;      ///< objects centered in the region
    double avg_w = 0.0;  ///< average object width
    double avg_h = 0.0;  ///< average object height
  };

  /// Builds a histogram of `ds` with at most `num_buckets` buckets.
  /// `grid_level` sets the resolution of the density grid driving the
  /// split search (2^level per axis; default 64x64).
  static Result<MinSkewHistogram> Build(const Dataset& ds, const Rect& extent,
                                        int num_buckets, int grid_level = 6);

  const std::vector<Bucket>& buckets() const { return buckets_; }
  const Rect& extent() const { return extent_; }
  uint64_t dataset_size() const { return n_; }
  const std::string& dataset_name() const { return name_; }

  /// Storage footprint: 7 doubles per bucket.
  uint64_t NominalBytes() const { return buckets_.size() * 7 * 8; }

  /// Histogram file with magic/version/CRC, like the GH/PH files.
  Status Save(const std::string& path) const;
  static Result<MinSkewHistogram> Load(const std::string& path);

 private:
  Rect extent_;
  uint64_t n_ = 0;
  std::string name_;
  std::vector<Bucket> buckets_;
};

/// Expected join cardinality between two MinSkew histograms over the same
/// extent: Σ over bucket pairs of n1*n2*P(intersect), where P factors into
/// per-axis probabilities of two uniform centers landing within the
/// half-extent sum of each other.
Result<double> EstimateMinSkewJoinPairs(const MinSkewHistogram& a,
                                        const MinSkewHistogram& b);

/// Expected join selectivity: pairs / (N1 * N2).
Result<double> EstimateMinSkewJoinSelectivity(const MinSkewHistogram& a,
                                              const MinSkewHistogram& b);

/// Expected number of objects intersecting `query`.
double EstimateMinSkewRangeCount(const MinSkewHistogram& hist,
                                 const Rect& query);

namespace internal {

/// P(|X - Y| <= t) for X uniform on [a1, b1], Y uniform on [a2, b2]
/// (degenerate intervals handled as point masses). Exposed for testing.
double ProbWithin(double a1, double b1, double a2, double b2, double t);

}  // namespace internal

}  // namespace sjsel

#endif  // SJSEL_CORE_MINSKEW_H_
