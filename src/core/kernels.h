#ifndef SJSEL_CORE_KERNELS_H_
#define SJSEL_CORE_KERNELS_H_

// Batch geometry kernels: the branch-free, data-parallel inner loops behind
// the histogram builds (GH/PH clipping), the partition-sweep join filters
// (PBSM, plane sweep) and the sampling estimator's sample join.
//
// Layering: despite living in src/core/, this module depends only on
// src/geom/ and src/util/ — it sits directly above the geometry layer in
// the module map (docs/ARCHITECTURE.md) so the join algorithms in
// src/join/ may use it too. It mirrors the grid geometry it needs in a
// plain GridGeom POD instead of including core/grid.h.
//
// Dispatch contract (see docs/ARCHITECTURE.md, "Data-level parallelism"):
//  - Every kernel has a portable scalar implementation and, on x86-64, an
//    AVX2 implementation selected once at runtime (cpuid probe, cached).
//  - All backends produce BIT-IDENTICAL results: the same IEEE-754
//    operations in the same per-lane order as the scalar code. Vector
//    min/max operand order is chosen to reproduce std::min/std::max tie
//    semantics exactly (minpd/maxpd return the SECOND operand on ties, so
//    arguments are swapped), and no FMA contraction is used.
//  - SetKernelBackendForTesting forces a backend so the equivalence tests
//    can diff scalar vs SIMD lane by lane.

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "geom/rect.h"
#include "geom/soa_dataset.h"

namespace sjsel {

/// Which implementation the batch kernels run with.
enum class KernelBackend {
  kScalar,  ///< portable, auto-vectorizable C++
  kAvx2,    ///< hand-vectorized 4-lane double kernels (x86-64 with AVX2)
};

/// The best backend this CPU supports (probed once, cached).
KernelBackend DetectKernelBackend();

/// The backend kernels currently dispatch to: the testing override if one
/// is set, otherwise DetectKernelBackend().
KernelBackend ActiveKernelBackend();

/// Forces every kernel onto `backend` until cleared. Testing hook only —
/// forcing kAvx2 on a CPU without AVX2 is the caller's crash to keep.
void SetKernelBackendForTesting(KernelBackend backend);

/// Restores runtime detection.
void ClearKernelBackendOverrideForTesting();

/// Short lowercase name ("scalar", "avx2") for logs and bench JSON.
const char* KernelBackendName(KernelBackend backend);

/// Plain-old-data mirror of the uniform-grid geometry the cell kernels
/// need (core/Grid exposes the same values; callers copy them over so this
/// header does not depend on core/grid.h).
struct GridGeom {
  double min_x = 0.0;   ///< extent origin
  double min_y = 0.0;
  double cell_w = 0.0;  ///< cell width (extent width / per_axis)
  double cell_h = 0.0;
  int per_axis = 1;     ///< cells per axis
};

/// Length of [lo, hi] ∩ [cell_lo, cell_hi], never negative. The one
/// clipping primitive both histogram schemes are built on (previously
/// duplicated file-locally in gh_histogram.cc / ph_histogram.cc).
inline double OverlapLen(double lo, double hi, double cell_lo,
                         double cell_hi) {
  return std::max(0.0, std::min(hi, cell_hi) - std::max(lo, cell_lo));
}

/// Batch cell-range kernel: for every rect i of `rects` computes the
/// column/row span of overlapped grid cells,
///   x0[i] = clamp(floor((min_x[i] - g.min_x) / g.cell_w), 0, per_axis-1)
/// and likewise y0/x1/y1 — lane-for-lane identical to Grid::CellRange.
/// Output arrays must hold rects.size entries.
void CellRangeBatch(const GridGeom& g, const SoaSlice& rects, int32_t* x0,
                    int32_t* y0, int32_t* x1, int32_t* y1);

/// Batch GH revised-variant terms for single-cell rects: with (x0[i],
/// y0[i]) the cell from CellRangeBatch, computes the clipped fractions
///   out_area[i] = (w * h) / (g.cell_w * g.cell_h)
///   out_h[i]    = w / g.cell_w
///   out_v[i]    = h / g.cell_h
/// where w/h are the OverlapLen of the rect against that cell's rect —
/// exactly the amounts the scalar GH accumulation books for a rect whose
/// cell range is one cell. Values for multi-cell rects are computed too
/// (for the x0/y0 cell) but are only meaningful for single-cell rects.
void GhSingleCellTermsBatch(const GridGeom& g, const SoaSlice& rects,
                            const int32_t* x0, const int32_t* y0,
                            double* out_area, double* out_h, double* out_v);

/// Batch PH contained-population terms: out_w[i] = width, out_h[i] =
/// height, out_area[i] = width * height — the amounts PH books for an MBR
/// contained in one cell (and for every cell under the naive variant).
void PhContainedTermsBatch(const SoaSlice& rects, double* out_area,
                           double* out_w, double* out_h);

/// Join-filter kernel: bit k of the result is set iff `probe` intersects
/// rect begin + k (closed-interval convention, identical to
/// Rect::Intersects). `n` must be <= 64.
uint64_t IntersectMask64(const SoaSlice& rects, std::size_t begin,
                         std::size_t n, const Rect& probe);

/// Length of the prefix of keys[begin, end) with keys[k] <= bound — the
/// forward-scan run length of a min_x-sorted sweep. Scans sequentially and
/// stops at the first violating key, so on sorted input it equals the
/// number of keys <= bound.
std::size_t SortedPrefixLeq(const double* keys, std::size_t begin,
                            std::size_t end, double bound);

}  // namespace sjsel

#endif  // SJSEL_CORE_KERNELS_H_
