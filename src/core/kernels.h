#ifndef SJSEL_CORE_KERNELS_H_
#define SJSEL_CORE_KERNELS_H_

// Batch geometry kernels: the branch-free, data-parallel inner loops behind
// the histogram builds (GH/PH clipping), the partition-sweep join filters
// (PBSM, plane sweep) and the sampling estimator's sample join.
//
// Layering: despite living in src/core/, this module depends only on
// src/geom/ and src/util/ — it sits directly above the geometry layer in
// the module map (docs/ARCHITECTURE.md) so the join algorithms in
// src/join/ may use it too. It mirrors the grid geometry it needs in a
// plain GridGeom POD instead of including core/grid.h.
//
// Dispatch contract (see docs/ARCHITECTURE.md, "Data-level parallelism"):
//  - Every kernel has a portable scalar implementation and, on x86-64,
//    AVX2 and AVX-512 implementations selected once at runtime (cpuid
//    probe, cached). On aarch64 a NEON backend slot exists behind the same
//    interface (currently a stub that runs the scalar loops).
//  - All backends produce BIT-IDENTICAL results: the same IEEE-754
//    operations in the same per-lane order as the scalar code. Vector
//    min/max operand order is chosen to reproduce std::min/std::max tie
//    semantics exactly (minpd/maxpd return the SECOND operand on ties, so
//    arguments are swapped), and no FMA contraction is used.
//  - The dispatch choice can be forced three ways, in precedence order:
//    SetKernelBackendOverride (programmatic; the CLI's --kernel-backend
//    flag lands here), the SJSEL_KERNEL_BACKEND environment variable, and
//    runtime detection. CI uses the env knob to force-run every backend
//    through the kernel_equivalence bit-identity contract.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

#include "geom/rect.h"
#include "geom/soa_dataset.h"

namespace sjsel {

/// Which implementation the batch kernels run with.
enum class KernelBackend {
  kScalar,  ///< portable, auto-vectorizable C++
  kAvx2,    ///< hand-vectorized 4-lane double kernels (x86-64 with AVX2)
  kAvx512,  ///< hand-vectorized 8-lane double kernels (x86-64 with AVX-512F)
  kNeon,    ///< aarch64 slot; currently a stub that runs the scalar loops
};

/// The best backend this CPU supports (probed once, cached).
KernelBackend DetectKernelBackend();

/// True if `backend` can actually run on this machine (kScalar always;
/// kAvx2/kAvx512 need the cpuid feature; kNeon needs aarch64).
bool KernelBackendAvailable(KernelBackend backend);

/// The backend kernels currently dispatch to: the programmatic override if
/// one is set, else a valid SJSEL_KERNEL_BACKEND environment value, else
/// DetectKernelBackend().
KernelBackend ActiveKernelBackend();

/// Forces every kernel onto `backend` until cleared. The caller is
/// responsible for availability — forcing kAvx512 on a CPU without it is
/// the caller's crash to keep (the CLI checks KernelBackendAvailable
/// before calling this).
void SetKernelBackendOverride(KernelBackend backend);

/// Clears the programmatic override, restoring env/runtime detection.
void ClearKernelBackendOverride();

/// Testing aliases for the override pair (the equivalence tests diff
/// scalar vs SIMD lane by lane through these).
void SetKernelBackendForTesting(KernelBackend backend);
void ClearKernelBackendOverrideForTesting();

/// Short lowercase name ("scalar", "avx2", "avx512", "neon") for logs and
/// bench JSON.
const char* KernelBackendName(KernelBackend backend);

/// Parses a backend name as accepted by --kernel-backend /
/// SJSEL_KERNEL_BACKEND. Returns false (and leaves *out alone) for
/// unknown names.
bool ParseKernelBackend(const std::string& name, KernelBackend* out);

/// How the active backend was chosen, for stats/observability surfaces.
struct KernelDispatchInfo {
  KernelBackend active;    ///< what kernels run with right now
  KernelBackend detected;  ///< what runtime detection alone would pick
  /// "override" (SetKernelBackendOverride / --kernel-backend), "env"
  /// (SJSEL_KERNEL_BACKEND), or "detected".
  const char* source;
};

/// The current dispatch decision and where it came from.
KernelDispatchInfo GetKernelDispatchInfo();

/// Plain-old-data mirror of the uniform-grid geometry the cell kernels
/// need (core/Grid exposes the same values; callers copy them over so this
/// header does not depend on core/grid.h).
struct GridGeom {
  double min_x = 0.0;   ///< extent origin
  double min_y = 0.0;
  double cell_w = 0.0;  ///< cell width (extent width / per_axis)
  double cell_h = 0.0;
  int per_axis = 1;     ///< cells per axis
};

/// Length of [lo, hi] ∩ [cell_lo, cell_hi], never negative. The one
/// clipping primitive both histogram schemes are built on (previously
/// duplicated file-locally in gh_histogram.cc / ph_histogram.cc).
inline double OverlapLen(double lo, double hi, double cell_lo,
                         double cell_hi) {
  return std::max(0.0, std::min(hi, cell_hi) - std::max(lo, cell_lo));
}

/// Batch cell-range kernel: for every rect i of `rects` computes the
/// column/row span of overlapped grid cells,
///   x0[i] = clamp(floor((min_x[i] - g.min_x) / g.cell_w), 0, per_axis-1)
/// and likewise y0/x1/y1 — lane-for-lane identical to Grid::CellRange.
/// Output arrays must hold rects.size entries.
void CellRangeBatch(const GridGeom& g, const SoaSlice& rects, int32_t* x0,
                    int32_t* y0, int32_t* x1, int32_t* y1);

/// Batch GH revised-variant terms for single-cell rects: with (x0[i],
/// y0[i]) the cell from CellRangeBatch, computes the clipped fractions
///   out_area[i] = (w * h) / (g.cell_w * g.cell_h)
///   out_h[i]    = w / g.cell_w
///   out_v[i]    = h / g.cell_h
/// where w/h are the OverlapLen of the rect against that cell's rect —
/// exactly the amounts the scalar GH accumulation books for a rect whose
/// cell range is one cell. Values for multi-cell rects are computed too
/// (for the x0/y0 cell) but are only meaningful for single-cell rects.
void GhSingleCellTermsBatch(const GridGeom& g, const SoaSlice& rects,
                            const int32_t* x0, const int32_t* y0,
                            double* out_area, double* out_h, double* out_v);

/// Batch PH contained-population terms: out_w[i] = width, out_h[i] =
/// height, out_area[i] = width * height — the amounts PH books for an MBR
/// contained in one cell (and for every cell under the naive variant).
void PhContainedTermsBatch(const SoaSlice& rects, double* out_area,
                           double* out_w, double* out_h);

/// Batch GH revised-variant terms over (rect, cell) entries with the clip
/// overlaps w[i]/h[i] already computed (the expansion loop of the blocked
/// build produces them scalar — they are min/max arithmetic; the divisions
/// below are what vectorization buys):
///   out_area[i] = (w[i] * h[i]) / (g.cell_w * g.cell_h)
///   out_hf[i]   = w[i] / g.cell_w
///   out_vf[i]   = h[i] / g.cell_h
void GhEntryTermsBatch(const GridGeom& g, std::size_t n, const double* w,
                       const double* h, double* out_area, double* out_hf,
                       double* out_vf);

/// Output arrays of GhRectTermsBatch: the rect's cell range plus every
/// revised-variant amount a rect spanning at most 2x2 cells can book. All
/// cells of such a rect lie in columns {x0, x0+1} and rows {y0, y0+1}, so
/// two column overlaps (w0, w1) and two row overlaps (h0, h1) cover the
/// whole expansion; the kernel emits their clipped fractions
///   aCR    = (wC * hR) / (cell_w * cell_h)   (C, R in {0, 1})
///   hfC    = wC / cell_w
///   vfR    = hR / cell_h
/// For rects spanning more than two columns (rows) the *1 values describe
/// column x0+1 (row y0+1), NOT the last column (row) — callers detect the
/// span from x0..y1 and take a per-cell path for those rects.
struct GhRectTermsOut {
  int32_t* x0;  ///< cell range, identical to CellRangeBatch
  int32_t* y0;
  int32_t* x1;
  int32_t* y1;
  double* a00;  ///< clipped area fraction of cell (x0, y0)
  double* a01;  ///< ... of cell (x0, y0+1)
  double* a10;  ///< ... of cell (x0+1, y0)
  double* a11;  ///< ... of cell (x0+1, y0+1)
  double* hf0;  ///< w0 / cell_w (horizontal-edge fraction, column x0)
  double* hf1;  ///< w1 / cell_w (column x0+1)
  double* vf0;  ///< h0 / cell_h (vertical-edge fraction, row y0)
  double* vf1;  ///< h1 / cell_h (row y0+1)
};

/// Fused GH build kernel over AoS rects (no SoA copy): cell ranges plus
/// the 8 division terms of GhRectTermsOut in one vectorized pass. This is
/// the pass-1 kernel of the serial cache-resident GH build — the scatter
/// pass then books the precomputed amounts rect by rect.
///
/// Precondition (all fused batch kernels): the output arrays must not
/// overlap each other, the input rects, or `g` — the backends hoist the
/// pointers as restrict so stores can overlap the next rect's loads.
void GhRectTermsBatch(const GridGeom& g, const Rect* rects, std::size_t n,
                      const GhRectTermsOut& out);

/// Output arrays of PhRectClipBatch: the rect's cell range plus the raw
/// column/row overlaps of the first two columns/rows (same x0+1 / y0+1
/// caveat as GhRectTermsOut). PH books w, h and w*h directly — there are
/// no divisions — so the kernel stops at the overlaps and the scatter
/// pass forms the products scalar.
struct PhRectClipOut {
  int32_t* x0;
  int32_t* y0;
  int32_t* x1;
  int32_t* y1;
  double* w0;  ///< overlap with column x0
  double* w1;  ///< overlap with column x0+1
  double* h0;  ///< overlap with row y0
  double* h1;  ///< overlap with row y0+1
};

/// Fused PH build kernel over AoS rects: cell ranges plus clip overlaps in
/// one vectorized pass (pass 1 of the serial cache-resident PH build).
void PhRectClipBatch(const GridGeom& g, const Rect* rects, std::size_t n,
                     const PhRectClipOut& out);

/// Join-filter kernel: bit k of the result is set iff `probe` intersects
/// rect begin + k (closed-interval convention, identical to
/// Rect::Intersects). `n` must be <= 64.
uint64_t IntersectMask64(const SoaSlice& rects, std::size_t begin,
                         std::size_t n, const Rect& probe);

/// Length of the prefix of keys[begin, end) with keys[k] <= bound — the
/// forward-scan run length of a min_x-sorted sweep. Scans sequentially and
/// stops at the first violating key, so on sorted input it equals the
/// number of keys <= bound.
std::size_t SortedPrefixLeq(const double* keys, std::size_t begin,
                            std::size_t end, double bound);

}  // namespace sjsel

#endif  // SJSEL_CORE_KERNELS_H_
