#include "core/estimator.h"

#include <cstdio>

#include <algorithm>
#include <cmath>

#include "core/gh_histogram.h"
#include "core/minskew.h"
#include "core/parametric.h"
#include "core/ph_histogram.h"
#include "stats/dataset_stats.h"
#include "util/timer.h"

namespace sjsel {
namespace {

// Joint extent both per-dataset structures must share for a join estimate.
Rect JointExtent(const Dataset& a, const Dataset& b) {
  Rect extent = a.ComputeExtent();
  extent.Extend(b.ComputeExtent());
  return extent;
}

class GhEstimator : public SelectivityEstimator {
 public:
  explicit GhEstimator(int level) : level_(level) {}

  std::string Name() const override {
    return "GH(level=" + std::to_string(level_) + ")";
  }

  Result<EstimateOutcome> Estimate(const Dataset& a,
                                   const Dataset& b) override {
    EstimateOutcome out;
    const Rect extent = JointExtent(a, b);
    Timer timer;
    auto ha = GhHistogram::Build(a, extent, level_);
    if (!ha.ok()) return ha.status();
    auto hb = GhHistogram::Build(b, extent, level_);
    if (!hb.ok()) return hb.status();
    out.prepare_seconds = timer.ElapsedSeconds();

    timer.Reset();
    SJSEL_ASSIGN_OR_RETURN(out.estimated_pairs,
                           EstimateGhJoinPairs(*ha, *hb));
    out.estimate_seconds = timer.ElapsedSeconds();
    out.selectivity = out.estimated_pairs / (static_cast<double>(a.size()) *
                                             static_cast<double>(b.size()));
    return out;
  }

 private:
  int level_;
};

class PhEstimator : public SelectivityEstimator {
 public:
  explicit PhEstimator(int level) : level_(level) {}

  std::string Name() const override {
    return "PH(level=" + std::to_string(level_) + ")";
  }

  Result<EstimateOutcome> Estimate(const Dataset& a,
                                   const Dataset& b) override {
    EstimateOutcome out;
    const Rect extent = JointExtent(a, b);
    Timer timer;
    auto ha = PhHistogram::Build(a, extent, level_);
    if (!ha.ok()) return ha.status();
    auto hb = PhHistogram::Build(b, extent, level_);
    if (!hb.ok()) return hb.status();
    out.prepare_seconds = timer.ElapsedSeconds();

    timer.Reset();
    SJSEL_ASSIGN_OR_RETURN(out.estimated_pairs,
                           EstimatePhJoinPairs(*ha, *hb));
    out.estimate_seconds = timer.ElapsedSeconds();
    out.selectivity = out.estimated_pairs / (static_cast<double>(a.size()) *
                                             static_cast<double>(b.size()));
    return out;
  }

 private:
  int level_;
};

class ParametricEstimator : public SelectivityEstimator {
 public:
  std::string Name() const override { return "Parametric[AS94]"; }

  Result<EstimateOutcome> Estimate(const Dataset& a,
                                   const Dataset& b) override {
    if (a.empty() || b.empty()) {
      return Status::InvalidArgument("empty dataset");
    }
    EstimateOutcome out;
    const Rect extent = JointExtent(a, b);
    Timer timer;
    const DatasetStats sa = DatasetStats::Compute(a, extent);
    const DatasetStats sb = DatasetStats::Compute(b, extent);
    out.prepare_seconds = timer.ElapsedSeconds();
    timer.Reset();
    out.estimated_pairs = ParametricJoinPairs(sa, sb);
    out.selectivity = ParametricJoinSelectivity(sa, sb);
    out.estimate_seconds = timer.ElapsedSeconds();
    return out;
  }
};

class SamplingSelectivityEstimator : public SelectivityEstimator {
 public:
  explicit SamplingSelectivityEstimator(const SamplingOptions& options)
      : options_(options) {}

  std::string Name() const override {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s(%.3g%%/%.3g%%)",
                  SamplingMethodName(options_.method).c_str(),
                  options_.frac_a * 100.0, options_.frac_b * 100.0);
    return buf;
  }

  Result<EstimateOutcome> Estimate(const Dataset& a,
                                   const Dataset& b) override {
    SamplingEstimate est;
    SJSEL_ASSIGN_OR_RETURN(est, EstimateBySampling(a, b, options_));
    EstimateOutcome out;
    out.estimated_pairs = est.estimated_pairs;
    out.selectivity = est.selectivity;
    out.prepare_seconds = est.select_seconds + est.build_seconds;
    out.estimate_seconds = est.join_seconds;
    return out;
  }

 private:
  SamplingOptions options_;
};

class MinSkewEstimator : public SelectivityEstimator {
 public:
  explicit MinSkewEstimator(int num_buckets) : num_buckets_(num_buckets) {}

  std::string Name() const override {
    return "MinSkew(buckets=" + std::to_string(num_buckets_) + ")";
  }

  Result<EstimateOutcome> Estimate(const Dataset& a,
                                   const Dataset& b) override {
    EstimateOutcome out;
    const Rect extent = JointExtent(a, b);
    Timer timer;
    auto ha = MinSkewHistogram::Build(a, extent, num_buckets_);
    if (!ha.ok()) return ha.status();
    auto hb = MinSkewHistogram::Build(b, extent, num_buckets_);
    if (!hb.ok()) return hb.status();
    out.prepare_seconds = timer.ElapsedSeconds();

    timer.Reset();
    SJSEL_ASSIGN_OR_RETURN(out.estimated_pairs,
                           EstimateMinSkewJoinPairs(*ha, *hb));
    out.estimate_seconds = timer.ElapsedSeconds();
    out.selectivity = out.estimated_pairs / (static_cast<double>(a.size()) *
                                             static_cast<double>(b.size()));
    return out;
  }

 private:
  int num_buckets_;
};

}  // namespace

std::unique_ptr<SelectivityEstimator> MakeMinSkewEstimator(int num_buckets) {
  return std::make_unique<MinSkewEstimator>(num_buckets);
}

int RecommendGhLevel(size_t n, const Rect& extent, double avg_w, double avg_h,
                     uint64_t space_budget_bytes) {
  if (n == 0 || extent.IsEmpty() || extent.area() <= 0.0) return 0;

  // Finest level keeping ~4 objects per cell if the data were uniform.
  const double cells_for_density = static_cast<double>(n) / 4.0;
  int density_level = 0;
  while (density_level < 15 &&
         std::pow(4.0, density_level + 1) <= cells_for_density) {
    ++density_level;
  }

  // Level at which the cell size matches the average object size: going
  // much finer stops adding information (the object spans many cells
  // either way).
  const double avg_extent = std::max(1e-12, std::max(avg_w, avg_h));
  const double per_axis = std::max(extent.width(), extent.height());
  int size_level = 0;
  while (size_level < 15 &&
         per_axis / std::pow(2.0, size_level + 1) >= avg_extent) {
    ++size_level;
  }

  int level = std::min(density_level + 2, size_level + 2);
  if (space_budget_bytes > 0) {
    while (level > 0 &&
           (uint64_t{32} << (2 * level)) > space_budget_bytes) {
      --level;
    }
  }
  return std::clamp(level, 0, 12);
}

std::unique_ptr<SelectivityEstimator> MakeGhEstimator(int level) {
  return std::make_unique<GhEstimator>(level);
}

std::unique_ptr<SelectivityEstimator> MakePhEstimator(int level) {
  return std::make_unique<PhEstimator>(level);
}

std::unique_ptr<SelectivityEstimator> MakeParametricEstimator() {
  return std::make_unique<ParametricEstimator>();
}

std::unique_ptr<SelectivityEstimator> MakeSamplingEstimator(
    const SamplingOptions& options) {
  return std::make_unique<SamplingSelectivityEstimator>(options);
}

}  // namespace sjsel
