#include "core/distance_estimate.h"

#include "join/distance_join.h"

namespace sjsel {

Result<GhHistogram> BuildExpandedGhHistogram(const Dataset& ds,
                                             const Rect& extent, int level,
                                             double margin) {
  return GhHistogram::Build(ExpandMbrs(ds, margin), extent, level);
}

Result<double> EstimateWithinDistancePairs(const Dataset& a, const Dataset& b,
                                           double eps, int level) {
  if (eps < 0.0) return 0.0;
  const Dataset expanded = ExpandMbrs(a, eps);
  Rect extent = expanded.ComputeExtent();
  extent.Extend(b.ComputeExtent());
  const auto ha = GhHistogram::Build(expanded, extent, level);
  if (!ha.ok()) return ha.status();
  const auto hb = GhHistogram::Build(b, extent, level);
  if (!hb.ok()) return hb.status();
  return EstimateGhJoinPairs(*ha, *hb);
}

}  // namespace sjsel
