#include "core/grid.h"

#include <cmath>

namespace sjsel {

Result<Grid> Grid::Create(const Rect& extent, int level) {
  if (level < 0 || level > 15) {
    return Status::InvalidArgument("grid level must be in [0, 15], got " +
                                   std::to_string(level));
  }
  if (extent.IsEmpty() || extent.width() <= 0.0 || extent.height() <= 0.0) {
    return Status::InvalidArgument("grid extent must have positive area");
  }
  return Grid(extent, level);
}

Grid::Grid(const Rect& extent, int level)
    : extent_(extent), level_(level), per_axis_(1 << level) {
  cell_w_ = extent_.width() / per_axis_;
  cell_h_ = extent_.height() / per_axis_;
}

int Grid::CellX(double x) const {
  int c = static_cast<int>(std::floor((x - extent_.min_x) / cell_w_));
  if (c < 0) c = 0;
  if (c >= per_axis_) c = per_axis_ - 1;
  return c;
}

int Grid::CellY(double y) const {
  int c = static_cast<int>(std::floor((y - extent_.min_y) / cell_h_));
  if (c < 0) c = 0;
  if (c >= per_axis_) c = per_axis_ - 1;
  return c;
}

Rect Grid::CellRect(int cx, int cy) const {
  return Rect(extent_.min_x + cx * cell_w_, extent_.min_y + cy * cell_h_,
              extent_.min_x + (cx + 1) * cell_w_,
              extent_.min_y + (cy + 1) * cell_h_);
}

void Grid::CellRange(const Rect& r, int* x0, int* y0, int* x1, int* y1) const {
  *x0 = CellX(r.min_x);
  *y0 = CellY(r.min_y);
  *x1 = CellX(r.max_x);
  *y1 = CellY(r.max_y);
}

bool Grid::CompatibleWith(const Grid& other) const {
  return level_ == other.level_ && extent_ == other.extent_;
}

}  // namespace sjsel
