#include "core/minskew.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/grid.h"
#include "util/serialize.h"

namespace sjsel {
namespace internal {

namespace {

// ∫_{x=a1}^{b1} max(0, min(b2, x + c) - a2) dx — the area of
// {(x, y) in [a1,b1] x [a2,b2] : y <= x + c}. The integrand is piecewise
// linear with breakpoints where x + c crosses a2 and b2, so the integral
// is an exact sum of trapezoids.
double AreaBelowDiagonal(double a1, double b1, double a2, double b2,
                         double c) {
  auto integrand = [&](double x) {
    return std::max(0.0, std::min(b2, x + c) - a2);
  };
  double pts[4] = {a1, std::clamp(a2 - c, a1, b1), std::clamp(b2 - c, a1, b1),
                   b1};
  std::sort(pts, pts + 4);
  double area = 0.0;
  for (int i = 0; i + 1 < 4; ++i) {
    const double lo = pts[i];
    const double hi = pts[i + 1];
    if (hi <= lo) continue;
    area += 0.5 * (integrand(lo) + integrand(hi)) * (hi - lo);
  }
  return area;
}

}  // namespace

double ProbWithin(double a1, double b1, double a2, double b2, double t) {
  if (t < 0.0) return 0.0;
  const double len1 = b1 - a1;
  const double len2 = b2 - a2;
  if (len1 <= 0.0 && len2 <= 0.0) {
    return std::fabs(a1 - a2) <= t ? 1.0 : 0.0;
  }
  if (len1 <= 0.0) {
    // X is the point a1; measure the part of [a2, b2] within t of it.
    const double lo = std::max(a2, a1 - t);
    const double hi = std::min(b2, a1 + t);
    return std::max(0.0, hi - lo) / len2;
  }
  if (len2 <= 0.0) {
    const double lo = std::max(a1, a2 - t);
    const double hi = std::min(b1, a2 + t);
    return std::max(0.0, hi - lo) / len1;
  }
  // P(-t <= Y - X <= t) = [F(t) - F(-t)] / (len1 * len2).
  const double band = AreaBelowDiagonal(a1, b1, a2, b2, t) -
                      AreaBelowDiagonal(a1, b1, a2, b2, -t);
  return std::clamp(band / (len1 * len2), 0.0, 1.0);
}

}  // namespace internal

namespace {

constexpr uint32_t kMinSkewMagic = 0x534d534b;  // "SMSK"
// v2: shared checked envelope (format-version byte + CRC verified before
// any field parse); v1 carried a u32 version and a trailing CRC check.
constexpr uint8_t kMinSkewVersion = 2;

// A candidate region of the density grid, in cell coordinates
// [x0, x1) x [y0, y1).
struct Region {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
  int64_t CellCount() const {
    return static_cast<int64_t>(x1 - x0) * (y1 - y0);
  }
};

// 2-D prefix sums of the density grid and its squares, for O(1) skew
// (sum-of-squared-deviations) of any rectangular region.
class DensityPrefix {
 public:
  DensityPrefix(const std::vector<double>& density, int per_axis)
      : per_axis_(per_axis),
        sum_((per_axis + 1) * (per_axis + 1), 0.0),
        sum_sq_((per_axis + 1) * (per_axis + 1), 0.0) {
    for (int y = 0; y < per_axis; ++y) {
      for (int x = 0; x < per_axis; ++x) {
        const double v = density[static_cast<size_t>(y) * per_axis + x];
        At(&sum_, x + 1, y + 1) = v + At(&sum_, x, y + 1) +
                                  At(&sum_, x + 1, y) - At(&sum_, x, y);
        At(&sum_sq_, x + 1, y + 1) = v * v + At(&sum_sq_, x, y + 1) +
                                     At(&sum_sq_, x + 1, y) -
                                     At(&sum_sq_, x, y);
      }
    }
  }

  double Sum(const Region& r) const { return RangeOf(sum_, r); }
  double SumSq(const Region& r) const { return RangeOf(sum_sq_, r); }

  /// Sum of squared deviations from the region mean ("spatial skew").
  double Skew(const Region& r) const {
    const double cells = static_cast<double>(r.CellCount());
    if (cells <= 0.0) return 0.0;
    const double s = Sum(r);
    return SumSq(r) - s * s / cells;
  }

 private:
  double& At(std::vector<double>* v, int x, int y) {
    return (*v)[static_cast<size_t>(y) * (per_axis_ + 1) + x];
  }
  double At(const std::vector<double>& v, int x, int y) const {
    return v[static_cast<size_t>(y) * (per_axis_ + 1) + x];
  }
  double RangeOf(const std::vector<double>& v, const Region& r) const {
    return At(v, r.x1, r.y1) - At(v, r.x0, r.y1) - At(v, r.x1, r.y0) +
           At(v, r.x0, r.y0);
  }

  int per_axis_;
  std::vector<double> sum_;
  std::vector<double> sum_sq_;
};

// The best split of one region: the axis/position maximizing skew
// reduction.
struct SplitChoice {
  bool valid = false;
  bool vertical = false;  // split on x (left/right) vs y (bottom/top)
  int position = 0;       // cell coordinate of the split line
  double reduction = 0.0;
};

SplitChoice BestSplit(const Region& region, const DensityPrefix& prefix) {
  SplitChoice best;
  const double base = prefix.Skew(region);
  for (int x = region.x0 + 1; x < region.x1; ++x) {
    Region left = region;
    left.x1 = x;
    Region right = region;
    right.x0 = x;
    const double reduction =
        base - prefix.Skew(left) - prefix.Skew(right);
    if (!best.valid || reduction > best.reduction) {
      best = SplitChoice{true, true, x, reduction};
    }
  }
  for (int y = region.y0 + 1; y < region.y1; ++y) {
    Region bottom = region;
    bottom.y1 = y;
    Region top = region;
    top.y0 = y;
    const double reduction =
        base - prefix.Skew(bottom) - prefix.Skew(top);
    if (!best.valid || reduction > best.reduction) {
      best = SplitChoice{true, false, y, reduction};
    }
  }
  return best;
}

}  // namespace

Result<MinSkewHistogram> MinSkewHistogram::Build(const Dataset& ds,
                                                 const Rect& extent,
                                                 int num_buckets,
                                                 int grid_level) {
  if (num_buckets < 1) {
    return Status::InvalidArgument("num_buckets must be >= 1");
  }
  auto grid_result = Grid::Create(extent, grid_level);
  if (!grid_result.ok()) return grid_result.status();
  const Grid grid = std::move(grid_result).value();
  const int per_axis = grid.per_axis();

  // Density grid of object-center counts.
  std::vector<double> density(grid.num_cells(), 0.0);
  for (const Rect& r : ds.rects()) {
    density[grid.CellOf(r.center())] += 1.0;
  }
  const DensityPrefix prefix(density, per_axis);

  // Greedy partitioning: always split the region where the best split
  // reduces skew the most.
  std::vector<Region> regions = {Region{0, 0, per_axis, per_axis}};
  while (static_cast<int>(regions.size()) < num_buckets) {
    int pick = -1;
    SplitChoice pick_split;
    for (size_t i = 0; i < regions.size(); ++i) {
      const SplitChoice split = BestSplit(regions[i], prefix);
      if (split.valid &&
          (pick < 0 || split.reduction > pick_split.reduction)) {
        pick = static_cast<int>(i);
        pick_split = split;
      }
    }
    if (pick < 0 || pick_split.reduction <= 0.0) break;  // nothing to gain
    Region a = regions[pick];
    Region b = regions[pick];
    if (pick_split.vertical) {
      a.x1 = pick_split.position;
      b.x0 = pick_split.position;
    } else {
      a.y1 = pick_split.position;
      b.y0 = pick_split.position;
    }
    regions[pick] = a;
    regions.push_back(b);
  }

  // Cell -> bucket index for the assignment pass.
  std::vector<int> cell_bucket(grid.num_cells(), 0);
  for (size_t bucket = 0; bucket < regions.size(); ++bucket) {
    const Region& region = regions[bucket];
    for (int y = region.y0; y < region.y1; ++y) {
      for (int x = region.x0; x < region.x1; ++x) {
        cell_bucket[grid.Flat(x, y)] = static_cast<int>(bucket);
      }
    }
  }

  MinSkewHistogram hist;
  hist.extent_ = extent;
  hist.n_ = ds.size();
  hist.name_ = ds.name();
  hist.buckets_.resize(regions.size());
  std::vector<double> sum_w(regions.size(), 0.0);
  std::vector<double> sum_h(regions.size(), 0.0);
  for (size_t i = 0; i < regions.size(); ++i) {
    const Region& region = regions[i];
    const Rect lo = grid.CellRect(region.x0, region.y0);
    const Rect hi = grid.CellRect(region.x1 - 1, region.y1 - 1);
    hist.buckets_[i].rect = Rect(lo.min_x, lo.min_y, hi.max_x, hi.max_y);
  }
  for (const Rect& r : ds.rects()) {
    const int bucket = cell_bucket[grid.CellOf(r.center())];
    hist.buckets_[bucket].n += 1.0;
    sum_w[bucket] += r.width();
    sum_h[bucket] += r.height();
  }
  for (size_t i = 0; i < hist.buckets_.size(); ++i) {
    if (hist.buckets_[i].n > 0.0) {
      hist.buckets_[i].avg_w = sum_w[i] / hist.buckets_[i].n;
      hist.buckets_[i].avg_h = sum_h[i] / hist.buckets_[i].n;
    }
  }
  return hist;
}

Result<double> EstimateMinSkewJoinPairs(const MinSkewHistogram& a,
                                        const MinSkewHistogram& b) {
  if (!(a.extent() == b.extent())) {
    return Status::InvalidArgument(
        "MinSkew histograms built on different extents cannot be combined");
  }
  double pairs = 0.0;
  for (const auto& p : a.buckets()) {
    if (p.n <= 0.0) continue;
    for (const auto& q : b.buckets()) {
      if (q.n <= 0.0) continue;
      // Two rects intersect iff their centers are within the half-extent
      // sum on both axes.
      const double tx = (p.avg_w + q.avg_w) / 2.0;
      const double ty = (p.avg_h + q.avg_h) / 2.0;
      const double px = internal::ProbWithin(p.rect.min_x, p.rect.max_x,
                                             q.rect.min_x, q.rect.max_x, tx);
      if (px == 0.0) continue;
      const double py = internal::ProbWithin(p.rect.min_y, p.rect.max_y,
                                             q.rect.min_y, q.rect.max_y, ty);
      pairs += p.n * q.n * px * py;
    }
  }
  return pairs;
}

Result<double> EstimateMinSkewJoinSelectivity(const MinSkewHistogram& a,
                                              const MinSkewHistogram& b) {
  if (a.dataset_size() == 0 || b.dataset_size() == 0) {
    return Status::FailedPrecondition(
        "selectivity undefined for empty datasets");
  }
  double pairs = 0.0;
  SJSEL_ASSIGN_OR_RETURN(pairs, EstimateMinSkewJoinPairs(a, b));
  return pairs / (static_cast<double>(a.dataset_size()) *
                  static_cast<double>(b.dataset_size()));
}

double EstimateMinSkewRangeCount(const MinSkewHistogram& hist,
                                 const Rect& query) {
  double count = 0.0;
  for (const auto& bucket : hist.buckets()) {
    if (bucket.n <= 0.0) continue;
    // The query is fixed; the object's center is uniform in the bucket.
    // Intersection happens when the center lands within avg_w/2 of the
    // query's x-range (and likewise in y).
    auto axis_prob = [](double lo, double hi, double q_lo, double q_hi,
                        double half_extent) {
      const double len = hi - lo;
      const double band_lo = std::max(lo, q_lo - half_extent);
      const double band_hi = std::min(hi, q_hi + half_extent);
      if (len <= 0.0) {
        return (lo >= q_lo - half_extent && lo <= q_hi + half_extent) ? 1.0
                                                                      : 0.0;
      }
      return std::max(0.0, band_hi - band_lo) / len;
    };
    const double px = axis_prob(bucket.rect.min_x, bucket.rect.max_x,
                                query.min_x, query.max_x, bucket.avg_w / 2);
    if (px == 0.0) continue;
    const double py = axis_prob(bucket.rect.min_y, bucket.rect.max_y,
                                query.min_y, query.max_y, bucket.avg_h / 2);
    count += bucket.n * px * py;
  }
  return count;
}

Status MinSkewHistogram::Save(const std::string& path) const {
  BinaryWriter w;
  w.BeginEnvelope(kMinSkewMagic, kMinSkewVersion);
  w.PutDouble(extent_.min_x);
  w.PutDouble(extent_.min_y);
  w.PutDouble(extent_.max_x);
  w.PutDouble(extent_.max_y);
  w.PutU64(n_);
  w.PutString(name_);
  w.PutU64(buckets_.size());
  for (const Bucket& b : buckets_) {
    w.PutDouble(b.rect.min_x);
    w.PutDouble(b.rect.min_y);
    w.PutDouble(b.rect.max_x);
    w.PutDouble(b.rect.max_y);
    w.PutDouble(b.n);
    w.PutDouble(b.avg_w);
    w.PutDouble(b.avg_h);
  }
  return WriteFile(path, w.SealEnvelope());
}

Result<MinSkewHistogram> MinSkewHistogram::Load(const std::string& path) {
  std::string data;
  SJSEL_ASSIGN_OR_RETURN(data, ReadFile(path));
  BinaryReader r(std::move(data));
  uint8_t version = 0;
  SJSEL_ASSIGN_OR_RETURN(version, r.OpenEnvelope(kMinSkewMagic, "MinSkew"));
  if (version != kMinSkewVersion) {
    return Status::Corruption("unsupported MinSkew version " +
                              std::to_string(version));
  }
  MinSkewHistogram hist;
  SJSEL_ASSIGN_OR_RETURN(hist.extent_.min_x, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(hist.extent_.min_y, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(hist.extent_.max_x, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(hist.extent_.max_y, r.GetDouble());
  SJSEL_ASSIGN_OR_RETURN(hist.n_, r.GetU64());
  SJSEL_ASSIGN_OR_RETURN(hist.name_, r.GetString());
  uint64_t bucket_count = 0;
  SJSEL_ASSIGN_OR_RETURN(bucket_count, r.GetU64());
  // Each bucket record is 7 doubles; reject counts beyond the payload so a
  // corrupt header cannot drive the resize below into bad_alloc.
  if (bucket_count > (r.size() - r.position()) / 56) {
    return Status::Corruption("MinSkew bucket count exceeds payload in " +
                              path);
  }
  hist.buckets_.resize(bucket_count);
  for (Bucket& b : hist.buckets_) {
    SJSEL_ASSIGN_OR_RETURN(b.rect.min_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(b.rect.min_y, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(b.rect.max_x, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(b.rect.max_y, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(b.n, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(b.avg_w, r.GetDouble());
    SJSEL_ASSIGN_OR_RETURN(b.avg_h, r.GetDouble());
  }
  SJSEL_RETURN_IF_ERROR(r.ExpectBodyEnd("MinSkew file " + path));
  return hist;
}

}  // namespace sjsel
