#ifndef SJSEL_CORE_DISTANCE_ESTIMATE_H_
#define SJSEL_CORE_DISTANCE_ESTIMATE_H_

#include "core/gh_histogram.h"
#include "geom/dataset.h"
#include "util/result.h"

namespace sjsel {

/// Selectivity estimation for the within-distance (epsilon) join — the
/// second most common spatial-join predicate after intersection. Uses the
/// standard reduction: MBRs are within Chebyshev distance eps iff one side
/// expanded by eps intersects the other, so the estimate is a plain GH
/// estimate with the first input's histogram built over expanded MBRs.
///
/// Returns the estimated number of pairs (a, b) with
/// DistanceLInf(a, b) <= eps.
Result<double> EstimateWithinDistancePairs(const Dataset& a, const Dataset& b,
                                           double eps, int level);

/// Builds the reusable ingredient of the above: the GH histogram of `ds`
/// with every MBR grown by `margin`, over `extent` (which must already
/// account for the growth). A deployment keeps one such histogram per
/// common epsilon.
Result<GhHistogram> BuildExpandedGhHistogram(const Dataset& ds,
                                             const Rect& extent, int level,
                                             double margin);

}  // namespace sjsel

#endif  // SJSEL_CORE_DISTANCE_ESTIMATE_H_
