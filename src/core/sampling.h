#ifndef SJSEL_CORE_SAMPLING_H_
#define SJSEL_CORE_SAMPLING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/dataset.h"
#include "rtree/rtree.h"
#include "util/result.h"

namespace sjsel {

/// The three sample-selection schemes of Section 2.
enum class SamplingMethod {
  /// RS: every k-th data item (systematic sampling).
  kRegular,
  /// RSWR: uniform draws with replacement.
  kRandomWithReplacement,
  /// SS: sort by Hilbert value of the MBR center, then systematic.
  kSorted,
};

/// Short name ("RS", "RSWR", "SS").
std::string SamplingMethodName(SamplingMethod method);

/// Draws sample positions from a dataset of size `n` at sampling fraction
/// `frac` (0 < frac <= 1). For kSorted, `ds` supplies the geometry to sort
/// by Hilbert value; it may be null for the other methods.
std::vector<size_t> DrawSampleIndices(size_t n, double frac,
                                      SamplingMethod method, uint64_t seed,
                                      const Dataset* ds);

/// Materializes the sampled rectangles as a dataset.
Dataset DrawSample(const Dataset& ds, double frac, SamplingMethod method,
                   uint64_t seed);

/// Algorithm used to count pairs between the two drawn samples. Both are
/// exact, so the estimate is identical; only the timing profile differs.
enum class SampleJoinAlgo {
  /// Build an R-tree per sample and join the trees (the paper's setup —
  /// reports a build/join timing split).
  kRTree,
  /// Skip the index builds and run the vectorized plane-sweep join
  /// directly on the samples (build_seconds stays 0).
  kPlaneSweep,
};

/// Parameters of one sampling-based selectivity estimation run.
struct SamplingOptions {
  SamplingMethod method = SamplingMethod::kRandomWithReplacement;
  SampleJoinAlgo join_algo = SampleJoinAlgo::kRTree;
  /// Sampling fractions for the two inputs; 1.0 uses the full dataset
  /// (the paper's "100" columns).
  double frac_a = 0.1;
  double frac_b = 0.1;
  uint64_t seed = 1;
  RTreeOptions rtree_options;
  /// Worker threads for the estimation pipeline; <= 1 runs serially.
  /// With threads >= 2 the two sample R-trees are built concurrently and
  /// the sample join fans out over subtree pairs with per-task counters
  /// (see RTreeJoinCount). Sample *selection* stays serial — it is
  /// sequential by nature (seeded RNG, Hilbert sort) and that is what
  /// keeps the drawn samples, and hence the estimate, identical for every
  /// thread count.
  int threads = 1;
};

/// Outcome of a sampling estimation, including the timing breakdown that
/// feeds the paper's Est. Time 1 / Est. Time 2 metrics.
struct SamplingEstimate {
  double estimated_pairs = 0.0;
  double selectivity = 0.0;
  uint64_t sample_pairs = 0;  ///< raw pair count R on the samples
  size_t sample_a_size = 0;
  size_t sample_b_size = 0;
  double select_seconds = 0.0;  ///< drawing the samples (incl. SS sort)
  double build_seconds = 0.0;   ///< building the two sample R-trees
  double join_seconds = 0.0;    ///< joining the sample R-trees
  double TotalSeconds() const {
    return select_seconds + build_seconds + join_seconds;
  }
};

/// Runs the full sampling pipeline of Section 2: draw samples from both
/// inputs, build an R-tree per sample, R-tree-join them and scale the pair
/// count by 1 / (frac_a * frac_b).
Result<SamplingEstimate> EstimateBySampling(const Dataset& a,
                                            const Dataset& b,
                                            const SamplingOptions& options);

}  // namespace sjsel

#endif  // SJSEL_CORE_SAMPLING_H_
