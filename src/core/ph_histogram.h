#ifndef SJSEL_CORE_PH_HISTOGRAM_H_
#define SJSEL_CORE_PH_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/grid.h"
#include "geom/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace sjsel {

/// How PH buckets MBRs that span cell boundaries (paper Section 3.1.2).
enum class PhVariant {
  /// The paper's PH: crossing MBRs are clipped at cell boundaries and kept
  /// in a separate Isect population per cell.
  kSplitCrossing,
  /// Ablation baseline: every overlapped cell counts the full, unclipped
  /// MBR in its Cont population ("naive gridding" — the multiple-counting
  /// strawman PH was designed to improve on).
  kNaive,
};

/// The Parametric Histogram: per grid cell, the Aref–Samet parameters of
/// Table 1, split into MBRs fully contained in the cell (Num/Cov/Xavg/Yavg)
/// and MBRs crossing the cell boundary, clipped to the cell
/// (Num'/Cov'/Xavg'/Yavg'), plus the dataset-global AvgSpan used to damp
/// multiple counting of crossing-crossing intersections.
///
/// Level 0 reproduces the prior parametric model [2] exactly (one cell =
/// the whole extent, everything contained, Equation 1).
///
/// Thread-safety: value type, no hidden shared state. Concurrent const
/// access (estimates, accessors, Save) is safe; AddRect / RemoveRect /
/// Merge need external synchronization. The multi-threaded Build never
/// shares a histogram between workers (record-and-replay, identical to the
/// GH scheme — see docs/ARCHITECTURE.md, "Threading model").
class PhHistogram {
 public:
  /// Sums kept per cell; averages and ratios are derived at estimate time.
  struct Cell {
    double num = 0.0;       ///< |Cont|
    double area_sum = 0.0;  ///< Σ area of contained MBRs
    double w_sum = 0.0;     ///< Σ width of contained MBRs
    double h_sum = 0.0;     ///< Σ height of contained MBRs
    double num_x = 0.0;     ///< |Isect| (crossing MBRs touching the cell)
    double area_sum_x = 0.0;  ///< Σ area of MBR ∩ cell over Isect
    double w_sum_x = 0.0;     ///< Σ width of MBR ∩ cell over Isect
    double h_sum_x = 0.0;     ///< Σ height of MBR ∩ cell over Isect
  };

  /// Builds the histogram of `ds` on a `level`-deep grid over `extent`.
  /// `threads` > 1 parallelizes the per-MBR clipping over fixed-size input
  /// chunks and replays the recorded contributions in dataset order, so the
  /// result is bit-identical to the serial build for any thread count;
  /// `threads` <= 1 is the serial path.
  static Result<PhHistogram> Build(
      const Dataset& ds, const Rect& extent, int level,
      PhVariant variant = PhVariant::kSplitCrossing, int threads = 1);

  /// Creates an empty histogram for incremental population with AddRect.
  static Result<PhHistogram> CreateEmpty(
      const Rect& extent, int level,
      PhVariant variant = PhVariant::kSplitCrossing);

  /// Incremental maintenance: folds one MBR in. All PH statistics —
  /// including the AvgSpan numerator/denominator — are kept as sums, so
  /// insertions commute with Build.
  void AddRect(const Rect& r);

  /// Incremental maintenance: removes one previously added MBR (which must
  /// actually be in the underlying dataset; see GhHistogram::RemoveRect).
  void RemoveRect(const Rect& r);

  /// Merges another histogram of the same grid/variant — the histogram of
  /// the bag-union of the two datasets. Exact, since all fields are sums.
  Status Merge(const PhHistogram& other);

  const Grid& grid() const { return grid_; }
  PhVariant variant() const { return variant_; }
  uint64_t dataset_size() const { return n_; }
  const std::string& dataset_name() const { return name_; }
  /// Average number of cells a boundary-crossing MBR spans (1.0 when the
  /// dataset has no crossing MBRs, e.g. at level 0).
  double avg_span() const {
    return crossing_count_ > 0.0 ? span_sum_ / crossing_count_ : 1.0;
  }
  /// Number of MBRs that cross cell boundaries.
  double crossing_count() const { return crossing_count_; }
  const std::vector<Cell>& cells() const { return cells_; }

  /// Histogram-file footprint: 8 doubles per cell.
  uint64_t NominalBytes() const { return grid_.num_cells() * 8 * 8; }

  Status Save(const std::string& path) const;
  static Result<PhHistogram> Load(const std::string& path);

 private:
  PhHistogram(Grid grid, PhVariant variant)
      : grid_(grid), variant_(variant) {}

  void Apply(const Rect& r, double weight);

  Grid grid_;
  PhVariant variant_;
  uint64_t n_ = 0;
  double span_sum_ = 0.0;       ///< Σ cells spanned over crossing MBRs
  double crossing_count_ = 0.0; ///< number of crossing MBRs
  std::string name_;
  std::vector<Cell> cells_;
};

/// Options for the PH join estimate.
struct PhEstimateOptions {
  /// Divide the Sd sum by mean(AvgSpan1, AvgSpan2) as in Equation 3.
  /// Disabled only by the ablation benchmark.
  bool apply_span_correction = true;
};

/// Estimated join result size Σ Sa + Σ Sb + Σ Sc + Σ Sd / mean(AvgSpan)
/// (Equation 3). Histograms must share grid and variant.
Result<double> EstimatePhJoinPairs(const PhHistogram& a, const PhHistogram& b,
                                   PhEstimateOptions options = {});

/// One cell's share of the Equation 3 estimate, split into the four
/// population pairings: Sa (Cont×Cont), Sb (Cont×Isect), Sc (Isect×Cont)
/// and the *raw* Sd (Isect×Isect) before the global AvgSpan damping.
struct PhCellContribution {
  double sa = 0.0;
  double sb = 0.0;
  double sc = 0.0;
  double sd_raw = 0.0;

  /// Join pairs attributed to the cell once `mean_span` (PhMeanSpan of
  /// the two histograms) is applied to the crossing-crossing term.
  double pairs(double mean_span) const {
    return sa + sb + sc + sd_raw / mean_span;
  }
};

/// Per-cell breakdown of EstimatePhJoinPairs: element i is cell i's share
/// (flat row-major index). The scalar estimate accumulates exactly these
/// terms in this order (both paths share one per-cell helper), so
/// Σ sa + Σ sb + Σ sc interleaved per cell plus Σ sd_raw / PhMeanSpan
/// reproduces EstimatePhJoinPairs bit for bit. Same compatibility
/// requirements as the scalar estimate.
Result<std::vector<PhCellContribution>> PhPerCellContributions(
    const PhHistogram& a, const PhHistogram& b);

/// The Sd divisor the scalar estimate uses for this histogram pair: the
/// mean of the two AvgSpans when options.apply_span_correction (and that
/// mean is positive), else 1.0.
double PhMeanSpan(const PhHistogram& a, const PhHistogram& b,
                  PhEstimateOptions options = {});

/// Estimated join selectivity: pairs / (N1 * N2).
Result<double> EstimatePhJoinSelectivity(const PhHistogram& a,
                                         const PhHistogram& b,
                                         PhEstimateOptions options = {});

}  // namespace sjsel

#endif  // SJSEL_CORE_PH_HISTOGRAM_H_
