#include "datagen/geo_generators.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace sjsel {
namespace gen {
namespace {

Point DrawMixtureCenter(Rng* rng, const Rect& extent,
                        const std::vector<Cluster>& clusters,
                        double background_frac) {
  if (clusters.empty() || rng->NextBernoulli(background_frac)) {
    return Point{rng->NextDouble(extent.min_x, extent.max_x),
                 rng->NextDouble(extent.min_y, extent.max_y)};
  }
  double total = 0.0;
  for (const Cluster& c : clusters) total += c.weight;
  double pick = rng->NextDouble() * total;
  const Cluster* chosen = &clusters.back();
  for (const Cluster& c : clusters) {
    pick -= c.weight;
    if (pick <= 0.0) {
      chosen = &c;
      break;
    }
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Point p{chosen->center.x + rng->NextGaussian() * chosen->sigma_x,
                  chosen->center.y + rng->NextGaussian() * chosen->sigma_y};
    if (extent.Contains(p)) return p;
  }
  return Point{std::clamp(chosen->center.x, extent.min_x, extent.max_x),
               std::clamp(chosen->center.y, extent.min_y, extent.max_y)};
}

}  // namespace

GeoDataset GenerateStreamPolylines(std::string name, size_t n,
                                   const Rect& extent,
                                   const PolylineSpec& spec, uint64_t seed) {
  Rng rng(seed);
  GeoDataset ds(std::move(name));
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Polyline line;
    line.pts.reserve(spec.steps);
    Point pos = DrawMixtureCenter(&rng, extent, spec.start_clusters,
                                  spec.background_frac);
    double heading = rng.NextDouble(0.0, 2.0 * M_PI);
    line.pts.push_back(pos);
    for (int s = 1; s < spec.steps; ++s) {
      heading += rng.NextGaussian() * spec.turn_sigma;
      const double len = rng.NextExponential(1.0 / spec.step_len);
      pos.x = std::clamp(pos.x + std::cos(heading) * len, extent.min_x,
                         extent.max_x);
      pos.y = std::clamp(pos.y + std::sin(heading) * len, extent.min_y,
                         extent.max_y);
      line.pts.push_back(pos);
    }
    ds.Add(std::move(line));
  }
  return ds;
}

GeoDataset GenerateBlockPolygons(std::string name, size_t n,
                                 const Rect& extent,
                                 const std::vector<Cluster>& clusters,
                                 double background_frac, double mean_radius,
                                 uint64_t seed) {
  Rng rng(seed);
  GeoDataset ds(std::move(name));
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point c =
        DrawMixtureCenter(&rng, extent, clusters, background_frac);
    const int vertices = 5 + static_cast<int>(rng.NextU64(5));
    // Sorted angles with jitter make a star-shaped (hence simple) ring.
    Polygon poly;
    poly.pts.reserve(vertices);
    for (int v = 0; v < vertices; ++v) {
      const double angle =
          2.0 * M_PI * (v + rng.NextDouble() * 0.6) / vertices;
      const double radius =
          mean_radius * rng.NextDouble(0.6, 1.4);
      Point p{c.x + std::cos(angle) * radius,
              c.y + std::sin(angle) * radius};
      p.x = std::clamp(p.x, extent.min_x, extent.max_x);
      p.y = std::clamp(p.y, extent.min_y, extent.max_y);
      poly.pts.push_back(p);
    }
    ds.Add(std::move(poly));
  }
  return ds;
}

GeoDataset GeneratePointSites(std::string name, size_t n, const Rect& extent,
                              const std::vector<Cluster>& clusters,
                              double background_frac, uint64_t seed) {
  Rng rng(seed);
  GeoDataset ds(std::move(name));
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ds.Add(DrawMixtureCenter(&rng, extent, clusters, background_frac));
  }
  return ds;
}

}  // namespace gen
}  // namespace sjsel
