#include "datagen/generators.h"

#include <algorithm>
#include <cmath>

namespace sjsel {
namespace gen {
namespace {

// Clamps a rect of size (w, h) centered at (cx, cy) into `extent` by
// shifting (never shrinking), so generated datasets stay inside the
// advertised spatial extent.
Rect PlaceRect(double cx, double cy, double w, double h, const Rect& extent) {
  w = std::min(w, extent.width());
  h = std::min(h, extent.height());
  double min_x = cx - w / 2;
  double min_y = cy - h / 2;
  min_x = std::clamp(min_x, extent.min_x, extent.max_x - w);
  min_y = std::clamp(min_y, extent.min_y, extent.max_y - h);
  return Rect(min_x, min_y, min_x + w, min_y + h);
}

// Draws a center from a cluster mixture with a uniform background
// component.
Point DrawCenter(Rng* rng, const Rect& extent,
                 const std::vector<Cluster>& clusters,
                 double background_frac) {
  if (clusters.empty() || rng->NextBernoulli(background_frac)) {
    return Point{rng->NextDouble(extent.min_x, extent.max_x),
                 rng->NextDouble(extent.min_y, extent.max_y)};
  }
  double total_weight = 0.0;
  for (const Cluster& c : clusters) total_weight += c.weight;
  double pick = rng->NextDouble() * total_weight;
  const Cluster* chosen = &clusters.back();
  for (const Cluster& c : clusters) {
    pick -= c.weight;
    if (pick <= 0.0) {
      chosen = &c;
      break;
    }
  }
  // Rejection-sample until inside the extent (bounded retry to stay total).
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Point p{chosen->center.x + rng->NextGaussian() * chosen->sigma_x,
                  chosen->center.y + rng->NextGaussian() * chosen->sigma_y};
    if (extent.Contains(p)) return p;
  }
  return Point{std::clamp(chosen->center.x, extent.min_x, extent.max_x),
               std::clamp(chosen->center.y, extent.min_y, extent.max_y)};
}

}  // namespace

void SizeDist::Sample(Rng* rng, double* w, double* h) const {
  switch (kind) {
    case Kind::kFixed:
      *w = mean_w;
      *h = mean_h;
      return;
    case Kind::kUniform:
      *w = rng->NextDouble(mean_w * (1 - spread), mean_w * (1 + spread));
      *h = rng->NextDouble(mean_h * (1 - spread), mean_h * (1 + spread));
      return;
    case Kind::kExponential:
      *w = rng->NextExponential(1.0 / mean_w);
      *h = rng->NextExponential(1.0 / mean_h);
      return;
  }
  *w = mean_w;
  *h = mean_h;
}

Dataset UniformRects(std::string name, size_t n, const Rect& extent,
                     const SizeDist& size, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(std::move(name));
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double w = 0;
    double h = 0;
    size.Sample(&rng, &w, &h);
    const double cx = rng.NextDouble(extent.min_x, extent.max_x);
    const double cy = rng.NextDouble(extent.min_y, extent.max_y);
    ds.Add(PlaceRect(cx, cy, w, h, extent));
  }
  return ds;
}

Dataset GaussianClusterRects(std::string name, size_t n, const Rect& extent,
                             const Cluster& cluster, const SizeDist& size,
                             uint64_t seed) {
  return MultiClusterRects(std::move(name), n, extent, {cluster},
                           /*background_frac=*/0.0, size, seed);
}

Dataset MultiClusterRects(std::string name, size_t n, const Rect& extent,
                          const std::vector<Cluster>& clusters,
                          double background_frac, const SizeDist& size,
                          uint64_t seed) {
  Rng rng(seed);
  Dataset ds(std::move(name));
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double w = 0;
    double h = 0;
    size.Sample(&rng, &w, &h);
    const Point c = DrawCenter(&rng, extent, clusters, background_frac);
    ds.Add(PlaceRect(c.x, c.y, w, h, extent));
  }
  return ds;
}

Dataset ClusteredPoints(std::string name, size_t n, const Rect& extent,
                        const std::vector<Cluster>& clusters,
                        double background_frac, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(std::move(name));
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point c = DrawCenter(&rng, extent, clusters, background_frac);
    ds.Add(Rect::FromPoint(c));
  }
  return ds;
}

Dataset RandomWalkPolylines(std::string name, size_t n, const Rect& extent,
                            const PolylineSpec& spec, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(std::move(name));
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point pos = DrawCenter(&rng, extent, spec.start_clusters,
                           spec.background_frac);
    double heading = rng.NextDouble(0.0, 2.0 * M_PI);
    Rect mbr = Rect::FromPoint(pos);
    for (int s = 1; s < spec.steps; ++s) {
      heading += rng.NextGaussian() * spec.turn_sigma;
      const double len = rng.NextExponential(1.0 / spec.step_len);
      pos.x = std::clamp(pos.x + std::cos(heading) * len, extent.min_x,
                         extent.max_x);
      pos.y = std::clamp(pos.y + std::sin(heading) * len, extent.min_y,
                         extent.max_y);
      mbr.Extend(Rect::FromPoint(pos));
    }
    ds.Add(mbr);
  }
  return ds;
}

Dataset LineNetworkSegments(std::string name, size_t n, const Rect& extent,
                            const NetworkSpec& spec, uint64_t seed) {
  Rng rng(seed);
  // Lay out the backbone network as random-walk vertex chains.
  std::vector<std::vector<Point>> trunks;
  trunks.reserve(spec.num_trunks);
  for (int t = 0; t < spec.num_trunks; ++t) {
    std::vector<Point> chain;
    chain.reserve(spec.trunk_steps);
    Point pos{rng.NextDouble(extent.min_x, extent.max_x),
              rng.NextDouble(extent.min_y, extent.max_y)};
    double heading = rng.NextDouble(0.0, 2.0 * M_PI);
    chain.push_back(pos);
    for (int s = 1; s < spec.trunk_steps; ++s) {
      heading += rng.NextGaussian() * 0.25;
      pos.x = std::clamp(pos.x + std::cos(heading) * spec.trunk_step_len,
                         extent.min_x, extent.max_x);
      pos.y = std::clamp(pos.y + std::sin(heading) * spec.trunk_step_len,
                         extent.min_y, extent.max_y);
      chain.push_back(pos);
    }
    trunks.push_back(std::move(chain));
  }

  Dataset ds(std::move(name));
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& chain = trunks[rng.NextU64(trunks.size())];
    // Pick a spot along the trunk; branches scatter wider than trunk-side
    // segments, giving the two-scale clustering of a road hierarchy.
    const size_t v = rng.NextU64(chain.size() - 1);
    const double t = rng.NextDouble();
    Point p{chain[v].x + (chain[v + 1].x - chain[v].x) * t,
            chain[v].y + (chain[v + 1].y - chain[v].y) * t};
    const double scatter =
        rng.NextBernoulli(spec.branch_frac) ? spec.jitter * 6 : spec.jitter;
    p.x += rng.NextGaussian() * scatter;
    p.y += rng.NextGaussian() * scatter;
    const double len = rng.NextExponential(1.0 / spec.segment_len);
    const double heading = rng.NextDouble(0.0, 2.0 * M_PI);
    const double w = std::fabs(std::cos(heading)) * len;
    const double h = std::fabs(std::sin(heading)) * len;
    ds.Add(PlaceRect(std::clamp(p.x, extent.min_x, extent.max_x),
                     std::clamp(p.y, extent.min_y, extent.max_y), w, h,
                     extent));
  }
  return ds;
}

Dataset TiledBlocks(std::string name, size_t n, const Rect& extent,
                    const std::vector<Cluster>& urban_clusters,
                    double rural_frac, double block_size, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(std::move(name));
  ds.Reserve(n);
  SizeDist urban_size{SizeDist::Kind::kUniform, block_size, block_size, 0.6};
  // Rural blocks are an order of magnitude larger and sparse, like real
  // census geography.
  SizeDist rural_size{SizeDist::Kind::kUniform, block_size * 8,
                      block_size * 8, 0.6};
  for (size_t i = 0; i < n; ++i) {
    const bool rural = rng.NextBernoulli(rural_frac);
    double w = 0;
    double h = 0;
    (rural ? rural_size : urban_size).Sample(&rng, &w, &h);
    const Point c = rural ? DrawCenter(&rng, extent, {}, 1.0)
                          : DrawCenter(&rng, extent, urban_clusters, 0.0);
    ds.Add(PlaceRect(c.x, c.y, w, h, extent));
  }
  return ds;
}

}  // namespace gen
}  // namespace sjsel
