#ifndef SJSEL_DATAGEN_GEO_GENERATORS_H_
#define SJSEL_DATAGEN_GEO_GENERATORS_H_

#include <cstdint>
#include <string>

#include "datagen/generators.h"
#include "geom/geometry.h"

namespace sjsel {
namespace gen {

/// Stream-like polylines (random walks) with their exact vertex chains —
/// the geometry whose MBRs RandomWalkPolylines() produces.
GeoDataset GenerateStreamPolylines(std::string name, size_t n,
                                   const Rect& extent,
                                   const PolylineSpec& spec, uint64_t seed);

/// Census-block-like simple polygons: star-shaped vertex rings (5-9
/// vertices) around cluster-mixture centers.
GeoDataset GenerateBlockPolygons(std::string name, size_t n,
                                 const Rect& extent,
                                 const std::vector<Cluster>& clusters,
                                 double background_frac, double mean_radius,
                                 uint64_t seed);

/// Point sites from a cluster mixture (exact points, not boxes).
GeoDataset GeneratePointSites(std::string name, size_t n, const Rect& extent,
                              const std::vector<Cluster>& clusters,
                              double background_frac, uint64_t seed);

}  // namespace gen
}  // namespace sjsel

#endif  // SJSEL_DATAGEN_GEO_GENERATORS_H_
