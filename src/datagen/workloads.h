#ifndef SJSEL_DATAGEN_WORKLOADS_H_
#define SJSEL_DATAGEN_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/dataset.h"

namespace sjsel {
namespace gen {

/// The eight datasets of the paper's evaluation (Section 4.1). The real
/// TIGER/Line 1995 and Sequoia extracts are not redistributable, so each is
/// replaced by a synthetic generator matching its cardinality, object type,
/// size distribution and spatial skew (see DESIGN.md, "Dataset
/// substitutions").
enum class PaperDataset {
  kTS,    ///< 194,971 stream polyline MBRs (IA/KS/MO/NE)
  kTCB,   ///< 556,696 census-block polygons
  kCAS,   ///< 98,451 California stream polylines
  kCAR,   ///< 2,249,727 California road polylines
  kSP,    ///< 62,555 Sequoia points
  kSPG,   ///< 79,607 Sequoia polygons
  kSCRC,  ///< 100,000 synthetic rects clustered at (0.4, 0.7)
  kSURA,  ///< 100,000 synthetic uniform rects
};

/// Paper cardinality of `which`.
size_t PaperCardinality(PaperDataset which);

/// Canonical short name ("TS", "TCB", ...).
std::string PaperDatasetName(PaperDataset which);

/// Instantiates a paper dataset at `scale` (0 < scale <= 1) of its paper
/// cardinality in the unit extent. Datasets of the same geographic region
/// (TS/TCB, CAS/CAR, SP/SPG) share cluster layouts so joins between them
/// are spatially correlated like the real layers.
Dataset MakePaperDataset(PaperDataset which, double scale, uint64_t seed);

/// One dataset pair used in the evaluation figures.
struct JoinPair {
  PaperDataset first;
  PaperDataset second;
  std::string Label() const {
    return PaperDatasetName(first) + " with " + PaperDatasetName(second);
  }
};

/// Figure 6's pair order: TS/TCB, CAS/CAR, SP/SPG, SCRC/SURA.
std::vector<JoinPair> Figure6Pairs();

/// Figure 7's pair order: TCB/TS, CAR/CAS, SPG/SP, SCRC/SURA.
std::vector<JoinPair> Figure7Pairs();

/// Reads the default experiment scale: SJSEL_FULL=1 selects scale 1.0
/// (paper cardinalities), otherwise returns `fallback` (default 0.2, sized
/// for a single-core CI box). SJSEL_SCALE=<float> overrides both.
double ExperimentScaleFromEnv(double fallback = 0.2);

}  // namespace gen
}  // namespace sjsel

#endif  // SJSEL_DATAGEN_WORKLOADS_H_
