#ifndef SJSEL_DATAGEN_GENERATORS_H_
#define SJSEL_DATAGEN_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/dataset.h"
#include "geom/rect.h"
#include "util/random.h"

namespace sjsel {
namespace gen {

/// Distribution of rectangle widths/heights used by the generators.
struct SizeDist {
  enum class Kind {
    kFixed,        ///< every rect is mean_w x mean_h
    kUniform,      ///< uniform in [mean * (1-spread), mean * (1+spread)]
    kExponential,  ///< exponential with the given mean (long thin tail)
  };

  Kind kind = Kind::kUniform;
  double mean_w = 0.001;
  double mean_h = 0.001;
  /// Relative half-range for kUniform (in [0, 1]).
  double spread = 0.5;

  /// Draws one (width, height) pair.
  void Sample(Rng* rng, double* w, double* h) const;
};

/// A Gaussian placement cluster.
struct Cluster {
  Point center;
  double sigma_x = 0.05;
  double sigma_y = 0.05;
  double weight = 1.0;
};

/// N rectangles with centers uniform over `extent` (the paper's SURA).
Dataset UniformRects(std::string name, size_t n, const Rect& extent,
                     const SizeDist& size, uint64_t seed);

/// N rectangles clustered around a single Gaussian center (the paper's
/// SCRC, which clusters at (0.4, 0.7) in the unit square). Centers are
/// re-drawn until they land inside `extent`.
Dataset GaussianClusterRects(std::string name, size_t n, const Rect& extent,
                             const Cluster& cluster, const SizeDist& size,
                             uint64_t seed);

/// N rectangles drawn from a mixture of clusters plus a `background_frac`
/// uniform component. Models multi-city skew (Sequoia/TIGER-like).
Dataset MultiClusterRects(std::string name, size_t n, const Rect& extent,
                          const std::vector<Cluster>& clusters,
                          double background_frac, const SizeDist& size,
                          uint64_t seed);

/// Zero-area MBRs (points) from the same mixture model — the paper's SP
/// (Sequoia points) shape.
Dataset ClusteredPoints(std::string name, size_t n, const Rect& extent,
                        const std::vector<Cluster>& clusters,
                        double background_frac, uint64_t seed);

/// Parameters for random-walk polyline generation.
struct PolylineSpec {
  int steps = 24;             ///< vertices per polyline
  double step_len = 0.004;    ///< mean step length
  double turn_sigma = 0.6;    ///< heading change stddev (radians)
  /// Start points come from this cluster mixture; empty means uniform.
  std::vector<Cluster> start_clusters;
  double background_frac = 0.3;
};

/// MBRs of random-walk polylines — elongated, spatially correlated boxes
/// like the TIGER stream layers (TS, CAS).
Dataset RandomWalkPolylines(std::string name, size_t n, const Rect& extent,
                            const PolylineSpec& spec, uint64_t seed);

/// Parameters for hierarchical line-network segment generation.
struct NetworkSpec {
  int num_trunks = 24;        ///< long backbone polylines
  int trunk_steps = 160;      ///< vertices per backbone
  double trunk_step_len = 0.01;
  double branch_frac = 0.55;  ///< fraction of segments on branches
  double jitter = 0.004;      ///< lateral scatter of segments off the line
  double segment_len = 0.002; ///< mean segment MBR extent
};

/// Very many tiny segment MBRs strung along a hierarchical line network —
/// the TIGER road layer (CAR) shape: extreme cardinality, tiny objects,
/// heavy 1-D clustering along curves.
Dataset LineNetworkSegments(std::string name, size_t n, const Rect& extent,
                            const NetworkSpec& spec, uint64_t seed);

/// Small near-square boxes tiling urban clusters over a sparse rural
/// background — the census-block layer (TCB) shape.
Dataset TiledBlocks(std::string name, size_t n, const Rect& extent,
                    const std::vector<Cluster>& urban_clusters,
                    double rural_frac, double block_size, uint64_t seed);

}  // namespace gen
}  // namespace sjsel

#endif  // SJSEL_DATAGEN_GENERATORS_H_
