#include "datagen/workloads.h"

#include <algorithm>
#include <cstdlib>

#include "datagen/generators.h"

namespace sjsel {
namespace gen {
namespace {

const Rect kUnitExtent(0.0, 0.0, 1.0, 1.0);

// Cluster layouts shared per geographic region so that same-region layers
// are spatially correlated (streams and census blocks of the same states do
// overlap heavily in reality).

// Midwest (TS/TCB): a few metro areas over a broad, fairly even landscape.
std::vector<Cluster> MidwestClusters() {
  return {
      {{0.22, 0.30}, 0.06, 0.05, 1.2}, {{0.58, 0.62}, 0.05, 0.06, 1.0},
      {{0.80, 0.25}, 0.04, 0.04, 0.8}, {{0.38, 0.78}, 0.05, 0.05, 0.9},
      {{0.70, 0.85}, 0.03, 0.03, 0.6}, {{0.12, 0.64}, 0.04, 0.05, 0.7},
  };
}

// California (CAS/CAR): clusters along a diagonal band (the coast/valley),
// strongly skewed.
std::vector<Cluster> CaliforniaClusters() {
  return {
      {{0.15, 0.88}, 0.035, 0.05, 1.6},  // Bay Area-like
      {{0.22, 0.74}, 0.03, 0.04, 0.9},   {{0.34, 0.58}, 0.04, 0.05, 1.1},
      {{0.45, 0.44}, 0.03, 0.04, 0.8},   {{0.58, 0.30}, 0.04, 0.04, 1.3},
      {{0.72, 0.18}, 0.045, 0.035, 1.8},  // LA-like
      {{0.84, 0.10}, 0.03, 0.03, 1.0},   {{0.40, 0.80}, 0.05, 0.06, 0.5},
  };
}

// Sequoia (SP/SPG): a handful of tight clusters over a sparse background.
std::vector<Cluster> SequoiaClusters() {
  return {
      {{0.30, 0.35}, 0.05, 0.07, 1.4},
      {{0.52, 0.60}, 0.04, 0.05, 1.0},
      {{0.70, 0.30}, 0.06, 0.04, 0.9},
      {{0.25, 0.75}, 0.03, 0.03, 0.6},
      {{0.80, 0.78}, 0.05, 0.05, 0.7},
  };
}

size_t Scaled(size_t n, double scale) {
  const double s = std::clamp(scale, 0.0001, 1.0);
  const size_t m = static_cast<size_t>(static_cast<double>(n) * s);
  return std::max<size_t>(m, 100);
}

}  // namespace

size_t PaperCardinality(PaperDataset which) {
  switch (which) {
    case PaperDataset::kTS:
      return 194971;
    case PaperDataset::kTCB:
      return 556696;
    case PaperDataset::kCAS:
      return 98451;
    case PaperDataset::kCAR:
      return 2249727;
    case PaperDataset::kSP:
      return 62555;
    case PaperDataset::kSPG:
      return 79607;
    case PaperDataset::kSCRC:
      return 100000;
    case PaperDataset::kSURA:
      return 100000;
  }
  return 0;
}

std::string PaperDatasetName(PaperDataset which) {
  switch (which) {
    case PaperDataset::kTS:
      return "TS";
    case PaperDataset::kTCB:
      return "TCB";
    case PaperDataset::kCAS:
      return "CAS";
    case PaperDataset::kCAR:
      return "CAR";
    case PaperDataset::kSP:
      return "SP";
    case PaperDataset::kSPG:
      return "SPG";
    case PaperDataset::kSCRC:
      return "SCRC";
    case PaperDataset::kSURA:
      return "SURA";
  }
  return "?";
}

Dataset MakePaperDataset(PaperDataset which, double scale, uint64_t seed) {
  const size_t n = Scaled(PaperCardinality(which), scale);
  const std::string name = PaperDatasetName(which);
  switch (which) {
    case PaperDataset::kTS: {
      PolylineSpec spec;
      spec.steps = 20;
      spec.step_len = 0.0035;
      spec.turn_sigma = 0.5;
      spec.start_clusters = MidwestClusters();
      spec.background_frac = 0.45;
      return RandomWalkPolylines(name, n, kUnitExtent, spec, seed ^ 0x1);
    }
    case PaperDataset::kTCB:
      return TiledBlocks(name, n, kUnitExtent, MidwestClusters(),
                         /*rural_frac=*/0.35, /*block_size=*/0.0018,
                         seed ^ 0x2);
    case PaperDataset::kCAS: {
      PolylineSpec spec;
      spec.steps = 22;
      spec.step_len = 0.004;
      spec.turn_sigma = 0.55;
      spec.start_clusters = CaliforniaClusters();
      spec.background_frac = 0.2;
      return RandomWalkPolylines(name, n, kUnitExtent, spec, seed ^ 0x3);
    }
    case PaperDataset::kCAR: {
      NetworkSpec spec;
      spec.num_trunks = 32;
      spec.trunk_steps = 200;
      spec.trunk_step_len = 0.008;
      spec.branch_frac = 0.55;
      spec.jitter = 0.003;
      spec.segment_len = 0.0012;
      return LineNetworkSegments(name, n, kUnitExtent, spec, seed ^ 0x4);
    }
    case PaperDataset::kSP:
      return ClusteredPoints(name, n, kUnitExtent, SequoiaClusters(),
                             /*background_frac=*/0.25, seed ^ 0x5);
    case PaperDataset::kSPG: {
      SizeDist size{SizeDist::Kind::kExponential, 0.003, 0.003, 0.0};
      return MultiClusterRects(name, n, kUnitExtent, SequoiaClusters(),
                               /*background_frac=*/0.25, size, seed ^ 0x6);
    }
    case PaperDataset::kSCRC: {
      SizeDist size{SizeDist::Kind::kUniform, 0.002, 0.002, 0.5};
      Cluster c{{0.4, 0.7}, 0.1, 0.1, 1.0};
      return GaussianClusterRects(name, n, kUnitExtent, c, size, seed ^ 0x7);
    }
    case PaperDataset::kSURA: {
      SizeDist size{SizeDist::Kind::kUniform, 0.002, 0.002, 0.5};
      return UniformRects(name, n, kUnitExtent, size, seed ^ 0x8);
    }
  }
  return Dataset("empty");
}

std::vector<JoinPair> Figure6Pairs() {
  return {{PaperDataset::kTS, PaperDataset::kTCB},
          {PaperDataset::kCAS, PaperDataset::kCAR},
          {PaperDataset::kSP, PaperDataset::kSPG},
          {PaperDataset::kSCRC, PaperDataset::kSURA}};
}

std::vector<JoinPair> Figure7Pairs() {
  return {{PaperDataset::kTCB, PaperDataset::kTS},
          {PaperDataset::kCAR, PaperDataset::kCAS},
          {PaperDataset::kSPG, PaperDataset::kSP},
          {PaperDataset::kSCRC, PaperDataset::kSURA}};
}

double ExperimentScaleFromEnv(double fallback) {
  if (const char* s = std::getenv("SJSEL_SCALE"); s != nullptr) {
    const double v = std::atof(s);
    if (v > 0.0 && v <= 1.0) return v;
  }
  if (const char* f = std::getenv("SJSEL_FULL"); f != nullptr) {
    if (f[0] == '1') return 1.0;
  }
  return fallback;
}

}  // namespace gen
}  // namespace sjsel
