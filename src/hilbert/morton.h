#ifndef SJSEL_HILBERT_MORTON_H_
#define SJSEL_HILBERT_MORTON_H_

#include <cstdint>

#include "geom/rect.h"

namespace sjsel {

/// 2-D Z-order (Morton) space-filling-curve encoding — the cheaper,
/// lower-locality alternative to the Hilbert curve. Provided so the
/// Sorted-Sampling / packing design choice (Hilbert vs Z-order) can be
/// measured rather than assumed.
class MortonCurve {
 public:
  /// A curve of the given order covers a 2^order x 2^order grid; order in
  /// [1, 31].
  explicit MortonCurve(int order);

  int order() const { return order_; }
  uint64_t resolution() const { return uint64_t{1} << order_; }

  /// Bit-interleaved index of cell (x, y); a bijection onto
  /// [0, resolution()^2).
  uint64_t XyToD(uint32_t x, uint32_t y) const;

  /// Inverse of XyToD.
  void DToXy(uint64_t d, uint32_t* x, uint32_t* y) const;

  /// Morton value of a point in `extent`, quantized onto the curve grid.
  uint64_t ValueForPoint(const Point& p, const Rect& extent) const;

  /// Morton value of the center of `r` within `extent`.
  uint64_t ValueForRect(const Rect& r, const Rect& extent) const;

 private:
  int order_;
};

}  // namespace sjsel

#endif  // SJSEL_HILBERT_MORTON_H_
