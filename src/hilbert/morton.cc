#include "hilbert/morton.h"

#include <algorithm>
#include <cassert>

namespace sjsel {
namespace {

// Spreads the low 32 bits of `v` into the even bit positions.
uint64_t Part1By1(uint32_t v) {
  uint64_t x = v;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

// Compacts the even bit positions of `x` into the low 32 bits.
uint32_t Compact1By1(uint64_t x) {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffULL;
  x = (x | (x >> 16)) & 0x00000000ffffffffULL;
  return static_cast<uint32_t>(x);
}

}  // namespace

MortonCurve::MortonCurve(int order) : order_(order) {
  assert(order >= 1 && order <= 31);
  if (order_ < 1) order_ = 1;
  if (order_ > 31) order_ = 31;
}

uint64_t MortonCurve::XyToD(uint32_t x, uint32_t y) const {
  return Part1By1(x) | (Part1By1(y) << 1);
}

void MortonCurve::DToXy(uint64_t d, uint32_t* x, uint32_t* y) const {
  *x = Compact1By1(d);
  *y = Compact1By1(d >> 1);
}

uint64_t MortonCurve::ValueForPoint(const Point& p, const Rect& extent) const {
  const uint64_t n = resolution();
  auto quantize = [n](double v, double lo, double hi) -> uint32_t {
    if (hi <= lo) return 0;
    double t = (v - lo) / (hi - lo);
    t = std::clamp(t, 0.0, 1.0);
    uint64_t q = static_cast<uint64_t>(t * static_cast<double>(n));
    if (q >= n) q = n - 1;
    return static_cast<uint32_t>(q);
  };
  return XyToD(quantize(p.x, extent.min_x, extent.max_x),
               quantize(p.y, extent.min_y, extent.max_y));
}

uint64_t MortonCurve::ValueForRect(const Rect& r, const Rect& extent) const {
  return ValueForPoint(r.center(), extent);
}

}  // namespace sjsel
