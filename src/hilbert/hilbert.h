#ifndef SJSEL_HILBERT_HILBERT_H_
#define SJSEL_HILBERT_HILBERT_H_

#include <cstdint>

#include "geom/rect.h"

namespace sjsel {

/// 2-D Hilbert space-filling-curve encoding.
///
/// Used in two places, mirroring the paper: Sorted Sampling (SS) orders data
/// items by the Hilbert value of their MBR centers before systematic
/// sampling, and the Hilbert-packed R-tree bulk loader (Kamel & Faloutsos,
/// "On Packing R-trees") sorts leaf entries the same way.
class HilbertCurve {
 public:
  /// A curve of the given order covers a 2^order x 2^order integer grid.
  /// Order must be in [1, 31].
  explicit HilbertCurve(int order);

  int order() const { return order_; }
  /// Grid resolution per axis (2^order).
  uint64_t resolution() const { return uint64_t{1} << order_; }

  /// Distance along the curve of integer cell (x, y); x and y must be less
  /// than resolution(). The mapping is a bijection onto
  /// [0, resolution()^2).
  uint64_t XyToD(uint32_t x, uint32_t y) const;

  /// Inverse of XyToD.
  void DToXy(uint64_t d, uint32_t* x, uint32_t* y) const;

  /// Hilbert value of a point in `extent`, quantized onto the curve grid.
  /// Points outside the extent are clamped.
  uint64_t ValueForPoint(const Point& p, const Rect& extent) const;

  /// Hilbert value of the center of `r` within `extent` — the sort key the
  /// paper's SS scheme and the packed R-tree use.
  uint64_t ValueForRect(const Rect& r, const Rect& extent) const;

 private:
  int order_;
};

}  // namespace sjsel

#endif  // SJSEL_HILBERT_HILBERT_H_
