#include "hilbert/hilbert.h"

#include <algorithm>
#include <cassert>

namespace sjsel {
namespace {

// Rotates/flips the quadrant-local coordinates; the standard iterative
// Hilbert transform (see Hamilton, "Compact Hilbert Indices", or the classic
// Warren formulation).
void Rot(uint64_t n, uint32_t* x, uint32_t* y, uint64_t rx, uint64_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = static_cast<uint32_t>(n - 1 - *x);
      *y = static_cast<uint32_t>(n - 1 - *y);
    }
    std::swap(*x, *y);
  }
}

}  // namespace

HilbertCurve::HilbertCurve(int order) : order_(order) {
  assert(order >= 1 && order <= 31);
  if (order_ < 1) order_ = 1;
  if (order_ > 31) order_ = 31;
}

uint64_t HilbertCurve::XyToD(uint32_t x, uint32_t y) const {
  const uint64_t n = resolution();
  uint64_t d = 0;
  for (uint64_t s = n / 2; s > 0; s /= 2) {
    const uint64_t rx = (x & s) > 0 ? 1 : 0;
    const uint64_t ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    Rot(n, &x, &y, rx, ry);
  }
  return d;
}

void HilbertCurve::DToXy(uint64_t d, uint32_t* x, uint32_t* y) const {
  const uint64_t n = resolution();
  uint32_t rx = 0;
  uint32_t ry = 0;
  uint64_t t = d;
  *x = 0;
  *y = 0;
  for (uint64_t s = 1; s < n; s *= 2) {
    rx = static_cast<uint32_t>(1 & (t / 2));
    ry = static_cast<uint32_t>(1 & (t ^ rx));
    Rot(s, x, y, rx, ry);
    *x += static_cast<uint32_t>(s * rx);
    *y += static_cast<uint32_t>(s * ry);
    t /= 4;
  }
}

uint64_t HilbertCurve::ValueForPoint(const Point& p, const Rect& extent) const {
  const uint64_t n = resolution();
  auto quantize = [n](double v, double lo, double hi) -> uint32_t {
    if (hi <= lo) return 0;
    double t = (v - lo) / (hi - lo);
    t = std::clamp(t, 0.0, 1.0);
    uint64_t q = static_cast<uint64_t>(t * static_cast<double>(n));
    if (q >= n) q = n - 1;
    return static_cast<uint32_t>(q);
  };
  return XyToD(quantize(p.x, extent.min_x, extent.max_x),
               quantize(p.y, extent.min_y, extent.max_y));
}

uint64_t HilbertCurve::ValueForRect(const Rect& r, const Rect& extent) const {
  return ValueForPoint(r.center(), extent);
}

}  // namespace sjsel
