#ifndef SJSEL_SERVER_CLIENT_H_
#define SJSEL_SERVER_CLIENT_H_

// Minimal client for the estimation server (docs/SERVER.md): connects to
// the Unix-domain socket and exchanges one NDJSON line per call. Used by
// `sjsel client` and the server tests; also the reference implementation
// for clients in other languages.

#include <string>

#include "util/result.h"

namespace sjsel {
namespace server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the server's socket. Fails if nothing is listening.
  Status Connect(const std::string& socket_path);

  /// Connect with bounded exponential backoff on *transient* failures —
  /// ECONNREFUSED (socket exists, nobody accepting yet) and ENOENT (the
  /// daemon has not bound the path yet), the two races a client starting
  /// alongside the server actually hits. Sleeps initial_backoff_ms,
  /// 2x, 4x, ... between at most `attempts` tries (capped at 1s per
  /// step); any other error, e.g. a bad path, fails immediately.
  Status ConnectWithRetry(const std::string& socket_path, int attempts,
                          int initial_backoff_ms);

  /// Sends one request line (newline appended here) and blocks for the
  /// response line. The server answers in order, so calls pipeline
  /// naturally on one connection. If the server hangs up before reading
  /// the request (admission-control rejection), the terminal error
  /// response it sent first is still returned.
  Result<std::string> Call(const std::string& request_line);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace server
}  // namespace sjsel

#endif  // SJSEL_SERVER_CLIENT_H_
