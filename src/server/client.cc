#include "server/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sjsel {
namespace server {

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status Client::Connect(const std::string& socket_path) {
  Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int err = errno;
    Close();
    // Re-publish the connect errno (Close may clobber it) so
    // ConnectWithRetry can classify the failure.
    errno = err;
    return Status::IoError("connect " + socket_path + ": " +
                           std::strerror(err));
  }
  return Status::OK();
}

Status Client::ConnectWithRetry(const std::string& socket_path, int attempts,
                                int initial_backoff_ms) {
  attempts = std::max(attempts, 1);
  int backoff_ms = std::max(initial_backoff_ms, 1);
  Status last = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, 1000);
    }
    errno = 0;
    last = Connect(socket_path);
    if (last.ok()) return last;
    // Retry only the two transient startup races; anything else (bad
    // path, permissions) will not fix itself by waiting.
    if (errno != ECONNREFUSED && errno != ENOENT) return last;
  }
  return last;
}

Result<std::string> Client::Call(const std::string& request_line) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  const std::string out = request_line + "\n";
  size_t off = 0;
  bool send_failed = false;
  while (off < out.size()) {
    // MSG_NOSIGNAL: a server that closed mid-send must surface as an
    // IoError, not kill the client process with SIGPIPE.
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // The server may close before reading the request — admission
    // control rejects at accept time — after sending a terminal error
    // response. That response is still readable, so fall through and
    // try to drain it before reporting the write failure.
    send_failed = true;
    break;
  }
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n == 0) {
      return Status::IoError(send_failed
                                 ? "write: connection closed by server"
                                 : "server closed the connection mid-response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read: ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace server
}  // namespace sjsel
