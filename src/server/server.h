#ifndef SJSEL_SERVER_SERVER_H_
#define SJSEL_SERVER_SERVER_H_

// `sjsel serve`: a long-running daemon that owns the histogram catalog
// and answers concurrent estimate / explain / stats / plan requests over
// a newline-delimited JSON protocol on a Unix-domain socket. Protocol
// and operations: docs/SERVER.md.
//
// Architecture: one accept thread + a fixed pool of worker threads
// behind a bounded admission queue of accepted connections. A worker
// owns one connection at a time and serves its requests in order;
// concurrency comes from serving many connections at once. When the
// queue is full, new connections are rejected immediately with an
// `overloaded` error instead of queueing without bound.
//
// Observability is armed per request, not per process
// (obs::ScopedMetricsArm / obs::ScopedTraceArm): every served request
// records `server.*` metrics and trace spans into the global registry,
// aggregated across the daemon lifetime, and a `stats` request (or the
// CLI's --metrics/--trace flags on `serve`) snapshots them.
//
// Shutdown is graceful: stop accepting, serve every queued connection's
// in-flight request, then join. Triggers: Stop()/RequestStop(), a
// `shutdown` request, or (in the CLI) SIGINT/SIGTERM.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/guarded_estimator.h"
#include "geom/dataset.h"
#include "obs/slowlog.h"
#include "server/catalog.h"
#include "server/protocol.h"
#include "util/result.h"

namespace sjsel {
namespace server {

struct ServerOptions {
  /// Filesystem path of the Unix-domain socket (sun_path limit applies,
  /// ~107 bytes). A stale socket file left by a crashed daemon is
  /// replaced; any other existing file is an error.
  std::string socket_path;
  /// Worker threads — the number of connections served concurrently.
  int workers = 4;
  /// Accepted connections waiting for a worker beyond those being
  /// served. Connection number workers + max_queue + 1 is rejected with
  /// an `overloaded` error.
  int max_queue = 64;
  /// A request line longer than this (without a newline) closes the
  /// connection with a `bad_request` error.
  size_t max_line_bytes = 1 << 20;
  /// Estimator configuration shared by the catalog, the estimate op and
  /// the planner op. Defaults match the CLI `estimate` command.
  GuardedEstimatorOptions estimator;
  /// Online accuracy monitor (docs/OBSERVABILITY.md "Online accuracy
  /// monitor"): the fraction of estimate / stream_estimate requests
  /// audited against a reference answer computed alongside the served
  /// one. 0 disables auditing entirely; 1 audits every request. The
  /// monitor publishes `accuracy.audits`, the `accuracy.rel_error`
  /// histogram (relative error in parts-per-million) and
  /// `accuracy.drift_alarm` when the error exceeds audit_alarm.
  double audit_rate = 0.0;
  /// Relative-error threshold above which an audited request raises
  /// `accuracy.drift_alarm` (counter + warn log + trace instant).
  double audit_alarm = 0.5;
  /// When both audited datasets have at most this many rectangles the
  /// reference is the exact plane-sweep join count; otherwise (or when 0)
  /// the sampling estimator's answer is used as the reference.
  uint64_t audit_exact_cap = 0;
  /// Entries the slow-request ring keeps (the `slowlog` op reports the
  /// top K requests by latency since startup).
  size_t slowlog_capacity = 32;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  /// Stops and joins if still running (as if Stop() were called).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the accept + worker threads.
  Status Start();

  /// Asks the server to stop: no new connections are accepted; queued
  /// and in-flight requests finish. Safe from any thread, including
  /// workers (the `shutdown` op calls this). Returns without waiting.
  void RequestStop();

  /// True once RequestStop()/Stop() has been called (or a `shutdown`
  /// request arrived).
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// Graceful shutdown: RequestStop(), drain, join all threads, remove
  /// the socket file. Idempotent. Must not be called from a worker.
  void Stop();

  /// Blocks until a stop is requested, polling `poll` between checks.
  void WaitForStopRequest();

  /// Handles one request line and returns the response line (without the
  /// trailing newline). This is the whole protocol minus the socket —
  /// exposed so tests can drive it in-process; the socket workers call
  /// exactly this.
  std::string HandleLine(const std::string& line);

  const ServerOptions& options() const { return options_; }
  ServerCatalog& catalog() { return catalog_; }

  /// Requests answered since Start (any op, ok or error response sent).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Whole seconds since construction (Start() re-bases it), reported by
  /// the `stats` and `health` ops.
  uint64_t uptime_seconds() const;

  /// The slow-request ring behind the `slowlog` op.
  const obs::SlowRequestLog& slowlog() const { return slowlog_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  /// Dispatches a parsed request (its request_id already filled in) and
  /// appends a short annotation for the slowlog — "rung=..." on
  /// estimates, "error:<code>" on failures — to *note.
  std::string Dispatch(const Request& req, std::string* note);
  /// "srv-<pid>-<n>" for requests that arrive without a request_id.
  std::string GenerateRequestId();
  /// True for every 1/audit_rate-th call (deterministic, not random);
  /// always false when audit_rate == 0.
  bool ShouldAudit();
  /// Runs the reference estimator for a served estimate and publishes the
  /// `accuracy.*` metrics (and the drift alarm when warranted).
  void AuditEstimate(const Request& req, const Dataset& a, const Dataset& b,
                     double served_pairs);
  void PublishAuditResult(const Request& req, const char* reference,
                          double served_pairs, double reference_pairs);

  ServerOptions options_;
  ServerCatalog catalog_;
  obs::SlowRequestLog slowlog_;

  int listen_fd_ = -1;
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> next_request_seq_{1};
  std::atomic<uint64_t> audit_seq_{0};
  /// Derived from audit_rate at construction: audit every Nth candidate.
  uint64_t audit_every_ = 0;
  std::chrono::steady_clock::time_point start_time_;
  bool started_ = false;
  bool joined_ = false;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace server
}  // namespace sjsel

#endif  // SJSEL_SERVER_SERVER_H_
