#ifndef SJSEL_SERVER_SERVER_H_
#define SJSEL_SERVER_SERVER_H_

// `sjsel serve`: a long-running daemon that owns the histogram catalog
// and answers concurrent estimate / explain / stats / plan requests over
// a newline-delimited JSON protocol on a Unix-domain socket. Protocol
// and operations: docs/SERVER.md.
//
// Architecture: one accept thread + a fixed pool of worker threads
// behind a bounded admission queue of accepted connections. A worker
// owns one connection at a time and serves its requests in order;
// concurrency comes from serving many connections at once. When the
// queue is full, new connections are rejected immediately with an
// `overloaded` error instead of queueing without bound.
//
// Observability is armed per request, not per process
// (obs::ScopedMetricsArm / obs::ScopedTraceArm): every served request
// records `server.*` metrics and trace spans into the global registry,
// aggregated across the daemon lifetime, and a `stats` request (or the
// CLI's --metrics/--trace flags on `serve`) snapshots them.
//
// Shutdown is graceful: stop accepting, serve every queued connection's
// in-flight request, then join. Triggers: Stop()/RequestStop(), a
// `shutdown` request, or (in the CLI) SIGINT/SIGTERM.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/guarded_estimator.h"
#include "server/catalog.h"
#include "server/protocol.h"
#include "util/result.h"

namespace sjsel {
namespace server {

struct ServerOptions {
  /// Filesystem path of the Unix-domain socket (sun_path limit applies,
  /// ~107 bytes). A stale socket file left by a crashed daemon is
  /// replaced; any other existing file is an error.
  std::string socket_path;
  /// Worker threads — the number of connections served concurrently.
  int workers = 4;
  /// Accepted connections waiting for a worker beyond those being
  /// served. Connection number workers + max_queue + 1 is rejected with
  /// an `overloaded` error.
  int max_queue = 64;
  /// A request line longer than this (without a newline) closes the
  /// connection with a `bad_request` error.
  size_t max_line_bytes = 1 << 20;
  /// Estimator configuration shared by the catalog, the estimate op and
  /// the planner op. Defaults match the CLI `estimate` command.
  GuardedEstimatorOptions estimator;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  /// Stops and joins if still running (as if Stop() were called).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the accept + worker threads.
  Status Start();

  /// Asks the server to stop: no new connections are accepted; queued
  /// and in-flight requests finish. Safe from any thread, including
  /// workers (the `shutdown` op calls this). Returns without waiting.
  void RequestStop();

  /// True once RequestStop()/Stop() has been called (or a `shutdown`
  /// request arrived).
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// Graceful shutdown: RequestStop(), drain, join all threads, remove
  /// the socket file. Idempotent. Must not be called from a worker.
  void Stop();

  /// Blocks until a stop is requested, polling `poll` between checks.
  void WaitForStopRequest();

  /// Handles one request line and returns the response line (without the
  /// trailing newline). This is the whole protocol minus the socket —
  /// exposed so tests can drive it in-process; the socket workers call
  /// exactly this.
  std::string HandleLine(const std::string& line);

  const ServerOptions& options() const { return options_; }
  ServerCatalog& catalog() { return catalog_; }

  /// Requests answered since Start (any op, ok or error response sent).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  std::string Dispatch(const Request& req);

  ServerOptions options_;
  ServerCatalog catalog_;

  int listen_fd_ = -1;
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> requests_served_{0};
  bool started_ = false;
  bool joined_ = false;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace server
}  // namespace sjsel

#endif  // SJSEL_SERVER_SERVER_H_
