#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "core/gh_histogram.h"
#include "core/kernels.h"
#include "core/sampling.h"
#include "join/plane_sweep.h"
#include "obs/explain.h"
#include "obs/log.h"
#include "stream/ingest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "planner/join_planner.h"
#include "server/protocol.h"
#include "stats/dataset_stats.h"
#include "util/build_info.h"
#include "util/table.h"

namespace sjsel {
namespace server {
namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Writes the whole buffer, retrying on EINTR / partial writes. Returns
// false on any hard error (the peer hung up — nothing left to do).
// MSG_NOSIGNAL: a vanished client must surface as EPIPE, not kill the
// daemon with SIGPIPE.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool SendResponseLine(int fd, const std::string& response) {
  return WriteAll(fd, response + "\n");
}

// Tracks the request's dispatch deadline (docs/SERVER.md: the budget
// covers queueing and parsing; compute is not preempted).
struct Deadline {
  int64_t start_ms = 0;
  double limit_ms = 0.0;
  bool armed = false;

  bool Expired() const {
    return armed &&
           static_cast<double>(SteadyNowMs() - start_ms) >= limit_ms;
  }
};

void CountFailure(const std::string& code) {
  SJSEL_METRIC_INC(std::string("server.requests.failed.") + code);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      catalog_(options_.estimator),
      slowlog_(options_.slowlog_capacity),
      start_time_(std::chrono::steady_clock::now()) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_queue < 0) options_.max_queue = 0;
  if (options_.audit_rate > 0.0) {
    // Deterministic 1-in-N selection, N = round(1 / rate) — the first
    // candidate is always audited, so rate=1 audits everything.
    const double rate = std::min(1.0, options_.audit_rate);
    audit_every_ = static_cast<uint64_t>(std::llround(1.0 / rate));
    if (audit_every_ < 1) audit_every_ = 1;
  }
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path (empty or longer than " +
                                   std::to_string(sizeof(addr.sun_path) - 1) +
                                   " bytes)");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  // A stale socket left by a crashed daemon is safe to replace; refuse to
  // clobber anything that is not a socket.
  struct stat st;
  if (::lstat(options_.socket_path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      return Status::AlreadyExists(options_.socket_path +
                                   " exists and is not a socket");
    }
    ::unlink(options_.socket_path.c_str());
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind " + options_.socket_path + ": " + msg);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    return Status::IoError("listen: " + msg);
  }

  started_ = true;
  joined_ = false;
  start_time_ = std::chrono::steady_clock::now();
  stop_requested_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void Server::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
}

void Server::Stop() {
  if (!started_ || joined_) return;
  RequestStop();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
  joined_ = true;
}

void Server::WaitForStopRequest() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock, [this] { return stop_requested(); });
}

void Server::AcceptLoop() {
  while (!stop_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;  // timeout, EINTR — re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    obs::ScopedMetricsArm metrics_arm;
    SJSEL_METRIC_INC("server.connections.accepted");
    std::unique_lock<std::mutex> lock(queue_mu_);
    const size_t queue_depth = pending_fds_.size();
    if (queue_depth >= static_cast<size_t>(options_.max_queue)) {
      lock.unlock();
      // Admission control: reject now rather than queue without bound.
      SJSEL_METRIC_INC("server.requests.rejected.overloaded");
      SJSEL_LOG_WARN("server.overloaded",
                     obs::LogFields()
                         .Uint("queue_depth", queue_depth)
                         .Int("queue_cap", options_.max_queue));
      SendResponseLine(fd, ErrorResponse(JsonValue::Null(), kErrOverloaded,
                                         "admission queue full"));
      ::close(fd);
      continue;
    }
    SJSEL_METRIC_GAUGE_MAX("server.queue_depth.max",
                           pending_fds_.size() + 1);
    pending_fds_.push_back(fd);
    lock.unlock();
    queue_cv_.notify_one();
  }
}

void Server::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_requested() || !pending_fds_.empty();
      });
      // Graceful drain: queued connections are still served after a stop
      // request; the worker exits only once the queue is empty.
      if (pending_fds_.empty()) return;
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    ServeConnection(fd);
  }
}

void Server::ServeConnection(int fd) {
  SJSEL_TRACE_SPAN("server.connection");
  std::string buffer;
  bool open = true;
  while (open) {
    // Serve every complete line already buffered.
    size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      open = SendResponseLine(fd, HandleLine(line));
    }
    if (!open || stop_requested()) break;
    if (buffer.size() > options_.max_line_bytes) {
      obs::ScopedMetricsArm metrics_arm;
      CountFailure(kErrBadRequest);
      SendResponseLine(fd, ErrorResponse(JsonValue::Null(), kErrBadRequest,
                                         "request line too long"));
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;  // timeout — re-check the stop flag
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n == 0) break;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  obs::ScopedMetricsArm metrics_arm;
  SJSEL_METRIC_INC("server.connections.closed");
}

std::string Server::GenerateRequestId() {
  return "srv-" + std::to_string(static_cast<long long>(::getpid())) + "-" +
         std::to_string(
             next_request_seq_.fetch_add(1, std::memory_order_relaxed));
}

uint64_t Server::uptime_seconds() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

bool Server::ShouldAudit() {
  if (audit_every_ == 0) return false;
  return audit_seq_.fetch_add(1, std::memory_order_relaxed) % audit_every_ ==
         0;
}

std::string Server::HandleLine(const std::string& line) {
  // Observability is armed for the duration of this request only; values
  // aggregate across requests in the global registry.
  obs::ScopedMetricsArm metrics_arm;
  obs::ScopedTraceArm trace_arm;
  SJSEL_METRIC_INC("server.requests.received");
  const auto start = std::chrono::steady_clock::now();

  Deadline deadline;
  deadline.start_ms = SteadyNowMs();
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  std::string request_id;
  std::string op;
  std::string note;
  std::string response;
  {
    auto parsed = ParseRequest(line);
    if (!parsed.ok()) {
      CountFailure(kErrBadRequest);
      request_id = GenerateRequestId();
      note = std::string("error:") + kErrBadRequest;
      response = ErrorResponse(JsonValue::Null(), kErrBadRequest,
                               parsed.status().message(), request_id);
    } else {
      Request& req = *parsed;
      if (req.request_id.empty()) req.request_id = GenerateRequestId();
      request_id = req.request_id;
      op = req.op;
      // The span detail carries the correlation id, so one grep joins the
      // trace file with the response and the log (docs/OBSERVABILITY.md
      // "Request correlation"). The span closes before the latency is
      // recorded below, keeping trace and histogram consistent.
      SJSEL_TRACE_SPAN("server.request", "request_id=%s op=%s",
                       req.request_id.c_str(), req.op.c_str());
      deadline.limit_ms = req.deadline_ms;
      deadline.armed = req.has_deadline;
      // Pure-observability ops stay answerable while draining: a stopping
      // server is precisely when scraping health/metrics/slowlog matters.
      const bool drain_ok = req.op == "shutdown" || req.op == "ping" ||
                            req.op == "health" || req.op == "metrics" ||
                            req.op == "slowlog";
      if (stop_requested() && !drain_ok) {
        CountFailure(kErrShuttingDown);
        note = std::string("error:") + kErrShuttingDown;
        response = ErrorResponse(req.id, kErrShuttingDown,
                                 "server is shutting down", req.request_id);
      } else if (deadline.Expired()) {
        CountFailure(kErrDeadline);
        note = std::string("error:") + kErrDeadline;
        response = ErrorResponse(req.id, kErrDeadline,
                                 "deadline exceeded before dispatch",
                                 req.request_id);
      } else {
        response = Dispatch(req, &note);
      }
    }
  }

  const uint64_t latency_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  obs::RecordLatencyMicros(
      obs::MetricsRegistry::Global().GetHistogram("server.request_us"),
      latency_us);
  const bool ok = note.rfind("error:", 0) != 0;
  obs::SlowRequestEntry entry;
  entry.request_id = request_id;
  entry.op = op;
  entry.latency_us = latency_us;
  entry.ok = ok;
  entry.note = note;
  slowlog_.Record(std::move(entry));
  SJSEL_METRIC_INC("server.slowlog.recorded");
  SJSEL_LOG_DEBUG("server.request", obs::LogFields()
                                        .Str("request_id", request_id)
                                        .Str("op", op)
                                        .Uint("latency_us", latency_us)
                                        .Bool("ok", ok)
                                        .Str("note", note));
  return response;
}

std::string Server::Dispatch(const Request& req, std::string* note) {
  const auto fail = [&](const char* code,
                        const std::string& message) -> std::string {
    CountFailure(code);
    *note = std::string("error:") + code;
    return ErrorResponse(req.id, code, message, req.request_id);
  };
  const auto fail_status = [&](const Status& status) -> std::string {
    return fail(ErrorCodeForStatus(status), status.message());
  };
  const auto answered = [&](JsonValue result) -> std::string {
    SJSEL_METRIC_INC("server.requests.answered");
    return OkResponse(req.id, std::move(result), req.request_id);
  };

  if (req.op == "ping") {
    return answered(JsonValue::Object().Set("pong", JsonValue::Bool(true)));
  }

  if (req.op == "shutdown") {
    RequestStop();
    return answered(
        JsonValue::Object().Set("stopping", JsonValue::Bool(true)));
  }

  if (req.op == "estimate") {
    SJSEL_TRACE_SPAN("server.op.estimate");
    if (req.a.empty() || req.b.empty()) {
      return fail(kErrBadRequest, "estimate needs 'a' and 'b' paths");
    }
    const auto result = catalog_.Estimate(req.a, req.b);
    if (!result.ok()) return fail_status(result.status());
    const EstimateResult& est = *result;
    *note = std::string("rung=") + EstimatorRungName(est.rung);
    if (!est.degradation_reason.empty()) {
      *note += " degraded";
      SJSEL_LOG_WARN("estimator.degraded",
                     obs::LogFields()
                         .Str("request_id", req.request_id)
                         .Str("a", req.a)
                         .Str("b", req.b)
                         .Str("rung", EstimatorRungName(est.rung))
                         .Str("reason", est.degradation_reason));
    }
    if (ShouldAudit()) {
      // The datasets are already cached by the estimate above, so these
      // lookups cannot re-do the load.
      const auto da = catalog_.GetDataset(req.a);
      const auto db = catalog_.GetDataset(req.b);
      if (da.ok() && db.ok()) {
        AuditEstimate(req, **da, **db, est.outcome.estimated_pairs);
      }
    }
    JsonValue out = JsonValue::Object();
    out.Set("estimated_pairs", JsonValue::Number(est.outcome.estimated_pairs));
    out.Set("estimated_pairs_text",
            JsonValue::String(FormatDouble(est.outcome.estimated_pairs, 1)));
    out.Set("selectivity", JsonValue::Number(est.outcome.selectivity));
    out.Set("selectivity_text",
            JsonValue::String(FormatDouble(est.outcome.selectivity, 6)));
    out.Set("rung", JsonValue::String(EstimatorRungName(est.rung)));
    out.Set("rung_label", JsonValue::String(est.rung_label));
    out.Set("degradation_reason", JsonValue::String(est.degradation_reason));
    out.Set("clamped", JsonValue::Bool(est.clamped));
    out.Set("validation_a", JsonValue::String(est.validation_a.ToString()));
    out.Set("validation_b", JsonValue::String(est.validation_b.ToString()));
    return answered(std::move(out));
  }

  if (req.op == "explain") {
    SJSEL_TRACE_SPAN("server.op.explain");
    if (req.a.empty() || req.b.empty()) {
      return fail(kErrBadRequest, "explain needs 'a' and 'b' paths");
    }
    obs::ExplainOptions options;
    if (req.scheme == "gh") {
      options.scheme = obs::ExplainScheme::kGh;
    } else if (req.scheme == "ph") {
      options.scheme = obs::ExplainScheme::kPh;
    } else {
      return fail(kErrBadRequest, "unknown scheme '" + req.scheme + "'");
    }
    options.level = req.level;
    options.top_k = req.top;
    options.with_exact = req.exact;
    options.guarded = options_.estimator;
    const auto a = catalog_.GetDataset(req.a);
    if (!a.ok()) return fail_status(a.status());
    const auto b = catalog_.GetDataset(req.b);
    if (!b.ok()) return fail_status(b.status());
    const auto report = obs::BuildEstimateExplain(**a, **b, options);
    if (!report.ok()) return fail_status(report.status());
    // The explain renderer already emits deterministic JSON; parse it so
    // the report nests as an object instead of an escaped string.
    auto report_json = JsonValue::Parse(obs::RenderExplainJson(*report));
    if (!report_json.ok()) return fail_status(report_json.status());
    return answered(JsonValue::Object().Set("report",
                                            std::move(report_json).value()));
  }

  if (req.op == "stats") {
    SJSEL_TRACE_SPAN("server.op.stats");
    if (!req.path.empty()) {
      const auto ds = catalog_.GetDataset(req.path);
      if (!ds.ok()) return fail_status(ds.status());
      const Rect extent = (*ds)->ComputeExtent();
      const DatasetStats stats = DatasetStats::Compute(**ds, extent);
      JsonValue out = JsonValue::Object();
      out.Set("name", JsonValue::String((*ds)->name()));
      out.Set("n", JsonValue::Int(static_cast<long long>(stats.n)));
      out.Set("coverage", JsonValue::Number(stats.coverage));
      out.Set("avg_width", JsonValue::Number(stats.avg_width));
      out.Set("avg_height", JsonValue::Number(stats.avg_height));
      out.Set("extent_area", JsonValue::Number(stats.extent_area));
      return answered(std::move(out));
    }
    // Without a path: the server's own lifetime statistics — the metrics
    // snapshot aggregated over every request served so far, plus the
    // kernel dispatch decision every estimate this daemon computes runs
    // with (docs/ARCHITECTURE.md, "Data-level parallelism").
    auto metrics = JsonValue::Parse(
        obs::MetricsRegistry::Global().SnapshotJson());
    if (!metrics.ok()) return fail_status(metrics.status());
    JsonValue out = JsonValue::Object();
    out.Set("requests_served",
            JsonValue::Int(static_cast<long long>(requests_served())));
    out.Set("uptime_s",
            JsonValue::Int(static_cast<long long>(uptime_seconds())));
    out.Set("version", JsonValue::String(kSjselVersion));
    out.Set("compiler", JsonValue::String(BuildCompiler()));
    const KernelDispatchInfo dispatch = GetKernelDispatchInfo();
    out.Set("kernel_backend",
            JsonValue::String(KernelBackendName(dispatch.active)));
    out.Set("kernel_dispatch", JsonValue::String(dispatch.source));
    out.Set("kernel_detected",
            JsonValue::String(KernelBackendName(dispatch.detected)));
    out.Set("metrics", std::move(metrics).value());
    return answered(std::move(out));
  }

  if (req.op == "metrics") {
    SJSEL_TRACE_SPAN("server.op.metrics");
    // Both renderings of the same registry state: `openmetrics` is the
    // scrape-ready exposition text, `snapshot` the structured view.
    auto& registry = obs::MetricsRegistry::Global();
    auto snapshot = JsonValue::Parse(registry.SnapshotJson());
    if (!snapshot.ok()) return fail_status(snapshot.status());
    JsonValue out = JsonValue::Object();
    out.Set("openmetrics", JsonValue::String(registry.SnapshotOpenMetrics()));
    out.Set("snapshot", std::move(snapshot).value());
    return answered(std::move(out));
  }

  if (req.op == "health") {
    SJSEL_TRACE_SPAN("server.op.health");
    const ServerCatalog::CacheStats cache = catalog_.Stats();
    size_t queue_depth = 0;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      queue_depth = pending_fds_.size();
    }
    const bool draining = stop_requested();
    const KernelDispatchInfo dispatch = GetKernelDispatchInfo();
    JsonValue out = JsonValue::Object();
    out.Set("status", JsonValue::String(draining ? "draining" : "ok"));
    out.Set("ready", JsonValue::Bool(!draining));
    out.Set("uptime_s",
            JsonValue::Int(static_cast<long long>(uptime_seconds())));
    out.Set("version", JsonValue::String(kSjselVersion));
    out.Set("compiler", JsonValue::String(BuildCompiler()));
    out.Set("kernel_backend",
            JsonValue::String(KernelBackendName(dispatch.active)));
    out.Set("workers", JsonValue::Int(options_.workers));
    out.Set("queue_depth", JsonValue::Int(static_cast<long long>(queue_depth)));
    out.Set("queue_cap", JsonValue::Int(options_.max_queue));
    out.Set("datasets_cached",
            JsonValue::Int(static_cast<long long>(cache.datasets)));
    out.Set("estimates_cached",
            JsonValue::Int(static_cast<long long>(cache.estimates)));
    out.Set("streams_open",
            JsonValue::Int(static_cast<long long>(cache.streams)));
    out.Set("streams_poisoned",
            JsonValue::Int(static_cast<long long>(cache.poisoned_streams)));
    out.Set("requests_served",
            JsonValue::Int(static_cast<long long>(requests_served())));
    out.Set("audit_rate", JsonValue::Number(options_.audit_rate));
    return answered(std::move(out));
  }

  if (req.op == "slowlog") {
    SJSEL_TRACE_SPAN("server.op.slowlog");
    const std::vector<obs::SlowRequestEntry> entries = slowlog_.Snapshot();
    const size_t limit =
        req.top > 0 ? std::min(entries.size(), static_cast<size_t>(req.top))
                    : entries.size();
    JsonValue arr = JsonValue::Array();
    for (size_t i = 0; i < limit; ++i) {
      const obs::SlowRequestEntry& e = entries[i];
      arr.Append(
          JsonValue::Object()
              .Set("request_id", JsonValue::String(e.request_id))
              .Set("op", JsonValue::String(e.op))
              .Set("latency_us",
                   JsonValue::Int(static_cast<long long>(e.latency_us)))
              .Set("ok", JsonValue::Bool(e.ok))
              .Set("note", JsonValue::String(e.note)));
    }
    JsonValue out = JsonValue::Object();
    out.Set("entries", std::move(arr));
    out.Set("capacity",
            JsonValue::Int(static_cast<long long>(slowlog_.capacity())));
    out.Set("recorded",
            JsonValue::Int(static_cast<long long>(slowlog_.recorded())));
    return answered(std::move(out));
  }

  if (req.op == "plan") {
    SJSEL_TRACE_SPAN("server.op.plan");
    if (req.paths.size() < 2) {
      return fail(kErrBadRequest, "plan needs a 'paths' array of >= 2");
    }
    std::vector<std::shared_ptr<const Dataset>> keep_alive;
    std::vector<PlannerInput> inputs;
    for (const std::string& path : req.paths) {
      const auto ds = catalog_.GetDataset(path);
      if (!ds.ok()) return fail_status(ds.status());
      keep_alive.push_back(*ds);
      inputs.push_back(PlannerInput{path, keep_alive.back().get()});
    }
    PlannerOptions options;
    options.estimator = options_.estimator;
    const auto plan = PlanMultiJoin(inputs, options);
    if (!plan.ok()) return fail_status(plan.status());
    auto plan_json = JsonValue::Parse(RenderPlanJson(*plan));
    if (!plan_json.ok()) return fail_status(plan_json.status());
    return answered(
        JsonValue::Object().Set("plan", std::move(plan_json).value()));
  }

  if (req.op == "ingest") {
    SJSEL_TRACE_SPAN("server.op.ingest");
    if (req.stream.empty()) {
      return fail(kErrBadRequest, "ingest needs a 'stream' directory");
    }
    Result<std::shared_ptr<stream::StreamIngest>> ingest =
        Status::Internal("unreachable");
    if (req.has_extent) {
      stream::StreamOptions options;
      options.extent = req.extent;
      options.gh_level = req.level;
      options.ph_level = req.ph_level;
      options.seal_every = static_cast<uint32_t>(req.seal_every);
      options.checkpoint_every = static_cast<uint32_t>(req.checkpoint_every);
      ingest = catalog_.InitStream(req.stream, options);
    } else {
      ingest = catalog_.GetStream(req.stream);
    }
    if (!ingest.ok()) return fail_status(ingest.status());
    std::vector<stream::StreamOp> batch;
    batch.reserve(req.adds.size() + req.removes.size());
    for (const Rect& r : req.adds) {
      batch.push_back({stream::OpKind::kAdd, r});
    }
    for (const Rect& r : req.removes) {
      batch.push_back({stream::OpKind::kRemove, r});
    }
    uint64_t seq = (*ingest)->seq();
    if (!batch.empty()) {
      const auto applied = (*ingest)->Apply(batch);
      if (!applied.ok()) return fail_status(applied.status());
      seq = *applied;
    } else if (!req.has_extent) {
      return fail(kErrBadRequest,
                  "ingest needs 'adds'/'removes' ops or 'extent' to init");
    }
    JsonValue out = JsonValue::Object();
    out.Set("seq", JsonValue::Int(static_cast<long long>(seq)));
    out.Set("snapshot_seq",
            JsonValue::Int(
                static_cast<long long>((*ingest)->snapshot()->seq)));
    out.Set("wal_bytes",
            JsonValue::Int(static_cast<long long>((*ingest)->wal_bytes())));
    return answered(std::move(out));
  }

  if (req.op == "checkpoint") {
    SJSEL_TRACE_SPAN("server.op.checkpoint");
    if (req.stream.empty()) {
      return fail(kErrBadRequest, "checkpoint needs a 'stream' directory");
    }
    const auto ingest = catalog_.GetStream(req.stream);
    if (!ingest.ok()) return fail_status(ingest.status());
    const Status st = (*ingest)->Checkpoint();
    if (!st.ok()) return fail_status(st);
    JsonValue out = JsonValue::Object();
    out.Set("checkpoint_seq",
            JsonValue::Int(
                static_cast<long long>((*ingest)->checkpoint_seq())));
    out.Set("wal_bytes",
            JsonValue::Int(static_cast<long long>((*ingest)->wal_bytes())));
    return answered(std::move(out));
  }

  if (req.op == "stream_estimate") {
    SJSEL_TRACE_SPAN("server.op.stream_estimate");
    if (req.stream.empty() || req.b.empty()) {
      return fail(kErrBadRequest,
                  "stream_estimate needs 'stream' and a 'b' dataset path");
    }
    const auto ingest = catalog_.GetStream(req.stream);
    if (!ingest.ok()) return fail_status(ingest.status());
    const auto b = catalog_.GetDataset(req.b);
    if (!b.ok()) return fail_status(b.status());
    // Estimates are served from the immutable snapshot — a consistent
    // (base + sealed deltas) view that concurrent Applies never mutate.
    const auto snap = (*ingest)->snapshot();
    const auto bh = GhHistogram::Build(**b, snap->gh.grid().extent(),
                                       snap->gh.grid().level());
    if (!bh.ok()) return fail_status(bh.status());
    const auto pairs = EstimateGhJoinPairs(snap->gh, *bh);
    if (!pairs.ok()) return fail_status(pairs.status());
    if (ShouldAudit()) {
      // The reference folds the not-yet-sealed active delta in, so the
      // audit measures how far the served snapshot lags the acknowledged
      // stream — GH accuracy drift under churn.
      SJSEL_TRACE_SPAN("server.audit");
      const auto full = (*ingest)->MaterializeState();
      if (full.ok()) {
        const auto ref = EstimateGhJoinPairs((*full).gh, *bh);
        if (ref.ok()) {
          PublishAuditResult(req, "materialized", *pairs, *ref);
        } else {
          SJSEL_METRIC_INC("accuracy.audit_failures");
        }
      } else {
        SJSEL_METRIC_INC("accuracy.audit_failures");
      }
    }
    const double n1 = static_cast<double>(snap->gh.dataset_size());
    const double n2 = static_cast<double>((*b)->size());
    JsonValue out = JsonValue::Object();
    out.Set("estimated_pairs", JsonValue::Number(*pairs));
    out.Set("selectivity",
            JsonValue::Number(n1 > 0.0 && n2 > 0.0 ? *pairs / (n1 * n2)
                                                   : 0.0));
    out.Set("snapshot_seq",
            JsonValue::Int(static_cast<long long>(snap->seq)));
    out.Set("stream_n", JsonValue::Int(static_cast<long long>(
                            snap->gh.dataset_size())));
    return answered(std::move(out));
  }

  if (req.op == "stream_stats") {
    SJSEL_TRACE_SPAN("server.op.stream_stats");
    if (req.stream.empty()) {
      return fail(kErrBadRequest, "stream_stats needs a 'stream' directory");
    }
    const auto ingest = catalog_.GetStream(req.stream);
    if (!ingest.ok()) return fail_status(ingest.status());
    const stream::RecoveryInfo& rec = (*ingest)->recovery();
    JsonValue out = JsonValue::Object();
    out.Set("seq", JsonValue::Int(static_cast<long long>((*ingest)->seq())));
    out.Set("snapshot_seq",
            JsonValue::Int(
                static_cast<long long>((*ingest)->snapshot()->seq)));
    out.Set("checkpoint_seq",
            JsonValue::Int(
                static_cast<long long>((*ingest)->checkpoint_seq())));
    out.Set("active_batches",
            JsonValue::Int(
                static_cast<long long>((*ingest)->active_batches())));
    out.Set("wal_bytes",
            JsonValue::Int(static_cast<long long>((*ingest)->wal_bytes())));
    out.Set("recovery",
            JsonValue::Object()
                .Set("checkpoint_seq",
                     JsonValue::Int(static_cast<long long>(rec.checkpoint_seq)))
                .Set("replayed_records",
                     JsonValue::Int(
                         static_cast<long long>(rec.replayed_records)))
                .Set("skipped_records",
                     JsonValue::Int(
                         static_cast<long long>(rec.skipped_records)))
                .Set("dropped_bytes",
                     JsonValue::Int(static_cast<long long>(rec.dropped_bytes)))
                .Set("tail_error", JsonValue::String(rec.tail_error)));
    return answered(std::move(out));
  }

  return fail(kErrUnknownOp, "unknown op '" + req.op + "'");
}

void Server::AuditEstimate(const Request& req, const Dataset& a,
                           const Dataset& b, double served_pairs) {
  SJSEL_TRACE_SPAN("server.audit");
  const uint64_t cap = options_.audit_exact_cap;
  if (cap > 0 && a.size() <= cap && b.size() <= cap) {
    const uint64_t exact = PlaneSweepJoinCount(a, b);
    PublishAuditResult(req, "exact", served_pairs,
                       static_cast<double>(exact));
    return;
  }
  const auto sampled = EstimateBySampling(a, b, options_.estimator.sampling);
  if (!sampled.ok()) {
    SJSEL_METRIC_INC("accuracy.audit_failures");
    return;
  }
  PublishAuditResult(req, "sampling", served_pairs,
                     (*sampled).estimated_pairs);
}

void Server::PublishAuditResult(const Request& req, const char* reference,
                                double served_pairs, double reference_pairs) {
  SJSEL_METRIC_INC("accuracy.audits");
  // Relative error against the reference, floored at one pair so an
  // empty-join reference cannot divide by zero. The histogram stores
  // non-negative integers, so the error is recorded in parts-per-million
  // (1e6 ppm == 100% off), capped at a 1e6x relative error.
  const double denom = std::max(reference_pairs, 1.0);
  const double rel = std::fabs(served_pairs - reference_pairs) / denom;
  const uint64_t ppm =
      static_cast<uint64_t>(std::llround(std::min(rel, 1e6) * 1e6));
  if (obs::MetricsRegistry::Armed()) {
    obs::MetricsRegistry::Global()
        .GetHistogram("accuracy.rel_error")
        ->Record(ppm);
  }
  SJSEL_LOG_DEBUG("accuracy.audit", obs::LogFields()
                                        .Str("request_id", req.request_id)
                                        .Str("op", req.op)
                                        .Str("reference", reference)
                                        .Num("served_pairs", served_pairs)
                                        .Num("reference_pairs",
                                             reference_pairs)
                                        .Num("rel_error", rel));
  if (rel > options_.audit_alarm) {
    SJSEL_METRIC_INC("accuracy.drift_alarm");
    SJSEL_TRACE_INSTANT("accuracy.drift_alarm");
    SJSEL_LOG_WARN("accuracy.drift", obs::LogFields()
                                         .Str("request_id", req.request_id)
                                         .Str("op", req.op)
                                         .Str("reference", reference)
                                         .Num("served_pairs", served_pairs)
                                         .Num("reference_pairs",
                                              reference_pairs)
                                         .Num("rel_error", rel)
                                         .Num("threshold",
                                              options_.audit_alarm));
  }
}

}  // namespace server
}  // namespace sjsel
