#ifndef SJSEL_SERVER_CATALOG_H_
#define SJSEL_SERVER_CATALOG_H_

// The daemon-side catalog: datasets loaded once per path and pair
// estimates computed once per (a, b), both kept for the server's
// lifetime so an optimizer calling `estimate` millions of times pays
// the load/build cost once. Thread-safe; see docs/SERVER.md "Catalog".
//
// Distinct from src/engine/catalog.h (the single-threaded, in-process
// SDBMS catalog keyed by dataset *name* over one workspace extent):
// this one is keyed by *file path*, serves concurrent workers, and
// caches guarded-chain results — provenance included — not bare GH
// histograms.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "core/guarded_estimator.h"
#include "geom/dataset.h"
#include "stream/ingest.h"
#include "util/result.h"

namespace sjsel {
namespace server {

class ServerCatalog {
 public:
  explicit ServerCatalog(GuardedEstimatorOptions options = {})
      : estimator_(options) {}

  /// The dataset at `path`, loading and caching it on first use.
  /// Counts `server.catalog.dataset_hits` / `.dataset_misses`.
  Result<std::shared_ptr<const Dataset>> GetDataset(const std::string& path);

  /// The guarded-chain estimate for the dataset pair, cached by path
  /// pair. The estimator runs with the options this catalog was built
  /// with (defaults match the CLI `estimate` command, so cached answers
  /// are bit-for-bit the standalone ones). Counts
  /// `server.catalog.estimate_hits` / `.estimate_misses`.
  Result<EstimateResult> Estimate(const std::string& a, const std::string& b);

  /// The open stream ingest at directory `dir`, recovering it on first
  /// use and keeping it open (with its WAL writer) for the server's
  /// lifetime. Counts `server.catalog.stream_opens`.
  Result<std::shared_ptr<stream::StreamIngest>> GetStream(
      const std::string& dir);

  /// Creates + opens a stream directory (op `ingest` with `extent`).
  /// Fails if it is already initialized.
  Result<std::shared_ptr<stream::StreamIngest>> InitStream(
      const std::string& dir, const stream::StreamOptions& options);

  const GuardedEstimator& estimator() const { return estimator_; }

  /// Cache occupancy for the `health` op (docs/SERVER.md). Counts are a
  /// consistent point-in-time snapshot under the catalog lock;
  /// `poisoned_streams` is how many open streams have a failed WAL (their
  /// mutating ops return FailedPrecondition until reopened).
  struct CacheStats {
    size_t datasets = 0;
    size_t estimates = 0;
    size_t streams = 0;
    size_t poisoned_streams = 0;
  };
  CacheStats Stats() const;

 private:
  GuardedEstimator estimator_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const Dataset>> datasets_;
  std::map<std::pair<std::string, std::string>, EstimateResult> estimates_;
  std::map<std::string, std::shared_ptr<stream::StreamIngest>> streams_;
};

}  // namespace server
}  // namespace sjsel

#endif  // SJSEL_SERVER_CATALOG_H_
