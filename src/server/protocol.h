#ifndef SJSEL_SERVER_PROTOCOL_H_
#define SJSEL_SERVER_PROTOCOL_H_

// The wire protocol of the estimation server: newline-delimited JSON
// (NDJSON) over a Unix-domain stream socket. One request object per
// line, one response object per line, in order. The full specification
// — field schemas, error codes, deadline and admission-control
// semantics — lives in docs/SERVER.md; this header is its in-code
// counterpart and the single place the vocabulary is defined.

#include <string>
#include <vector>

#include "geom/rect.h"
#include "util/json.h"
#include "util/result.h"

namespace sjsel {
namespace server {

/// Stable error codes carried in response `error.code`. Each maps 1:1 to
/// a `server.requests.failed.<code>` (or `.rejected.<code>`) metric.
inline constexpr char kErrBadRequest[] = "bad_request";
inline constexpr char kErrUnknownOp[] = "unknown_op";
inline constexpr char kErrNotFound[] = "not_found";
inline constexpr char kErrDeadline[] = "deadline";
inline constexpr char kErrOverloaded[] = "overloaded";
inline constexpr char kErrShuttingDown[] = "shutting_down";
inline constexpr char kErrInternal[] = "internal";

/// A parsed request. Unknown fields are ignored (forward compatibility);
/// known fields with the wrong JSON type reject the request.
struct Request {
  /// Echoed verbatim into the response; null when the client sent none.
  JsonValue id;
  /// Correlation id echoed as `request_id` in the response and attached
  /// to the request's `server.request` trace span, log lines and slowlog
  /// entry (docs/SERVER.md "Request correlation"). The server generates
  /// one (`srv-<pid>-<n>`) when the client sends none.
  std::string request_id;
  /// "ping", "estimate", "explain", "stats", "metrics", "health",
  /// "slowlog", "plan", "ingest", "checkpoint", "stream_estimate",
  /// "stream_stats" or "shutdown".
  std::string op;
  /// Dataset file paths: `a`/`b` for estimate and explain, `path` for
  /// stats, `paths` (array) for plan.
  std::string a;
  std::string b;
  std::string path;
  std::vector<std::string> paths;
  /// Milliseconds the server may spend before *dispatching* the request
  /// (admission + parse; compute is not preempted — see docs/SERVER.md).
  /// Present iff has_deadline; values <= 0 are already expired.
  double deadline_ms = 0.0;
  bool has_deadline = false;
  /// explain-only knobs, defaulted like the CLI.
  int level = 7;
  int top = 10;
  bool exact = false;
  std::string scheme = "gh";
  /// Streaming-ingest fields (docs/SERVER.md "Streaming ops"): `stream` is
  /// the stream directory; `adds`/`removes` are arrays of [x0,y0,x1,y1]
  /// rects; `extent` (same shape) plus `ph_level`/`seal_every`/
  /// `checkpoint_every` initialize a new stream on first ingest.
  std::string stream;
  std::vector<Rect> adds;
  std::vector<Rect> removes;
  bool has_extent = false;
  Rect extent;
  int ph_level = 5;
  int seal_every = 8;
  int checkpoint_every = 0;
};

/// Parses one request line. Errors name the offending field or byte.
Result<Request> ParseRequest(const std::string& line);

/// `{"id":...,"ok":true,"result":<result>,"request_id":"..."}`. The
/// `request_id` member is appended last (existing consumers keyed on the
/// `id`/`ok`/`result` prefix keep matching) and omitted when empty (the
/// admission-control rejection path has no parsed request to correlate).
std::string OkResponse(const JsonValue& id, JsonValue result,
                       const std::string& request_id = std::string());

/// `{"id":...,"ok":false,"error":{"code":"...","message":"..."},
///  "request_id":"..."}` — same request_id rules as OkResponse.
std::string ErrorResponse(const JsonValue& id, const std::string& code,
                          const std::string& message,
                          const std::string& request_id = std::string());

/// Maps a Status from dataset loading / estimation onto the protocol's
/// error-code vocabulary (NotFound and I/O failures become "not_found",
/// argument errors "bad_request", everything else "internal").
const char* ErrorCodeForStatus(const Status& status);

}  // namespace server
}  // namespace sjsel

#endif  // SJSEL_SERVER_PROTOCOL_H_
