#include "server/catalog.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sjsel {
namespace server {

Result<std::shared_ptr<const Dataset>> ServerCatalog::GetDataset(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = datasets_.find(path);
    if (it != datasets_.end()) {
      SJSEL_METRIC_INC("server.catalog.dataset_hits");
      return it->second;
    }
  }
  SJSEL_METRIC_INC("server.catalog.dataset_misses");
  SJSEL_TRACE_SPAN("server.catalog.load_dataset");
  auto loaded = Dataset::Load(path);
  if (!loaded.ok()) return loaded.status();
  auto shared = std::make_shared<const Dataset>(std::move(loaded).value());
  std::lock_guard<std::mutex> lock(mu_);
  // Two workers may race to load the same path; both get the same bytes,
  // so first-in wins and the loser's copy is dropped.
  const auto [it, inserted] = datasets_.emplace(path, std::move(shared));
  (void)inserted;
  return it->second;
}

Result<EstimateResult> ServerCatalog::Estimate(const std::string& a,
                                               const std::string& b) {
  const std::pair<std::string, std::string> key(a, b);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = estimates_.find(key);
    if (it != estimates_.end()) {
      SJSEL_METRIC_INC("server.catalog.estimate_hits");
      return it->second;
    }
  }
  SJSEL_METRIC_INC("server.catalog.estimate_misses");
  std::shared_ptr<const Dataset> da;
  SJSEL_ASSIGN_OR_RETURN(da, GetDataset(a));
  std::shared_ptr<const Dataset> db;
  SJSEL_ASSIGN_OR_RETURN(db, GetDataset(b));
  // Estimated outside the lock: concurrent first requests for the same
  // pair may both compute, but the chain is deterministic, so whichever
  // result lands in the cache is the same value.
  auto result = estimator_.Estimate(*da, *db);
  if (!result.ok()) return result.status();
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = estimates_.emplace(key, std::move(result).value());
  (void)inserted;
  return it->second;
}

Result<std::shared_ptr<stream::StreamIngest>> ServerCatalog::GetStream(
    const std::string& dir) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = streams_.find(dir);
    if (it != streams_.end()) return it->second;
  }
  SJSEL_METRIC_INC("server.catalog.stream_opens");
  SJSEL_TRACE_SPAN("server.catalog.open_stream");
  auto opened = stream::StreamIngest::Open(dir);
  if (!opened.ok()) return opened.status();
  std::shared_ptr<stream::StreamIngest> shared = std::move(opened).value();
  std::lock_guard<std::mutex> lock(mu_);
  // Two workers may race to open the same directory. Only one ingest may
  // own the WAL writer, so first-in wins and the loser is discarded.
  const auto [it, inserted] = streams_.emplace(dir, std::move(shared));
  (void)inserted;
  return it->second;
}

Result<std::shared_ptr<stream::StreamIngest>> ServerCatalog::InitStream(
    const std::string& dir, const stream::StreamOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (streams_.count(dir) != 0) {
      return Status::FailedPrecondition("stream already open: " + dir);
    }
  }
  SJSEL_RETURN_IF_ERROR(stream::StreamIngest::Init(dir, options));
  return GetStream(dir);
}

ServerCatalog::CacheStats ServerCatalog::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats stats;
  stats.datasets = datasets_.size();
  stats.estimates = estimates_.size();
  stats.streams = streams_.size();
  for (const auto& [dir, ingest] : streams_) {
    if (ingest->poisoned()) ++stats.poisoned_streams;
  }
  return stats;
}

}  // namespace server
}  // namespace sjsel
