#include "server/protocol.h"

#include <cmath>
#include <utility>

namespace sjsel {
namespace server {
namespace {

/// A rect on the wire is [min_x, min_y, max_x, max_y].
Result<Rect> ParseRect(const JsonValue& v, const std::string& field) {
  if (!v.is_array() || v.items().size() != 4) {
    return Status::InvalidArgument("'" + field +
                                   "' entries must be [x0,y0,x1,y1] arrays");
  }
  double coords[4];
  for (size_t i = 0; i < 4; ++i) {
    const JsonValue& c = v.items()[i];
    if (!c.is_number()) {
      return Status::InvalidArgument("'" + field +
                                     "' coordinates must be numbers");
    }
    coords[i] = c.number_value();
  }
  return Rect(coords[0], coords[1], coords[2], coords[3]);
}

Status ParseRectArray(const JsonValue& doc, const std::string& field,
                      std::vector<Rect>* out) {
  const JsonValue* arr = doc.Find(field);
  if (arr == nullptr) return Status::OK();
  if (!arr->is_array()) {
    return Status::InvalidArgument("field '" + field + "' must be an array");
  }
  out->reserve(arr->items().size());
  for (const JsonValue& v : arr->items()) {
    Rect r;
    SJSEL_ASSIGN_OR_RETURN(r, ParseRect(v, field));
    out->push_back(r);
  }
  return Status::OK();
}

Status ParseIntField(const JsonValue& doc, const std::string& field,
                     int fallback, int* out) {
  double v = 0;
  SJSEL_ASSIGN_OR_RETURN(v, doc.GetNumber(field, fallback));
  if (v != std::floor(v)) {
    return Status::InvalidArgument("'" + field + "' must be an integer");
  }
  *out = static_cast<int>(v);
  return Status::OK();
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  JsonValue doc;
  SJSEL_ASSIGN_OR_RETURN(doc, JsonValue::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Request req;
  if (const JsonValue* id = doc.Find("id"); id != nullptr) req.id = *id;
  SJSEL_ASSIGN_OR_RETURN(req.op, doc.GetString("op", ""));
  if (req.op.empty()) {
    return Status::InvalidArgument("request needs a non-empty 'op'");
  }
  SJSEL_ASSIGN_OR_RETURN(req.request_id, doc.GetString("request_id", ""));
  SJSEL_ASSIGN_OR_RETURN(req.a, doc.GetString("a", ""));
  SJSEL_ASSIGN_OR_RETURN(req.b, doc.GetString("b", ""));
  SJSEL_ASSIGN_OR_RETURN(req.path, doc.GetString("path", ""));
  if (const JsonValue* paths = doc.Find("paths"); paths != nullptr) {
    if (!paths->is_array()) {
      return Status::InvalidArgument("field 'paths' must be an array");
    }
    for (const JsonValue& p : paths->items()) {
      if (!p.is_string()) {
        return Status::InvalidArgument("'paths' entries must be strings");
      }
      req.paths.push_back(p.string_value());
    }
  }
  if (const JsonValue* deadline = doc.Find("deadline_ms");
      deadline != nullptr) {
    if (!deadline->is_number()) {
      return Status::InvalidArgument("field 'deadline_ms' must be a number");
    }
    req.deadline_ms = deadline->number_value();
    req.has_deadline = true;
  }
  double level = 7;
  SJSEL_ASSIGN_OR_RETURN(level, doc.GetNumber("level", 7));
  double top = 10;
  SJSEL_ASSIGN_OR_RETURN(top, doc.GetNumber("top", 10));
  if (level != std::floor(level) || top != std::floor(top)) {
    return Status::InvalidArgument("'level' and 'top' must be integers");
  }
  req.level = static_cast<int>(level);
  req.top = static_cast<int>(top);
  SJSEL_ASSIGN_OR_RETURN(req.exact, doc.GetBool("exact", false));
  SJSEL_ASSIGN_OR_RETURN(req.scheme, doc.GetString("scheme", "gh"));
  SJSEL_ASSIGN_OR_RETURN(req.stream, doc.GetString("stream", ""));
  SJSEL_RETURN_IF_ERROR(ParseRectArray(doc, "adds", &req.adds));
  SJSEL_RETURN_IF_ERROR(ParseRectArray(doc, "removes", &req.removes));
  if (const JsonValue* extent = doc.Find("extent"); extent != nullptr) {
    SJSEL_ASSIGN_OR_RETURN(req.extent, ParseRect(*extent, "extent"));
    req.has_extent = true;
  }
  SJSEL_RETURN_IF_ERROR(ParseIntField(doc, "ph_level", 5, &req.ph_level));
  SJSEL_RETURN_IF_ERROR(ParseIntField(doc, "seal_every", 8, &req.seal_every));
  SJSEL_RETURN_IF_ERROR(
      ParseIntField(doc, "checkpoint_every", 0, &req.checkpoint_every));
  return req;
}

std::string OkResponse(const JsonValue& id, JsonValue result,
                       const std::string& request_id) {
  JsonValue response = JsonValue::Object();
  response.Set("id", id);
  response.Set("ok", JsonValue::Bool(true));
  response.Set("result", std::move(result));
  if (!request_id.empty()) {
    response.Set("request_id", JsonValue::String(request_id));
  }
  return response.Dump();
}

std::string ErrorResponse(const JsonValue& id, const std::string& code,
                          const std::string& message,
                          const std::string& request_id) {
  JsonValue response = JsonValue::Object();
  response.Set("id", id);
  response.Set("ok", JsonValue::Bool(false));
  response.Set("error", JsonValue::Object()
                            .Set("code", JsonValue::String(code))
                            .Set("message", JsonValue::String(message)));
  if (!request_id.empty()) {
    response.Set("request_id", JsonValue::String(request_id));
  }
  return response.Dump();
}

const char* ErrorCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
    case StatusCode::kIoError:
    case StatusCode::kCorruption:
      return kErrNotFound;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return kErrBadRequest;
    default:
      return kErrInternal;
  }
}

}  // namespace server
}  // namespace sjsel
