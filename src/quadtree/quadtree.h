#ifndef SJSEL_QUADTREE_QUADTREE_H_
#define SJSEL_QUADTREE_QUADTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geom/dataset.h"
#include "geom/rect.h"
#include "join/join.h"
#include "util/result.h"
#include "util/status.h"

namespace sjsel {

/// Tuning knobs for Quadtree.
struct QuadtreeOptions {
  /// Maximum subdivision depth (the root is depth 0).
  int max_depth = 12;
};

/// An MX-CIF quadtree: every rectangle is stored at the *smallest* quadrant
/// that fully contains it. A second spatial index substrate next to the
/// R-tree — space-driven rather than data-driven partitioning, the design
/// point used by several systems the spatial-join literature compares
/// against.
class Quadtree {
 public:
  struct Entry {
    Rect rect;
    int64_t id = 0;
  };

  struct Node {
    Rect region;
    int depth = 0;
    std::vector<Entry> items;
    std::unique_ptr<Node> children[4];  ///< SW, SE, NW, NE; may be null

    bool IsLeaf() const {
      return !children[0] && !children[1] && !children[2] && !children[3];
    }
  };

  /// The tree covers `extent`; rectangles outside it are stored at the
  /// root.
  explicit Quadtree(const Rect& extent,
                    QuadtreeOptions options = QuadtreeOptions());

  Quadtree(Quadtree&&) = default;
  Quadtree& operator=(Quadtree&&) = default;
  Quadtree(const Quadtree&) = delete;
  Quadtree& operator=(const Quadtree&) = delete;

  /// Builds a tree over the dataset's extent with ids = positions.
  static Quadtree BuildFrom(const Dataset& dataset,
                            QuadtreeOptions options = QuadtreeOptions());

  void Insert(const Rect& rect, int64_t id);

  /// Invokes `fn(id, rect)` for every entry intersecting `query`.
  void RangeQuery(const Rect& query,
                  const std::function<void(int64_t, const Rect&)>& fn) const;

  /// Number of entries intersecting `query`.
  uint64_t CountRange(const Rect& query) const;

  uint64_t size() const { return size_; }
  uint64_t num_nodes() const { return num_nodes_; }
  const Rect& extent() const { return root_->region; }
  const Node* root() const { return root_.get(); }
  const QuadtreeOptions& options() const { return options_; }

  /// Verifies MX-CIF invariants: every entry's rect is contained in its
  /// node's region (root excepted) and no entry fits in a child quadrant
  /// above max depth.
  Status CheckInvariants() const;

 private:
  QuadtreeOptions options_;
  std::unique_ptr<Node> root_;
  uint64_t size_ = 0;
  uint64_t num_nodes_ = 1;
};

/// Spatial join of two aligned MX-CIF quadtrees. Both trees must cover the
/// same extent (so their quadrant decompositions coincide); returns
/// InvalidArgument otherwise.
Result<uint64_t> QuadtreeJoinCount(const Quadtree& a, const Quadtree& b);

/// Emitting variant of QuadtreeJoinCount.
Status QuadtreeJoin(const Quadtree& a, const Quadtree& b,
                    const PairCallback& emit);

}  // namespace sjsel

#endif  // SJSEL_QUADTREE_QUADTREE_H_
