#include "quadtree/quadtree.h"

namespace sjsel {
namespace {

// Quadrant `q` (SW, SE, NW, NE) of a region.
Rect QuadrantOf(const Rect& region, int q) {
  const double mx = (region.min_x + region.max_x) / 2;
  const double my = (region.min_y + region.max_y) / 2;
  switch (q) {
    case 0:
      return Rect(region.min_x, region.min_y, mx, my);
    case 1:
      return Rect(mx, region.min_y, region.max_x, my);
    case 2:
      return Rect(region.min_x, my, mx, region.max_y);
    default:
      return Rect(mx, my, region.max_x, region.max_y);
  }
}

}  // namespace

Quadtree::Quadtree(const Rect& extent, QuadtreeOptions options)
    : options_(options) {
  if (options_.max_depth < 0) options_.max_depth = 0;
  root_ = std::make_unique<Node>();
  root_->region = extent;
}

Quadtree Quadtree::BuildFrom(const Dataset& dataset,
                             QuadtreeOptions options) {
  Rect extent = dataset.ComputeExtent();
  if (extent.IsEmpty()) extent = Rect(0, 0, 1, 1);
  Quadtree tree(extent, options);
  for (size_t i = 0; i < dataset.size(); ++i) {
    tree.Insert(dataset[i], static_cast<int64_t>(i));
  }
  return tree;
}

void Quadtree::Insert(const Rect& rect, int64_t id) {
  Node* node = root_.get();
  while (node->depth < options_.max_depth) {
    int fitting = -1;
    for (int q = 0; q < 4; ++q) {
      if (QuadrantOf(node->region, q).Contains(rect)) {
        fitting = q;
        break;
      }
    }
    if (fitting < 0) break;  // straddles the center lines: stays here
    if (node->children[fitting] == nullptr) {
      auto child = std::make_unique<Node>();
      child->region = QuadrantOf(node->region, fitting);
      child->depth = node->depth + 1;
      node->children[fitting] = std::move(child);
      ++num_nodes_;
    }
    node = node->children[fitting].get();
  }
  node->items.push_back(Entry{rect, id});
  ++size_;
}

void Quadtree::RangeQuery(
    const Rect& query,
    const std::function<void(int64_t, const Rect&)>& fn) const {
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->items) {
      if (e.rect.Intersects(query)) fn(e.id, e.rect);
    }
    for (const auto& child : node->children) {
      if (child != nullptr && child->region.Intersects(query)) {
        stack.push_back(child.get());
      }
    }
  }
}

uint64_t Quadtree::CountRange(const Rect& query) const {
  uint64_t count = 0;
  RangeQuery(query, [&count](int64_t, const Rect&) { ++count; });
  return count;
}

namespace {

Status CheckNode(const Quadtree::Node& node, const QuadtreeOptions& options,
                 bool is_root, uint64_t* entries, uint64_t* nodes) {
  ++*nodes;
  if (node.depth > options.max_depth) {
    return Status::Internal("quadtree node beyond max depth");
  }
  for (const auto& e : node.items) {
    if (!is_root && !node.region.Contains(e.rect)) {
      return Status::Internal("entry escapes its quadrant");
    }
    // MX-CIF minimality: below max depth, no child quadrant may fully
    // contain the entry.
    if (node.depth < options.max_depth) {
      for (int q = 0; q < 4; ++q) {
        if (QuadrantOf(node.region, q).Contains(e.rect)) {
          return Status::Internal("entry stored above its smallest quadrant");
        }
      }
    }
    ++*entries;
  }
  for (int q = 0; q < 4; ++q) {
    if (node.children[q] == nullptr) continue;
    const Quadtree::Node& child = *node.children[q];
    if (child.depth != node.depth + 1) {
      return Status::Internal("child depth mismatch");
    }
    if (!(child.region == QuadrantOf(node.region, q))) {
      return Status::Internal("child region is not the parent quadrant");
    }
    SJSEL_RETURN_IF_ERROR(CheckNode(child, options, false, entries, nodes));
  }
  return Status::OK();
}

}  // namespace

Status Quadtree::CheckInvariants() const {
  uint64_t entries = 0;
  uint64_t nodes = 0;
  SJSEL_RETURN_IF_ERROR(
      CheckNode(*root_, options_, /*is_root=*/true, &entries, &nodes));
  if (entries != size_) {
    return Status::Internal("entry count mismatch");
  }
  if (nodes != num_nodes_) {
    return Status::Internal("node count mismatch");
  }
  return Status::OK();
}

namespace {

using QNode = Quadtree::Node;

// Tests `rect` against every entry of `node`'s subtree.
template <typename Emit>
void ProbeSubtree(const QNode& node, const Rect& rect, bool a_first,
                  int64_t rect_id, Emit&& emit) {
  if (!node.region.Intersects(rect)) return;
  for (const auto& e : node.items) {
    if (e.rect.Intersects(rect)) {
      if (a_first) {
        emit(rect_id, e.id);
      } else {
        emit(e.id, rect_id);
      }
    }
  }
  for (const auto& child : node.children) {
    if (child != nullptr) ProbeSubtree(*child, rect, a_first, rect_id, emit);
  }
}

// Synchronized traversal of two identically decomposed trees: at each
// aligned region, A's resident items are probed into B's subtree (covering
// same-node and deeper partners), B's resident items into A's strict
// descendants (same-node pairs were already covered), then aligned
// children recurse.
template <typename Emit>
void AlignedJoin(const QNode& na, const QNode& nb, Emit&& emit) {
  for (const auto& ea : na.items) {
    ProbeSubtree(nb, ea.rect, /*a_first=*/true, ea.id, emit);
  }
  for (const auto& eb : nb.items) {
    for (const auto& child : na.children) {
      if (child != nullptr) {
        ProbeSubtree(*child, eb.rect, /*a_first=*/false, eb.id, emit);
      }
    }
  }
  for (int q = 0; q < 4; ++q) {
    if (na.children[q] != nullptr && nb.children[q] != nullptr) {
      AlignedJoin(*na.children[q], *nb.children[q], emit);
    }
  }
}

}  // namespace

Result<uint64_t> QuadtreeJoinCount(const Quadtree& a, const Quadtree& b) {
  if (!(a.extent() == b.extent())) {
    return Status::InvalidArgument(
        "quadtree join requires identical extents (aligned decompositions)");
  }
  uint64_t count = 0;
  AlignedJoin(*a.root(), *b.root(),
              [&count](int64_t, int64_t) { ++count; });
  return count;
}

Status QuadtreeJoin(const Quadtree& a, const Quadtree& b,
                    const PairCallback& emit) {
  if (!(a.extent() == b.extent())) {
    return Status::InvalidArgument(
        "quadtree join requires identical extents (aligned decompositions)");
  }
  AlignedJoin(*a.root(), *b.root(),
              [&emit](int64_t x, int64_t y) { emit(x, y); });
  return Status::OK();
}

}  // namespace sjsel
