#ifndef SJSEL_CLI_CLI_H_
#define SJSEL_CLI_CLI_H_

#include <cstdio>
#include <string>
#include <vector>

namespace sjsel {
namespace cli {

/// Entry point of the `sjsel` command-line tool, factored out of main() so
/// tests can drive it in-process. `args` excludes the program name.
/// Returns a process exit code (0 on success).
///
/// Subcommands:
///   gen <spec> <out.ds>        generate a dataset (paper name or
///                              uniform:N / clustered:N)
///   stats <in.ds>              dataset statistics
///   hist-build <in.ds> <out.hist> [--scheme=gh|ph|minskew] [--level=7] [--sparse]
///                              [--extent=x0,y0,x1,y1] [--basic] [--naive]
///   hist-info <in.hist>        histogram file metadata
///   estimate <a.hist> <b.hist> join selectivity estimate from two
///                              histogram files (GH or PH, auto-detected)
///   estimate <a.ds> <b.ds>     guarded estimate from two dataset files:
///                              inputs are validated (--validate=reject|
///                              clamp|quarantine, default quarantine) and
///                              the fallback chain GH -> PH -> sampling ->
///                              parametric answers, reporting the rung and
///                              a machine-readable degradation_reason;
///                              --explain adds the chain's per-rung trail
///   explain <a.ds> <b.ds>      per-cell estimate breakdown (GH/PH term
///                              contributions, contribution skew, chain
///                              trail); --exact adds per-cell error
///                              attribution against the exact join;
///                              --json=<file> / --csv=<file> write the
///                              JSON report / cell-grid heatmap CSV.
///                              Output is byte-identical across runs and
///                              --threads values (opt-in --timing excepted)
///   range <a.hist> <x0,y0,x1,y1>
///                              estimated range-query result count (GH)
///   join <a.ds> <b.ds> [--algo=sweep|pbsm|rtree|quadtree|nested]
///                              exact filter-step join count
///   sample <a.ds> <b.ds> [--method=rs|rswr|ss] [--fa=0.1] [--fb=0.1]
///                              [--seed=1]
///                              sampling-based selectivity estimate
///   plan <a.ds> <b.ds> [<c.ds> ...]
///                              selectivity-driven multi-way join plan:
///                              guarded pairwise estimates + DP over bushy
///                              join trees; --json emits the machine form
///                              (docs/PLANNER.md)
///   serve <socket>             estimation daemon: NDJSON estimate/explain/
///                              stats/plan over a Unix-domain socket with a
///                              bounded admission queue, per-request
///                              deadlines and per-request metrics/spans;
///                              stops on SIGINT/SIGTERM or a `shutdown`
///                              request (docs/SERVER.md)
///   client <socket> [<json> ...]
///                              send request lines (or stdin NDJSON) to a
///                              running server, one response line each
///
/// hist-build, join and sample accept --threads=N (0 = all hardware
/// threads). Thread count never changes any output: histograms are
/// bit-identical and join counts exact for every N.
///
/// Every command accepts --inject-faults=<site>=<trigger>[,...] to arm
/// deterministic fault injection for the invocation (see
/// src/util/fault_injection.h for sites and trigger syntax). Numeric flags
/// are parsed strictly: trailing junk or overflow rejects the command with
/// exit code 2 naming the flag.
int RunCli(const std::vector<std::string>& args, std::FILE* out,
           std::FILE* err);

}  // namespace cli
}  // namespace sjsel

#endif  // SJSEL_CLI_CLI_H_
