// The `sjsel` command-line tool: dataset generation, statistics, histogram
// files, selectivity estimation, exact joins and sampling from the shell.

#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return sjsel::cli::RunCli(args, stdout, stderr);
}
