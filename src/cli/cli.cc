#include "cli/cli.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <map>
#include <optional>
#include <thread>

#include "core/gh_histogram.h"
#include "core/guarded_estimator.h"
#include "core/kernels.h"
#include "core/minskew.h"
#include "core/ph_histogram.h"
#include "core/sampling.h"
#include "datagen/generators.h"
#include "datagen/geo_generators.h"
#include "datagen/workloads.h"
#include "geom/dataset.h"
#include "geom/validate.h"
#include "join/nested_loop.h"
#include "join/pbsm.h"
#include "join/plane_sweep.h"
#include "join/refinement.h"
#include "join/rtree_join.h"
#include "obs/explain.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "planner/join_planner.h"
#include "quadtree/quadtree.h"
#include "server/client.h"
#include "server/server.h"
#include "rtree/rtree.h"
#include "stats/dataset_stats.h"
#include "stream/ingest.h"
#include "util/build_info.h"
#include "util/fault_injection.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace sjsel {
namespace cli {
namespace {

// Positional arguments plus --key=value flags.
struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string Flag(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  // Strict numeric flag parsing: the whole value must parse (no trailing
  // junk, no empty value, no overflow) or the command is rejected with the
  // offending flag named — "--seed=abc" must not silently become 0.
  Result<double> FlagDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const char* text = it->second.c_str();
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("bad --" + key + ": '" + it->second +
                                     "' is not a number");
    }
    return v;
  }
  Result<int> FlagInt(const std::string& key, int fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const char* text = it->second.c_str();
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE ||
        v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max()) {
      return Status::InvalidArgument("bad --" + key + ": '" + it->second +
                                     "' is not an integer");
    }
    return static_cast<int>(v);
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }

  /// The shared --threads flag: default serial, 0 = all hardware threads.
  Result<int> Threads() const {
    auto threads = FlagInt("threads", 1);
    if (!threads.ok()) return threads;
    return threads.value() == 0 ? ThreadPool::DefaultThreads()
                                : threads.value();
  }
};

// Extracts a strict numeric flag; on a parse error, reports it to `err`
// (in scope at every use) and fails the command with the flag-error exit
// code 2.
#define SJSEL_FLAG_OR_RETURN(lhs, expr)                               \
  do {                                                                \
    auto _flag = (expr);                                              \
    if (!_flag.ok()) {                                                \
      std::fprintf(err, "%s\n", _flag.status().ToString().c_str());   \
      return 2;                                                       \
    }                                                                 \
    lhs = _flag.value();                                              \
  } while (0)

ParsedArgs Parse(const std::vector<std::string>& args) {
  ParsedArgs parsed;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) == 0) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        const std::string key = arg.substr(2);
        // The observability output flags take a file path, either attached
        // (--trace=t.json) or as the following argument (--trace t.json).
        if ((key == "trace" || key == "metrics" || key == "log-file") &&
            i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
          parsed.flags[key] = args[++i];
        } else {
          parsed.flags[key] = std::string("1");
        }
      } else {
        parsed.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      parsed.positional.push_back(arg);
    }
  }
  return parsed;
}

int Usage(std::FILE* err) {
  std::fprintf(err,
               "usage: sjsel <command> [args]\n"
               "\n"
               "commands:\n"
               "  gen <spec> <out.ds> [--scale=0.1] [--seed=1]\n"
               "      spec: TS|TCB|CAS|CAR|SP|SPG|SCRC|SURA or uniform:N or"
               " clustered:N\n"
               "  stats <in.ds>\n"
               "  hist-build <in.ds> <out.hist> [--scheme=gh|ph|minskew]"
               " [--level=7] [--extent=x0,y0,x1,y1] [--basic|--naive]"
               " [--validate=reject|clamp|quarantine] [--threads=1]\n"
               "  hist-info <in.hist>\n"
               "  estimate <a.hist> <b.hist>\n"
               "  estimate <a.ds> <b.ds> [--gh-level=7] [--ph-level=5]"
               " [--fa=0.1] [--fb=0.1] [--seed=1] [--method=rs|rswr|ss]"
               " [--validate=reject|clamp|quarantine] [--verify]"
               " [--explain]\n"
               "      dataset inputs run the guarded fallback chain"
               " (gh->ph->sampling->parametric);\n"
               "      --verify also runs the exact plane-sweep join and"
               " reports the relative error;\n"
               "      --explain prints the chain's per-rung trial trail\n"
               "  explain <a.ds> <b.ds> [--scheme=gh|ph] [--level=7]"
               " [--top=10] [--exact] [--json=<file>] [--csv=<file>]"
               " [--threads=1] [--validate=reject|clamp|quarantine]"
               " [--timing]\n"
               "      per-cell estimate breakdown: term contributions,"
               " contribution skew,\n"
               "      guarded-chain trail; --exact adds per-cell error"
               " attribution against\n"
               "      the exact join; --json/--csv write the report /"
               " cell-grid heatmap\n"
               "  range <a.hist> <x0,y0,x1,y1>\n"
               "  join <a.ds> <b.ds> [--algo=sweep|pbsm|rtree|quadtree|nested]"
               " [--threads=1]\n"
               "  sample <a.ds> <b.ds> [--method=rs|rswr|ss] [--fa=0.1]"
               " [--fb=0.1] [--seed=1] [--threads=1]\n"
               "  (--threads=0 uses every hardware thread; results are\n"
               "   identical for any thread count)\n"
               "  gen-geo <streams|blocks|sites> <out.geo> [--n=10000]"
               " [--seed=1]\n"
               "  refine-join <a.geo> <b.geo>\n"
               "  knn <in.ds> <x,y> [--k=5]\n"
               "  plan <a.ds> <b.ds> [<c.ds> ...] [--threads=1]"
               " [--dp-limit=12] [--json]\n"
               "      selectivity-driven multi-way join planning: guarded"
               " pairwise\n"
               "      estimates feed a DP search over bushy join trees"
               " (docs/PLANNER.md)\n"
               "  serve <socket> [--workers=4] [--max-queue=64]"
               " [--log-level=info]\n"
               "      [--log-file=<path|->] [--audit-rate=0]"
               " [--audit-alarm=0.5]\n"
               "      [--audit-exact-cap=0] [--slowlog-k=32]\n"
               "      estimation daemon on a Unix socket: NDJSON"
               " estimate/explain/\n"
               "      stats/plan/metrics/health/slowlog requests with"
               " per-request\n"
               "      deadlines, request_id correlation, structured JSON"
               " logs and an\n"
               "      online accuracy monitor (docs/SERVER.md,"
               " docs/OBSERVABILITY.md)\n"
               "  client <socket> [<request-json> ...] [--retry=1]"
               " [--retry-backoff-ms=25]\n"
               "      send request lines (or stdin NDJSON) to a running"
               " server;\n"
               "      --retry waits out server startup with exponential"
               " backoff\n"
               "  ingest <dir> [--init --extent=x0,y0,x1,y1 [--gh-level=7]"
               " [--ph-level=5]\n"
               "      [--seal-every=8] [--checkpoint-every=0] [--no-fsync]]\n"
               "      | [--status] | [--digest] | [--estimate=<b.ds>]"
               " | [--checkpoint]\n"
               "      crash-safe streaming ingest (docs/DURABILITY.md):"
               " default mode\n"
               "      applies stdin op lines (add/remove x0 y0 x1 y1,"
               " checkpoint) and\n"
               "      acks each one only after its WAL record is durable\n"
               "  gen-ops <n> [--seed=1] [--extent=0,0,1,1]"
               " [--remove-frac=0]\n"
               "      deterministic op stream for the ingest recovery"
               " drills\n"
               "  (plan and serve also take the estimate flags: --gh-level,"
               " --ph-level,\n"
               "   --fa, --fb, --seed, --method, --validate)\n"
               "\n"
               "global flags:\n"
               "  --kernel-backend=scalar|avx2|avx512|neon\n"
               "      force every batch kernel onto one backend (results\n"
               "      are bit-identical; errors if the CPU lacks it)\n"
               "  --inject-faults=<site>=<trigger>[,...]\n"
               "      arm deterministic fault injection for this invocation;\n"
               "      triggers: always | nth:N | every:N | prob:P[/SEED]\n"
               "  --trace=<file.json>\n"
               "      record spans for this invocation and write a Chrome\n"
               "      trace-event file (chrome://tracing, ui.perfetto.dev)\n"
               "  --metrics=<file.json>\n"
               "      collect counters/gauges/latency histograms, print a\n"
               "      metrics block and write a JSON snapshot\n");
  return 2;
}

std::optional<Rect> ParseRect(const std::string& spec) {
  Rect r;
  if (std::sscanf(spec.c_str(), "%lf,%lf,%lf,%lf", &r.min_x, &r.min_y,
                  &r.max_x, &r.max_y) != 4) {
    return std::nullopt;
  }
  if (r.IsEmpty()) return std::nullopt;
  return r;
}

std::optional<gen::PaperDataset> PaperDatasetByName(const std::string& name) {
  for (auto which :
       {gen::PaperDataset::kTS, gen::PaperDataset::kTCB,
        gen::PaperDataset::kCAS, gen::PaperDataset::kCAR,
        gen::PaperDataset::kSP, gen::PaperDataset::kSPG,
        gen::PaperDataset::kSCRC, gen::PaperDataset::kSURA}) {
    if (gen::PaperDatasetName(which) == name) return which;
  }
  return std::nullopt;
}

int CmdGen(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 3) return Usage(err);
  const std::string& spec = args.positional[1];
  const std::string& path = args.positional[2];
  int seed_flag = 1;
  SJSEL_FLAG_OR_RETURN(seed_flag, args.FlagInt("seed", 1));
  const uint64_t seed = static_cast<uint64_t>(seed_flag);
  double scale = 0.1;
  SJSEL_FLAG_OR_RETURN(scale, args.FlagDouble("scale", 0.1));
  const Rect unit(0, 0, 1, 1);

  Dataset ds;
  if (const auto paper = PaperDatasetByName(spec); paper.has_value()) {
    ds = gen::MakePaperDataset(*paper, scale, seed);
  } else if (spec.rfind("uniform:", 0) == 0) {
    const size_t n = std::strtoull(spec.c_str() + 8, nullptr, 10);
    gen::SizeDist size{gen::SizeDist::Kind::kUniform, 0.005, 0.005, 0.5};
    ds = gen::UniformRects("uniform", n, unit, size, seed);
  } else if (spec.rfind("clustered:", 0) == 0) {
    const size_t n = std::strtoull(spec.c_str() + 10, nullptr, 10);
    gen::SizeDist size{gen::SizeDist::Kind::kUniform, 0.005, 0.005, 0.5};
    ds = gen::GaussianClusterRects("clustered", n, unit,
                                   {{0.4, 0.7}, 0.1, 0.1, 1.0}, size, seed);
  } else {
    std::fprintf(err, "unknown dataset spec: %s\n", spec.c_str());
    return 2;
  }
  const Status status = ds.Save(path);
  if (!status.ok()) {
    std::fprintf(err, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(out, "wrote %zu rectangles (%s) to %s\n", ds.size(),
               ds.name().c_str(), path.c_str());
  return 0;
}

int CmdGenGeo(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 3) return Usage(err);
  const std::string& kind = args.positional[1];
  const std::string& path = args.positional[2];
  int n_flag = 10000;
  SJSEL_FLAG_OR_RETURN(n_flag, args.FlagInt("n", 10000));
  const size_t n = static_cast<size_t>(n_flag);
  int seed_flag = 1;
  SJSEL_FLAG_OR_RETURN(seed_flag, args.FlagInt("seed", 1));
  const uint64_t seed = static_cast<uint64_t>(seed_flag);
  const Rect unit(0, 0, 1, 1);
  const std::vector<gen::Cluster> metros = {
      {{0.3, 0.35}, 0.07, 0.07, 1.0}, {{0.65, 0.6}, 0.06, 0.06, 0.8}};

  GeoDataset ds;
  if (kind == "streams") {
    gen::PolylineSpec spec;
    spec.steps = 16;
    spec.step_len = 0.004;
    spec.start_clusters = metros;
    spec.background_frac = 0.4;
    ds = gen::GenerateStreamPolylines("streams", n, unit, spec, seed);
  } else if (kind == "blocks") {
    ds = gen::GenerateBlockPolygons("blocks", n, unit, metros, 0.35, 0.004,
                                    seed);
  } else if (kind == "sites") {
    ds = gen::GeneratePointSites("sites", n, unit, metros, 0.3, seed);
  } else {
    std::fprintf(err, "unknown geometry kind: %s (want streams|blocks|sites)\n",
                 kind.c_str());
    return 2;
  }
  const Status status = ds.Save(path);
  if (!status.ok()) {
    std::fprintf(err, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(out, "wrote %zu %s geometries to %s\n", ds.size(),
               kind.c_str(), path.c_str());
  return 0;
}

int CmdRefineJoin(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 3) return Usage(err);
  const auto a = GeoDataset::Load(args.positional[1]);
  const auto b = GeoDataset::Load(args.positional[2]);
  if (!a.ok() || !b.ok()) {
    std::fprintf(err, "%s\n",
                 (!a.ok() ? a.status() : b.status()).ToString().c_str());
    return 1;
  }
  const RefinementJoinResult result = RefinementJoin(*a, *b);
  std::fprintf(out, "candidates (filter) : %llu (%.3f s)\n",
               static_cast<unsigned long long>(result.candidates),
               result.filter_seconds);
  std::fprintf(out, "results (refined)   : %llu (%.3f s)\n",
               static_cast<unsigned long long>(result.results),
               result.refine_seconds);
  std::fprintf(out, "false-hit ratio     : %s\n",
               FormatPercent(result.FalseHitRatio()).c_str());
  return 0;
}

int CmdKnn(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 3) return Usage(err);
  const auto ds = Dataset::Load(args.positional[1]);
  if (!ds.ok()) {
    std::fprintf(err, "load failed: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  Point query;
  if (std::sscanf(args.positional[2].c_str(), "%lf,%lf", &query.x,
                  &query.y) != 2) {
    std::fprintf(err, "bad query point (want x,y)\n");
    return 2;
  }
  int k = 5;
  SJSEL_FLAG_OR_RETURN(k, args.FlagInt("k", 5));
  const RTree tree = RTree::BulkLoadStr(RTree::DatasetEntries(*ds));
  const auto neighbors = tree.NearestNeighbors(query, k);
  std::fprintf(out, "%zu nearest of %zu rectangles to (%g, %g):\n",
               neighbors.size(), ds->size(), query.x, query.y);
  for (const auto& n : neighbors) {
    std::fprintf(out, "  id %lld  dist %s  %s\n",
                 static_cast<long long>(n.id),
                 FormatDouble(n.distance, 5).c_str(),
                 n.rect.ToString().c_str());
  }
  return 0;
}

int CmdStats(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 2) return Usage(err);
  const auto ds = Dataset::Load(args.positional[1]);
  if (!ds.ok()) {
    std::fprintf(err, "load failed: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  const Rect extent = ds->ComputeExtent();
  const DatasetStats stats = DatasetStats::Compute(*ds, extent);
  std::fprintf(out, "name        : %s\n", ds->name().c_str());
  std::fprintf(out, "rectangles  : %zu\n", ds->size());
  std::fprintf(out, "extent      : %s\n", extent.ToString().c_str());
  std::fprintf(out, "coverage    : %s\n",
               FormatPercent(stats.coverage).c_str());
  std::fprintf(out, "avg width   : %s\n",
               FormatDouble(stats.avg_width, 6).c_str());
  std::fprintf(out, "avg height  : %s\n",
               FormatDouble(stats.avg_height, 6).c_str());
  std::fprintf(out, "max width   : %s\n",
               FormatDouble(stats.max_width, 6).c_str());
  std::fprintf(out, "max height  : %s\n",
               FormatDouble(stats.max_height, 6).c_str());
  const KernelDispatchInfo dispatch = GetKernelDispatchInfo();
  std::fprintf(out, "kernels     : %s (%s; detected %s)\n",
               KernelBackendName(dispatch.active), dispatch.source,
               KernelBackendName(dispatch.detected));
  return 0;
}

int CmdHistBuild(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 3) return Usage(err);
  auto ds = Dataset::Load(args.positional[1]);
  if (!ds.ok()) {
    std::fprintf(err, "load failed: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  int level = 7;
  SJSEL_FLAG_OR_RETURN(level, args.FlagInt("level", 7));
  Rect extent = ds->ComputeExtent();
  if (args.Has("extent")) {
    const auto parsed = ParseRect(args.Flag("extent", ""));
    if (!parsed.has_value()) {
      std::fprintf(err, "bad --extent (want x0,y0,x1,y1)\n");
      return 2;
    }
    extent = *parsed;
  }
  // Opt-in pre-build validation against the resolved extent. Only applied
  // when the user asks: the default build must keep the seed behavior of
  // clipping boundary-crossing rects cell-by-cell, bit for bit.
  if (args.Has("validate")) {
    const auto policy = ParseValidationPolicy(args.Flag("validate", ""));
    if (!policy.ok()) {
      std::fprintf(err, "%s\n", policy.status().ToString().c_str());
      return 2;
    }
    RobustnessCounters counters;
    auto validated = ValidateDataset(*ds, extent, policy.value(), &counters);
    if (!validated.ok()) {
      std::fprintf(err, "validation failed: %s\n",
                   validated.status().ToString().c_str());
      return 1;
    }
    ds = std::move(validated).value();
    if (counters.Defects() > 0) {
      std::fprintf(out, "validation           : %s\n",
                   counters.ToString().c_str());
    }
  }
  const std::string scheme = args.Flag("scheme", "gh");
  int threads = 1;
  SJSEL_FLAG_OR_RETURN(threads, args.Threads());
  Status status;
  if (scheme == "gh") {
    const GhVariant variant =
        args.Has("basic") ? GhVariant::kBasic : GhVariant::kRevised;
    const auto hist = GhHistogram::Build(*ds, extent, level, variant, threads);
    if (!hist.ok()) {
      std::fprintf(err, "build failed: %s\n",
                   hist.status().ToString().c_str());
      return 1;
    }
    const auto format = args.Has("sparse") ? GhHistogram::FileFormat::kSparse
                                           : GhHistogram::FileFormat::kDense;
    status = hist->Save(args.positional[2], format);
  } else if (scheme == "ph") {
    const PhVariant variant =
        args.Has("naive") ? PhVariant::kNaive : PhVariant::kSplitCrossing;
    const auto hist = PhHistogram::Build(*ds, extent, level, variant, threads);
    if (!hist.ok()) {
      std::fprintf(err, "build failed: %s\n",
                   hist.status().ToString().c_str());
      return 1;
    }
    status = hist->Save(args.positional[2]);
  } else if (scheme == "minskew") {
    int buckets = 256;
    SJSEL_FLAG_OR_RETURN(buckets, args.FlagInt("buckets", 256));
    const auto hist = MinSkewHistogram::Build(*ds, extent, buckets);
    if (!hist.ok()) {
      std::fprintf(err, "build failed: %s\n",
                   hist.status().ToString().c_str());
      return 1;
    }
    status = hist->Save(args.positional[2]);
  } else {
    std::fprintf(err, "unknown --scheme: %s\n", scheme.c_str());
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(err, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(out, "built %s histogram (level %d) for %zu rects -> %s\n",
               scheme.c_str(), level, ds->size(),
               args.positional[2].c_str());
  return 0;
}

// Loads a histogram file of any scheme, reporting which one matched.
struct AnyHistogram {
  std::optional<GhHistogram> gh;
  std::optional<PhHistogram> ph;
  std::optional<MinSkewHistogram> minskew;
};

Result<AnyHistogram> LoadAnyHistogram(const std::string& path) {
  AnyHistogram any;
  auto gh = GhHistogram::Load(path);
  if (gh.ok()) {
    any.gh = std::move(gh).value();
    return any;
  }
  auto ph = PhHistogram::Load(path);
  if (ph.ok()) {
    any.ph = std::move(ph).value();
    return any;
  }
  auto minskew = MinSkewHistogram::Load(path);
  if (minskew.ok()) {
    any.minskew = std::move(minskew).value();
    return any;
  }
  return Status::Corruption(path + " is not a GH, PH or MinSkew histogram (" +
                            gh.status().message() + ")");
}

int CmdHistInfo(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 2) return Usage(err);
  const auto any = LoadAnyHistogram(args.positional[1]);
  if (!any.ok()) {
    std::fprintf(err, "%s\n", any.status().ToString().c_str());
    return 1;
  }
  if (any->gh.has_value()) {
    const GhHistogram& hist = *any->gh;
    std::fprintf(out, "scheme   : GH (%s)\n",
                 hist.variant() == GhVariant::kBasic ? "basic" : "revised");
    std::fprintf(out, "dataset  : %s (%llu rects)\n",
                 hist.dataset_name().c_str(),
                 static_cast<unsigned long long>(hist.dataset_size()));
    std::fprintf(out, "level    : %d (%lld cells)\n", hist.grid().level(),
                 static_cast<long long>(hist.grid().num_cells()));
    std::fprintf(out, "extent   : %s\n",
                 hist.grid().extent().ToString().c_str());
    std::fprintf(out, "size     : %llu bytes\n",
                 static_cast<unsigned long long>(hist.NominalBytes()));
  } else if (any->minskew.has_value()) {
    const MinSkewHistogram& hist = *any->minskew;
    std::fprintf(out, "scheme   : MinSkew\n");
    std::fprintf(out, "dataset  : %s (%llu rects)\n",
                 hist.dataset_name().c_str(),
                 static_cast<unsigned long long>(hist.dataset_size()));
    std::fprintf(out, "buckets  : %zu\n", hist.buckets().size());
    std::fprintf(out, "extent   : %s\n", hist.extent().ToString().c_str());
    std::fprintf(out, "size     : %llu bytes\n",
                 static_cast<unsigned long long>(hist.NominalBytes()));
  } else {
    const PhHistogram& hist = *any->ph;
    std::fprintf(out, "scheme   : PH (%s)\n",
                 hist.variant() == PhVariant::kNaive ? "naive" : "split");
    std::fprintf(out, "dataset  : %s (%llu rects)\n",
                 hist.dataset_name().c_str(),
                 static_cast<unsigned long long>(hist.dataset_size()));
    std::fprintf(out, "level    : %d (%lld cells)\n", hist.grid().level(),
                 static_cast<long long>(hist.grid().num_cells()));
    std::fprintf(out, "extent   : %s\n",
                 hist.grid().extent().ToString().c_str());
    std::fprintf(out, "avg span : %s\n",
                 FormatDouble(hist.avg_span(), 3).c_str());
    std::fprintf(out, "size     : %llu bytes\n",
                 static_cast<unsigned long long>(hist.NominalBytes()));
  }
  return 0;
}

// The guarded estimate path: both inputs are dataset files, so the full
// fallback chain (GH -> PH -> sampling -> parametric) can run with input
// validation in front. Prints the same pairs/selectivity lines as the
// histogram path plus provenance: answering rung, degradation trail, and
// validation tallies.
// Parses the guarded-chain knobs shared by `estimate`, `plan` and
// `serve` — one parser, so a plan's (or the daemon's) per-pair numbers
// are bit-for-bit the standalone estimates for the same flags. Returns 0
// on success, else the command exit code (already reported to `err`).
int ParseGuardedOptions(const ParsedArgs& args, std::FILE* err,
                        GuardedEstimatorOptions* options) {
  SJSEL_FLAG_OR_RETURN(options->gh_level, args.FlagInt("gh-level", 7));
  SJSEL_FLAG_OR_RETURN(options->ph_level, args.FlagInt("ph-level", 5));
  SJSEL_FLAG_OR_RETURN(options->sampling.frac_a, args.FlagDouble("fa", 0.1));
  SJSEL_FLAG_OR_RETURN(options->sampling.frac_b, args.FlagDouble("fb", 0.1));
  int seed_flag = 1;
  SJSEL_FLAG_OR_RETURN(seed_flag, args.FlagInt("seed", 1));
  options->sampling.seed = static_cast<uint64_t>(seed_flag);
  const std::string method = args.Flag("method", "rswr");
  if (method == "rs") {
    options->sampling.method = SamplingMethod::kRegular;
  } else if (method == "rswr") {
    options->sampling.method = SamplingMethod::kRandomWithReplacement;
  } else if (method == "ss") {
    options->sampling.method = SamplingMethod::kSorted;
  } else {
    std::fprintf(err, "unknown --method: %s\n", method.c_str());
    return 2;
  }
  const auto policy = ParseValidationPolicy(args.Flag("validate", "quarantine"));
  if (!policy.ok()) {
    std::fprintf(err, "%s\n", policy.status().ToString().c_str());
    return 2;
  }
  options->policy = policy.value();
  return 0;
}

int CmdEstimateGuarded(const ParsedArgs& args, const Dataset& a,
                       const Dataset& b, std::FILE* out, std::FILE* err) {
  GuardedEstimatorOptions options;
  if (const int code = ParseGuardedOptions(args, err, &options); code != 0) {
    return code;
  }

  const GuardedEstimator estimator(options);
  const auto result = estimator.Estimate(a, b);
  if (!result.ok()) {
    std::fprintf(err, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::fprintf(out, "estimated pairs      : %s\n",
               FormatDouble(result->outcome.estimated_pairs, 1).c_str());
  std::fprintf(out, "estimated selectivity: %s\n",
               FormatDouble(result->outcome.selectivity, 6).c_str());
  std::fprintf(out, "rung                 : %s (%s)\n",
               EstimatorRungName(result->rung), result->rung_label.c_str());
  std::fprintf(out, "degradation_reason   : %s\n",
               result->degraded() ? result->degradation_reason.c_str()
                                  : "none");
  if (result->clamped) std::fprintf(out, "clamped              : yes\n");
  // The full robustness tally is always part of the answer — a clean run
  // prints all-zero defect counts rather than staying silent, so scripted
  // consumers never have to special-case the happy path.
  std::fprintf(out, "validation (a)       : %s\n",
               result->validation_a.ToString().c_str());
  std::fprintf(out, "validation (b)       : %s\n",
               result->validation_b.ToString().c_str());

  if (args.Has("explain")) {
    obs::ExplainRenderOptions render;
    render.include_timing = args.Has("timing");
    std::fputs(obs::RenderChainText(*result, render).c_str(), out);
  }

  if (args.Has("verify")) {
    // Ground truth for the estimate above: the exact plane-sweep join over
    // the raw inputs.
    uint64_t actual = 0;
    {
      SJSEL_TRACE_SPAN("verify.exact_join", "n_a=%zu n_b=%zu", a.size(),
                       b.size());
      SJSEL_METRIC_SCOPED_LATENCY("verify.exact_join_us");
      actual = PlaneSweepJoinCount(a, b);
    }
    std::fprintf(out, "actual pairs         : %llu\n",
                 static_cast<unsigned long long>(actual));
    if (actual > 0) {
      const double rel =
          (result->outcome.estimated_pairs - static_cast<double>(actual)) /
          static_cast<double>(actual);
      std::fprintf(out, "relative error       : %s\n",
                   FormatDouble(rel, 4).c_str());
    }
  }
  return 0;
}

// Estimator introspection: the full explain report — per-cell term
// breakdown of the estimate, contribution skew, the guarded chain's
// per-rung trail, and (with --exact) per-cell error attribution against
// the exact plane-sweep join. Deterministic output: byte-identical across
// runs and --threads values unless --timing is given.
int CmdExplain(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 3) return Usage(err);
  const auto a = Dataset::Load(args.positional[1]);
  const auto b = Dataset::Load(args.positional[2]);
  if (!a.ok() || !b.ok()) {
    std::fprintf(err, "%s\n",
                 (!a.ok() ? a.status() : b.status()).ToString().c_str());
    return 1;
  }
  obs::ExplainOptions options;
  const std::string scheme = args.Flag("scheme", "gh");
  if (scheme == "gh") {
    options.scheme = obs::ExplainScheme::kGh;
  } else if (scheme == "ph") {
    options.scheme = obs::ExplainScheme::kPh;
  } else {
    std::fprintf(err, "unknown --scheme: %s\n", scheme.c_str());
    return 2;
  }
  SJSEL_FLAG_OR_RETURN(options.level, args.FlagInt("level", 7));
  SJSEL_FLAG_OR_RETURN(options.top_k, args.FlagInt("top", 10));
  options.with_exact = args.Has("exact");
  SJSEL_FLAG_OR_RETURN(options.threads, args.Threads());
  const auto policy = ParseValidationPolicy(args.Flag("validate", "quarantine"));
  if (!policy.ok()) {
    std::fprintf(err, "%s\n", policy.status().ToString().c_str());
    return 2;
  }
  options.policy = policy.value();

  const auto report = obs::BuildEstimateExplain(*a, *b, options);
  if (!report.ok()) {
    std::fprintf(err, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  obs::ExplainRenderOptions render;
  render.include_timing = args.Has("timing");
  std::fputs(obs::RenderExplainText(*report, render).c_str(), out);

  const std::string json_path = args.Flag("json", "");
  if (!json_path.empty()) {
    const std::string json = obs::RenderExplainJson(*report, render);
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    const bool written =
        f != nullptr &&
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    if (f != nullptr && std::fclose(f) != 0) {
      std::fprintf(err, "failed to write explain json to %s\n",
                   json_path.c_str());
      return 1;
    }
    if (!written) {
      std::fprintf(err, "failed to write explain json to %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(out, "explain json         : %s\n", json_path.c_str());
  }
  const std::string csv_path = args.Flag("csv", "");
  if (!csv_path.empty()) {
    const Status st = obs::WriteExplainHeatmapCsv(*report, csv_path);
    if (!st.ok()) {
      std::fprintf(err, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(out, "heatmap csv          : %s\n", csv_path.c_str());
  }
  return 0;
}

int CmdEstimate(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 3) return Usage(err);
  // Dataset files get the guarded fallback chain; histogram files keep the
  // direct single-scheme path (Dataset::Load fails fast on a histogram
  // magic, so sniffing is cheap and cannot misfire).
  {
    const auto da = Dataset::Load(args.positional[1]);
    if (da.ok()) {
      const auto db = Dataset::Load(args.positional[2]);
      if (!db.ok()) {
        std::fprintf(err, "%s\n", db.status().ToString().c_str());
        return 1;
      }
      return CmdEstimateGuarded(args, *da, *db, out, err);
    }
  }
  const auto a = LoadAnyHistogram(args.positional[1]);
  const auto b = LoadAnyHistogram(args.positional[2]);
  if (!a.ok() || !b.ok()) {
    std::fprintf(err, "%s\n",
                 (!a.ok() ? a.status() : b.status()).ToString().c_str());
    return 1;
  }
  Result<double> pairs = Status::InvalidArgument(
      "histogram files use different schemes");
  uint64_t n1 = 0;
  uint64_t n2 = 0;
  if (a->gh.has_value() && b->gh.has_value()) {
    pairs = EstimateGhJoinPairs(*a->gh, *b->gh);
    n1 = a->gh->dataset_size();
    n2 = b->gh->dataset_size();
  } else if (a->ph.has_value() && b->ph.has_value()) {
    pairs = EstimatePhJoinPairs(*a->ph, *b->ph);
    n1 = a->ph->dataset_size();
    n2 = b->ph->dataset_size();
  } else if (a->minskew.has_value() && b->minskew.has_value()) {
    pairs = EstimateMinSkewJoinPairs(*a->minskew, *b->minskew);
    n1 = a->minskew->dataset_size();
    n2 = b->minskew->dataset_size();
  }
  if (!pairs.ok()) {
    std::fprintf(err, "%s\n", pairs.status().ToString().c_str());
    return 1;
  }
  std::fprintf(out, "estimated pairs      : %s\n",
               FormatDouble(pairs.value(), 1).c_str());
  if (n1 > 0 && n2 > 0) {
    std::fprintf(out, "estimated selectivity: %s\n",
                 FormatDouble(pairs.value() / (static_cast<double>(n1) *
                                               static_cast<double>(n2)),
                              6)
                     .c_str());
  }
  return 0;
}

int CmdRange(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 3) return Usage(err);
  const auto any = LoadAnyHistogram(args.positional[1]);
  if (!any.ok()) {
    std::fprintf(err, "%s\n", any.status().ToString().c_str());
    return 1;
  }
  if (!any->gh.has_value()) {
    std::fprintf(err, "range estimation needs a GH histogram\n");
    return 2;
  }
  const auto query = ParseRect(args.positional[2]);
  if (!query.has_value()) {
    std::fprintf(err, "bad query rect (want x0,y0,x1,y1)\n");
    return 2;
  }
  std::fprintf(out, "estimated matches: %s\n",
               FormatDouble(EstimateGhRangeCount(*any->gh, *query), 1)
                   .c_str());
  return 0;
}

int CmdJoin(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 3) return Usage(err);
  const auto a = Dataset::Load(args.positional[1]);
  const auto b = Dataset::Load(args.positional[2]);
  if (!a.ok() || !b.ok()) {
    std::fprintf(err, "%s\n",
                 (!a.ok() ? a.status() : b.status()).ToString().c_str());
    return 1;
  }
  const std::string algo = args.Flag("algo", "sweep");
  int threads = 1;
  SJSEL_FLAG_OR_RETURN(threads, args.Threads());
  uint64_t count = 0;
  if (algo == "sweep") {
    count = PlaneSweepJoinCount(*a, *b);
  } else if (algo == "pbsm") {
    PbsmOptions pbsm_options;
    pbsm_options.threads = threads;
    count = PbsmJoinCount(*a, *b, pbsm_options);
  } else if (algo == "rtree") {
    const RTree ta = RTree::BulkLoadStr(RTree::DatasetEntries(*a));
    const RTree tb = RTree::BulkLoadStr(RTree::DatasetEntries(*b));
    count = RTreeJoinCount(ta, tb, threads);
  } else if (algo == "quadtree") {
    Rect extent = a->ComputeExtent();
    extent.Extend(b->ComputeExtent());
    Quadtree ta(extent);
    Quadtree tb(extent);
    for (size_t i = 0; i < a->size(); ++i) {
      ta.Insert((*a)[i], static_cast<int64_t>(i));
    }
    for (size_t i = 0; i < b->size(); ++i) {
      tb.Insert((*b)[i], static_cast<int64_t>(i));
    }
    const auto result = QuadtreeJoinCount(ta, tb);
    if (!result.ok()) {
      std::fprintf(err, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    count = result.value();
  } else if (algo == "nested") {
    count = NestedLoopJoinCount(*a, *b);
  } else {
    std::fprintf(err, "unknown --algo: %s\n", algo.c_str());
    return 2;
  }
  const double selectivity =
      a->empty() || b->empty()
          ? 0.0
          : static_cast<double>(count) / (static_cast<double>(a->size()) *
                                          static_cast<double>(b->size()));
  std::fprintf(out, "pairs      : %llu\n",
               static_cast<unsigned long long>(count));
  std::fprintf(out, "selectivity: %s\n",
               FormatDouble(selectivity, 6).c_str());
  return 0;
}

int CmdSample(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 3) return Usage(err);
  const auto a = Dataset::Load(args.positional[1]);
  const auto b = Dataset::Load(args.positional[2]);
  if (!a.ok() || !b.ok()) {
    std::fprintf(err, "%s\n",
                 (!a.ok() ? a.status() : b.status()).ToString().c_str());
    return 1;
  }
  SamplingOptions options;
  const std::string method = args.Flag("method", "rswr");
  if (method == "rs") {
    options.method = SamplingMethod::kRegular;
  } else if (method == "rswr") {
    options.method = SamplingMethod::kRandomWithReplacement;
  } else if (method == "ss") {
    options.method = SamplingMethod::kSorted;
  } else {
    std::fprintf(err, "unknown --method: %s\n", method.c_str());
    return 2;
  }
  SJSEL_FLAG_OR_RETURN(options.frac_a, args.FlagDouble("fa", 0.1));
  SJSEL_FLAG_OR_RETURN(options.frac_b, args.FlagDouble("fb", 0.1));
  int seed_flag = 1;
  SJSEL_FLAG_OR_RETURN(seed_flag, args.FlagInt("seed", 1));
  options.seed = static_cast<uint64_t>(seed_flag);
  SJSEL_FLAG_OR_RETURN(options.threads, args.Threads());
  const auto est = EstimateBySampling(*a, *b, options);
  if (!est.ok()) {
    std::fprintf(err, "%s\n", est.status().ToString().c_str());
    return 1;
  }
  std::fprintf(out, "samples              : %zu x %zu\n", est->sample_a_size,
               est->sample_b_size);
  std::fprintf(out, "sample join pairs    : %llu\n",
               static_cast<unsigned long long>(est->sample_pairs));
  std::fprintf(out, "estimated pairs      : %s\n",
               FormatDouble(est->estimated_pairs, 1).c_str());
  std::fprintf(out, "estimated selectivity: %s\n",
               FormatDouble(est->selectivity, 6).c_str());
  std::fprintf(out, "time (select/build/join): %.4f / %.4f / %.4f s\n",
               est->select_seconds, est->build_seconds, est->join_seconds);
  return 0;
}

}  // namespace

namespace {

// Multi-way join planning (docs/PLANNER.md): pairwise selectivities from
// the guarded chain feed a DP search over bushy join trees.
int CmdPlan(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() < 3) {
    std::fprintf(err, "plan needs at least two dataset files\n");
    return Usage(err);
  }
  PlannerOptions options;
  if (const int code = ParseGuardedOptions(args, err, &options.estimator);
      code != 0) {
    return code;
  }
  SJSEL_FLAG_OR_RETURN(options.threads, args.Threads());
  SJSEL_FLAG_OR_RETURN(options.dp_limit, args.FlagInt("dp-limit", 12));

  // Datasets live here; the planner borrows them by pointer, labeled by
  // their file path (unique even when generated dataset *names* collide).
  std::vector<Dataset> datasets;
  datasets.reserve(args.positional.size() - 1);
  std::vector<PlannerInput> inputs;
  for (size_t i = 1; i < args.positional.size(); ++i) {
    auto loaded = Dataset::Load(args.positional[i]);
    if (!loaded.ok()) {
      std::fprintf(err, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    datasets.push_back(std::move(loaded).value());
  }
  for (size_t i = 1; i < args.positional.size(); ++i) {
    inputs.push_back(PlannerInput{args.positional[i], &datasets[i - 1]});
  }

  const auto plan = PlanMultiJoin(inputs, options);
  if (!plan.ok()) {
    std::fprintf(err, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  if (args.Has("json")) {
    std::fprintf(out, "%s\n", RenderPlanJson(*plan).c_str());
  } else {
    std::fputs(RenderPlanText(*plan).c_str(), out);
  }
  return 0;
}

// `serve` runs until a stop is requested; the signal handler can only
// set a flag, which the wait loop below polls.
std::atomic<bool> g_serve_signal_stop{false};

void HandleServeSignal(int) { g_serve_signal_stop.store(true); }

int CmdServe(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 2) {
    std::fprintf(err, "serve needs a socket path\n");
    return Usage(err);
  }
  server::ServerOptions options;
  options.socket_path = args.positional[1];
  if (const int code = ParseGuardedOptions(args, err, &options.estimator);
      code != 0) {
    return code;
  }
  SJSEL_FLAG_OR_RETURN(options.workers, args.FlagInt("workers", 4));
  SJSEL_FLAG_OR_RETURN(options.max_queue, args.FlagInt("max-queue", 64));
  SJSEL_FLAG_OR_RETURN(options.audit_rate, args.FlagDouble("audit-rate", 0.0));
  SJSEL_FLAG_OR_RETURN(options.audit_alarm,
                       args.FlagDouble("audit-alarm", 0.5));
  double audit_exact_cap = 0.0;
  SJSEL_FLAG_OR_RETURN(audit_exact_cap,
                       args.FlagDouble("audit-exact-cap", 0.0));
  int slowlog_k = 32;
  SJSEL_FLAG_OR_RETURN(slowlog_k, args.FlagInt("slowlog-k", 32));
  if (options.workers < 1) {
    std::fprintf(err, "--workers must be >= 1\n");
    return 2;
  }
  if (options.audit_rate < 0.0 || options.audit_rate > 1.0) {
    std::fprintf(err, "--audit-rate must be in [0, 1]\n");
    return 2;
  }
  if (audit_exact_cap < 0.0 || slowlog_k < 1) {
    std::fprintf(err, "--audit-exact-cap must be >= 0, --slowlog-k >= 1\n");
    return 2;
  }
  options.audit_exact_cap = static_cast<uint64_t>(audit_exact_cap);
  options.slowlog_capacity = static_cast<size_t>(slowlog_k);

  // Either logging flag arms the structured logger for the daemon's
  // lifetime: default level info, default sink stderr ("-" spells it
  // explicitly, a path logs to that file).
  const bool logging = args.Has("log-level") || args.Has("log-file");
  if (logging) {
    obs::LogLevel level = obs::LogLevel::kInfo;
    const std::string level_name = args.Flag("log-level", "info");
    if (!obs::ParseLogLevel(level_name, &level)) {
      std::fprintf(err, "bad --log-level: '%s' (want debug|info|warn|error)\n",
                   level_name.c_str());
      return 2;
    }
    std::string log_path = args.Flag("log-file", "");
    if (log_path == "1") log_path = "";  // bare --log-file: stderr
    if (!obs::Logger::Global().Arm(level, log_path)) {
      std::fprintf(err, "failed to open --log-file %s\n", log_path.c_str());
      return 1;
    }
  }

  server::Server daemon(options);
  const Status status = daemon.Start();
  if (!status.ok()) {
    std::fprintf(err, "%s\n", status.ToString().c_str());
    if (logging) obs::Logger::Global().Disarm();
    return 1;
  }
  std::fprintf(out, "listening on %s (workers=%d max-queue=%d)\n",
               options.socket_path.c_str(), options.workers,
               options.max_queue);
  std::fflush(out);
  SJSEL_LOG_INFO("server.start", obs::LogFields()
                                     .Str("socket", options.socket_path)
                                     .Int("workers", options.workers)
                                     .Int("queue_cap", options.max_queue)
                                     .Num("audit_rate", options.audit_rate)
                                     .Str("version", kSjselVersion));

  g_serve_signal_stop.store(false);
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  while (!daemon.stop_requested()) {
    if (g_serve_signal_stop.load()) daemon.RequestStop();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  daemon.Stop();
  std::fprintf(out, "served %llu requests\n",
               static_cast<unsigned long long>(daemon.requests_served()));
  // Drain-time telemetry: snapshot the metrics and close the log *here*,
  // right after the drain completes, so a SIGTERM'd daemon leaves a
  // complete dump on disk even though the generic post-dispatch flush in
  // RunCli also runs (that later rewrite is idempotent).
  const std::string metrics_path = args.Flag("metrics", "");
  if (!metrics_path.empty() && metrics_path != "1") {
    if (!obs::MetricsRegistry::Global().WriteJson(metrics_path)) {
      std::fprintf(err, "failed to write metrics to %s\n",
                   metrics_path.c_str());
    }
  }
  SJSEL_LOG_INFO("server.stop",
                 obs::LogFields()
                     .Uint("requests_served", daemon.requests_served())
                     .Uint("uptime_s", daemon.uptime_seconds()));
  if (logging) obs::Logger::Global().Disarm();
  return 0;
}

// Scripted client: sends one request line per invocation argument, or —
// with no request argument — every line read from stdin (a scripted
// NDJSON session, used by the CI smoke drill). Prints one response line
// per request.
int CmdClient(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() < 2) {
    std::fprintf(err, "client needs a socket path\n");
    return Usage(err);
  }
  int retry = 1;
  SJSEL_FLAG_OR_RETURN(retry, args.FlagInt("retry", 1));
  int backoff_ms = 25;
  SJSEL_FLAG_OR_RETURN(backoff_ms, args.FlagInt("retry-backoff-ms", 25));
  if (retry < 1 || backoff_ms < 1) {
    std::fprintf(err, "--retry and --retry-backoff-ms must be >= 1\n");
    return 2;
  }
  server::Client client;
  const Status status =
      client.ConnectWithRetry(args.positional[1], retry, backoff_ms);
  if (!status.ok()) {
    std::fprintf(err, "%s\n", status.ToString().c_str());
    return 1;
  }
  const auto send = [&](const std::string& line) -> int {
    if (line.empty()) return 0;
    const auto response = client.Call(line);
    if (!response.ok()) {
      std::fprintf(err, "%s\n", response.status().ToString().c_str());
      return 1;
    }
    std::fprintf(out, "%s\n", response->c_str());
    return 0;
  };
  if (args.positional.size() > 2) {
    for (size_t i = 2; i < args.positional.size(); ++i) {
      if (const int code = send(args.positional[i]); code != 0) return code;
    }
    return 0;
  }
  std::string line;
  int ch;
  while ((ch = std::fgetc(stdin)) != EOF) {
    if (ch == '\n') {
      if (const int code = send(line); code != 0) return code;
      line.clear();
    } else {
      line.push_back(static_cast<char>(ch));
    }
  }
  return send(line);
}

void PrintRecoveryInfo(std::FILE* out, const stream::RecoveryInfo& info) {
  std::fprintf(out,
               "recovery: checkpoint_seq=%llu replayed_records=%llu"
               " skipped_records=%llu replayed_ops=%llu dropped_bytes=%llu\n",
               static_cast<unsigned long long>(info.checkpoint_seq),
               static_cast<unsigned long long>(info.replayed_records),
               static_cast<unsigned long long>(info.skipped_records),
               static_cast<unsigned long long>(info.replayed_ops),
               static_cast<unsigned long long>(info.dropped_bytes));
  if (!info.tail_error.empty()) {
    std::fprintf(out, "recovery: dropped tail: %s\n", info.tail_error.c_str());
  }
}

// Durable streaming ingest (docs/DURABILITY.md). `--init` creates the
// directory; the default mode reads one op per stdin line (`add x0 y0 x1
// y1`, `remove x0 y0 x1 y1`, `checkpoint`) and acknowledges each batch
// only after its WAL record is durable — the drill scripts treat an
// `ack` as a promise the op survives kill -9.
int CmdIngest(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 2) {
    std::fprintf(err, "ingest needs a stream directory\n");
    return Usage(err);
  }
  const std::string& dir = args.positional[1];

  if (args.Has("init")) {
    stream::StreamOptions options;
    const auto extent = ParseRect(args.Flag("extent", "0,0,1,1"));
    if (!extent.has_value()) {
      std::fprintf(err, "bad --extent (want x0,y0,x1,y1)\n");
      return 2;
    }
    options.extent = *extent;
    SJSEL_FLAG_OR_RETURN(options.gh_level, args.FlagInt("gh-level", 7));
    SJSEL_FLAG_OR_RETURN(options.ph_level, args.FlagInt("ph-level", 5));
    int seal_every = 8;
    SJSEL_FLAG_OR_RETURN(seal_every, args.FlagInt("seal-every", 8));
    int checkpoint_every = 0;
    SJSEL_FLAG_OR_RETURN(checkpoint_every,
                         args.FlagInt("checkpoint-every", 0));
    if (seal_every < 1 || checkpoint_every < 0) {
      std::fprintf(err, "--seal-every must be >= 1, --checkpoint-every >= 0\n");
      return 2;
    }
    options.seal_every = static_cast<uint32_t>(seal_every);
    options.checkpoint_every = static_cast<uint32_t>(checkpoint_every);
    options.fsync_always = !args.Has("no-fsync");
    const Status status = stream::StreamIngest::Init(dir, options);
    if (!status.ok()) {
      std::fprintf(err, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(out, "initialized stream %s (gh-level=%d ph-level=%d"
                 " seal-every=%u checkpoint-every=%u fsync=%d)\n",
                 dir.c_str(), options.gh_level, options.ph_level,
                 options.seal_every, options.checkpoint_every,
                 options.fsync_always ? 1 : 0);
    return 0;
  }

  auto opened = stream::StreamIngest::Open(dir);
  if (!opened.ok()) {
    std::fprintf(err, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  stream::StreamIngest& ingest = **opened;

  if (args.Has("status")) {
    std::fprintf(out,
                 "stream %s: seq=%llu snapshot_seq=%llu checkpoint_seq=%llu"
                 " active_batches=%llu wal_bytes=%llu\n",
                 dir.c_str(), static_cast<unsigned long long>(ingest.seq()),
                 static_cast<unsigned long long>(ingest.snapshot()->seq),
                 static_cast<unsigned long long>(ingest.checkpoint_seq()),
                 static_cast<unsigned long long>(ingest.active_batches()),
                 static_cast<unsigned long long>(ingest.wal_bytes()));
    PrintRecoveryInfo(out, ingest.recovery());
    return 0;
  }

  if (args.Has("digest")) {
    const auto digest = ingest.StateDigest();
    if (!digest.ok()) {
      std::fprintf(err, "%s\n", digest.status().ToString().c_str());
      return 1;
    }
    auto state = ingest.MaterializeState();
    if (!state.ok()) {
      std::fprintf(err, "%s\n", state.status().ToString().c_str());
      return 1;
    }
    const auto self = EstimateGhJoinPairs(state->gh, state->gh);
    if (!self.ok()) {
      std::fprintf(err, "%s\n", self.status().ToString().c_str());
      return 1;
    }
    std::fprintf(out, "seq=%llu digest=%s self_join=%.17g\n",
                 static_cast<unsigned long long>(state->seq),
                 digest->c_str(), self.value());
    return 0;
  }

  if (args.Has("estimate")) {
    const std::string path = args.Flag("estimate", "");
    auto probe = Dataset::Load(path);
    if (!probe.ok()) {
      std::fprintf(err, "%s\n", probe.status().ToString().c_str());
      return 1;
    }
    const auto snap = ingest.snapshot();
    const auto built = GhHistogram::Build(*probe, snap->gh.grid().extent(),
                                          snap->gh.grid().level());
    if (!built.ok()) {
      std::fprintf(err, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    const auto pairs = EstimateGhJoinPairs(snap->gh, built.value());
    if (!pairs.ok()) {
      std::fprintf(err, "%s\n", pairs.status().ToString().c_str());
      return 1;
    }
    std::fprintf(out, "snapshot_seq=%llu estimated_pairs=%.17g\n",
                 static_cast<unsigned long long>(snap->seq), pairs.value());
    return 0;
  }

  if (args.Has("checkpoint")) {
    const Status status = ingest.Checkpoint();
    if (!status.ok()) {
      std::fprintf(err, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(out, "checkpointed at seq=%llu wal_bytes=%llu\n",
                 static_cast<unsigned long long>(ingest.checkpoint_seq()),
                 static_cast<unsigned long long>(ingest.wal_bytes()));
    return 0;
  }

  // Op-stream mode: one op per line; every `ack <seq>` line is flushed
  // before the next op is read, so a driver that killed this process can
  // trust exactly the acked prefix to be recovered.
  std::string line;
  int ch;
  uint64_t applied = 0;
  const auto run_line = [&](const std::string& text) -> int {
    if (text.empty()) return 0;
    Rect r;
    char word[16] = {0};
    if (std::sscanf(text.c_str(), "%15s %lf %lf %lf %lf", word, &r.min_x,
                    &r.min_y, &r.max_x, &r.max_y) == 5 &&
        (std::strcmp(word, "add") == 0 || std::strcmp(word, "remove") == 0)) {
      const stream::OpKind kind = std::strcmp(word, "add") == 0
                                      ? stream::OpKind::kAdd
                                      : stream::OpKind::kRemove;
      const auto seq = ingest.Apply({{kind, r}});
      if (!seq.ok()) {
        std::fprintf(err, "%s\n", seq.status().ToString().c_str());
        return 1;
      }
      ++applied;
      std::fprintf(out, "ack %llu\n",
                   static_cast<unsigned long long>(seq.value()));
      std::fflush(out);
      return 0;
    }
    if (text == "checkpoint") {
      const Status status = ingest.Checkpoint();
      if (!status.ok()) {
        std::fprintf(err, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::fprintf(out, "checkpoint %llu\n",
                   static_cast<unsigned long long>(ingest.checkpoint_seq()));
      std::fflush(out);
      return 0;
    }
    std::fprintf(err, "bad op line: %s\n", text.c_str());
    return 1;
  };
  while ((ch = std::fgetc(stdin)) != EOF) {
    if (ch == '\n') {
      if (const int code = run_line(line); code != 0) return code;
      line.clear();
    } else {
      line.push_back(static_cast<char>(ch));
    }
  }
  if (const int code = run_line(line); code != 0) return code;
  std::fprintf(out, "applied %llu ops (seq=%llu)\n",
               static_cast<unsigned long long>(applied),
               static_cast<unsigned long long>(ingest.seq()));
  return 0;
}

// Deterministic op-stream generator for the ingest drills: same n, seed,
// extent, and remove-frac always print the same lines, so a reference
// state can be rebuilt from any acked prefix of the stream.
int CmdGenOps(const ParsedArgs& args, std::FILE* out, std::FILE* err) {
  if (args.positional.size() != 2) {
    std::fprintf(err, "gen-ops needs a count\n");
    return Usage(err);
  }
  char* end = nullptr;
  const unsigned long long n_raw =
      std::strtoull(args.positional[1].c_str(), &end, 10);
  if (end == args.positional[1].c_str() || *end != '\0' || n_raw == 0) {
    std::fprintf(err, "bad op count: %s\n", args.positional[1].c_str());
    return 2;
  }
  const size_t n = static_cast<size_t>(n_raw);
  int seed_flag = 1;
  SJSEL_FLAG_OR_RETURN(seed_flag, args.FlagInt("seed", 1));
  double remove_frac = 0.0;
  SJSEL_FLAG_OR_RETURN(remove_frac, args.FlagDouble("remove-frac", 0.0));
  if (remove_frac < 0.0 || remove_frac >= 1.0) {
    std::fprintf(err, "--remove-frac must be in [0, 1)\n");
    return 2;
  }
  const auto extent = ParseRect(args.Flag("extent", "0,0,1,1"));
  if (!extent.has_value()) {
    std::fprintf(err, "bad --extent (want x0,y0,x1,y1)\n");
    return 2;
  }

  gen::SizeDist size{gen::SizeDist::Kind::kUniform, 0.02, 0.02, 0.5};
  const Dataset ds = gen::UniformRects(
      "ops", n, *extent, size, static_cast<uint64_t>(seed_flag));
  // Removes target already-emitted adds at a fixed stride, so the stream
  // is valid (never removes what was not added) for every prefix.
  const size_t stride =
      remove_frac > 0.0 ? static_cast<size_t>(1.0 / remove_frac) : 0;
  size_t emitted_adds = 0;
  size_t removed = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    const Rect& r = ds.rects()[i];
    std::fprintf(out, "add %.17g %.17g %.17g %.17g\n", r.min_x, r.min_y,
                 r.max_x, r.max_y);
    ++emitted_adds;
    if (stride > 0 && emitted_adds % stride == 0 && removed < i) {
      const Rect& victim = ds.rects()[removed];
      std::fprintf(out, "remove %.17g %.17g %.17g %.17g\n", victim.min_x,
                   victim.min_y, victim.max_x, victim.max_y);
      ++removed;
    }
  }
  return 0;
}

int Dispatch(const ParsedArgs& parsed, std::FILE* out, std::FILE* err) {
  const std::string& command = parsed.positional[0];
  if (command == "gen") return CmdGen(parsed, out, err);
  if (command == "gen-geo") return CmdGenGeo(parsed, out, err);
  if (command == "refine-join") return CmdRefineJoin(parsed, out, err);
  if (command == "knn") return CmdKnn(parsed, out, err);
  if (command == "stats") return CmdStats(parsed, out, err);
  if (command == "hist-build") return CmdHistBuild(parsed, out, err);
  if (command == "hist-info") return CmdHistInfo(parsed, out, err);
  if (command == "estimate") return CmdEstimate(parsed, out, err);
  if (command == "explain") return CmdExplain(parsed, out, err);
  if (command == "range") return CmdRange(parsed, out, err);
  if (command == "join") return CmdJoin(parsed, out, err);
  if (command == "sample") return CmdSample(parsed, out, err);
  if (command == "plan") return CmdPlan(parsed, out, err);
  if (command == "serve") return CmdServe(parsed, out, err);
  if (command == "client") return CmdClient(parsed, out, err);
  if (command == "ingest") return CmdIngest(parsed, out, err);
  if (command == "gen-ops") return CmdGenOps(parsed, out, err);
  std::fprintf(err, "unknown command: %s\n", command.c_str());
  return Usage(err);
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::FILE* out,
           std::FILE* err) {
  if (args.empty()) return Usage(err);
  const ParsedArgs parsed = Parse(args);
  if (parsed.positional.empty()) return Usage(err);

  // Global fault-injection arming, scoped to this invocation. A bad spec
  // is a usage error; an injected fault that escapes every recovery layer
  // must exit as a diagnosed failure, never a crash — hence the catch-all
  // around the dispatch below.
  std::optional<ScopedFaultInjection> injection;
  if (parsed.Has("inject-faults")) {
    injection.emplace(parsed.Flag("inject-faults", ""));
    if (!injection->status().ok()) {
      std::fprintf(err, "%s\n", injection->status().ToString().c_str());
      return 2;
    }
  }

  // Observability arming, scoped to this invocation like fault injection:
  // --trace records spans, --metrics collects counters; both flush to
  // their files after the command finishes, whatever its outcome.
  const std::string trace_path = parsed.Flag("trace", "");
  const std::string metrics_path = parsed.Flag("metrics", "");
  const bool tracing = parsed.Has("trace");
  const bool metrics = parsed.Has("metrics");
  if ((tracing && trace_path == "1") || (metrics && metrics_path == "1")) {
    std::fprintf(err, "--trace/--metrics need a file path (--trace=t.json)\n");
    return 2;
  }
  if (metrics) obs::MetricsRegistry::Arm();
  if (tracing) obs::Tracer::Global().Arm();

  // Global kernel-backend forcing, scoped to this invocation: every batch
  // kernel (histogram builds, join filters, sample join) dispatches to the
  // named backend. CI's forced-backend drill and A/B timing both ride on
  // this; an unavailable backend is a usage error, not a crash later.
  bool backend_forced = false;
  if (parsed.Has("kernel-backend")) {
    const std::string name = parsed.Flag("kernel-backend", "");
    KernelBackend backend = KernelBackend::kScalar;
    if (!ParseKernelBackend(name, &backend)) {
      std::fprintf(err,
                   "bad --kernel-backend: '%s' "
                   "(want scalar|avx2|avx512|neon)\n",
                   name.c_str());
      return 2;
    }
    if (!KernelBackendAvailable(backend)) {
      std::fprintf(err, "--kernel-backend=%s: not available on this CPU\n",
                   name.c_str());
      return 2;
    }
    SetKernelBackendOverride(backend);
    backend_forced = true;
  }

  int code = 0;
  try {
    // Inner scope: the cli.run span must complete before the flush below,
    // or the top-level span would be missing from its own trace.
    SJSEL_TRACE_SPAN("cli.run", "command=%s",
                     parsed.positional[0].c_str());
    code = Dispatch(parsed, out, err);
  } catch (const std::exception& e) {
    std::fprintf(err, "fault: %s\n", e.what());
    code = 1;
  }
  if (backend_forced) ClearKernelBackendOverride();

  if (metrics) {
    obs::MetricsRegistry::Disarm();
    std::fprintf(out, "metrics:\n%s",
                 obs::MetricsRegistry::Global().SnapshotText().c_str());
    if (!obs::MetricsRegistry::Global().WriteJson(metrics_path)) {
      std::fprintf(err, "failed to write metrics to %s\n",
                   metrics_path.c_str());
      if (code == 0) code = 1;
    }
  }
  if (tracing) {
    obs::Tracer::Global().Disarm();
    if (!obs::Tracer::Global().WriteChromeTrace(trace_path)) {
      std::fprintf(err, "failed to write trace to %s\n", trace_path.c_str());
      if (code == 0) code = 1;
    }
  }
  return code;
}

}  // namespace cli
}  // namespace sjsel
