#ifndef SJSEL_PLANNER_JOIN_PLANNER_H_
#define SJSEL_PLANNER_JOIN_PLANNER_H_

// Selectivity-driven multi-way spatial join planning (docs/PLANNER.md).
//
// This is the first real *consumer* of the estimator stack: given k
// datasets, it asks the guarded fallback chain (GH → PH → sampling →
// parametric, src/core/guarded_estimator.h) for every pairwise join
// selectivity and searches join trees with dynamic programming over
// dataset subsets, minimizing the classic C_out cost — the sum of
// estimated intermediate-result cardinalities. Per-pair provenance
// (answering rung, degradation_reason) rides along into the plan, so a
// plan built on degraded estimates says so.
//
// Distinct from src/engine/planner.h: the engine's planner orders a
// *chain* query (consecutive-intersect semantics, catalog-backed, GH
// only). This planner targets the clique multi-way spatial join — every
// result tuple intersects pairwise — costs bushy trees, and runs on the
// guarded chain so it degrades instead of failing.

#include <cstddef>
#include <string>
#include <vector>

#include "core/guarded_estimator.h"
#include "geom/dataset.h"
#include "util/result.h"

namespace sjsel {

struct PlannerOptions {
  /// Options handed verbatim to GuardedEstimator for every pair. The
  /// defaults match the CLI `estimate` command, so a plan's per-pair
  /// numbers are bit-for-bit the standalone estimates.
  GuardedEstimatorOptions estimator;
  /// Fan-out for pairwise estimation. Never changes any output — pair
  /// results are merged by pair index, not completion order.
  int threads = 1;
  /// Inputs up to this count get exhaustive bushy DP (optimal under the
  /// cost model); beyond it the planner switches to greedy pairing.
  int dp_limit = 12;
};

/// One pairwise estimate, with the guarded chain's provenance.
struct PairSelectivity {
  /// Indices into MultiJoinPlan::inputs, i < j.
  size_t i = 0;
  size_t j = 0;
  double estimated_pairs = 0.0;
  double selectivity = 0.0;
  EstimatorRung rung = EstimatorRung::kGh;
  std::string rung_label;
  /// Same contract as EstimateResult::degradation_reason; empty when the
  /// GH rung answered.
  std::string degradation_reason;
  bool clamped = false;
};

/// One join in bottom-up execution order.
struct PlanStep {
  std::string left;   ///< rendered subtree, e.g. "(TS * TCB)" or "CAS"
  std::string right;
  /// Estimated rows out of this join under the clique independence model.
  double output_cardinality = 0.0;
};

/// One planner input: the dataset plus the label the plan refers to it
/// by. Labels (CLI and server pass the dataset file path) must be unique
/// and non-empty — Dataset::name() is not required to be either.
struct PlannerInput {
  std::string label;
  const Dataset* dataset = nullptr;
};

struct MultiJoinPlan {
  /// Input labels in caller order (what pair indices refer to).
  std::vector<std::string> inputs;
  std::vector<size_t> input_sizes;
  /// All k*(k-1)/2 pairs, ordered by (i, j).
  std::vector<PairSelectivity> pairs;
  /// The chosen tree rendered as a parenthesized expression,
  /// e.g. "((TS * TCB) * CAS)".
  std::string tree;
  /// Joins of the chosen tree, bottom-up, left subtree first.
  std::vector<PlanStep> steps;
  /// Sum of step output cardinalities (C_out).
  double cost = 0.0;
  /// "dp" (exhaustive over bushy trees) or "greedy".
  std::string algorithm;

  /// True when any pair's estimate came from below the GH rung.
  bool degraded() const;
};

/// Plans a multi-way spatial join over `inputs` (datasets borrowed; at
/// least two, unique non-empty labels). Deterministic: identical inputs
/// and options produce an identical plan for every `threads` value.
Result<MultiJoinPlan> PlanMultiJoin(const std::vector<PlannerInput>& inputs,
                                    const PlannerOptions& options = {});

/// Human-readable rendering. Per-pair numbers use the same formatting as
/// the CLI `estimate` command (pairs to 1 decimal, selectivity to 6), so
/// the two outputs can be diffed directly.
std::string RenderPlanText(const MultiJoinPlan& plan);

/// Machine-readable rendering (deterministic; numbers round-trip at full
/// precision). Schema in docs/PLANNER.md.
std::string RenderPlanJson(const MultiJoinPlan& plan);

}  // namespace sjsel

#endif  // SJSEL_PLANNER_JOIN_PLANNER_H_
