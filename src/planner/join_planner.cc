#include "planner/join_planner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace sjsel {
namespace {

int PopCount(unsigned mask) { return __builtin_popcount(mask); }

// Pair (i, j), i < j, flattened to its index in the (i,j)-ordered pair
// list: all pairs with first index 0 come first, then first index 1, ...
size_t PairIndex(size_t i, size_t j, size_t k) {
  // Pairs before row i: i*k - i*(i+1)/2. Within row i: j - i - 1.
  return i * k - i * (i + 1) / 2 + (j - i - 1);
}

// Estimated cardinality of joining every dataset in `mask` under the
// clique independence model: the product of input sizes times the
// product of all in-mask pairwise selectivities.
double SubsetCardinality(unsigned mask, const std::vector<size_t>& sizes,
                         const std::vector<PairSelectivity>& pairs,
                         size_t k) {
  double card = 1.0;
  for (size_t i = 0; i < k; ++i) {
    if ((mask >> i) & 1u) card *= static_cast<double>(sizes[i]);
  }
  for (size_t i = 0; i < k; ++i) {
    if (((mask >> i) & 1u) == 0) continue;
    for (size_t j = i + 1; j < k; ++j) {
      if (((mask >> j) & 1u) == 0) continue;
      card *= pairs[PairIndex(i, j, k)].selectivity;
    }
  }
  return card;
}

// One DP cell: the best plan found for a subset of inputs.
struct SubPlan {
  double cost = 0.0;      ///< sum of intermediate cardinalities in subtree
  int left_mask = 0;      ///< 0 for leaves; else the left child subset
  bool solved = false;
};

// Renders the chosen subtree for `mask` and appends its joins (bottom-up,
// left first) to `steps`.
std::string EmitSteps(unsigned mask, const std::vector<SubPlan>& best,
                      const std::vector<std::string>& names,
                      const std::vector<double>& cards,
                      std::vector<PlanStep>* steps) {
  if (PopCount(mask) == 1) {
    return names[static_cast<size_t>(__builtin_ctz(mask))];
  }
  const unsigned left = static_cast<unsigned>(best[mask].left_mask);
  const unsigned right = mask & ~left;
  const std::string left_expr = EmitSteps(left, best, names, cards, steps);
  const std::string right_expr = EmitSteps(right, best, names, cards, steps);
  PlanStep step;
  step.left = left_expr;
  step.right = right_expr;
  step.output_cardinality = cards[mask];
  steps->push_back(std::move(step));
  return "(" + left_expr + " * " + right_expr + ")";
}

// Exhaustive bushy DP over subsets (Selinger-style, clique join graph):
// best(S) = min over splits S = L ∪ R of best(L) + best(R) + card(S).
// Deterministic tie-break: the smaller left-child mask wins, and the left
// child always contains the lowest-indexed dataset of its subset.
void PlanDp(const std::vector<size_t>& sizes,
            const std::vector<PairSelectivity>& pairs, size_t k,
            const std::vector<std::string>& names, MultiJoinPlan* plan) {
  const unsigned full = (1u << k) - 1u;
  std::vector<double> cards(full + 1, 0.0);
  std::vector<SubPlan> best(full + 1);
  for (unsigned mask = 1; mask <= full; ++mask) {
    cards[mask] = SubsetCardinality(mask, sizes, pairs, k);
    if (PopCount(mask) == 1) {
      best[mask].solved = true;
      continue;
    }
    const unsigned low_bit = mask & (~mask + 1u);
    SubPlan cell;
    // Enumerate proper submasks containing the lowest set bit (each
    // unordered split visited exactly once, sides canonically assigned).
    for (unsigned sub = (mask - 1u) & mask; sub != 0;
         sub = (sub - 1u) & mask) {
      if ((sub & low_bit) == 0) continue;
      const unsigned rest = mask & ~sub;
      const double cost = best[sub].cost + best[rest].cost + cards[mask];
      if (!cell.solved || cost < cell.cost ||
          (cost == cell.cost &&
           sub < static_cast<unsigned>(cell.left_mask))) {
        cell.cost = cost;
        cell.left_mask = static_cast<int>(sub);
        cell.solved = true;
      }
    }
    best[mask] = cell;
  }
  plan->algorithm = "dp";
  plan->cost = best[full].cost;
  plan->tree = EmitSteps(full, best, names, cards, &plan->steps);
}

// Greedy fallback beyond the DP limit: repeatedly join the two subtrees
// whose combined subset has the smallest estimated cardinality.
// Deterministic tie-break: lowest pair of subtree positions.
void PlanGreedy(const std::vector<size_t>& sizes,
                const std::vector<PairSelectivity>& pairs, size_t k,
                const std::vector<std::string>& names, MultiJoinPlan* plan) {
  struct Tree {
    unsigned mask;
    std::string expr;
  };
  std::vector<Tree> forest;
  for (size_t i = 0; i < k; ++i) {
    forest.push_back(Tree{1u << i, names[i]});
  }
  double total_cost = 0.0;
  while (forest.size() > 1) {
    size_t best_p = 0;
    size_t best_q = 1;
    double best_card = 0.0;
    bool found = false;
    for (size_t p = 0; p < forest.size(); ++p) {
      for (size_t q = p + 1; q < forest.size(); ++q) {
        const double card = SubsetCardinality(forest[p].mask | forest[q].mask,
                                              sizes, pairs, k);
        if (!found || card < best_card) {
          best_card = card;
          best_p = p;
          best_q = q;
          found = true;
        }
      }
    }
    PlanStep step;
    step.left = forest[best_p].expr;
    step.right = forest[best_q].expr;
    step.output_cardinality = best_card;
    plan->steps.push_back(std::move(step));
    total_cost += best_card;
    forest[best_p] = Tree{forest[best_p].mask | forest[best_q].mask,
                          "(" + forest[best_p].expr + " * " +
                              forest[best_q].expr + ")"};
    forest.erase(forest.begin() + static_cast<long>(best_q));
  }
  plan->algorithm = "greedy";
  plan->cost = total_cost;
  plan->tree = forest[0].expr;
}

}  // namespace

bool MultiJoinPlan::degraded() const {
  for (const PairSelectivity& pair : pairs) {
    if (!pair.degradation_reason.empty()) return true;
  }
  return false;
}

Result<MultiJoinPlan> PlanMultiJoin(const std::vector<PlannerInput>& inputs,
                                    const PlannerOptions& options) {
  SJSEL_TRACE_SPAN("planner.plan", "k=%zu threads=%d", inputs.size(),
                   options.threads);
  SJSEL_METRIC_INC("planner.plans");
  SJSEL_METRIC_SCOPED_LATENCY("planner.plan_us");
  const size_t k = inputs.size();
  if (k < 2) {
    return Status::InvalidArgument("plan needs at least two datasets");
  }
  if (k > 24) {
    return Status::InvalidArgument("plan supports at most 24 datasets");
  }
  MultiJoinPlan plan;
  for (const PlannerInput& input : inputs) {
    if (input.dataset == nullptr) {
      return Status::InvalidArgument("null dataset");
    }
    if (input.label.empty()) {
      return Status::InvalidArgument("plan inputs need non-empty labels");
    }
    for (const std::string& seen : plan.inputs) {
      if (seen == input.label) {
        return Status::InvalidArgument("duplicate dataset label '" +
                                       input.label + "'");
      }
    }
    plan.inputs.push_back(input.label);
    plan.input_sizes.push_back(input.dataset->size());
  }

  // Every pairwise selectivity, from the guarded chain. Pair order (and
  // therefore all downstream output) is fixed by index; threads only
  // change who computes which pair.
  std::vector<std::pair<size_t, size_t>> pair_ids;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) pair_ids.emplace_back(i, j);
  }
  const GuardedEstimator estimator(options.estimator);
  std::vector<Result<EstimateResult>> results(
      pair_ids.size(), Status::Internal("pair estimate not run"));
  {
    SJSEL_TRACE_SPAN("planner.pair_estimates", "pairs=%zu",
                     pair_ids.size());
    std::unique_ptr<ThreadPool> pool;
    if (options.threads > 1) {
      pool = std::make_unique<ThreadPool>(options.threads);
    }
    ParallelFor(pool.get(), static_cast<int64_t>(pair_ids.size()), 1,
                [&](int64_t, int64_t begin, int64_t end) {
                  for (size_t idx = static_cast<size_t>(begin);
                       idx < static_cast<size_t>(end); ++idx) {
                    const auto [i, j] = pair_ids[idx];
                    SJSEL_TRACE_SPAN("planner.pair_estimate", "i=%zu j=%zu",
                                     i, j);
                    results[idx] = estimator.Estimate(*inputs[i].dataset,
                                                      *inputs[j].dataset);
                  }
                });
  }
  for (size_t idx = 0; idx < pair_ids.size(); ++idx) {
    const auto [i, j] = pair_ids[idx];
    if (!results[idx].ok()) {
      return Status(results[idx].status().code(),
                    "pair " + plan.inputs[i] + " * " + plan.inputs[j] + ": " +
                        results[idx].status().message());
    }
    const EstimateResult& est = *results[idx];
    PairSelectivity pair;
    pair.i = i;
    pair.j = j;
    pair.estimated_pairs = est.outcome.estimated_pairs;
    pair.selectivity = est.outcome.selectivity;
    pair.rung = est.rung;
    pair.rung_label = est.rung_label;
    pair.degradation_reason = est.degradation_reason;
    pair.clamped = est.clamped;
    plan.pairs.push_back(std::move(pair));
    SJSEL_METRIC_INC("planner.pairs.estimated");
    if (est.degraded()) SJSEL_METRIC_INC("planner.pairs.degraded");
  }

  const int dp_limit = std::min(options.dp_limit, 16);
  if (k <= static_cast<size_t>(std::max(dp_limit, 2))) {
    PlanDp(plan.input_sizes, plan.pairs, k, plan.inputs, &plan);
  } else {
    PlanGreedy(plan.input_sizes, plan.pairs, k, plan.inputs, &plan);
  }
  if (plan.degraded()) SJSEL_METRIC_INC("planner.plans.degraded");
  return plan;
}

std::string RenderPlanText(const MultiJoinPlan& plan) {
  std::string out;
  out += "datasets             : " + std::to_string(plan.inputs.size()) + "\n";
  for (size_t i = 0; i < plan.inputs.size(); ++i) {
    out += "  " + plan.inputs[i] + " (" +
           std::to_string(plan.input_sizes[i]) + " rects)\n";
  }
  out += "pair estimates:\n";
  for (const PairSelectivity& pair : plan.pairs) {
    out += "  " + plan.inputs[pair.i] + " * " + plan.inputs[pair.j] +
           " : pairs=" + FormatDouble(pair.estimated_pairs, 1) +
           " sel=" + FormatDouble(pair.selectivity, 6) +
           " rung=" + EstimatorRungName(pair.rung);
    if (pair.clamped) out += " clamped";
    out += "\n";
    if (!pair.degradation_reason.empty()) {
      out += "    degradation_reason : " + pair.degradation_reason + "\n";
    }
  }
  out += "plan                 : " + plan.tree + "\n";
  out += "steps:\n";
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    out += "  " + std::to_string(s + 1) + ": " + plan.steps[s].left + " * " +
           plan.steps[s].right + " -> " +
           FormatDouble(plan.steps[s].output_cardinality, 1) + " rows\n";
  }
  out += "plan cost            : " + FormatDouble(plan.cost, 1) + "\n";
  out += "algorithm            : " + plan.algorithm + "\n";
  return out;
}

std::string RenderPlanJson(const MultiJoinPlan& plan) {
  JsonValue root = JsonValue::Object();
  JsonValue inputs = JsonValue::Array();
  for (size_t i = 0; i < plan.inputs.size(); ++i) {
    inputs.Append(JsonValue::Object()
                      .Set("name", JsonValue::String(plan.inputs[i]))
                      .Set("n", JsonValue::Int(static_cast<long long>(
                                    plan.input_sizes[i]))));
  }
  root.Set("inputs", std::move(inputs));
  JsonValue pairs = JsonValue::Array();
  for (const PairSelectivity& pair : plan.pairs) {
    pairs.Append(
        JsonValue::Object()
            .Set("a", JsonValue::String(plan.inputs[pair.i]))
            .Set("b", JsonValue::String(plan.inputs[pair.j]))
            .Set("estimated_pairs", JsonValue::Number(pair.estimated_pairs))
            .Set("selectivity", JsonValue::Number(pair.selectivity))
            .Set("rung", JsonValue::String(EstimatorRungName(pair.rung)))
            .Set("rung_label", JsonValue::String(pair.rung_label))
            .Set("degradation_reason",
                 JsonValue::String(pair.degradation_reason))
            .Set("clamped", JsonValue::Bool(pair.clamped)));
  }
  root.Set("pairs", std::move(pairs));
  root.Set("tree", JsonValue::String(plan.tree));
  JsonValue steps = JsonValue::Array();
  for (const PlanStep& step : plan.steps) {
    steps.Append(JsonValue::Object()
                     .Set("left", JsonValue::String(step.left))
                     .Set("right", JsonValue::String(step.right))
                     .Set("output_cardinality",
                          JsonValue::Number(step.output_cardinality)));
  }
  root.Set("steps", std::move(steps));
  root.Set("cost", JsonValue::Number(plan.cost));
  root.Set("algorithm", JsonValue::String(plan.algorithm));
  root.Set("degraded", JsonValue::Bool(plan.degraded()));
  return root.Dump();
}

}  // namespace sjsel
