#include "core/ph_histogram.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/parametric.h"
#include "datagen/generators.h"
#include "join/nested_loop.h"
#include "stats/dataset_stats.h"
#include "util/serialize.h"

namespace sjsel {
namespace {

const Rect kUnit(0, 0, 1, 1);

Dataset MakeClustered(size_t n, uint64_t seed) {
  gen::SizeDist size{gen::SizeDist::Kind::kUniform, 0.02, 0.02, 0.5};
  return gen::GaussianClusterRects("c", n, kUnit,
                                   {{0.4, 0.7}, 0.1, 0.1, 1.0}, size, seed);
}

Dataset MakeUniform(size_t n, uint64_t seed) {
  gen::SizeDist size{gen::SizeDist::Kind::kUniform, 0.02, 0.02, 0.5};
  return gen::UniformRects("u", n, kUnit, size, seed);
}

TEST(PhBuildTest, RejectsBadInput) {
  const Dataset ds = MakeUniform(10, 1);
  EXPECT_FALSE(PhHistogram::Build(ds, kUnit, -2).ok());
  EXPECT_FALSE(PhHistogram::Build(ds, Rect::Empty(), 2).ok());
}

TEST(PhBuildTest, LevelZeroPutsEverythingInOneContainedBucket) {
  const Dataset ds = MakeUniform(300, 5);
  const auto hist = PhHistogram::Build(ds, kUnit, 0);
  ASSERT_TRUE(hist.ok());
  ASSERT_EQ(hist->cells().size(), 1u);
  const auto& cell = hist->cells()[0];
  EXPECT_DOUBLE_EQ(cell.num, 300.0);
  EXPECT_DOUBLE_EQ(cell.num_x, 0.0);
  EXPECT_DOUBLE_EQ(hist->avg_span(), 1.0);
}

TEST(PhBuildTest, ContainedPlusCrossingAccountsForEveryRect) {
  const Dataset ds = MakeClustered(2000, 7);
  for (int level : {1, 3, 5}) {
    const auto hist = PhHistogram::Build(ds, kUnit, level);
    ASSERT_TRUE(hist.ok());
    double contained = 0.0;
    for (const auto& cell : hist->cells()) contained += cell.num;
    // Crossing rects are booked once per overlapped cell, so they cannot be
    // recovered from num_x alone; but contained + (distinct crossing) = N.
    // Distinct crossing count = Σ num_x / avg_span on average — instead we
    // verify via area conservation: clipped areas + contained areas = total.
    double area_sum = 0.0;
    for (const auto& cell : hist->cells()) {
      area_sum += cell.area_sum + cell.area_sum_x;
    }
    double total_area = 0.0;
    for (const Rect& r : ds.rects()) total_area += r.area();
    EXPECT_NEAR(area_sum, total_area, 1e-9) << "level " << level;
    EXPECT_LE(contained, static_cast<double>(ds.size()));
  }
}

TEST(PhBuildTest, AvgSpanGrowsWithLevel) {
  const Dataset ds = MakeClustered(2000, 9);
  double prev = 1.0;
  for (int level : {2, 4, 6}) {
    const auto hist = PhHistogram::Build(ds, kUnit, level);
    ASSERT_TRUE(hist.ok());
    EXPECT_GE(hist->avg_span(), 1.0);
    // Finer grids make each crossing rect span more cells on average.
    EXPECT_GE(hist->avg_span(), prev * 0.99) << "level " << level;
    prev = hist->avg_span();
  }
}

TEST(PhEstimateTest, LevelZeroEqualsParametricModel) {
  // PH at level 0 must reproduce the prior parametric technique [2]
  // (Equation 1) exactly — that is the paper's own framing.
  const Dataset a = MakeClustered(1500, 11);
  const Dataset b = MakeUniform(1500, 12);
  const auto ha = PhHistogram::Build(a, kUnit, 0);
  const auto hb = PhHistogram::Build(b, kUnit, 0);
  const auto est = EstimatePhJoinPairs(*ha, *hb);
  ASSERT_TRUE(est.ok());
  const DatasetStats sa = DatasetStats::Compute(a, kUnit);
  const DatasetStats sb = DatasetStats::Compute(b, kUnit);
  EXPECT_NEAR(est.value(), ParametricJoinPairs(sa, sb),
              1e-9 * ParametricJoinPairs(sa, sb));
}

TEST(PhEstimateTest, IncompatibleHistogramsRejected) {
  const Dataset ds = MakeUniform(100, 13);
  const auto h2 = PhHistogram::Build(ds, kUnit, 2);
  const auto h3 = PhHistogram::Build(ds, kUnit, 3);
  const auto naive = PhHistogram::Build(ds, kUnit, 2, PhVariant::kNaive);
  EXPECT_FALSE(EstimatePhJoinPairs(*h2, *h3).ok());
  EXPECT_FALSE(EstimatePhJoinPairs(*h2, *naive).ok());
}

TEST(PhEstimateTest, GriddingImprovesOnParametricForSkewedData) {
  // The motivation for PH: on clustered data the uniformity assumption of
  // level 0 is badly wrong; a moderately gridded PH does better.
  const Dataset a = MakeClustered(3000, 17);
  const Dataset b = MakeClustered(3000, 18);
  const double actual = static_cast<double>(NestedLoopJoinCount(a, b));
  ASSERT_GT(actual, 0.0);
  const auto a0 = PhHistogram::Build(a, kUnit, 0);
  const auto b0 = PhHistogram::Build(b, kUnit, 0);
  const double err0 =
      RelativeError(EstimatePhJoinPairs(*a0, *b0).value(), actual);
  const auto a4 = PhHistogram::Build(a, kUnit, 4);
  const auto b4 = PhHistogram::Build(b, kUnit, 4);
  const double err4 =
      RelativeError(EstimatePhJoinPairs(*a4, *b4).value(), actual);
  EXPECT_LT(err4, err0);
  EXPECT_LT(err4, 0.35);
}

TEST(PhEstimateTest, SpanCorrectionReducesOverestimationAtFineLevels) {
  // Without the AvgSpan division, crossing-crossing intersections are
  // counted once per shared cell, inflating the estimate.
  const Dataset a = MakeClustered(2000, 19);
  const Dataset b = MakeClustered(2000, 20);
  const int level = 6;
  const auto ha = PhHistogram::Build(a, kUnit, level);
  const auto hb = PhHistogram::Build(b, kUnit, level);
  PhEstimateOptions with;
  PhEstimateOptions without;
  without.apply_span_correction = false;
  const double est_with = EstimatePhJoinPairs(*ha, *hb, with).value();
  const double est_without = EstimatePhJoinPairs(*ha, *hb, without).value();
  EXPECT_LT(est_with, est_without);
  const double actual = static_cast<double>(NestedLoopJoinCount(a, b));
  EXPECT_LT(RelativeError(est_with, actual),
            RelativeError(est_without, actual));
}

TEST(PhEstimateTest, NaiveVariantOvercountsMoreThanPh) {
  const Dataset a = MakeClustered(2000, 23);
  const Dataset b = MakeClustered(2000, 24);
  const double actual = static_cast<double>(NestedLoopJoinCount(a, b));
  const int level = 5;
  const auto pa = PhHistogram::Build(a, kUnit, level);
  const auto pb = PhHistogram::Build(b, kUnit, level);
  const auto na = PhHistogram::Build(a, kUnit, level, PhVariant::kNaive);
  const auto nb = PhHistogram::Build(b, kUnit, level, PhVariant::kNaive);
  const double ph_est = EstimatePhJoinPairs(*pa, *pb).value();
  const double naive_est = EstimatePhJoinPairs(*na, *nb).value();
  EXPECT_GT(naive_est, ph_est);
  EXPECT_LT(RelativeError(ph_est, actual), RelativeError(naive_est, actual));
}

TEST(PhEstimateTest, EmptyDatasetSelectivityIsError) {
  const Dataset a = MakeUniform(10, 1);
  const Dataset empty("e");
  const auto ha = PhHistogram::Build(a, kUnit, 2);
  const auto he = PhHistogram::Build(empty, kUnit, 2);
  EXPECT_FALSE(EstimatePhJoinSelectivity(*ha, *he).ok());
}

TEST(PhFileTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sjsel_ph.hist";
  const Dataset ds = MakeClustered(500, 31);
  const auto hist = PhHistogram::Build(ds, kUnit, 4);
  ASSERT_TRUE(hist.ok());
  ASSERT_TRUE(hist->Save(path).ok());
  const auto loaded = PhHistogram::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->grid().level(), 4);
  EXPECT_EQ(loaded->dataset_size(), 500u);
  EXPECT_DOUBLE_EQ(loaded->avg_span(), hist->avg_span());
  const auto other = PhHistogram::Build(MakeUniform(500, 32), kUnit, 4);
  EXPECT_DOUBLE_EQ(EstimatePhJoinPairs(*hist, *other).value(),
                   EstimatePhJoinPairs(*loaded, *other).value());
  std::remove(path.c_str());
}

TEST(PhFileTest, CorruptionDetected) {
  const std::string path = ::testing::TempDir() + "/sjsel_ph_bad.hist";
  const Dataset ds = MakeUniform(200, 41);
  const auto hist = PhHistogram::Build(ds, kUnit, 3);
  ASSERT_TRUE(hist->Save(path).ok());
  auto bytes = ReadFile(path).value();
  bytes[bytes.size() - 10] ^= 0x01;
  ASSERT_TRUE(WriteFile(path, bytes).ok());
  EXPECT_FALSE(PhHistogram::Load(path).ok());
  std::remove(path.c_str());
}

TEST(PhFileTest, SpaceIsTwiceGh) {
  // Table 1 vs Table 2: PH keeps 8 values per cell, GH keeps 4.
  const Dataset ds = MakeUniform(100, 51);
  const auto hist = PhHistogram::Build(ds, kUnit, 5);
  EXPECT_EQ(hist->NominalBytes(), uint64_t{64} << (2 * 5));
}

}  // namespace
}  // namespace sjsel
