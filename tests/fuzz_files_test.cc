// Robustness sweep over the on-disk formats: every single-byte corruption
// of a valid file must either fail to load or (never) load silently wrong;
// truncations at any length must fail cleanly. "Fuzz-lite" — deterministic
// and exhaustive over positions, no sanitizer required.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/gh_histogram.h"
#include "core/minskew.h"
#include "core/ph_histogram.h"
#include "geom/geometry.h"
#include "datagen/generators.h"
#include "util/serialize.h"

namespace sjsel {
namespace {

const Rect kUnit(0, 0, 1, 1);

Dataset SmallDataset() {
  gen::SizeDist size{gen::SizeDist::Kind::kUniform, 0.05, 0.05, 0.5};
  return gen::UniformRects("fuzz", 60, kUnit, size, 99);
}

// Returns the serialized bytes of a file written by `save`.
template <typename SaveFn>
std::string Serialize(const std::string& tag, SaveFn&& save) {
  const std::string path = ::testing::TempDir() + "/fuzz_" + tag + ".bin";
  EXPECT_TRUE(save(path).ok());
  std::string bytes = ReadFile(path).value();
  std::remove(path.c_str());
  return bytes;
}

// Loads serialized bytes through `load` after writing them to disk.
template <typename LoadFn>
bool LoadsOk(const std::string& tag, const std::string& bytes,
             LoadFn&& load) {
  const std::string path = ::testing::TempDir() + "/fuzz_" + tag + "_m.bin";
  EXPECT_TRUE(WriteFile(path, bytes).ok());
  const bool ok = load(path);
  std::remove(path.c_str());
  return ok;
}

template <typename SaveFn, typename LoadFn>
void RunBitflipSweep(const std::string& tag, SaveFn&& save, LoadFn&& load) {
  const std::string bytes = Serialize(tag, save);
  ASSERT_FALSE(bytes.empty());
  ASSERT_TRUE(LoadsOk(tag, bytes, load)) << "pristine file must load";

  // Flip one bit in every 7th byte (full sweep is slow; stride keeps the
  // test fast while covering header, payload and trailer).
  int corrupted_accepted = 0;
  for (size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::string mutated = bytes;
    mutated[pos] ^= 0x10;
    if (LoadsOk(tag, mutated, load)) ++corrupted_accepted;
  }
  // CRC-32 catches every single-bit flip.
  EXPECT_EQ(corrupted_accepted, 0) << tag;

  // Truncations: every prefix must be rejected.
  for (size_t len = 0; len < bytes.size(); len += 11) {
    EXPECT_FALSE(LoadsOk(tag, bytes.substr(0, len), load))
        << tag << " truncated to " << len;
  }
}

TEST(FuzzFilesTest, DatasetFile) {
  const Dataset ds = SmallDataset();
  RunBitflipSweep(
      "dataset", [&ds](const std::string& p) { return ds.Save(p); },
      [](const std::string& p) { return Dataset::Load(p).ok(); });
}

TEST(FuzzFilesTest, GhDenseFile) {
  const auto hist = GhHistogram::Build(SmallDataset(), kUnit, 3);
  RunBitflipSweep(
      "gh_dense",
      [&hist](const std::string& p) { return hist->Save(p); },
      [](const std::string& p) { return GhHistogram::Load(p).ok(); });
}

TEST(FuzzFilesTest, GhSparseFile) {
  const auto hist = GhHistogram::Build(SmallDataset(), kUnit, 5);
  RunBitflipSweep(
      "gh_sparse",
      [&hist](const std::string& p) {
        return hist->Save(p, GhHistogram::FileFormat::kSparse);
      },
      [](const std::string& p) { return GhHistogram::Load(p).ok(); });
}

TEST(FuzzFilesTest, PhFile) {
  const auto hist = PhHistogram::Build(SmallDataset(), kUnit, 3);
  RunBitflipSweep(
      "ph", [&hist](const std::string& p) { return hist->Save(p); },
      [](const std::string& p) { return PhHistogram::Load(p).ok(); });
}

TEST(FuzzFilesTest, MinSkewFile) {
  const auto hist = MinSkewHistogram::Build(SmallDataset(), kUnit, 16);
  RunBitflipSweep(
      "minskew", [&hist](const std::string& p) { return hist->Save(p); },
      [](const std::string& p) { return MinSkewHistogram::Load(p).ok(); });
}

TEST(FuzzFilesTest, GeoFile) {
  GeoDataset geo("g");
  geo.Add(Point{0.5, 0.5});
  geo.Add(Polyline{{{0.1, 0.1}, {0.3, 0.2}, {0.2, 0.4}}});
  geo.Add(Polygon{{{0.6, 0.6}, {0.8, 0.6}, {0.7, 0.8}}});
  RunBitflipSweep(
      "geo", [&geo](const std::string& p) { return geo.Save(p); },
      [](const std::string& p) { return GeoDataset::Load(p).ok(); });
}

TEST(FuzzFilesTest, CrossFormatLoadsRejected) {
  // Loading a file through the wrong loader must fail via magic checks.
  const Dataset ds = SmallDataset();
  const auto gh = GhHistogram::Build(ds, kUnit, 3);
  const auto ph = PhHistogram::Build(ds, kUnit, 3);
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(ds.Save(dir + "/x.ds").ok());
  ASSERT_TRUE(gh->Save(dir + "/x.gh").ok());
  ASSERT_TRUE(ph->Save(dir + "/x.ph").ok());
  EXPECT_FALSE(GhHistogram::Load(dir + "/x.ds").ok());
  EXPECT_FALSE(GhHistogram::Load(dir + "/x.ph").ok());
  EXPECT_FALSE(PhHistogram::Load(dir + "/x.gh").ok());
  EXPECT_FALSE(Dataset::Load(dir + "/x.gh").ok());
  EXPECT_FALSE(MinSkewHistogram::Load(dir + "/x.gh").ok());
  for (const char* name : {"/x.ds", "/x.gh", "/x.ph"}) {
    std::remove((dir + name).c_str());
  }
}

}  // namespace
}  // namespace sjsel
