// Concurrency tests for the observability layer, written to put TSan on
// every cross-thread edge: concurrent counter/gauge/histogram updates with
// exact expected totals, concurrent span recording, and a Collect() racing
// live recorders (the flush gate).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sjsel {
namespace {

using obs::MetricsRegistry;
using obs::Tracer;

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 5000;

TEST(ObsConcurrencyTest, ConcurrentCounterUpdatesSumExactly) {
  MetricsRegistry::Arm();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        SJSEL_METRIC_INC("conc.counter");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  MetricsRegistry::Disarm();
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("conc.counter")->value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ObsConcurrencyTest, ConcurrentHistogramRecordsKeepEverySample) {
  MetricsRegistry::Arm();
  obs::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("conc.hist");
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([hist, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        hist->Record(static_cast<uint64_t>(t + 1));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  MetricsRegistry::Disarm();
  EXPECT_EQ(hist->count(), static_cast<uint64_t>(kThreads) * kOpsPerThread);
  // sum = kOps * (1 + 2 + ... + kThreads)
  EXPECT_EQ(hist->sum(), static_cast<uint64_t>(kOpsPerThread) * kThreads *
                             (kThreads + 1) / 2);
  EXPECT_EQ(hist->min(), uint64_t{1});
  EXPECT_EQ(hist->max(), static_cast<uint64_t>(kThreads));
}

TEST(ObsConcurrencyTest, ConcurrentGaugeMaxConverges) {
  MetricsRegistry::Arm();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        SJSEL_METRIC_GAUGE_MAX("conc.gauge", t * kOpsPerThread + i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  MetricsRegistry::Disarm();
  EXPECT_EQ(MetricsRegistry::Global().GetGauge("conc.gauge")->value(),
            static_cast<int64_t>(kThreads - 1) * kOpsPerThread +
                (kOpsPerThread - 1));
}

TEST(ObsConcurrencyTest, ConcurrentSpanRecordingIsSafe) {
  Tracer::Global().Arm();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        SJSEL_TRACE_SPAN("conc.span", "i=%d", i);
        SJSEL_TRACE_INSTANT("conc.instant");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  Tracer::Global().Disarm();
  const Tracer::Snapshot snap = Tracer::Global().Collect();
  size_t spans = 0;
  size_t instants = 0;
  for (const auto& s : snap.spans) {
    if (s.name == "conc.span") ++spans;
    if (s.name == "conc.instant") ++instants;
  }
  // 8 threads x 400 events fits every ring (even a reused one holds at
  // most all 3200 events < kRingCapacity), so nothing may drop.
  EXPECT_EQ(spans, static_cast<size_t>(kThreads) * 200);
  EXPECT_EQ(instants, static_cast<size_t>(kThreads) * 200);
  EXPECT_EQ(snap.dropped, uint64_t{0});
}

TEST(ObsConcurrencyTest, CollectWhileRecordingDoesNotRace) {
  Tracer::Global().Arm();
  std::atomic<int> live{4};
  std::vector<std::thread> recorders;
  for (int t = 0; t < 4; ++t) {
    recorders.emplace_back([&live] {
      for (int i = 0; i < 2000; ++i) {
        SJSEL_TRACE_SPAN("mid.flight");
      }
      live.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  // Flush repeatedly while recorders are live: the per-ring gate must keep
  // this free of data races (TSan verifies) and never deadlock.
  while (live.load(std::memory_order_relaxed) > 0) {
    const Tracer::Snapshot snap = Tracer::Global().Collect();
    (void)snap;
  }
  for (std::thread& w : recorders) w.join();
  Tracer::Global().Disarm();
  const Tracer::Snapshot final_snap = Tracer::Global().Collect();
  size_t found = 0;
  for (const auto& s : final_snap.spans) {
    if (s.name == "mid.flight") ++found;
  }
  EXPECT_GT(found, 0u);
}

TEST(ObsConcurrencyTest, SnapshotJsonWhileUpdating) {
  MetricsRegistry::Arm();
  std::atomic<bool> stop{false};
  std::thread updater([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      SJSEL_METRIC_INC("conc.live");
    }
  });
  for (int i = 0; i < 50; ++i) {
    const std::string json = MetricsRegistry::Global().SnapshotJson();
    EXPECT_FALSE(json.empty());
  }
  stop.store(true, std::memory_order_relaxed);
  updater.join();
  MetricsRegistry::Disarm();
}

TEST(ObsConcurrencyTest, OpenMetricsSnapshotWhileUpdating) {
  // The live-scrape path: counters, a gauge and a histogram all updating
  // while SnapshotOpenMetrics renders. TSan checks the edges; the
  // assertions check the renderer never emits a torn document.
  MetricsRegistry::Arm();
  obs::Histogram* hist =
      MetricsRegistry::Global().GetHistogram("conc.om_hist");
  // Register the counter and gauge up front so even a scrape that wins the
  // race against every updater's first increment sees all three lines.
  MetricsRegistry::Global().GetCounter("conc.om_counter");
  MetricsRegistry::Global().GetGauge("conc.om_gauge");
  std::atomic<bool> stop{false};
  std::vector<std::thread> updaters;
  for (int t = 0; t < 4; ++t) {
    updaters.emplace_back([&stop, hist, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        SJSEL_METRIC_INC("conc.om_counter");
        SJSEL_METRIC_GAUGE_MAX("conc.om_gauge", static_cast<int64_t>(i));
        hist->Record(static_cast<uint64_t>(t) + 1);
        ++i;
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const std::string om = MetricsRegistry::Global().SnapshotOpenMetrics();
    // Structurally whole even mid-update: the EOF trailer terminates it
    // and every rendered instrument line is present.
    ASSERT_GE(om.size(), 6u);
    EXPECT_EQ(om.rfind("# EOF\n"), om.size() - 6);
    EXPECT_NE(om.find("sjsel_conc_om_counter_total"), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : updaters) w.join();
  MetricsRegistry::Disarm();
}

}  // namespace
}  // namespace sjsel
