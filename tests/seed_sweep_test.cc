// Statistical robustness sweep: the paper's headline accuracy claims must
// hold across many random workloads, not one lucky seed. Each case draws
// fresh datasets and checks the estimator error bands.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/estimator.h"
#include "core/gh_histogram.h"
#include "core/ph_histogram.h"
#include "datagen/generators.h"
#include "join/plane_sweep.h"
#include "stats/dataset_stats.h"

namespace sjsel {
namespace {

const Rect kUnit(0, 0, 1, 1);

struct SweepCase {
  const char* label;
  int workload_a;
  int workload_b;
};

Dataset MakeWorkload(int which, size_t n, uint64_t seed) {
  gen::SizeDist size{gen::SizeDist::Kind::kUniform, 0.015, 0.015, 0.5};
  switch (which) {
    case 0:
      return gen::UniformRects("u", n, kUnit, size, seed);
    case 1:
      return gen::GaussianClusterRects(
          "c", n, kUnit, {{0.4, 0.7}, 0.1, 0.1, 1.0}, size, seed);
    case 2: {
      gen::PolylineSpec spec;
      spec.steps = 12;
      spec.step_len = 0.006;
      return gen::RandomWalkPolylines("l", n, kUnit, spec, seed);
    }
    default: {
      gen::SizeDist mixed{gen::SizeDist::Kind::kExponential, 0.01, 0.01, 0};
      return gen::MultiClusterRects(
          "m", n, kUnit,
          {{{0.2, 0.2}, 0.05, 0.05, 1.0}, {{0.7, 0.6}, 0.08, 0.08, 1.0}},
          0.3, mixed, seed);
    }
  }
}

class SeedSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SeedSweepTest, GhLevel6ErrorBandsHoldAcrossSeeds) {
  const SweepCase& c = GetParam();
  std::vector<double> errors;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Dataset a = MakeWorkload(c.workload_a, 2000, seed * 17 + 1);
    const Dataset b = MakeWorkload(c.workload_b, 2000, seed * 31 + 5);
    const double actual =
        static_cast<double>(PlaneSweepJoinCount(a, b));
    if (actual < 200) continue;  // skip statistically fragile draws
    const auto ha = GhHistogram::Build(a, kUnit, 6);
    const auto hb = GhHistogram::Build(b, kUnit, 6);
    ASSERT_TRUE(ha.ok());
    ASSERT_TRUE(hb.ok());
    errors.push_back(RelativeError(
        EstimateGhJoinPairs(*ha, *hb).value_or(0), actual));
  }
  ASSERT_GE(errors.size(), 5u) << c.label;
  std::sort(errors.begin(), errors.end());
  const double median = errors[errors.size() / 2];
  const double worst = errors.back();
  EXPECT_LT(median, 0.06) << c.label;   // paper band: <5% typical
  EXPECT_LT(worst, 0.20) << c.label;    // no catastrophic outliers
}

TEST_P(SeedSweepTest, GhNeverLosesToParametricBadly) {
  // Across seeds, GH at level 6 should essentially never be meaningfully
  // worse than the level-0 parametric model.
  const SweepCase& c = GetParam();
  int gh_worse = 0;
  int trials = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Dataset a = MakeWorkload(c.workload_a, 1500, seed * 13 + 2);
    const Dataset b = MakeWorkload(c.workload_b, 1500, seed * 19 + 7);
    const double actual =
        static_cast<double>(PlaneSweepJoinCount(a, b));
    if (actual < 200) continue;
    ++trials;
    const auto g6a = GhHistogram::Build(a, kUnit, 6);
    const auto g6b = GhHistogram::Build(b, kUnit, 6);
    const auto g0a = GhHistogram::Build(a, kUnit, 0);
    const auto g0b = GhHistogram::Build(b, kUnit, 0);
    const double gh_err = RelativeError(
        EstimateGhJoinPairs(*g6a, *g6b).value_or(0), actual);
    const double par_err = RelativeError(
        EstimateGhJoinPairs(*g0a, *g0b).value_or(0), actual);
    if (gh_err > par_err + 0.02) ++gh_worse;
  }
  ASSERT_GE(trials, 4) << c.label;
  EXPECT_LE(gh_worse, trials / 4) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SeedSweepTest,
    ::testing::Values(SweepCase{"uniform_uniform", 0, 0},
                      SweepCase{"clustered_uniform", 1, 0},
                      SweepCase{"clustered_clustered", 1, 1},
                      SweepCase{"polylines_multicluster", 2, 3}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace sjsel
