#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace sjsel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  const Status s = Status::Corruption("bad bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad bytes");
  EXPECT_EQ(s.ToString(), "Corruption: bad bytes");
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STRNE(StatusCodeName(StatusCode::kNotFound),
               StatusCodeName(StatusCode::kCorruption));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Passthrough(int x) {
  SJSEL_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Passthrough(4).ok());
  const Status s = Passthrough(-1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  int half = 0;
  SJSEL_ASSIGN_OR_RETURN(half, HalfOf(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace sjsel
