#include "stream/ingest.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "datagen/generators.h"
#include "geom/dataset.h"
#include "stream/wal.h"
#include "util/fault_injection.h"
#include "util/serialize.h"

namespace sjsel {
namespace stream {
namespace {

std::string TempDirFor(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/" + leaf;
  // Tests may rerun in the same temp root; start from a clean slate.
  std::remove((dir + "/wal.log").c_str());
  std::remove((dir + "/MANIFEST").c_str());
  for (int s = 0; s < 64; ++s) {
    std::remove((dir + "/base." + std::to_string(s) + ".gh").c_str());
    std::remove((dir + "/base." + std::to_string(s) + ".ph").c_str());
  }
  return dir;
}

/// Deterministic op stream: adds from a fixed generator, with every
/// fourth batch removing a previously added rect (valid for any prefix).
std::vector<std::vector<StreamOp>> MakeBatches(size_t n, uint64_t seed) {
  gen::SizeDist size{gen::SizeDist::Kind::kUniform, 0.02, 0.02, 0.5};
  const Dataset ds =
      gen::UniformRects("ops", n, Rect(0, 0, 1, 1), size, seed);
  std::vector<std::vector<StreamOp>> batches;
  size_t removed = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    batches.push_back({{OpKind::kAdd, ds.rects()[i]}});
    if ((i + 1) % 4 == 0 && removed < i) {
      batches.push_back({{OpKind::kRemove, ds.rects()[removed++]}});
    }
  }
  return batches;
}

StreamOptions SmallOptions() {
  StreamOptions options;
  options.gh_level = 4;
  options.ph_level = 3;
  options.seal_every = 3;
  options.fsync_always = false;  // temp-dir tests need no durability
  return options;
}

std::string DigestOf(StreamIngest& ingest) {
  const auto digest = ingest.StateDigest();
  EXPECT_TRUE(digest.ok()) << digest.status().ToString();
  return digest.ok() ? digest.value() : std::string();
}

// ---------------------------------------------------------------- WAL --

TEST(WalTest, AppendReplayRoundTrip) {
  const std::string path = ::testing::TempDir() + "/wal_roundtrip.log";
  std::remove(path.c_str());
  {
    auto wal = WalWriter::Open(path, /*fsync_always=*/false);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(wal->Append("alpha").ok());
    ASSERT_TRUE(wal->Append(std::string("\x00\xff payload", 11)).ok());
    ASSERT_TRUE(wal->Append("").ok());  // empty payloads are legal
  }
  std::vector<std::string> payloads;
  const auto replay = ReplayWal(path, [&](const std::string& p) {
    payloads.push_back(p);
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, 3u);
  EXPECT_EQ(replay->dropped_bytes, 0u);
  EXPECT_TRUE(replay->tail_error.empty());
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "alpha");
  EXPECT_EQ(payloads[1], std::string("\x00\xff payload", 11));
  EXPECT_EQ(payloads[2], "");
  std::remove(path.c_str());
}

TEST(WalTest, TornTailIsDroppedNotFatal) {
  const std::string path = ::testing::TempDir() + "/wal_torn.log";
  std::remove(path.c_str());
  {
    auto wal = WalWriter::Open(path, false);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append("kept").ok());
  }
  // Simulate a crash mid-append: half a frame of a second record.
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(WriteFile(path, bytes.value() + std::string("\x09\x00", 2)).ok());

  size_t applied = 0;
  const auto replay = ReplayWal(path, [&](const std::string&) {
    ++applied;
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, 1u);
  EXPECT_EQ(applied, 1u);
  EXPECT_EQ(replay->dropped_bytes, 2u);
  EXPECT_FALSE(replay->tail_error.empty());

  // Truncating at valid_bytes yields a clean log again.
  ASSERT_TRUE(TruncateWal(path, replay->valid_bytes).ok());
  const auto clean = ReplayWal(path, [](const std::string&) {
    return Status::OK();
  });
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->records, 1u);
  EXPECT_TRUE(clean->tail_error.empty());
  std::remove(path.c_str());
}

TEST(WalTest, CorruptRecordStopsReplayThere) {
  const std::string path = ::testing::TempDir() + "/wal_corrupt.log";
  std::remove(path.c_str());
  {
    auto wal = WalWriter::Open(path, false);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append("first-record").ok());
    ASSERT_TRUE(wal->Append("second-record").ok());
  }
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  std::string flipped = bytes.value();
  // Flip a payload byte of the *last* record: everything before it must
  // replay, the corrupt record and anything after are dropped.
  flipped[flipped.size() - 3] ^= 0x40;
  ASSERT_TRUE(WriteFile(path, flipped).ok());

  std::vector<std::string> payloads;
  const auto replay = ReplayWal(path, [&](const std::string& p) {
    payloads.push_back(p);
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "first-record");
  EXPECT_NE(replay->tail_error.find("CRC"), std::string::npos);
  EXPECT_GT(replay->dropped_bytes, 0u);
  std::remove(path.c_str());
}

TEST(WalTest, BadHeaderIsCorruption) {
  const std::string path = ::testing::TempDir() + "/wal_header.log";
  ASSERT_TRUE(WriteFile(path, "NOTAWAL").ok());
  const auto replay = ReplayWal(path, [](const std::string&) {
    return Status::OK();
  });
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(WalTest, TornWriteFaultLeavesRecoverableLog) {
  const std::string path = ::testing::TempDir() + "/wal_fault_torn.log";
  std::remove(path.c_str());
  auto wal = WalWriter::Open(path, false);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append("durable").ok());
  {
    ScopedFaultInjection arm("wal.torn_write=always");
    ASSERT_TRUE(arm.status().ok());
    const Status torn = wal->Append("never-acknowledged");
    ASSERT_FALSE(torn.ok());
    EXPECT_EQ(torn.code(), StatusCode::kIoError);
  }
  wal->Close();
  size_t applied = 0;
  const auto replay = ReplayWal(path, [&](const std::string&) {
    ++applied;
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(applied, 1u);  // only the acknowledged record survives
  EXPECT_GT(replay->dropped_bytes, 0u);
  std::remove(path.c_str());
}

TEST(WalTest, ShortWriteFaultStillWritesEverythingEventually) {
  const std::string path = ::testing::TempDir() + "/wal_fault_short.log";
  std::remove(path.c_str());
  {
    auto wal = WalWriter::Open(path, false);
    ASSERT_TRUE(wal.ok());
    ScopedFaultInjection arm("wal.short_write=always");
    ASSERT_TRUE(arm.status().ok());
    // Every write(2) is capped to a partial chunk; the EINTR/short-write
    // loop must still land the full frame.
    ASSERT_TRUE(wal->Append("short-write-exercised-payload").ok());
  }
  std::vector<std::string> payloads;
  ASSERT_TRUE(ReplayWal(path, [&](const std::string& p) {
                payloads.push_back(p);
                return Status::OK();
              }).ok());
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "short-write-exercised-payload");
  std::remove(path.c_str());
}

TEST(WalTest, CorruptFaultIsNeverAcknowledged) {
  const std::string path = ::testing::TempDir() + "/wal_fault_crc.log";
  std::remove(path.c_str());
  auto wal = WalWriter::Open(path, false);
  ASSERT_TRUE(wal.ok());
  {
    ScopedFaultInjection arm("wal.corrupt=always");
    ASSERT_TRUE(arm.status().ok());
    const Status corrupt = wal->Append("bit-rotted");
    ASSERT_FALSE(corrupt.ok());
    EXPECT_EQ(corrupt.code(), StatusCode::kIoError);
  }
  wal->Close();
  // The record is fully present on disk but fails its CRC: replay must
  // refuse it rather than apply garbage.
  size_t applied = 0;
  const auto replay = ReplayWal(path, [&](const std::string&) {
    ++applied;
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(applied, 0u);
  EXPECT_NE(replay->tail_error.find("CRC"), std::string::npos);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- ingest --

TEST(StreamIngestTest, InitRejectsReinitAndBadOptions) {
  const std::string dir = TempDirFor("stream_init");
  ASSERT_TRUE(StreamIngest::Init(dir, SmallOptions()).ok());
  const Status again = StreamIngest::Init(dir, SmallOptions());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);

  StreamOptions bad = SmallOptions();
  bad.seal_every = 0;
  EXPECT_FALSE(StreamIngest::Init(TempDirFor("stream_bad1"), bad).ok());

  StreamOptions misaligned = SmallOptions();
  misaligned.seal_every = 3;
  misaligned.checkpoint_every = 4;  // not a multiple: seals would move
  EXPECT_FALSE(
      StreamIngest::Init(TempDirFor("stream_bad2"), misaligned).ok());
}

TEST(StreamIngestTest, ApplyValidatesBatches) {
  const std::string dir = TempDirFor("stream_validate");
  ASSERT_TRUE(StreamIngest::Init(dir, SmallOptions()).ok());
  auto ingest = StreamIngest::Open(dir);
  ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();

  EXPECT_EQ((*ingest)->Apply({}).status().code(),
            StatusCode::kInvalidArgument);
  Rect inverted(0.5, 0.5, 0.1, 0.1);
  EXPECT_EQ((*ingest)->Apply({{OpKind::kAdd, inverted}}).status().code(),
            StatusCode::kInvalidArgument);
  Rect nan_rect(0.1, 0.1, std::nan(""), 0.2);
  EXPECT_EQ((*ingest)->Apply({{OpKind::kAdd, nan_rect}}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamIngestTest, SnapshotLagsUntilSealMaterializeDoesNot) {
  const std::string dir = TempDirFor("stream_seal");
  ASSERT_TRUE(StreamIngest::Init(dir, SmallOptions()).ok());  // seal @ 3
  auto opened = StreamIngest::Open(dir);
  ASSERT_TRUE(opened.ok());
  StreamIngest& ingest = **opened;

  const auto batches = MakeBatches(4, /*seed=*/11);
  ASSERT_TRUE(ingest.Apply(batches[0]).ok());
  ASSERT_TRUE(ingest.Apply(batches[1]).ok());
  EXPECT_EQ(ingest.snapshot()->seq, 0u);  // nothing sealed yet
  EXPECT_EQ(ingest.snapshot()->gh.dataset_size(), 0u);
  auto state = ingest.MaterializeState();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->seq, 2u);  // active delta included

  ASSERT_TRUE(ingest.Apply(batches[2]).ok());
  EXPECT_EQ(ingest.snapshot()->seq, 3u);  // seal boundary reached
  EXPECT_EQ(ingest.active_batches(), 0u);
}

TEST(StreamIngestTest, ReopenIsBitIdenticalToUninterruptedRun) {
  const auto batches = MakeBatches(24, /*seed=*/5);

  // Reference: one uninterrupted ingest over the whole stream.
  const std::string ref_dir = TempDirFor("stream_ref");
  ASSERT_TRUE(StreamIngest::Init(ref_dir, SmallOptions()).ok());
  auto ref = StreamIngest::Open(ref_dir);
  ASSERT_TRUE(ref.ok());
  for (const auto& b : batches) ASSERT_TRUE((*ref)->Apply(b).ok());

  // Interrupted: close and reopen (= crash + recovery) every 7 batches,
  // with a checkpoint thrown in mid-stream.
  const std::string dir = TempDirFor("stream_reopen");
  ASSERT_TRUE(StreamIngest::Init(dir, SmallOptions()).ok());
  std::unique_ptr<StreamIngest> ingest;
  {
    auto opened = StreamIngest::Open(dir);
    ASSERT_TRUE(opened.ok());
    ingest = std::move(opened).value();
  }
  for (size_t i = 0; i < batches.size(); ++i) {
    if (i > 0 && i % 7 == 0) {
      ingest.reset();  // drop the writer without any shutdown protocol
      auto reopened = StreamIngest::Open(dir);
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      ingest = std::move(reopened).value();
      EXPECT_EQ(ingest->seq(), i);
    }
    if (i == 13) ASSERT_TRUE(ingest->Checkpoint().ok());
    ASSERT_TRUE(ingest->Apply(batches[i]).ok());
  }
  EXPECT_EQ(DigestOf(*ingest), DigestOf(**ref));

  // One more recovery pass over the final state agrees too.
  ingest.reset();
  auto final_open = StreamIngest::Open(dir);
  ASSERT_TRUE(final_open.ok());
  EXPECT_EQ(DigestOf(**final_open), DigestOf(**ref));
}

TEST(StreamIngestTest, CheckpointScheduleNeverChangesTheDigest) {
  const auto batches = MakeBatches(18, /*seed=*/23);
  std::vector<std::string> digests;
  for (const uint32_t checkpoint_every : {0u, 3u, 9u}) {
    const std::string dir =
        TempDirFor("stream_ckpt_" + std::to_string(checkpoint_every));
    StreamOptions options = SmallOptions();
    options.checkpoint_every = checkpoint_every;
    ASSERT_TRUE(StreamIngest::Init(dir, options).ok());
    auto ingest = StreamIngest::Open(dir);
    ASSERT_TRUE(ingest.ok());
    for (const auto& b : batches) ASSERT_TRUE((*ingest)->Apply(b).ok());
    digests.push_back(DigestOf(**ingest));
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

TEST(StreamIngestTest, TornWritePoisonsAndRecoveryDropsTheTail) {
  const auto batches = MakeBatches(10, /*seed=*/3);
  const std::string dir = TempDirFor("stream_poison");
  ASSERT_TRUE(StreamIngest::Init(dir, SmallOptions()).ok());
  auto opened = StreamIngest::Open(dir);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<StreamIngest> ingest = std::move(opened).value();

  for (size_t i = 0; i < 5; ++i) ASSERT_TRUE(ingest->Apply(batches[i]).ok());
  {
    ScopedFaultInjection arm("wal.torn_write=always");
    ASSERT_TRUE(arm.status().ok());
    const auto torn = ingest->Apply(batches[5]);
    ASSERT_FALSE(torn.ok());
    EXPECT_EQ(torn.status().code(), StatusCode::kIoError);
  }
  // Poisoned: even healthy appends must now be refused — acknowledging
  // past a torn record would lose the ack on replay.
  const auto after = ingest->Apply(batches[5]);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ingest->Checkpoint().code(), StatusCode::kFailedPrecondition);

  // Recovery sees exactly the 5 acknowledged batches.
  ingest.reset();
  auto recovered = StreamIngest::Open(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->seq(), 5u);
  EXPECT_GT((*recovered)->recovery().dropped_bytes, 0u);
  EXPECT_FALSE((*recovered)->recovery().tail_error.empty());

  const std::string ref_dir = TempDirFor("stream_poison_ref");
  ASSERT_TRUE(StreamIngest::Init(ref_dir, SmallOptions()).ok());
  auto ref = StreamIngest::Open(ref_dir);
  ASSERT_TRUE(ref.ok());
  for (size_t i = 0; i < 5; ++i) ASSERT_TRUE((*ref)->Apply(batches[i]).ok());
  EXPECT_EQ(DigestOf(**recovered), DigestOf(**ref));
}

TEST(StreamIngestTest, SequenceGapIsCorruption) {
  const std::string dir = TempDirFor("stream_gap");
  ASSERT_TRUE(StreamIngest::Init(dir, SmallOptions()).ok());
  // Forge a WAL whose first record claims seq 2: replay must refuse to
  // invent the missing batch 1.
  {
    auto wal = WalWriter::Open(dir + "/wal.log", false);
    ASSERT_TRUE(wal.ok());
    const std::vector<StreamOp> ops = {{OpKind::kAdd, Rect(0, 0, 0.1, 0.1)}};
    ASSERT_TRUE(wal->Append(StreamIngest::EncodeBatch(2, ops)).ok());
  }
  const auto opened = StreamIngest::Open(dir);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  EXPECT_NE(opened.status().message().find("sequence gap"),
            std::string::npos);
}

TEST(StreamIngestTest, BatchCodecRoundTripAndRejection) {
  const std::vector<StreamOp> ops = {
      {OpKind::kAdd, Rect(0.1, 0.2, 0.3, 0.4)},
      {OpKind::kRemove, Rect(0.5, 0.6, 0.7, 0.8)},
  };
  const std::string payload = StreamIngest::EncodeBatch(42, ops);
  const auto decoded = StreamIngest::DecodeBatch(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->first, 42u);
  ASSERT_EQ(decoded->second.size(), 2u);
  EXPECT_EQ(decoded->second[0].kind, OpKind::kAdd);
  EXPECT_DOUBLE_EQ(decoded->second[1].rect.max_x, 0.7);

  // Truncated and type-mangled payloads must be rejected, not crash.
  EXPECT_FALSE(StreamIngest::DecodeBatch(payload.substr(0, 10)).ok());
  std::string mangled = payload;
  mangled[0] = 0x7f;  // unknown record type
  EXPECT_FALSE(StreamIngest::DecodeBatch(mangled).ok());
  EXPECT_FALSE(StreamIngest::DecodeBatch("").ok());
}

}  // namespace
}  // namespace stream
}  // namespace sjsel
