#include "hilbert/morton.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "hilbert/hilbert.h"
#include "util/random.h"

namespace sjsel {
namespace {

class MortonOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(MortonOrderTest, BijectionOnFullGrid) {
  const MortonCurve curve(GetParam());
  const uint64_t n = curve.resolution();
  std::set<uint64_t> seen;
  for (uint32_t y = 0; y < n; ++y) {
    for (uint32_t x = 0; x < n; ++x) {
      const uint64_t d = curve.XyToD(x, y);
      EXPECT_LT(d, n * n);
      EXPECT_TRUE(seen.insert(d).second);
      uint32_t rx = 0;
      uint32_t ry = 0;
      curve.DToXy(d, &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
  EXPECT_EQ(seen.size(), n * n);
}

INSTANTIATE_TEST_SUITE_P(SmallOrders, MortonOrderTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(MortonTest, KnownInterleavings) {
  const MortonCurve curve(4);
  EXPECT_EQ(curve.XyToD(0, 0), 0u);
  EXPECT_EQ(curve.XyToD(1, 0), 1u);
  EXPECT_EQ(curve.XyToD(0, 1), 2u);
  EXPECT_EQ(curve.XyToD(1, 1), 3u);
  EXPECT_EQ(curve.XyToD(2, 0), 4u);
  EXPECT_EQ(curve.XyToD(3, 3), 15u);
}

TEST(MortonTest, HighOrderRoundTripSamples) {
  const MortonCurve curve(31);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextU64(curve.resolution()));
    const uint32_t y = static_cast<uint32_t>(rng.NextU64(curve.resolution()));
    uint32_t rx = 0;
    uint32_t ry = 0;
    curve.DToXy(curve.XyToD(x, y), &rx, &ry);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
  }
}

TEST(MortonTest, ValueForRectQuantizesLikeHilbertHelper) {
  const MortonCurve curve(8);
  const Rect extent(0, 0, 1, 1);
  const uint64_t max_d = curve.resolution() * curve.resolution();
  EXPECT_LT(curve.ValueForRect(Rect(0.4, 0.4, 0.6, 0.6), extent), max_d);
  EXPECT_EQ(curve.ValueForPoint({-3, -3}, extent), 0u);  // clamps
}

TEST(MortonVsHilbertTest, HilbertClustersBetter) {
  // The design-choice check: the runs metric (contiguous curve segments
  // covering a query box) should favor Hilbert over Z-order — which is why
  // SS sorts by Hilbert value.
  const int order = 6;
  const HilbertCurve hilbert(order);
  const MortonCurve morton(order);
  const uint64_t n = hilbert.resolution();
  Rng rng(11);

  auto count_runs = [](std::vector<uint64_t>* ds) {
    std::sort(ds->begin(), ds->end());
    int runs = ds->empty() ? 0 : 1;
    for (size_t i = 1; i < ds->size(); ++i) {
      if ((*ds)[i] != (*ds)[i - 1] + 1) ++runs;
    }
    return runs;
  };

  int hilbert_runs = 0;
  int morton_runs = 0;
  const uint32_t k = 8;
  for (int trial = 0; trial < 300; ++trial) {
    const uint32_t x0 = static_cast<uint32_t>(rng.NextU64(n - k));
    const uint32_t y0 = static_cast<uint32_t>(rng.NextU64(n - k));
    std::vector<uint64_t> h;
    std::vector<uint64_t> m;
    for (uint32_t dy = 0; dy < k; ++dy) {
      for (uint32_t dx = 0; dx < k; ++dx) {
        h.push_back(hilbert.XyToD(x0 + dx, y0 + dy));
        m.push_back(morton.XyToD(x0 + dx, y0 + dy));
      }
    }
    hilbert_runs += count_runs(&h);
    morton_runs += count_runs(&m);
  }
  EXPECT_LT(hilbert_runs, morton_runs);
}

}  // namespace
}  // namespace sjsel
