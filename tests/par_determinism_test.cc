// The determinism contract of the concurrency layer (docs/ARCHITECTURE.md):
// every parallel path — GH/PH histogram build, PBSM and R-tree ground-truth
// joins, the sampling estimator, the chain-join executor — produces output
// bit-identical (histograms) or exactly equal (integer counts) to its
// serial run, for any thread count, on uniform and skewed data alike.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/gh_histogram.h"
#include "core/ph_histogram.h"
#include "core/sampling.h"
#include "datagen/generators.h"
#include "engine/catalog.h"
#include "engine/executor.h"
#include "join/pbsm.h"
#include "join/rtree_join.h"
#include "rtree/rtree.h"

namespace sjsel {
namespace {

const Rect kUnit(0, 0, 1, 1);
const int kThreadCounts[] = {2, 3, 4, 8};
const uint64_t kSeeds[] = {1, 7, 2001};

Dataset MakeUniform(size_t n, uint64_t seed) {
  gen::SizeDist size{gen::SizeDist::Kind::kUniform, 0.005, 0.005, 0.5};
  return gen::UniformRects("u", n, kUnit, size, seed);
}

// Heavily skewed: one tight Gaussian cluster, so cell populations are very
// unbalanced across the parallel chunks.
Dataset MakeSkewed(size_t n, uint64_t seed) {
  gen::SizeDist size{gen::SizeDist::Kind::kUniform, 0.005, 0.005, 0.5};
  return gen::GaussianClusterRects("skew", n, kUnit,
                                   {{0.2, 0.8}, 0.03, 0.03, 1.0}, size, seed);
}

std::vector<Dataset> TestDatasets(uint64_t seed) {
  std::vector<Dataset> out;
  out.push_back(MakeUniform(6000, seed));
  out.push_back(MakeSkewed(6000, seed + 100));
  return out;
}

void ExpectGhBitIdentical(const GhHistogram& a, const GhHistogram& b) {
  EXPECT_EQ(a.dataset_size(), b.dataset_size());
  EXPECT_EQ(a.c(), b.c());
  EXPECT_EQ(a.o(), b.o());
  EXPECT_EQ(a.h(), b.h());
  EXPECT_EQ(a.v(), b.v());
}

void ExpectPhBitIdentical(const PhHistogram& a, const PhHistogram& b) {
  EXPECT_EQ(a.dataset_size(), b.dataset_size());
  // avg_span is derived from the two global sums; comparing them catches
  // reordered crossing-rect accumulation.
  EXPECT_EQ(a.crossing_count(), b.crossing_count());
  EXPECT_EQ(a.avg_span(), b.avg_span());
  ASSERT_EQ(a.cells().size(), b.cells().size());
  for (size_t i = 0; i < a.cells().size(); ++i) {
    const PhHistogram::Cell& x = a.cells()[i];
    const PhHistogram::Cell& y = b.cells()[i];
    ASSERT_EQ(x.num, y.num) << "cell " << i;
    ASSERT_EQ(x.area_sum, y.area_sum) << "cell " << i;
    ASSERT_EQ(x.w_sum, y.w_sum) << "cell " << i;
    ASSERT_EQ(x.h_sum, y.h_sum) << "cell " << i;
    ASSERT_EQ(x.num_x, y.num_x) << "cell " << i;
    ASSERT_EQ(x.area_sum_x, y.area_sum_x) << "cell " << i;
    ASSERT_EQ(x.w_sum_x, y.w_sum_x) << "cell " << i;
    ASSERT_EQ(x.h_sum_x, y.h_sum_x) << "cell " << i;
  }
}

TEST(ParDeterminismTest, GhParallelBuildBitIdenticalToSerial) {
  for (const uint64_t seed : kSeeds) {
    for (const Dataset& ds : TestDatasets(seed)) {
      for (const GhVariant variant :
           {GhVariant::kRevised, GhVariant::kBasic}) {
        const auto serial = GhHistogram::Build(ds, kUnit, 6, variant);
        ASSERT_TRUE(serial.ok());
        for (const int threads : kThreadCounts) {
          const auto parallel =
              GhHistogram::Build(ds, kUnit, 6, variant, threads);
          ASSERT_TRUE(parallel.ok());
          ExpectGhBitIdentical(*serial, *parallel);
        }
      }
    }
  }
}

TEST(ParDeterminismTest, PhParallelBuildBitIdenticalToSerial) {
  for (const uint64_t seed : kSeeds) {
    for (const Dataset& ds : TestDatasets(seed)) {
      for (const PhVariant variant :
           {PhVariant::kSplitCrossing, PhVariant::kNaive}) {
        const auto serial = PhHistogram::Build(ds, kUnit, 6, variant);
        ASSERT_TRUE(serial.ok());
        for (const int threads : kThreadCounts) {
          const auto parallel =
              PhHistogram::Build(ds, kUnit, 6, variant, threads);
          ASSERT_TRUE(parallel.ok());
          ExpectPhBitIdentical(*serial, *parallel);
        }
      }
    }
  }
}

TEST(ParDeterminismTest, GhParallelBuildEstimatesMatchSerial) {
  // End-to-end: estimates computed from parallel-built histograms equal
  // those from serial-built ones bit-for-bit.
  const Dataset a = MakeUniform(6000, 3);
  const Dataset b = MakeSkewed(6000, 4);
  const auto sa = GhHistogram::Build(a, kUnit, 6);
  const auto sb = GhHistogram::Build(b, kUnit, 6);
  const auto pa = GhHistogram::Build(a, kUnit, 6, GhVariant::kRevised, 4);
  const auto pb = GhHistogram::Build(b, kUnit, 6, GhVariant::kRevised, 4);
  EXPECT_EQ(EstimateGhJoinPairs(*sa, *sb).value(),
            EstimateGhJoinPairs(*pa, *pb).value());
}

TEST(ParDeterminismTest, PbsmParallelCountMatchesSerial) {
  for (const uint64_t seed : kSeeds) {
    const Dataset a = MakeUniform(5000, seed);
    const Dataset b = MakeSkewed(5000, seed + 50);
    const uint64_t serial = PbsmJoinCount(a, b);
    for (const int threads : kThreadCounts) {
      PbsmOptions options;
      options.threads = threads;
      EXPECT_EQ(PbsmJoinCount(a, b, options), serial)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ParDeterminismTest, PbsmParallelEmitsSamePairsInSameOrder) {
  const Dataset a = MakeUniform(3000, 11);
  const Dataset b = MakeSkewed(3000, 12);
  using Pairs = std::vector<std::pair<int64_t, int64_t>>;
  Pairs serial;
  PbsmJoin(a, b,
           [&serial](int64_t x, int64_t y) { serial.emplace_back(x, y); });
  PbsmOptions options;
  options.threads = 4;
  Pairs parallel;
  PbsmJoin(
      a, b,
      [&parallel](int64_t x, int64_t y) { parallel.emplace_back(x, y); },
      options);
  EXPECT_EQ(serial, parallel);
}

TEST(ParDeterminismTest, RTreeParallelCountMatchesSerial) {
  for (const uint64_t seed : kSeeds) {
    const Dataset a = MakeUniform(5000, seed);
    const Dataset b = MakeSkewed(5000, seed + 50);
    // Bulk-loaded and insertion-built trees have different shapes; cover
    // both against the parallel traversal.
    const RTree ta = RTree::BulkLoadStr(RTree::DatasetEntries(a));
    const RTree tb = RTree::BuildByInsertion(b);
    const uint64_t serial = RTreeJoinCount(ta, tb);
    for (const int threads : kThreadCounts) {
      EXPECT_EQ(RTreeJoinCount(ta, tb, threads), serial)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ParDeterminismTest, RTreeParallelCountTinyTrees) {
  // Leaf roots and empty trees must fall back safely.
  Dataset small("small");
  small.Add(Rect(0.1, 0.1, 0.2, 0.2));
  small.Add(Rect(0.15, 0.15, 0.3, 0.3));
  const RTree ta = RTree::BuildByInsertion(small);
  const RTree tb = RTree::BuildByInsertion(small);
  EXPECT_EQ(RTreeJoinCount(ta, tb, 4), RTreeJoinCount(ta, tb));
  const RTree empty = RTree::BuildByInsertion(Dataset("empty"));
  EXPECT_EQ(RTreeJoinCount(ta, empty, 4), 0u);
}

TEST(ParDeterminismTest, SamplingParallelEstimateMatchesSerial) {
  const Dataset a = MakeUniform(5000, 21);
  const Dataset b = MakeSkewed(5000, 22);
  for (const SamplingMethod method :
       {SamplingMethod::kRegular, SamplingMethod::kRandomWithReplacement,
        SamplingMethod::kSorted}) {
    SamplingOptions options;
    options.method = method;
    const auto serial = EstimateBySampling(a, b, options);
    ASSERT_TRUE(serial.ok());
    for (const int threads : kThreadCounts) {
      options.threads = threads;
      const auto parallel = EstimateBySampling(a, b, options);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(parallel->sample_pairs, serial->sample_pairs);
      EXPECT_EQ(parallel->sample_a_size, serial->sample_a_size);
      EXPECT_EQ(parallel->sample_b_size, serial->sample_b_size);
      EXPECT_EQ(parallel->estimated_pairs, serial->estimated_pairs);
    }
    options.threads = 1;
  }
}

TEST(ParDeterminismTest, ExecutorParallelChainJoinMatchesSerial) {
  Catalog catalog(kUnit, 5);
  ASSERT_TRUE(catalog.AddDataset(MakeUniform(2000, 31)).ok());
  ASSERT_TRUE(catalog.AddDataset(MakeSkewed(2000, 32)).ok());
  Dataset third = MakeUniform(2000, 33);
  third.set_name("u2");
  ASSERT_TRUE(catalog.AddDataset(std::move(third)).ok());

  const std::vector<std::string> order = {"u", "skew", "u2"};
  const auto serial = ExecuteChainJoin(&catalog, order);
  ASSERT_TRUE(serial.ok());
  for (const int threads : kThreadCounts) {
    ExecuteOptions options;
    options.threads = threads;
    const auto parallel = ExecuteChainJoin(&catalog, order, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->result_tuples, serial->result_tuples);
    EXPECT_EQ(parallel->step_cardinalities, serial->step_cardinalities);
    EXPECT_EQ(parallel->work, serial->work);
  }
}

}  // namespace
}  // namespace sjsel
