// Tests for the 3-D Geometric Histogram extension.

#include "gh3/gh3_histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/random.h"

namespace sjsel {
namespace {

const Box3 kUnit(0, 0, 0, 1, 1, 1);

BoxDataset MakeUniformBoxes(size_t n, double mean_size, uint64_t seed) {
  Rng rng(seed);
  BoxDataset ds;
  ds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double w = rng.NextDouble(mean_size * 0.5, mean_size * 1.5);
    const double h = rng.NextDouble(mean_size * 0.5, mean_size * 1.5);
    const double d = rng.NextDouble(mean_size * 0.5, mean_size * 1.5);
    const double x = rng.NextDouble(0.0, 1.0 - w);
    const double y = rng.NextDouble(0.0, 1.0 - h);
    const double z = rng.NextDouble(0.0, 1.0 - d);
    ds.push_back(Box3(x, y, z, x + w, y + h, z + d));
  }
  return ds;
}

BoxDataset MakeClusteredBoxes(size_t n, double mean_size, uint64_t seed) {
  Rng rng(seed);
  BoxDataset ds;
  ds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double w = rng.NextDouble(mean_size * 0.5, mean_size * 1.5);
    auto coord = [&rng](double center) {
      return std::clamp(center + rng.NextGaussian() * 0.08, 0.0, 0.9);
    };
    const double x = coord(0.4);
    const double y = coord(0.6);
    const double z = coord(0.3);
    ds.push_back(Box3(x, y, z, std::min(1.0, x + w), std::min(1.0, y + w),
                      std::min(1.0, z + w)));
  }
  return ds;
}

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(Gh3BuildTest, RejectsBadInput) {
  const BoxDataset ds = MakeUniformBoxes(10, 0.1, 1);
  EXPECT_FALSE(Gh3Histogram::Build(ds, kUnit, -1).ok());
  EXPECT_FALSE(Gh3Histogram::Build(ds, kUnit, 9).ok());
  EXPECT_FALSE(
      Gh3Histogram::Build(ds, Box3(0, 0, 0, 1, 1, 0), 3).ok());
}

class Gh3InvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(Gh3InvariantTest, CellSumsMatchClosedForms) {
  const int level = GetParam();
  const BoxDataset ds = MakeClusteredBoxes(800, 0.08, 7);
  const auto hist = Gh3Histogram::Build(ds, kUnit, level);
  ASSERT_TRUE(hist.ok());

  // 8 corners per box, each in exactly one cell.
  EXPECT_NEAR(Sum(hist->c()), 8.0 * ds.size(), 1e-6);

  // Σ O * cell_volume = total box volume.
  double total_volume = 0.0;
  double total_len[3] = {0, 0, 0};
  double total_face[3] = {0, 0, 0};
  for (const Box3& b : ds) {
    total_volume += b.volume();
    total_len[0] += b.dx();
    total_len[1] += b.dy();
    total_len[2] += b.dz();
    total_face[0] += b.dy() * b.dz();
    total_face[1] += b.dx() * b.dz();
    total_face[2] += b.dx() * b.dy();
  }
  const int g = hist->per_axis();
  const double cell_volume = 1.0 / (static_cast<double>(g) * g * g);
  EXPECT_NEAR(Sum(hist->o()) * cell_volume, total_volume, 1e-9);

  // Each box has 4 edges per axis; ratios sum back to 4 * total length.
  const double cell_len = 1.0 / g;
  const double cell_face = 1.0 / (static_cast<double>(g) * g);
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(Sum(hist->e(d)) * cell_len, 4.0 * total_len[d], 1e-9)
        << "axis " << d;
    // Each box has 2 faces per normal axis.
    EXPECT_NEAR(Sum(hist->f(d)) * cell_face, 2.0 * total_face[d], 1e-9)
        << "axis " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, Gh3InvariantTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(Gh3EstimateTest, LevelZeroMatchesHandComputation) {
  // Two disjoint boxes, single cell. IP = c1*o2 + o1*c2 + Σ_d e1f2 + f1e2.
  BoxDataset a = {Box3(0.1, 0.1, 0.1, 0.3, 0.4, 0.5)};  // dx .2 dy .3 dz .4
  BoxDataset b = {Box3(0.6, 0.5, 0.2, 0.9, 0.7, 0.8)};  // dx .3 dy .2 dz .6
  const auto ha = Gh3Histogram::Build(a, kUnit, 0);
  const auto hb = Gh3Histogram::Build(b, kUnit, 0);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hb.ok());
  const double vol_a = 0.2 * 0.3 * 0.4;
  const double vol_b = 0.3 * 0.2 * 0.6;
  double expected = 8 * vol_b + vol_a * 8;
  // e_x(a) = 4*0.2, f_x(b) = 2*(0.2*0.6); etc.
  expected += (4 * 0.2) * (2 * 0.2 * 0.6) + (2 * 0.3 * 0.4) * (4 * 0.3);
  expected += (4 * 0.3) * (2 * 0.3 * 0.6) + (2 * 0.2 * 0.4) * (4 * 0.2);
  expected += (4 * 0.4) * (2 * 0.3 * 0.2) + (2 * 0.2 * 0.3) * (4 * 0.6);
  const auto ip = EstimateGh3IntersectionPoints(*ha, *hb);
  ASSERT_TRUE(ip.ok());
  EXPECT_NEAR(ip.value(), expected, 1e-12);
}

TEST(Gh3EstimateTest, FineGridNailsASinglePair) {
  BoxDataset a = {Box3(0.2, 0.2, 0.2, 0.5, 0.5, 0.5)};
  BoxDataset b = {Box3(0.4, 0.4, 0.4, 0.7, 0.7, 0.7)};
  const auto ha = Gh3Histogram::Build(a, kUnit, 5);
  const auto hb = Gh3Histogram::Build(b, kUnit, 5);
  const auto pairs = EstimateGh3JoinPairs(*ha, *hb);
  ASSERT_TRUE(pairs.ok());
  EXPECT_NEAR(pairs.value(), 1.0, 0.08);
}

TEST(Gh3EstimateTest, DisjointBoxesEstimateNearZeroAtFineLevels) {
  BoxDataset a = {Box3(0.0, 0.0, 0.0, 0.2, 0.2, 0.2)};
  BoxDataset b = {Box3(0.7, 0.7, 0.7, 0.9, 0.9, 0.9)};
  const auto ha = Gh3Histogram::Build(a, kUnit, 4);
  const auto hb = Gh3Histogram::Build(b, kUnit, 4);
  EXPECT_NEAR(EstimateGh3JoinPairs(*ha, *hb).value(), 0.0, 1e-9);
}

TEST(Gh3EstimateTest, IncompatibleGridsRejected) {
  const BoxDataset ds = MakeUniformBoxes(50, 0.1, 3);
  const auto h2 = Gh3Histogram::Build(ds, kUnit, 2);
  const auto h3 = Gh3Histogram::Build(ds, kUnit, 3);
  EXPECT_FALSE(EstimateGh3JoinPairs(*h2, *h3).ok());
}

TEST(Gh3AccuracyTest, ErrorShrinksWithLevel) {
  const BoxDataset a = MakeClusteredBoxes(1500, 0.1, 11);
  const BoxDataset b = MakeUniformBoxes(1500, 0.1, 12);
  const double actual = static_cast<double>(NestedLoopJoinCount3(a, b));
  ASSERT_GT(actual, 100.0);
  double coarse = 0.0;
  double fine = 0.0;
  for (const int level : {0, 4}) {
    const auto ha = Gh3Histogram::Build(a, kUnit, level);
    const auto hb = Gh3Histogram::Build(b, kUnit, level);
    const double est = EstimateGh3JoinPairs(*ha, *hb).value();
    const double err = std::fabs(est - actual) / actual;
    if (level == 0) {
      coarse = err;
    } else {
      fine = err;
    }
  }
  EXPECT_LT(fine, coarse);
  EXPECT_LT(fine, 0.10);
}

TEST(Gh3AccuracyTest, PointCloudJoinWorks) {
  // Degenerate boxes (3-D points) against extended boxes: the corner /
  // volume mechanism carries the whole estimate, scaled by 8.
  Rng rng(13);
  BoxDataset points;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.NextDouble();
    const double y = rng.NextDouble();
    const double z = rng.NextDouble();
    points.push_back(Box3(x, y, z, x, y, z));
  }
  const BoxDataset boxes = MakeUniformBoxes(1000, 0.15, 14);
  const double actual =
      static_cast<double>(NestedLoopJoinCount3(points, boxes));
  ASSERT_GT(actual, 100.0);
  const auto hp = Gh3Histogram::Build(points, kUnit, 4);
  const auto hb = Gh3Histogram::Build(boxes, kUnit, 4);
  const double est = EstimateGh3JoinPairs(*hp, *hb).value();
  EXPECT_LT(std::fabs(est - actual) / actual, 0.08);
}

}  // namespace
}  // namespace sjsel
