// Pins the guarded estimator's machine-readable degradation vocabulary:
// every cause constant literally, every rung name, the end-to-end
// "<rung>:<cause>" reasons produced by each failure path, and the
// invariant that the recorded RungTrials reproduce degradation_reason
// exactly. Downstream parsers (CI greps, the explain report, metric names
// like estimator.failed.gh.injected) depend on these exact strings — a
// change here is a breaking contract change, not a refactor.

#include <gtest/gtest.h>

#include <string>

#include "core/guarded_estimator.h"
#include "datagen/generators.h"
#include "util/fault_injection.h"

namespace sjsel {
namespace {

Dataset MakeData(const std::string& name, size_t n, uint64_t seed) {
  gen::SizeDist size{gen::SizeDist::Kind::kUniform, 0.005, 0.005, 0.5};
  return gen::UniformRects(name, n, Rect(0, 0, 1, 1), size, seed);
}

// Joining the trials that carry a cause as "<rung>:<cause>" must rebuild
// degradation_reason byte for byte — the explain report renders trials,
// scripted consumers parse the reason, and the two must never diverge.
std::string ReasonFromTrials(const EstimateResult& result) {
  std::string reason;
  for (const RungTrial& trial : result.trials) {
    if (trial.cause.empty()) continue;
    if (!reason.empty()) reason.push_back(';');
    reason += EstimatorRungName(trial.rung);
    reason.push_back(':');
    reason += trial.cause;
  }
  return reason;
}

TEST(DegradationVocabularyTest, CauseConstantsArePinnedLiterally) {
  EXPECT_STREQ(kDegradeCauseInjected, "injected");
  EXPECT_STREQ(kDegradeCauseException, "exception");
  EXPECT_STREQ(kDegradeCauseNonFinite, "guard:non_finite");
  EXPECT_STREQ(kDegradeCauseNegative, "guard:negative");
  EXPECT_STREQ(kDegradeCauseEmptyInput, "empty_input");
  EXPECT_STREQ(kDegradeCauseFloorZero, "floor:zero");
  EXPECT_STREQ(kDegradeCauseErrorPrefix, "error:");
}

TEST(DegradationVocabularyTest, RungNamesArePinnedLiterally) {
  EXPECT_STREQ(EstimatorRungName(EstimatorRung::kGh), "gh");
  EXPECT_STREQ(EstimatorRungName(EstimatorRung::kPh), "ph");
  EXPECT_STREQ(EstimatorRungName(EstimatorRung::kSampling), "sampling");
  EXPECT_STREQ(EstimatorRungName(EstimatorRung::kParametric), "parametric");
}

class DegradationReasonTest : public ::testing::Test {
 protected:
  DegradationReasonTest()
      : a_(MakeData("deg_a", 900, 11)), b_(MakeData("deg_b", 900, 12)) {}

  EstimateResult Run(const GuardedEstimatorOptions& options = {}) {
    const auto result = GuardedEstimator(options).Estimate(a_, b_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value();
  }

  Dataset a_;
  Dataset b_;
};

TEST_F(DegradationReasonTest, CleanRunHasNoReasonAndOneAnsweredTrial) {
  const EstimateResult result = Run();
  EXPECT_EQ(result.degradation_reason, "");
  ASSERT_EQ(result.trials.size(), 1u);
  EXPECT_TRUE(result.trials[0].answered);
  EXPECT_EQ(result.trials[0].cause, "");
  EXPECT_EQ(result.trials[0].rung, EstimatorRung::kGh);
  EXPECT_TRUE(result.trials[0].has_raw_pairs);
  EXPECT_EQ(ReasonFromTrials(result), "");
}

TEST_F(DegradationReasonTest, InjectedGh) {
  ScopedFaultInjection arm("estimator.gh=always");
  ASSERT_TRUE(arm.status().ok());
  const EstimateResult result = Run();
  EXPECT_EQ(result.degradation_reason, "gh:injected");
  EXPECT_EQ(ReasonFromTrials(result), result.degradation_reason);
  // The injected rung is skipped before construction: no label.
  ASSERT_EQ(result.trials.size(), 2u);
  EXPECT_EQ(result.trials[0].label, "");
  EXPECT_FALSE(result.trials[0].answered);
  EXPECT_TRUE(result.trials[1].answered);
}

TEST_F(DegradationReasonTest, InjectedGhAndPh) {
  ScopedFaultInjection arm("estimator.gh=always,estimator.ph=always");
  ASSERT_TRUE(arm.status().ok());
  const EstimateResult result = Run();
  EXPECT_EQ(result.degradation_reason, "gh:injected;ph:injected");
  EXPECT_EQ(result.rung, EstimatorRung::kSampling);
  EXPECT_EQ(ReasonFromTrials(result), result.degradation_reason);
}

TEST_F(DegradationReasonTest, InjectedThroughSampling) {
  ScopedFaultInjection arm(
      "estimator.gh=always,estimator.ph=always,estimator.sampling=always");
  ASSERT_TRUE(arm.status().ok());
  const EstimateResult result = Run();
  EXPECT_EQ(result.degradation_reason,
            "gh:injected;ph:injected;sampling:injected");
  EXPECT_EQ(result.rung, EstimatorRung::kParametric);
  EXPECT_EQ(ReasonFromTrials(result), result.degradation_reason);
}

TEST_F(DegradationReasonTest, WorkerExceptionInSamplingRung) {
  GuardedEstimatorOptions options;
  options.sampling.threads = 2;
  ScopedFaultInjection arm(
      "estimator.gh=always,estimator.ph=always,pool.task=always");
  ASSERT_TRUE(arm.status().ok());
  const EstimateResult result = Run(options);
  EXPECT_EQ(result.degradation_reason,
            "gh:injected;ph:injected;sampling:exception");
  EXPECT_EQ(ReasonFromTrials(result), result.degradation_reason);
  // The exception arrived after construction: the trial keeps the label.
  ASSERT_EQ(result.trials.size(), 4u);
  EXPECT_NE(result.trials[2].label, "");
  EXPECT_EQ(result.trials[2].cause, kDegradeCauseException);
}

TEST_F(DegradationReasonTest, RungStatusErrorUsesErrorPrefixAndCodeName) {
  // A sampling fraction outside (0, 1] makes the sampling rung return
  // InvalidArgument; the chain must book it as error:<StatusCodeName>.
  GuardedEstimatorOptions options;
  options.sampling.frac_a = 2.0;
  ScopedFaultInjection arm("estimator.gh=always,estimator.ph=always");
  ASSERT_TRUE(arm.status().ok());
  const EstimateResult result = Run(options);
  EXPECT_EQ(result.degradation_reason,
            "gh:injected;ph:injected;sampling:error:InvalidArgument");
  EXPECT_EQ(result.rung, EstimatorRung::kParametric);
  EXPECT_EQ(ReasonFromTrials(result), result.degradation_reason);
}

TEST_F(DegradationReasonTest, AllRungsInjectedFallToZeroFloor) {
  ScopedFaultInjection arm(
      "estimator.gh=always,estimator.ph=always,estimator.sampling=always,"
      "estimator.parametric=always");
  ASSERT_TRUE(arm.status().ok());
  const EstimateResult result = Run();
  EXPECT_EQ(result.degradation_reason,
            "gh:injected;ph:injected;sampling:injected;parametric:injected;"
            "parametric:floor:zero");
  EXPECT_EQ(result.rung, EstimatorRung::kParametric);
  EXPECT_EQ(result.rung_label, "Zero");
  EXPECT_EQ(result.outcome.estimated_pairs, 0.0);
  EXPECT_EQ(ReasonFromTrials(result), result.degradation_reason);
  // The floor pseudo-rung is an answered trial that still carries a cause.
  const RungTrial& floor = result.trials.back();
  EXPECT_TRUE(floor.answered);
  EXPECT_EQ(floor.cause, kDegradeCauseFloorZero);
  EXPECT_EQ(floor.label, "Zero");
}

TEST(DegradationReasonEmptyTest, EmptyInputIsItsOwnPseudoRung) {
  const Dataset empty("empty", {});
  const Dataset some = MakeData("deg_c", 50, 13);
  const auto result = GuardedEstimator().Estimate(empty, some);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->degradation_reason, "parametric:empty_input");
  EXPECT_EQ(result->rung, EstimatorRung::kParametric);
  EXPECT_EQ(result->rung_label, "Empty");
  EXPECT_EQ(result->outcome.estimated_pairs, 0.0);
  ASSERT_EQ(result->trials.size(), 1u);
  EXPECT_TRUE(result->trials[0].answered);
  EXPECT_EQ(result->trials[0].cause, kDegradeCauseEmptyInput);
  EXPECT_EQ(result->trials[0].label, "Empty");
  EXPECT_EQ(ReasonFromTrials(*result), result->degradation_reason);
}

}  // namespace
}  // namespace sjsel
