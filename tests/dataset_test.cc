#include "geom/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/serialize.h"

namespace sjsel {
namespace {

Dataset MakeSmall() {
  Dataset ds("small");
  ds.Add(Rect(0, 0, 1, 1));
  ds.Add(Rect(0.5, 0.25, 2, 3));
  ds.Add(Rect(-1, -2, -0.5, -1.5));
  return ds;
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset ds = MakeSmall();
  EXPECT_EQ(ds.name(), "small");
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_FALSE(ds.empty());
  EXPECT_EQ(ds[1], Rect(0.5, 0.25, 2, 3));
}

TEST(DatasetTest, ComputeExtent) {
  const Dataset ds = MakeSmall();
  EXPECT_EQ(ds.ComputeExtent(), Rect(-1, -2, 2, 3));
  EXPECT_TRUE(Dataset("empty").ComputeExtent().IsEmpty());
}

TEST(DatasetTest, BinaryRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sjsel_dataset.bin";
  const Dataset ds = MakeSmall();
  ASSERT_TRUE(ds.Save(path).ok());
  const auto loaded = Dataset::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), "small");
  EXPECT_EQ(loaded->rects(), ds.rects());
  std::remove(path.c_str());
}

TEST(DatasetTest, BinaryLoadDetectsCorruption) {
  const std::string path = ::testing::TempDir() + "/sjsel_dataset_bad.bin";
  const Dataset ds = MakeSmall();
  ASSERT_TRUE(ds.Save(path).ok());
  auto data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  std::string bytes = data.value();
  bytes[bytes.size() / 2] ^= 0x40;  // flip a bit in the payload
  ASSERT_TRUE(WriteFile(path, bytes).ok());
  const auto loaded = Dataset::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(DatasetTest, BinaryLoadRejectsWrongMagic) {
  const std::string path = ::testing::TempDir() + "/sjsel_dataset_magic.bin";
  ASSERT_TRUE(WriteFile(path, std::string(64, 'x')).ok());
  const auto loaded = Dataset::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(DatasetTest, BinaryLoadRejectsTinyFile) {
  const std::string path = ::testing::TempDir() + "/sjsel_dataset_tiny.bin";
  ASSERT_TRUE(WriteFile(path, "xy").ok());
  EXPECT_FALSE(Dataset::Load(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetTest, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sjsel_dataset.csv";
  const Dataset ds = MakeSmall();
  ASSERT_TRUE(ds.SaveCsv(path).ok());
  const auto loaded = Dataset::LoadCsv(path, "renamed");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), "renamed");
  ASSERT_EQ(loaded->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ((*loaded)[i], ds[i]) << "row " << i;
  }
  std::remove(path.c_str());
}

TEST(DatasetTest, CsvRejectsMalformedRow) {
  const std::string path = ::testing::TempDir() + "/sjsel_dataset_bad.csv";
  ASSERT_TRUE(WriteFile(path, "min_x,min_y,max_x,max_y\n1,2,3\n").ok());
  const auto loaded = Dataset::LoadCsv(path, "x");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(DatasetTest, EmptyDatasetRoundTrips) {
  const std::string path = ::testing::TempDir() + "/sjsel_dataset_empty.bin";
  Dataset ds("nothing");
  ASSERT_TRUE(ds.Save(path).ok());
  const auto loaded = Dataset::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  EXPECT_EQ(loaded->name(), "nothing");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sjsel
